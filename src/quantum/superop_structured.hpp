/// \file superop_structured.hpp
/// \brief `StructuredSuperOp` -- the single dispatch point between dense and
///        CSR superoperator application, plus the `QOC_DENSE_SUPEROP`
///        escape hatch that forces every caller back onto the legacy dense
///        path.
///
/// Construction keeps the dense d^2 x d^2 matrix (it is small: 256 x 256
/// for two qubits with leakage) and additionally compresses to CSR when the
/// stored fill fraction is at most `kCsrFillCutoff`.  `kind()` reports which
/// representation the apply entry points use.  Threshold 0.0 compression
/// drops only exact structural zeros, and the dense SIMD gemm skips exactly
/// those entries, so the two kinds produce bitwise-identical results (see
/// simd_kernels.hpp); dispatch is purely a speed decision.
///
/// Escape hatch: setting the environment variable `QOC_DENSE_SUPEROP` (to
/// anything but "0") makes `dense_superop_forced()` return true.  Engines
/// with a structured fast path (RB, leakage RB, the open-system GRAPE
/// evaluator) consult it once per run and fall back to the legacy scalar
/// code path, which is bitwise identical to the pre-structured binary.
/// Tests override it programmatically via `force_dense_superop`.

#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace qoc::quantum {

using linalg::Mat;
using linalg::cplx;

/// Stored-fill fraction at or below which `from_dense` keeps a CSR form and
/// dispatches applies through it.  At 0.5 nnz, CSR SpMV moves half the
/// flops AND half the memory of the dense matvec; above it the dense
/// kernel's contiguous loads win.
inline constexpr double kCsrFillCutoff = 0.5;

class StructuredSuperOp {
public:
    enum class Kind { kDense, kCsr };

    /// Empty (invalid) superoperator; `valid() == false`.
    StructuredSuperOp() = default;

    /// Wraps a dense d^2 x d^2 superoperator, compressing to CSR (threshold
    /// 0.0: exact zeros only) when the fill fraction is <= `fill_cutoff`.
    static StructuredSuperOp from_dense(const Mat& superop,
                                        double fill_cutoff = kCsrFillCutoff);

    bool valid() const noexcept { return dense_.rows() != 0; }
    Kind kind() const noexcept { return kind_; }

    /// Superoperator side length d^2.
    std::size_t dim() const noexcept { return dense_.rows(); }

    /// Stored-nonzero fraction of the dense form.
    double fill_fraction() const noexcept;

    const Mat& dense() const noexcept { return dense_; }
    const linalg::CsrMat& csr() const noexcept { return csr_; }

    /// `out = S * vec_rho` for a d^2 x 1 column; allocation-free on shape
    /// reuse.  `out` must not alias `vec_rho`.
    void apply_into(const Mat& vec_rho, Mat& out) const;

    /// `out = S * column of a row-major batch`, reading/writing every
    /// `stride`-th element.  Raw no-alloc form for the SoA seed engine's
    /// mixed (per-seed different operator) step path.
    void apply_col(const cplx* in, cplx* out, std::size_t stride) const noexcept;

    /// `out = S * batch` against a row-major d^2 x B seed block -- ONE
    /// kernel sweep per Clifford step for the whole block (the broadcast
    /// path).  `out` resized in place; no alias.
    void apply_batch_into(const Mat& batch, Mat& out) const;

private:
    Mat dense_;
    linalg::CsrMat csr_;
    Kind kind_ = Kind::kDense;
};

/// True when `QOC_DENSE_SUPEROP` is set (read once) or a test forced it.
bool dense_superop_forced() noexcept;

/// Programmatic override of the escape hatch (tests): true / false force
/// the respective behavior regardless of the environment.
void force_dense_superop(bool forced) noexcept;

/// Drops the programmatic override, returning to the environment setting.
void clear_dense_superop_override() noexcept;

}  // namespace qoc::quantum
