#include "quantum/operators.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/kron.hpp"

namespace qoc::quantum {

namespace {
constexpr cplx kI{0.0, 1.0};
}

Mat sigma_x() { return Mat{{0.0, 1.0}, {1.0, 0.0}}; }
Mat sigma_y() { return Mat{{0.0, -kI}, {kI, 0.0}}; }
Mat sigma_z() { return Mat{{1.0, 0.0}, {0.0, -1.0}}; }
Mat sigma_plus() { return Mat{{0.0, 0.0}, {1.0, 0.0}}; }
Mat sigma_minus() { return Mat{{0.0, 1.0}, {0.0, 0.0}}; }
Mat identity2() { return Mat::identity(2); }

Mat annihilation(std::size_t dim) {
    if (dim < 2) throw std::invalid_argument("annihilation: dim must be >= 2");
    Mat a(dim, dim);
    for (std::size_t n = 1; n < dim; ++n) {
        a(n - 1, n) = cplx{std::sqrt(static_cast<double>(n)), 0.0};
    }
    return a;
}

Mat creation(std::size_t dim) { return annihilation(dim).adjoint(); }

Mat number_op(std::size_t dim) {
    Mat n(dim, dim);
    for (std::size_t k = 0; k < dim; ++k) n(k, k) = cplx{static_cast<double>(k), 0.0};
    return n;
}

Mat duffing_drift(std::size_t dim, double delta, double anharmonicity) {
    Mat h(dim, dim);
    for (std::size_t k = 0; k < dim; ++k) {
        const double n = static_cast<double>(k);
        h(k, k) = cplx{delta * n + 0.5 * anharmonicity * n * (n - 1.0), 0.0};
    }
    return h;
}

Mat drive_x(std::size_t dim) { return annihilation(dim) + creation(dim); }

Mat drive_y(std::size_t dim) {
    return kI * (creation(dim) - annihilation(dim));
}

Mat op_on_qubit(const Mat& op, std::size_t target, std::size_t n_qubits) {
    if (target >= n_qubits) throw std::invalid_argument("op_on_qubit: target out of range");
    std::vector<Mat> factors;
    factors.reserve(n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q) {
        factors.push_back(q == target ? op : Mat::identity(op.rows()));
    }
    return linalg::kron_all(factors);
}

Mat tensor(const std::vector<Mat>& ops) { return linalg::kron_all(ops); }

Mat qubit_isometry(std::size_t dim) {
    if (dim < 2) throw std::invalid_argument("qubit_isometry: dim must be >= 2");
    Mat p(dim, 2);
    p(0, 0) = cplx{1.0, 0.0};
    p(1, 1) = cplx{1.0, 0.0};
    return p;
}

Mat embed_qubit_op(const Mat& op2, std::size_t dim) {
    if (op2.rows() != 2 || op2.cols() != 2) {
        throw std::invalid_argument("embed_qubit_op: operator must be 2x2");
    }
    Mat out(dim, dim);
    out.set_block(0, 0, op2);
    return out;
}

}  // namespace qoc::quantum
