#include "quantum/states.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/eig_hermitian.hpp"
#include "quantum/operators.hpp"

namespace qoc::quantum {

Mat basis_ket(std::size_t dim, std::size_t k) {
    if (k >= dim) throw std::invalid_argument("basis_ket: index out of range");
    Mat v(dim, 1);
    v(k, 0) = cplx{1.0, 0.0};
    return v;
}

Mat ket_to_dm(const Mat& ket) {
    if (ket.cols() != 1) throw std::invalid_argument("ket_to_dm: not a column vector");
    return ket * ket.adjoint();
}

Mat basis_ket_bits(const std::vector<int>& bits) {
    std::size_t index = 0;
    for (int b : bits) {
        if (b != 0 && b != 1) throw std::invalid_argument("basis_ket_bits: bits must be 0/1");
        index = (index << 1) | static_cast<std::size_t>(b);
    }
    return basis_ket(std::size_t{1} << bits.size(), index);
}

bool is_density_matrix(const Mat& rho, double tol) {
    if (!rho.is_square() || !rho.is_hermitian(tol)) return false;
    if (std::abs(rho.trace() - cplx{1.0, 0.0}) > tol) return false;
    const auto eig = linalg::eig_hermitian(rho);
    return eig.eigenvalues.front() >= -tol;
}

double purity(const Mat& rho) { return (rho * rho).trace().real(); }

std::vector<double> populations(const Mat& rho) {
    std::vector<double> p(rho.rows());
    for (std::size_t i = 0; i < rho.rows(); ++i) {
        p[i] = std::clamp(rho(i, i).real(), 0.0, 1.0);
    }
    return p;
}

BlochVector bloch_vector(const Mat& rho) {
    if (rho.rows() != 2) throw std::invalid_argument("bloch_vector: need a qubit state");
    return BlochVector{(rho * sigma_x()).trace().real(), (rho * sigma_y()).trace().real(),
                       (rho * sigma_z()).trace().real()};
}

Mat partial_trace(const Mat& rho, std::size_t d0, std::size_t d1, std::size_t which) {
    if (rho.rows() != d0 * d1 || !rho.is_square()) {
        throw std::invalid_argument("partial_trace: dimension mismatch");
    }
    if (which > 1) throw std::invalid_argument("partial_trace: which must be 0 or 1");
    if (which == 0) {
        // Trace out subsystem 0, keep 1.
        Mat out(d1, d1);
        for (std::size_t i = 0; i < d1; ++i)
            for (std::size_t j = 0; j < d1; ++j)
                for (std::size_t k = 0; k < d0; ++k)
                    out(i, j) += rho(k * d1 + i, k * d1 + j);
        return out;
    }
    Mat out(d0, d0);
    for (std::size_t i = 0; i < d0; ++i)
        for (std::size_t j = 0; j < d0; ++j)
            for (std::size_t k = 0; k < d1; ++k)
                out(i, j) += rho(i * d1 + k, j * d1 + k);
    return out;
}

}  // namespace qoc::quantum
