/// \file superop.hpp
/// \brief Liouvillian superoperators for the Lindblad master equation (the
///        paper's Eq. 1) under the column-stacking convention
///        `vec(A X B) = (B^T (x) A) vec(X)`.

#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "quantum/superop_kron.hpp"
#include "quantum/superop_structured.hpp"

namespace qoc::quantum {

using linalg::Mat;

/// Superoperator of the Hamiltonian commutator: L_H vec(rho) = vec(-i [H, rho]).
Mat liouvillian_hamiltonian(const Mat& h);

/// Superoperator of a single Lindblad dissipator:
///   D(C) rho = C rho C^dagger - 1/2 {C^dagger C, rho}.
Mat lindblad_dissipator(const Mat& c);

/// Full Liouvillian `-i[H, .] + sum_k D(C_k)`.
Mat liouvillian(const Mat& h, const std::vector<Mat>& collapse_ops);

/// Superoperator of unitary conjugation: S vec(rho) = vec(U rho U^dagger).
Mat unitary_superop(const Mat& u);

/// Applies a superoperator to a density matrix (vectorize, multiply, unvec).
Mat apply_superop(const Mat& superop, const Mat& rho);

/// Allocation-free superoperator action on an already-vectorized state:
/// `out = superop * vec_rho` where `vec_rho` is a d^2 x 1 column vector.
/// `out` must not alias either input; it is resized in place (no allocation
/// once it has seen the shape).  This is the O(d^4) propagation step the RB
/// engine uses in place of O(d^6) superoperator composition.
void apply_superop_into(const Mat& superop, const Mat& vec_rho, Mat& out);

/// Structured-dispatch overload: same contract, but the action runs through
/// the CSR or dense SIMD kernel the wrapped operator selected at
/// construction (`StructuredSuperOp::kind`).
void apply_superop_into(const StructuredSuperOp& superop, const Mat& vec_rho, Mat& out);

/// Kronecker-factored overload: O(k d^3) two-sided updates on the reshaped
/// d x d state, never materializing the d^2 x d^2 matrix.  `scratch` is
/// caller-owned d x d workspace (see KronSuperOp::apply_vec_into).
void apply_superop_into(const KronSuperOp& superop, const Mat& vec_rho, Mat& out, Mat& scratch);

/// True when the superoperator preserves trace: vec(I)^T S = vec(I)^T.
bool is_trace_preserving(const Mat& superop, double tol = 1e-9);

/// Depolarizing channel on dimension d with error probability p:
///   rho -> (1 - p) rho + p I/d.
Mat depolarizing_superop(std::size_t dim, double p);

/// Amplitude-damping channel (qubit) with decay probability gamma.
Mat amplitude_damping_superop(double gamma);

/// Pure-dephasing channel (qubit) with dephasing probability lambda
/// (off-diagonals multiplied by 1 - lambda).
Mat phase_damping_superop(double lambda);

}  // namespace qoc::quantum
