/// \file fidelity.hpp
/// \brief Gate and state fidelity measures.
///
/// The paper's cost function is the gate infidelity
///   C = 1 - F = 1 - |Tr(U_t^dagger U_f)|^2 / N^2
/// (the "PSU" normalization: invariant under global phase).  The open-system
/// optimizer uses the trace-difference measure on superoperators, matching
/// QuTiP's `TRACEDIFF` fidelity computer.

#pragma once

#include "linalg/matrix.hpp"

namespace qoc::quantum {

using linalg::cplx;
using linalg::Mat;

/// |<Tr(U_t^dagger U)>|^2 / d^2 — phase-invariant unitary gate fidelity.
double fidelity_psu(const Mat& u_target, const Mat& u);

/// Re[Tr(U_t^dagger U)] / d — phase-sensitive variant (QuTiP "SU").
double fidelity_su(const Mat& u_target, const Mat& u);

/// Fidelity of a unitary on an embedded qubit subspace: the d-level
/// propagator `u` is projected onto the computational subspace with the
/// isometry `p` (d x 2) before comparing with the 2x2 target.  Leakage
/// outside the subspace reduces the projected trace and hence the fidelity.
double fidelity_psu_subspace(const Mat& u_target2, const Mat& u, const Mat& p);

/// Trace-difference error between two superoperators (QuTiP TRACEDIFF):
///   err = ||E_t - E||_F^2 / (2 d^2)
/// where d^2 is the superoperator dimension.  Zero iff the maps agree.
double tracediff_error(const Mat& e_target, const Mat& e);

/// Average gate fidelity between two unitaries on dimension d (Nielsen):
///   F_avg = [ |Tr(U_t^dagger U)|^2 + d ] / [ d (d + 1) ].
double average_gate_fidelity(const Mat& u_target, const Mat& u);

/// Average gate fidelity of a quantum channel (superoperator, column
/// stacking) against a target unitary:
///   F_pro = Tr(S_t^dagger S) / d^2,  F_avg = (d F_pro + 1) / (d + 1).
double average_gate_fidelity_superop(const Mat& u_target, const Mat& superop);

/// State fidelity <psi| rho |psi> for a pure target.
double state_fidelity(const Mat& rho, const Mat& ket);

/// Average gate fidelity of a d-level channel restricted to the 2-level
/// computational subspace: extracts the qubit block of the superoperator
/// (column-stacking convention) and compares against the 2x2 target.
/// Leakage out of the subspace reduces the fidelity; phases accumulated by
/// the leakage levels (e.g. anharmonic rotation of |2>) are ignored, as a
/// physical qubit-only experiment would.
double average_gate_fidelity_subspace(const Mat& u_target2, const Mat& superop,
                                      std::size_t levels);

}  // namespace qoc::quantum
