#include "quantum/fidelity.hpp"

#include <cmath>
#include <stdexcept>

#include "quantum/superop.hpp"

namespace qoc::quantum {

double fidelity_psu(const Mat& u_target, const Mat& u) {
    if (u_target.rows() != u.rows() || u_target.cols() != u.cols()) {
        throw std::invalid_argument("fidelity_psu: shape mismatch");
    }
    const double d = static_cast<double>(u.rows());
    const cplx tr = linalg::hs_inner(u_target, u);  // Tr(U_t^dagger U)
    return std::norm(tr) / (d * d);
}

double fidelity_su(const Mat& u_target, const Mat& u) {
    const double d = static_cast<double>(u.rows());
    return linalg::hs_inner(u_target, u).real() / d;
}

double fidelity_psu_subspace(const Mat& u_target2, const Mat& u, const Mat& p) {
    if (u_target2.rows() != p.cols()) {
        throw std::invalid_argument("fidelity_psu_subspace: target/isometry mismatch");
    }
    const Mat projected = p.adjoint() * u * p;  // 2x2 block of the big unitary
    const double d = static_cast<double>(u_target2.rows());
    const cplx tr = linalg::hs_inner(u_target2, projected);
    return std::norm(tr) / (d * d);
}

double tracediff_error(const Mat& e_target, const Mat& e) {
    if (e_target.rows() != e.rows() || e_target.cols() != e.cols()) {
        throw std::invalid_argument("tracediff_error: shape mismatch");
    }
    const Mat diff = e_target - e;
    const double d2 = static_cast<double>(e.rows());
    const double fro2 = diff.frobenius_norm();
    return 0.5 * fro2 * fro2 / d2;
}

double average_gate_fidelity(const Mat& u_target, const Mat& u) {
    const double d = static_cast<double>(u.rows());
    const double tr2 = std::norm(linalg::hs_inner(u_target, u));
    return (d + tr2) / (d * (d + 1.0));
}

double average_gate_fidelity_superop(const Mat& u_target, const Mat& superop) {
    const double d = static_cast<double>(u_target.rows());
    const Mat s_target = unitary_superop(u_target);
    const double f_pro = linalg::hs_inner(s_target, superop).real() / (d * d);
    return (d * f_pro + 1.0) / (d + 1.0);
}

double average_gate_fidelity_subspace(const Mat& u_target2, const Mat& superop,
                                      std::size_t levels) {
    if (u_target2.rows() != 2 || superop.rows() != levels * levels) {
        throw std::invalid_argument("average_gate_fidelity_subspace: shape mismatch");
    }
    // vec index of |i><j| under column stacking is i + d*j.
    auto idx = [levels](std::size_t i, std::size_t j) { return i + levels * j; };
    Mat sub(4, 4);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            for (std::size_t k = 0; k < 2; ++k)
                for (std::size_t l = 0; l < 2; ++l)
                    sub(i + 2 * j, k + 2 * l) = superop(idx(i, j), idx(k, l));
    const Mat s_target = unitary_superop(u_target2);
    const double f_pro = linalg::hs_inner(s_target, sub).real() / 4.0;
    return (2.0 * f_pro + 1.0) / 3.0;
}

double state_fidelity(const Mat& rho, const Mat& ket) {
    if (ket.cols() != 1 || rho.rows() != ket.rows()) {
        throw std::invalid_argument("state_fidelity: shape mismatch");
    }
    const Mat val = ket.adjoint() * rho * ket;
    return val(0, 0).real();
}

}  // namespace qoc::quantum
