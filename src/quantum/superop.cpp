#include "quantum/superop.hpp"

#include <cmath>
#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "linalg/kron.hpp"
#include "obs/obs.hpp"
#include "quantum/operators.hpp"

namespace qoc::quantum {

namespace {
using linalg::cplx;
using linalg::kron;
constexpr cplx kI{0.0, 1.0};
}  // namespace

Mat liouvillian_hamiltonian(const Mat& h) {
    if (!h.is_square()) throw std::invalid_argument("liouvillian_hamiltonian: non-square");
    contracts::check_hermitian(h, "liouvillian_hamiltonian: H");
    const std::size_t n = h.rows();
    const Mat ident = Mat::identity(n);
    // vec(-i(H rho - rho H)) = -i (I (x) H - H^T (x) I) vec(rho)
    return (-kI) * (kron(ident, h) - kron(h.transpose(), ident));
}

Mat lindblad_dissipator(const Mat& c) {
    if (!c.is_square()) throw std::invalid_argument("lindblad_dissipator: non-square");
    const std::size_t n = c.rows();
    const Mat ident = Mat::identity(n);
    const Mat cdc = c.adjoint() * c;
    // vec(C rho C^dagger) = (conj(C) (x) C) vec(rho)
    return kron(c.conj(), c) - 0.5 * kron(ident, cdc) - 0.5 * kron(cdc.transpose(), ident);
}

Mat liouvillian(const Mat& h, const std::vector<Mat>& collapse_ops) {
    Mat l = liouvillian_hamiltonian(h);
    for (const Mat& c : collapse_ops) l += lindblad_dissipator(c);
    // Generator-level trace preservation (Eq. 1): d/dt Tr rho = 0.
    contracts::check_trace_annihilating(l, "liouvillian: L");
    return l;
}

Mat unitary_superop(const Mat& u) {
    if (!u.is_square()) throw std::invalid_argument("unitary_superop: non-square");
    contracts::check_unitary(u, "unitary_superop: U");
    return kron(u.conj(), u);
}

void apply_superop_into(const StructuredSuperOp& superop, const Mat& vec_rho, Mat& out) {
    superop.apply_into(vec_rho, out);
}

void apply_superop_into(const KronSuperOp& superop, const Mat& vec_rho, Mat& out, Mat& scratch) {
    superop.apply_vec_into(vec_rho, out, scratch);
}

Mat apply_superop(const Mat& superop, const Mat& rho) {
    const std::size_t n = rho.rows();
    if (superop.rows() != n * n || superop.cols() != n * n) {
        throw std::invalid_argument("apply_superop: dimension mismatch");
    }
    return linalg::unvec(superop * linalg::vec(rho), n);
}

void apply_superop_into(const Mat& superop, const Mat& vec_rho, Mat& out) {
    if (vec_rho.cols() != 1 || superop.cols() != vec_rho.rows()) {
        throw std::invalid_argument("apply_superop_into: dimension mismatch");
    }
    obs::count(obs::Cnt::kSuperopApplies);
    linalg::gemv_into(superop, vec_rho, out);
}

bool is_trace_preserving(const Mat& superop, double tol) {
    const std::size_t n2 = superop.rows();
    const auto n = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(n2))));
    if (n * n != n2) return false;
    const Mat id_vec = linalg::vec(Mat::identity(n));
    const Mat lhs = superop.adjoint() * id_vec;  // rows of S contracted with vec(I)
    return (lhs - id_vec).max_abs() <= tol;
}

Mat depolarizing_superop(std::size_t dim, double p) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("depolarizing_superop: bad p");
    const std::size_t n2 = dim * dim;
    // rho -> (1-p) rho + p Tr(rho) I/d.  In vec form the second term is
    // (p/d) vec(I) vec(I)^T (column-stacking: Tr(rho) = vec(I)^T vec(rho)).
    Mat s = (1.0 - p) * Mat::identity(n2);
    const Mat id_vec = linalg::vec(Mat::identity(dim));
    const double w = p / static_cast<double>(dim);
    for (std::size_t i = 0; i < n2; ++i)
        for (std::size_t j = 0; j < n2; ++j)
            s(i, j) += w * id_vec(i, 0) * std::conj(id_vec(j, 0));
    contracts::check_trace_preserving(s, "depolarizing_superop");
    contracts::check_completely_positive(s, "depolarizing_superop");
    return s;
}

Mat amplitude_damping_superop(double gamma) {
    if (gamma < 0.0 || gamma > 1.0) throw std::invalid_argument("amplitude_damping: bad gamma");
    const double sg = std::sqrt(gamma), s1 = std::sqrt(1.0 - gamma);
    const Mat k0{{1.0, 0.0}, {0.0, s1}};
    const Mat k1{{0.0, sg}, {0.0, 0.0}};
    Mat s = kron(k0.conj(), k0) + kron(k1.conj(), k1);
    contracts::check_trace_preserving(s, "amplitude_damping_superop");
    contracts::check_completely_positive(s, "amplitude_damping_superop");
    return s;
}

Mat phase_damping_superop(double lambda) {
    if (lambda < 0.0 || lambda > 1.0) throw std::invalid_argument("phase_damping: bad lambda");
    const double s1 = std::sqrt(1.0 - lambda), sl = std::sqrt(lambda);
    const Mat k0{{1.0, 0.0}, {0.0, s1}};
    const Mat k1{{0.0, 0.0}, {0.0, sl}};
    Mat s = kron(k0.conj(), k0) + kron(k1.conj(), k1);
    contracts::check_trace_preserving(s, "phase_damping_superop");
    contracts::check_completely_positive(s, "phase_damping_superop");
    return s;
}

}  // namespace qoc::quantum
