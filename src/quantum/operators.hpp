/// \file operators.hpp
/// \brief Pauli matrices, ladder operators, Duffing-oscillator operators and
///        multi-qubit embedding helpers.

#pragma once

#include "linalg/matrix.hpp"

namespace qoc::quantum {

using linalg::cplx;
using linalg::Mat;

// --- Pauli matrices (2x2) ----------------------------------------------------
Mat sigma_x();
Mat sigma_y();
Mat sigma_z();
Mat sigma_plus();   ///< |1><0| raising operator (qubit convention |0>=ground)
Mat sigma_minus();  ///< |0><1| lowering operator
Mat identity2();

// --- d-level (transmon / Duffing) operators ----------------------------------

/// Annihilation operator `a` on a d-level truncated oscillator.
Mat annihilation(std::size_t dim);

/// Creation operator `a^dagger`.
Mat creation(std::size_t dim);

/// Number operator `a^dagger a`.
Mat number_op(std::size_t dim);

/// Duffing-oscillator drift Hamiltonian in the frame rotating at the drive
/// frequency:  H = delta * n + (alpha / 2) * n (n - 1)
/// where `delta` is the qubit-drive detuning and `alpha` the anharmonicity
/// (both angular frequencies).  For dim = 2 the anharmonic term vanishes and
/// this reduces to the Pauli model `delta * |1><1|`.
Mat duffing_drift(std::size_t dim, double delta, double anharmonicity);

/// Charge-drive operator `a + a^dagger` (the "X" control of a transmon;
/// matrix elements carry the sqrt(n) ladder factors that make DRAG matter).
Mat drive_x(std::size_t dim);

/// Quadrature-drive operator `i(a^dagger - a)` (the "Y" control).
Mat drive_y(std::size_t dim);

// --- multi-qubit helpers ------------------------------------------------------

/// Embeds `op` acting on qubit `target` of an n-qubit register (qubit 0 is
/// the most significant factor, matching the order used for kets |q0 q1 ...>).
Mat op_on_qubit(const Mat& op, std::size_t target, std::size_t n_qubits);

/// Tensor product of per-qubit operators, qubit 0 first.
Mat tensor(const std::vector<Mat>& ops);

/// Projector onto the two-level computational subspace of a d-level system
/// (d >= 2), as a d x 2 isometry P with P^dagger P = I_2.
Mat qubit_isometry(std::size_t dim);

/// Embeds a 2x2 qubit operator into the d-level space (zero outside the
/// computational subspace).
Mat embed_qubit_op(const Mat& op2, std::size_t dim);

}  // namespace qoc::quantum
