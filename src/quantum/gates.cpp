#include "quantum/gates.hpp"

#include <cmath>

namespace qoc::quantum::gates {

namespace {
using linalg::cplx;
constexpr cplx kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

Mat x() { return Mat{{0.0, 1.0}, {1.0, 0.0}}; }
Mat y() { return Mat{{0.0, -kI}, {kI, 0.0}}; }
Mat z() { return Mat{{1.0, 0.0}, {0.0, -1.0}}; }

Mat h() { return Mat{{kInvSqrt2, kInvSqrt2}, {kInvSqrt2, -kInvSqrt2}}; }

Mat s() { return Mat{{1.0, 0.0}, {0.0, kI}}; }
Mat sdg() { return Mat{{1.0, 0.0}, {0.0, -kI}}; }

Mat sx() {
    // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
    const cplx a{0.5, 0.5}, b{0.5, -0.5};
    return Mat{{a, b}, {b, a}};
}

Mat sxdg() { return sx().adjoint(); }

Mat t() { return Mat{{1.0, 0.0}, {0.0, std::exp(kI * (M_PI / 4.0))}}; }

Mat rx(double theta) {
    const double c = std::cos(theta / 2.0), s_ = std::sin(theta / 2.0);
    return Mat{{cplx{c, 0.0}, -kI * s_}, {-kI * s_, cplx{c, 0.0}}};
}

Mat ry(double theta) {
    const double c = std::cos(theta / 2.0), s_ = std::sin(theta / 2.0);
    return Mat{{cplx{c, 0.0}, cplx{-s_, 0.0}}, {cplx{s_, 0.0}, cplx{c, 0.0}}};
}

Mat rz(double theta) {
    return Mat{{std::exp(-kI * (theta / 2.0)), 0.0}, {0.0, std::exp(kI * (theta / 2.0))}};
}

Mat u3(double theta, double phi, double lambda) {
    const double c = std::cos(theta / 2.0), s_ = std::sin(theta / 2.0);
    return Mat{{cplx{c, 0.0}, -std::exp(kI * lambda) * s_},
               {std::exp(kI * phi) * s_, std::exp(kI * (phi + lambda)) * c}};
}

Mat cx() {
    return Mat{{1.0, 0.0, 0.0, 0.0},
               {0.0, 1.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 1.0},
               {0.0, 0.0, 1.0, 0.0}};
}

Mat cx_10() {
    return Mat{{1.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 1.0},
               {0.0, 0.0, 1.0, 0.0},
               {0.0, 1.0, 0.0, 0.0}};
}

Mat cz() {
    return Mat{{1.0, 0.0, 0.0, 0.0},
               {0.0, 1.0, 0.0, 0.0},
               {0.0, 0.0, 1.0, 0.0},
               {0.0, 0.0, 0.0, -1.0}};
}

Mat swap() {
    return Mat{{1.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, 1.0, 0.0},
               {0.0, 1.0, 0.0, 0.0},
               {0.0, 0.0, 0.0, 1.0}};
}

Mat iswap() {
    return Mat{{1.0, 0.0, 0.0, 0.0},
               {0.0, 0.0, kI, 0.0},
               {0.0, kI, 0.0, 0.0},
               {0.0, 0.0, 0.0, 1.0}};
}

Mat zx90() {
    // exp(-i pi/4 Z(x)X) = cos(pi/4) I - i sin(pi/4) Z(x)X
    const double c = kInvSqrt2;
    Mat zx{{0.0, 1.0, 0.0, 0.0},
           {1.0, 0.0, 0.0, 0.0},
           {0.0, 0.0, 0.0, -1.0},
           {0.0, 0.0, -1.0, 0.0}};
    return c * Mat::identity(4) + (-kI * c) * zx;
}

}  // namespace qoc::quantum::gates
