#include "quantum/superop_kron.hpp"

#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "linalg/kron.hpp"
#include "linalg/simd_kernels.hpp"
#include "obs/obs.hpp"

namespace qoc::quantum {

namespace {

constexpr linalg::cplx kI{0.0, 1.0};

/// out (+)= src, element-wise (identity-factor term; no products involved).
void add_or_copy(const Mat& src, Mat& out, bool accumulate) {
    const std::size_t n = src.rows() * src.cols();
    const cplx* s = src.data().data();
    cplx* o = out.data().data();
    if (accumulate) {
        for (std::size_t i = 0; i < n; ++i) o[i] += s[i];
    } else {
        for (std::size_t i = 0; i < n; ++i) o[i] = s[i];
    }
}

}  // namespace

void KronSuperOp::add_term(const Mat& a, const Mat& b) {
    std::size_t d = 0;
    if (!a.empty()) {
        if (!a.is_square()) throw std::invalid_argument("KronSuperOp: non-square left factor");
        d = a.rows();
    }
    if (!b.empty()) {
        if (!b.is_square()) throw std::invalid_argument("KronSuperOp: non-square right factor");
        if (d != 0 && b.rows() != d)
            throw std::invalid_argument("KronSuperOp: factor dimension mismatch");
        d = b.rows();
    }
    if (d == 0) throw std::invalid_argument("KronSuperOp: both factors empty");
    if (dim_ != 0 && d != dim_)
        throw std::invalid_argument("KronSuperOp: term dimension mismatch");
    dim_ = d;

    Term t;
    t.a = a;
    t.b = b;
    if (!a.empty()) t.at = a.transpose();
    if (!b.empty()) t.bt = b.transpose();
    terms_.push_back(std::move(t));
}

KronSuperOp KronSuperOp::hamiltonian(const Mat& h) {
    if (!h.is_square()) throw std::invalid_argument("KronSuperOp::hamiltonian: non-square H");
    contracts::check_hermitian(h, "KronSuperOp::hamiltonian: H");
    const Mat k = (-kI) * h;  // K = -iH; L rho = K rho + rho K^dagger
    KronSuperOp s;
    s.add_term(k, Mat{});
    s.add_term(Mat{}, k.adjoint());
    contracts::check_trace_annihilating_action(s.trace_action(), "KronSuperOp::hamiltonian");
    return s;
}

KronSuperOp KronSuperOp::liouvillian(const Mat& h, const std::vector<Mat>& collapse_ops) {
    if (!h.is_square()) throw std::invalid_argument("KronSuperOp::liouvillian: non-square H");
    contracts::check_hermitian(h, "KronSuperOp::liouvillian: H");
    const std::size_t d = h.rows();
    // K = -iH - 1/2 sum_k C_k^dagger C_k, so that
    //   L rho = K rho + rho K^dagger + sum_k C_k rho C_k^dagger.
    Mat k = (-kI) * h;
    for (const Mat& c : collapse_ops) {
        if (c.rows() != d || c.cols() != d)
            throw std::invalid_argument("KronSuperOp::liouvillian: collapse op shape mismatch");
        k = k + cplx{-0.5, 0.0} * linalg::adjoint_times(c, c);
    }
    KronSuperOp s;
    s.add_term(k, Mat{});
    s.add_term(Mat{}, k.adjoint());
    for (const Mat& c : collapse_ops) s.add_term(c, c.adjoint());
    contracts::check_trace_annihilating_action(s.trace_action(), "KronSuperOp::liouvillian");
    return s;
}

KronSuperOp KronSuperOp::unitary(const Mat& u) {
    if (!u.is_square()) throw std::invalid_argument("KronSuperOp::unitary: non-square U");
    contracts::check_unitary(u, "KronSuperOp::unitary: U", 1e-7);
    KronSuperOp s;
    s.add_term(u, u.adjoint());
    contracts::check_trace_preserving_action(s.trace_action(), "KronSuperOp::unitary", 1e-7);
    return s;
}

void KronSuperOp::apply_rho_into(const Mat& rho, Mat& out, Mat& scratch) const {
    if (rho.rows() != dim_ || rho.cols() != dim_)
        throw std::invalid_argument("KronSuperOp::apply_rho_into: shape mismatch");
    obs::count(obs::Cnt::kSuperopKronApplies);
    out.resize(dim_, dim_);
    scratch.resize(dim_, dim_);
    const std::size_t d = dim_;
    bool first = true;
    for (const Term& t : terms_) {
        const bool acc = !first;
        if (!t.a.empty() && !t.b.empty()) {
            linalg::simd::gemm_raw(t.a.data().data(), rho.data().data(),
                                   scratch.data().data(), d, d, d, /*accumulate=*/false);
            linalg::simd::gemm_raw(scratch.data().data(), t.b.data().data(),
                                   out.data().data(), d, d, d, acc);
        } else if (!t.a.empty()) {
            linalg::simd::gemm_raw(t.a.data().data(), rho.data().data(), out.data().data(),
                                   d, d, d, acc);
        } else if (!t.b.empty()) {
            linalg::simd::gemm_raw(rho.data().data(), t.b.data().data(), out.data().data(),
                                   d, d, d, acc);
        } else {
            add_or_copy(rho, out, acc);
        }
        first = false;
    }
}

void KronSuperOp::apply_vec_into(const Mat& vec_rho, Mat& out, Mat& scratch) const {
    if (vec_rho.cols() != 1 || vec_rho.rows() != dim_ * dim_)
        throw std::invalid_argument("KronSuperOp::apply_vec_into: shape mismatch");
    obs::count(obs::Cnt::kSuperopKronApplies);
    out.resize(dim_ * dim_, 1);
    scratch.resize(dim_, dim_);
    const std::size_t d = dim_;
    // The row-major d^2 buffer of a column-stacked vec(rho) reinterpreted as
    // a row-major d x d matrix is M = rho^T; the term rho -> A rho B is then
    // M' = B^T M A^T (factors pre-transposed in Term::bt / Term::at).
    const cplx* m = vec_rho.data().data();
    cplx* o = out.data().data();
    bool first = true;
    for (const Term& t : terms_) {
        const bool acc = !first;
        if (!t.a.empty() && !t.b.empty()) {
            linalg::simd::gemm_raw(t.bt.data().data(), m, scratch.data().data(), d, d, d,
                                   /*accumulate=*/false);
            linalg::simd::gemm_raw(scratch.data().data(), t.at.data().data(), o, d, d, d, acc);
        } else if (!t.b.empty()) {
            linalg::simd::gemm_raw(t.bt.data().data(), m, o, d, d, d, acc);
        } else if (!t.a.empty()) {
            linalg::simd::gemm_raw(m, t.at.data().data(), o, d, d, d, acc);
        } else {
            add_or_copy(vec_rho, out, acc);
        }
        first = false;
    }
}

Mat KronSuperOp::to_dense() const {
    const Mat eye = Mat::identity(dim_);
    Mat s(dim_ * dim_, dim_ * dim_);
    for (const Term& t : terms_) {
        const Mat& a = t.a.empty() ? eye : t.a;
        const Mat bt = t.b.empty() ? eye : t.b.transpose();
        s = s + linalg::kron(bt, a);
    }
    return s;
}

Mat KronSuperOp::trace_action() const {
    const Mat eye = Mat::identity(dim_);
    Mat t_out(dim_, dim_);
    for (const Term& t : terms_) {
        const Mat& a = t.a.empty() ? eye : t.a;
        const Mat& b = t.b.empty() ? eye : t.b;
        t_out = t_out + b * a;
    }
    return t_out;
}

}  // namespace qoc::quantum
