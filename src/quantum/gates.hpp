/// \file gates.hpp
/// \brief Standard quantum gates used as optimization targets and in the
///        Clifford constructions.

#pragma once

#include "linalg/matrix.hpp"

namespace qoc::quantum::gates {

using linalg::Mat;

Mat x();        ///< Pauli X (NOT, the paper's pi-pulse gate)
Mat y();
Mat z();
Mat h();        ///< Hadamard
Mat s();        ///< sqrt(Z)
Mat sdg();      ///< S^dagger
Mat sx();       ///< sqrt(X), an IBM basis gate
Mat sxdg();
Mat t();
Mat rx(double theta);
Mat ry(double theta);
Mat rz(double theta);  ///< e^{-i theta Z / 2}; virtual on IBM hardware
Mat u3(double theta, double phi, double lambda);

Mat cx();       ///< CNOT, control = qubit 0 (most significant)
Mat cx_10();    ///< CNOT with control = qubit 1
Mat cz();
Mat swap();
Mat iswap();
Mat zx90();     ///< e^{-i pi/4 Z(x)X}, the echoed cross-resonance primitive

}  // namespace qoc::quantum::gates
