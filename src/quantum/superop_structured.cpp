#include "quantum/superop_structured.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "linalg/simd_kernels.hpp"
#include "obs/obs.hpp"

namespace qoc::quantum {

StructuredSuperOp StructuredSuperOp::from_dense(const Mat& superop, double fill_cutoff) {
    if (!superop.is_square())
        throw std::invalid_argument("StructuredSuperOp::from_dense: non-square superoperator");
    StructuredSuperOp s;
    s.dense_ = superop;
    linalg::CsrMat csr = linalg::CsrMat::from_dense(superop, /*threshold=*/0.0);
    if (csr.fill_fraction() <= fill_cutoff) {
        s.csr_ = std::move(csr);
        s.kind_ = Kind::kCsr;
    } else {
        s.kind_ = Kind::kDense;
    }
    return s;
}

double StructuredSuperOp::fill_fraction() const noexcept {
    if (dense_.rows() == 0) return 1.0;
    std::size_t nnz = 0;
    for (const cplx& v : dense_.data())
        if (v != cplx{0.0, 0.0}) ++nnz;
    return static_cast<double>(nnz) /
           static_cast<double>(dense_.rows() * dense_.cols());
}

void StructuredSuperOp::apply_into(const Mat& vec_rho, Mat& out) const {
    if (vec_rho.cols() != 1 || vec_rho.rows() != dim())
        throw std::invalid_argument("StructuredSuperOp::apply_into: shape mismatch");
    out.resize(dim(), 1);
    if (kind_ == Kind::kCsr) {
        obs::count(obs::Cnt::kSuperopCsrApplies);
        csr_.apply_col(vec_rho.data().data(), out.data().data(), /*stride=*/1);
    } else {
        obs::count(obs::Cnt::kSuperopApplies);
        linalg::simd::gemm_raw(dense_.data().data(), vec_rho.data().data(),
                               out.data().data(), dim(), dim(), 1, /*accumulate=*/false);
    }
}

void StructuredSuperOp::apply_col(const cplx* in, cplx* out, std::size_t stride) const noexcept {
    if (kind_ == Kind::kCsr) {
        obs::count(obs::Cnt::kSuperopCsrApplies);
        csr_.apply_col(in, out, stride);
    } else {
        obs::count(obs::Cnt::kSuperopApplies);
        linalg::simd::gemv_strided(dense_.data().data(), dim(), in, out, stride,
                                   /*accumulate=*/false);
    }
}

void StructuredSuperOp::apply_batch_into(const Mat& batch, Mat& out) const {
    if (batch.rows() != dim())
        throw std::invalid_argument("StructuredSuperOp::apply_batch_into: shape mismatch");
    out.resize(dim(), batch.cols());
    obs::count(obs::Cnt::kSuperopBatchApplies);
    if (kind_ == Kind::kCsr) {
        csr_.apply_batch_into(batch, out);
    } else {
        linalg::simd::gemm_raw(dense_.data().data(), batch.data().data(), out.data().data(),
                               dim(), dim(), batch.cols(), /*accumulate=*/false);
    }
}

namespace {

// -1: follow the environment; 0 / 1: programmatic override (tests).
std::atomic<int> g_dense_override{-1};

bool env_dense_forced() noexcept {
    static const bool forced = [] {
        const char* e = std::getenv("QOC_DENSE_SUPEROP");
        return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
    }();
    return forced;
}

}  // namespace

bool dense_superop_forced() noexcept {
    const int o = g_dense_override.load(std::memory_order_relaxed);
    if (o >= 0) return o != 0;
    return env_dense_forced();
}

void force_dense_superop(bool forced) noexcept {
    g_dense_override.store(forced ? 1 : 0, std::memory_order_relaxed);
}

void clear_dense_superop_override() noexcept {
    g_dense_override.store(-1, std::memory_order_relaxed);
}

}  // namespace qoc::quantum
