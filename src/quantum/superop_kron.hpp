/// \file superop_kron.hpp
/// \brief Kronecker-factored superoperators: sums of terms `rho -> A rho B`
///        kept as d x d factor pairs and applied without ever materializing
///        the d^2 x d^2 matrix.
///
/// Under the repo's column-stacking convention `vec(A X B) = (B^T (x) A)
/// vec(X)`, a row-major d^2 buffer holding vec(rho) reinterpreted as a
/// row-major d x d matrix is M = rho^T, and the term `rho -> A rho B`
/// becomes the two-sided dense update
///
///     M' = B^T * M * A^T
///
/// i.e. two plain row-major d x d GEMMs per general term (one when a factor
/// is the identity).  A k-term superoperator therefore applies in O(k d^3)
/// instead of the O(d^4) dense matvec -- the asymptotic win behind the
/// factored Liouvillian (`hamiltonian` has 2 terms, `liouvillian` with n_c
/// collapse operators 2 + n_c, `unitary` exactly 1).
///
/// All arithmetic runs through `linalg::simd` (see simd_kernels.hpp for the
/// determinism contract), so a factored apply is reproducible bitwise across
/// vector width and thread count -- but it rounds differently from the
/// dense d^2 x d^2 matvec, hence the 1e-12 dense-vs-structured agreement
/// budget on RB curves rather than bitwise equality.

#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::quantum {

using linalg::Mat;
using linalg::cplx;

class KronSuperOp {
public:
    /// One `rho -> A rho B` term.  Empty `a` / `b` means identity on that
    /// side.  `at` / `bt` cache the transposed factors the vec-apply uses
    /// (M' = bt * M * at), so the hot path never re-transposes.
    struct Term {
        Mat a;   ///< left factor A (empty = identity)
        Mat b;   ///< right factor B (empty = identity)
        Mat at;  ///< A^T, right gemm factor of the vec apply
        Mat bt;  ///< B^T, left gemm factor of the vec apply
    };

    /// Empty superoperator (no terms); `dim() == 0`.
    KronSuperOp() = default;

    /// `L_H rho = -i [H, rho]`, factored as `K rho + rho K^dagger` with
    /// `K = -i H` (2 one-sided terms).
    static KronSuperOp hamiltonian(const Mat& h);

    /// Full Lindblad generator `-i[H, rho] + sum_k C_k rho C_k^dagger
    /// - 1/2 {C_k^dagger C_k, rho}` regrouped as
    ///     K rho + rho K^dagger + sum_k C_k rho C_k^dagger,
    /// K = -i H - 1/2 sum_k C_k^dagger C_k  --  2 + n_c terms total.
    static KronSuperOp liouvillian(const Mat& h, const std::vector<Mat>& collapse_ops);

    /// Unitary conjugation `rho -> U rho U^dagger` as a single pair term.
    static KronSuperOp unitary(const Mat& u);

    /// Appends a raw `rho -> A rho B` term (empty Mat = identity factor).
    void add_term(const Mat& a, const Mat& b);

    /// Hilbert-space dimension d (0 when empty).
    std::size_t dim() const noexcept { return dim_; }
    std::size_t term_count() const noexcept { return terms_.size(); }
    const std::vector<Term>& terms() const noexcept { return terms_; }

    /// `out = sum_t A_t rho B_t` on density matrices directly (d x d in/out).
    /// `scratch` is caller-owned d x d workspace; allocation-free once all
    /// three have seen the shape.  No alias between rho/out/scratch.
    void apply_rho_into(const Mat& rho, Mat& out, Mat& scratch) const;

    /// Vectorized action `out = S vec_rho` on a d^2 x 1 column (the RB /
    /// propagation layout), via the reshaped two-sided updates above.
    /// Never forms the d^2 x d^2 matrix.  Same workspace contract.
    void apply_vec_into(const Mat& vec_rho, Mat& out, Mat& scratch) const;

    /// Materializes the dense d^2 x d^2 superoperator `sum_t B_t^T (x) A_t`
    /// (oracle tests, fallback interop).  Allocates; cold path only.
    Mat to_dense() const;

    /// Trace-action matrix `T = sum_t B_t A_t` (d x d): `tr(S(rho)) =
    /// tr(T rho)`, so T == 0 for generators and T == I for channels.  This
    /// is what `contracts::check_trace_*_action` verifies in O(k d^3)
    /// instead of the O(d^4) dense trace-row test.
    Mat trace_action() const;

private:
    std::size_t dim_ = 0;
    std::vector<Term> terms_;
};

}  // namespace qoc::quantum
