/// \file states.hpp
/// \brief Kets, density matrices and measurement-related helpers.

#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::quantum {

using linalg::cplx;
using linalg::Mat;

/// Computational basis ket |k> of dimension `dim`, as a column vector.
Mat basis_ket(std::size_t dim, std::size_t k);

/// Density matrix |psi><psi| of a (normalized) ket.
Mat ket_to_dm(const Mat& ket);

/// Multi-qubit basis ket from bit string, qubit 0 first (|q0 q1 ...>).
Mat basis_ket_bits(const std::vector<int>& bits);

/// True when `rho` is a valid density matrix: Hermitian, unit trace,
/// positive semidefinite (eigenvalues >= -tol).
bool is_density_matrix(const Mat& rho, double tol = 1e-9);

/// Tr(rho^2).
double purity(const Mat& rho);

/// Diagonal of rho (basis-state populations), clipped to [0, 1].
std::vector<double> populations(const Mat& rho);

/// Bloch vector (x, y, z) of a single-qubit density matrix.
struct BlochVector {
    double x, y, z;
};
BlochVector bloch_vector(const Mat& rho);

/// Partial trace over subsystem `which` (0 or 1) of a bipartite state on
/// dims (d0, d1).  Returns the reduced density matrix of the other part.
Mat partial_trace(const Mat& rho, std::size_t d0, std::size_t d1, std::size_t which);

}  // namespace qoc::quantum
