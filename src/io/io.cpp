#include "io/io.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace qoc::io {

namespace {

std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    return cells;
}

double parse_double(const std::string& s) {
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size()) throw std::runtime_error("io: non-numeric cell '" + s + "'");
        return v;
    } catch (const std::invalid_argument&) {
        throw std::runtime_error("io: non-numeric cell '" + s + "'");
    } catch (const std::out_of_range&) {
        throw std::runtime_error("io: value out of range '" + s + "'");
    }
}

}  // namespace

void write_amplitudes_csv(std::ostream& os, const dynamics::ControlAmplitudes& amps) {
    if (amps.empty()) throw std::invalid_argument("write_amplitudes_csv: empty table");
    os << "slot";
    for (std::size_t j = 0; j < amps[0].size(); ++j) os << ",u" << j;
    os << "\n";
    os << std::setprecision(17);
    for (std::size_t k = 0; k < amps.size(); ++k) {
        os << k;
        for (double v : amps[k]) os << ',' << v;
        os << "\n";
    }
}

dynamics::ControlAmplitudes read_amplitudes_csv(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line.rfind("slot", 0) != 0) {
        throw std::runtime_error("read_amplitudes_csv: missing header");
    }
    const std::size_t n_ctrl = split_csv(line).size() - 1;
    if (n_ctrl == 0) throw std::runtime_error("read_amplitudes_csv: no control columns");

    dynamics::ControlAmplitudes amps;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const auto cells = split_csv(line);
        if (cells.size() != n_ctrl + 1) {
            throw std::runtime_error("read_amplitudes_csv: ragged row '" + line + "'");
        }
        std::vector<double> slot(n_ctrl);
        for (std::size_t j = 0; j < n_ctrl; ++j) slot[j] = parse_double(cells[j + 1]);
        amps.push_back(std::move(slot));
    }
    if (amps.empty()) throw std::runtime_error("read_amplitudes_csv: no rows");
    return amps;
}

void save_amplitudes(const std::string& path, const dynamics::ControlAmplitudes& amps) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("save_amplitudes: cannot open " + path);
    write_amplitudes_csv(os, amps);
}

dynamics::ControlAmplitudes load_amplitudes(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("load_amplitudes: cannot open " + path);
    return read_amplitudes_csv(is);
}

void write_samples_csv(std::ostream& os, const std::vector<std::complex<double>>& samples) {
    os << "t_dt,re,im\n" << std::setprecision(17);
    for (std::size_t k = 0; k < samples.size(); ++k) {
        os << k << ',' << samples[k].real() << ',' << samples[k].imag() << "\n";
    }
}

std::vector<std::complex<double>> read_samples_csv(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line.rfind("t_dt", 0) != 0) {
        throw std::runtime_error("read_samples_csv: missing header");
    }
    std::vector<std::complex<double>> samples;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const auto cells = split_csv(line);
        if (cells.size() != 3) throw std::runtime_error("read_samples_csv: ragged row");
        samples.emplace_back(parse_double(cells[1]), parse_double(cells[2]));
    }
    return samples;
}

namespace {

/// Cursor scanner for the canonical one-line JSON the writers below emit.
/// Not a general JSON parser: field order and spelling are fixed, which
/// keeps the round-trip contract easy to verify and the code small.
class LineScanner {
public:
    explicit LineScanner(const std::string& line) : s_(line) {}

    void expect(const char* lit) {
        const std::size_t n = std::string_view(lit).size();
        if (s_.compare(pos_, n, lit) != 0) {
            throw std::runtime_error("io: malformed record, expected '" + std::string(lit) +
                                     "' at column " + std::to_string(pos_));
        }
        pos_ += n;
    }

    bool peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }

    std::uint64_t u64() {
        if (pos_ >= s_.size() || (!std::isdigit(static_cast<unsigned char>(s_[pos_])))) {
            throw std::runtime_error("io: malformed record, expected integer");
        }
        std::uint64_t v = 0;
        while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            v = v * 10 + static_cast<std::uint64_t>(s_[pos_] - '0');
            ++pos_;
        }
        return v;
    }

    std::int64_t i64() {
        bool neg = false;
        if (peek('-')) {
            neg = true;
            ++pos_;
        }
        const std::uint64_t mag = u64();
        return neg ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
    }

    std::string quoted() {
        expect("\"");
        const std::size_t end = s_.find('"', pos_);
        if (end == std::string::npos) throw std::runtime_error("io: unterminated string");
        std::string out = s_.substr(pos_, end - pos_);
        pos_ = end + 1;
        return out;
    }

    std::vector<std::uint64_t> u64_array() {
        expect("[");
        std::vector<std::uint64_t> out;
        if (!peek(']')) {
            for (;;) {
                out.push_back(u64());
                if (peek(',')) {
                    ++pos_;
                    continue;
                }
                break;
            }
        }
        expect("]");
        return out;
    }

private:
    const std::string& s_;
    std::size_t pos_ = 0;
};

void write_u64_array(std::ostream& os, const std::vector<std::uint64_t>& v) {
    os << '[';
    for (std::size_t i = 0; i < v.size(); ++i) os << (i == 0 ? "" : ",") << v[i];
    os << ']';
}

}  // namespace

void write_pulse_store_jsonl(std::ostream& os, const std::vector<PulseStoreRecord>& records) {
    for (const PulseStoreRecord& r : records) {
        os << "{\"type\":\"pulse\",\"key\":" << r.key << ",\"gate\":\"" << r.gate
           << "\",\"qubit\":" << r.qubit << ",\"duration_dt\":" << r.duration_dt
           << ",\"fid_bits\":" << r.fid_bits << ",\"state\":" << r.state
           << ",\"design_count\":" << r.design_count << ",\"validated\":";
        write_u64_array(os, r.validated_bits);
        os << ",\"channels\":[";
        for (std::size_t c = 0; c < r.channels.size(); ++c) {
            const auto& ch = r.channels[c];
            os << (c == 0 ? "" : ",") << "{\"ch_type\":" << ch.type
               << ",\"ch_index\":" << ch.index << ",\"re\":";
            write_u64_array(os, ch.re_bits);
            os << ",\"im\":";
            write_u64_array(os, ch.im_bits);
            os << '}';
        }
        os << "]}\n";
    }
}

std::vector<PulseStoreRecord> read_pulse_store_jsonl(std::istream& is) {
    std::vector<PulseStoreRecord> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        LineScanner sc(line);
        PulseStoreRecord r;
        sc.expect("{\"type\":\"pulse\",\"key\":");
        r.key = sc.u64();
        sc.expect(",\"gate\":");
        r.gate = sc.quoted();
        sc.expect(",\"qubit\":");
        r.qubit = sc.u64();
        sc.expect(",\"duration_dt\":");
        r.duration_dt = sc.u64();
        sc.expect(",\"fid_bits\":");
        r.fid_bits = sc.u64();
        sc.expect(",\"state\":");
        r.state = sc.u64();
        sc.expect(",\"design_count\":");
        r.design_count = sc.u64();
        sc.expect(",\"validated\":");
        r.validated_bits = sc.u64_array();
        sc.expect(",\"channels\":[");
        if (!sc.peek(']')) {
            for (;;) {
                PulseStoreRecord::Channel ch;
                sc.expect("{\"ch_type\":");
                ch.type = sc.u64();
                sc.expect(",\"ch_index\":");
                ch.index = sc.u64();
                sc.expect(",\"re\":");
                ch.re_bits = sc.u64_array();
                sc.expect(",\"im\":");
                ch.im_bits = sc.u64_array();
                sc.expect("}");
                if (ch.re_bits.size() != ch.im_bits.size()) {
                    throw std::runtime_error("io: pulse record with ragged re/im arrays");
                }
                r.channels.push_back(std::move(ch));
                if (sc.peek(',')) {
                    sc.expect(",");
                    continue;
                }
                break;
            }
        }
        sc.expect("]}");
        out.push_back(std::move(r));
    }
    return out;
}

void write_request_log_jsonl(std::ostream& os, const std::vector<RequestLogRecord>& records) {
    for (const RequestLogRecord& r : records) {
        os << "{\"type\":\"request\",\"index\":" << r.index << ",\"day\":" << r.day
           << ",\"device_id\":" << r.device_id << ",\"gate\":\"" << r.gate
           << "\",\"qubit\":" << r.qubit << ",\"duration_dt\":" << r.duration_dt
           << ",\"n_timeslots\":" << r.n_timeslots
           << ",\"max_iterations\":" << r.max_iterations
           << ",\"design_seed\":" << r.design_seed << ",\"priority\":" << r.priority
           << "}\n";
    }
}

std::vector<RequestLogRecord> read_request_log_jsonl(std::istream& is) {
    std::vector<RequestLogRecord> out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        LineScanner sc(line);
        RequestLogRecord r;
        sc.expect("{\"type\":\"request\",\"index\":");
        r.index = sc.u64();
        sc.expect(",\"day\":");
        r.day = sc.i64();
        sc.expect(",\"device_id\":");
        r.device_id = sc.u64();
        sc.expect(",\"gate\":");
        r.gate = sc.quoted();
        sc.expect(",\"qubit\":");
        r.qubit = sc.u64();
        sc.expect(",\"duration_dt\":");
        r.duration_dt = sc.u64();
        sc.expect(",\"n_timeslots\":");
        r.n_timeslots = sc.u64();
        sc.expect(",\"max_iterations\":");
        r.max_iterations = sc.i64();
        sc.expect(",\"design_seed\":");
        r.design_seed = sc.u64();
        sc.expect(",\"priority\":");
        r.priority = sc.u64();
        sc.expect("}");
        out.push_back(std::move(r));
    }
    return out;
}

void write_rb_curve_csv(std::ostream& os, const rb::RbCurve& curve) {
    os << std::setprecision(10);
    os << "# fit A=" << curve.a << " alpha=" << curve.alpha << " B=" << curve.b
       << " alpha_err=" << curve.alpha_err << " epc=" << curve.epc
       << " epc_err=" << curve.epc_err << "\n";
    os << "length,survival,sem,fit\n";
    for (const auto& pt : curve.points) {
        const double fit =
            curve.a * std::pow(curve.alpha, static_cast<double>(pt.length)) + curve.b;
        os << pt.length << ',' << pt.mean_survival << ',' << pt.sem << ',' << fit << "\n";
    }
}

}  // namespace qoc::io
