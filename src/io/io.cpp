#include "io/io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace qoc::io {

namespace {

std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    return cells;
}

double parse_double(const std::string& s) {
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        if (pos != s.size()) throw std::runtime_error("io: non-numeric cell '" + s + "'");
        return v;
    } catch (const std::invalid_argument&) {
        throw std::runtime_error("io: non-numeric cell '" + s + "'");
    } catch (const std::out_of_range&) {
        throw std::runtime_error("io: value out of range '" + s + "'");
    }
}

}  // namespace

void write_amplitudes_csv(std::ostream& os, const dynamics::ControlAmplitudes& amps) {
    if (amps.empty()) throw std::invalid_argument("write_amplitudes_csv: empty table");
    os << "slot";
    for (std::size_t j = 0; j < amps[0].size(); ++j) os << ",u" << j;
    os << "\n";
    os << std::setprecision(17);
    for (std::size_t k = 0; k < amps.size(); ++k) {
        os << k;
        for (double v : amps[k]) os << ',' << v;
        os << "\n";
    }
}

dynamics::ControlAmplitudes read_amplitudes_csv(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line.rfind("slot", 0) != 0) {
        throw std::runtime_error("read_amplitudes_csv: missing header");
    }
    const std::size_t n_ctrl = split_csv(line).size() - 1;
    if (n_ctrl == 0) throw std::runtime_error("read_amplitudes_csv: no control columns");

    dynamics::ControlAmplitudes amps;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const auto cells = split_csv(line);
        if (cells.size() != n_ctrl + 1) {
            throw std::runtime_error("read_amplitudes_csv: ragged row '" + line + "'");
        }
        std::vector<double> slot(n_ctrl);
        for (std::size_t j = 0; j < n_ctrl; ++j) slot[j] = parse_double(cells[j + 1]);
        amps.push_back(std::move(slot));
    }
    if (amps.empty()) throw std::runtime_error("read_amplitudes_csv: no rows");
    return amps;
}

void save_amplitudes(const std::string& path, const dynamics::ControlAmplitudes& amps) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("save_amplitudes: cannot open " + path);
    write_amplitudes_csv(os, amps);
}

dynamics::ControlAmplitudes load_amplitudes(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("load_amplitudes: cannot open " + path);
    return read_amplitudes_csv(is);
}

void write_samples_csv(std::ostream& os, const std::vector<std::complex<double>>& samples) {
    os << "t_dt,re,im\n" << std::setprecision(17);
    for (std::size_t k = 0; k < samples.size(); ++k) {
        os << k << ',' << samples[k].real() << ',' << samples[k].imag() << "\n";
    }
}

std::vector<std::complex<double>> read_samples_csv(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line.rfind("t_dt", 0) != 0) {
        throw std::runtime_error("read_samples_csv: missing header");
    }
    std::vector<std::complex<double>> samples;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const auto cells = split_csv(line);
        if (cells.size() != 3) throw std::runtime_error("read_samples_csv: ragged row");
        samples.emplace_back(parse_double(cells[1]), parse_double(cells[2]));
    }
    return samples;
}

void write_rb_curve_csv(std::ostream& os, const rb::RbCurve& curve) {
    os << std::setprecision(10);
    os << "# fit A=" << curve.a << " alpha=" << curve.alpha << " B=" << curve.b
       << " alpha_err=" << curve.alpha_err << " epc=" << curve.epc
       << " epc_err=" << curve.epc_err << "\n";
    os << "length,survival,sem,fit\n";
    for (const auto& pt : curve.points) {
        const double fit =
            curve.a * std::pow(curve.alpha, static_cast<double>(pt.length)) + curve.b;
        os << pt.length << ',' << pt.mean_survival << ',' << pt.sem << ',' << fit << "\n";
    }
}

}  // namespace qoc::io
