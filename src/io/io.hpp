/// \file io.hpp
/// \brief Serialization of pulses, schedules and benchmarking results to
///        CSV, so designs can be archived, replayed across "days" and
///        plotted externally -- the workflow the paper's multi-day drift
///        experiments require (optimize once, re-run for a week).

#pragma once

#include <iosfwd>
#include <string>

#include "dynamics/propagator.hpp"
#include "pulse/schedule.hpp"
#include "rb/rb.hpp"

namespace qoc::io {

/// Writes control amplitudes as CSV: header `slot,u0,u1,...`, one row per
/// timeslot.
void write_amplitudes_csv(std::ostream& os, const dynamics::ControlAmplitudes& amps);

/// Reads amplitudes back.  Throws `std::runtime_error` on malformed input
/// (ragged rows, non-numeric cells, missing header).
dynamics::ControlAmplitudes read_amplitudes_csv(std::istream& is);

/// File-path convenience wrappers.
void save_amplitudes(const std::string& path, const dynamics::ControlAmplitudes& amps);
dynamics::ControlAmplitudes load_amplitudes(const std::string& path);

/// Writes a channel's complex samples as CSV: `t_dt,re,im`.
void write_samples_csv(std::ostream& os, const std::vector<std::complex<double>>& samples);
std::vector<std::complex<double>> read_samples_csv(std::istream& is);

/// Writes an RB curve: `length,survival,sem,fit` plus a comment header with
/// the fit parameters and EPC.
void write_rb_curve_csv(std::ostream& os, const rb::RbCurve& curve);

}  // namespace qoc::io
