/// \file io.hpp
/// \brief Serialization of pulses, schedules and benchmarking results to
///        CSV, so designs can be archived, replayed across "days" and
///        plotted externally -- the workflow the paper's multi-day drift
///        experiments require (optimize once, re-run for a week).  Also the
///        JSONL record formats the calibration service persists: pulse-store
///        entries (bitwise-exact, doubles as u64 bit patterns) and fleet
///        request logs (the deterministic-replay input).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "dynamics/propagator.hpp"
#include "pulse/schedule.hpp"
#include "rb/rb.hpp"

namespace qoc::io {

/// Writes control amplitudes as CSV: header `slot,u0,u1,...`, one row per
/// timeslot.
void write_amplitudes_csv(std::ostream& os, const dynamics::ControlAmplitudes& amps);

/// Reads amplitudes back.  Throws `std::runtime_error` on malformed input
/// (ragged rows, non-numeric cells, missing header).
dynamics::ControlAmplitudes read_amplitudes_csv(std::istream& is);

/// File-path convenience wrappers.
void save_amplitudes(const std::string& path, const dynamics::ControlAmplitudes& amps);
dynamics::ControlAmplitudes load_amplitudes(const std::string& path);

/// Writes a channel's complex samples as CSV: `t_dt,re,im`.
void write_samples_csv(std::ostream& os, const std::vector<std::complex<double>>& samples);
std::vector<std::complex<double>> read_samples_csv(std::istream& is);

/// Writes an RB curve: `length,survival,sem,fit` plus a comment header with
/// the fit parameters and EPC.
void write_rb_curve_csv(std::ostream& os, const rb::RbCurve& curve);

// --- calibration-service JSONL records -----------------------------------
//
// Low-level, self-describing record structs so `qoc::io` stays below the
// service layer in the dependency order.  Every double travels as the
// decimal rendering of its IEEE-754 bit pattern (a u64), so a store written
// and re-read is BITWISE identical to the in-memory one -- the property the
// service's warm-restart and deterministic-replay contracts rest on.  The
// reader parses exactly the canonical form the writer emits (one compact
// JSON object per line, fixed field order) and throws `std::runtime_error`
// on anything malformed.

/// One content-addressed pulse-store entry.
struct PulseStoreRecord {
    std::uint64_t key = 0;           ///< FNV-1a content digest
    std::string gate;                ///< "x", "y", "sx", "h" or "cx"
    std::uint64_t qubit = 0;         ///< target qubit (0 for cx)
    std::uint64_t duration_dt = 0;
    std::uint64_t fid_bits = 0;      ///< bit pattern of the model infidelity
    std::uint64_t state = 0;         ///< EntryState as integer (0 fresh, 1 suspect)
    std::uint64_t design_count = 0;  ///< times this key was (re)designed
    /// Exact per-qubit parameter snapshot the entry was last validated
    /// against, flattened as bit patterns (see service::flatten_params).
    std::vector<std::uint64_t> validated_bits;
    struct Channel {
        std::uint64_t type = 0;      ///< pulse::ChannelType as integer
        std::uint64_t index = 0;
        std::vector<std::uint64_t> re_bits;  ///< per-sample real-part bits
        std::vector<std::uint64_t> im_bits;
    };
    std::vector<Channel> channels;

    bool operator==(const PulseStoreRecord&) const = default;
};

void write_pulse_store_jsonl(std::ostream& os, const std::vector<PulseStoreRecord>& records);
std::vector<PulseStoreRecord> read_pulse_store_jsonl(std::istream& is);

/// One fleet-driver request, enough to re-issue it deterministically.
struct RequestLogRecord {
    std::uint64_t index = 0;   ///< issue order (responses digest in this order)
    std::int64_t day = 0;
    std::uint64_t device_id = 0;
    std::string gate;
    std::uint64_t qubit = 0;
    std::uint64_t duration_dt = 0;
    std::uint64_t n_timeslots = 0;
    std::int64_t max_iterations = 0;
    std::uint64_t design_seed = 0;
    std::uint64_t priority = 0;

    bool operator==(const RequestLogRecord&) const = default;
};

void write_request_log_jsonl(std::ostream& os, const std::vector<RequestLogRecord>& records);
std::vector<RequestLogRecord> read_request_log_jsonl(std::istream& is);

}  // namespace qoc::io
