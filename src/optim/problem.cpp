#include "optim/problem.hpp"

#include <algorithm>

namespace qoc::optim {

void Bounds::clip(std::vector<double>& x) const {
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (i < lower.size()) x[i] = std::max(x[i], lower[i]);
        if (i < upper.size()) x[i] = std::min(x[i], upper[i]);
    }
}

bool Bounds::contains(const std::vector<double>& x) const {
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (i < lower.size() && x[i] < lower[i]) return false;
        if (i < upper.size() && x[i] > upper[i]) return false;
    }
    return true;
}

std::string to_string(StopReason reason) {
    switch (reason) {
        case StopReason::kConverged: return "converged (projected gradient tolerance)";
        case StopReason::kFtolReached: return "converged (objective decrease tolerance)";
        case StopReason::kMaxIterations: return "max iterations reached";
        case StopReason::kMaxEvaluations: return "max function evaluations reached";
        case StopReason::kLineSearchFailed: return "line search failed";
        case StopReason::kTargetReached: return "target objective reached";
    }
    return "unknown";
}

}  // namespace qoc::optim
