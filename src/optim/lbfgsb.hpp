/// \file lbfgsb.hpp
/// \brief Bound-constrained limited-memory BFGS (L-BFGS-B).
///
/// From-scratch implementation of the algorithm of Byrd, Lu, Nocedal and Zhu
/// (SIAM J. Sci. Comput. 16(5), 1995): limited-memory compact quasi-Newton
/// model, generalized Cauchy point over the piecewise-linear projected path,
/// direct primal subspace minimization over the free variables, and a strong
/// Wolfe line search.  This is the optimizer the paper refers to as
/// "second-order GRAPE": QuTiP's `pulseoptim` drives SciPy's
/// `fmin_l_bfgs_b`, which implements the same algorithm.

#pragma once

#include <functional>
#include <optional>

#include "optim/problem.hpp"

namespace qoc::optim {

/// Tuning knobs for LbfgsB.  Defaults mirror SciPy's `fmin_l_bfgs_b`.
struct LbfgsBOptions {
    int memory = 10;            ///< number of (s, y) correction pairs kept
    int max_iterations = 500;
    int max_evaluations = 5000;
    double pg_tol = 1e-9;       ///< max-norm of the projected gradient
    double f_tol = 2.2e-14;     ///< relative objective-decrease tolerance
    std::optional<double> target_f;  ///< stop early once f <= target_f
    /// Optional typed per-iteration observer; also the data source for the
    /// `qoc::obs` "lbfgsb" telemetry records.
    IterationCallback iter_callback;
};

/// Minimizes a smooth objective subject to box constraints.
class LbfgsB {
public:
    explicit LbfgsB(LbfgsBOptions options = {}) : opts_(options) {}

    /// Runs the optimization from `x0` (clipped into the box first).
    OptimResult minimize(const Objective& objective, std::vector<double> x0,
                         const Bounds& bounds) const;

private:
    LbfgsBOptions opts_;
};

/// One-call convenience wrapper.
OptimResult lbfgsb_minimize(const Objective& objective, std::vector<double> x0,
                            const Bounds& bounds, const LbfgsBOptions& options = {});

}  // namespace qoc::optim
