/// \file levmar.hpp
/// \brief Levenberg-Marquardt nonlinear least squares with parameter
///        uncertainties, used to fit randomized-benchmarking decay curves
///        `A * alpha^m + B` and Rabi oscillations.

#pragma once

#include <functional>
#include <vector>

#include "optim/problem.hpp"

namespace qoc::optim {

/// Model function: predicted value at sample `i` given parameters `p`.
using LsqModel = std::function<double(std::size_t i, const std::vector<double>& p)>;

struct LevMarOptions {
    int max_iterations = 200;
    double f_tol = 1e-12;       ///< relative chi^2 decrease tolerance
    double g_tol = 1e-12;       ///< gradient max-norm tolerance
    double lambda0 = 1e-3;      ///< initial damping
    double fd_step = 1e-7;      ///< relative finite-difference step for J
};

struct LevMarResult {
    std::vector<double> params;
    std::vector<double> stderrs;   ///< 1-sigma parameter uncertainties
    double chi2 = 0.0;             ///< sum of squared weighted residuals
    double reduced_chi2 = 0.0;     ///< chi2 / (n_samples - n_params)
    int iterations = 0;
    bool converged = false;
};

/// Fits `model` to samples (`y`, optional `sigma` weights) by minimizing
/// sum_i ((y_i - model(i, p)) / sigma_i)^2.  The Jacobian is computed by
/// central finite differences.  Parameter standard errors come from the
/// covariance (J^T J)^{-1} scaled by the reduced chi^2 (the convention used
/// by standard curve-fitting packages, matching how the paper's IRB error
/// bars are produced).
LevMarResult levmar_fit(const LsqModel& model, std::size_t n_samples,
                        const std::vector<double>& y, std::vector<double> p0,
                        const std::vector<double>& sigma = {},
                        const LevMarOptions& options = {});

}  // namespace qoc::optim
