/// \file gradient_check.hpp
/// \brief Central finite-difference gradient verification, used by tests to
///        validate the analytic GRAPE gradients.

#pragma once

#include "optim/problem.hpp"

namespace qoc::optim {

struct GradientCheckResult {
    double max_abs_error = 0.0;   ///< worst |analytic - numeric|
    double max_rel_error = 0.0;   ///< worst relative error over significant entries
    std::size_t worst_index = 0;
};

/// Compares the analytic gradient of `objective` at `x` against central
/// finite differences with step `h`.
GradientCheckResult check_gradient(const Objective& objective, const std::vector<double>& x,
                                   double h = 1e-6);

}  // namespace qoc::optim
