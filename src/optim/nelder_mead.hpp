/// \file nelder_mead.hpp
/// \brief Derivative-free Nelder-Mead simplex search with box constraints.
///
/// Used as the inner optimizer for the CRAB baseline (the paper notes CRAB's
/// "direct search approach makes the convergence very slow" -- this is the
/// direct search in question).

#pragma once

#include "optim/problem.hpp"

namespace qoc::optim {

struct NelderMeadOptions {
    int max_iterations = 2000;
    int max_evaluations = 10000;
    double x_tol = 1e-8;   ///< simplex diameter tolerance
    double f_tol = 1e-10;  ///< spread of simplex values tolerance
    double initial_step = 0.1;  ///< initial simplex edge length
    /// Optional typed per-iteration observer (cost = best vertex value,
    /// grad_norm = 0, step = simplex x-spread).
    IterationCallback iter_callback;
    /// Optimizer tag on the `qoc::obs` telemetry records (CRAB relabels
    /// its inner search "crab").  Must be a string literal.
    const char* telemetry_label = "nelder_mead";
};

/// Minimizes `objective` with the adaptive Nelder-Mead simplex method.
/// Box constraints are enforced by clipping trial points into the box.
OptimResult nelder_mead_minimize(const ScalarObjective& objective, std::vector<double> x0,
                                 const Bounds& bounds, const NelderMeadOptions& options = {});

}  // namespace qoc::optim
