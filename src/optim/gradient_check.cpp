#include "optim/gradient_check.hpp"

#include <cmath>

namespace qoc::optim {

GradientCheckResult check_gradient(const Objective& objective, const std::vector<double>& x,
                                   double h) {
    const std::size_t n = x.size();
    std::vector<double> grad(n), scratch(n);
    objective(x, grad);

    GradientCheckResult res;
    std::vector<double> xp = x;
    for (std::size_t i = 0; i < n; ++i) {
        const double step = h * std::max(1.0, std::abs(x[i]));
        xp[i] = x[i] + step;
        const double fp = objective(xp, scratch);
        xp[i] = x[i] - step;
        const double fm = objective(xp, scratch);
        xp[i] = x[i];
        const double numeric = (fp - fm) / (2.0 * step);
        const double abs_err = std::abs(grad[i] - numeric);
        const double scale = std::max({std::abs(grad[i]), std::abs(numeric), 1e-8});
        if (abs_err > res.max_abs_error) {
            res.max_abs_error = abs_err;
            res.worst_index = i;
        }
        res.max_rel_error = std::max(res.max_rel_error, abs_err / scale);
    }
    return res;
}

}  // namespace qoc::optim
