#include "optim/levmar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qoc::optim {

namespace {

/// Solves the (small, symmetric positive-ish) normal system by Gaussian
/// elimination with partial pivoting.  Returns false when singular.
bool solve_dense(std::vector<double> a, std::vector<double> b, std::size_t n,
                 std::vector<double>& x) {
    std::vector<std::size_t> piv(n);
    for (std::size_t i = 0; i < n; ++i) piv[i] = i;
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t p = k;
        double best = std::abs(a[k * n + k]);
        for (std::size_t i = k + 1; i < n; ++i)
            if (std::abs(a[i * n + k]) > best) {
                best = std::abs(a[i * n + k]);
                p = i;
            }
        if (best < 1e-300) return false;
        if (p != k) {
            for (std::size_t j = 0; j < n; ++j) std::swap(a[k * n + j], a[p * n + j]);
            std::swap(b[k], b[p]);
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            const double m = a[i * n + k] / a[k * n + k];
            for (std::size_t j = k; j < n; ++j) a[i * n + j] -= m * a[k * n + j];
            b[i] -= m * b[k];
        }
    }
    x.assign(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = b[ii];
        for (std::size_t j = ii + 1; j < n; ++j) s -= a[ii * n + j] * x[j];
        x[ii] = s / a[ii * n + ii];
    }
    return true;
}

}  // namespace

LevMarResult levmar_fit(const LsqModel& model, std::size_t n_samples,
                        const std::vector<double>& y, std::vector<double> p0,
                        const std::vector<double>& sigma, const LevMarOptions& opts) {
    if (y.size() != n_samples) throw std::invalid_argument("levmar_fit: y size mismatch");
    if (!sigma.empty() && sigma.size() != n_samples) {
        throw std::invalid_argument("levmar_fit: sigma size mismatch");
    }
    const std::size_t np = p0.size();
    if (np == 0 || n_samples < np) {
        throw std::invalid_argument("levmar_fit: under-determined problem");
    }

    auto weight = [&](std::size_t i) { return sigma.empty() ? 1.0 : 1.0 / sigma[i]; };

    auto residuals = [&](const std::vector<double>& p, std::vector<double>& r) {
        double chi2 = 0.0;
        r.resize(n_samples);
        for (std::size_t i = 0; i < n_samples; ++i) {
            r[i] = (y[i] - model(i, p)) * weight(i);
            chi2 += r[i] * r[i];
        }
        return chi2;
    };

    auto jacobian = [&](const std::vector<double>& p, std::vector<double>& jac) {
        jac.assign(n_samples * np, 0.0);
        std::vector<double> pp = p;
        for (std::size_t j = 0; j < np; ++j) {
            const double h = opts.fd_step * std::max(1.0, std::abs(p[j]));
            pp[j] = p[j] + h;
            std::vector<double> plus(n_samples), minus(n_samples);
            for (std::size_t i = 0; i < n_samples; ++i) plus[i] = model(i, pp);
            pp[j] = p[j] - h;
            for (std::size_t i = 0; i < n_samples; ++i) minus[i] = model(i, pp);
            pp[j] = p[j];
            for (std::size_t i = 0; i < n_samples; ++i) {
                // d(residual)/dp = -d(model)/dp * weight
                jac[i * np + j] = -(plus[i] - minus[i]) / (2.0 * h) * weight(i);
            }
        }
    };

    LevMarResult res;
    res.params = std::move(p0);
    std::vector<double> r;
    res.chi2 = residuals(res.params, r);
    double lambda = opts.lambda0;
    std::vector<double> jac, jtj(np * np), jtr(np), step;

    for (res.iterations = 0; res.iterations < opts.max_iterations; ++res.iterations) {
        jacobian(res.params, jac);
        std::fill(jtj.begin(), jtj.end(), 0.0);
        std::fill(jtr.begin(), jtr.end(), 0.0);
        for (std::size_t i = 0; i < n_samples; ++i) {
            for (std::size_t a = 0; a < np; ++a) {
                jtr[a] += jac[i * np + a] * r[i];
                for (std::size_t b = a; b < np; ++b) {
                    jtj[a * np + b] += jac[i * np + a] * jac[i * np + b];
                }
            }
        }
        for (std::size_t a = 0; a < np; ++a)
            for (std::size_t b = 0; b < a; ++b) jtj[a * np + b] = jtj[b * np + a];

        double gmax = 0.0;
        for (double v : jtr) gmax = std::max(gmax, std::abs(v));
        if (gmax < opts.g_tol) {
            res.converged = true;
            break;
        }

        bool stepped = false;
        for (int tries = 0; tries < 40; ++tries) {
            std::vector<double> damped = jtj;
            for (std::size_t a = 0; a < np; ++a) damped[a * np + a] += lambda * jtj[a * np + a];
            // Newton step solves (J^T J + lambda diag) dp = -J^T r.
            std::vector<double> rhs(np);
            for (std::size_t a = 0; a < np; ++a) rhs[a] = -jtr[a];
            if (!solve_dense(damped, rhs, np, step)) {
                lambda *= 10.0;
                continue;
            }
            std::vector<double> trial = res.params;
            for (std::size_t a = 0; a < np; ++a) trial[a] += step[a];
            std::vector<double> rt;
            const double chi2_t = residuals(trial, rt);
            if (chi2_t < res.chi2) {
                const double rel = (res.chi2 - chi2_t) / std::max(res.chi2, 1e-300);
                res.params = std::move(trial);
                r = std::move(rt);
                res.chi2 = chi2_t;
                lambda = std::max(lambda * 0.3, 1e-12);
                stepped = true;
                if (rel < opts.f_tol) res.converged = true;
                break;
            }
            lambda *= 10.0;
            if (lambda > 1e12) break;
        }
        if (!stepped || res.converged) {
            res.converged = res.converged || !stepped;
            break;
        }
    }

    // Covariance = reduced_chi2 * (J^T J)^{-1}; stderr = sqrt(diagonal).
    const double dof = static_cast<double>(n_samples - np);
    res.reduced_chi2 = dof > 0 ? res.chi2 / dof : 0.0;
    jacobian(res.params, jac);
    std::fill(jtj.begin(), jtj.end(), 0.0);
    for (std::size_t i = 0; i < n_samples; ++i)
        for (std::size_t a = 0; a < np; ++a)
            for (std::size_t b = 0; b < np; ++b)
                jtj[a * np + b] += jac[i * np + a] * jac[i * np + b];
    res.stderrs.assign(np, 0.0);
    // Invert J^T J column by column.
    for (std::size_t col = 0; col < np; ++col) {
        std::vector<double> e(np, 0.0), x;
        e[col] = 1.0;
        if (solve_dense(jtj, e, np, x)) {
            const double var = std::max(0.0, x[col]) * std::max(res.reduced_chi2, 0.0);
            res.stderrs[col] = std::sqrt(var);
        }
    }
    return res;
}

}  // namespace qoc::optim
