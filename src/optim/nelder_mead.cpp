#include "optim/nelder_mead.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"

namespace qoc::optim {

OptimResult nelder_mead_minimize(const ScalarObjective& objective, std::vector<double> x0,
                                 const Bounds& bounds, const NelderMeadOptions& opts) {
    const std::size_t n = x0.size();
    bounds.clip(x0);

    // Adaptive parameters (Gao & Han 2012) improve behaviour for larger n.
    const double nd = static_cast<double>(n);
    const double alpha = 1.0;
    const double beta = 1.0 + 2.0 / nd;   // expansion
    const double gamma = 0.75 - 1.0 / (2.0 * nd);  // contraction
    const double delta = 1.0 - 1.0 / nd;  // shrink

    OptimResult res;
    // qoc-lint-allow(determinism-wall-clock): wall-time telemetry only; never feeds the numerics
    const auto t_start = std::chrono::steady_clock::now();
    int evals = 0;
    auto feval = [&](std::vector<double>& x) {
        bounds.clip(x);
        ++evals;
        return objective(x);
    };

    // Initial simplex: x0 plus per-coordinate steps.
    std::vector<std::vector<double>> simplex(n + 1, x0);
    std::vector<double> fvals(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        double step = opts.initial_step;
        if (simplex[i + 1][i] + step > bounds.upper[i]) step = -step;
        simplex[i + 1][i] += step;
    }
    for (std::size_t i = 0; i <= n; ++i) fvals[i] = feval(simplex[i]);

    std::vector<std::size_t> order(n + 1);
    for (res.iterations = 0; res.iterations < opts.max_iterations; ++res.iterations) {
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });
        const std::size_t best = order[0], worst = order[n], second_worst = order[n - 1];

        // Convergence: simplex small in x and in f.
        double xspread = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            xspread = std::max(xspread, std::abs(simplex[worst][i] - simplex[best][i]));
        }
        const double fspread = std::abs(fvals[worst] - fvals[best]);
        if (opts.iter_callback || obs::telemetry_enabled()) {
            IterationRecord rec;
            rec.iteration = res.iterations;
            rec.cost = fvals[best];
            rec.grad_norm = 0.0;
            rec.step = xspread;
            rec.n_fun_evals = evals;
            rec.wall_time_s = std::chrono::duration<double>(
                                  // qoc-lint-allow(determinism-wall-clock): wall-time telemetry
                                  std::chrono::steady_clock::now() - t_start)
                                  .count();
            if (opts.iter_callback) opts.iter_callback(rec);
            obs::emit_optimizer_iteration(opts.telemetry_label, rec.iteration, rec.cost,
                                          rec.grad_norm, rec.step, rec.n_fun_evals,
                                          rec.wall_time_s);
        }
        if (xspread < opts.x_tol && fspread < opts.f_tol) {
            res.reason = StopReason::kConverged;
            break;
        }
        if (evals >= opts.max_evaluations) {
            res.reason = StopReason::kMaxEvaluations;
            break;
        }

        // Centroid of all but the worst point.
        std::vector<double> centroid(n, 0.0);
        for (std::size_t k = 0; k <= n; ++k) {
            if (k == worst) continue;
            for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[k][i];
        }
        for (double& v : centroid) v /= nd;

        auto affine = [&](double coef) {
            std::vector<double> x(n);
            for (std::size_t i = 0; i < n; ++i) {
                x[i] = centroid[i] + coef * (centroid[i] - simplex[worst][i]);
            }
            return x;
        };

        std::vector<double> xr = affine(alpha);
        const double fr = feval(xr);
        if (fr < fvals[best]) {
            std::vector<double> xe = affine(alpha * beta);
            const double fe = feval(xe);
            if (fe < fr) {
                simplex[worst] = std::move(xe);
                fvals[worst] = fe;
            } else {
                simplex[worst] = std::move(xr);
                fvals[worst] = fr;
            }
        } else if (fr < fvals[second_worst]) {
            simplex[worst] = std::move(xr);
            fvals[worst] = fr;
        } else {
            const bool outside = fr < fvals[worst];
            std::vector<double> xc = affine(outside ? alpha * gamma : -gamma);
            const double fc = feval(xc);
            if (fc < std::min(fr, fvals[worst])) {
                simplex[worst] = std::move(xc);
                fvals[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                for (std::size_t k = 0; k <= n; ++k) {
                    if (k == best) continue;
                    for (std::size_t i = 0; i < n; ++i) {
                        simplex[k][i] =
                            simplex[best][i] + delta * (simplex[k][i] - simplex[best][i]);
                    }
                    fvals[k] = feval(simplex[k]);
                }
            }
        }
    }
    if (res.iterations == opts.max_iterations) res.reason = StopReason::kMaxIterations;

    const std::size_t best =
        std::min_element(fvals.begin(), fvals.end()) - fvals.begin();
    res.x = simplex[best];
    res.f = fvals[best];
    res.evaluations = evals;
    return res;
}

}  // namespace qoc::optim
