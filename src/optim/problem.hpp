/// \file problem.hpp
/// \brief Common types for the numerical optimizers.

#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace qoc::optim {

/// Smooth objective: returns f(x) and fills `grad` (resized by the caller to
/// x.size()).
using Objective = std::function<double(const std::vector<double>& x, std::vector<double>& grad)>;

/// Objective for derivative-free methods.
using ScalarObjective = std::function<double(const std::vector<double>& x)>;

/// Box bounds.  Empty vectors mean unbounded on that side.
struct Bounds {
    std::vector<double> lower;  ///< elementwise lower bound, or empty
    std::vector<double> upper;  ///< elementwise upper bound, or empty

    static constexpr double kInf = std::numeric_limits<double>::infinity();

    /// Unbounded problem of dimension n.
    static Bounds unbounded(std::size_t n) {
        Bounds b;
        b.lower.assign(n, -kInf);
        b.upper.assign(n, kInf);
        return b;
    }

    /// Uniform box [lo, hi]^n.
    static Bounds uniform(std::size_t n, double lo, double hi) {
        Bounds b;
        b.lower.assign(n, lo);
        b.upper.assign(n, hi);
        return b;
    }

    /// Clips x into the box in place.
    void clip(std::vector<double>& x) const;

    /// True when l <= x <= u holds elementwise.
    bool contains(const std::vector<double>& x) const;
};

/// Why an optimizer stopped.
enum class StopReason {
    kConverged,        ///< gradient / simplex tolerance reached
    kFtolReached,      ///< relative objective decrease below ftol
    kMaxIterations,    ///< iteration budget exhausted
    kMaxEvaluations,   ///< function-evaluation budget exhausted
    kLineSearchFailed, ///< no acceptable step found
    kTargetReached,    ///< objective fell below the user's goal
};

/// Human-readable stop reason (for logs and reports).
std::string to_string(StopReason reason);

/// One optimizer iteration, as passed to iteration callbacks and emitted to
/// the `qoc::obs` telemetry stream.  Shared by L-BFGS-B and Nelder-Mead
/// (derivative-free methods report `grad_norm = 0`).
struct IterationRecord {
    int iteration = 0;
    double cost = 0.0;        ///< objective value at this iterate
    double grad_norm = 0.0;   ///< max-norm of the projected gradient
    double step = 0.0;        ///< accepted line-search step length (0 at iter 0)
    int n_fun_evals = 0;      ///< cumulative objective evaluations so far
    double wall_time_s = 0.0; ///< elapsed wall time since the solver started
};

/// Typed per-iteration observer.
using IterationCallback = std::function<void(const IterationRecord&)>;

/// Outcome shared by the smooth optimizers.
struct OptimResult {
    std::vector<double> x;      ///< final iterate
    double f = 0.0;             ///< objective at x
    double grad_norm = 0.0;     ///< max-norm of the projected gradient
    int iterations = 0;
    int evaluations = 0;
    StopReason reason = StopReason::kMaxIterations;
};

}  // namespace qoc::optim
