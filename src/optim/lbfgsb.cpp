#include "optim/lbfgsb.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "contracts/contracts.hpp"
#include "obs/obs.hpp"

namespace qoc::optim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEpsMach = std::numeric_limits<double>::epsilon();

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

/// Tiny dense real LU solver for the 2m x 2m middle systems (m <= 10).
class SmallLu {
public:
    explicit SmallLu(std::vector<double> a, std::size_t n) : a_(std::move(a)), n_(n), piv_(n) {
        for (std::size_t i = 0; i < n_; ++i) piv_[i] = i;
        for (std::size_t k = 0; k < n_; ++k) {
            std::size_t p = k;
            double best = std::abs(at(k, k));
            for (std::size_t i = k + 1; i < n_; ++i)
                if (std::abs(at(i, k)) > best) {
                    best = std::abs(at(i, k));
                    p = i;
                }
            if (p != k) {
                for (std::size_t j = 0; j < n_; ++j) std::swap(at(k, j), at(p, j));
                std::swap(piv_[k], piv_[p]);
            }
            const double pivot = at(k, k);
            if (std::abs(pivot) < 1e-300) {
                singular_ = true;
                continue;
            }
            for (std::size_t i = k + 1; i < n_; ++i) {
                const double m = at(i, k) / pivot;
                at(i, k) = m;
                for (std::size_t j = k + 1; j < n_; ++j) at(i, j) -= m * at(k, j);
            }
        }
    }

    bool singular() const { return singular_; }

    std::vector<double> solve(const std::vector<double>& b) const {
        std::vector<double> x(n_);
        for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
        for (std::size_t i = 1; i < n_; ++i)
            for (std::size_t k = 0; k < i; ++k) x[i] -= at(i, k) * x[k];
        for (std::size_t ii = n_; ii-- > 0;) {
            for (std::size_t k = ii + 1; k < n_; ++k) x[ii] -= at(ii, k) * x[k];
            x[ii] /= at(ii, ii);
        }
        return x;
    }

private:
    double& at(std::size_t i, std::size_t j) { return a_[i * n_ + j]; }
    const double& at(std::size_t i, std::size_t j) const { return a_[i * n_ + j]; }

    std::vector<double> a_;
    std::size_t n_;
    std::vector<std::size_t> piv_;
    bool singular_ = false;
};

/// Limited-memory model state: B = theta*I - W * M * W^T with
/// W = [Y, theta*S] and M^{-1} = K = [[-D, L^T], [L, theta*S^T S]].
struct LmModel {
    std::deque<std::vector<double>> s_list;
    std::deque<std::vector<double>> y_list;
    double theta = 1.0;

    std::size_t k() const { return s_list.size(); }

    /// Row b of W as a 2k vector: (y_0[b], ..., theta*s_0[b], ...).
    std::vector<double> w_row(std::size_t b) const {
        std::vector<double> w(2 * k());
        for (std::size_t i = 0; i < k(); ++i) {
            w[i] = y_list[i][b];
            w[k() + i] = theta * s_list[i][b];
        }
        return w;
    }

    /// W^T v.
    std::vector<double> wt_times(const std::vector<double>& v) const {
        std::vector<double> out(2 * k(), 0.0);
        for (std::size_t i = 0; i < k(); ++i) {
            out[i] = dot(y_list[i], v);
            out[k() + i] = theta * dot(s_list[i], v);
        }
        return out;
    }

    /// Accumulate W u into `out` (out += W u).
    void add_w_times(const std::vector<double>& u, std::vector<double>& out) const {
        for (std::size_t i = 0; i < k(); ++i) {
            const double a = u[i];
            const double b = theta * u[k() + i];
            const auto& y = y_list[i];
            const auto& s = s_list[i];
            for (std::size_t j = 0; j < out.size(); ++j) out[j] += a * y[j] + b * s[j];
        }
    }

    /// Builds the middle matrix K (row-major, size 2k x 2k).
    std::vector<double> build_k() const {
        const std::size_t m = k();
        std::vector<double> kk(4 * m * m, 0.0);
        auto at = [&](std::size_t i, std::size_t j) -> double& { return kk[i * 2 * m + j]; };
        for (std::size_t i = 0; i < m; ++i) {
            at(i, i) = -dot(s_list[i], y_list[i]);  // -D
            // L is strictly lower: L_{ij} = s_i^T y_j for i > j; the upper-left
            // off-diagonal block holds L^T.
            for (std::size_t j = 0; j < m; ++j) {
                if (i > j) at(m + i, j) = dot(s_list[i], y_list[j]);
                if (j > i) at(i, m + j) = dot(s_list[j], y_list[i]);
            }
            for (std::size_t j = 0; j < m; ++j) {
                at(m + i, m + j) = theta * dot(s_list[i], s_list[j]);
            }
        }
        return kk;
    }
};

struct CauchyResult {
    std::vector<double> x_cp;
    std::vector<double> c;           ///< W^T (x_cp - x)
    std::vector<bool> free_var;      ///< variables strictly inside bounds at x_cp
};

/// Generalized Cauchy point along the projected steepest-descent path
/// (Algorithm CP of Byrd et al.).
CauchyResult cauchy_point(const std::vector<double>& x, const std::vector<double>& g,
                          const Bounds& bounds, const LmModel& model, const SmallLu* k_lu) {
    const std::size_t n = x.size();
    const std::size_t twok = 2 * model.k();

    std::vector<double> t(n), d(n, 0.0);
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double gi = g[i];
        if (gi < 0.0) {
            t[i] = (bounds.upper[i] >= kInf) ? kInf : (x[i] - bounds.upper[i]) / gi;
        } else if (gi > 0.0) {
            t[i] = (bounds.lower[i] <= -kInf) ? kInf : (x[i] - bounds.lower[i]) / gi;
        } else {
            t[i] = kInf;
        }
        if (t[i] > 0.0) {
            d[i] = -gi;
            if (t[i] < kInf) order.push_back(i);
        }
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return t[a] < t[b]; });

    auto m_solve = [&](const std::vector<double>& v) {
        return (k_lu != nullptr) ? k_lu->solve(v) : std::vector<double>(twok, 0.0);
    };

    std::vector<double> p = model.wt_times(d);
    std::vector<double> c(twok, 0.0);
    double fp = -dot(d, d);                                    // f'
    double fpp = -model.theta * fp;                            // theta*||d||^2
    if (twok > 0) fpp -= dot(p, m_solve(p));                   // - p^T M p
    double fpp0 = -model.theta * fp;
    double dt_min = (fpp > 0.0) ? -fp / fpp : kInf;
    double t_old = 0.0;

    CauchyResult res;
    res.x_cp = x;
    res.free_var.assign(n, false);
    std::vector<bool> fixed(n, false);
    for (std::size_t i = 0; i < n; ++i)
        if (t[i] <= 0.0) fixed[i] = true;  // at bound, gradient points outward

    std::size_t qi = 0;
    while (qi < order.size()) {
        const std::size_t b = order[qi];
        const double tb = t[b];
        const double dt = tb - t_old;
        if (dt_min < dt) break;  // minimizer inside this segment

        // Step to the breakpoint: variable b hits its bound.
        const double gb = g[b];
        const double zb = (d[b] > 0.0 ? bounds.upper[b] : bounds.lower[b]) - x[b];
        res.x_cp[b] = x[b] + zb;
        fixed[b] = true;

        for (std::size_t j = 0; j < twok; ++j) c[j] += dt * p[j];

        if (twok > 0) {
            const std::vector<double> wb = model.w_row(b);
            const std::vector<double> mc = m_solve(c);
            const std::vector<double> mp = m_solve(p);
            const std::vector<double> mw = m_solve(wb);
            fp += dt * fpp + gb * gb + model.theta * gb * zb - gb * dot(wb, mc);
            fpp -= model.theta * gb * gb + 2.0 * gb * dot(wb, mp) + gb * gb * dot(wb, mw);
            for (std::size_t j = 0; j < twok; ++j) p[j] += gb * wb[j];
        } else {
            fp += dt * fpp + gb * gb + model.theta * gb * zb;
            fpp -= model.theta * gb * gb;
        }
        fpp = std::max(fpp, kEpsMach * fpp0);
        d[b] = 0.0;
        dt_min = (fpp > 0.0) ? -fp / fpp : kInf;
        t_old = tb;
        ++qi;
        if (fp >= 0.0) {
            dt_min = 0.0;
            break;
        }
    }

    dt_min = std::max(dt_min, 0.0);
    if (!std::isfinite(dt_min)) {
        // All remaining directions unbounded but model non-convex along path:
        // fall back to the last breakpoint.
        dt_min = 0.0;
    }
    const double t_cp = t_old + dt_min;
    for (std::size_t i = 0; i < n; ++i) {
        if (!fixed[i]) {
            res.x_cp[i] = x[i] + t_cp * d[i];
            res.free_var[i] = true;
        }
    }
    for (std::size_t j = 0; j < twok; ++j) c[j] += dt_min * p[j];
    res.c = std::move(c);
    return res;
}

/// Direct primal subspace minimization over the free variables at the Cauchy
/// point (Section 5.1 of Byrd et al., via Sherman-Morrison-Woodbury).
/// Returns the full-space search target `xbar`.
std::vector<double> subspace_minimize(const std::vector<double>& x, const std::vector<double>& g,
                                      const Bounds& bounds, const LmModel& model,
                                      const std::vector<double>& k_mat, const SmallLu* k_lu,
                                      const CauchyResult& cp) {
    const std::size_t n = x.size();
    const std::size_t twok = 2 * model.k();
    std::vector<std::size_t> free_idx;
    for (std::size_t i = 0; i < n; ++i)
        if (cp.free_var[i]) free_idx.push_back(i);
    if (free_idx.empty()) return cp.x_cp;

    // Reduced gradient of the quadratic model at the Cauchy point:
    //   r = g + theta (x_cp - x) - W M c, restricted to the free set.
    std::vector<double> wmc(n, 0.0);
    if (twok > 0) {
        const std::vector<double> mc = k_lu->solve(cp.c);
        model.add_w_times(mc, wmc);
    }
    std::vector<double> r(free_idx.size());
    for (std::size_t a = 0; a < free_idx.size(); ++a) {
        const std::size_t i = free_idx[a];
        r[a] = g[i] + model.theta * (cp.x_cp[i] - x[i]) - wmc[i];
    }

    // Newton step on the free subspace:
    //   d = -(1/theta) r - (1/theta^2) Wf (K - Wf^T Wf / theta)^{-1} Wf^T r
    std::vector<double> dstep(free_idx.size());
    const double inv_theta = 1.0 / model.theta;
    if (twok == 0) {
        for (std::size_t a = 0; a < free_idx.size(); ++a) dstep[a] = -inv_theta * r[a];
    } else {
        // v = Wf^T r; N = K - (1/theta) Wf^T Wf.
        std::vector<double> v(twok, 0.0);
        std::vector<double> nmat = k_mat;
        std::vector<std::vector<double>> wrows(free_idx.size());
        for (std::size_t a = 0; a < free_idx.size(); ++a) {
            wrows[a] = model.w_row(free_idx[a]);
            for (std::size_t j = 0; j < twok; ++j) v[j] += wrows[a][j] * r[a];
        }
        for (std::size_t a = 0; a < free_idx.size(); ++a)
            for (std::size_t i = 0; i < twok; ++i)
                for (std::size_t j = 0; j < twok; ++j)
                    nmat[i * twok + j] -= inv_theta * wrows[a][i] * wrows[a][j];
        SmallLu nlu(std::move(nmat), twok);
        if (nlu.singular()) {
            for (std::size_t a = 0; a < free_idx.size(); ++a) dstep[a] = -inv_theta * r[a];
        } else {
            const std::vector<double> w = nlu.solve(v);
            for (std::size_t a = 0; a < free_idx.size(); ++a) {
                dstep[a] = -inv_theta * r[a] - inv_theta * inv_theta * dot(wrows[a], w);
            }
        }
    }

    // Backtrack into the box.
    double alpha = 1.0;
    for (std::size_t a = 0; a < free_idx.size(); ++a) {
        const std::size_t i = free_idx[a];
        const double xi = cp.x_cp[i];
        if (dstep[a] > 0.0 && bounds.upper[i] < kInf) {
            alpha = std::min(alpha, (bounds.upper[i] - xi) / dstep[a]);
        } else if (dstep[a] < 0.0 && bounds.lower[i] > -kInf) {
            alpha = std::min(alpha, (bounds.lower[i] - xi) / dstep[a]);
        }
    }
    alpha = std::max(alpha, 0.0);

    std::vector<double> xbar = cp.x_cp;
    for (std::size_t a = 0; a < free_idx.size(); ++a) {
        xbar[free_idx[a]] += alpha * dstep[a];
    }
    return xbar;
}

/// Strong Wolfe line search (Nocedal & Wright Algorithms 3.5/3.6 with cubic
/// interpolation in the zoom phase).  Returns the accepted step or 0 on
/// failure; updates f/g/x to the accepted point and counts evaluations.
struct LineSearchResult {
    double alpha = 0.0;
    bool ok = false;
};

LineSearchResult wolfe_search(const Objective& objective, std::vector<double>& x,
                              double& f, std::vector<double>& g, const std::vector<double>& d,
                              double alpha_max, int& evals, int max_evals) {
    constexpr double c1 = 1e-4;
    constexpr double c2 = 0.9;
    const double phi0 = f;
    const double dphi0 = dot(g, d);
    if (dphi0 >= 0.0) return {};

    const std::size_t n = x.size();
    std::vector<double> xt(n), gt(n);
    auto eval = [&](double a, double& fa, double& dfa) {
        for (std::size_t i = 0; i < n; ++i) xt[i] = x[i] + a * d[i];
        fa = objective(xt, gt);
        contracts::check_finite(fa, "L-BFGS-B: objective value (line search)");
        contracts::check_all_finite(gt, "L-BFGS-B: gradient (line search)");
        ++evals;
        dfa = dot(gt, d);
    };

    auto accept = [&](double a, double fa) {
        for (std::size_t i = 0; i < n; ++i) x[i] += a * d[i];
        f = fa;
        g = gt;
        return LineSearchResult{a, true};
    };

    // Cubic minimizer of a Hermite interpolant on [a_lo, a_hi].
    auto cubic = [](double a0, double f0, double df0, double a1, double f1, double df1) {
        const double d1 = df0 + df1 - 3.0 * (f0 - f1) / (a0 - a1);
        const double disc = d1 * d1 - df0 * df1;
        if (disc < 0.0) return 0.5 * (a0 + a1);
        const double d2 = std::copysign(std::sqrt(disc), a1 - a0);
        double amin = a1 - (a1 - a0) * (df1 + d2 - d1) / (df1 - df0 + 2.0 * d2);
        if (!std::isfinite(amin)) return 0.5 * (a0 + a1);
        const double lo = std::min(a0, a1), hi = std::max(a0, a1);
        return std::clamp(amin, lo + 0.1 * (hi - lo), hi - 0.1 * (hi - lo));
    };

    auto zoom = [&](double alo, double flo, double dflo, double ahi, double fhi,
                    double dfhi) -> LineSearchResult {
        for (int it = 0; it < 30 && evals < max_evals; ++it) {
            const double a = cubic(alo, flo, dflo, ahi, fhi, dfhi);
            double fa, dfa;
            eval(a, fa, dfa);
            if (fa > phi0 + c1 * a * dphi0 || fa >= flo) {
                ahi = a;
                fhi = fa;
                dfhi = dfa;
            } else {
                if (std::abs(dfa) <= -c2 * dphi0) return accept(a, fa);
                if (dfa * (ahi - alo) >= 0.0) {
                    ahi = alo;
                    fhi = flo;
                    dfhi = dflo;
                }
                alo = a;
                flo = fa;
                dflo = dfa;
            }
            if (std::abs(ahi - alo) < 1e-16 * std::max(1.0, std::abs(alo))) break;
        }
        // Fall back to the best sufficient-decrease point found, if any.
        if (flo < phi0 + c1 * alo * dphi0 && alo > 0.0) {
            double fa, dfa;
            eval(alo, fa, dfa);
            return accept(alo, fa);
        }
        return {};
    };

    double a_prev = 0.0, f_prev = phi0, df_prev = dphi0;
    double a = std::min(1.0, alpha_max);
    for (int it = 0; it < 20 && evals < max_evals; ++it) {
        double fa, dfa;
        eval(a, fa, dfa);
        if (fa > phi0 + c1 * a * dphi0 || (it > 0 && fa >= f_prev)) {
            return zoom(a_prev, f_prev, df_prev, a, fa, dfa);
        }
        if (std::abs(dfa) <= -c2 * dphi0) return accept(a, fa);
        if (dfa >= 0.0) return zoom(a, fa, dfa, a_prev, f_prev, df_prev);
        if (a >= alpha_max * (1.0 - 1e-12)) {
            // Bound-limited step that still satisfies sufficient decrease.
            return accept(a, fa);
        }
        a_prev = a;
        f_prev = fa;
        df_prev = dfa;
        a = std::min(2.0 * a, alpha_max);
    }
    return {};
}

double projected_gradient_norm(const std::vector<double>& x, const std::vector<double>& g,
                               const Bounds& bounds) {
    double norm = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double step = x[i] - g[i];
        step = std::clamp(step, bounds.lower[i], bounds.upper[i]);
        norm = std::max(norm, std::abs(step - x[i]));
    }
    return norm;
}

}  // namespace

OptimResult LbfgsB::minimize(const Objective& objective, std::vector<double> x0,
                             const Bounds& bounds) const {
    const std::size_t n = x0.size();
    if (bounds.lower.size() != n || bounds.upper.size() != n) {
        throw std::invalid_argument("LbfgsB: bounds dimension mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (bounds.lower[i] > bounds.upper[i]) {
            throw std::invalid_argument("LbfgsB: lower bound exceeds upper bound");
        }
    }
    bounds.clip(x0);

    OptimResult res;
    res.x = std::move(x0);
    std::vector<double> g(n);
    res.f = objective(res.x, g);
    contracts::check_finite(res.f, "L-BFGS-B: objective value (x0)");
    contracts::check_all_finite(g, "L-BFGS-B: gradient (x0)");
    res.evaluations = 1;

    LmModel model;

    // qoc-lint-allow(determinism-wall-clock): wall-time telemetry only; never feeds the numerics
    const auto t_start = std::chrono::steady_clock::now();
    double last_step = 0.0;  // accepted line-search alpha of the previous iteration

    for (res.iterations = 0; res.iterations < opts_.max_iterations; ++res.iterations) {
        res.grad_norm = projected_gradient_norm(res.x, g, bounds);
        if (opts_.iter_callback || obs::telemetry_enabled()) {
            IterationRecord rec;
            rec.iteration = res.iterations;
            rec.cost = res.f;
            rec.grad_norm = res.grad_norm;
            rec.step = last_step;
            rec.n_fun_evals = res.evaluations;
            rec.wall_time_s = std::chrono::duration<double>(
                                  // qoc-lint-allow(determinism-wall-clock): wall-time telemetry
                                  std::chrono::steady_clock::now() - t_start)
                                  .count();
            if (opts_.iter_callback) opts_.iter_callback(rec);
            obs::emit_optimizer_iteration("lbfgsb", rec.iteration, rec.cost, rec.grad_norm,
                                          rec.step, rec.n_fun_evals, rec.wall_time_s);
        }
        if (res.grad_norm <= opts_.pg_tol) {
            res.reason = StopReason::kConverged;
            return res;
        }
        if (opts_.target_f && res.f <= *opts_.target_f) {
            res.reason = StopReason::kTargetReached;
            return res;
        }
        if (res.evaluations >= opts_.max_evaluations) {
            res.reason = StopReason::kMaxEvaluations;
            return res;
        }

        // Build the middle matrix once per outer iteration.
        std::vector<double> k_mat;
        std::unique_ptr<SmallLu> k_lu;
        if (model.k() > 0) {
            k_mat = model.build_k();
            k_lu = std::make_unique<SmallLu>(k_mat, 2 * model.k());
            if (k_lu->singular()) {
                model.s_list.clear();
                model.y_list.clear();
                model.theta = 1.0;
                k_mat.clear();
                k_lu.reset();
            }
        }

        const CauchyResult cp = cauchy_point(res.x, g, bounds, model, k_lu.get());
        std::vector<double> xbar =
            subspace_minimize(res.x, g, bounds, model, k_mat, k_lu.get(), cp);

        std::vector<double> d(n);
        for (std::size_t i = 0; i < n; ++i) d[i] = xbar[i] - res.x[i];

        double dnorm = 0.0;
        for (double v : d) dnorm = std::max(dnorm, std::abs(v));
        if (dot(g, d) >= 0.0 || dnorm == 0.0) {
            // Fall back to the projected steepest-descent direction.
            for (std::size_t i = 0; i < n; ++i) {
                d[i] = std::clamp(res.x[i] - g[i], bounds.lower[i], bounds.upper[i]) - res.x[i];
            }
            if (dot(g, d) >= 0.0) {
                res.reason = StopReason::kConverged;
                return res;
            }
        }

        // Largest feasible step along d.
        double alpha_max = 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (d[i] > 0.0 && bounds.upper[i] < kInf) {
                alpha_max = std::min(alpha_max, (bounds.upper[i] - res.x[i]) / d[i]);
            } else if (d[i] < 0.0 && bounds.lower[i] > -kInf) {
                alpha_max = std::min(alpha_max, (bounds.lower[i] - res.x[i]) / d[i]);
            }
        }
        alpha_max = std::max(alpha_max, 0.0);

        const double f_old = res.f;
        std::vector<double> x_old = res.x;
        std::vector<double> g_old = g;
        const int evals_before = res.evaluations;
        const LineSearchResult ls = wolfe_search(objective, res.x, res.f, g, d, alpha_max,
                                                 res.evaluations, opts_.max_evaluations);
        if (!ls.ok) {
            if (model.k() > 0) {
                // Discard a possibly corrupted model and retry from scratch.
                model.s_list.clear();
                model.y_list.clear();
                model.theta = 1.0;
                continue;
            }
            res.reason = StopReason::kLineSearchFailed;
            return res;
        }
        last_step = ls.alpha;
        // Lock-free fixed-enum histogram: this sits on the optimizer hot
        // loop, where the mutex-guarded hist_observe used to live.
        obs::hist_record(obs::Hist::kLbfgsbLineSearchEvals,
                         static_cast<std::uint64_t>(res.evaluations - evals_before));
        bounds.clip(res.x);

        // Curvature update.
        std::vector<double> s(n), y(n);
        for (std::size_t i = 0; i < n; ++i) {
            s[i] = res.x[i] - x_old[i];
            y[i] = g[i] - g_old[i];
        }
        const double sy = dot(s, y);
        const double yy = dot(y, y);
        if (sy > kEpsMach * yy && sy > 0.0) {
            model.s_list.push_back(std::move(s));
            model.y_list.push_back(std::move(y));
            if (model.s_list.size() > static_cast<std::size_t>(opts_.memory)) {
                model.s_list.pop_front();
                model.y_list.pop_front();
            }
            model.theta = yy / sy;
        }

        const double decrease = f_old - res.f;
        if (decrease <= opts_.f_tol * std::max({std::abs(f_old), std::abs(res.f), 1.0})) {
            res.grad_norm = projected_gradient_norm(res.x, g, bounds);
            res.reason = StopReason::kFtolReached;
            ++res.iterations;
            return res;
        }
    }
    res.grad_norm = projected_gradient_norm(res.x, g, bounds);
    res.reason = StopReason::kMaxIterations;
    return res;
}

OptimResult lbfgsb_minimize(const Objective& objective, std::vector<double> x0,
                            const Bounds& bounds, const LbfgsBOptions& options) {
    return LbfgsB(options).minimize(objective, std::move(x0), bounds);
}

}  // namespace qoc::optim
