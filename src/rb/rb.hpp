/// \file rb.hpp
/// \brief Randomized benchmarking and interleaved RB (Magesan et al. 2012),
///        executed at pulse level on the device simulator.
///
/// The experiment: for each sequence length m, sample random Cliffords
/// C_1..C_m, append the recovery Clifford C_inv = (C_m ... C_1)^{-1},
/// execute on the device and record the probability of returning to |0...0>
/// (including readout error and shot noise).  The survival curve is fit to
/// A alpha^m + B; EPC = (d-1)/d (1 - alpha).  Interleaved RB repeats the
/// experiment with the gate of interest inserted after every Clifford; the
/// interleaved gate error is (d-1)/d (1 - alpha_c / alpha).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "device/executor.hpp"
#include "quantum/superop_structured.hpp"
#include "rb/clifford1q.hpp"
#include "rb/clifford2q.hpp"

namespace qoc::rb {

using device::PulseExecutor;
using linalg::Mat;

struct RbOptions {
    /// Sequence lengths.  1Q gate errors on these devices are ~1e-4, so the
    /// decay only becomes well-conditioned for m into the thousands (the
    /// paper's IRB plots likewise extend to thousands of Cliffords).
    std::vector<std::size_t> lengths{1, 100, 300, 600, 1000, 1500, 2000, 3000};
    std::size_t seeds_per_length = 8;   ///< independent random sequences
    int shots = 1024;
    std::uint64_t rng_seed = 2022;
    /// Width of the structure-of-arrays seed blocks the batched engine
    /// propagates with one d^2 x B apply per Clifford step.  0 = auto
    /// (seeds spread evenly over the task pool, capped at 32).  Any value
    /// yields bitwise-identical per-seed survivals -- the simd kernel
    /// family's lane-stability contract makes the partition unobservable --
    /// so this is purely a throughput knob.
    std::size_t seed_block = 0;
};

struct RbPoint {
    std::size_t length = 0;
    double mean_survival = 0.0;
    double sem = 0.0;  ///< standard error over seeds
};

struct RbCurve {
    std::vector<RbPoint> points;
    double a = 0.0, alpha = 0.0, b = 0.0;          ///< fit A alpha^m + B
    double alpha_err = 0.0;
    double epc = 0.0;       ///< (d-1)/d (1 - alpha)
    double epc_err = 0.0;
};

struct IrbResult {
    RbCurve reference;      ///< standard RB
    RbCurve interleaved;    ///< with the gate of interest interleaved
    double gate_error = 0.0;      ///< (d-1)/d (1 - alpha_c/alpha)
    double gate_error_err = 0.0;  ///< propagated 1-sigma
};

/// Superoperator provider for the gates appearing in Clifford
/// decompositions.  The RB engines consume gate superops so that default
/// and custom (optimized-pulse) calibrations plug in uniformly.
class GateSet1Q {
public:
    /// Builds the per-Clifford superoperators for `qubit` from the schedule
    /// map: "x"/"sx" looked up in `gates` (custom calibrations already
    /// merged by the caller), "rz" exact.
    GateSet1Q(const PulseExecutor& exec, const pulse::InstructionScheduleMap& gates,
              std::size_t qubit, const Clifford1Q& group);

    /// Superoperator implementing Clifford `i` at pulse level.
    const Mat& clifford_superop(std::size_t i) const { return cliff_super_.at(i).dense(); }

    /// Structured (CSR-or-dense SIMD) form of the same superoperator -- the
    /// batched seed engine's apply path.  rz-only Cliffords compress to
    /// exactly diagonal CSR; dispatch happened at construction.
    const quantum::StructuredSuperOp& clifford_structured(std::size_t i) const {
        return cliff_super_.at(i);
    }

    const Clifford1Q& group() const { return group_; }
    std::size_t dim() const { return dim_; }

private:
    const Clifford1Q& group_;
    std::vector<quantum::StructuredSuperOp> cliff_super_;
    std::size_t dim_ = 0;
};

/// Runs standard 1-qubit RB.
RbCurve run_rb_1q(const PulseExecutor& exec, const GateSet1Q& gates, std::size_t qubit,
                  const RbOptions& options);

/// Runs interleaved RB of `interleaved_superop`, whose ideal action must be
/// the Clifford with index `interleaved_clifford` (e.g. X or SX; H is also a
/// Clifford).  The recovery accounts for the interleaved gates.
IrbResult run_irb_1q(const PulseExecutor& exec, const GateSet1Q& gates, std::size_t qubit,
                     const Mat& interleaved_superop, std::size_t interleaved_clifford,
                     const RbOptions& options);

/// Interleaved RB against an already-measured reference curve.  With
/// identical (executor, gate set, qubit, options) the reference curve is
/// the same experiment for every interleaved gate, so batch callers (the
/// design pipeline) measure it once and share it; `run_irb_1q` is this with
/// a freshly measured reference.
IrbResult run_irb_1q_with_reference(const PulseExecutor& exec, const GateSet1Q& gates,
                                    std::size_t qubit, const RbCurve& reference,
                                    const Mat& interleaved_superop,
                                    std::size_t interleaved_clifford,
                                    const RbOptions& options);

/// Two-qubit gate set: builds superops for the 1Q basis gates on each qubit
/// and for cx(0,1).  Clifford superops are composed from those shared
/// basis-gate superops into a lazily-memoized, thread-safe cache over the
/// full 11520-element group (the value of entry `i` depends only on `i`, so
/// any thread may build it and results are independent of thread count).
class GateSet2Q {
public:
    GateSet2Q(const PulseExecutor& exec, const pulse::InstructionScheduleMap& gates,
              const Clifford2Q& group);

    /// Superoperator (16x16) implementing 2Q Clifford `i` at pulse level;
    /// composed on first use, cached afterwards.
    const Mat& clifford_superop(std::size_t i) const;

    /// Structured form of the same memo entry (built under the same
    /// once_flag, so dense and structured caches fill together).
    const quantum::StructuredSuperOp& clifford_structured(std::size_t i) const;

    /// Eagerly fills the whole cache (parallel on the runtime task pool).
    /// Worth calling ahead
    /// of runs whose sequences will touch most of the group; lazy filling is
    /// cheaper for short smoke runs.
    void precompute_all() const;

    const Clifford2Q& group() const { return group_; }

private:
    /// Gate-by-gate composition of element `i` from the decomposition (the
    /// cache-miss path).
    Mat compose_superop(std::size_t i) const;

    const Clifford2Q& group_;
    Mat x_super_[2], sx_super_[2], cx_super_;
    const PulseExecutor& exec_;
    mutable std::vector<quantum::StructuredSuperOp> cliff_cache_;
    mutable std::unique_ptr<std::once_flag[]> cliff_once_;
};

RbCurve run_rb_2q(const PulseExecutor& exec, const GateSet2Q& gates, const RbOptions& options);

IrbResult run_irb_2q(const PulseExecutor& exec, const GateSet2Q& gates,
                     const Mat& interleaved_superop, std::size_t interleaved_clifford,
                     const RbOptions& options);

/// 2Q analogue of `run_irb_1q_with_reference`.
IrbResult run_irb_2q_with_reference(const PulseExecutor& exec, const GateSet2Q& gates,
                                    const RbCurve& reference, const Mat& interleaved_superop,
                                    std::size_t interleaved_clifford,
                                    const RbOptions& options);

/// Fits A alpha^m + B to the points and fills the fit/EPC fields.
void fit_rb_curve(RbCurve& curve, double dimension);

}  // namespace qoc::rb
