/// \file tomography.hpp
/// \brief Single-qubit quantum process tomography and readout-error
///        mitigation.
///
/// The paper concludes that "IRB results do not always present an accurate
/// picture"; process tomography is the standard cross-check.  We prepare
/// the four informationally complete inputs {|0>, |1>, |+>, |+i>}, apply
/// the gate under test, measure in the X/Y/Z bases (shot-sampled through
/// the device's readout confusion), optionally mitigate readout error, and
/// reconstruct the Pauli transfer matrix (PTM) by linear inversion.

#pragma once

#include <cstdint>

#include "device/executor.hpp"
#include "pulse/instruction_map.hpp"

namespace qoc::rb {

using device::PulseExecutor;
using linalg::Mat;

struct TomographyOptions {
    int shots = 8192;
    std::uint64_t seed = 97;
    bool mitigate_readout = true;  ///< invert the (known) confusion matrix
};

struct ProcessTomographyResult {
    Mat ptm;                     ///< 4x4 real Pauli transfer matrix (as complex Mat)
    double avg_gate_fidelity = 0.0;  ///< vs the supplied target unitary
    double unitarity = 0.0;          ///< coherence of the reconstructed map
};

/// Readout mitigation: corrects a measured P(1) using the confusion matrix
/// of `qubit` (clamped to [0, 1]).
double mitigate_p1(const PulseExecutor& device, std::size_t qubit, double measured_p1);

/// Runs 1-qubit process tomography of `gate_superop` (the noisy channel
/// under test, in the executor's d-level space) against the 2x2 target.
/// State preparation and measurement-basis changes use the backend default
/// gates, so SPAM errors enter realistically; mitigation removes the
/// readout part only.
ProcessTomographyResult process_tomography_1q(const PulseExecutor& device,
                                              const pulse::InstructionScheduleMap& defaults,
                                              const Mat& gate_superop, const Mat& target2,
                                              std::size_t qubit,
                                              const TomographyOptions& options = {});

/// Average gate fidelity from a PTM R against target unitary U:
/// F_avg = (Tr(R_U^T R) / d + d) / (d^2 + d) with d = 2.
double avg_fidelity_from_ptm(const Mat& ptm, const Mat& target2);

/// The ideal PTM of a 2x2 unitary.
Mat ptm_of_unitary(const Mat& u2);

/// Two-qubit process tomography of a 16x16 superoperator channel against a
/// 4x4 target unitary: 16 product input states x 9 product measurement
/// bases, joint-count Pauli expectations (optionally readout-mitigated per
/// qubit), PTM by linear inversion over the product-state frame.
struct ProcessTomography2qResult {
    Mat ptm;                         ///< 16x16 Pauli transfer matrix
    double avg_gate_fidelity = 0.0;  ///< vs the 4x4 target
};

ProcessTomography2qResult process_tomography_2q(
    const PulseExecutor& device, const pulse::InstructionScheduleMap& defaults,
    const Mat& gate_superop, const Mat& target4, const TomographyOptions& options = {});

/// The ideal PTM of a 4x4 unitary (two-qubit Pauli basis, row/col index
/// = 4*i + j over {I,X,Y,Z} x {I,X,Y,Z}).
Mat ptm_of_unitary_2q(const Mat& u4);

/// Average fidelity from a 2-qubit PTM: F_pro = Tr(R_t^T R)/16,
/// F_avg = (4 F_pro + 1)/5.
double avg_fidelity_from_ptm_2q(const Mat& ptm, const Mat& target4);

}  // namespace qoc::rb
