/// \file clifford1q.hpp
/// \brief The single-qubit Clifford group (24 elements) with basis-gate
///        decompositions for pulse-level execution.
///
/// Elements are generated from {H, S}, phase-normalized, and each is given
/// a minimal decomposition into the IBM basis {rz(k pi/2) (virtual), sx, x}
/// found by breadth-first search (fewest physical pulses first).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::rb {

using linalg::Mat;

/// One basis-gate application in a Clifford decomposition.
struct BasisGate {
    std::string name;              ///< "rz", "sx" or "x"
    std::optional<double> param;   ///< angle for rz
};

class Clifford1Q {
public:
    /// Builds the group table (deterministic; ~instant).
    Clifford1Q();

    static constexpr std::size_t kSize = 24;

    std::size_t size() const { return kSize; }

    /// Phase-normalized unitary of element `i`.
    const Mat& unitary(std::size_t i) const { return unitaries_.at(i); }

    /// Basis-gate decomposition of element `i` (already verified against the
    /// unitary up to global phase at construction).
    const std::vector<BasisGate>& decomposition(std::size_t i) const { return decomps_.at(i); }

    /// Group product: index of element i * element j (i applied after j).
    std::size_t multiply(std::size_t i, std::size_t j) const {
        return mult_table_[i * kSize + j];
    }

    /// Index of the inverse element.
    std::size_t inverse(std::size_t i) const { return inv_table_[i]; }

    /// Index of the group element equal (up to phase) to `u`, via the
    /// canonical-phase hash built at construction; throws
    /// `std::invalid_argument` when `u` is not a Clifford.
    std::size_t find(const Mat& u) const;

    /// Index of the identity element.
    std::size_t identity_index() const { return identity_; }

    /// Number of physical (sx / x) pulses in element i's decomposition.
    std::size_t pulse_count(std::size_t i) const;

private:
    std::vector<Mat> unitaries_;
    std::vector<std::vector<BasisGate>> decomps_;
    std::vector<std::size_t> mult_table_;
    std::vector<std::size_t> inv_table_;
    std::unordered_map<std::uint64_t, std::size_t> key_index_;  ///< phase_key -> element
    std::size_t identity_ = 0;
};

/// Phase-normalizes a matrix: divides by the phase of its largest entry so
/// equal-up-to-phase matrices map to the same representative.
Mat phase_normalize(const Mat& u);

/// In-place variant of `phase_normalize` (no allocation).
void phase_normalize_inplace(Mat& u);

/// Hash key of a phase-normalized matrix (entries rounded to 1e-6).
std::string phase_hash(const Mat& u);

/// 64-bit canonical-phase hash: FNV-1a over the phase-normalized entries
/// rounded to the same 1e-6 grid as `phase_hash`, but without materializing a
/// string.  Equal-up-to-phase matrices map to the same key; recovery lookups
/// hash the net ideal unitary with this and verify the candidate exactly.
std::uint64_t phase_key(const Mat& u);

}  // namespace qoc::rb
