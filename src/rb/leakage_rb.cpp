#include "rb/leakage_rb.hpp"

#include <cmath>
#include <random>

#include "optim/levmar.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::rb {

LeakageRbResult run_leakage_rb_1q(const PulseExecutor& exec, const GateSet1Q& gates,
                                  const RbOptions& opts) {
    const Clifford1Q& group = gates.group();
    const std::size_t d2 = gates.dim() * gates.dim();
    const Mat rho0 = exec.ground_state_1q();

    LeakageRbResult res;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        double mean_leak = 0.0;
#ifdef QOC_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic) reduction(+ : mean_leak)
#endif
        for (std::size_t s = 0; s < opts.seeds_per_length; ++s) {
            std::mt19937_64 rng(opts.rng_seed + 104729 * (li * 1000 + s));
            std::uniform_int_distribution<std::size_t> dist(0, Clifford1Q::kSize - 1);
            Mat total = Mat::identity(d2);
            std::size_t net = group.identity_index();
            for (std::size_t k = 0; k < m; ++k) {
                const std::size_t c = dist(rng);
                total = gates.clifford_superop(c) * total;
                net = group.multiply(c, net);
            }
            total = gates.clifford_superop(group.inverse(net)) * total;
            const Mat rho = quantum::apply_superop(total, rho0);
            double leak = 0.0;
            for (std::size_t lvl = 2; lvl < gates.dim(); ++lvl) {
                leak += rho(lvl, lvl).real();
            }
            mean_leak += leak;
        }
        res.lengths.push_back(m);
        res.leakage_population.push_back(mean_leak /
                                         static_cast<double>(opts.seeds_per_length));
    }

    // Fit p_comp(m) = A lambda^m + (1 - p_inf) where p_comp = 1 - leakage.
    std::vector<double> p_comp(res.lengths.size());
    for (std::size_t i = 0; i < p_comp.size(); ++i) {
        p_comp[i] = 1.0 - res.leakage_population[i];
    }
    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::pow(p[1], static_cast<double>(res.lengths[i])) + p[2];
    };
    const auto fit =
        optim::levmar_fit(model, p_comp.size(), p_comp, {0.01, 0.999, 0.99});
    res.lambda = fit.params[1];
    res.p_leak_inf = 1.0 - fit.params[2];
    res.leakage_rate_per_clifford = (1.0 - res.lambda) * res.p_leak_inf;
    return res;
}

}  // namespace qoc::rb
