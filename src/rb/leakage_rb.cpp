#include "rb/leakage_rb.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>

#include "linalg/kron.hpp"
#include "obs/obs.hpp"
#include "optim/levmar.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"
#include "runtime/ordered.hpp"
#include "runtime/task_pool.hpp"
#include "runtime/workspace_pool.hpp"

namespace qoc::rb {

namespace {

/// Legacy per-seed loop (`QOC_DENSE_SUPEROP` escape hatch): dense matvec
/// per Clifford through the historical `gemv_into` arithmetic.
LeakageRbResult leakage_curve_dense(const PulseExecutor& exec, const GateSet1Q& gates,
                                    const RbOptions& opts) {
    const Clifford1Q& group = gates.group();
    const std::size_t d = gates.dim();
    const Mat vec_rho0 = linalg::vec(exec.ground_state_1q());

    struct Workspace {
        Mat v, v_next;
    };
    runtime::WorkspacePool<Workspace> workspaces;

    LeakageRbResult res;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        // Per-seed slots plus a serial ordered sum: a parallel reduction's
        // addition order (and hence the rounded double) would depend on the
        // pool size.
        std::vector<double> leaks(opts.seeds_per_length);
        runtime::TaskPool::global().parallel_for(0, opts.seeds_per_length, [&](std::size_t s) {
            std::mt19937_64 rng(opts.rng_seed + 104729 * (li * 1000 + s));
            std::uniform_int_distribution<std::size_t> dist(0, Clifford1Q::kSize - 1);
            auto lease = workspaces.acquire();
            Workspace& w = *lease;
            w.v = vec_rho0;
            std::size_t net = group.identity_index();
            for (std::size_t k = 0; k < m; ++k) {
                const std::size_t c = dist(rng);
                quantum::apply_superop_into(gates.clifford_superop(c), w.v, w.v_next);
                std::swap(w.v, w.v_next);
                net = group.multiply(c, net);
            }
            quantum::apply_superop_into(gates.clifford_superop(group.inverse(net)), w.v,
                                        w.v_next);
            std::swap(w.v, w.v_next);
            // rho(lvl, lvl) sits at vec index lvl * (d + 1) (column stacking).
            double leak = 0.0;
            for (std::size_t lvl = 2; lvl < d; ++lvl) {
                leak += w.v(lvl * (d + 1), 0).real();
            }
            leaks[s] = leak;
            // Telemetry reports the computational-subspace survival 1 - leak.
            obs::emit_rb_seed("leakage_rb", m, static_cast<std::int64_t>(s), 1.0 - leak);
        });
        res.lengths.push_back(m);
        res.leakage_population.push_back(runtime::ordered_mean(leaks));
    }
    return res;
}

/// Batched SoA seed engine; mirrors rb.cpp's rb_curve_1q block loop (the
/// per-seed RNG stream and the leakage readout are unchanged).
LeakageRbResult leakage_curve_batched(const PulseExecutor& exec, const GateSet1Q& gates,
                                      const RbOptions& opts) {
    const Clifford1Q& group = gates.group();
    const std::size_t d = gates.dim();
    const Mat vec_rho0 = linalg::vec(exec.ground_state_1q());

    struct Workspace {
        Mat x, x_next;
        std::vector<std::size_t> seq, rec;
    };
    runtime::WorkspacePool<Workspace> workspaces;
    const std::size_t bw_max = [&] {
        if (opts.seed_block > 0)
            return std::min(opts.seed_block, std::max<std::size_t>(opts.seeds_per_length, 1));
        const std::size_t threads = runtime::TaskPool::global().size();
        const std::size_t even =
            (opts.seeds_per_length + threads - 1) / std::max<std::size_t>(threads, 1);
        return std::min<std::size_t>(std::max<std::size_t>(even, 1), 32);
    }();
    const std::size_t n_blocks = (opts.seeds_per_length + bw_max - 1) / bw_max;

    LeakageRbResult res;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        std::vector<double> leaks(opts.seeds_per_length);
        runtime::TaskPool::global().parallel_for(0, n_blocks, [&](std::size_t blk) {
            obs::Span span("rb.leakage_block");
            const std::size_t s0 = blk * bw_max;
            const std::size_t bw = std::min(bw_max, opts.seeds_per_length - s0);
            auto lease = workspaces.acquire();
            Workspace& w = *lease;

            w.seq.resize(m * bw);
            w.rec.resize(bw);
            std::uniform_int_distribution<std::size_t> dist(0, Clifford1Q::kSize - 1);
            for (std::size_t j = 0; j < bw; ++j) {
                std::mt19937_64 rng(opts.rng_seed + 104729 * (li * 1000 + (s0 + j)));
                std::size_t net = group.identity_index();
                for (std::size_t k = 0; k < m; ++k) {
                    const std::size_t c = dist(rng);
                    w.seq[k * bw + j] = c;
                    net = group.multiply(c, net);
                }
                w.rec[j] = group.inverse(net);
            }

            const std::size_t d2 = vec_rho0.rows();
            w.x.resize(d2, bw);
            for (std::size_t r = 0; r < d2; ++r) {
                for (std::size_t j = 0; j < bw; ++j) w.x(r, j) = vec_rho0(r, 0);
            }
            const auto step = [&](const std::size_t* idx) {
                bool same = true;
                for (std::size_t j = 1; j < bw; ++j) {
                    if (idx[j] != idx[0]) {
                        same = false;
                        break;
                    }
                }
                if (same) {
                    gates.clifford_structured(idx[0]).apply_batch_into(w.x, w.x_next);
                } else {
                    w.x_next.resize(d2, bw);
                    for (std::size_t j = 0; j < bw; ++j) {
                        gates.clifford_structured(idx[j]).apply_col(
                            w.x.data().data() + j, w.x_next.data().data() + j, bw);
                    }
                }
                std::swap(w.x, w.x_next);
            };
            for (std::size_t k = 0; k < m; ++k) step(&w.seq[k * bw]);
            step(w.rec.data());

            for (std::size_t j = 0; j < bw; ++j) {
                double leak = 0.0;
                for (std::size_t lvl = 2; lvl < d; ++lvl) {
                    leak += w.x(lvl * (d + 1), j).real();
                }
                leaks[s0 + j] = leak;
                obs::emit_rb_seed("leakage_rb", m, static_cast<std::int64_t>(s0 + j),
                                  1.0 - leak);
            }
        });
        res.lengths.push_back(m);
        res.leakage_population.push_back(runtime::ordered_mean(leaks));
    }
    return res;
}

}  // namespace

LeakageRbResult run_leakage_rb_1q(const PulseExecutor& exec, const GateSet1Q& gates,
                                  const RbOptions& opts) {
    LeakageRbResult res = quantum::dense_superop_forced()
                              ? leakage_curve_dense(exec, gates, opts)
                              : leakage_curve_batched(exec, gates, opts);

    // Fit p_comp(m) = A lambda^m + (1 - p_inf) where p_comp = 1 - leakage.
    std::vector<double> p_comp(res.lengths.size());
    for (std::size_t i = 0; i < p_comp.size(); ++i) {
        p_comp[i] = 1.0 - res.leakage_population[i];
    }
    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::pow(p[1], static_cast<double>(res.lengths[i])) + p[2];
    };
    const auto fit =
        optim::levmar_fit(model, p_comp.size(), p_comp, {0.01, 0.999, 0.99});
    res.lambda = fit.params[1];
    res.p_leak_inf = 1.0 - fit.params[2];
    res.leakage_rate_per_clifford = (1.0 - res.lambda) * res.p_leak_inf;
    return res;
}

}  // namespace qoc::rb
