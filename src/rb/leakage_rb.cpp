#include "rb/leakage_rb.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>

#include "linalg/kron.hpp"
#include "obs/obs.hpp"
#include "optim/levmar.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"
#include "runtime/ordered.hpp"
#include "runtime/task_pool.hpp"
#include "runtime/workspace_pool.hpp"

namespace qoc::rb {

LeakageRbResult run_leakage_rb_1q(const PulseExecutor& exec, const GateSet1Q& gates,
                                  const RbOptions& opts) {
    const Clifford1Q& group = gates.group();
    const std::size_t d = gates.dim();
    const Mat vec_rho0 = linalg::vec(exec.ground_state_1q());

    struct Workspace {
        Mat v, v_next;
    };
    runtime::WorkspacePool<Workspace> workspaces;

    LeakageRbResult res;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        // Per-seed slots plus a serial ordered sum: a parallel reduction's
        // addition order (and hence the rounded double) would depend on the
        // pool size.
        std::vector<double> leaks(opts.seeds_per_length);
        runtime::TaskPool::global().parallel_for(0, opts.seeds_per_length, [&](std::size_t s) {
            std::mt19937_64 rng(opts.rng_seed + 104729 * (li * 1000 + s));
            std::uniform_int_distribution<std::size_t> dist(0, Clifford1Q::kSize - 1);
            auto lease = workspaces.acquire();
            Workspace& w = *lease;
            w.v = vec_rho0;
            std::size_t net = group.identity_index();
            for (std::size_t k = 0; k < m; ++k) {
                const std::size_t c = dist(rng);
                quantum::apply_superop_into(gates.clifford_superop(c), w.v, w.v_next);
                std::swap(w.v, w.v_next);
                net = group.multiply(c, net);
            }
            quantum::apply_superop_into(gates.clifford_superop(group.inverse(net)), w.v,
                                        w.v_next);
            std::swap(w.v, w.v_next);
            // rho(lvl, lvl) sits at vec index lvl * (d + 1) (column stacking).
            double leak = 0.0;
            for (std::size_t lvl = 2; lvl < d; ++lvl) {
                leak += w.v(lvl * (d + 1), 0).real();
            }
            leaks[s] = leak;
            // Telemetry reports the computational-subspace survival 1 - leak.
            obs::emit_rb_seed("leakage_rb", m, static_cast<std::int64_t>(s), 1.0 - leak);
        });
        res.lengths.push_back(m);
        res.leakage_population.push_back(runtime::ordered_mean(leaks));
    }

    // Fit p_comp(m) = A lambda^m + (1 - p_inf) where p_comp = 1 - leakage.
    std::vector<double> p_comp(res.lengths.size());
    for (std::size_t i = 0; i < p_comp.size(); ++i) {
        p_comp[i] = 1.0 - res.leakage_population[i];
    }
    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::pow(p[1], static_cast<double>(res.lengths[i])) + p[2];
    };
    const auto fit =
        optim::levmar_fit(model, p_comp.size(), p_comp, {0.01, 0.999, 0.99});
    res.lambda = fit.params[1];
    res.p_leak_inf = 1.0 - fit.params[2];
    res.leakage_rate_per_clifford = (1.0 - res.lambda) * res.p_leak_inf;
    return res;
}

}  // namespace qoc::rb
