/// \file clifford2q.hpp
/// \brief The two-qubit Clifford group (11520 elements) via the standard
///        coset construction used in randomized-benchmarking practice:
///
///   C2 = (c_a (x) c_b) . E_k . (s_i (x) s_j)
///
/// with c from the 24 single-qubit Cliffords, E_k one of four entangling
/// classes {I, CX, CX.CXr (iSWAP-like), SWAP} and s from the 3-element
/// axis-cycling set {I, SH, (SH)^2}.  Class sizes 576 / 5184 / 5184 / 576
/// sum to 11520 and every element is distinct (verified in tests).

#pragma once

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "rb/clifford1q.hpp"

namespace qoc::rb {

/// One gate in a 2-qubit decomposition.
struct TwoQubitGate {
    std::string name;             ///< "rz", "sx", "x" or "cx"
    std::vector<std::size_t> qubits;
    std::optional<double> param;
};

class Clifford2Q {
public:
    /// Builds the group: all 11520 phase-normalized unitaries plus the
    /// canonical-phase hash index used by `find` (a few ms; removes the
    /// lazily-built lookup that raced when `find` was first hit inside an
    /// OpenMP sequence loop).
    explicit Clifford2Q(const Clifford1Q& c1);

    static constexpr std::size_t kSize = 11520;

    std::size_t size() const { return kSize; }

    /// Phase-normalized 4x4 unitary of element `i` (cached at construction).
    const Mat& unitary(std::size_t i) const { return unitaries_.at(i); }

    /// Decomposition into {rz, sx, x} on either qubit plus cx(0,1) /
    /// cx(1,0); cx(1,0) is emitted as h-conjugated cx(0,1) so only the
    /// native direction is required.
    std::vector<TwoQubitGate> decomposition(std::size_t i) const;

    /// Uniformly random element index.
    std::size_t sample(std::mt19937_64& rng) const;

    /// Index of the element equal (up to phase) to `u`, via one
    /// canonical-phase hash plus an exact verification of the candidate.
    /// Thread-safe (the index is immutable after construction).  Throws when
    /// not a Clifford.
    std::size_t find(const Mat& u) const;

    /// Index of the inverse of element `i`.
    std::size_t inverse(std::size_t i) const { return find(unitary(i).adjoint()); }

    std::size_t identity_index() const;

    /// Number of cx applications in the decomposition (0, 1, 2 or 3).
    std::size_t cx_count(std::size_t i) const;

private:
    struct Parts {
        std::size_t c_a, c_b;   ///< pre single-qubit layer
        std::size_t cls;        ///< entangling class 0..3
        std::size_t s_i, s_j;   ///< axis-cycling layer (classes 1, 2 only)
    };
    Parts split(std::size_t i) const;
    Mat compute_unitary(std::size_t i) const;

    const Clifford1Q& c1_;
    std::vector<std::size_t> s_set_;  ///< indices of {I, SH, (SH)^2} in C1
    std::vector<Mat> unitaries_;      ///< all kSize phase-normalized unitaries
    std::unordered_map<std::uint64_t, std::size_t> key_index_;  ///< phase_key -> element
};

}  // namespace qoc::rb
