#include "rb/clifford2q.hpp"

#include "contracts/matrix_checks.hpp"

#include <numbers>
#include <stdexcept>

#include "linalg/kron.hpp"
#include "quantum/gates.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::rb {

namespace {
namespace g = quantum::gates;

/// Entangling class representative matrices.
Mat class_matrix(std::size_t cls) {
    switch (cls) {
        case 0: return Mat::identity(4);
        case 1: return g::cx();
        case 2: return g::cx_10() * g::cx();  // iSWAP-like: two CX uses
        case 3: return g::swap();
        default: throw std::logic_error("class_matrix: bad class");
    }
}

std::size_t class_offset(std::size_t cls) {
    // Cumulative offsets for classes of size 576, 5184, 5184, 576.
    switch (cls) {
        case 0: return 0;
        case 1: return 576;
        case 2: return 576 + 5184;
        case 3: return 576 + 5184 + 5184;
        default: throw std::logic_error("class_offset: bad class");
    }
}
}  // namespace

Clifford2Q::Clifford2Q(const Clifford1Q& c1) : c1_(c1) {
    // The axis-cycling set {I, SH, (SH)^2}: SH maps X->Z->Y->X.
    const Mat sh = g::s() * g::h();
    s_set_ = {c1_.identity_index(), c1_.find(sh), c1_.find(sh * sh)};

    // Cache every phase-normalized unitary and hash it for find().  ~3 MB;
    // makes unitary() an indexed read in the RB sequence loop and find()
    // race-free across pool workers.
    unitaries_.resize(kSize);
    key_index_.reserve(kSize);
    runtime::TaskPool::global().parallel_for(
        0, kSize, [&](std::size_t i) { unitaries_[i] = compute_unitary(i); });
    for (std::size_t i = 0; i < kSize; ++i) {
        contracts::check_unitary(unitaries_[i], "Clifford2Q: group element");
        key_index_.emplace(phase_key(unitaries_[i]), i);
    }
    if (key_index_.size() != kSize) {
        throw std::logic_error("Clifford2Q: coset construction produced duplicates");
    }
}

Clifford2Q::Parts Clifford2Q::split(std::size_t i) const {
    if (i >= kSize) throw std::out_of_range("Clifford2Q: index out of range");
    Parts p{};
    if (i < 576) {
        p.cls = 0;
        p.c_a = i / 24;
        p.c_b = i % 24;
        p.s_i = p.s_j = 0;
        return p;
    }
    if (i < 576 + 5184) {
        p.cls = 1;
        i -= 576;
    } else if (i < 576 + 2 * 5184) {
        p.cls = 2;
        i -= 576 + 5184;
    } else {
        p.cls = 3;
        p.c_a = (i - class_offset(3)) / 24;
        p.c_b = (i - class_offset(3)) % 24;
        p.s_i = p.s_j = 0;
        return p;
    }
    // Classes 1 and 2: i in [0, 5184) = 576 * 9.
    const std::size_t pair = i / 9;     // which (c_a, c_b)
    const std::size_t ss = i % 9;       // which (s_i, s_j)
    p.c_a = pair / 24;
    p.c_b = pair % 24;
    p.s_i = ss / 3;
    p.s_j = ss % 3;
    return p;
}

Mat Clifford2Q::compute_unitary(std::size_t i) const {
    const Parts p = split(i);
    Mat u = linalg::kron(c1_.unitary(p.c_a), c1_.unitary(p.c_b)) * class_matrix(p.cls);
    if (p.cls == 1 || p.cls == 2) {
        u = u * linalg::kron(c1_.unitary(s_set_[p.s_i]), c1_.unitary(s_set_[p.s_j]));
    }
    return phase_normalize(u);
}

std::vector<TwoQubitGate> Clifford2Q::decomposition(std::size_t i) const {
    const Parts p = split(i);
    std::vector<TwoQubitGate> seq;

    auto add_1q = [&](std::size_t cliff, std::size_t qubit) {
        for (const BasisGate& bg : c1_.decomposition(cliff)) {
            seq.push_back(TwoQubitGate{bg.name, {qubit}, bg.param});
        }
    };
    auto add_cx01 = [&] { seq.push_back(TwoQubitGate{"cx", {0, 1}, std::nullopt}); };
    auto add_cx10 = [&] {
        // cx(1,0) = (H (x) H) cx(0,1) (H (x) H); H itself is rz sx rz.
        const double hp = std::numbers::pi / 2.0;
        for (std::size_t q : {0u, 1u}) {
            seq.push_back(TwoQubitGate{"rz", {q}, hp});
            seq.push_back(TwoQubitGate{"sx", {q}, std::nullopt});
            seq.push_back(TwoQubitGate{"rz", {q}, hp});
        }
        add_cx01();
        for (std::size_t q : {0u, 1u}) {
            seq.push_back(TwoQubitGate{"rz", {q}, hp});
            seq.push_back(TwoQubitGate{"sx", {q}, std::nullopt});
            seq.push_back(TwoQubitGate{"rz", {q}, hp});
        }
    };

    // Matrix order is (c_a (x) c_b) . E . (s (x) s); execution order is the
    // reverse: s-layer first, then the entangler, then the c-layer.
    if (p.cls == 1 || p.cls == 2) {
        add_1q(s_set_[p.s_i], 0);
        add_1q(s_set_[p.s_j], 1);
    }
    switch (p.cls) {
        case 0: break;
        case 1: add_cx01(); break;
        case 2:
            add_cx01();
            add_cx10();
            break;
        case 3:
            add_cx01();
            add_cx10();
            add_cx01();
            break;
    }
    add_1q(p.c_a, 0);
    add_1q(p.c_b, 1);
    return seq;
}

std::size_t Clifford2Q::sample(std::mt19937_64& rng) const {
    std::uniform_int_distribution<std::size_t> dist(0, kSize - 1);
    return dist(rng);
}

std::size_t Clifford2Q::find(const Mat& u) const {
    const auto it = key_index_.find(phase_key(u));
    if (it == key_index_.end() || !linalg::equal_up_to_phase(u, unitaries_[it->second], 1e-6)) {
        throw std::invalid_argument("Clifford2Q::find: matrix is not a 2Q Clifford");
    }
    return it->second;
}

std::size_t Clifford2Q::identity_index() const {
    return c1_.identity_index() * 24 + c1_.identity_index();
}

std::size_t Clifford2Q::cx_count(std::size_t i) const {
    const Parts p = split(i);
    switch (p.cls) {
        case 0: return 0;
        case 1: return 1;
        case 2: return 2;
        default: return 3;
    }
}

}  // namespace qoc::rb
