#include "rb/clifford1q.hpp"

#include "contracts/matrix_checks.hpp"

#include <cmath>
#include <cstdio>
#include <deque>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

#include "quantum/gates.hpp"
#include "util/fnv1a.hpp"

namespace qoc::rb {

void phase_normalize_inplace(Mat& u) {
    // Reference entry: the largest-magnitude element (ties broken by index
    // order, deterministic for exact group elements).
    std::size_t kmax = 0;
    double vmax = 0.0;
    for (std::size_t k = 0; k < u.data().size(); ++k) {
        const double v = std::abs(u.data()[k]);
        if (v > vmax + 1e-9) {
            vmax = v;
            kmax = k;
        }
    }
    if (vmax < 1e-12) return;
    const linalg::cplx phase = u.data()[kmax] / vmax;
    for (auto& v : u.data()) v /= phase;
}

Mat phase_normalize(const Mat& u) {
    Mat out = u;
    phase_normalize_inplace(out);
    return out;
}

std::uint64_t phase_key(const Mat& u) {
    const Mat n = phase_normalize(u);
    util::Fnv1a h;
    for (const auto& v : n.data()) {
        // Round to the 1e-6 grid; casting to integer absorbs -0.
        h.i64(static_cast<std::int64_t>(std::round(v.real() * 1e6)));
        h.i64(static_cast<std::int64_t>(std::round(v.imag() * 1e6)));
    }
    return h.digest();
}

std::string phase_hash(const Mat& u) {
    const Mat n = phase_normalize(u);
    std::string key;
    key.reserve(n.data().size() * 16);
    char buf[40];
    for (const auto& v : n.data()) {
        // Round to 1e-6 and canonicalize -0.
        double re = std::round(v.real() * 1e6) / 1e6;
        double im = std::round(v.imag() * 1e6) / 1e6;
        if (re == 0.0) re = 0.0;
        if (im == 0.0) im = 0.0;
        std::snprintf(buf, sizeof(buf), "%.6f,%.6f;", re, im);
        key += buf;
    }
    return key;
}

Clifford1Q::Clifford1Q() {
    namespace g = quantum::gates;

    // Enumerate the group by closure over {H, S}.
    std::unordered_map<std::string, std::size_t> index_of;
    std::deque<Mat> frontier;
    auto add = [&](const Mat& u) -> bool {
        const std::string key = phase_hash(u);
        if (index_of.count(key)) return false;
        index_of.emplace(key, unitaries_.size());
        unitaries_.push_back(phase_normalize(u));
        frontier.push_back(unitaries_.back());
        return true;
    };
    add(Mat::identity(2));
    while (!frontier.empty()) {
        const Mat u = frontier.front();
        frontier.pop_front();
        add(g::h() * u);
        add(g::s() * u);
    }
    if (unitaries_.size() != kSize) {
        throw std::logic_error("Clifford1Q: generated group has wrong order");
    }
    identity_ = index_of.at(phase_hash(Mat::identity(2)));

    // Canonical-phase hash index for O(1) find().
    key_index_.reserve(kSize);
    for (std::size_t i = 0; i < kSize; ++i) {
        contracts::check_unitary(unitaries_[i], "Clifford1Q: group element");
        key_index_.emplace(phase_key(unitaries_[i]), i);
    }
    if (key_index_.size() != kSize) {
        throw std::logic_error("Clifford1Q: phase_key collision within the group");
    }

    // Multiplication and inverse tables.
    mult_table_.assign(kSize * kSize, 0);
    inv_table_.assign(kSize, 0);
    for (std::size_t i = 0; i < kSize; ++i) {
        for (std::size_t j = 0; j < kSize; ++j) {
            mult_table_[i * kSize + j] = index_of.at(phase_hash(unitaries_[i] * unitaries_[j]));
        }
        inv_table_[i] = index_of.at(phase_hash(unitaries_[i].adjoint()));
    }

    // Minimal basis-gate decompositions via BFS over {rz(k pi/2), sx, x},
    // expanding cheapest (fewest physical pulses) first.
    struct Node {
        Mat u;
        std::vector<BasisGate> seq;
        std::size_t pulses;
    };
    const double half_pi = std::numbers::pi / 2.0;
    const std::vector<std::pair<BasisGate, Mat>> alphabet = {
        {{"rz", half_pi}, g::rz(half_pi)},
        {{"rz", std::numbers::pi}, g::rz(std::numbers::pi)},
        {{"rz", -half_pi}, g::rz(-half_pi)},
        {{"sx", std::nullopt}, g::sx()},
        {{"x", std::nullopt}, g::x()},
    };

    decomps_.assign(kSize, {});
    std::vector<bool> found(kSize, false);
    std::size_t n_found = 0;

    std::deque<Node> queue;
    queue.push_back(Node{Mat::identity(2), {}, 0});
    std::unordered_map<std::string, std::size_t> best_pulses;
    best_pulses[phase_hash(Mat::identity(2))] = 0;

    while (!queue.empty() && n_found < kSize) {
        Node node = std::move(queue.front());
        queue.pop_front();
        const auto it = index_of.find(phase_hash(node.u));
        if (it != index_of.end() && !found[it->second]) {
            found[it->second] = true;
            decomps_[it->second] = node.seq;
            ++n_found;
        }
        if (node.seq.size() >= 5) continue;  // every Clifford fits in 5 ops
        for (const auto& [gate, mat] : alphabet) {
            // Avoid consecutive rz gates (they merge) to keep BFS small.
            if (gate.name == "rz" && !node.seq.empty() && node.seq.back().name == "rz") continue;
            Node next;
            next.u = mat * node.u;
            next.seq = node.seq;
            next.seq.push_back(gate);
            next.pulses = node.pulses + (gate.name == "rz" ? 0 : 1);
            const std::string key = phase_hash(next.u);
            const auto bit = best_pulses.find(key);
            if (bit != best_pulses.end() && bit->second <= next.pulses) continue;
            best_pulses[key] = next.pulses;
            queue.push_back(std::move(next));
        }
    }
    if (n_found != kSize) {
        throw std::logic_error("Clifford1Q: BFS failed to decompose all elements");
    }

    // Verify every decomposition reproduces its unitary up to phase.
    for (std::size_t i = 0; i < kSize; ++i) {
        Mat u = Mat::identity(2);
        for (const auto& gate : decomps_[i]) {
            if (gate.name == "rz") {
                u = g::rz(*gate.param) * u;
            } else if (gate.name == "sx") {
                u = g::sx() * u;
            } else {
                u = g::x() * u;
            }
        }
        if (!linalg::equal_up_to_phase(u, unitaries_[i], 1e-9)) {
            throw std::logic_error("Clifford1Q: decomposition mismatch");
        }
    }
}

std::size_t Clifford1Q::find(const Mat& u) const {
    const auto it = key_index_.find(phase_key(u));
    if (it == key_index_.end() || !linalg::equal_up_to_phase(u, unitaries_[it->second], 1e-6)) {
        throw std::invalid_argument("Clifford1Q::find: matrix is not a 1Q Clifford");
    }
    return it->second;
}

std::size_t Clifford1Q::pulse_count(std::size_t i) const {
    std::size_t n = 0;
    for (const auto& gate : decomps_.at(i)) n += (gate.name != "rz");
    return n;
}

}  // namespace qoc::rb
