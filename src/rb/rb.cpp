#include "rb/rb.hpp"

#include "contracts/matrix_checks.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <stdexcept>

#include "linalg/kron.hpp"
#include "obs/obs.hpp"
#include "optim/levmar.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"
#include "runtime/ordered.hpp"
#include "runtime/task_pool.hpp"
#include "runtime/workspace_pool.hpp"

namespace qoc::rb {

namespace {

double survival_sem(const std::vector<double>& vals, double mean) {
    if (vals.size() < 2) return 0.0;
    double s = 0.0;
    for (double v : vals) s += (v - mean) * (v - mean);
    return std::sqrt(s / static_cast<double>(vals.size() - 1) /
                     static_cast<double>(vals.size()));
}

}  // namespace

void fit_rb_curve(RbCurve& curve, double dimension) {
    const std::size_t n = curve.points.size();
    if (n < 3) throw std::invalid_argument("fit_rb_curve: need at least 3 lengths");
    std::vector<double> y(n), sigma(n);
    for (std::size_t i = 0; i < n; ++i) {
        y[i] = curve.points[i].mean_survival;
        sigma[i] = std::max(curve.points[i].sem, 1e-4);
    }
    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::pow(p[1], static_cast<double>(curve.points[i].length)) + p[2];
    };
    // Seed alpha from the first/last points.
    const double y0 = y.front(), y1 = y.back();
    const double m0 = static_cast<double>(curve.points.front().length);
    const double m1 = static_cast<double>(curve.points.back().length);
    const double b_guess = 1.0 / dimension;
    double alpha_guess = 0.999;
    if (y0 > b_guess && y1 > b_guess && m1 > m0) {
        alpha_guess = std::pow((y1 - b_guess) / (y0 - b_guess), 1.0 / (m1 - m0));
        alpha_guess = std::clamp(alpha_guess, 0.5, 0.999999);
    }
    const auto fit = optim::levmar_fit(model, n, y, {1.0 - b_guess, alpha_guess, b_guess}, sigma);
    curve.a = fit.params[0];
    curve.alpha = fit.params[1];
    curve.b = fit.params[2];
    curve.alpha_err = fit.stderrs[1];
    const double scale = (dimension - 1.0) / dimension;
    curve.epc = scale * (1.0 - curve.alpha);
    curve.epc_err = scale * curve.alpha_err;
}

// --- 1Q -----------------------------------------------------------------

GateSet1Q::GateSet1Q(const PulseExecutor& exec, const pulse::InstructionScheduleMap& gates,
                     std::size_t qubit, const Clifford1Q& group)
    : group_(group) {
    const std::size_t d = exec.config().levels;
    dim_ = d;
    const Mat x_super = exec.schedule_superop_1q(gates.get("x", {qubit}), qubit);
    const Mat sx_super = exec.schedule_superop_1q(gates.get("sx", {qubit}), qubit);

    cliff_super_.reserve(Clifford1Q::kSize);
    for (std::size_t i = 0; i < Clifford1Q::kSize; ++i) {
        Mat total = Mat::identity(d * d);
        for (const BasisGate& g : group_.decomposition(i)) {
            if (g.name == "rz") {
                total = exec.rz_superop_1q(*g.param) * total;
            } else if (g.name == "sx") {
                total = sx_super * total;
            } else if (g.name == "x") {
                total = x_super * total;
            } else {
                throw std::logic_error("GateSet1Q: unknown basis gate " + g.name);
            }
        }
        contracts::check_trace_preserving(total, "GateSet1Q: Clifford superop", 1e-7);
        cliff_super_.push_back(quantum::StructuredSuperOp::from_dense(total));
    }
}

namespace {

/// Per-thread propagation state: the vectorized density matrix and a
/// ping-pong buffer for `apply_superop_into` (no per-step allocation).
struct SeqWorkspace {
    Mat v;        ///< vec(rho) being propagated
    Mat v_next;   ///< gemv output, swapped into `v`
    Mat net;      ///< 2Q only: running phase-normalized ideal unitary
    Mat net_next;
};

/// Per-thread state of the batched (structure-of-arrays) seed engine: a
/// d^2 x B block whose column j is seed s0+j's vec(rho), the pre-sampled
/// step-major sequence table, and the per-seed RNG engines parked after
/// their sequence draws so shot sampling continues the exact legacy stream.
struct BatchWorkspace {
    Mat x;       ///< d^2 x B seed block
    Mat x_next;  ///< apply output, swapped into `x`
    Mat v;       ///< d^2 x 1 per-seed extraction for measurement
    Mat net, net_next;                  ///< 2Q ideal-unitary tracking (presample)
    std::vector<std::size_t> seq;       ///< [step * B + seed] Clifford indices
    std::vector<std::size_t> rec;       ///< recovery index per seed
    std::vector<std::mt19937_64> rngs;  ///< per-seed stream after sequence draws
};

/// Width of the SoA seed blocks.  Per-seed results are invariant under the
/// partition (the simd kernel family computes each output element with the
/// same accumulation order on the batched, strided and single-vector paths
/// -- see simd_kernels.hpp), so the auto policy is free to spread seeds
/// evenly over the task pool without breaking 1-vs-N-thread bitwise
/// reproducibility.
std::size_t seed_block_width(std::size_t seeds, std::size_t requested) {
    if (seeds == 0) return 1;
    if (requested > 0) return std::min(requested, seeds);
    const std::size_t threads = runtime::TaskPool::global().size();
    const std::size_t even = (seeds + threads - 1) / threads;
    return std::min<std::size_t>(std::max<std::size_t>(even, 1), 32);
}

/// One Clifford step over a whole seed block.  When every seed drew the
/// same element (always true for IRB interleave steps, often for short
/// blocks) this is ONE batched d^2 x B apply; otherwise each column gets a
/// strided single-column apply.  Both paths produce bitwise-identical
/// columns, so the branch is purely a throughput decision.
template <typename StructuredOf>
void apply_block_step(const StructuredOf& structured_of, const std::size_t* idx,
                      std::size_t bw, Mat& x, Mat& x_next) {
    bool same = true;
    for (std::size_t j = 1; j < bw; ++j) {
        if (idx[j] != idx[0]) {
            same = false;
            break;
        }
    }
    if (same) {
        structured_of(idx[0]).apply_batch_into(x, x_next);
    } else {
        x_next.resize(x.rows(), x.cols());
        for (std::size_t j = 0; j < bw; ++j) {
            structured_of(idx[j]).apply_col(x.data().data() + j, x_next.data().data() + j, bw);
        }
    }
    std::swap(x, x_next);
}

/// Fills every column of the block with `vec_rho0`.
void fill_block(const Mat& vec_rho0, std::size_t bw, Mat& x) {
    const std::size_t d2 = vec_rho0.rows();
    x.resize(d2, bw);
    for (std::size_t r = 0; r < d2; ++r) {
        for (std::size_t j = 0; j < bw; ++j) x(r, j) = vec_rho0(r, 0);
    }
}

/// Copies column `j` of the block into the d^2 x 1 vector `v`.
void extract_column(const Mat& x, std::size_t j, Mat& v) {
    v.resize(x.rows(), 1);
    for (std::size_t r = 0; r < x.rows(); ++r) v(r, 0) = x(r, j);
}

/// Legacy per-seed 1Q loop, kept verbatim as the `QOC_DENSE_SUPEROP` escape
/// hatch: one dense O(d^4) matvec per Clifford through the historical
/// `gemv_into` arithmetic (bitwise identical to the pre-structured binary).
RbCurve rb_curve_1q_dense(const PulseExecutor& exec, const GateSet1Q& gates, std::size_t qubit,
                          const RbOptions& opts, const Mat* interleave_super,
                          std::size_t interleave_index) {
    const Clifford1Q& group = gates.group();
    const Mat vec_rho0 = linalg::vec(exec.ground_state_1q());

    runtime::WorkspacePool<SeqWorkspace> workspaces;

    RbCurve curve;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        std::vector<double> survivals(opts.seeds_per_length);

        runtime::TaskPool::global().parallel_for(0, opts.seeds_per_length, [&](std::size_t s) {
            // The interleaved experiment reuses the same random Clifford
            // sequences as the reference (standard IRB practice): paired
            // sequences cancel most sampling noise in the alpha ratio.
            std::mt19937_64 rng(opts.rng_seed + 7919 * (li * 1000 + s));
            std::uniform_int_distribution<std::size_t> dist(0, Clifford1Q::kSize - 1);

            obs::Span span("rb.seq_1q");
            auto lease = workspaces.acquire();
            SeqWorkspace& w = *lease;
            w.v = vec_rho0;
            std::size_t net = group.identity_index();
            for (std::size_t k = 0; k < m; ++k) {
                const std::size_t c = dist(rng);
                quantum::apply_superop_into(gates.clifford_superop(c), w.v, w.v_next);
                std::swap(w.v, w.v_next);
                net = group.multiply(c, net);
                if (interleave_super) {
                    quantum::apply_superop_into(*interleave_super, w.v, w.v_next);
                    std::swap(w.v, w.v_next);
                    net = group.multiply(interleave_index, net);
                }
            }
            const std::size_t rec = group.inverse(net);
            quantum::apply_superop_into(gates.clifford_superop(rec), w.v, w.v_next);
            std::swap(w.v, w.v_next);

            contracts::check_density_vec(w.v, "RB 1Q: state after recovery", 1e-6);
            const double p0 = 1.0 - exec.p1_after_readout_vec(w.v, qubit);
            contracts::check_probability(p0, "RB 1Q: survival probability", 1e-6);
            // Shot sampling.
            std::binomial_distribution<int> shots_dist(opts.shots, std::clamp(p0, 0.0, 1.0));
            survivals[s] = static_cast<double>(shots_dist(rng)) / static_cast<double>(opts.shots);
            obs::emit_rb_seed(interleave_super ? "irb1q" : "rb1q", m,
                              static_cast<std::int64_t>(s), survivals[s]);
        });
        RbPoint pt;
        pt.length = m;
        pt.mean_survival = runtime::ordered_mean(survivals);
        pt.sem = survival_sem(survivals, pt.mean_survival);
        curve.points.push_back(pt);
    }
    fit_rb_curve(curve, 2.0);
    return curve;
}

/// Batched 1Q RB: sequences are pre-sampled per seed (identical RNG stream
/// to the legacy loop), then the whole seed block advances with one
/// structured apply per Clifford step through `apply_block_step`.
RbCurve rb_curve_1q(const PulseExecutor& exec, const GateSet1Q& gates, std::size_t qubit,
                    const RbOptions& opts, const Mat* interleave_super,
                    std::size_t interleave_index) {
    if (quantum::dense_superop_forced()) {
        return rb_curve_1q_dense(exec, gates, qubit, opts, interleave_super, interleave_index);
    }
    const Clifford1Q& group = gates.group();
    const Mat vec_rho0 = linalg::vec(exec.ground_state_1q());
    quantum::StructuredSuperOp inter_struct;
    if (interleave_super != nullptr) {
        inter_struct = quantum::StructuredSuperOp::from_dense(*interleave_super);
    }
    const auto structured_of = [&gates](std::size_t i) -> const quantum::StructuredSuperOp& {
        return gates.clifford_structured(i);
    };

    runtime::WorkspacePool<BatchWorkspace> workspaces;
    const std::size_t bw_max = seed_block_width(opts.seeds_per_length, opts.seed_block);
    const std::size_t n_blocks = (opts.seeds_per_length + bw_max - 1) / bw_max;

    RbCurve curve;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        std::vector<double> survivals(opts.seeds_per_length);

        runtime::TaskPool::global().parallel_for(0, n_blocks, [&](std::size_t blk) {
            obs::Span span("rb.seq_block_1q");
            const std::size_t s0 = blk * bw_max;
            const std::size_t bw = std::min(bw_max, opts.seeds_per_length - s0);
            auto lease = workspaces.acquire();
            BatchWorkspace& w = *lease;

            // Pre-sample the block's sequences.  Per seed the draws happen
            // in the same order as the legacy loop (sequence indices during
            // the steps, shot sampling afterwards from the same engine), so
            // sequences and shot noise pair up with the reference run.
            w.seq.resize(m * bw);
            w.rec.resize(bw);
            w.rngs.clear();
            std::uniform_int_distribution<std::size_t> dist(0, Clifford1Q::kSize - 1);
            for (std::size_t j = 0; j < bw; ++j) {
                std::mt19937_64 rng(opts.rng_seed + 7919 * (li * 1000 + (s0 + j)));
                std::size_t net = group.identity_index();
                for (std::size_t k = 0; k < m; ++k) {
                    const std::size_t c = dist(rng);
                    w.seq[k * bw + j] = c;
                    net = group.multiply(c, net);
                    if (interleave_super != nullptr) net = group.multiply(interleave_index, net);
                }
                w.rec[j] = group.inverse(net);
                w.rngs.push_back(rng);
            }

            fill_block(vec_rho0, bw, w.x);
            for (std::size_t k = 0; k < m; ++k) {
                apply_block_step(structured_of, &w.seq[k * bw], bw, w.x, w.x_next);
                if (interleave_super != nullptr) {
                    inter_struct.apply_batch_into(w.x, w.x_next);
                    std::swap(w.x, w.x_next);
                }
            }
            apply_block_step(structured_of, w.rec.data(), bw, w.x, w.x_next);

            for (std::size_t j = 0; j < bw; ++j) {
                extract_column(w.x, j, w.v);
                contracts::check_density_vec(w.v, "RB 1Q: state after recovery", 1e-6);
                const double p0 = 1.0 - exec.p1_after_readout_vec(w.v, qubit);
                contracts::check_probability(p0, "RB 1Q: survival probability", 1e-6);
                std::binomial_distribution<int> shots_dist(opts.shots, std::clamp(p0, 0.0, 1.0));
                survivals[s0 + j] = static_cast<double>(shots_dist(w.rngs[j])) /
                                    static_cast<double>(opts.shots);
                obs::emit_rb_seed(interleave_super ? "irb1q" : "rb1q", m,
                                  static_cast<std::int64_t>(s0 + j), survivals[s0 + j]);
            }
        });
        RbPoint pt;
        pt.length = m;
        pt.mean_survival = runtime::ordered_mean(survivals);
        pt.sem = survival_sem(survivals, pt.mean_survival);
        curve.points.push_back(pt);
    }
    fit_rb_curve(curve, 2.0);
    return curve;
}

}  // namespace

RbCurve run_rb_1q(const PulseExecutor& exec, const GateSet1Q& gates, std::size_t qubit,
                  const RbOptions& options) {
    return rb_curve_1q(exec, gates, qubit, options, nullptr, 0);
}

IrbResult run_irb_1q_with_reference(const PulseExecutor& exec, const GateSet1Q& gates,
                                    std::size_t qubit, const RbCurve& reference,
                                    const Mat& interleaved_superop,
                                    std::size_t interleaved_clifford,
                                    const RbOptions& options) {
    IrbResult res;
    res.reference = reference;
    res.interleaved =
        rb_curve_1q(exec, gates, qubit, options, &interleaved_superop, interleaved_clifford);
    const double ratio = res.interleaved.alpha / res.reference.alpha;
    res.gate_error = 0.5 * (1.0 - ratio);
    // Propagate both alpha uncertainties.
    const double rel = std::sqrt(std::pow(res.interleaved.alpha_err / res.interleaved.alpha, 2) +
                                 std::pow(res.reference.alpha_err / res.reference.alpha, 2));
    res.gate_error_err = 0.5 * ratio * rel;
    return res;
}

IrbResult run_irb_1q(const PulseExecutor& exec, const GateSet1Q& gates, std::size_t qubit,
                     const Mat& interleaved_superop, std::size_t interleaved_clifford,
                     const RbOptions& options) {
    return run_irb_1q_with_reference(exec, gates, qubit,
                                     rb_curve_1q(exec, gates, qubit, options, nullptr, 0),
                                     interleaved_superop, interleaved_clifford, options);
}

// --- 2Q -----------------------------------------------------------------

GateSet2Q::GateSet2Q(const PulseExecutor& exec, const pulse::InstructionScheduleMap& gates,
                     const Clifford2Q& group)
    : group_(group),
      exec_(exec),
      cliff_cache_(Clifford2Q::kSize),
      cliff_once_(std::make_unique<std::once_flag[]>(Clifford2Q::kSize)) {
    for (std::size_t q = 0; q < 2; ++q) {
        const pulse::Schedule& xs = gates.get("x", {q});
        const pulse::Schedule& sxs = gates.get("sx", {q});
        const std::size_t nx = xs.total_duration();
        const std::size_t nsx = sxs.total_duration();
        const std::vector<std::complex<double>> zx(nx), zsx(nsx);
        const auto x_samples = xs.channel_samples(pulse::drive_channel(q), nx);
        const auto sx_samples = sxs.channel_samples(pulse::drive_channel(q), nsx);
        if (q == 0) {
            x_super_[0] = exec.layer_superop_2q(x_samples, zx, zx);
            sx_super_[0] = exec.layer_superop_2q(sx_samples, zsx, zsx);
        } else {
            x_super_[1] = exec.layer_superop_2q(zx, x_samples, zx);
            sx_super_[1] = exec.layer_superop_2q(zsx, sx_samples, zsx);
        }
    }
    cx_super_ = exec.schedule_superop_2q(gates.get("cx", {0, 1}));
}

Mat GateSet2Q::compose_superop(std::size_t i) const {
    Mat total = Mat::identity(16);
    for (const TwoQubitGate& g : group_.decomposition(i)) {
        if (g.name == "rz") {
            total = exec_.rz_superop_2q(*g.param, g.qubits[0]) * total;
        } else if (g.name == "sx") {
            total = sx_super_[g.qubits[0]] * total;
        } else if (g.name == "x") {
            total = x_super_[g.qubits[0]] * total;
        } else if (g.name == "cx") {
            total = cx_super_ * total;
        } else {
            throw std::logic_error("GateSet2Q: unknown gate " + g.name);
        }
    }
    contracts::check_trace_preserving(total, "GateSet2Q: Clifford superop", 1e-7);
    return total;
}

const Mat& GateSet2Q::clifford_superop(std::size_t i) const {
    return clifford_structured(i).dense();
}

const quantum::StructuredSuperOp& GateSet2Q::clifford_structured(std::size_t i) const {
    bool miss = false;
    std::call_once(cliff_once_[i], [&] {
        miss = true;
        cliff_cache_[i] = quantum::StructuredSuperOp::from_dense(compose_superop(i));
    });
    if (miss) {
        obs::count(obs::Cnt::kCliffMemoMisses);
    } else {
        obs::count(obs::Cnt::kCliffMemoHits);
    }
    return cliff_cache_[i];
}

void GateSet2Q::precompute_all() const {
    runtime::TaskPool::global().parallel_for(
        0, Clifford2Q::kSize, [&](std::size_t i) { clifford_superop(i); });
}

namespace {

/// Legacy per-seed 2Q loop (`QOC_DENSE_SUPEROP` escape hatch); see
/// rb_curve_1q_dense.
RbCurve rb_curve_2q_dense(const PulseExecutor& exec, const GateSet2Q& gates,
                          const RbOptions& opts, const Mat* interleave_super,
                          std::size_t interleave_index) {
    const Clifford2Q& group = gates.group();
    const Mat vec_rho0 = linalg::vec(exec.ground_state_2q());
    const Mat interleave_ideal =
        interleave_super ? group.unitary(interleave_index) : Mat::identity(4);

    // Long runs revisit most of the 11520-element group; filling the superop
    // cache eagerly (in parallel) beats lazy misses inside the sequence loop.
    std::size_t total_steps = 0;
    for (std::size_t m : opts.lengths) total_steps += m * opts.seeds_per_length;
    if (total_steps >= 2 * Clifford2Q::kSize) gates.precompute_all();

    runtime::WorkspacePool<SeqWorkspace> workspaces;

    RbCurve curve;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        std::vector<double> survivals(opts.seeds_per_length);

        runtime::TaskPool::global().parallel_for(0, opts.seeds_per_length, [&](std::size_t s) {
            // Paired sequences with the reference run (see rb_curve_1q).
            std::mt19937_64 rng(opts.rng_seed + 6271 * (li * 1000 + s));

            obs::Span span("rb.seq_2q");
            auto lease = workspaces.acquire();
            SeqWorkspace& w = *lease;
            w.v = vec_rho0;
            w.net = Mat::identity(4);
            for (std::size_t k = 0; k < m; ++k) {
                const std::size_t c = group.sample(rng);
                quantum::apply_superop_into(gates.clifford_superop(c), w.v, w.v_next);
                std::swap(w.v, w.v_next);
                linalg::gemm_into(group.unitary(c), w.net, w.net_next);
                phase_normalize_inplace(w.net_next);
                std::swap(w.net, w.net_next);
                if (interleave_super) {
                    quantum::apply_superop_into(*interleave_super, w.v, w.v_next);
                    std::swap(w.v, w.v_next);
                    linalg::gemm_into(interleave_ideal, w.net, w.net_next);
                    phase_normalize_inplace(w.net_next);
                    std::swap(w.net, w.net_next);
                }
            }
            const std::size_t rec = group.find(w.net.adjoint());
            quantum::apply_superop_into(gates.clifford_superop(rec), w.v, w.v_next);
            std::swap(w.v, w.v_next);

            contracts::check_density_vec(w.v, "RB 2Q: state after recovery", 1e-6);
            const device::Counts counts = exec.measure_2q_vec(w.v, opts.shots, rng());
            survivals[s] = counts.probability("00");
            obs::emit_rb_seed(interleave_super ? "irb2q" : "rb2q", m,
                              static_cast<std::int64_t>(s), survivals[s]);
        });
        RbPoint pt;
        pt.length = m;
        pt.mean_survival = runtime::ordered_mean(survivals);
        pt.sem = survival_sem(survivals, pt.mean_survival);
        curve.points.push_back(pt);
    }
    fit_rb_curve(curve, 4.0);
    return curve;
}

/// Batched 2Q RB; mirrors rb_curve_1q's block engine.  The ideal-unitary
/// net tracking (and the `group.find` recovery lookup) happens during
/// pre-sampling with the same legacy gemm arithmetic, so recovery indices
/// are identical to the per-seed loop's.
RbCurve rb_curve_2q(const PulseExecutor& exec, const GateSet2Q& gates, const RbOptions& opts,
                    const Mat* interleave_super, std::size_t interleave_index) {
    if (quantum::dense_superop_forced()) {
        return rb_curve_2q_dense(exec, gates, opts, interleave_super, interleave_index);
    }
    const Clifford2Q& group = gates.group();
    const Mat vec_rho0 = linalg::vec(exec.ground_state_2q());
    const Mat interleave_ideal =
        interleave_super ? group.unitary(interleave_index) : Mat::identity(4);
    quantum::StructuredSuperOp inter_struct;
    if (interleave_super != nullptr) {
        inter_struct = quantum::StructuredSuperOp::from_dense(*interleave_super);
    }
    const auto structured_of = [&gates](std::size_t i) -> const quantum::StructuredSuperOp& {
        return gates.clifford_structured(i);
    };

    // Long runs revisit most of the 11520-element group; filling the superop
    // cache eagerly (in parallel) beats lazy misses inside the sequence loop.
    std::size_t total_steps = 0;
    for (std::size_t m : opts.lengths) total_steps += m * opts.seeds_per_length;
    if (total_steps >= 2 * Clifford2Q::kSize) gates.precompute_all();

    runtime::WorkspacePool<BatchWorkspace> workspaces;
    const std::size_t bw_max = seed_block_width(opts.seeds_per_length, opts.seed_block);
    const std::size_t n_blocks = (opts.seeds_per_length + bw_max - 1) / bw_max;

    RbCurve curve;
    for (std::size_t li = 0; li < opts.lengths.size(); ++li) {
        const std::size_t m = opts.lengths[li];
        std::vector<double> survivals(opts.seeds_per_length);

        runtime::TaskPool::global().parallel_for(0, n_blocks, [&](std::size_t blk) {
            obs::Span span("rb.seq_block_2q");
            const std::size_t s0 = blk * bw_max;
            const std::size_t bw = std::min(bw_max, opts.seeds_per_length - s0);
            auto lease = workspaces.acquire();
            BatchWorkspace& w = *lease;

            w.seq.resize(m * bw);
            w.rec.resize(bw);
            w.rngs.clear();
            for (std::size_t j = 0; j < bw; ++j) {
                std::mt19937_64 rng(opts.rng_seed + 6271 * (li * 1000 + (s0 + j)));
                w.net = Mat::identity(4);
                for (std::size_t k = 0; k < m; ++k) {
                    const std::size_t c = group.sample(rng);
                    w.seq[k * bw + j] = c;
                    linalg::gemm_into(group.unitary(c), w.net, w.net_next);
                    phase_normalize_inplace(w.net_next);
                    std::swap(w.net, w.net_next);
                    if (interleave_super != nullptr) {
                        linalg::gemm_into(interleave_ideal, w.net, w.net_next);
                        phase_normalize_inplace(w.net_next);
                        std::swap(w.net, w.net_next);
                    }
                }
                w.rec[j] = group.find(w.net.adjoint());
                w.rngs.push_back(rng);
            }

            fill_block(vec_rho0, bw, w.x);
            for (std::size_t k = 0; k < m; ++k) {
                apply_block_step(structured_of, &w.seq[k * bw], bw, w.x, w.x_next);
                if (interleave_super != nullptr) {
                    inter_struct.apply_batch_into(w.x, w.x_next);
                    std::swap(w.x, w.x_next);
                }
            }
            apply_block_step(structured_of, w.rec.data(), bw, w.x, w.x_next);

            for (std::size_t j = 0; j < bw; ++j) {
                extract_column(w.x, j, w.v);
                contracts::check_density_vec(w.v, "RB 2Q: state after recovery", 1e-6);
                const device::Counts counts = exec.measure_2q_vec(w.v, opts.shots, w.rngs[j]());
                survivals[s0 + j] = counts.probability("00");
                obs::emit_rb_seed(interleave_super ? "irb2q" : "rb2q", m,
                                  static_cast<std::int64_t>(s0 + j), survivals[s0 + j]);
            }
        });
        RbPoint pt;
        pt.length = m;
        pt.mean_survival = runtime::ordered_mean(survivals);
        pt.sem = survival_sem(survivals, pt.mean_survival);
        curve.points.push_back(pt);
    }
    fit_rb_curve(curve, 4.0);
    return curve;
}

}  // namespace

RbCurve run_rb_2q(const PulseExecutor& exec, const GateSet2Q& gates, const RbOptions& options) {
    return rb_curve_2q(exec, gates, options, nullptr, 0);
}

IrbResult run_irb_2q_with_reference(const PulseExecutor& exec, const GateSet2Q& gates,
                                    const RbCurve& reference, const Mat& interleaved_superop,
                                    std::size_t interleaved_clifford,
                                    const RbOptions& options) {
    IrbResult res;
    res.reference = reference;
    res.interleaved =
        rb_curve_2q(exec, gates, options, &interleaved_superop, interleaved_clifford);
    const double ratio = res.interleaved.alpha / res.reference.alpha;
    res.gate_error = 0.75 * (1.0 - ratio);
    const double rel = std::sqrt(std::pow(res.interleaved.alpha_err / res.interleaved.alpha, 2) +
                                 std::pow(res.reference.alpha_err / res.reference.alpha, 2));
    res.gate_error_err = 0.75 * ratio * rel;
    return res;
}

IrbResult run_irb_2q(const PulseExecutor& exec, const GateSet2Q& gates,
                     const Mat& interleaved_superop, std::size_t interleaved_clifford,
                     const RbOptions& options) {
    return run_irb_2q_with_reference(exec, gates, rb_curve_2q(exec, gates, options, nullptr, 0),
                                     interleaved_superop, interleaved_clifford, options);
}

}  // namespace qoc::rb
