#include "rb/tomography.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/kron.hpp"
#include "linalg/lu.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::rb {

namespace {
using linalg::cplx;

Mat pauli(std::size_t i) {
    switch (i) {
        case 0: return Mat::identity(2);
        case 1: return quantum::sigma_x();
        case 2: return quantum::sigma_y();
        default: return quantum::sigma_z();
    }
}
}  // namespace

Mat ptm_of_unitary(const Mat& u2) {
    // R_ij = Tr(P_i U P_j U^dag) / 2.  Hoist the conjugations K_j = U P_j
    // U^dag (one per column) so each entry is a single O(N^2)
    // trace_of_product instead of a fresh three-gemm chain; this drops the
    // old 16 x (3 gemms + full-product trace) to 4 conjugations + 16 traces.
    const Mat ud = u2.adjoint();
    std::array<Mat, 4> p, k;
    for (std::size_t j = 0; j < 4; ++j) {
        p[j] = pauli(j);
        k[j] = u2 * p[j] * ud;
    }
    Mat r(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            r(i, j) = 0.5 * linalg::trace_of_product(p[i], k[j]);
        }
    }
    return r;
}

double avg_fidelity_from_ptm(const Mat& ptm, const Mat& target2) {
    const Mat rt = ptm_of_unitary(target2);
    double tr = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) tr += (rt(i, j) * ptm(i, j)).real();
    const double f_pro = tr / 4.0;
    return (2.0 * f_pro + 1.0) / 3.0;
}

double mitigate_p1(const PulseExecutor& device, std::size_t qubit, double measured_p1) {
    const auto& q = device.config().qubit(qubit);
    const double denom = 1.0 - q.readout_p01 - q.readout_p10;
    if (std::abs(denom) < 1e-9) return measured_p1;
    return std::clamp((measured_p1 - q.readout_p10) / denom, 0.0, 1.0);
}

ProcessTomographyResult process_tomography_1q(const PulseExecutor& device,
                                              const pulse::InstructionScheduleMap& defaults,
                                              const Mat& gate_superop, const Mat& target2,
                                              std::size_t qubit,
                                              const TomographyOptions& opts) {
    const double half_pi = std::numbers::pi / 2.0;
    const Mat sx_super = device.schedule_superop_1q(defaults.get("sx", {qubit}), qubit);
    const Mat x_super = device.schedule_superop_1q(defaults.get("x", {qubit}), qubit);
    const Mat rz_p = device.rz_superop_1q(half_pi);
    const Mat rz_m = device.rz_superop_1q(-half_pi);
    const Mat h_super = rz_p * sx_super * rz_p;  // hardware H

    // State preparations from |0>: {|0>, |1>, |+>, |+i>}.
    const std::size_t d2 = device.config().levels * device.config().levels;
    const Mat ident = Mat::identity(d2);
    const std::vector<Mat> preps = {ident, x_super, h_super, rz_p * h_super};

    // Measurement-basis rotations mapping X/Y/Z onto Z before readout.
    const std::vector<Mat> basis = {h_super, h_super * rz_m, ident};

    // Expectation values <P_b> for each prep a.
    double expect[4][3];
    std::uint64_t seed = opts.seed;
    const Mat rho0 = device.ground_state_1q();
    for (std::size_t a = 0; a < 4; ++a) {
        const Mat after_gate = gate_superop * preps[a];
        for (std::size_t b = 0; b < 3; ++b) {
            const Mat total = basis[b] * after_gate;
            const Mat rho = quantum::apply_superop(total, rho0);
            const device::Counts counts = device.measure_1q(rho, qubit, opts.shots, seed++);
            double p1 = counts.probability("1");
            if (opts.mitigate_readout) p1 = mitigate_p1(device, qubit, p1);
            expect[a][b] = 1.0 - 2.0 * p1;
        }
    }

    // Linear inversion onto the PTM using the ideal input Bloch vectors
    // (0,0,1), (0,0,-1), (1,0,0), (0,1,0).
    ProcessTomographyResult res;
    res.ptm = Mat(4, 4);
    res.ptm(0, 0) = 1.0;
    for (std::size_t i = 1; i < 4; ++i) {
        const std::size_t b = i - 1;  // X, Y, Z rows map to basis index
        const double e0 = expect[0][b];
        const double e1 = expect[1][b];
        const double ep = expect[2][b];
        const double ei = expect[3][b];
        const double affine = 0.5 * (e0 + e1);  // R_{i0}
        res.ptm(i, 0) = affine;
        res.ptm(i, 1) = ep - affine;
        res.ptm(i, 2) = ei - affine;
        res.ptm(i, 3) = 0.5 * (e0 - e1);
    }

    res.avg_gate_fidelity = avg_fidelity_from_ptm(res.ptm, target2);
    double u = 0.0;
    for (std::size_t i = 1; i < 4; ++i)
        for (std::size_t j = 1; j < 4; ++j) u += std::norm(res.ptm(i, j));
    res.unitarity = u / 3.0;
    return res;
}

// --- two-qubit tomography ----------------------------------------------------

namespace {
Mat pauli4(std::size_t idx) {
    return linalg::kron(pauli(idx / 4), pauli(idx % 4));
}
}  // namespace

Mat ptm_of_unitary_2q(const Mat& u4) {
    // Same hoisting as ptm_of_unitary: 16 conjugations + 256 traces instead
    // of 256 three-gemm chains.
    const Mat ud = u4.adjoint();
    std::array<Mat, 16> p, k;
    for (std::size_t j = 0; j < 16; ++j) {
        p[j] = pauli4(j);
        k[j] = u4 * p[j] * ud;
    }
    Mat r(16, 16);
    for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 16; ++j) {
            r(i, j) = 0.25 * linalg::trace_of_product(p[i], k[j]);
        }
    }
    return r;
}

double avg_fidelity_from_ptm_2q(const Mat& ptm, const Mat& target4) {
    const Mat rt = ptm_of_unitary_2q(target4);
    double tr = 0.0;
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 16; ++j) tr += (rt(i, j) * ptm(i, j)).real();
    const double f_pro = tr / 16.0;
    return (4.0 * f_pro + 1.0) / 5.0;
}

ProcessTomography2qResult process_tomography_2q(
    const PulseExecutor& device, const pulse::InstructionScheduleMap& defaults,
    const Mat& gate_superop, const Mat& target4, const TomographyOptions& opts) {
    const double half_pi = std::numbers::pi / 2.0;

    // Per-qubit building blocks on the pair (2-level each).
    auto sx1 = [&](std::size_t q) {
        const pulse::Schedule& s = defaults.get("sx", {q});
        const std::size_t n = s.total_duration();
        const std::vector<std::complex<double>> z(n);
        const auto samples = s.channel_samples(pulse::drive_channel(q), n);
        return q == 0 ? device.layer_superop_2q(samples, z, z)
                      : device.layer_superop_2q(z, samples, z);
    };
    auto x1 = [&](std::size_t q) {
        const pulse::Schedule& s = defaults.get("x", {q});
        const std::size_t n = s.total_duration();
        const std::vector<std::complex<double>> z(n);
        const auto samples = s.channel_samples(pulse::drive_channel(q), n);
        return q == 0 ? device.layer_superop_2q(samples, z, z)
                      : device.layer_superop_2q(z, samples, z);
    };

    const Mat ident16 = Mat::identity(16);
    std::vector<std::vector<Mat>> prep1(2), basis1(2);
    for (std::size_t q = 0; q < 2; ++q) {
        const Mat sx_s = sx1(q);
        const Mat x_s = x1(q);
        const Mat rzp = device.rz_superop_2q(half_pi, q);
        const Mat rzm = device.rz_superop_2q(-half_pi, q);
        const Mat h_s = rzp * sx_s * rzp;
        // Preps from |0>: {|0>, |1>, |+>, |+i>}.
        prep1[q] = {ident16, x_s, h_s, rzp * h_s};
        // Basis changes mapping X/Y/Z onto Z.
        basis1[q] = {h_s, h_s * rzm, ident16};
    }

    // Input-frame matrix V (16 x 16): row = prep pair, col = Pauli pair;
    // V1 rows are the (1, r) vectors of the IDEAL prep states.
    const double v1[4][4] = {{1, 0, 0, 1}, {1, 0, 0, -1}, {1, 1, 0, 0}, {1, 0, 1, 0}};
    Mat v(16, 16);
    for (std::size_t a = 0; a < 4; ++a)
        for (std::size_t b = 0; b < 4; ++b)
            for (std::size_t i = 0; i < 4; ++i)
                for (std::size_t j = 0; j < 4; ++j)
                    v(a * 4 + b, i * 4 + j) = v1[a][i] * v1[b][j];
    const linalg::Lu v_lu(v);

    // Measured expectations E[pauli_pair][prep_pair].
    Mat expect(16, 16);
    std::uint64_t seed = opts.seed;
    const Mat rho0 = device.ground_state_2q();
    for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = 0; b < 4; ++b) {
            const Mat prepared = gate_superop * (prep1[0][a] * prep1[1][b]);
            // One shot batch per (non-identity) basis pair; identity
            // components come from marginals of the Z-ish settings.
            double e[4][4];
            e[0][0] = 1.0;
            for (std::size_t p = 0; p < 3; ++p) {
                for (std::size_t q = 0; q < 3; ++q) {
                    const Mat total = (basis1[0][p] * basis1[1][q]) * prepared;
                    const Mat rho = quantum::apply_superop(total, rho0);
                    const device::Counts counts = device.measure_2q(rho, opts.shots, seed++);
                    double p00 = counts.probability("00"), p01 = counts.probability("01");
                    double p10 = counts.probability("10"), p11 = counts.probability("11");
                    if (opts.mitigate_readout) {
                        // Per-qubit confusion inversion on the marginals'
                        // joint distribution (independent readout model).
                        const auto& q0 = device.config().qubit(0);
                        const auto& q1 = device.config().qubit(1);
                        auto unmix = [](double& m0, double& m1, double e01, double e10) {
                            const double den = 1.0 - e01 - e10;
                            if (std::abs(den) < 1e-9) return;
                            const double t0 = ((1.0 - e01) * m0 - e10 * m1) / den;
                            const double t1 = ((1.0 - e10) * m1 - e01 * m0) / den;
                            m0 = t0;
                            m1 = t1;
                        };
                        // Invert qubit-0 readout on (p0x, p1x) pairs.
                        unmix(p00, p10, q0.readout_p01, q0.readout_p10);
                        unmix(p01, p11, q0.readout_p01, q0.readout_p10);
                        // Invert qubit-1 readout on (px0, px1) pairs.
                        unmix(p00, p01, q1.readout_p01, q1.readout_p10);
                        unmix(p10, p11, q1.readout_p01, q1.readout_p10);
                    }
                    const double zz = p00 - p01 - p10 + p11;
                    const double zi = p00 + p01 - p10 - p11;  // qubit-0 marginal
                    const double iz = p00 - p01 + p10 - p11;  // qubit-1 marginal
                    e[p + 1][q + 1] = zz;
                    if (q == 2) e[p + 1][0] = zi;  // P (x) I from the Z-setting of q1
                    if (p == 2) e[0][q + 1] = iz;  // I (x) P from the Z-setting of q0
                }
            }
            for (std::size_t i = 0; i < 4; ++i)
                for (std::size_t j = 0; j < 4; ++j)
                    expect(i * 4 + j, a * 4 + b) = e[i][j];
        }
    }

    // Linear inversion: for each output Pauli p, R[p, :] solves
    // V * R[p, :]^T = expect[p, :]^T.
    ProcessTomography2qResult res;
    res.ptm = Mat(16, 16);
    for (std::size_t p = 0; p < 16; ++p) {
        Mat rhs(16, 1);
        for (std::size_t in = 0; in < 16; ++in) rhs(in, 0) = expect(p, in);
        const Mat sol = v_lu.solve(rhs);
        for (std::size_t c = 0; c < 16; ++c) res.ptm(p, c) = sol(c, 0);
    }
    res.avg_gate_fidelity = avg_fidelity_from_ptm_2q(res.ptm, target4);
    return res;
}

}  // namespace qoc::rb
