/// \file leakage_rb.hpp
/// \brief Leakage randomized benchmarking: track the population escaping the
///        computational subspace as a function of Clifford sequence length.
///
/// The paper's Discussion notes that "higher energy levels have an impact on
/// the system-dynamics"; since the executor models the full 3-level
/// transmon, the leakage accumulated by a gate set is directly measurable.
/// Following Wood & Gambetta, the subspace population decays as
///   p_comp(m) = A lambda^m + p_inf,
/// and the leakage rate per Clifford is L1 = (1 - lambda)(1 - p_inf).

#pragma once

#include "rb/rb.hpp"

namespace qoc::rb {

struct LeakageRbResult {
    std::vector<std::size_t> lengths;
    std::vector<double> leakage_population;  ///< mean pop outside {|0>,|1>}
    double leakage_rate_per_clifford = 0.0;  ///< L1
    double lambda = 1.0;                     ///< subspace-decay parameter
    double p_leak_inf = 0.0;                 ///< steady-state leakage
};

/// Runs leakage RB on a 1-qubit gate set (no readout model: leakage
/// population is read from the simulated density matrix, the simulator's
/// privilege; hardware protocols estimate it from paired measurements).
LeakageRbResult run_leakage_rb_1q(const PulseExecutor& exec, const GateSet1Q& gates,
                                  const RbOptions& options);

}  // namespace qoc::rb
