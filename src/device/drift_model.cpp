#include "device/drift_model.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace qoc::device {

DriftModel::DriftModel(BackendConfig nominal, std::uint64_t seed, DriftOptions options)
    : nominal_(std::move(nominal)), seed_(seed), opts_(options) {}

bool DriftModel::is_jump_day(int day) const {
    // Mirrors the qubit-0 draw sequence in device_on_day exactly.
    std::mt19937_64 rng(seed_ ^
                        (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(day + 1)) ^
                        0x94d049bb133111ebULL);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    return u(rng) < opts_.jump_probability;
}

BackendConfig DriftModel::device_on_day(int day) const {
    BackendConfig dev = nominal_;
    if (day < 0) return dev;

    // Evolve each qubit's parameters as an AR(1) walk replayed from day 0 so
    // that the trajectory is deterministic and day-correlated.
    for (std::size_t q = 0; q < dev.qubits.size(); ++q) {
        double detuning = 0.0;
        double log_amp = 0.0;
        double log_t1 = 0.0;
        double log_ro = 0.0;
        for (int d = 0; d <= day; ++d) {
            std::mt19937_64 rng(seed_ ^ (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(d + 1)) ^
                                (0x94d049bb133111ebULL * (q + 1)));
            std::normal_distribution<double> n(0.0, 1.0);
            std::uniform_real_distribution<double> u(0.0, 1.0);
            const bool jump = u(rng) < opts_.jump_probability;
            const double scale = jump ? opts_.jump_scale : 1.0;
            const double ar = opts_.mean_reversion;
            detuning = ar * detuning + scale * opts_.freq_sigma * n(rng);
            log_amp = ar * log_amp + scale * opts_.amp_sigma * n(rng);
            log_t1 = ar * log_t1 + scale * opts_.t1_rel_sigma * n(rng);
            log_ro = ar * log_ro + scale * opts_.readout_rel_sigma * n(rng);
        }
        QubitParams& p = dev.qubits[q];
        // Clamp to physical excursions: frequency within ~1 MHz, amplitude
        // within ~6%, T1/T2 within a factor ~1.5 of nominal.
        p.detuning = std::clamp(detuning, -6e-3, 6e-3);
        p.amp_scale = std::exp(std::clamp(log_amp, -0.06, 0.06));
        const double t1_factor = std::exp(std::clamp(log_t1, -0.4, 0.4));
        p.t1 = nominal_.qubits[q].t1 * t1_factor;
        p.t2 = std::min(nominal_.qubits[q].t2 * t1_factor, 2.0 * p.t1);
        p.readout_p10 = std::clamp(nominal_.qubits[q].readout_p10 * std::exp(log_ro), 1e-4, 0.3);
        p.readout_p01 = std::clamp(nominal_.qubits[q].readout_p01 * std::exp(log_ro), 1e-4, 0.3);
    }
    return dev;
}

}  // namespace qoc::device
