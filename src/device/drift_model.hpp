/// \file drift_model.hpp
/// \brief Day-to-day calibration drift of device parameters.
///
/// The paper's Discussion section hinges on drift: IBM devices recalibrate
/// about once per day, qubit frequency / T1 / T2 / readout error wander, and
/// fixed optimized pulses degrade unpredictably while daily-recalibrated
/// defaults track the device.  This model generates a deterministic,
/// seed-reproducible parameter trajectory: an AR(1) (discrete
/// Ornstein-Uhlenbeck) random walk per parameter plus occasional "jump"
/// days (e.g. a TLS moving onto the qubit) that reproduce the single
/// anomalous day visible in the paper's Figs. 11/14/15.

#pragma once

#include <cstdint>

#include "device/backend_config.hpp"

namespace qoc::device {

struct DriftOptions {
    double freq_sigma = 1.2e-4;      ///< detuning kick per day, rad/ns (~20 kHz)
    double amp_sigma = 0.004;        ///< relative drive-amplitude kick per day
    double t1_rel_sigma = 0.06;      ///< relative T1 fluctuation per day
    double readout_rel_sigma = 0.25; ///< relative readout-error fluctuation
    double mean_reversion = 0.6;     ///< AR(1) coefficient toward nominal
    double jump_probability = 0.12;  ///< chance of an anomalous day
    double jump_scale = 6.0;         ///< kick multiplier on a jump day
};

/// Deterministic daily drift generator.  `day` indexes calendar days;
/// calling `device_on_day` with the same (seed, day) always returns the same
/// parameters, and consecutive days are correlated.
class DriftModel {
public:
    DriftModel(BackendConfig nominal, std::uint64_t seed, DriftOptions options = {});

    /// The drifted physical device on day `day` (day 0 = nominal + first kick).
    BackendConfig device_on_day(int day) const;

    /// True when `day` is an anomalous (jump) day for this trajectory.
    bool is_jump_day(int day) const;

    const BackendConfig& nominal() const { return nominal_; }

private:
    BackendConfig nominal_;
    std::uint64_t seed_;
    DriftOptions opts_;
};

}  // namespace qoc::device
