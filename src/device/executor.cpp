#include "device/executor.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "linalg/expm.hpp"
#include "linalg/kron.hpp"
#include "obs/obs.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"
#include "util/fnv1a.hpp"

namespace qoc::device {

namespace {
using linalg::cplx;
using quantum::annihilation;
using quantum::number_op;
constexpr cplx kI{0.0, 1.0};

/// Pure-dephasing rate from T1/T2: 1/T2 = 1/(2 T1) + Gamma_phi.
double dephasing_rate(double t1, double t2) {
    return std::max(0.0, 1.0 / t2 - 0.5 / t1);
}

/// Tag distinguishing two-qubit keys from per-qubit 1q keys in the shared
/// propagator cache (1q keys use the qubit index itself).
constexpr std::uint64_t kKey2q = ~std::uint64_t{0};

/// Entry cap for the propagator cache.  Real schedules carry at most a few
/// hundred distinct amplitudes; the cap only guards pathological waveforms
/// (past it, propagators are computed but not published, so references
/// already handed out stay valid).
constexpr std::size_t kPropCacheMax = 8192;

std::uint64_t sample_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
}  // namespace

std::size_t PulseExecutor::PropKeyHash::operator()(const PropKey& k) const {
    return static_cast<std::size_t>(util::fnv1a_words(k.w.data(), k.w.size()));
}

double Counts::probability(const std::string& bitstring) const {
    const auto it = histogram.find(bitstring);
    if (it == histogram.end() || shots == 0) return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(shots);
}

PulseExecutor::PulseExecutor(BackendConfig config) : config_(std::move(config)) {
    if (config_.qubits.empty()) throw std::invalid_argument("PulseExecutor: no qubits");
    const std::size_t d = config_.levels;
    drive_op_a_ = annihilation(d);
    number_op_ = number_op(d);
    h_drift_1q_base_ = Mat(d, d);
    for (std::size_t k = 0; k < d; ++k) {
        const double n = static_cast<double>(k);
        h_drift_1q_base_(k, k) = cplx{0.5 * n * (n - 1.0), 0.0};  // x anharmonicity later
    }

    // Two-qubit static parts (2-level pair model).
    if (config_.qubits.size() >= 2) {
        const Mat n1 = quantum::op_on_qubit(Mat{{0.0, 0.0}, {0.0, 1.0}}, 0, 2);
        const Mat n2 = quantum::op_on_qubit(Mat{{0.0, 0.0}, {0.0, 1.0}}, 1, 2);
        h_static_2q_ = config_.qubit(0).detuning * n1 + config_.qubit(1).detuning * n2 +
                       config_.cr.zz_static * (n1 * n2);
        const Mat sm = quantum::sigma_minus();
        collapse_2q_.clear();
        for (std::size_t q = 0; q < 2; ++q) {
            const auto& p = config_.qubit(q);
            collapse_2q_.push_back(std::sqrt(1.0 / p.t1) *
                                   quantum::op_on_qubit(sm, q, 2));
            const double gphi = dephasing_rate(p.t1, p.t2);
            if (gphi > 0.0) {
                collapse_2q_.push_back(std::sqrt(2.0 * gphi) *
                                       quantum::op_on_qubit(Mat{{0.0, 0.0}, {0.0, 1.0}}, q, 2));
            }
        }
    }
}

Mat PulseExecutor::lindblad_generator_1q(std::complex<double> sample, std::size_t qubit) const {
    const auto& p = config_.qubit(qubit);
    const std::size_t d = config_.levels;
    Mat h = p.anharmonicity * h_drift_1q_base_ + p.detuning * number_op_;
    const cplx amp = 0.5 * p.omega_max * p.amp_scale * sample;
    // H_drive = (Omega/2)(s a^dag + s* a)
    Mat h_drive(d, d);
    for (std::size_t n = 1; n < d; ++n) {
        const double ladder = std::sqrt(static_cast<double>(n));
        h_drive(n, n - 1) = amp * ladder;
        h_drive(n - 1, n) = std::conj(amp) * ladder;
    }
    h += h_drive;
    std::vector<Mat> collapse;
    collapse.push_back(std::sqrt(1.0 / p.t1) * drive_op_a_);
    const double gphi = dephasing_rate(p.t1, p.t2);
    if (gphi > 0.0) collapse.push_back(std::sqrt(2.0 * gphi) * number_op_);
    // Multiplicative drive-amplitude noise: dephasing along the drive axis
    // with rate proportional to the instantaneous drive power.
    if (p.drive_amp_noise > 0.0 && sample != std::complex<double>{0.0, 0.0}) {
        collapse.push_back(std::sqrt(p.drive_amp_noise) * h_drive);
    }
    return quantum::liouvillian(h, collapse);
}

const Mat& PulseExecutor::sample_propagator_1q(std::complex<double> sample, std::size_t qubit,
                                               Mat& scratch, linalg::ExpmWorkspace& ws) const {
    const PropKey key{{static_cast<std::uint64_t>(qubit), sample_bits(sample.real()),
                       sample_bits(sample.imag()), 0, 0, 0, 0}};
    {
        std::lock_guard<std::mutex> lock(prop_cache_mutex_);
        const auto it = prop_cache_.find(key);
        if (it != prop_cache_.end()) {
            obs::count(obs::Cnt::kPropCacheHits);
            return it->second;
        }
    }
    obs::count(obs::Cnt::kPropCacheMisses);
    // Liouvillian: non-Hermitian, pin Pade.  Computed outside the lock; two
    // threads racing on the same key produce bitwise-identical matrices, so
    // whichever insert wins is indistinguishable.
    linalg::expm_into(config_.dt * lindblad_generator_1q(sample, qubit), scratch, ws,
                      linalg::ExpmMethod::kPade);
    std::lock_guard<std::mutex> lock(prop_cache_mutex_);
    if (prop_cache_.size() >= kPropCacheMax) return scratch;
    const Mat& inserted = prop_cache_.try_emplace(key, scratch).first->second;
    obs::set_gauge("executor.prop_cache.entries", static_cast<double>(prop_cache_.size()));
    return inserted;
}

Mat PulseExecutor::waveform_superop_1q(const std::vector<std::complex<double>>& samples,
                                       std::size_t qubit) const {
    const std::size_t d2 = config_.levels * config_.levels;
    Mat total = Mat::identity(d2);
    Mat scratch, tmp;
    linalg::ExpmWorkspace ws;
    const Mat* prop = nullptr;
    std::complex<double> cached_sample{1e300, 1e300};  // sentinel: no cache yet
    for (const auto& s : samples) {
        if (prop == nullptr || s != cached_sample) {
            prop = &sample_propagator_1q(s, qubit, scratch, ws);
            cached_sample = s;
        }
        linalg::gemm_into(*prop, total, tmp);
        std::swap(total, tmp);
    }
    return total;
}

namespace {
/// Net ShiftPhase accumulated on a channel over a whole schedule.
double net_frame_phase(const pulse::Schedule& sched, const pulse::Channel& ch) {
    double phase = 0.0;
    for (const auto& [t0, inst] : sched.instructions()) {
        if (const auto* sp = std::get_if<pulse::ShiftPhase>(&inst)) {
            if (sp->channel == ch) phase += sp->phase;
        }
    }
    return phase;
}
}  // namespace

Mat PulseExecutor::schedule_superop_1q(const pulse::Schedule& sched, std::size_t qubit) const {
    obs::Span span("executor.schedule_superop_1q");
    const std::size_t n_dt = sched.total_duration();
    const auto samples = sched.channel_samples(pulse::drive_channel(qubit), n_dt);
    Mat total = waveform_superop_1q(samples, qubit);
    // Virtual-Z bookkeeping: a net frame shift phi is equivalent to the gate
    // F(phi) U F(-phi) followed by carrying phi forward; closing the frame
    // makes the schedule's action equal the intended circuit unitary:
    // U_circuit = F(phi)^dag U_sched, with F(phi) = e^{i phi n}.
    const double phi = net_frame_phase(sched, pulse::drive_channel(qubit));
    if (phi != 0.0) total = rz_superop_1q(-phi) * total;
    // Lindblad propagation (Eq. 1) composed over the waveform must stay a
    // trace-preserving channel; tolerance absorbs the per-sample roundoff
    // accumulated across long schedules.
    contracts::check_trace_preserving(total, "schedule_superop_1q", 1e-7);
    return total;
}

Mat PulseExecutor::idle_superop_1q(std::size_t duration_dt, std::size_t qubit) const {
    const Mat gen = lindblad_generator_1q({0.0, 0.0}, qubit);
    return linalg::expm((config_.dt * static_cast<double>(duration_dt)) * gen);
}

Mat PulseExecutor::rz_superop_1q(double theta) const {
    const std::size_t d = config_.levels;
    Mat u(d, d);
    for (std::size_t k = 0; k < d; ++k) {
        u(k, k) = std::exp(kI * (theta * static_cast<double>(k)));
    }
    return quantum::unitary_superop(u);
}

Mat PulseExecutor::lindblad_generator_2q(std::complex<double> d0, std::complex<double> d1,
                                         std::complex<double> u0) const {
    using quantum::op_on_qubit;
    using quantum::sigma_x;
    using quantum::sigma_y;
    using quantum::sigma_z;
    Mat h = h_static_2q_;

    std::vector<Mat> collapse = collapse_2q_;
    auto add_drive = [&](std::complex<double> s, std::size_t q) {
        const auto& p = config_.qubit(q);
        const double rate = p.omega_max * p.amp_scale;
        if (s == std::complex<double>{0.0, 0.0} || rate == 0.0) return;
        const Mat h_drive = (0.5 * rate * s.real()) * op_on_qubit(sigma_x(), q, 2) +
                            (0.5 * rate * s.imag()) * op_on_qubit(sigma_y(), q, 2);
        h += h_drive;
        if (p.drive_amp_noise > 0.0) {
            collapse.push_back(std::sqrt(p.drive_amp_noise) * h_drive);
        }
    };
    add_drive(d0, 0);
    add_drive(d1, 1);

    if (u0 != std::complex<double>{0.0, 0.0}) {
        // Cross-resonance drive (paper Eq. 3): ZX + IX on the target plus
        // classical crosstalk on the control.  The drive phase rotates the
        // target axis X -> Y.
        const Mat zx_part = linalg::kron(sigma_z(), sigma_x());
        const Mat zy_part = linalg::kron(sigma_z(), sigma_y());
        h += (0.5 * config_.cr.zx_rate) * (u0.real() * zx_part + u0.imag() * zy_part);
        h += (0.5 * config_.cr.ix_rate) *
             (u0.real() * op_on_qubit(sigma_x(), 1, 2) + u0.imag() * op_on_qubit(sigma_y(), 1, 2));
        h += (0.5 * config_.cr.classical_crosstalk) *
             (u0.real() * op_on_qubit(sigma_x(), 0, 2) + u0.imag() * op_on_qubit(sigma_y(), 0, 2));
    }
    return quantum::liouvillian(h, collapse);
}

const Mat& PulseExecutor::sample_propagator_2q(std::complex<double> d0, std::complex<double> d1,
                                               std::complex<double> u0, Mat& scratch,
                                               linalg::ExpmWorkspace& ws) const {
    const PropKey key{{kKey2q, sample_bits(d0.real()), sample_bits(d0.imag()),
                       sample_bits(d1.real()), sample_bits(d1.imag()), sample_bits(u0.real()),
                       sample_bits(u0.imag())}};
    {
        std::lock_guard<std::mutex> lock(prop_cache_mutex_);
        const auto it = prop_cache_.find(key);
        if (it != prop_cache_.end()) {
            obs::count(obs::Cnt::kPropCacheHits);
            return it->second;
        }
    }
    obs::count(obs::Cnt::kPropCacheMisses);
    linalg::expm_into(config_.dt * lindblad_generator_2q(d0, d1, u0), scratch, ws,
                      linalg::ExpmMethod::kPade);
    std::lock_guard<std::mutex> lock(prop_cache_mutex_);
    if (prop_cache_.size() >= kPropCacheMax) return scratch;
    const Mat& inserted = prop_cache_.try_emplace(key, scratch).first->second;
    obs::set_gauge("executor.prop_cache.entries", static_cast<double>(prop_cache_.size()));
    return inserted;
}

Mat PulseExecutor::layer_superop_2q(const std::vector<std::complex<double>>& d0,
                                    const std::vector<std::complex<double>>& d1,
                                    const std::vector<std::complex<double>>& u0) const {
    const std::size_t n = std::max({d0.size(), d1.size(), u0.size()});
    Mat total = Mat::identity(16);
    Mat scratch, tmp;
    linalg::ExpmWorkspace ws;
    const Mat* prop = nullptr;
    std::array<std::complex<double>, 3> cached_key{{{1e300, 0}, {0, 0}, {0, 0}}};
    for (std::size_t k = 0; k < n; ++k) {
        const std::complex<double> s0 = k < d0.size() ? d0[k] : std::complex<double>{};
        const std::complex<double> s1 = k < d1.size() ? d1[k] : std::complex<double>{};
        const std::complex<double> su = k < u0.size() ? u0[k] : std::complex<double>{};
        const std::array<std::complex<double>, 3> key{{s0, s1, su}};
        if (prop == nullptr || key != cached_key) {
            prop = &sample_propagator_2q(s0, s1, su, scratch, ws);
            cached_key = key;
        }
        linalg::gemm_into(*prop, total, tmp);
        std::swap(total, tmp);
    }
    return total;
}

Mat PulseExecutor::schedule_superop_2q(const pulse::Schedule& sched) const {
    obs::Span span("executor.schedule_superop_2q");
    const std::size_t n_dt = sched.total_duration();
    Mat total = layer_superop_2q(sched.channel_samples(pulse::drive_channel(0), n_dt),
                                 sched.channel_samples(pulse::drive_channel(1), n_dt),
                                 sched.channel_samples(pulse::control_channel(0), n_dt));
    // Close the virtual-Z frames of both qubits (see schedule_superop_1q).
    for (std::size_t q = 0; q < 2; ++q) {
        const double phi = net_frame_phase(sched, pulse::drive_channel(q));
        if (phi != 0.0) total = rz_superop_2q(-phi, q) * total;
    }
    contracts::check_trace_preserving(total, "schedule_superop_2q", 1e-7);
    return total;
}

Mat PulseExecutor::idle_superop_2q(std::size_t duration_dt) const {
    const Mat gen = lindblad_generator_2q({}, {}, {});
    return linalg::expm((config_.dt * static_cast<double>(duration_dt)) * gen);
}

Mat PulseExecutor::rz_superop_2q(double theta, std::size_t qubit) const {
    Mat u(2, 2);
    u(0, 0) = 1.0;
    u(1, 1) = std::exp(kI * theta);
    return quantum::unitary_superop(quantum::op_on_qubit(u, qubit, 2));
}

Mat PulseExecutor::ground_state_1q() const {
    return quantum::ket_to_dm(quantum::basis_ket(config_.levels, 0));
}

Mat PulseExecutor::ground_state_2q() const {
    return quantum::ket_to_dm(quantum::basis_ket(4, 0));
}

double PulseExecutor::p1_after_readout(const Mat& rho, std::size_t qubit) const {
    const auto& p = config_.qubit(qubit);
    double p1 = 0.0;
    for (std::size_t k = 1; k < rho.rows(); ++k) p1 += rho(k, k).real();  // leakage reads "1"
    const double p0 = 1.0 - p1;
    return p1 * (1.0 - p.readout_p01) + p0 * p.readout_p10;
}

double PulseExecutor::p1_after_readout_vec(const Mat& vec_rho, std::size_t qubit) const {
    // Column-stacking vec puts rho(k, k) at index k * (d + 1); same summation
    // order as p1_after_readout, so the result is bitwise identical.
    const std::size_t d = config_.levels;
    if (vec_rho.cols() != 1 || vec_rho.rows() != d * d) {
        throw std::invalid_argument("p1_after_readout_vec: expected levels^2 x 1 vector");
    }
    const auto& p = config_.qubit(qubit);
    double p1 = 0.0;
    for (std::size_t k = 1; k < d; ++k) p1 += vec_rho(k * (d + 1), 0).real();
    const double p0 = 1.0 - p1;
    return p1 * (1.0 - p.readout_p01) + p0 * p.readout_p10;
}

Counts PulseExecutor::measure_1q(const Mat& rho, std::size_t qubit, int shots,
                                 std::uint64_t seed) const {
    const double p1 = p1_after_readout(rho, qubit);
    std::mt19937_64 rng(seed);
    std::binomial_distribution<int> binom(shots, p1);
    const int ones = binom(rng);
    Counts c;
    c.shots = shots;
    if (ones > 0) c.histogram["1"] = ones;
    if (shots - ones > 0) c.histogram["0"] = shots - ones;
    return c;
}

Counts PulseExecutor::measure_2q(const Mat& rho, int shots, std::uint64_t seed) const {
    // True populations over |q0 q1>.
    std::array<double, 4> true_p{};
    for (std::size_t k = 0; k < 4; ++k) true_p[k] = std::max(0.0, rho(k, k).real());
    return measure_2q_populations(true_p, shots, seed);
}

Counts PulseExecutor::measure_2q_vec(const Mat& vec_rho, int shots, std::uint64_t seed) const {
    if (vec_rho.cols() != 1 || vec_rho.rows() != 16) {
        throw std::invalid_argument("measure_2q_vec: expected 16 x 1 vector");
    }
    std::array<double, 4> true_p{};
    for (std::size_t k = 0; k < 4; ++k) {
        true_p[k] = std::max(0.0, vec_rho(k * 5, 0).real());  // vec diagonal
    }
    return measure_2q_populations(true_p, shots, seed);
}

Counts PulseExecutor::measure_2q_populations(const std::array<double, 4>& true_p, int shots,
                                             std::uint64_t seed) const {
    double norm = true_p[0] + true_p[1] + true_p[2] + true_p[3];
    if (norm <= 0.0) norm = 1.0;

    // Per-qubit confusion applied independently.
    auto flip = [&](std::size_t q, int read, int truth) {
        const auto& p = config_.qubit(q);
        if (truth == 0) return read == 1 ? p.readout_p10 : 1.0 - p.readout_p10;
        return read == 0 ? p.readout_p01 : 1.0 - p.readout_p01;
    };
    std::array<double, 4> read_p{};
    for (int r0 = 0; r0 < 2; ++r0)
        for (int r1 = 0; r1 < 2; ++r1)
            for (int t0 = 0; t0 < 2; ++t0)
                for (int t1 = 0; t1 < 2; ++t1)
                    read_p[r0 * 2 + r1] +=
                        (true_p[t0 * 2 + t1] / norm) * flip(0, r0, t0) * flip(1, r1, t1);

    std::mt19937_64 rng(seed);
    std::discrete_distribution<int> dist(read_p.begin(), read_p.end());
    Counts c;
    c.shots = shots;
    static const char* labels[4] = {"00", "01", "10", "11"};
    for (int s = 0; s < shots; ++s) c.histogram[labels[dist(rng)]]++;
    return c;
}

namespace {

/// Gate-level composition of a 1-qubit circuit into a total superoperator.
Mat compose_circuit_1q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                       const pulse::InstructionScheduleMap& defaults, std::size_t qubit) {
    const std::size_t d2 = exec.config().levels * exec.config().levels;
    Mat total = Mat::identity(d2);
    std::map<std::string, Mat> cache;

    auto apply_gate = [&](const pulse::GateOp& op, auto&& self) -> void {
        if (op.name == "rz") {
            total = exec.rz_superop_1q(*op.param) * total;
            return;
        }
        const std::string key = op.name;
        if (circuit.calibrations().has(op.name, op.qubits)) {
            auto it = cache.find("cal:" + key);
            if (it == cache.end()) {
                it = cache.emplace("cal:" + key,
                                   exec.schedule_superop_1q(
                                       circuit.calibrations().get(op.name, op.qubits), qubit))
                         .first;
            }
            total = it->second * total;
            return;
        }
        if (defaults.has(op.name, op.qubits)) {
            auto it = cache.find("def:" + key);
            if (it == cache.end()) {
                it = cache.emplace("def:" + key,
                                   exec.schedule_superop_1q(defaults.get(op.name, op.qubits),
                                                            qubit))
                         .first;
            }
            total = it->second * total;
            return;
        }
        if (op.name == "h") {
            self(pulse::GateOp{"rz", op.qubits, std::numbers::pi / 2.0}, self);
            self(pulse::GateOp{"sx", op.qubits, std::nullopt}, self);
            self(pulse::GateOp{"rz", op.qubits, std::numbers::pi / 2.0}, self);
            return;
        }
        throw std::runtime_error("run_circuit_1q: no schedule for gate '" + op.name + "'");
    };

    for (const auto& op : circuit.ops()) apply_gate(op, apply_gate);
    return total;
}

Mat compose_circuit_2q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                       const pulse::InstructionScheduleMap& defaults) {
    Mat total = Mat::identity(16);
    std::map<std::string, Mat> cache;

    auto schedule_for = [&](const pulse::GateOp& op) -> const pulse::Schedule& {
        if (circuit.calibrations().has(op.name, op.qubits)) {
            return circuit.calibrations().get(op.name, op.qubits);
        }
        return defaults.get(op.name, op.qubits);
    };

    auto apply_gate = [&](const pulse::GateOp& op, auto&& self) -> void {
        if (op.name == "rz") {
            total = exec.rz_superop_2q(*op.param, op.qubits[0]) * total;
            return;
        }
        const bool is_cal = circuit.calibrations().has(op.name, op.qubits);
        if (!is_cal && !defaults.has(op.name, op.qubits)) {
            if (op.name == "h") {
                self(pulse::GateOp{"rz", op.qubits, std::numbers::pi / 2.0}, self);
                self(pulse::GateOp{"sx", op.qubits, std::nullopt}, self);
                self(pulse::GateOp{"rz", op.qubits, std::numbers::pi / 2.0}, self);
                return;
            }
            throw std::runtime_error("run_circuit_2q: no schedule for gate '" + op.name + "'");
        }
        std::string key = (is_cal ? "cal:" : "def:") + op.name + ":q";
        for (auto q : op.qubits) key += std::to_string(q);
        auto it = cache.find(key);
        if (it == cache.end()) {
            const pulse::Schedule& sched = schedule_for(op);
            Mat sup(16, 16);
            if (op.qubits.size() == 2) {
                sup = exec.schedule_superop_2q(sched);
            } else {
                // Single-qubit gate on one side of the pair: drive that
                // qubit's channel; the other qubit idles (decoheres).
                const std::size_t n_dt = sched.total_duration();
                const std::vector<std::complex<double>> zeros(n_dt, {0.0, 0.0});
                const auto samples =
                    sched.channel_samples(pulse::drive_channel(op.qubits[0]), n_dt);
                sup = (op.qubits[0] == 0) ? exec.layer_superop_2q(samples, zeros, zeros)
                                          : exec.layer_superop_2q(zeros, samples, zeros);
            }
            it = cache.emplace(std::move(key), std::move(sup)).first;
        }
        total = it->second * total;
    };

    for (const auto& op : circuit.ops()) apply_gate(op, apply_gate);
    return total;
}

}  // namespace

Mat simulate_circuit_1q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                        const pulse::InstructionScheduleMap& defaults, std::size_t qubit) {
    const Mat total = compose_circuit_1q(exec, circuit, defaults, qubit);
    return quantum::apply_superop(total, exec.ground_state_1q());
}

Counts run_circuit_1q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                      const pulse::InstructionScheduleMap& defaults, std::size_t qubit,
                      int shots, std::uint64_t seed) {
    const Mat rho = simulate_circuit_1q(exec, circuit, defaults, qubit);
    return exec.measure_1q(rho, qubit, shots, seed);
}

Mat simulate_circuit_2q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                        const pulse::InstructionScheduleMap& defaults) {
    const Mat total = compose_circuit_2q(exec, circuit, defaults);
    return quantum::apply_superop(total, exec.ground_state_2q());
}

Counts run_circuit_2q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                      const pulse::InstructionScheduleMap& defaults, int shots,
                      std::uint64_t seed) {
    const Mat rho = simulate_circuit_2q(exec, circuit, defaults);
    return exec.measure_2q(rho, shots, seed);
}

}  // namespace qoc::device
