/// \file characterization.hpp
/// \brief Standard qubit characterization experiments run against the pulse
///        executor: T1 (inversion recovery), T2* (Ramsey, which also yields
///        the detuning) and T2 echo.  These are the numbers IBM's daily
///        calibration publishes and the drift studies consume.

#pragma once

#include <cstdint>
#include <vector>

#include "device/calibration.hpp"

namespace qoc::device {

struct DecayFit {
    double value = 0.0;     ///< fitted time constant (ns) or frequency
    double stderr_ = 0.0;   ///< 1-sigma uncertainty
    std::vector<double> delays_ns;
    std::vector<double> probabilities;
};

struct CharacterizationOptions {
    std::size_t n_points = 25;
    double max_delay_ns = 300'000.0;  ///< sweep end (ns)
    int shots = 2048;
    std::uint64_t seed = 17;
};

/// T1 via inversion recovery: X pulse, variable delay, measure P(1);
/// fit A exp(-t/T1) + B.
DecayFit measure_t1(const PulseExecutor& device, const pulse::InstructionScheduleMap& defaults,
                    std::size_t qubit, const CharacterizationOptions& options = {});

/// Ramsey: sx, delay, sx, measure.  With an artificial detuning
/// `ramsey_detuning_rad_ns` applied as a virtual-Z ramp, P(1) oscillates at
/// (detuning + qubit drift detuning) and decays at T2*.  Returns the T2 fit;
/// `fitted_detuning` receives the oscillation frequency (rad/ns).
DecayFit measure_t2_ramsey(const PulseExecutor& device,
                           const pulse::InstructionScheduleMap& defaults, std::size_t qubit,
                           double ramsey_detuning_rad_ns, double* fitted_detuning,
                           const CharacterizationOptions& options = {});

/// Hahn echo: sx, delay/2, x, delay/2, sx; decays at T2 (echoes away the
/// static detuning).
DecayFit measure_t2_echo(const PulseExecutor& device,
                         const pulse::InstructionScheduleMap& defaults, std::size_t qubit,
                         const CharacterizationOptions& options = {});

}  // namespace qoc::device
