/// \file backend_config.hpp
/// \brief Device descriptions for the simulated IBM Q backends.
///
/// The paper runs on ibmq_montreal, ibmq_toronto, Boeblingen and Rome.  We
/// substitute a pulse-level noisy transmon simulator; these configs carry
/// the published per-device parameters (qubit-0 frequency, average T1,
/// average single-qubit gate error) from the paper's Section 3.2 plus
/// standard transmon constants (anharmonicity, drive strength) needed to
/// close the model.  Units: time ns, angular frequency rad/ns.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qoc::device {

/// Per-qubit physical parameters as the *device* realizes them.  The
/// "nominal" values (what the optimizer's model sees) are these without the
/// drift fields applied.
struct QubitParams {
    double frequency_ghz = 5.0;   ///< qubit 0-1 transition frequency
    double anharmonicity = -2.0;  ///< alpha, rad/ns (about -2 pi * 0.33 GHz)
    double t1 = 85'000.0;         ///< ns
    double t2 = 70'000.0;         ///< ns (T2 <= 2 T1)
    double omega_max = 1.0;       ///< Rabi rate at amplitude 1.0, rad/ns

    // Imperfections / drift (zero in the nominal model).
    double detuning = 0.0;        ///< drive-qubit detuning, rad/ns
    double amp_scale = 1.0;       ///< multiplicative drive-amplitude error
    /// Multiplicative (1/f-like) drive-amplitude noise, modeled as a
    /// Lindblad channel along the instantaneous drive Hamiltonian with rate
    /// gamma = drive_amp_noise * |H_drive|^2 (units ns).  This is the
    /// incoherent error of the drive chain: it grows with pulse amplitude
    /// squared, so strong short default pulses pay more than the gentle
    /// long GRAPE pulses -- the mechanism behind the paper's observation
    /// that longer optimized pulses can beat the calibrated defaults.
    double drive_amp_noise = 0.0;
    double readout_p10 = 0.02;    ///< P(read 1 | state 0)
    double readout_p01 = 0.03;    ///< P(read 0 | state 1)
};

/// Effective cross-resonance couplings for the (control=0, target=1) pair,
/// per Eq. 3 of the paper: driving the control qubit at the target frequency
/// produces ZX and IX terms (ratio J/Delta), plus spurious terms.
struct CrParams {
    double zx_rate = 0.030;      ///< rad/ns per unit U0 amplitude on ZX/2
    double ix_rate = 0.060;      ///< rad/ns per unit amplitude on IX/2 (the
                                 ///< dominant spurious term; echoed away in
                                 ///< the default CX)
    double zz_static = 2.0e-4;   ///< always-on ZZ, rad/ns (the paper's
                                 ///< "ever present source of error")
    double classical_crosstalk = 0.002;  ///< spurious XI drive per unit amp
};

struct BackendConfig {
    std::string name = "ibmq_sim";
    double dt = 2.0 / 9.0;        ///< sample time, ns (IBM convention)
    double device_average_t1_us = 0.0;  ///< whole-device average quoted in
                                        ///< the paper (reporting only)
    std::size_t levels = 3;       ///< transmon truncation for 1-qubit sims
    std::vector<QubitParams> qubits;
    CrParams cr;

    std::size_t default_gate_duration_dt = 160;  ///< IBM default X/SX length
    std::size_t measure_duration_dt = 0;

    const QubitParams& qubit(std::size_t q) const { return qubits.at(q); }
};

/// The devices used in the paper (parameters from its Section 3.2).
BackendConfig ibmq_montreal();  ///< QV128, T1 = 86.76 us, q0 at 4.911 GHz
BackendConfig ibmq_toronto();   ///< QV32, T1 = 83.52 us, q0 at 5.225 GHz
BackendConfig ibmq_boeblingen();
BackendConfig ibmq_rome();

/// Strips imperfection fields (detuning, amp_scale, readout errors stay as
/// configured? no: readout is kept since the optimizer does not model it) --
/// returns the model the *optimizer* believes in: zero detuning, unit
/// amplitude scale, published T1/T2.
BackendConfig nominal_model(const BackendConfig& device);

}  // namespace qoc::device
