#include "device/calibration.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "control/pulse_shapes.hpp"
#include "optim/levmar.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::device {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double default_drag_beta(const BackendConfig& config, std::size_t qubit,
                         std::size_t duration_dt) {
    // DRAG coefficient in the -1/(2 alpha) convention: Q(t) = -dI/dt/(2 alpha)
    // (the variant that cancels the AC-Stark phase error, which dominates the
    // gate error at these durations; verified optimal on this model by a
    // beta sweep).  The waveform generator's quadrature is normalized to
    // unit peak and the peak of dG/dt for a Gaussian of width sigma is
    // e^{-1/2}/sigma, so beta = e^{-1/2} / (2 sigma_ns |alpha|), positive
    // for the transmon's alpha < 0.
    const double sigma_ns = 0.25 * static_cast<double>(duration_dt) * config.dt;
    const double alpha = config.qubit(qubit).anharmonicity;
    if (alpha == 0.0) return 0.0;
    return std::exp(-0.5) / (2.0 * sigma_ns * std::abs(alpha));
}

RabiResult rabi_calibrate(const PulseExecutor& device, std::size_t qubit,
                          const RabiOptions& opts) {
    const BackendConfig& cfg = device.config();
    const double beta = default_drag_beta(cfg, qubit, opts.pulse_duration_dt);

    RabiResult result;
    result.sweep_amps.resize(opts.n_points);
    result.sweep_p1.resize(opts.n_points);

    const Mat rho0 = device.ground_state_1q();
    for (std::size_t i = 0; i < opts.n_points; ++i) {
        const double amp =
            opts.max_amplitude * static_cast<double>(i + 1) / static_cast<double>(opts.n_points);
        const auto wf = pulse::drag_waveform(opts.pulse_duration_dt, {amp, 0.0}, beta);
        const Mat sup = device.waveform_superop_1q(wf.samples(), qubit);
        const Mat rho = quantum::apply_superop(sup, rho0);
        const Counts c = device.measure_1q(rho, qubit, opts.shots, opts.seed + i);
        result.sweep_amps[i] = amp;
        result.sweep_p1[i] = c.probability("1");
    }

    // Expected oscillation frequency from the nominal model: rotation angle
    // theta(amp) = amp * Omega_max * gaussian_area, P1 = (1 - cos theta)/2.
    const double area_ns =
        control::pulse_area(control::gaussian_pulse(opts.pulse_duration_dt), cfg.dt);
    const double rad_per_amp = cfg.qubit(qubit).omega_max * area_ns;
    const double f0 = rad_per_amp / kTwoPi;

    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::cos(kTwoPi * p[1] * result.sweep_amps[i] + p[2]) + p[3];
    };
    const auto fit = optim::levmar_fit(model, opts.n_points, result.sweep_p1,
                                       {-0.5, f0, 0.0, 0.5});
    result.fit_frequency = fit.params[1];
    // First maximum of P1: cos(2 pi f a + phi) = -1 -> a = (pi - phi)/(2 pi f).
    result.pi_amplitude = (std::numbers::pi - fit.params[2]) / (kTwoPi * fit.params[1]);
    // Propagate frequency + phase uncertainty to the amplitude.
    const double df = fit.stderrs[1], dphi = fit.stderrs[2];
    result.fit_stderr = std::abs(result.pi_amplitude) *
                            std::sqrt(std::pow(df / fit.params[1], 2)) +
                        dphi / (kTwoPi * fit.params[1]);
    if (!(result.pi_amplitude > 0.0) || result.pi_amplitude > 1.0) {
        throw std::runtime_error("rabi_calibrate: calibration failed (pi amplitude " +
                                 std::to_string(result.pi_amplitude) + ")");
    }
    return result;
}

namespace {

/// Conditional target-rotation angle about X for a CR superoperator, with
/// the control prepared in |c> and the target in |0>:
/// theta = atan2(-<Y>, <Z>) of the target's reduced state.
double conditional_angle(const Mat& superop, int control_state) {
    const Mat rho0 = quantum::ket_to_dm(quantum::basis_ket_bits({control_state, 0}));
    const Mat rho = quantum::apply_superop(superop, rho0);
    const Mat target = quantum::partial_trace(rho, 2, 2, 0);
    const auto bloch = quantum::bloch_vector(target);
    return std::atan2(-bloch.y, bloch.z);
}

}  // namespace

pulse::InstructionScheduleMap build_default_gates(const PulseExecutor& device,
                                                  const DefaultGateOptions& opts) {
    const BackendConfig& cfg = device.config();
    pulse::InstructionScheduleMap map;

    // --- single-qubit defaults: Rabi-calibrated DRAG x and sx ---------------
    std::vector<double> pi_amp(cfg.qubits.size(), 0.0);
    for (std::size_t q = 0; q < cfg.qubits.size(); ++q) {
        RabiOptions ropts;
        ropts.pulse_duration_dt = opts.gate_duration_dt;
        ropts.shots = opts.calibration_shots;
        ropts.seed = opts.seed + 100 * q;
        const RabiResult rabi = rabi_calibrate(device, q, ropts);
        pi_amp[q] = rabi.pi_amplitude;
        const double beta =
            opts.drag_beta_scale * default_drag_beta(cfg, q, opts.gate_duration_dt);

        pulse::Schedule x_sched("x_d" + std::to_string(q));
        x_sched.insert(0, pulse::Play{pulse::drag_waveform(opts.gate_duration_dt,
                                                           {rabi.pi_amplitude, 0.0}, beta,
                                                           opts.drag_sigma_fraction),
                                      pulse::drive_channel(q)});
        map.add("x", {q}, x_sched);

        const double sx_amp =
            0.5 * rabi.pi_amplitude * (1.0 + opts.sx_amp_relative_error);
        pulse::Schedule sx_sched("sx_d" + std::to_string(q));
        sx_sched.insert(0, pulse::Play{pulse::drag_waveform(opts.gate_duration_dt,
                                                            {sx_amp, 0.0}, beta,
                                                            opts.drag_sigma_fraction),
                                       pulse::drive_channel(q)});
        map.add("sx", {q}, sx_sched);
    }

    // --- two-qubit default: calibrated echoed-CR CX -------------------------
    // The echo  CR(+u) . X0 . CR(-u) . X0  cancels the IX and classical-
    // crosstalk terms and doubles ZX, leaving (ideally) exp(-i Theta ZX)
    // with Theta = zx_rate * u * area_half.  CX then follows from
    // CX = ZX90 * (RZ(-pi/2) (x) RX(-pi/2)) up to global phase.
    if (cfg.qubits.size() >= 2) {
        const std::size_t half_dt = opts.cx_duration_dt / 2;
        const double area_half_ns = control::pulse_area(
            control::gaussian_square_pulse(half_dt, opts.cx_width_fraction), cfg.dt);
        double u_amp = (std::numbers::pi / 4.0) / (cfg.cr.zx_rate * area_half_ns);
        if (u_amp > 0.95) {
            throw std::runtime_error("build_default_gates: CR pulse too short for ZX90");
        }
        const double beta0 =
            opts.drag_beta_scale * default_drag_beta(cfg, 0, opts.gate_duration_dt);
        const double beta1 =
            opts.drag_beta_scale * default_drag_beta(cfg, 1, opts.gate_duration_dt);
        const std::size_t xdur = opts.gate_duration_dt;

        auto build_echo = [&](double u) {
            pulse::Schedule echo("cr_echo");
            std::size_t t = 0;
            echo.insert(t, pulse::Play{pulse::gaussian_square_waveform(
                                           half_dt, {u, 0.0}, opts.cx_width_fraction),
                                       pulse::control_channel(0)});
            t += half_dt;
            echo.insert(t, pulse::Play{pulse::drag_waveform(xdur, {pi_amp[0], 0.0}, beta0,
                                                            opts.drag_sigma_fraction),
                                       pulse::drive_channel(0)});
            t += xdur;
            echo.insert(t, pulse::Play{pulse::gaussian_square_waveform(
                                           half_dt, {-u, 0.0}, opts.cx_width_fraction),
                                       pulse::control_channel(0)});
            t += half_dt;
            echo.insert(t, pulse::Play{pulse::drag_waveform(xdur, {pi_amp[0], 0.0}, beta0,
                                                            opts.drag_sigma_fraction),
                                       pulse::drive_channel(0)});
            return echo;
        };

        // Calibrate u so the conditional-rotation difference is pi (ZX90).
        double theta0 = 0.0, theta1 = 0.0;
        for (int iter = 0; iter < 4; ++iter) {
            const Mat sup = device.schedule_superop_2q(build_echo(u_amp));
            theta0 = conditional_angle(sup, 0);
            theta1 = conditional_angle(sup, 1);
            double diff = theta0 - theta1;
            // Unwrap into (0, 2 pi) -- the physical angle grows with u.
            if (diff < 0.0) diff += 2.0 * std::numbers::pi;
            if (std::abs(diff) < 1e-12) break;
            u_amp = std::min(u_amp * std::numbers::pi / diff, 0.95);
        }

        pulse::Schedule cx("cx_default_echo_cr");
        // Local pre-rotations: RZ(-pi/2) on control (virtual), RX(-pi/2) on
        // target (negative-amplitude half-pi DRAG).
        cx.insert(0, pulse::ShiftPhase{std::numbers::pi / 2.0, pulse::drive_channel(0)});
        cx.insert(0, pulse::Play{pulse::drag_waveform(xdur, {-0.5 * pi_amp[1], 0.0}, beta1,
                                                      opts.drag_sigma_fraction),
                                 pulse::drive_channel(1)});
        const pulse::Schedule echo = build_echo(u_amp);
        for (const auto& [t, inst] : echo.instructions()) cx.insert(xdur + t, inst);
        map.add("cx", {0, 1}, cx);
    }
    return map;
}

}  // namespace qoc::device
