/// \file calibration.hpp
/// \brief Daily device calibration: the Rabi experiment that fixes the
///        default pi-pulse amplitude (how IBM calibrates its X gate -- the
///        paper points to the qiskit-textbook Rabi procedure), and the
///        builder for the backend's default gate schedules.

#pragma once

#include <cstdint>

#include "device/executor.hpp"
#include "pulse/instruction_map.hpp"

namespace qoc::device {

struct RabiResult {
    double pi_amplitude = 0.0;      ///< drive amplitude realizing a pi rotation
    double fit_frequency = 0.0;     ///< oscillation frequency vs amplitude
    double fit_stderr = 0.0;        ///< 1-sigma uncertainty of pi_amplitude
    std::vector<double> sweep_amps; ///< the sweep points
    std::vector<double> sweep_p1;   ///< measured P(1) at each point
};

struct RabiOptions {
    std::size_t pulse_duration_dt = 160;  ///< drag pulse length used in the sweep
    std::size_t n_points = 40;
    double max_amplitude = 0.4;
    int shots = 1024;                     ///< shot noise enters the fit
    std::uint64_t seed = 7;
};

/// Runs an amplitude-sweep Rabi experiment on the (possibly drifted) device
/// and fits P1(amp) = A cos(2 pi f amp + phi) + B; the pi amplitude is the
/// first half-period.  Finite shots make the calibration slightly imperfect,
/// exactly like the daily hardware calibration.
RabiResult rabi_calibrate(const PulseExecutor& device, std::size_t qubit,
                          const RabiOptions& options = {});

struct DefaultGateOptions {
    std::size_t gate_duration_dt = 160;  ///< IBM default X/SX length (~35.5 ns)
    double drag_sigma_fraction = 0.25;
    int calibration_shots = 1024;
    std::uint64_t seed = 7;

    /// Default pulses use the textbook leakage-removal DRAG convention
    /// beta = -1/alpha, which is ~1.7x the phase-optimal value for this
    /// model: a realistic coherent miscalibration of factory defaults
    /// (relative to `default_drag_beta`, which returns the phase-optimal
    /// -1/(2 alpha) value).
    double drag_beta_scale = 1.0;

    /// The default sx amplitude is derived as half the Rabi pi amplitude
    /// instead of being calibrated independently; this relative error
    /// models drive-chain nonlinearity between the two operating points.
    double sx_amp_relative_error = 0.05;

    // CX (echoed-CR-like direct drive) parameters.
    std::size_t cx_duration_dt = 800;
    double cx_width_fraction = 0.7;
};

/// Builds the backend's default InstructionScheduleMap for qubits 0/1:
///   x / sx : DRAG pulses with Rabi-calibrated amplitudes and the standard
///            beta = -1/anharmonicity DRAG coefficient,
///   cx 0,1 : GaussianSquare cross-resonance drive on U0 calibrated so the
///            ZX angle is pi/2, framed by the local rotations completing a
///            CNOT.
/// Calibration runs against the *device* executor (drifted parameters), so
/// defaults track the hardware just as IBM's daily calibration does.
pulse::InstructionScheduleMap build_default_gates(const PulseExecutor& device,
                                                  const DefaultGateOptions& options = {});

/// The DRAG beta used for default pulses: -1/alpha in time units, converted
/// to the sample-index units of the waveform generator.
double default_drag_beta(const BackendConfig& config, std::size_t qubit,
                         std::size_t duration_dt);

}  // namespace qoc::device
