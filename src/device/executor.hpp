/// \file executor.hpp
/// \brief Pulse-level noisy execution: integrates the Lindblad master
///        equation (paper Eq. 1) sample-by-sample for schedules played on a
///        simulated transmon backend.  This is the stand-in for running jobs
///        on IBM Q hardware through OpenPulse.
///
/// Single-qubit execution uses a `levels`-dimensional Duffing transmon in
/// the drive rotating frame:
///   H(t) = delta n + (alpha/2) n (n - 1)
///        + (Omega_max * amp_scale / 2) (s(t) a^dag + s*(t) a)
/// with T1 (collapse `a/sqrt(T1)`) and pure dephasing from T2.  Two-qubit
/// execution models the pair with the effective cross-resonance Hamiltonian
/// (paper Eq. 3): drive channels give local X/Y terms; the control channel
/// U0 produces ZX + IX (+ classical-crosstalk XI) terms; a static ZZ runs
/// throughout.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/backend_config.hpp"
#include "linalg/expm.hpp"
#include "linalg/matrix.hpp"
#include "pulse/circuit.hpp"
#include "pulse/schedule.hpp"

namespace qoc::device {

using linalg::Mat;

/// Measurement outcome histogram.
struct Counts {
    std::map<std::string, int> histogram;  ///< bitstring -> shots
    int shots = 0;

    /// Probability of a bitstring (0 when absent).
    double probability(const std::string& bitstring) const;
};

class PulseExecutor {
public:
    explicit PulseExecutor(BackendConfig config);

    const BackendConfig& config() const { return config_; }

    /// Superoperator (dim^2 x dim^2, dim = config.levels) of a complex
    /// sample stream played on `qubit`'s drive channel.
    Mat waveform_superop_1q(const std::vector<std::complex<double>>& samples,
                            std::size_t qubit) const;

    /// Superoperator of a single-qubit gate schedule (reads the qubit's
    /// drive-channel samples; internal ShiftPhases are resolved).
    Mat schedule_superop_1q(const pulse::Schedule& sched, std::size_t qubit) const;

    /// Free evolution (decoherence only) for `duration_dt` samples.
    Mat idle_superop_1q(std::size_t duration_dt, std::size_t qubit) const;

    /// Exact virtual-Z superoperator e^{+i theta n} on the transmon
    /// (equals RZ(theta) on the qubit subspace up to global phase).
    Mat rz_superop_1q(double theta) const;

    /// Two-qubit (2x2 levels) superoperator of simultaneous sample streams
    /// on D0, D1 and U0.  Streams are zero-padded to a common length.
    Mat layer_superop_2q(const std::vector<std::complex<double>>& d0,
                         const std::vector<std::complex<double>>& d1,
                         const std::vector<std::complex<double>>& u0) const;

    /// Superoperator of a two-qubit gate schedule (channels D0, D1, U0).
    Mat schedule_superop_2q(const pulse::Schedule& sched) const;

    Mat idle_superop_2q(std::size_t duration_dt) const;

    /// Virtual Z on one qubit of the pair.
    Mat rz_superop_2q(double theta, std::size_t qubit) const;

    /// Readout of a 1-qubit (levels-dim) density matrix: collapses the
    /// populations to {0, 1} (level >= 2 reads as 1), applies the confusion
    /// matrix, samples `shots` outcomes.
    Counts measure_1q(const Mat& rho, std::size_t qubit, int shots, std::uint64_t seed) const;

    /// Readout of a 2-qubit density matrix (4x4), bitstring "q0q1".
    Counts measure_2q(const Mat& rho, int shots, std::uint64_t seed) const;

    /// `measure_2q` on a vectorized (16x1, column-stacking) density matrix,
    /// reading the populations straight off the vec diagonal -- the readout
    /// companion of the RB engine's matvec propagation (no unvec round trip).
    Counts measure_2q_vec(const Mat& vec_rho, int shots, std::uint64_t seed) const;

    /// Ideal readout probabilities P(read 1) for a 1-qubit state (confusion
    /// applied, no shot noise) -- used by deterministic tests.
    double p1_after_readout(const Mat& rho, std::size_t qubit) const;

    /// `p1_after_readout` on a vectorized (levels^2 x 1) density matrix.
    double p1_after_readout_vec(const Mat& vec_rho, std::size_t qubit) const;

    /// Ground state (levels-dim density matrix).
    Mat ground_state_1q() const;
    /// |00><00| on the pair.
    Mat ground_state_2q() const;

private:
    Mat lindblad_generator_1q(std::complex<double> sample, std::size_t qubit) const;
    Mat lindblad_generator_2q(std::complex<double> d0, std::complex<double> d1,
                              std::complex<double> u0) const;

    /// Cache key for an amplitude -> single-sample propagator entry: a tag
    /// (1q qubit index, or kKey2q) plus the raw bit patterns of the drive
    /// samples.  Exact bit equality keeps cached propagators bitwise
    /// identical to recomputation.
    struct PropKey {
        std::array<std::uint64_t, 7> w;
        bool operator==(const PropKey& o) const { return w == o.w; }
    };
    struct PropKeyHash {
        std::size_t operator()(const PropKey& k) const;
    };

    /// Returns the single-dt propagator for `sample` on `qubit`, from the
    /// shared cache when present; otherwise computes it into `scratch` and
    /// publishes it.  The returned reference stays valid for the lifetime of
    /// the executor (entries are never erased).
    const Mat& sample_propagator_1q(std::complex<double> sample, std::size_t qubit,
                                    Mat& scratch, linalg::ExpmWorkspace& ws) const;
    /// Two-qubit analogue for a (d0, d1, u0) sample triple.
    const Mat& sample_propagator_2q(std::complex<double> d0, std::complex<double> d1,
                                    std::complex<double> u0, Mat& scratch,
                                    linalg::ExpmWorkspace& ws) const;

    Counts measure_2q_populations(const std::array<double, 4>& true_p, int shots,
                                  std::uint64_t seed) const;

    BackendConfig config_;
    // Amplitude -> propagator cache shared across schedule builds: x/sx/cx
    // schedules replay the same flat-top and Gaussian sample values, so the
    // per-sample expm is paid once per distinct amplitude per executor.
    mutable std::unordered_map<PropKey, Mat, PropKeyHash> prop_cache_;
    mutable std::mutex prop_cache_mutex_;
    // Cached operator blocks (built once per executor).
    Mat h_drift_1q_base_;       // anharmonic part without detuning (per qubit added later)
    Mat drive_op_a_;            // annihilation (levels)
    Mat number_op_;
    std::vector<Mat> collapse_template_1q_;
    Mat h_static_2q_;           // detunings + ZZ
    std::vector<Mat> collapse_2q_;
};

/// Runs a single-qubit circuit on the executor: lowers gates to superops
/// (calibrations first, then `defaults`, rz virtual) in order, applies the
/// final frame correction, measures.
Counts run_circuit_1q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                      const pulse::InstructionScheduleMap& defaults, std::size_t qubit,
                      int shots, std::uint64_t seed);

/// Final density matrix of a single-qubit circuit (before readout).
Mat simulate_circuit_1q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                        const pulse::InstructionScheduleMap& defaults, std::size_t qubit);

/// Runs a two-qubit circuit (gates on qubits {0}, {1} or {0,1}).
Counts run_circuit_2q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                      const pulse::InstructionScheduleMap& defaults, int shots,
                      std::uint64_t seed);

/// Final density matrix of a two-qubit circuit.
Mat simulate_circuit_2q(const PulseExecutor& exec, const pulse::QuantumCircuit& circuit,
                        const pulse::InstructionScheduleMap& defaults);

}  // namespace qoc::device
