#include "device/characterization.hpp"

#include <cmath>
#include <numbers>

#include "optim/levmar.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::device {

namespace {

using linalg::Mat;

/// Applies gate superops around a variable idle and returns P(1) samples.
/// `pre` runs before the idle, `mid` (optional) splits the idle in half
/// (echo), `post` runs after.
DecayFit sweep_delay(const PulseExecutor& device, const Mat* pre, const Mat* mid,
                     const Mat* post, std::size_t qubit, double phase_ramp_rad_ns,
                     const CharacterizationOptions& opts) {
    DecayFit fit;
    fit.delays_ns.resize(opts.n_points);
    fit.probabilities.resize(opts.n_points);
    const double dt = device.config().dt;
    const Mat rho0 = device.ground_state_1q();
    for (std::size_t i = 0; i < opts.n_points; ++i) {
        const double delay_ns =
            opts.max_delay_ns * static_cast<double>(i) / static_cast<double>(opts.n_points - 1);
        const auto delay_dt = static_cast<std::size_t>(delay_ns / dt);
        Mat rho = rho0;
        if (pre) rho = quantum::apply_superop(*pre, rho);
        if (mid) {
            const Mat half = device.idle_superop_1q(delay_dt / 2, qubit);
            rho = quantum::apply_superop(half, rho);
            rho = quantum::apply_superop(*mid, rho);
            rho = quantum::apply_superop(half, rho);
        } else {
            rho = quantum::apply_superop(device.idle_superop_1q(delay_dt, qubit), rho);
        }
        if (phase_ramp_rad_ns != 0.0) {
            // Artificial Ramsey detuning as a delay-proportional virtual Z.
            rho = quantum::apply_superop(
                device.rz_superop_1q(phase_ramp_rad_ns * delay_ns), rho);
        }
        if (post) rho = quantum::apply_superop(*post, rho);
        const Counts c = device.measure_1q(rho, qubit, opts.shots, opts.seed + i);
        fit.delays_ns[i] = delay_ns;
        fit.probabilities[i] = c.probability("1");
    }
    return fit;
}

}  // namespace

DecayFit measure_t1(const PulseExecutor& device, const pulse::InstructionScheduleMap& defaults,
                    std::size_t qubit, const CharacterizationOptions& opts) {
    const Mat x_super = device.schedule_superop_1q(defaults.get("x", {qubit}), qubit);
    DecayFit fit = sweep_delay(device, &x_super, nullptr, nullptr, qubit, 0.0, opts);

    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::exp(-fit.delays_ns[i] / p[1]) + p[2];
    };
    const auto lm = optim::levmar_fit(model, fit.delays_ns.size(), fit.probabilities,
                                      {0.9, device.config().qubit(qubit).t1, 0.05});
    fit.value = lm.params[1];
    fit.stderr_ = lm.stderrs[1];
    return fit;
}

DecayFit measure_t2_ramsey(const PulseExecutor& device,
                           const pulse::InstructionScheduleMap& defaults, std::size_t qubit,
                           double ramsey_detuning_rad_ns, double* fitted_detuning,
                           const CharacterizationOptions& opts) {
    const Mat sx_super = device.schedule_superop_1q(defaults.get("sx", {qubit}), qubit);
    DecayFit fit = sweep_delay(device, &sx_super, nullptr, &sx_super, qubit,
                               ramsey_detuning_rad_ns, opts);

    // Seed the fringe frequency from zero crossings of the centered signal
    // (the artificial ramp alone can be far from the true fringe when the
    // qubit has drifted, and the cosine fit is multimodal).
    double mean = 0.0;
    for (double p1 : fit.probabilities) mean += p1;
    mean /= static_cast<double>(fit.probabilities.size());
    std::size_t crossings = 0;
    for (std::size_t i = 1; i < fit.probabilities.size(); ++i) {
        if ((fit.probabilities[i - 1] - mean) * (fit.probabilities[i] - mean) < 0.0) {
            ++crossings;
        }
    }
    const double span = fit.delays_ns.back() - fit.delays_ns.front();
    double f_guess = ramsey_detuning_rad_ns;
    if (crossings >= 2 && span > 0.0) {
        f_guess = std::numbers::pi * static_cast<double>(crossings) / span;
    }

    // P1(t) = A exp(-t/T2*) cos(w t + phi) + B
    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::exp(-fit.delays_ns[i] / p[1]) *
                   std::cos(p[2] * fit.delays_ns[i] + p[3]) +
               p[4];
    };
    const auto lm = optim::levmar_fit(
        model, fit.delays_ns.size(), fit.probabilities,
        {0.45, device.config().qubit(qubit).t2, f_guess, 0.0, 0.5});
    fit.value = lm.params[1];
    fit.stderr_ = lm.stderrs[1];
    if (fitted_detuning) *fitted_detuning = lm.params[2];
    return fit;
}

DecayFit measure_t2_echo(const PulseExecutor& device,
                         const pulse::InstructionScheduleMap& defaults, std::size_t qubit,
                         const CharacterizationOptions& opts) {
    const Mat sx_super = device.schedule_superop_1q(defaults.get("sx", {qubit}), qubit);
    const Mat x_super = device.schedule_superop_1q(defaults.get("x", {qubit}), qubit);
    DecayFit fit = sweep_delay(device, &sx_super, &x_super, &sx_super, qubit, 0.0, opts);

    auto model = [&](std::size_t i, const std::vector<double>& p) {
        return p[0] * std::exp(-fit.delays_ns[i] / p[1]) + p[2];
    };
    // Data-driven amplitude guess: the echo curve may start high or low
    // depending on the net rotation's sign convention.
    const double a0 = fit.probabilities.front() - 0.5;
    const auto lm = optim::levmar_fit(model, fit.delays_ns.size(), fit.probabilities,
                                      {a0, device.config().qubit(qubit).t2, 0.5});
    fit.value = lm.params[1];
    fit.stderr_ = lm.stderrs[1];
    return fit;
}

}  // namespace qoc::device
