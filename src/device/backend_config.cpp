#include "device/backend_config.hpp"

#include <numbers>

namespace qoc::device {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

QubitParams make_qubit(double freq_ghz, double t1_us, double t2_us) {
    QubitParams q;
    q.frequency_ghz = freq_ghz;
    q.anharmonicity = -kTwoPi * 0.33;  // -330 MHz, typical IBM transmon
    q.t1 = t1_us * 1000.0;
    q.t2 = t2_us * 1000.0;
    q.omega_max = 1.0;  // ~159 MHz peak Rabi at full drive amplitude
    q.drive_amp_noise = 4.0e-3;  // multiplicative drive noise (see header)
    return q;
}
}  // namespace

BackendConfig ibmq_montreal() {
    BackendConfig b;
    b.name = "ibmq_montreal";
    // Paper: QV 128, 27 qubits, average T1 = 86.76 us, qubit 0 at 4.911 GHz,
    // average 1Q gate error 4.268e-4.  We model qubits 0 and 1.  The T1/T2
    // assigned to qubit 0 exceed the 27-qubit device average (the paper's
    // 86.76 us): experiment qubits are picked for coherence, and the paper's
    // own IRB numbers (2e-4 for a 105 ns pulse) are only consistent with
    // qubit-0 coherence well above the average.
    b.device_average_t1_us = 86.76;
    b.qubits = {make_qubit(4.911, 250.0, 380.0), make_qubit(5.021, 84.0, 68.0)};
    b.qubits[0].readout_p10 = 0.016;
    b.qubits[0].readout_p01 = 0.031;
    b.qubits[1].readout_p10 = 0.020;
    b.qubits[1].readout_p01 = 0.036;
    return b;
}

BackendConfig ibmq_toronto() {
    BackendConfig b;
    b.name = "ibmq_toronto";
    // Paper: QV 32, 27 qubits, average T1 = 83.52 us, qubit 0 at 5.225 GHz,
    // average 1Q gate error 3.068e-4.  Qubit-0 coherence above the device
    // average for the same reason as ibmq_montreal.
    b.device_average_t1_us = 83.52;
    b.qubits = {make_qubit(5.225, 230.0, 340.0), make_qubit(5.113, 80.0, 64.0)};
    b.qubits[0].readout_p10 = 0.019;
    b.qubits[0].readout_p01 = 0.034;
    b.qubits[1].readout_p10 = 0.022;
    b.qubits[1].readout_p01 = 0.038;
    return b;
}

BackendConfig ibmq_boeblingen() {
    BackendConfig b;
    b.name = "ibmq_boeblingen";  // retired 20-qubit device (paper Fig. 8)
    b.qubits = {make_qubit(4.830, 70.0, 55.0), make_qubit(4.945, 68.0, 52.0)};
    b.qubits[0].readout_p10 = 0.030;
    b.qubits[0].readout_p01 = 0.055;
    b.qubits[1].readout_p10 = 0.035;
    b.qubits[1].readout_p01 = 0.060;
    // Older device: stronger spurious terms.
    b.cr.zz_static = 3.5e-4;
    b.cr.classical_crosstalk = 0.004;
    return b;
}

BackendConfig ibmq_rome() {
    BackendConfig b;
    b.name = "ibmq_rome";  // 5-qubit Falcon (paper Fig. 8)
    b.qubits = {make_qubit(4.969, 78.0, 62.0), make_qubit(4.774, 75.0, 60.0)};
    b.qubits[0].readout_p10 = 0.022;
    b.qubits[0].readout_p01 = 0.042;
    b.qubits[1].readout_p10 = 0.025;
    b.qubits[1].readout_p01 = 0.045;
    b.cr.zz_static = 2.5e-4;
    b.cr.classical_crosstalk = 0.003;
    return b;
}

BackendConfig nominal_model(const BackendConfig& device) {
    BackendConfig nominal = device;
    for (QubitParams& q : nominal.qubits) {
        q.detuning = 0.0;
        q.amp_scale = 1.0;
    }
    return nominal;
}

}  // namespace qoc::device
