/// \file fnv1a.hpp
/// \brief `qoc::util` -- the one FNV-1a implementation of the tree.
///
/// Three subsystems independently grew byte-wise FNV-1a loops (the 1Q
/// Clifford canonical-phase inverse lookup, the executor's amplitude ->
/// propagator cache key, and the service pulse-store key).  They are
/// consolidated here so the constants, byte order and word framing can never
/// drift apart: every digest in the tree that feeds a persisted artifact
/// (the pulse store's JSONL) or a cross-run cache key hashes bytes in
/// little-endian word order through this exact loop.
///
/// `Fnv1a` is an incremental hasher; the free functions cover the common
/// one-shot shapes.  All of it is constexpr-friendly and allocation-free.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qoc::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/// Incremental 64-bit FNV-1a.  Words are absorbed least-significant byte
/// first (little-endian framing), independent of host endianness.
class Fnv1a {
public:
    constexpr Fnv1a() = default;

    constexpr Fnv1a& byte(std::uint8_t b) noexcept {
        h_ ^= b;
        h_ *= kFnv1aPrime;
        return *this;
    }

    constexpr Fnv1a& u64(std::uint64_t w) noexcept {
        for (int b = 0; b < 8; ++b) byte(static_cast<std::uint8_t>((w >> (8 * b)) & 0xffu));
        return *this;
    }

    constexpr Fnv1a& i64(std::int64_t w) noexcept { return u64(static_cast<std::uint64_t>(w)); }

    /// Absorbs the exact bit pattern of a double (bitwise-equal inputs, and
    /// only those, hash equal -- the executor cache's contract).
    Fnv1a& f64_bits(double v) noexcept { return u64(std::bit_cast<std::uint64_t>(v)); }

    constexpr Fnv1a& bytes(std::string_view s) noexcept {
        for (const char c : s) byte(static_cast<std::uint8_t>(c));
        return *this;
    }

    constexpr std::uint64_t digest() const noexcept { return h_; }

private:
    std::uint64_t h_ = kFnv1aOffsetBasis;
};

/// One-shot digest of a byte string.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
    return Fnv1a{}.bytes(s).digest();
}

/// One-shot digest of a span of 64-bit words (little-endian framing).
constexpr std::uint64_t fnv1a_words(const std::uint64_t* words, std::size_t n) noexcept {
    Fnv1a h;
    for (std::size_t i = 0; i < n; ++i) h.u64(words[i]);
    return h.digest();
}

}  // namespace qoc::util
