/// \file report.hpp
/// \brief Console reporting helpers shared by the benchmark harness: aligned
///        tables, scientific-notation error formatting ("2.0(5)e-4" style),
///        ASCII pulse sketches and histogram bars.

#pragma once

#include <string>
#include <vector>

#include "device/executor.hpp"
#include "rb/rb.hpp"

namespace qoc::experiments {

/// Formats value +- error in the paper's compact style, e.g. 1.97e-4 with
/// error 4.9e-5 -> "1.97(49)e-04".
std::string format_error_rate(double value, double error);

/// Prints a titled table: header row plus rows, columns padded.
void print_table(const std::string& title, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Prints an RB decay curve (length, survival, sem, fit value per point).
void print_rb_curve(const std::string& label, const rb::RbCurve& curve);

/// Prints a shot histogram as percentage bars.
void print_histogram(const std::string& label, const device::Counts& counts);

/// Prints an ASCII sketch of a pulse envelope: one line per control with
/// a downsampled bar rendering plus min/max annotations.
void print_pulse(const std::string& label, const std::vector<double>& samples,
                 std::size_t width = 64);

/// Prints a complex waveform (I and Q rows).
void print_waveform(const std::string& label,
                    const std::vector<std::complex<double>>& samples, std::size_t width = 64);

/// Prints the obs metrics registry: propagator-cache and Clifford-memo
/// hit/miss rates, superop matvec totals, gemm/gemv/LU counts and the expm
/// Pade-order histogram.  No-op unless metrics collection is enabled
/// (QOC_METRICS or obs::enable_metrics).
void print_metrics_summary();

}  // namespace qoc::experiments
