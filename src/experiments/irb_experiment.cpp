#include "experiments/irb_experiment.hpp"

#include <numbers>
#include <stdexcept>

#include "experiments/design_pipeline.hpp"
#include "quantum/gates.hpp"

namespace qoc::experiments {

namespace {
namespace g = quantum::gates;
using linalg::Mat;
}  // namespace

Mat ideal_1q_gate(const std::string& gate_name) {
    if (gate_name == "x") return g::x();
    if (gate_name == "y") return g::y();
    if (gate_name == "sx") return g::sx();
    if (gate_name == "h") return g::h();
    throw std::invalid_argument("irb_experiment: unsupported gate " + gate_name);
}

Mat default_gate_superop_1q(const PulseExecutor& device,
                            const pulse::InstructionScheduleMap& defaults,
                            const std::string& gate_name, std::size_t qubit) {
    if (defaults.has(gate_name, {qubit})) {
        return device.schedule_superop_1q(defaults.get(gate_name, {qubit}), qubit);
    }
    if (gate_name == "h") {
        // Hardware H: rz(pi/2) sx rz(pi/2) (virtual Z + one physical pulse).
        const Mat sx_super = device.schedule_superop_1q(defaults.get("sx", {qubit}), qubit);
        const Mat rz_super = device.rz_superop_1q(std::numbers::pi / 2.0);
        return rz_super * sx_super * rz_super;
    }
    if (gate_name == "y") {
        // Hardware Y: the X pulse followed by a virtual rz(pi) (Y = i Z X).
        const Mat x_super = device.schedule_superop_1q(defaults.get("x", {qubit}), qubit);
        return device.rz_superop_1q(std::numbers::pi) * x_super;
    }
    throw std::invalid_argument("irb_experiment: no default for gate " + gate_name);
}

GateComparison compare_1q_gate(const PulseExecutor& device,
                               const pulse::InstructionScheduleMap& defaults,
                               const std::string& gate_name, std::size_t qubit,
                               const pulse::Schedule& custom_schedule,
                               const rb::Clifford1Q& /*group*/, const rb::RbOptions& options) {
    // Thin wrapper over the batch pipeline.  The pipeline owns its own
    // Clifford group (identical by construction, so the `group` argument is
    // redundant) and shares one reference curve between the custom and
    // default IRB runs -- byte-identical to measuring it twice, since the
    // reference experiment is deterministic in (device, gates, options).
    DesignPipelineOptions po;
    po.rb = options;
    const DesignPipeline pipeline(device, defaults, po);
    return pipeline.characterize_1q(gate_name, qubit, custom_schedule);
}

GateComparison compare_cx_gate(const PulseExecutor& device,
                               const pulse::InstructionScheduleMap& defaults,
                               const pulse::Schedule& custom_schedule,
                               const rb::Clifford1Q& /*c1*/, const rb::Clifford2Q& /*c2*/,
                               const rb::RbOptions& options) {
    DesignPipelineOptions po;
    po.rb = options;
    const DesignPipeline pipeline(device, defaults, po);
    return pipeline.characterize_cx(custom_schedule);
}

device::Counts state_histogram_1q(const PulseExecutor& device,
                                  const pulse::InstructionScheduleMap& defaults,
                                  const std::string& gate_name, std::size_t qubit,
                                  const pulse::Schedule* custom_schedule, int shots,
                                  std::uint64_t seed) {
    pulse::QuantumCircuit qc(qubit + 1);
    if (custom_schedule != nullptr) {
        qc.add_calibration(gate_name, {qubit}, *custom_schedule);
    }
    qc.gate(gate_name, {qubit});
    qc.measure(qubit);
    return device::run_circuit_1q(device, qc, defaults, qubit, shots, seed);
}

device::Counts state_histogram_cx(const PulseExecutor& device,
                                  const pulse::InstructionScheduleMap& defaults,
                                  const pulse::Schedule* custom_cx, int shots,
                                  std::uint64_t seed) {
    pulse::QuantumCircuit qc(2);
    if (custom_cx != nullptr) {
        qc.add_calibration("cx", {0, 1}, *custom_cx);
    }
    qc.x(0).cx(0, 1).measure_all();
    return device::run_circuit_2q(device, qc, defaults, shots, seed);
}

}  // namespace qoc::experiments
