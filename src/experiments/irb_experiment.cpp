#include "experiments/irb_experiment.hpp"

#include <numbers>
#include <stdexcept>

#include "quantum/gates.hpp"

namespace qoc::experiments {

namespace {
namespace g = quantum::gates;
using linalg::Mat;

Mat ideal_1q(const std::string& gate_name) {
    if (gate_name == "x") return g::x();
    if (gate_name == "sx") return g::sx();
    if (gate_name == "h") return g::h();
    throw std::invalid_argument("irb_experiment: unsupported gate " + gate_name);
}
}  // namespace

Mat default_gate_superop_1q(const PulseExecutor& device,
                            const pulse::InstructionScheduleMap& defaults,
                            const std::string& gate_name, std::size_t qubit) {
    if (defaults.has(gate_name, {qubit})) {
        return device.schedule_superop_1q(defaults.get(gate_name, {qubit}), qubit);
    }
    if (gate_name == "h") {
        // Hardware H: rz(pi/2) sx rz(pi/2) (virtual Z + one physical pulse).
        const Mat sx_super = device.schedule_superop_1q(defaults.get("sx", {qubit}), qubit);
        const Mat rz_super = device.rz_superop_1q(std::numbers::pi / 2.0);
        return rz_super * sx_super * rz_super;
    }
    throw std::invalid_argument("irb_experiment: no default for gate " + gate_name);
}

GateComparison compare_1q_gate(const PulseExecutor& device,
                               const pulse::InstructionScheduleMap& defaults,
                               const std::string& gate_name, std::size_t qubit,
                               const pulse::Schedule& custom_schedule,
                               const rb::Clifford1Q& group, const rb::RbOptions& options) {
    const rb::GateSet1Q gates(device, defaults, qubit, group);
    const std::size_t cliff_index = group.find(ideal_1q(gate_name));

    const Mat custom_super = device.schedule_superop_1q(custom_schedule, qubit);
    const Mat default_super = default_gate_superop_1q(device, defaults, gate_name, qubit);

    GateComparison cmp;
    cmp.gate = gate_name;
    cmp.custom = rb::run_irb_1q(device, gates, qubit, custom_super, cliff_index, options);
    cmp.standard = rb::run_irb_1q(device, gates, qubit, default_super, cliff_index, options);
    if (cmp.standard.gate_error > 0.0) {
        cmp.improvement_percent =
            100.0 * (cmp.standard.gate_error - cmp.custom.gate_error) / cmp.standard.gate_error;
    }
    return cmp;
}

GateComparison compare_cx_gate(const PulseExecutor& device,
                               const pulse::InstructionScheduleMap& defaults,
                               const pulse::Schedule& custom_schedule,
                               const rb::Clifford1Q& /*c1*/, const rb::Clifford2Q& c2,
                               const rb::RbOptions& options) {
    const rb::GateSet2Q gates(device, defaults, c2);
    const std::size_t cliff_index = c2.find(g::cx());

    const Mat custom_super = device.schedule_superop_2q(custom_schedule);
    const Mat default_super = device.schedule_superop_2q(defaults.get("cx", {0, 1}));

    GateComparison cmp;
    cmp.gate = "cx";
    cmp.custom = rb::run_irb_2q(device, gates, custom_super, cliff_index, options);
    cmp.standard = rb::run_irb_2q(device, gates, default_super, cliff_index, options);
    if (cmp.standard.gate_error > 0.0) {
        cmp.improvement_percent =
            100.0 * (cmp.standard.gate_error - cmp.custom.gate_error) / cmp.standard.gate_error;
    }
    return cmp;
}

device::Counts state_histogram_1q(const PulseExecutor& device,
                                  const pulse::InstructionScheduleMap& defaults,
                                  const std::string& gate_name, std::size_t qubit,
                                  const pulse::Schedule* custom_schedule, int shots,
                                  std::uint64_t seed) {
    pulse::QuantumCircuit qc(qubit + 1);
    if (custom_schedule != nullptr) {
        qc.add_calibration(gate_name, {qubit}, *custom_schedule);
    }
    qc.gate(gate_name, {qubit});
    qc.measure(qubit);
    return device::run_circuit_1q(device, qc, defaults, qubit, shots, seed);
}

device::Counts state_histogram_cx(const PulseExecutor& device,
                                  const pulse::InstructionScheduleMap& defaults,
                                  const pulse::Schedule* custom_cx, int shots,
                                  std::uint64_t seed) {
    pulse::QuantumCircuit qc(2);
    if (custom_cx != nullptr) {
        qc.add_calibration("cx", {0, 1}, *custom_cx);
    }
    qc.x(0).cx(0, 1).measure_all();
    return device::run_circuit_2q(device, qc, defaults, shots, seed);
}

}  // namespace qoc::experiments
