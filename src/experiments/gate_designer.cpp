#include "experiments/gate_designer.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "control/pulse_shapes.hpp"
#include "linalg/kron.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"

namespace qoc::experiments {

namespace {
using control::ControlAmplitudes;
using quantum::drive_x;
using quantum::drive_y;
}  // namespace

pulse::Schedule amps_to_schedule(const ControlAmplitudes& amps, std::size_t ctrl_i,
                                 std::size_t ctrl_q, std::size_t duration_dt,
                                 const pulse::Channel& channel, const std::string& name) {
    const std::size_t n_ts = amps.size();
    std::vector<double> i_slots(n_ts, 0.0), q_slots(n_ts, 0.0);
    for (std::size_t k = 0; k < n_ts; ++k) {
        i_slots[k] = amps[k].at(ctrl_i);
        if (ctrl_q != SIZE_MAX) q_slots[k] = amps[k].at(ctrl_q);
    }
    const auto i_samples = control::resample_zoh(i_slots, duration_dt);
    const auto q_samples = control::resample_zoh(q_slots, duration_dt);
    pulse::Schedule sched(name);
    sched.insert(0, pulse::Play{pulse::iq_waveform(i_samples, q_samples, name, /*clip=*/true),
                                channel});
    return sched;
}

DesignedGate design_1q_gate(const BackendConfig& nominal, std::size_t qubit,
                            const std::string& gate_name, const GateDesignSpec& spec) {
    const auto& q = nominal.qubit(qubit);
    const double evo_time = static_cast<double>(spec.duration_dt) * nominal.dt;
    const double half_omega = 0.5 * q.omega_max;

    control::PulseOptimSpec ps;
    ps.n_timeslots = spec.n_timeslots;
    ps.evo_time = evo_time;
    ps.initial_pulse = spec.seed;
    ps.random_seed = spec.random_seed;
    ps.max_iterations = spec.max_iterations;
    ps.target_fid_err = spec.target_fid_err;
    // Hardware amplitude constraint (paper Section 3.1: amplitudes within
    // +-1); with both quadratures in play the per-quadrature box must fit
    // inside the unit disc.
    const double bound =
        std::min(spec.amp_bound, spec.use_y_control ? 1.0 / std::sqrt(2.0) : 1.0);
    ps.amp_lower = -bound;
    ps.amp_upper = bound;
    // Area-matched seed: scale the envelope so its rotation area equals the
    // target angle.  GRAPE then starts near the physical solution, which
    // both guarantees convergence and keeps the pulse energy minimal.
    const double target_angle =
        2.0 * std::acos(std::min(1.0, 0.5 * std::abs(spec.target.trace())));
    const std::vector<double> env = control::gaussian_pulse(spec.n_timeslots);
    const double env_area =
        control::pulse_area(env, evo_time / static_cast<double>(spec.n_timeslots));
    const double area_scale = target_angle / (q.omega_max * env_area);
    ps.initial_scale = std::min({spec.initial_scale, 0.9 * bound, area_scale});
    ps.energy_penalty = spec.energy_penalty;

    switch (spec.model) {
        case DesignModel::kTwoLevelClosed:
        case DesignModel::kTwoLevelOpen: {
            ps.h_drift = Mat(2, 2);  // rotating frame at nominal frequency
            ps.h_ctrls = {half_omega * drive_x(2)};
            if (spec.use_y_control) ps.h_ctrls.push_back(half_omega * drive_y(2));
            ps.u_target = spec.target;
            if (spec.model == DesignModel::kTwoLevelOpen) {
                // T1 decay channel (the paper's decoherence superoperator
                // L1 = sqrt(gamma1) sigma_-; dephasing from the reported T2).
                ps.collapse_ops.push_back(std::sqrt(1.0 / q.t1) * quantum::sigma_minus());
                const double gphi = std::max(0.0, 1.0 / q.t2 - 0.5 / q.t1);
                if (gphi > 0.0) {
                    ps.collapse_ops.push_back(std::sqrt(gphi / 2.0) * quantum::sigma_z());
                }
            }
            break;
        }
        case DesignModel::kThreeLevelClosed: {
            ps.h_drift = quantum::duffing_drift(3, 0.0, q.anharmonicity);
            ps.h_ctrls = {half_omega * drive_x(3)};
            if (spec.use_y_control) ps.h_ctrls.push_back(half_omega * drive_y(3));
            ps.u_target = spec.target;
            ps.subspace_isometry = quantum::qubit_isometry(3);
            break;
        }
        case DesignModel::kThreeLevelOpen: {
            ps.h_drift = quantum::duffing_drift(3, 0.0, q.anharmonicity);
            ps.h_ctrls = {half_omega * drive_x(3)};
            if (spec.use_y_control) ps.h_ctrls.push_back(half_omega * drive_y(3));
            // TRACEDIFF needs a full-space target with physically reachable
            // sector phases: the SU(2) representative of the gate on the
            // qubit subspace (a resonant drive generates det = +1 rotations,
            // e.g. RX(pi) = -iX rather than X), and on the leakage level the
            // free anharmonic phase e^{-i alpha T} it accumulates anyway.
            const linalg::cplx det2 =
                spec.target(0, 0) * spec.target(1, 1) - spec.target(0, 1) * spec.target(1, 0);
            const linalg::cplx su_phase = std::sqrt(det2);
            Mat target3 = Mat::identity(3);
            target3.set_block(0, 0, (1.0 / su_phase) * spec.target);
            target3(2, 2) = std::exp(linalg::cplx{0.0, -q.anharmonicity * evo_time});
            ps.u_target = target3;
            ps.collapse_ops.push_back(std::sqrt(1.0 / q.t1) * quantum::annihilation(3));
            const double gphi = std::max(0.0, 1.0 / q.t2 - 0.5 / q.t1);
            if (gphi > 0.0) {
                ps.collapse_ops.push_back(std::sqrt(2.0 * gphi) * quantum::number_op(3));
            }
            break;
        }
    }

    DesignedGate out;
    out.gate_name = gate_name;
    out.duration_dt = spec.duration_dt;
    out.optim = control::pulse_optim(ps);
    out.model_fid_err = out.optim.final_fid_err;
    const std::size_t ctrl_q = spec.use_y_control ? 1 : SIZE_MAX;
    out.schedule = amps_to_schedule(out.optim.final_amps, 0, ctrl_q, spec.duration_dt,
                                    pulse::drive_channel(qubit), gate_name + "_optimized");
    return out;
}

DesignedCx design_cx_gate(const BackendConfig& nominal, const CxDesignSpec& spec) {
    using quantum::op_on_qubit;
    using quantum::sigma_x;
    using quantum::sigma_y;
    using quantum::sigma_z;
    namespace g = quantum::gates;

    const double evo_time = static_cast<double>(spec.duration_dt) * nominal.dt;
    const auto& cr = nominal.cr;

    control::PulseOptimSpec ps;
    ps.n_timeslots = spec.n_timeslots;
    ps.evo_time = evo_time;
    ps.initial_pulse = spec.seed;
    ps.initial_scale = spec.initial_scale;
    ps.random_seed = spec.random_seed;
    ps.max_iterations = spec.max_iterations;
    ps.target_fid_err = spec.target_fid_err;
    const double bound = std::min(spec.amp_bound, 1.0 / std::sqrt(2.0));
    ps.amp_lower = -bound;
    ps.amp_upper = bound;
    ps.energy_penalty = spec.energy_penalty;
    ps.u_target = g::cx();

    // Drift: static ZZ (number-number form, matching the executor).
    const Mat n_op{{0.0, 0.0}, {0.0, 1.0}};
    ps.h_drift = cr.zz_static * (op_on_qubit(n_op, 0, 2) * op_on_qubit(n_op, 1, 2));
    if (spec.idealized_controls) {
        // The paper's Eq. 3 keeps the qubit Z terms in the CR drift; without
        // them the {XI, IX, ZX} control algebra cannot synthesize CX at all.
        ps.h_drift += (0.5 * 0.125) * op_on_qubit(quantum::sigma_z(), 0, 2) +
                      (0.5 * 0.100) * op_on_qubit(quantum::sigma_z(), 1, 2);
    }

    const double w0 = 0.5 * nominal.qubit(0).omega_max;
    const double w1 = 0.5 * nominal.qubit(1).omega_max;
    const Mat zx = op_on_qubit(sigma_z(), 0, 2) * op_on_qubit(sigma_x(), 1, 2);
    const Mat zy = op_on_qubit(sigma_z(), 0, 2) * op_on_qubit(sigma_y(), 1, 2);

    if (spec.idealized_controls) {
        // The paper's Eq.-3 reading: XI, IX, ZX as independent control knobs.
        ps.h_ctrls = {w0 * op_on_qubit(sigma_x(), 0, 2), w1 * op_on_qubit(sigma_x(), 1, 2),
                      0.5 * cr.zx_rate * zx};
    } else {
        // Channel-faithful and energy-frugal: drive only U0 (the CR channel,
        // with its ZX + IX + crosstalk mixing) and D1 (target locals).  The
        // control-qubit local rotation that completes CNOT is virtual:
        //   CX = ZX90 . (RZ(-pi/2) (x) RX(-pi/2)),
        // so the pulse target is M = ZX90 . (I (x) RX(-pi/2)) and the
        // schedule carries a ShiftPhase(+pi/2) on D0 for the RZ(-pi/2).
        ps.h_ctrls = {
            w1 * op_on_qubit(sigma_x(), 1, 2),
            w1 * op_on_qubit(sigma_y(), 1, 2),
            0.5 * (cr.zx_rate * zx + cr.ix_rate * op_on_qubit(sigma_x(), 1, 2) +
                   cr.classical_crosstalk * op_on_qubit(sigma_x(), 0, 2)),
            0.5 * (cr.zx_rate * zy + cr.ix_rate * op_on_qubit(sigma_y(), 1, 2) +
                   cr.classical_crosstalk * op_on_qubit(sigma_y(), 0, 2)),
        };
        ps.u_target = g::zx90() * linalg::kron(Mat::identity(2),
                                               g::rx(-std::numbers::pi / 2.0));
        // The target drive D1 only needs small local rotations; capping it
        // tightly keeps the optimizer out of high-power basins it would
        // otherwise use for weak commutator-level crosstalk cancellation.
        const double d1_bound = 0.06;
        ps.amp_lower_per_ctrl = {-d1_bound, -d1_bound, -bound, -bound};
        ps.amp_upper_per_ctrl = {d1_bound, d1_bound, bound, bound};

        // Physically structured seed: an area-matched CR envelope on U0
        // (half-angle pi/4 of ZX) and a small area-matched RX(-pi/2) on D1;
        // quadratures start at zero.  Seeding every control with the same
        // big envelope strands the optimizer in a high-power basin.
        std::vector<double> env;
        switch (spec.seed) {
            case control::InitialPulseType::kSine:
                env = control::sine_pulse(spec.n_timeslots);
                break;
            case control::InitialPulseType::kGaussian:
                env = control::gaussian_pulse(spec.n_timeslots);
                break;
            default:
                env = control::gaussian_square_pulse(spec.n_timeslots);
                break;
        }
        const double slot_dt = evo_time / static_cast<double>(spec.n_timeslots);
        const double env_area = control::pulse_area(env, slot_dt);
        const double u0_amp = (std::numbers::pi / 4.0) / (0.5 * cr.zx_rate * env_area);
        const double d1_amp = (-std::numbers::pi / 4.0) / (0.5 * w1 * env_area);
        control::ControlAmplitudes seed_amps(spec.n_timeslots, std::vector<double>(4, 0.0));
        for (std::size_t k = 0; k < spec.n_timeslots; ++k) {
            seed_amps[k][0] = d1_amp * env[k];  // D1 I
            seed_amps[k][2] = u0_amp * env[k];  // U0 I
        }
        ps.explicit_initial_amps = std::move(seed_amps);
    }

    DesignedCx out;
    out.duration_dt = spec.duration_dt;
    out.optim = control::pulse_optim(ps);
    out.model_fid_err = out.optim.final_fid_err;

    pulse::Schedule sched("cx_optimized");
    if (spec.idealized_controls) {
        // Map XI -> D0, IX -> D1, ZX -> U0 (the hardware approximation the
        // paper had to live with; the U0 channel also produces IX/XI, which
        // is part of why its custom CX barely improved).
        auto d0 = amps_to_schedule(out.optim.final_amps, 0, SIZE_MAX, spec.duration_dt,
                                   pulse::drive_channel(0), "cx_d0");
        auto d1 = amps_to_schedule(out.optim.final_amps, 1, SIZE_MAX, spec.duration_dt,
                                   pulse::drive_channel(1), "cx_d1");
        auto u0 = amps_to_schedule(out.optim.final_amps, 2, SIZE_MAX, spec.duration_dt,
                                   pulse::control_channel(0), "cx_u0");
        for (const auto& [t, inst] : d0.instructions()) sched.insert(t, inst);
        for (const auto& [t, inst] : d1.instructions()) sched.insert(t, inst);
        for (const auto& [t, inst] : u0.instructions()) sched.insert(t, inst);
    } else {
        sched.insert(0, pulse::ShiftPhase{std::numbers::pi / 2.0, pulse::drive_channel(0)});
        auto d1 = amps_to_schedule(out.optim.final_amps, 0, 1, spec.duration_dt,
                                   pulse::drive_channel(1), "cx_d1");
        auto u0 = amps_to_schedule(out.optim.final_amps, 2, 3, spec.duration_dt,
                                   pulse::control_channel(0), "cx_u0");
        for (const auto& [t, inst] : d1.instructions()) sched.insert(t, inst);
        for (const auto& [t, inst] : u0.instructions()) sched.insert(t, inst);
    }
    out.schedule = std::move(sched);
    return out;
}

}  // namespace qoc::experiments
