/// \file gate_designer.hpp
/// \brief End-to-end pulse design for the paper's gates: run GRAPE /
///        pulse_optim against the *nominal* model of a backend and cast the
///        optimized amplitudes into custom calibration schedules that the
///        device executor (the IBM-Q stand-in) can run.
///
/// This is the paper's workflow: "implement the transmon qubit Hamiltonian
/// ..., import the frequencies, decoherence from the Qiskit backend",
/// optimize in QuTiP, then build a pulse gate via qiskit-pulse and swap it
/// for the default in the circuit.

#pragma once

#include <cstdint>

#include "control/pulseoptim.hpp"
#include "device/backend_config.hpp"
#include "pulse/schedule.hpp"

namespace qoc::experiments {

using device::BackendConfig;
using linalg::Mat;

/// Which physical model the optimizer assumes for a single qubit.  The
/// paper uses the Duffing-oscillator Hamiltonian; the three-level models are
/// therefore the faithful ones.  The two-level variants are kept for the
/// model-mismatch ablation: pulses designed against them acquire a large
/// AC-Stark phase error on the (three-level) device.
enum class DesignModel {
    kTwoLevelClosed,    ///< Pauli model, no decoherence (ablation)
    kTwoLevelOpen,      ///< Pauli model + T1 collapse (ablation)
    kThreeLevelClosed,  ///< Duffing transmon, subspace fidelity (leakage aware)
    kThreeLevelOpen,    ///< Duffing transmon + T1/T2 Lindblad (paper's X setup)
};

struct GateDesignSpec {
    Mat target;                       ///< 2x2 target unitary
    std::size_t duration_dt = 480;    ///< total pulse length in device dt
    std::size_t n_timeslots = 64;     ///< GRAPE slots (resampled onto dt grid)
    bool use_y_control = true;        ///< paper: X+Y for X/H, X only for sqrt(X)
    DesignModel model = DesignModel::kThreeLevelOpen;
    control::InitialPulseType seed = control::InitialPulseType::kDrag;
    double initial_scale = 0.2;
    /// Per-quadrature amplitude cap.  The hardware constraint is
    /// |I + iQ| <= 1, so two-control designs are additionally capped at
    /// 1/sqrt(2) per quadrature; keeping the default well below that also
    /// steers the optimizer away from fast, leakage-prone solutions the
    /// two-level design model cannot see.
    double amp_bound = 0.15;
    /// Energy regularizer weight (GrapeProblem::energy_penalty): favors the
    /// low-amplitude solutions the noisy drive chain rewards.
    double energy_penalty = 0.02;
    std::uint64_t random_seed = 99;
    int max_iterations = 400;
    double target_fid_err = 1e-9;
};

struct DesignedGate {
    std::string gate_name;
    pulse::Schedule schedule;          ///< custom calibration (drive channel)
    control::PulseOptimResult optim;   ///< full optimizer output
    double model_fid_err = 1.0;        ///< final infidelity on the design model
    std::size_t duration_dt = 0;
};

/// Designs a single-qubit gate pulse for `qubit` of the backend's nominal
/// model and returns the calibration schedule on that qubit's drive channel.
DesignedGate design_1q_gate(const BackendConfig& nominal, std::size_t qubit,
                            const std::string& gate_name, const GateDesignSpec& spec);

struct CxDesignSpec {
    std::size_t duration_dt = 960;  ///< ZX90 at zx_rate 0.03 needs >~170 ns
    std::size_t n_timeslots = 48;
    control::InitialPulseType seed = control::InitialPulseType::kGaussianSquare;
    double initial_scale = 0.3;
    double amp_bound = 0.55;  ///< per quadrature; capped at 1/sqrt(2)
    double energy_penalty = 0.05;  ///< see GrapeProblem::energy_penalty
    std::uint64_t random_seed = 7;
    int max_iterations = 600;
    double target_fid_err = 1e-8;
    /// When true, optimize the paper's idealized three-term control set
    /// (XI, IX, ZX as independent knobs); otherwise the channel-faithful set
    /// (D0, D1, U0 with the device's CR mixing).
    bool idealized_controls = false;
};

struct DesignedCx {
    pulse::Schedule schedule;          ///< D0 + D1 + U0 calibration
    control::PulseOptimResult optim;
    double model_fid_err = 1.0;
    std::size_t duration_dt = 0;
};

/// Designs a CX pulse against the nominal effective-CR model (paper Eq. 3).
DesignedCx design_cx_gate(const BackendConfig& nominal, const CxDesignSpec& spec);

/// Converts two real PWC control streams (I on `ctrl_i`, Q on `ctrl_q`) of
/// the optimizer output into a dt-sampled waveform schedule on `channel`.
/// Pass SIZE_MAX for `ctrl_q` when there is no quadrature control.
pulse::Schedule amps_to_schedule(const control::ControlAmplitudes& amps, std::size_t ctrl_i,
                                 std::size_t ctrl_q, std::size_t duration_dt,
                                 const pulse::Channel& channel, const std::string& name);

}  // namespace qoc::experiments
