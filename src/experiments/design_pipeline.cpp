#include "experiments/design_pipeline.hpp"

#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "quantum/gates.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::experiments {

namespace g = quantum::gates;
using linalg::Mat;

struct DesignPipeline::QubitCtx {
    std::once_flag once;
    std::optional<rb::GateSet1Q> gates;
    rb::RbCurve reference;
};

struct DesignPipeline::CxCtx {
    std::once_flag once;
    std::optional<rb::Clifford2Q> group;
    std::optional<rb::GateSet2Q> gates;
    rb::RbCurve reference;
};

/// Shared lazily-built context bundle (see the header).  Slots are created
/// under the mutex; the expensive fill runs under the per-slot once_flag, so
/// pipelines sharing a bundle also share the fill work.
class PipelineContexts {
public:
    DesignPipeline::QubitCtx& qubit_slot(std::size_t qubit) {
        std::lock_guard<std::mutex> lk(mu_);
        auto& slot = qubits_[qubit];
        if (!slot) slot = std::make_unique<DesignPipeline::QubitCtx>();
        return *slot;
    }

    DesignPipeline::CxCtx& cx_slot() {
        std::lock_guard<std::mutex> lk(mu_);
        if (!cx_) cx_ = std::make_unique<DesignPipeline::CxCtx>();
        return *cx_;
    }

private:
    std::mutex mu_;
    std::map<std::size_t, std::unique_ptr<DesignPipeline::QubitCtx>> qubits_;
    std::unique_ptr<DesignPipeline::CxCtx> cx_;
};

std::shared_ptr<PipelineContexts> DesignPipeline::make_contexts() {
    return std::make_shared<PipelineContexts>();
}

DesignPipeline::DesignPipeline(const device::BackendConfig& device,
                               DesignPipelineOptions options)
    : options_(std::move(options)),
      design_model_(device::nominal_model(device)),
      owned_exec_(std::make_unique<device::PulseExecutor>(device)),
      ctxs_(make_contexts()) {
    exec_ = owned_exec_.get();
    if (options_.characterize) {
        owned_defaults_ = device::build_default_gates(*exec_);
    }
    defaults_ = &owned_defaults_;
}

DesignPipeline::DesignPipeline(const device::PulseExecutor& exec,
                               const pulse::InstructionScheduleMap& defaults,
                               DesignPipelineOptions options)
    : DesignPipeline(exec, defaults, nullptr, std::move(options)) {}

DesignPipeline::DesignPipeline(const device::PulseExecutor& exec,
                               const pulse::InstructionScheduleMap& defaults,
                               std::shared_ptr<PipelineContexts> contexts,
                               DesignPipelineOptions options)
    : options_(std::move(options)),
      design_model_(device::nominal_model(exec.config())),
      exec_(&exec),
      defaults_(&defaults),
      ctxs_(contexts ? std::move(contexts) : make_contexts()) {}

DesignPipeline::~DesignPipeline() = default;

DesignPipeline::QubitCtx& DesignPipeline::qubit_ctx(std::size_t qubit) const {
    QubitCtx* ctx = &ctxs_->qubit_slot(qubit);
    std::call_once(ctx->once, [&] {
        obs::Span span("pipeline.reference");
        ctx->gates.emplace(*exec_, *defaults_, qubit, group1q_);
        ctx->reference = rb::run_rb_1q(*exec_, *ctx->gates, qubit, options_.rb);
    });
    return *ctx;
}

DesignPipeline::CxCtx& DesignPipeline::cx_ctx() const {
    CxCtx* ctx = &ctxs_->cx_slot();
    std::call_once(ctx->once, [&] {
        obs::Span span("pipeline.reference");
        ctx->group.emplace(group1q_);
        ctx->gates.emplace(*exec_, *defaults_, *ctx->group);
        ctx->reference = rb::run_rb_2q(*exec_, *ctx->gates, options_.rb);
    });
    return *ctx;
}

GateComparison DesignPipeline::characterize_1q(const std::string& gate_name,
                                               std::size_t qubit,
                                               const pulse::Schedule& custom_schedule) const {
    obs::Span span("pipeline.characterize");
    obs::ScopedHistTimer wall(obs::Hist::kIrbWall);
    const QubitCtx& ctx = qubit_ctx(qubit);
    const std::size_t cliff_index = group1q_.find(ideal_1q_gate(gate_name));
    const Mat custom_super = exec_->schedule_superop_1q(custom_schedule, qubit);
    const Mat default_super = default_gate_superop_1q(*exec_, *defaults_, gate_name, qubit);

    GateComparison cmp;
    cmp.gate = gate_name;
    cmp.custom = rb::run_irb_1q_with_reference(*exec_, *ctx.gates, qubit, ctx.reference,
                                               custom_super, cliff_index, options_.rb);
    cmp.standard = rb::run_irb_1q_with_reference(*exec_, *ctx.gates, qubit, ctx.reference,
                                                 default_super, cliff_index, options_.rb);
    if (cmp.standard.gate_error > 0.0) {
        cmp.improvement_percent =
            100.0 * (cmp.standard.gate_error - cmp.custom.gate_error) / cmp.standard.gate_error;
    }
    return cmp;
}

rb::IrbResult DesignPipeline::irb_custom_1q(const std::string& gate_name, std::size_t qubit,
                                            const pulse::Schedule& custom_schedule) const {
    obs::Span span("pipeline.characterize");
    obs::ScopedHistTimer wall(obs::Hist::kIrbWall);
    const QubitCtx& ctx = qubit_ctx(qubit);
    const std::size_t cliff_index = group1q_.find(ideal_1q_gate(gate_name));
    const Mat custom_super = exec_->schedule_superop_1q(custom_schedule, qubit);
    return rb::run_irb_1q_with_reference(*exec_, *ctx.gates, qubit, ctx.reference,
                                         custom_super, cliff_index, options_.rb);
}

GateComparison DesignPipeline::characterize_cx(const pulse::Schedule& custom_schedule) const {
    obs::Span span("pipeline.characterize");
    obs::ScopedHistTimer wall(obs::Hist::kIrbWall);
    const CxCtx& ctx = cx_ctx();
    const std::size_t cliff_index = ctx.group->find(g::cx());
    const Mat custom_super = exec_->schedule_superop_2q(custom_schedule);
    const Mat default_super = exec_->schedule_superop_2q(defaults_->get("cx", {0, 1}));

    GateComparison cmp;
    cmp.gate = "cx";
    cmp.custom = rb::run_irb_2q_with_reference(*exec_, *ctx.gates, ctx.reference,
                                               custom_super, cliff_index, options_.rb);
    cmp.standard = rb::run_irb_2q_with_reference(*exec_, *ctx.gates, ctx.reference,
                                                 default_super, cliff_index, options_.rb);
    if (cmp.standard.gate_error > 0.0) {
        cmp.improvement_percent =
            100.0 * (cmp.standard.gate_error - cmp.custom.gate_error) / cmp.standard.gate_error;
    }
    return cmp;
}

PipelineResult DesignPipeline::run(const std::vector<GateJob1Q>& jobs,
                                   const std::vector<GateJobCx>& cx_jobs) const {
    obs::Span span("pipeline.run");
    auto& pool = runtime::TaskPool::global();

    PipelineResult out;
    out.gates.resize(jobs.size());
    out.cx_gates.resize(cx_jobs.size());

    // Stage 1: one design task per (job, seed, duration) candidate.  Every
    // candidate is independent, so they all go to the pool up front.
    std::vector<std::vector<runtime::Future<DesignedGate>>> futs(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const GateJob1Q& job = jobs[i];
        GateResult1Q& res = out.gates[i];
        res.gate_name = job.gate_name;
        res.qubit = job.qubit;
        const std::vector<std::uint64_t> seeds =
            job.seeds.empty() ? std::vector<std::uint64_t>{job.spec.random_seed} : job.seeds;
        const std::vector<std::size_t> durs =
            job.durations_dt.empty() ? std::vector<std::size_t>{job.spec.duration_dt}
                                     : job.durations_dt;
        for (const std::uint64_t seed : seeds) {
            for (const std::size_t dur : durs) {
                res.candidates.push_back(Candidate1Q{seed, dur, {}});
                futs[i].push_back(pool.submit([this, &job, seed, dur] {
                    obs::Span design_span("pipeline.design");
                    obs::ScopedHistTimer wall(obs::Hist::kDesignWall);
                    GateDesignSpec sp = job.spec;
                    sp.random_seed = seed;
                    sp.duration_dt = dur;
                    return design_1q_gate(design_model_, job.qubit, job.gate_name, sp);
                }));
            }
        }
    }
    std::vector<std::vector<runtime::Future<DesignedCx>>> cx_futs(cx_jobs.size());
    for (std::size_t i = 0; i < cx_jobs.size(); ++i) {
        const GateJobCx& job = cx_jobs[i];
        const std::vector<std::uint64_t> seeds =
            job.seeds.empty() ? std::vector<std::uint64_t>{job.spec.random_seed} : job.seeds;
        const std::vector<std::size_t> durs =
            job.durations_dt.empty() ? std::vector<std::size_t>{job.spec.duration_dt}
                                     : job.durations_dt;
        for (const std::uint64_t seed : seeds) {
            for (const std::size_t dur : durs) {
                out.cx_gates[i].candidates.push_back(CandidateCx{seed, dur, {}});
                cx_futs[i].push_back(pool.submit([this, &job, seed, dur] {
                    obs::Span design_span("pipeline.design");
                    obs::ScopedHistTimer wall(obs::Hist::kDesignWall);
                    CxDesignSpec sp = job.spec;
                    sp.random_seed = seed;
                    sp.duration_dt = dur;
                    return design_cx_gate(design_model_, sp);
                }));
            }
        }
    }

    // Stage 2: one chain task per gate.  A chain waits only on its own
    // candidates (helping, so it executes design work while it waits), picks
    // the winner and characterizes it against the shared per-qubit context.
    // Chains of different gates never synchronize with each other.
    runtime::TaskGroup chains(pool);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        chains.run([this, &job = jobs[i], &res = out.gates[i], &fs = futs[i]] {
            for (std::size_t c = 0; c < fs.size(); ++c) res.candidates[c].gate = fs[c].get();
            for (std::size_t c = 1; c < res.candidates.size(); ++c) {
                if (res.candidates[c].gate.model_fid_err <
                    res.candidates[res.best_index].gate.model_fid_err) {
                    res.best_index = c;
                }
            }
            if (options_.characterize && job.characterize) {
                res.comparison = characterize_1q(job.gate_name, job.qubit, res.best().schedule);
                res.characterized = true;
            }
        });
    }
    for (std::size_t i = 0; i < cx_jobs.size(); ++i) {
        chains.run([this, &job = cx_jobs[i], &res = out.cx_gates[i], &fs = cx_futs[i]] {
            for (std::size_t c = 0; c < fs.size(); ++c) res.candidates[c].gate = fs[c].get();
            for (std::size_t c = 1; c < res.candidates.size(); ++c) {
                if (res.candidates[c].gate.model_fid_err <
                    res.candidates[res.best_index].gate.model_fid_err) {
                    res.best_index = c;
                }
            }
            if (options_.characterize && job.characterize) {
                res.comparison = characterize_cx(res.best().schedule);
                res.characterized = true;
            }
        });
    }
    chains.wait();
    return out;
}

}  // namespace qoc::experiments
