/// \file irb_experiment.hpp
/// \brief The paper's characterization protocol packaged end-to-end:
///        interleaved randomized benchmarking of a custom pulse gate vs the
///        backend default, plus prepare-and-measure histograms.

#pragma once

#include <cstdint>
#include <string>

#include "device/calibration.hpp"
#include "rb/rb.hpp"

namespace qoc::experiments {

using device::PulseExecutor;

/// One row of the paper's Tables 1/2.
struct GateComparison {
    std::string gate;
    rb::IrbResult custom;     ///< IRB of the optimized-pulse gate
    rb::IrbResult standard;   ///< IRB of the default gate
    double improvement_percent = 0.0;  ///< (default - custom)/default * 100
};

/// Runs IRB for a custom single-qubit gate calibration against the default
/// implementation of the same gate.  `gate_name` must be "x", "sx" or "h".
/// The ideal action is looked up in the Clifford group (all three are
/// Cliffords).  H defaults to the rz-sx-rz decomposition when the backend
/// has no native H schedule, exactly like the hardware.
///
/// Thin wrapper over `DesignPipeline::characterize_1q` (the pipeline shares
/// one reference RB curve between the custom and default runs, which is
/// byte-identical to measuring it per run).  `group` is retained for source
/// compatibility; the pipeline's own group is identical by construction.
GateComparison compare_1q_gate(const PulseExecutor& device,
                               const pulse::InstructionScheduleMap& defaults,
                               const std::string& gate_name, std::size_t qubit,
                               const pulse::Schedule& custom_schedule,
                               const rb::Clifford1Q& group, const rb::RbOptions& options);

/// IRB comparison for CX (custom vs default schedule).  Thin wrapper over
/// `DesignPipeline::characterize_cx`; `c1`/`c2` retained for source
/// compatibility.
GateComparison compare_cx_gate(const PulseExecutor& device,
                               const pulse::InstructionScheduleMap& defaults,
                               const pulse::Schedule& custom_schedule,
                               const rb::Clifford1Q& c1, const rb::Clifford2Q& c2,
                               const rb::RbOptions& options);

/// Prepare-and-measure experiment: applies one gate (custom calibration or
/// default) to |0> and returns the shot histogram -- the paper's
/// probability-distribution panels.
device::Counts state_histogram_1q(const PulseExecutor& device,
                                  const pulse::InstructionScheduleMap& defaults,
                                  const std::string& gate_name, std::size_t qubit,
                                  const pulse::Schedule* custom_schedule, int shots,
                                  std::uint64_t seed);

/// Two-qubit version: runs x(0); cx(0,1) (expected |11>) and returns counts.
device::Counts state_histogram_cx(const PulseExecutor& device,
                                  const pulse::InstructionScheduleMap& defaults,
                                  const pulse::Schedule* custom_cx, int shots,
                                  std::uint64_t seed);

/// The superoperator of a default gate name on the device ("h" composed from
/// rz-sx-rz when uncalibrated), used to interleave defaults in IRB.
linalg::Mat default_gate_superop_1q(const PulseExecutor& device,
                                    const pulse::InstructionScheduleMap& defaults,
                                    const std::string& gate_name, std::size_t qubit);

/// Ideal unitary of a supported 1Q gate name ("x", "sx", "h"); throws
/// `std::invalid_argument` otherwise.
linalg::Mat ideal_1q_gate(const std::string& gate_name);

}  // namespace qoc::experiments
