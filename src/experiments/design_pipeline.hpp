/// \file design_pipeline.hpp
/// \brief Declarative batch gate design + IRB characterization on the
///        shared `qoc::runtime` task pool.
///
/// The per-call APIs (`design_1q_gate`, `compare_1q_gate`, ...) do one thing
/// each; a realistic calibration campaign designs several gates from several
/// random seeds and durations and then characterizes the winners.  Run
/// per-call, that workflow repeats work: every `run_irb_1q` call re-measures
/// a reference RB curve and rebuilds the per-qubit Clifford gate set, even
/// though both depend only on (device, defaults, qubit, RB options).
///
/// `DesignPipeline` turns the campaign into one task graph:
///
///   design(gate g, seed s, duration d)  -- one pool task per candidate
///        |                                 (independent across everything)
///        v
///   chain(g): pick best candidate -> IRB(custom) + IRB(default)
///                                    against the SHARED per-qubit
///                                    reference curve and gate set
///
/// Chains of different gates never synchronize with each other; a gate whose
/// designs finish early starts its IRB while other gates still optimize.
/// Shared state (gate set + reference curve per qubit, the 2Q group for CX)
/// is built exactly once via `std::call_once` from whichever chain needs it
/// first.  Determinism: every RB engine underneath draws per-sequence RNG
/// streams and reduces in index order, so results are bitwise independent of
/// the pool size and of chain completion order.
///
/// `compare_1q_gate` / `compare_cx_gate` are thin wrappers over
/// `characterize_1q` / `characterize_cx`; sharing the reference curve is
/// byte-identical to measuring it twice because the reference experiment is
/// fully deterministic in (executor, gate set, qubit, options).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "device/backend_config.hpp"
#include "device/calibration.hpp"
#include "experiments/gate_designer.hpp"
#include "experiments/irb_experiment.hpp"
#include "rb/rb.hpp"

namespace qoc::experiments {

/// Batch job for one single-qubit gate: design over the seed x duration
/// grid, keep the lowest-model-infidelity candidate, optionally IRB it
/// against the backend default.
struct GateJob1Q {
    std::string gate_name;      ///< "x", "y", "sx" or "h" (for characterization)
    std::size_t qubit = 0;
    GateDesignSpec spec;        ///< base spec; `target` must be set
    /// Optimizer seeds to try; empty means {spec.random_seed}.
    std::vector<std::uint64_t> seeds;
    /// Pulse durations to try; empty means {spec.duration_dt}.
    std::vector<std::size_t> durations_dt;
    bool characterize = true;   ///< run IRB custom-vs-default on the winner
};

/// Batch job for the CX gate (same grid semantics).
struct GateJobCx {
    CxDesignSpec spec;
    std::vector<std::uint64_t> seeds;
    std::vector<std::size_t> durations_dt;
    bool characterize = true;
};

/// One designed candidate of a job's grid.
struct Candidate1Q {
    std::uint64_t seed = 0;
    std::size_t duration_dt = 0;
    DesignedGate gate;
};

struct CandidateCx {
    std::uint64_t seed = 0;
    std::size_t duration_dt = 0;
    DesignedCx gate;
};

/// Everything the pipeline produced for one 1Q job.
struct GateResult1Q {
    std::string gate_name;
    std::size_t qubit = 0;
    std::vector<Candidate1Q> candidates;  ///< seed-major, duration-minor
    std::size_t best_index = 0;           ///< lowest model_fid_err
    bool characterized = false;
    GateComparison comparison;            ///< valid iff `characterized`

    const DesignedGate& best() const { return candidates.at(best_index).gate; }
};

struct GateResultCx {
    std::vector<CandidateCx> candidates;
    std::size_t best_index = 0;
    bool characterized = false;
    GateComparison comparison;

    const DesignedCx& best() const { return candidates.at(best_index).gate; }
};

struct DesignPipelineOptions {
    rb::RbOptions rb;           ///< RB protocol for every characterization
    /// Master switch: false skips all IRB (and, for the owning constructor,
    /// the default-gate calibration), leaving a pure design batch.
    bool characterize = true;
};

struct PipelineResult {
    std::vector<GateResult1Q> gates;   ///< one per job, in job order
    std::vector<GateResultCx> cx_gates;
};

/// Opaque bundle of the lazily-built shared per-qubit / 2Q contexts (gate
/// sets + reference RB curves).  A pipeline normally owns a private one; the
/// calibration service instead keeps one bundle per device snapshot and hands
/// it to every pipeline it builds for that snapshot, so repeated
/// pipeline-backed requests on the same snapshot never re-measure the
/// reference curves.  Sharing contract: a bundle may only be shared between
/// pipelines bound to the same (executor, defaults, RbOptions) triple -- the
/// contexts are deterministic functions of exactly that triple, which is why
/// sharing is byte-identical to rebuilding.
class PipelineContexts;

/// See the file comment.  A pipeline is bound to one device (executor +
/// default schedules); the design model is the nominal (drift-free) version
/// of that device's config, exactly what the per-call examples used.
class DesignPipeline {
public:
    /// Owning: builds the `PulseExecutor` for `device` and calibrates its
    /// default gates (skipped when `options.characterize` is false).
    explicit DesignPipeline(const device::BackendConfig& device,
                            DesignPipelineOptions options = {});

    /// Non-owning: characterize on an existing executor / schedule map
    /// (both must outlive the pipeline).
    DesignPipeline(const device::PulseExecutor& exec,
                   const pulse::InstructionScheduleMap& defaults,
                   DesignPipelineOptions options = {});

    /// Non-owning, with externally shared contexts (see `PipelineContexts`).
    /// `contexts` must have been created by `make_contexts()` and may be
    /// shared across any number of pipelines bound to the same executor,
    /// defaults and RB options; null falls back to a private bundle.
    DesignPipeline(const device::PulseExecutor& exec,
                   const pulse::InstructionScheduleMap& defaults,
                   std::shared_ptr<PipelineContexts> contexts,
                   DesignPipelineOptions options = {});

    /// A fresh (empty) context bundle for the shared-context constructor.
    static std::shared_ptr<PipelineContexts> make_contexts();

    /// The bundle this pipeline fills/reads (always non-null).
    const std::shared_ptr<PipelineContexts>& contexts() const { return ctxs_; }

    ~DesignPipeline();
    DesignPipeline(const DesignPipeline&) = delete;
    DesignPipeline& operator=(const DesignPipeline&) = delete;

    /// Runs the whole batch as one task graph on `TaskPool::global()` and
    /// blocks (helping) until it drains.  Results are bitwise independent
    /// of the pool size.
    PipelineResult run(const std::vector<GateJob1Q>& jobs,
                       const std::vector<GateJobCx>& cx_jobs = {}) const;

    /// IRB of an existing custom schedule against the backend default,
    /// using the pipeline's shared per-qubit gate set + reference curve.
    GateComparison characterize_1q(const std::string& gate_name, std::size_t qubit,
                                   const pulse::Schedule& custom_schedule) const;

    /// Custom-gate IRB only (no default comparison) against the shared
    /// reference -- the drift-study loop's primitive.
    rb::IrbResult irb_custom_1q(const std::string& gate_name, std::size_t qubit,
                                const pulse::Schedule& custom_schedule) const;

    /// CX analogue of `characterize_1q` (shared 2Q group, gate set and
    /// reference curve).
    GateComparison characterize_cx(const pulse::Schedule& custom_schedule) const;

    const device::PulseExecutor& executor() const { return *exec_; }
    const pulse::InstructionScheduleMap& defaults() const { return *defaults_; }
    const device::BackendConfig& design_model() const { return design_model_; }
    const DesignPipelineOptions& options() const { return options_; }

private:
    friend class PipelineContexts;

    struct QubitCtx;  ///< per-qubit shared gate set + reference RB curve
    struct CxCtx;     ///< shared 2Q group, gate set + reference RB curve

    QubitCtx& qubit_ctx(std::size_t qubit) const;
    CxCtx& cx_ctx() const;

    DesignPipelineOptions options_;
    device::BackendConfig design_model_;
    std::unique_ptr<device::PulseExecutor> owned_exec_;
    const device::PulseExecutor* exec_ = nullptr;
    pulse::InstructionScheduleMap owned_defaults_;
    const pulse::InstructionScheduleMap* defaults_ = nullptr;
    rb::Clifford1Q group1q_;

    std::shared_ptr<PipelineContexts> ctxs_;
};

}  // namespace qoc::experiments
