#include "experiments/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "obs/obs.hpp"

namespace qoc::experiments {

std::string format_error_rate(double value, double error) {
    if (value <= 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.2e", value);
        return buf;
    }
    const int exponent = static_cast<int>(std::floor(std::log10(value)));
    const double mantissa = value / std::pow(10.0, exponent);
    const double err_mantissa = error / std::pow(10.0, exponent);
    char buf[64];
    // Error in parentheses scaled to the last shown digits (two decimals).
    const int err_digits = static_cast<int>(std::round(err_mantissa * 100.0));
    std::snprintf(buf, sizeof(buf), "%.2f(%d)e%+03d", mantissa, err_digits, exponent);
    return buf;
}

void print_table(const std::string& title, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 3;

    std::cout << "\n== " << title << " ==\n";
    auto print_row = [&](const std::vector<std::string>& cells) {
        std::cout << "| ";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string cell = c < cells.size() ? cells[c] : "";
            std::cout << cell << std::string(widths[c] - cell.size(), ' ') << " | ";
        }
        std::cout << "\n";
    };
    print_row(header);
    std::cout << std::string(total + 1, '-') << "\n";
    for (const auto& row : rows) print_row(row);
}

void print_rb_curve(const std::string& label, const rb::RbCurve& curve) {
    std::cout << "\n-- " << label << " --\n";
    std::printf("   fit: %.4f * %.6f^m + %.4f   (alpha err %.1e)\n", curve.a, curve.alpha,
                curve.b, curve.alpha_err);
    std::printf("   EPC = %s\n", format_error_rate(curve.epc, curve.epc_err).c_str());
    for (const auto& pt : curve.points) {
        const double fit = curve.a * std::pow(curve.alpha, static_cast<double>(pt.length)) +
                           curve.b;
        std::printf("   m=%5zu  survival=%.4f +- %.4f   fit=%.4f\n", pt.length,
                    pt.mean_survival, pt.sem, fit);
    }
}

void print_histogram(const std::string& label, const device::Counts& counts) {
    std::cout << "\n-- " << label << " (" << counts.shots << " shots) --\n";
    for (const auto& [bits, n] : counts.histogram) {
        const double p = static_cast<double>(n) / std::max(1, counts.shots);
        const int bars = static_cast<int>(std::round(p * 50));
        std::printf("   |%s>  %6.2f%%  %s\n", bits.c_str(), 100.0 * p,
                    std::string(bars, '#').c_str());
    }
}

namespace {
void render_series(const std::vector<double>& samples, std::size_t width) {
    if (samples.empty()) return;
    double lo = samples[0], hi = samples[0];
    for (double v : samples) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const double span = std::max(hi - lo, 1e-12);
    const std::size_t n = std::min(width, samples.size());
    const char levels[] = " .:-=+*#%@";
    std::string line;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = i * samples.size() / n;
        const double norm = (samples[idx] - lo) / span;
        line += levels[static_cast<std::size_t>(std::round(norm * 9.0))];
    }
    std::printf("   [%+.3f, %+.3f]  %s\n", lo, hi, line.c_str());
}
}  // namespace

void print_pulse(const std::string& label, const std::vector<double>& samples,
                 std::size_t width) {
    std::cout << "   " << label << ":\n";
    render_series(samples, width);
}

void print_waveform(const std::string& label,
                    const std::vector<std::complex<double>>& samples, std::size_t width) {
    std::vector<double> i_part(samples.size()), q_part(samples.size());
    for (std::size_t k = 0; k < samples.size(); ++k) {
        i_part[k] = samples[k].real();
        q_part[k] = samples[k].imag();
    }
    std::cout << "   " << label << " (I then Q):\n";
    render_series(i_part, width);
    render_series(q_part, width);
}

void print_metrics_summary() {
    if (!obs::metrics_enabled()) return;
    using obs::Cnt;
    const auto v = [](Cnt c) { return obs::counter_value(c); };
    const auto rate = [](std::uint64_t hits, std::uint64_t misses) {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                      static_cast<double>(total);
    };

    std::cout << "\n== obs metrics summary ==\n";
    const std::uint64_t pc_h = v(Cnt::kPropCacheHits), pc_m = v(Cnt::kPropCacheMisses);
    std::printf("   prop cache     : %llu hits / %llu misses  (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(pc_h),
                static_cast<unsigned long long>(pc_m), rate(pc_h, pc_m));
    const std::uint64_t cm_h = v(Cnt::kCliffMemoHits), cm_m = v(Cnt::kCliffMemoMisses);
    std::printf("   clifford memo  : %llu hits / %llu misses  (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(cm_h),
                static_cast<unsigned long long>(cm_m), rate(cm_h, cm_m));
    std::printf("   superop applies: %llu\n",
                static_cast<unsigned long long>(v(Cnt::kSuperopApplies)));
    std::printf("   gemm / gemv / LU: %llu / %llu / %llu\n",
                static_cast<unsigned long long>(v(Cnt::kGemmCalls)),
                static_cast<unsigned long long>(v(Cnt::kGemvCalls)),
                static_cast<unsigned long long>(v(Cnt::kLuFactorizations)));
    std::printf("   expm pade order: 3:%llu 5:%llu 7:%llu 9:%llu 13:%llu spectral:%llu\n",
                static_cast<unsigned long long>(v(Cnt::kExpmPade3)),
                static_cast<unsigned long long>(v(Cnt::kExpmPade5)),
                static_cast<unsigned long long>(v(Cnt::kExpmPade7)),
                static_cast<unsigned long long>(v(Cnt::kExpmPade9)),
                static_cast<unsigned long long>(v(Cnt::kExpmPade13)),
                static_cast<unsigned long long>(v(Cnt::kExpmSpectral)));
}

}  // namespace qoc::experiments
