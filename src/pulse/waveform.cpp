#include "pulse/waveform.hpp"

#include <algorithm>
#include <stdexcept>

#include "control/pulse_shapes.hpp"

namespace qoc::pulse {

Waveform::Waveform(std::vector<std::complex<double>> samples, std::string name)
    : samples_(std::move(samples)), name_(std::move(name)) {
    if (samples_.empty()) throw std::invalid_argument("Waveform: empty sample list");
    for (const auto& s : samples_) {
        if (std::abs(s) > 1.0 + 1e-9) {
            throw std::invalid_argument("Waveform: |sample| exceeds the unit amplitude bound");
        }
    }
}

double Waveform::max_amp() const {
    double m = 0.0;
    for (const auto& s : samples_) m = std::max(m, std::abs(s));
    return m;
}

namespace {
Waveform from_envelope(const std::vector<double>& env, std::complex<double> amp,
                       std::string name) {
    std::vector<std::complex<double>> samples(env.size());
    for (std::size_t k = 0; k < env.size(); ++k) samples[k] = amp * env[k];
    return Waveform(std::move(samples), std::move(name));
}
}  // namespace

Waveform gaussian_waveform(std::size_t duration, std::complex<double> amp,
                           double sigma_fraction) {
    return from_envelope(control::gaussian_pulse(duration, sigma_fraction), amp, "gaussian");
}

Waveform drag_waveform(std::size_t duration, std::complex<double> amp, double beta,
                       double sigma_fraction) {
    const auto d = control::drag_pulse(duration, sigma_fraction, beta);
    std::vector<std::complex<double>> samples(duration);
    for (std::size_t k = 0; k < duration; ++k) {
        samples[k] = amp * std::complex<double>{d.in_phase[k], d.quadrature[k]};
    }
    return Waveform(std::move(samples), "drag");
}

Waveform gaussian_square_waveform(std::size_t duration, std::complex<double> amp,
                                  double width_fraction, double sigma_fraction) {
    return from_envelope(control::gaussian_square_pulse(duration, width_fraction, sigma_fraction),
                         amp, "gaussian_square");
}

Waveform sine_waveform(std::size_t duration, std::complex<double> amp) {
    return from_envelope(control::sine_pulse(duration), amp, "sine");
}

Waveform constant_waveform(std::size_t duration, std::complex<double> amp) {
    return from_envelope(control::square_pulse(duration), amp, "constant");
}

Waveform iq_waveform(const std::vector<double>& in_phase, const std::vector<double>& quadrature,
                     std::string name, bool clip) {
    if (in_phase.size() != quadrature.size()) {
        throw std::invalid_argument("iq_waveform: I/Q length mismatch");
    }
    std::vector<std::complex<double>> samples(in_phase.size());
    for (std::size_t k = 0; k < in_phase.size(); ++k) {
        std::complex<double> s{in_phase[k], quadrature[k]};
        if (clip && std::abs(s) > 1.0) s /= std::abs(s);
        samples[k] = s;
    }
    return Waveform(std::move(samples), std::move(name));
}

}  // namespace qoc::pulse
