/// \file waveform.hpp
/// \brief Sampled complex waveforms and the standard pulse-shape library
///        (drag, gaussian, gaussian_square, sine, constant), mirroring the
///        qiskit.pulse library the paper drives through OpenPulse.

#pragma once

#include <complex>
#include <string>
#include <vector>

namespace qoc::pulse {

/// A named, sampled complex envelope.  Samples are in device `dt` units and
/// must obey |sample| <= 1 (the hardware amplitude constraint the paper
/// imposes on its optimizer output).
class Waveform {
public:
    Waveform() = default;

    /// Throws `std::invalid_argument` when any |sample| > 1 + 1e-9 or the
    /// sample list is empty.
    Waveform(std::vector<std::complex<double>> samples, std::string name = "waveform");

    const std::vector<std::complex<double>>& samples() const noexcept { return samples_; }
    const std::string& name() const noexcept { return name_; }
    std::size_t duration() const noexcept { return samples_.size(); }  ///< in dt

    /// Peak |sample|.
    double max_amp() const;

private:
    std::vector<std::complex<double>> samples_;
    std::string name_ = "waveform";
};

/// Gaussian envelope with given amplitude (complex, for phase).
Waveform gaussian_waveform(std::size_t duration, std::complex<double> amp,
                           double sigma_fraction = 0.25);

/// DRAG: gaussian I with beta-scaled derivative on Q,
/// samples = amp * (g(t) + i beta dg(t)).
Waveform drag_waveform(std::size_t duration, std::complex<double> amp, double beta,
                       double sigma_fraction = 0.25);

/// Flat-top gaussian-square (the CR pulse shape of the paper's Fig. 9).
Waveform gaussian_square_waveform(std::size_t duration, std::complex<double> amp,
                                  double width_fraction = 0.6, double sigma_fraction = 0.1);

/// Half-period sine arch (the paper's Fig. 8 "SINE" shape).
Waveform sine_waveform(std::size_t duration, std::complex<double> amp);

/// Constant pulse.
Waveform constant_waveform(std::size_t duration, std::complex<double> amp);

/// Wraps optimizer output: I samples on the real part, Q on the imaginary.
/// Vectors must be equal length; values are clipped to the unit disc only if
/// `clip` is set, otherwise out-of-range samples throw.
Waveform iq_waveform(const std::vector<double>& in_phase, const std::vector<double>& quadrature,
                     std::string name = "optimized", bool clip = false);

}  // namespace qoc::pulse
