/// \file schedule.hpp
/// \brief Pulse schedules: time-ordered instructions on channels, with
///        sample resolution for the device executor.

#pragma once

#include <map>
#include <optional>
#include <variant>
#include <vector>

#include "pulse/channels.hpp"
#include "pulse/waveform.hpp"

namespace qoc::pulse {

/// Plays a waveform on a channel.
struct Play {
    Waveform waveform;
    Channel channel;
};

/// Virtual-Z frame change: multiplies all subsequent plays on the channel by
/// e^{i phase} (zero duration -- how IBM implements RZ).
struct ShiftPhase {
    double phase = 0.0;
    Channel channel;
};

/// Idle time on a channel.
struct Delay {
    std::size_t duration = 0;  ///< in dt
    Channel channel;
};

/// Readout trigger.
struct Acquire {
    std::size_t duration = 0;  ///< in dt
    Channel channel;           ///< acquire channel of the measured qubit
};

using Instruction = std::variant<Play, ShiftPhase, Delay, Acquire>;

/// Duration (dt) of an instruction.
std::size_t instruction_duration(const Instruction& inst);

/// Channel an instruction acts on.
Channel instruction_channel(const Instruction& inst);

/// A pulse program: instructions with explicit start times.
class Schedule {
public:
    Schedule() = default;
    explicit Schedule(std::string name) : name_(std::move(name)) {}

    const std::string& name() const noexcept { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Inserts an instruction at an absolute start time (dt).
    void insert(std::size_t t0, Instruction inst);

    /// Appends at the current end of the instruction's channel (the qiskit
    /// `schedule += inst` behaviour with channel alignment).
    void append(Instruction inst);

    /// Appends `other` so that it starts at this schedule's total duration
    /// (sequential composition, used to chain gate schedules).
    void append_schedule(const Schedule& other);

    /// All (t0, instruction) pairs sorted by start time.
    const std::vector<std::pair<std::size_t, Instruction>>& instructions() const {
        return instructions_;
    }

    /// End time (dt) of the last instruction on `ch`, 0 when unused.
    std::size_t channel_duration(const Channel& ch) const;

    /// End time over all channels.
    std::size_t total_duration() const;

    /// Channels referenced by the schedule.
    std::vector<Channel> channels() const;

    /// Resolves the complex drive samples seen by `ch` over [0, n_dt):
    /// Play samples with accumulated ShiftPhase frames applied; Delay and
    /// gaps produce zeros.  Throws `std::runtime_error` on overlapping plays.
    std::vector<std::complex<double>> channel_samples(const Channel& ch, std::size_t n_dt) const;

    /// Start times (dt) of Acquire instructions, per acquire channel.
    std::vector<std::pair<std::size_t, Channel>> acquires() const;

private:
    std::string name_ = "schedule";
    std::vector<std::pair<std::size_t, Instruction>> instructions_;
};

}  // namespace qoc::pulse
