/// \file instruction_map.hpp
/// \brief InstructionScheduleMap: gate-name + qubits -> pulse schedule.
///        Custom calibrations (the paper's optimized pulse gates) are added
///        here and take priority when circuits are lowered to schedules.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "pulse/schedule.hpp"

namespace qoc::pulse {

class InstructionScheduleMap {
public:
    /// Registers (or replaces) the schedule implementing `gate` on `qubits`.
    void add(const std::string& gate, const std::vector<std::size_t>& qubits, Schedule schedule);

    bool has(const std::string& gate, const std::vector<std::size_t>& qubits) const;

    /// Throws `std::out_of_range` when the entry is missing.
    const Schedule& get(const std::string& gate, const std::vector<std::size_t>& qubits) const;

    /// All registered (gate, qubits) keys, for introspection.
    std::vector<std::pair<std::string, std::vector<std::size_t>>> entries() const;

private:
    using Key = std::pair<std::string, std::vector<std::size_t>>;
    std::map<Key, Schedule> map_;
};

}  // namespace qoc::pulse
