#include "pulse/circuit.hpp"

#include <numbers>
#include <stdexcept>

namespace qoc::pulse {

QuantumCircuit& QuantumCircuit::gate(const std::string& name, std::vector<std::size_t> qubits,
                                     std::optional<double> param) {
    for (std::size_t q : qubits) {
        if (q >= n_qubits_) throw std::invalid_argument("QuantumCircuit: qubit out of range");
    }
    ops_.push_back(GateOp{name, std::move(qubits), param});
    return *this;
}

QuantumCircuit& QuantumCircuit::measure(std::size_t q) {
    if (q >= n_qubits_) throw std::invalid_argument("QuantumCircuit: qubit out of range");
    measurements_.push_back(MeasureOp{q});
    return *this;
}

QuantumCircuit& QuantumCircuit::measure_all() {
    for (std::size_t q = 0; q < n_qubits_; ++q) measure(q);
    return *this;
}

void QuantumCircuit::add_calibration(const std::string& gate_name,
                                     std::vector<std::size_t> qubits, Schedule schedule) {
    calibrations_.add(gate_name, qubits, std::move(schedule));
}

std::vector<Channel> FrameConfig::frame_channels(std::size_t qubit) const {
    std::vector<Channel> chans{drive_channel(qubit)};
    const auto it = extra_channels.find(qubit);
    if (it != extra_channels.end()) {
        chans.insert(chans.end(), it->second.begin(), it->second.end());
    }
    return chans;
}

Schedule circuit_to_schedule(const QuantumCircuit& circuit,
                             const InstructionScheduleMap& backend_defaults,
                             std::size_t measure_duration, const FrameConfig& frames) {
    Schedule out("circuit");

    // Gate-level sequencing: a gate waits for every channel associated with
    // its qubits (not only the channels its own schedule touches).
    auto append_aligned = [&](const Schedule& gate_sched, const std::vector<std::size_t>& qubits) {
        std::size_t t0 = 0;
        for (const Channel& ch : gate_sched.channels()) {
            t0 = std::max(t0, out.channel_duration(ch));
        }
        for (std::size_t q : qubits) {
            for (const Channel& ch : frames.frame_channels(q)) {
                t0 = std::max(t0, out.channel_duration(ch));
            }
        }
        for (const auto& [t, inst] : gate_sched.instructions()) {
            out.insert(t0 + t, inst);
        }
    };

    auto lower_gate = [&](const GateOp& op, auto&& lower_ref) -> void {
        if (op.name == "rz") {
            if (!op.param) throw std::runtime_error("circuit_to_schedule: rz without angle");
            Schedule sp("rz");
            for (const Channel& ch : frames.frame_channels(op.qubits[0])) {
                sp.insert(0, ShiftPhase{-*op.param, ch});
            }
            append_aligned(sp, op.qubits);
            return;
        }
        if (circuit.calibrations().has(op.name, op.qubits)) {
            append_aligned(circuit.calibrations().get(op.name, op.qubits), op.qubits);
            return;
        }
        if (backend_defaults.has(op.name, op.qubits)) {
            append_aligned(backend_defaults.get(op.name, op.qubits), op.qubits);
            return;
        }
        if (op.name == "h") {
            // IBM basis decomposition: H = RZ(pi/2) SX RZ(pi/2) (up to phase).
            lower_ref(GateOp{"rz", op.qubits, std::numbers::pi / 2.0}, lower_ref);
            lower_ref(GateOp{"sx", op.qubits, std::nullopt}, lower_ref);
            lower_ref(GateOp{"rz", op.qubits, std::numbers::pi / 2.0}, lower_ref);
            return;
        }
        throw std::runtime_error("circuit_to_schedule: no schedule for gate '" + op.name + "'");
    };

    for (const GateOp& op : circuit.ops()) lower_gate(op, lower_gate);

    if (!circuit.measurements().empty()) {
        const std::size_t t_meas = out.total_duration();
        for (const MeasureOp& m : circuit.measurements()) {
            out.insert(t_meas, Acquire{measure_duration, acquire_channel(m.qubit)});
        }
    }
    return out;
}

}  // namespace qoc::pulse
