#include "pulse/channels.hpp"

namespace qoc::pulse {

std::string Channel::label() const {
    const char* prefix = "?";
    switch (type) {
        case ChannelType::kDrive: prefix = "D"; break;
        case ChannelType::kControl: prefix = "U"; break;
        case ChannelType::kAcquire: prefix = "A"; break;
        case ChannelType::kMeasure: prefix = "M"; break;
    }
    // Append in place: GCC 12's -Wrestrict misfires on the operator+ chain
    // at -O3 (PR105651), and this tree builds with -Werror.
    std::string out(prefix);
    out += std::to_string(index);
    return out;
}

Channel drive_channel(std::size_t qubit) { return {ChannelType::kDrive, qubit}; }
Channel control_channel(std::size_t index) { return {ChannelType::kControl, index}; }
Channel acquire_channel(std::size_t qubit) { return {ChannelType::kAcquire, qubit}; }
Channel measure_channel(std::size_t qubit) { return {ChannelType::kMeasure, qubit}; }

}  // namespace qoc::pulse
