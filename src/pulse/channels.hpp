/// \file channels.hpp
/// \brief Pulse channels in the OpenPulse sense: drive, control (for
///        cross-resonance on multi-qubit gates), acquire and measure.

#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <string>

namespace qoc::pulse {

enum class ChannelType {
    kDrive,    ///< D<i>: microwave drive of qubit i at its frequency
    kControl,  ///< U<i>: cross-resonance drive (control qubit at target freq)
    kAcquire,  ///< A<i>: readout acquisition
    kMeasure,  ///< M<i>: measurement stimulus
};

/// A typed, indexed channel (e.g. DriveChannel(0) = "D0").
struct Channel {
    ChannelType type = ChannelType::kDrive;
    std::size_t index = 0;

    auto operator<=>(const Channel&) const = default;

    /// Qiskit-style label: D0, U1, A0, M0.
    std::string label() const;
};

Channel drive_channel(std::size_t qubit);
Channel control_channel(std::size_t index);
Channel acquire_channel(std::size_t qubit);
Channel measure_channel(std::size_t qubit);

}  // namespace qoc::pulse

template <>
struct std::hash<qoc::pulse::Channel> {
    std::size_t operator()(const qoc::pulse::Channel& c) const noexcept {
        return std::hash<std::size_t>{}(c.index * 4 + static_cast<std::size_t>(c.type));
    }
};
