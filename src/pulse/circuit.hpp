/// \file circuit.hpp
/// \brief Minimal gate-level circuit with per-circuit calibrations and a
///        lowering pass to pulse schedules ("transpiling" custom pulse gates
///        over the defaults, as the paper does in qiskit).

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pulse/instruction_map.hpp"

namespace qoc::pulse {

/// One gate application.  `param` carries the RZ angle for "rz".
struct GateOp {
    std::string name;
    std::vector<std::size_t> qubits;
    std::optional<double> param;
};

/// A measurement marker for a qubit.
struct MeasureOp {
    std::size_t qubit = 0;
};

class QuantumCircuit {
public:
    explicit QuantumCircuit(std::size_t n_qubits) : n_qubits_(n_qubits) {}

    std::size_t n_qubits() const noexcept { return n_qubits_; }

    QuantumCircuit& gate(const std::string& name, std::vector<std::size_t> qubits,
                         std::optional<double> param = std::nullopt);
    QuantumCircuit& x(std::size_t q) { return gate("x", {q}); }
    QuantumCircuit& sx(std::size_t q) { return gate("sx", {q}); }
    QuantumCircuit& h(std::size_t q) { return gate("h", {q}); }
    QuantumCircuit& rz(std::size_t q, double theta) { return gate("rz", {q}, theta); }
    QuantumCircuit& cx(std::size_t control, std::size_t target) {
        return gate("cx", {control, target});
    }
    QuantumCircuit& measure(std::size_t q);
    QuantumCircuit& measure_all();

    const std::vector<GateOp>& ops() const noexcept { return ops_; }
    const std::vector<MeasureOp>& measurements() const noexcept { return measurements_; }

    /// Attaches a custom calibration for a gate on specific qubits -- it
    /// shadows the backend default when the circuit is lowered.
    void add_calibration(const std::string& gate_name, std::vector<std::size_t> qubits,
                         Schedule schedule);
    const InstructionScheduleMap& calibrations() const noexcept { return calibrations_; }

private:
    std::size_t n_qubits_;
    std::vector<GateOp> ops_;
    std::vector<MeasureOp> measurements_;
    InstructionScheduleMap calibrations_;
};

/// Frame bookkeeping for virtual-Z lowering: which channels carry a qubit's
/// rotating frame.  The drive channel always does; cross-resonance control
/// channels are driven at the *target* qubit's frequency, so an RZ on the
/// target must shift those frames too (this is how IBM hardware tracks
/// phases across CR gates).
struct FrameConfig {
    /// extra_channels[q] = control channels locked to qubit q's frame.
    std::map<std::size_t, std::vector<Channel>> extra_channels;

    std::vector<Channel> frame_channels(std::size_t qubit) const;
};

/// Lowers a circuit to a pulse schedule:
///  * "rz" becomes a zero-duration ShiftPhase(-theta) on every channel of
///    the qubit's frame (virtual Z);
///  * other gates look up circuit calibrations first, then the backend map;
///  * "h" without a calibration is decomposed as rz(pi/2) sx rz(pi/2);
///  * gates start at the latest busy time across all channels belonging to
///    their qubits (drive + frame channels + the gate schedule's channels);
///  * measurements append Acquire instructions at the end.
/// Throws `std::runtime_error` when a gate has no schedule anywhere.
Schedule circuit_to_schedule(const QuantumCircuit& circuit,
                             const InstructionScheduleMap& backend_defaults,
                             std::size_t measure_duration = 0, const FrameConfig& frames = {});

}  // namespace qoc::pulse
