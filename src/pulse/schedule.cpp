#include "pulse/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace qoc::pulse {

std::size_t instruction_duration(const Instruction& inst) {
    return std::visit(
        [](const auto& i) -> std::size_t {
            using T = std::decay_t<decltype(i)>;
            if constexpr (std::is_same_v<T, Play>) return i.waveform.duration();
            if constexpr (std::is_same_v<T, ShiftPhase>) return 0;
            if constexpr (std::is_same_v<T, Delay>) return i.duration;
            if constexpr (std::is_same_v<T, Acquire>) return i.duration;
        },
        inst);
}

Channel instruction_channel(const Instruction& inst) {
    return std::visit([](const auto& i) { return i.channel; }, inst);
}

void Schedule::insert(std::size_t t0, Instruction inst) {
    instructions_.emplace_back(t0, std::move(inst));
    std::stable_sort(instructions_.begin(), instructions_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
}

void Schedule::append(Instruction inst) {
    const std::size_t t0 = channel_duration(instruction_channel(inst));
    insert(t0, std::move(inst));
}

void Schedule::append_schedule(const Schedule& other) {
    const std::size_t offset = total_duration();
    for (const auto& [t0, inst] : other.instructions_) {
        insert(offset + t0, inst);
    }
}

std::size_t Schedule::channel_duration(const Channel& ch) const {
    std::size_t end = 0;
    for (const auto& [t0, inst] : instructions_) {
        if (instruction_channel(inst) == ch) {
            end = std::max(end, t0 + instruction_duration(inst));
        }
    }
    return end;
}

std::size_t Schedule::total_duration() const {
    std::size_t end = 0;
    for (const auto& [t0, inst] : instructions_) {
        end = std::max(end, t0 + instruction_duration(inst));
    }
    return end;
}

std::vector<Channel> Schedule::channels() const {
    std::set<Channel> seen;
    for (const auto& [t0, inst] : instructions_) seen.insert(instruction_channel(inst));
    return {seen.begin(), seen.end()};
}

std::vector<std::complex<double>> Schedule::channel_samples(const Channel& ch,
                                                            std::size_t n_dt) const {
    std::vector<std::complex<double>> out(n_dt, {0.0, 0.0});
    std::vector<bool> occupied(n_dt, false);
    double frame_phase = 0.0;

    // Instructions are kept sorted by start time, so the phase frame
    // accumulates in schedule order.
    for (const auto& [t0, inst] : instructions_) {
        if (instruction_channel(inst) != ch) continue;
        if (const auto* sp = std::get_if<ShiftPhase>(&inst)) {
            frame_phase += sp->phase;
            continue;
        }
        if (const auto* play = std::get_if<Play>(&inst)) {
            const auto& samples = play->waveform.samples();
            const std::complex<double> frame{std::cos(frame_phase), std::sin(frame_phase)};
            for (std::size_t k = 0; k < samples.size(); ++k) {
                const std::size_t t = t0 + k;
                if (t >= n_dt) break;
                if (occupied[t]) {
                    throw std::runtime_error("Schedule::channel_samples: overlapping plays on " +
                                             ch.label());
                }
                occupied[t] = true;
                out[t] = frame * samples[k];
            }
        }
        // Delay and Acquire contribute zeros / nothing to the drive.
    }
    return out;
}

std::vector<std::pair<std::size_t, Channel>> Schedule::acquires() const {
    std::vector<std::pair<std::size_t, Channel>> result;
    for (const auto& [t0, inst] : instructions_) {
        if (std::holds_alternative<Acquire>(inst)) {
            result.emplace_back(t0, instruction_channel(inst));
        }
    }
    return result;
}

}  // namespace qoc::pulse
