#include "pulse/instruction_map.hpp"

#include <stdexcept>

namespace qoc::pulse {

void InstructionScheduleMap::add(const std::string& gate, const std::vector<std::size_t>& qubits,
                                 Schedule schedule) {
    map_[Key{gate, qubits}] = std::move(schedule);
}

bool InstructionScheduleMap::has(const std::string& gate,
                                 const std::vector<std::size_t>& qubits) const {
    return map_.count(Key{gate, qubits}) > 0;
}

const Schedule& InstructionScheduleMap::get(const std::string& gate,
                                            const std::vector<std::size_t>& qubits) const {
    const auto it = map_.find(Key{gate, qubits});
    if (it == map_.end()) {
        throw std::out_of_range("InstructionScheduleMap: no schedule for gate '" + gate + "'");
    }
    return it->second;
}

std::vector<std::pair<std::string, std::vector<std::size_t>>> InstructionScheduleMap::entries()
    const {
    std::vector<Key> keys;
    keys.reserve(map_.size());
    for (const auto& [k, v] : map_) keys.push_back(k);
    return keys;
}

}  // namespace qoc::pulse
