#include "control/control_problem.hpp"

#include <cmath>
#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "linalg/simd_kernels.hpp"
#include "obs/obs.hpp"
#include "quantum/superop_structured.hpp"
#include "runtime/task_pool.hpp"

namespace qoc::control {

namespace {

using linalg::cplx;
constexpr cplx kI{0.0, 1.0};

}  // namespace

ControlProblem::ControlProblem(const GrapeProblem& problem, bool open_system)
    : prob_(problem), open_(open_system) {
    n_ctrl_ = prob_.system.ctrls.size();
    n_ts_ = prob_.n_timeslots;
    if (n_ts_ == 0) throw std::invalid_argument("GRAPE: n_timeslots must be positive");
    if (n_ctrl_ == 0) throw std::invalid_argument("GRAPE: need at least one control");
    if (prob_.evo_time <= 0.0) throw std::invalid_argument("GRAPE: evo_time must be positive");
    dt_ = prob_.evo_time / static_cast<double>(n_ts_);
    if (prob_.initial_amps.size() != n_ts_) {
        throw std::invalid_argument("GRAPE: initial_amps slot count mismatch");
    }
    for (const auto& slot : prob_.initial_amps) {
        if (slot.size() != n_ctrl_) {
            throw std::invalid_argument("GRAPE: initial_amps control count mismatch");
        }
    }
    if (open_ && prob_.fidelity != FidelityType::kTraceDiff) {
        throw std::invalid_argument("GRAPE (open): fidelity must be kTraceDiff");
    }
    if (!open_ && prob_.fidelity == FidelityType::kTraceDiff) {
        throw std::invalid_argument("GRAPE (closed): use kPsu or kSu");
    }

    // Comparison matrix for the trace overlap: plain target, the target
    // sandwiched into the big space by the subspace isometry, or the
    // rank-one |psi_t><psi_0| operator for state transfer.
    if (prob_.state_transfer) {
        if (open_) {
            throw std::invalid_argument("GRAPE: state transfer is closed-system only");
        }
        if (prob_.fidelity != FidelityType::kPsu) {
            throw std::invalid_argument("GRAPE: state transfer requires kPsu");
        }
        const Mat& psi0 = prob_.state_transfer->psi_initial;
        const Mat& psit = prob_.state_transfer->psi_target;
        if (psi0.cols() != 1 || psit.cols() != 1 ||
            psi0.rows() != prob_.system.drift.rows() || psit.rows() != psi0.rows()) {
            throw std::invalid_argument("GRAPE: state-transfer ket shape mismatch");
        }
        // |<psi_t|U|psi_0>| = |Tr(M^dag U)| with M = |psi_t><psi_0|.
        overlap_target_ = psit * psi0.adjoint();
        norm_dim_ = 1.0;
    } else if (prob_.subspace_isometry) {
        if (open_) {
            throw std::invalid_argument("GRAPE: subspace fidelity is closed-system only");
        }
        const Mat& p = *prob_.subspace_isometry;
        if (p.rows() != prob_.system.drift.rows() || p.cols() != prob_.target.rows()) {
            throw std::invalid_argument("GRAPE: isometry shape mismatch");
        }
        overlap_target_ = p * prob_.target * p.adjoint();
        norm_dim_ = static_cast<double>(prob_.target.rows());
    } else {
        if (prob_.target.rows() != prob_.system.drift.rows()) {
            throw std::invalid_argument("GRAPE: target dimension mismatch");
        }
        overlap_target_ = prob_.target;
        norm_dim_ = static_cast<double>(prob_.target.rows());
    }

    // Model invariants (checked builds only): Hermitian generators,
    // unitary gate targets / trace-preserving superoperator targets,
    // normalized transfer kets.
    if (contracts::enabled()) {
        if (!open_) {
            contracts::check_hermitian(prob_.system.drift, "GRAPE: drift H_0");
            for (const Mat& c : prob_.system.ctrls) {
                contracts::check_hermitian(c, "GRAPE: control H_j");
            }
            if (prob_.state_transfer) {
                contracts::check_normalized_ket(prob_.state_transfer->psi_initial,
                                                "GRAPE: psi_initial");
                contracts::check_normalized_ket(prob_.state_transfer->psi_target,
                                                "GRAPE: psi_target");
            } else {
                contracts::check_unitary(prob_.target, "GRAPE: target gate");
            }
        } else {
            contracts::check_trace_preserving(prob_.target, "GRAPE: target superop", 1e-6);
        }
    }

    // Pre-scale control generators into exponent directions.
    const cplx scale = open_ ? cplx{dt_, 0.0} : (-kI * dt_);
    for (const Mat& c : prob_.system.ctrls) exp_dirs_.push_back(scale * c);

    // Shared-Pade for both systems.  Closed-system slot exponents are
    // anti-Hermitian and *could* take the Daleckii-Krein spectral path
    // (kAuto), but the optimizer trajectory is chaotic in the last few
    // digits: switching the arithmetic shifts converged design errors at
    // the ~1e-6 level on the CX benchmark.  Pade keeps the roundoff
    // profile of the historical augmented-block gradients (design
    // fidelities reproduce to <= 1e-9) while still getting the
    // shared-intermediate speedup; the spectral path stays available to
    // propagator builders, where no optimizer feeds back on the result.
    method_ = linalg::ExpmMethod::kPade;

    // Open-system generators are dense Liouvillians (d^2 x d^2 for GRAPE on
    // superoperators): the fma-contracted simd kernels cut the Pade gemm
    // bill without touching any closed-system golden.  The QOC_DENSE_SUPEROP
    // escape hatch pins the legacy arithmetic end to end.
    simd_ = open_ && !quantum::dense_superop_forced();
}

ControlAmplitudes ControlProblem::unflatten(const std::vector<double>& x) const {
    ControlAmplitudes amps(n_ts_, std::vector<double>(n_ctrl_));
    for (std::size_t k = 0; k < n_ts_; ++k)
        for (std::size_t j = 0; j < n_ctrl_; ++j) amps[k][j] = x[k * n_ctrl_ + j];
    return amps;
}

std::vector<double> ControlProblem::flatten(const ControlAmplitudes& amps) const {
    std::vector<double> x(n_params());
    for (std::size_t k = 0; k < n_ts_; ++k)
        for (std::size_t j = 0; j < n_ctrl_; ++j) x[k * n_ctrl_ + j] = amps[k][j];
    return x;
}

void ControlProblem::slot_exponent_into(const double* amps, Mat& out) const {
    out = prob_.system.drift;
    for (std::size_t j = 0; j < n_ctrl_; ++j) {
        linalg::add_scaled(out, cplx{amps[j], 0.0}, prob_.system.ctrls[j]);
    }
    out *= open_ ? cplx{dt_, 0.0} : (-kI * dt_);
}

Mat ControlProblem::slot_exponent(const std::vector<double>& amps) const {
    Mat out;
    slot_exponent_into(amps.data(), out);
    return out;
}

Mat ControlProblem::evolution(const ControlAmplitudes& amps) const {
    auto lease = scratch_pool_.acquire();
    EvalScratch& sc = *lease;
    Mat total = Mat::identity(prob_.system.drift.rows());
    sc.ws.use_simd_kernels = simd_;
    for (std::size_t k = 0; k < n_ts_; ++k) {
        slot_exponent_into(amps[k].data(), sc.gen);
        linalg::expm_into(sc.gen, sc.prop, sc.ws, method_);
        if (simd_) {
            linalg::simd::gemm_into(sc.prop, total, sc.tmp);
        } else {
            linalg::gemm_into(sc.prop, total, sc.tmp);
        }
        std::swap(total, sc.tmp);
    }
    return total;
}

double ControlProblem::fid_err_of(const Mat& evo) const {
    switch (prob_.fidelity) {
        case FidelityType::kPsu: {
            const cplx g = linalg::hs_inner(overlap_target_, evo);
            return 1.0 - std::norm(g) / (norm_dim_ * norm_dim_);
        }
        case FidelityType::kSu: {
            const cplx g = linalg::hs_inner(overlap_target_, evo);
            return 1.0 - g.real() / norm_dim_;
        }
        case FidelityType::kTraceDiff: {
            const Mat diff = prob_.target - evo;
            const double fro = diff.frobenius_norm();
            return 0.5 * fro * fro / static_cast<double>(evo.rows());
        }
    }
    return 1.0;
}

/// Zero-alloc contract: per-slot propagators, Frechet derivatives, partial
/// products and all expm intermediates live in evaluator-owned workspaces
/// (leased per task from the workspace pool) that are reused across the
/// thousands of L-BFGS-B evaluations; after the first call at a given
/// problem shape the hot loop performs no heap allocation.  Results are
/// bit-identical for any pool size: every slot's computation is independent
/// and writes to disjoint storage.
double ControlProblem::objective(const std::vector<double>& x,
                                 std::vector<double>& grad) const {
    obs::Span span("grape.objective");
    props_.resize(n_ts_);
    dprops_.resize(n_ts_ * n_ctrl_);

    // Per-slot propagators and their control derivatives: e^A and every
    // L(A, E_j) from ONE shared-intermediate call per slot (the old code
    // paid one augmented 2Nx2N expm per control and threw away all but
    // the first propagator).
    runtime::TaskPool::global().parallel_for(0, n_ts_, [&](std::size_t k) {
        auto lease = scratch_pool_.acquire();
        EvalScratch& sc = *lease;
        sc.ws.use_simd_kernels = simd_;
        slot_exponent_into(&x[k * n_ctrl_], sc.gen);
        linalg::expm_frechet_multi(sc.gen, exp_dirs_.data(), n_ctrl_, props_[k],
                                   &dprops_[k * n_ctrl_], sc.ws, method_);
    });

    // Forward partial products fwd[k] = P_k ... P_0 and backward
    // products bwd[k] = P_{N-1} ... P_{k+1}, into reused storage.
    fwd_.resize(n_ts_);
    bwd_.resize(n_ts_);
    const auto chain_mul = [this](const Mat& a, const Mat& b, Mat& out) {
        if (simd_) {
            linalg::simd::gemm_into(a, b, out);
        } else {
            linalg::gemm_into(a, b, out);
        }
    };
    fwd_[0] = props_[0];
    for (std::size_t k = 1; k < n_ts_; ++k) chain_mul(props_[k], fwd_[k - 1], fwd_[k]);
    const std::size_t dim = prob_.system.drift.rows();
    bwd_[n_ts_ - 1].resize(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) bwd_[n_ts_ - 1](i, i) = cplx{1.0, 0.0};
    for (std::size_t k = n_ts_ - 1; k-- > 0;) {
        chain_mul(bwd_[k + 1], props_[k + 1], bwd_[k]);
    }

    const Mat& evo = fwd_.back();
    const double err = fid_err_of(evo);

    // Cost-side matrix C such that d(val)/du = Tr((fwd_{k-1} C bwd_k) dP).
    cplx g_overlap{0.0, 0.0};
    if (prob_.fidelity == FidelityType::kTraceDiff) {
        c_adj_.resize(dim, dim);
        for (std::size_t i = 0; i < dim; ++i)
            for (std::size_t j = 0; j < dim; ++j)
                c_adj_(j, i) = std::conj(prob_.target(i, j) - evo(i, j));
    } else {
        g_overlap = linalg::hs_inner(overlap_target_, evo);
        c_adj_.resize(overlap_target_.cols(), overlap_target_.rows());
        for (std::size_t i = 0; i < overlap_target_.rows(); ++i)
            for (std::size_t j = 0; j < overlap_target_.cols(); ++j)
                c_adj_(j, i) = std::conj(overlap_target_(i, j));
    }

    grad.assign(n_params(), 0.0);
    runtime::TaskPool::global().parallel_for(0, n_ts_, [&](std::size_t k) {
        auto lease = scratch_pool_.acquire();
        EvalScratch& sc = *lease;
        // R_k = fwd_{k-1} * C * bwd_k  (so Tr(C bwd dP fwd) = Tr(R dP)).
        if (simd_) {
            linalg::simd::gemm_into(c_adj_, bwd_[k], sc.tmp);
        } else {
            linalg::gemm_into(c_adj_, bwd_[k], sc.tmp);
        }
        const Mat* r = &sc.tmp;
        if (k > 0) {
            if (simd_) {
                linalg::simd::gemm_into(fwd_[k - 1], sc.tmp, sc.prop);
            } else {
                linalg::gemm_into(fwd_[k - 1], sc.tmp, sc.prop);
            }
            r = &sc.prop;
        }
        for (std::size_t j = 0; j < n_ctrl_; ++j) {
            const cplx dg = linalg::trace_of_product(*r, dprops_[k * n_ctrl_ + j]);
            double derr = 0.0;
            switch (prob_.fidelity) {
                case FidelityType::kPsu:
                    derr = -2.0 * (std::conj(g_overlap) * dg).real() /
                           (norm_dim_ * norm_dim_);
                    break;
                case FidelityType::kSu:
                    derr = -dg.real() / norm_dim_;
                    break;
                case FidelityType::kTraceDiff:
                    derr = -dg.real() / static_cast<double>(dim);
                    break;
            }
            grad[k * n_ctrl_ + j] = derr;
        }
    });
    double total = err;
    if (prob_.energy_penalty > 0.0) {
        const double w = prob_.energy_penalty / static_cast<double>(n_params());
        double penalty = 0.0;
        for (std::size_t i = 0; i < n_params(); ++i) {
            penalty += w * x[i] * x[i];
            grad[i] += 2.0 * w * x[i];
        }
        total = err + penalty;
    }
    contracts::check_finite(total, "GRAPE objective: cost");
    contracts::check_all_finite(grad, "GRAPE objective: gradient");
    return total;
}

}  // namespace qoc::control
