#include "control/krotov.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/expm.hpp"

namespace qoc::control {

namespace {
using linalg::cplx;
using linalg::Mat;
constexpr cplx kI{0.0, 1.0};
}  // namespace

GrapeResult krotov_unitary(const GrapeProblem& problem, const KrotovOptions& opts) {
    if (problem.fidelity == FidelityType::kTraceDiff) {
        throw std::invalid_argument("krotov_unitary: closed-system only");
    }
    if (problem.state_transfer) {
        throw std::invalid_argument("krotov_unitary: use the gate functional");
    }
    if (opts.lambda <= 0.0) throw std::invalid_argument("krotov_unitary: lambda must be > 0");
    const std::size_t n_ts = problem.n_timeslots;
    const std::size_t n_ctrl = problem.system.ctrls.size();
    if (n_ts == 0 || n_ctrl == 0 || problem.evo_time <= 0.0) {
        throw std::invalid_argument("krotov_unitary: malformed problem");
    }
    if (problem.initial_amps.size() != n_ts) {
        throw std::invalid_argument("krotov_unitary: initial_amps slot count mismatch");
    }
    const double dt = problem.evo_time / static_cast<double>(n_ts);
    const std::size_t dim = problem.system.drift.rows();

    // Overlap matrix and normalization (same conventions as GRAPE).
    Mat overlap;
    double norm_dim;
    if (problem.subspace_isometry) {
        const Mat& p = *problem.subspace_isometry;
        overlap = p * problem.target * p.adjoint();
        norm_dim = static_cast<double>(problem.target.rows());
    } else {
        overlap = problem.target;
        norm_dim = static_cast<double>(problem.target.rows());
    }

    auto slot_propagator = [&](const std::vector<double>& amps) {
        return linalg::expm((-kI * dt) * problem.system.generator(amps));
    };
    auto evolution = [&](const dynamics::ControlAmplitudes& amps) {
        Mat u = Mat::identity(dim);
        for (std::size_t k = 0; k < n_ts; ++k) u = slot_propagator(amps[k]) * u;
        return u;
    };
    auto fid_err = [&](const Mat& u_final) {
        const cplx tau = linalg::hs_inner(overlap, u_final);
        if (problem.fidelity == FidelityType::kSu) return 1.0 - tau.real() / norm_dim;
        return 1.0 - std::norm(tau) / (norm_dim * norm_dim);
    };

    GrapeResult result;
    result.initial_amps = problem.initial_amps;
    dynamics::ControlAmplitudes amps = problem.initial_amps;
    result.initial_fid_err = fid_err(evolution(amps));
    double err = result.initial_fid_err;
    result.fid_err_history.push_back(err);

    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        // Forward propagators with the current (old) controls.
        std::vector<Mat> props(n_ts);
        for (std::size_t k = 0; k < n_ts; ++k) props[k] = slot_propagator(amps[k]);
        Mat u_final = Mat::identity(dim);
        for (std::size_t k = 0; k < n_ts; ++k) u_final = props[k] * u_final;

        // Co-state boundary condition at T.
        const cplx tau = linalg::hs_inner(overlap, u_final);
        const cplx weight = (problem.fidelity == FidelityType::kSu)
                                ? cplx{1.0 / (2.0 * norm_dim), 0.0}
                                : tau / (norm_dim * norm_dim);
        // chi(t) stored at slot starts: chi[k] = chi(t_k), k = 0..n_ts.
        std::vector<Mat> chi(n_ts + 1);
        chi[n_ts] = weight * overlap;
        for (std::size_t k = n_ts; k-- > 0;) {
            chi[k] = linalg::adjoint_times(props[k], chi[k + 1]);
        }

        // Sequential forward sweep with updated controls.
        dynamics::ControlAmplitudes new_amps = amps;
        Mat u = Mat::identity(dim);
        for (std::size_t k = 0; k < n_ts; ++k) {
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                // Im Tr(chi^dag H_j U) at the slot start, with U the evolution
                // under the already-updated earlier slots.
                const cplx val = linalg::hs_inner(chi[k], problem.system.ctrls[j] * u);
                const double update = val.imag() / opts.lambda;
                new_amps[k][j] = std::clamp(amps[k][j] + update, problem.amp_lower,
                                            problem.amp_upper);
            }
            u = slot_propagator(new_amps[k]) * u;
        }

        const double new_err = fid_err(u);
        result.fid_err_history.push_back(new_err);
        const double delta = err - new_err;
        amps = std::move(new_amps);
        err = new_err;
        ++result.iterations;
        ++result.evaluations;
        if (err <= opts.target_fid_err) {
            result.reason = optim::StopReason::kTargetReached;
            break;
        }
        if (delta >= 0.0 && delta < opts.delta_tol) {
            result.reason = optim::StopReason::kFtolReached;
            break;
        }
    }
    if (result.iterations == opts.max_iterations) {
        result.reason = optim::StopReason::kMaxIterations;
    }

    result.final_amps = amps;
    result.final_evolution = evolution(amps);
    result.final_fid_err = fid_err(result.final_evolution);
    return result;
}

}  // namespace qoc::control
