#include "control/krotov.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "control/control_problem.hpp"
#include "linalg/expm.hpp"
#include "obs/obs.hpp"

namespace qoc::control {

namespace {
using linalg::cplx;
using linalg::Mat;
constexpr cplx kI{0.0, 1.0};
}  // namespace

GrapeResult krotov_unitary(const ControlProblem& cp, const KrotovOptions& opts) {
    const GrapeProblem& problem = cp.problem();
    if (cp.open_system() || problem.fidelity == FidelityType::kTraceDiff) {
        throw std::invalid_argument("krotov_unitary: closed-system only");
    }
    if (problem.state_transfer) {
        throw std::invalid_argument("krotov_unitary: use the gate functional");
    }
    if (opts.lambda <= 0.0) throw std::invalid_argument("krotov_unitary: lambda must be > 0");
    const std::size_t n_ts = cp.n_ts();
    const std::size_t n_ctrl = cp.n_ctrl();
    const double dt = cp.dt();
    const std::size_t dim = problem.system.drift.rows();

    // Overlap matrix and normalization come from the shared evaluator (same
    // conventions as GRAPE: plain target or isometry-sandwiched target).
    const Mat& overlap = cp.overlap_target();
    const double norm_dim = cp.norm_dim();

    // One workspace threads through every exponential below: Krotov's
    // sequential sweeps exponentiate n_ts same-size generators per
    // iteration, and the shared scratch makes each one allocation-free
    // (kAuto dispatches Hermitian-generator problems to the exact spectral
    // path -- deliberately NOT the evaluator's Pade pin, which exists for
    // GRAPE's gradient-feedback loop only).
    linalg::ExpmWorkspace ws;
    Mat gen, prop_buf, tmp;
    auto slot_propagator_into = [&](const std::vector<double>& amps, Mat& out) {
        if (amps.size() != n_ctrl) {
            throw std::invalid_argument("krotov_unitary: amplitude count mismatch");
        }
        gen = problem.system.drift;
        for (std::size_t j = 0; j < n_ctrl; ++j) {
            linalg::add_scaled(gen, cplx{amps[j], 0.0}, problem.system.ctrls[j]);
        }
        gen *= -kI * dt;
        linalg::expm_into(gen, out, ws);
    };
    auto evolution = [&](const dynamics::ControlAmplitudes& amps) {
        Mat u = Mat::identity(dim);
        for (std::size_t k = 0; k < n_ts; ++k) {
            slot_propagator_into(amps[k], prop_buf);
            linalg::gemm_into(prop_buf, u, tmp);
            std::swap(u, tmp);
        }
        return u;
    };
    auto fid_err = [&](const Mat& u_final) {
        const cplx tau = linalg::hs_inner(overlap, u_final);
        if (problem.fidelity == FidelityType::kSu) return 1.0 - tau.real() / norm_dim;
        return 1.0 - std::norm(tau) / (norm_dim * norm_dim);
    };

    GrapeResult result;
    result.initial_amps = problem.initial_amps;
    dynamics::ControlAmplitudes amps = problem.initial_amps;
    result.initial_fid_err = fid_err(evolution(amps));
    double err = result.initial_fid_err;
    result.fid_err_history.push_back(err);

    // qoc-lint-allow(determinism-wall-clock): wall-time telemetry only; never feeds the numerics
    const auto t_start = std::chrono::steady_clock::now();
    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        // Forward propagators with the current (old) controls.
        std::vector<Mat> props(n_ts);
        for (std::size_t k = 0; k < n_ts; ++k) slot_propagator_into(amps[k], props[k]);
        Mat u_final = Mat::identity(dim);
        for (std::size_t k = 0; k < n_ts; ++k) {
            linalg::gemm_into(props[k], u_final, tmp);
            std::swap(u_final, tmp);
        }

        // Co-state boundary condition at T.
        const cplx tau = linalg::hs_inner(overlap, u_final);
        const cplx weight = (problem.fidelity == FidelityType::kSu)
                                ? cplx{1.0 / (2.0 * norm_dim), 0.0}
                                : tau / (norm_dim * norm_dim);
        // chi(t) stored at slot starts: chi[k] = chi(t_k), k = 0..n_ts.
        std::vector<Mat> chi(n_ts + 1);
        chi[n_ts] = weight * overlap;
        for (std::size_t k = n_ts; k-- > 0;) {
            linalg::adjoint_times_into(props[k], chi[k + 1], chi[k]);
        }

        // Sequential forward sweep with updated controls.
        dynamics::ControlAmplitudes new_amps = amps;
        Mat u = Mat::identity(dim);
        for (std::size_t k = 0; k < n_ts; ++k) {
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                // Im Tr(chi^dag H_j U) at the slot start, with U the evolution
                // under the already-updated earlier slots.
                linalg::gemm_into(problem.system.ctrls[j], u, tmp);
                const cplx val = linalg::hs_inner(chi[k], tmp);
                const double update = val.imag() / opts.lambda;
                new_amps[k][j] = std::clamp(amps[k][j] + update, problem.amp_lower,
                                            problem.amp_upper);
            }
            slot_propagator_into(new_amps[k], prop_buf);
            linalg::gemm_into(prop_buf, u, tmp);
            std::swap(u, tmp);
        }

        const double new_err = fid_err(u);
        result.fid_err_history.push_back(new_err);
        const double delta = err - new_err;
        amps = std::move(new_amps);
        err = new_err;
        ++result.iterations;
        ++result.evaluations;
        {
            // Krotov is monotone and derivative-free at this level: report
            // the error decrease as the step and no gradient norm.
            optim::IterationRecord rec;
            rec.iteration = iter;
            rec.cost = new_err;
            rec.step = delta;
            rec.n_fun_evals = result.evaluations;
            rec.wall_time_s = std::chrono::duration<double>(
                                  // qoc-lint-allow(determinism-wall-clock): wall-time telemetry
                                  std::chrono::steady_clock::now() - t_start)
                                  .count();
            result.iteration_records.push_back(rec);
            obs::emit_optimizer_iteration("krotov", rec.iteration, rec.cost, rec.grad_norm,
                                          rec.step, rec.n_fun_evals, rec.wall_time_s);
        }
        if (err <= opts.target_fid_err) {
            result.reason = optim::StopReason::kTargetReached;
            break;
        }
        if (delta >= 0.0 && delta < opts.delta_tol) {
            result.reason = optim::StopReason::kFtolReached;
            break;
        }
    }
    if (result.iterations == opts.max_iterations) {
        result.reason = optim::StopReason::kMaxIterations;
    }

    result.final_amps = amps;
    result.final_evolution = evolution(amps);
    result.final_fid_err = fid_err(result.final_evolution);
    return result;
}

GrapeResult krotov_unitary(const GrapeProblem& problem, const KrotovOptions& opts) {
    // Historical error messages for specs the shared evaluator would reject
    // with its GRAPE-flavored wording.
    if (problem.fidelity == FidelityType::kTraceDiff) {
        throw std::invalid_argument("krotov_unitary: closed-system only");
    }
    if (problem.state_transfer) {
        throw std::invalid_argument("krotov_unitary: use the gate functional");
    }
    if (opts.lambda <= 0.0) throw std::invalid_argument("krotov_unitary: lambda must be > 0");
    const std::size_t n_ts = problem.n_timeslots;
    const std::size_t n_ctrl = problem.system.ctrls.size();
    if (n_ts == 0 || n_ctrl == 0 || problem.evo_time <= 0.0) {
        throw std::invalid_argument("krotov_unitary: malformed problem");
    }
    if (problem.initial_amps.size() != n_ts) {
        throw std::invalid_argument("krotov_unitary: initial_amps slot count mismatch");
    }

    // Same model invariants as the GRAPE evaluator (closed system), with
    // Krotov-labeled diagnostics.
    if (contracts::enabled()) {
        contracts::check_hermitian(problem.system.drift, "Krotov: drift H_0");
        for (const Mat& c : problem.system.ctrls) {
            contracts::check_hermitian(c, "Krotov: control H_j");
        }
        contracts::check_unitary(problem.target, "Krotov: target gate");
    }

    return krotov_unitary(ControlProblem(problem, /*open_system=*/false), opts);
}

}  // namespace qoc::control
