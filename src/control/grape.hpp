/// \file grape.hpp
/// \brief GRAPE (gradient ascent pulse engineering) for closed and open
///        (Lindblad) systems with exact gradients and the L-BFGS-B driver --
///        the paper's "second-order GRAPE".
///
/// The control problem: piecewise-constant amplitudes u[k][j] over
/// `n_timeslots` slots of length `evo_time / n_timeslots`, system
///   H(t) = H_0 + sum_j u_j(t) H_j   (closed)  or
///   L(t) = L_0 + sum_j u_j(t) L_j   (open, Liouvillian form),
/// minimizing the gate infidelity against a target unitary (closed) or
/// target superoperator (open).  Gradients are exact: each slot propagator's
/// directional derivative comes from the Van Loan augmented exponential.

#pragma once

#include <optional>

#include "dynamics/propagator.hpp"
#include "optim/lbfgsb.hpp"
#include "optim/problem.hpp"

namespace qoc::control {

using dynamics::ControlAmplitudes;
using linalg::Mat;

/// Which cost function drives the optimization.
enum class FidelityType {
    kPsu,        ///< 1 - |Tr(U_t^dag U)|^2 / d^2 (phase invariant; paper Eq. for C)
    kSu,         ///< 1 - Re Tr(U_t^dag U) / d (phase sensitive)
    kTraceDiff,  ///< ||E_t - E||_F^2 / (2 d^2) on superoperators (open systems)
};

struct GrapeProblem {
    dynamics::PwcSystem system;  ///< drift + control generators (H's or L's)
    Mat target;                  ///< target unitary (closed) or superoperator (open)
    std::size_t n_timeslots = 0;
    double evo_time = 0.0;
    FidelityType fidelity = FidelityType::kPsu;

    /// Optional isometry P (dim x d_sub) restricting the fidelity to a
    /// computational subspace of a larger (e.g. 3-level transmon) space.
    /// Closed-system only.  `target` must then be d_sub x d_sub.
    std::optional<Mat> subspace_isometry;

    /// Optional state-to-state transfer: when set, the cost is
    /// 1 - |<psi_target| U |psi_0>|^2 and `target` is ignored.  Closed
    /// system, kPsu only.  Both kets must be normalized column vectors.
    struct StateTransfer {
        Mat psi_initial;
        Mat psi_target;
    };
    std::optional<StateTransfer> state_transfer;

    double amp_lower = -1.0;  ///< amplitude bounds (paper: hardware range +-1)
    double amp_upper = 1.0;

    /// Optional per-control bounds overriding amp_lower/amp_upper (size must
    /// equal the number of controls when non-empty).  Lets e.g. a weak local
    /// drive be capped tightly while the CR channel keeps headroom.
    std::vector<double> amp_lower_per_ctrl;
    std::vector<double> amp_upper_per_ctrl;

    /// Optional pulse-energy (fluence) regularizer: adds
    /// `energy_penalty * mean(u^2)` to the cost.  Steers the optimizer
    /// toward low-amplitude solutions, which real drive chains reward
    /// (amplitude noise, heating); zero disables it.
    double energy_penalty = 0.0;

    /// Starting amplitudes [slot][ctrl]; must match n_timeslots and the
    /// number of controls.
    ControlAmplitudes initial_amps;
};

struct GrapeResult {
    ControlAmplitudes initial_amps;
    ControlAmplitudes final_amps;
    double initial_fid_err = 1.0;
    double final_fid_err = 1.0;
    Mat final_evolution;  ///< achieved unitary / superoperator
    int iterations = 0;
    int evaluations = 0;
    optim::StopReason reason = optim::StopReason::kMaxIterations;
    std::vector<double> fid_err_history;  ///< per accepted iteration
    /// Full per-iteration optimizer telemetry (cost, grad norm, step,
    /// cumulative evaluations, wall time); parallels fid_err_history.
    std::vector<optim::IterationRecord> iteration_records;
};

class ControlProblem;  // the shared PWC evaluator (control_problem.hpp)

/// L-BFGS-B GRAPE over an already-constructed evaluator.  The GrapeProblem
/// entry points below are thin wrappers over this; front ends that reuse an
/// evaluator (pulse_optim, the design pipeline) call it directly.
GrapeResult grape_optimize(const ControlProblem& cp, const optim::LbfgsBOptions& opts = {});

/// Closed-system GRAPE with L-BFGS-B (the paper's method).
GrapeResult grape_unitary(const GrapeProblem& problem, const optim::LbfgsBOptions& opts = {});

/// Open-system (Lindblad) GRAPE: `system` holds Liouvillian generators and
/// `target` the target superoperator; fidelity must be kTraceDiff.
GrapeResult grape_lindblad(const GrapeProblem& problem, const optim::LbfgsBOptions& opts = {});

/// First-order GRAPE baseline: plain projected gradient descent with a fixed
/// learning rate (for the convergence-comparison ablation; the paper notes
/// plain GRAPE "converges very slowly").
GrapeResult grape_gradient_descent(const GrapeProblem& problem, double learning_rate,
                                   int iterations);

/// Gradient-descent GRAPE over an already-constructed evaluator.
GrapeResult grape_gradient_descent(const ControlProblem& cp, double learning_rate,
                                   int iterations);

/// Result of a robust (ensemble) optimization: the shared pulse plus its
/// per-member fidelity errors.
struct RobustGrapeResult {
    GrapeResult combined;               ///< pulse + weighted-average error
    std::vector<double> member_errors;  ///< final error per ensemble member
};

/// Robust GRAPE: optimizes ONE pulse against an ensemble of drift
/// Hamiltonians (e.g. a detuning spread modeling day-to-day calibration
/// drift).  Member i uses drift `system.drift + ensemble_drifts[i]`; the
/// cost is the weighted average of the members' fidelity errors.  This is
/// the standard ensemble-robust recipe the paper's Discussion asks for
/// ("this drifting of qubit properties can lead to fluctuations").
/// Closed-system only.
RobustGrapeResult grape_robust(const GrapeProblem& problem,
                               const std::vector<Mat>& ensemble_drifts,
                               const std::vector<double>& weights,
                               const optim::LbfgsBOptions& opts = {});

/// Evaluates the fidelity error (no gradient) of a given amplitude table for
/// the problem -- used by CRAB and by diagnostics.
double evaluate_fid_err(const GrapeProblem& problem, const ControlAmplitudes& amps);

/// Evaluates the fidelity error AND its exact gradient with respect to the
/// flattened amplitudes (slot-major, control-minor) -- the building block
/// for optimizers over alternative pulse parameterizations (GOAT).
double evaluate_fid_err_and_grad(const GrapeProblem& problem, const ControlAmplitudes& amps,
                                 std::vector<double>& grad);

/// Computes the final evolution operator of an amplitude table.
Mat evaluate_evolution(const GrapeProblem& problem, const ControlAmplitudes& amps);

}  // namespace qoc::control
