#include "control/crab.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "control/control_problem.hpp"
#include "optim/nelder_mead.hpp"

namespace qoc::control {

CrabResult crab_optimize(const ControlProblem& cp, const CrabOptions& opts) {
    const GrapeProblem& problem = cp.problem();
    const std::size_t n_ts = cp.n_ts();
    const std::size_t n_ctrl = cp.n_ctrl();
    const std::size_t n_basis = opts.n_basis;
    const std::size_t n_params = n_ctrl * 2 * n_basis;

    // Randomly detuned harmonics w_n = 2 pi (n + jitter) / T (per control).
    std::mt19937_64 rng(opts.seed);
    std::uniform_real_distribution<double> jitter(-opts.freq_jitter, opts.freq_jitter);
    std::vector<std::vector<double>> freqs(n_ctrl, std::vector<double>(n_basis));
    for (auto& row : freqs) {
        for (std::size_t n = 0; n < n_basis; ++n) {
            row[n] = 2.0 * std::numbers::pi * (static_cast<double>(n + 1) + jitter(rng)) /
                     problem.evo_time;
        }
    }

    const double dt = cp.dt();

    // Coefficients -> amplitude table, clipped to the hardware bounds.
    auto build_amps = [&](const std::vector<double>& coeffs) {
        ControlAmplitudes amps(n_ts, std::vector<double>(n_ctrl));
        for (std::size_t k = 0; k < n_ts; ++k) {
            const double t = (static_cast<double>(k) + 0.5) * dt;
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                double mod = 1.0;
                for (std::size_t n = 0; n < n_basis; ++n) {
                    const double a = coeffs[(j * n_basis + n) * 2];
                    const double b = coeffs[(j * n_basis + n) * 2 + 1];
                    mod += a * std::sin(freqs[j][n] * t) + b * std::cos(freqs[j][n] * t);
                }
                amps[k][j] = std::clamp(problem.initial_amps[k][j] * mod, problem.amp_lower,
                                        problem.amp_upper);
            }
        }
        return amps;
    };

    // ONE evaluator serves every direct-search probe (the old code built a
    // fresh one per evaluation); its workspaces amortize across the sweep.
    optim::ScalarObjective obj = [&](const std::vector<double>& coeffs) {
        return cp.fid_err(build_amps(coeffs));
    };

    optim::NelderMeadOptions nm;
    nm.max_evaluations = opts.max_evaluations;
    nm.max_iterations = opts.max_iterations;
    nm.initial_step = 0.1;
    nm.telemetry_label = "crab";

    CrabResult result;
    nm.iter_callback = [&](const optim::IterationRecord& rec) {
        result.fid_err_history.push_back(rec.cost);
        result.iteration_records.push_back(rec);
    };

    const auto opt = optim::nelder_mead_minimize(
        obj, std::vector<double>(n_params, 0.0),
        optim::Bounds::uniform(n_params, -opts.coeff_bound, opts.coeff_bound), nm);

    result.initial_fid_err = cp.fid_err(problem.initial_amps);
    result.final_amps = build_amps(opt.x);
    result.final_fid_err = opt.f;
    result.evaluations = opt.evaluations;
    result.reason = opt.reason;
    return result;
}

CrabResult crab_optimize(const GrapeProblem& problem, const CrabOptions& opts) {
    return crab_optimize(ControlProblem(problem), opts);
}

}  // namespace qoc::control
