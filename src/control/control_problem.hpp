/// \file control_problem.hpp
/// \brief `control::ControlProblem` -- the ONE piecewise-constant control
///        evaluator every optimizer front end (GRAPE, Krotov, CRAB, GOAT)
///        dispatches through.
///
/// Wraps a `GrapeProblem` (the common PWC problem statement) and exposes the
/// primitives an optimizer needs: slot exponents, final evolution, fidelity
/// error, and the exact objective gradient via shared-intermediate Frechet
/// derivatives.  Validation, subspace/state-transfer overlap handling and
/// the fidelity formulas live HERE once, instead of being re-derived per
/// front end.
///
/// Parallelism: the per-timeslot propagator/gradient fan-outs run on
/// `qoc::runtime::TaskPool::global()`, with per-task scratch leased from a
/// `runtime::WorkspacePool` (replacing the old per-OpenMP-thread scratch
/// vector).  Every slot writes only its own output matrices and all
/// reductions are serial, so results are bitwise identical for any pool
/// size -- the same guarantee the OpenMP implementation made.

#pragma once

#include <vector>

#include "control/grape.hpp"
#include "linalg/expm.hpp"
#include "runtime/workspace_pool.hpp"

namespace qoc::control {

/// Reusable evaluator over a PWC control problem.  Construct once, evaluate
/// many times: propagator workspaces and partial-product storage are reused
/// across calls, so after the first evaluation at a fixed problem shape the
/// hot loop performs no heap allocation.
class ControlProblem {
public:
    /// Validates the problem (throws `std::invalid_argument` on a malformed
    /// spec) and precomputes the overlap target / exponent directions.
    ControlProblem(const GrapeProblem& problem, bool open_system);

    /// Convenience: infers open vs closed from the fidelity type.
    explicit ControlProblem(const GrapeProblem& problem)
        : ControlProblem(problem, is_open(problem)) {}

    /// The convention every front end uses: kTraceDiff marks an open-system
    /// (superoperator) problem, kPsu/kSu a closed-system one.
    static bool is_open(const GrapeProblem& problem) {
        return problem.fidelity == FidelityType::kTraceDiff;
    }

    ControlProblem(const ControlProblem&) = delete;
    ControlProblem& operator=(const ControlProblem&) = delete;

    const GrapeProblem& problem() const { return prob_; }
    bool open_system() const { return open_; }

    std::size_t n_params() const { return n_ts_ * n_ctrl_; }
    std::size_t n_ctrl() const { return n_ctrl_; }
    std::size_t n_ts() const { return n_ts_; }
    double dt() const { return dt_; }

    /// Comparison matrix M of the trace overlap Tr(M^dag U): the plain
    /// target, the isometry-sandwiched target, or |psi_t><psi_0| for state
    /// transfer.  Krotov's co-state seeding reads this.
    const Mat& overlap_target() const { return overlap_target_; }

    /// Fidelity normalization (subspace dimension; 1 for state transfer).
    double norm_dim() const { return norm_dim_; }

    ControlAmplitudes unflatten(const std::vector<double>& x) const;
    std::vector<double> flatten(const ControlAmplitudes& amps) const;

    /// Slot exponent `scale * (drift + sum u_j ctrl_j)`, written into `out`
    /// without allocating (on shape reuse).  `amps` points at `n_ctrl()`
    /// contiguous amplitudes.
    void slot_exponent_into(const double* amps, Mat& out) const;

    /// Slot exponent `scale * (drift + sum u_j ctrl_j)`.
    Mat slot_exponent(const std::vector<double>& amps) const;

    /// Final evolution operator for an amplitude table.
    Mat evolution(const ControlAmplitudes& amps) const;

    /// Fidelity error of a final evolution operator.
    double fid_err_of(const Mat& evo) const;

    /// Fidelity error of an amplitude table (no gradient).
    double fid_err(const ControlAmplitudes& amps) const { return fid_err_of(evolution(amps)); }

    /// Full objective: fidelity error (plus energy penalty when configured)
    /// and its exact gradient with respect to the flattened amplitudes
    /// (slot-major, control-minor).
    double objective(const std::vector<double>& x, std::vector<double>& grad) const;

private:
    /// Per-task scratch: the expm engine workspace plus the slot/gradient
    /// temporaries.  Shapes stabilize after the first objective call, so
    /// reuse is allocation-free.
    struct EvalScratch {
        linalg::ExpmWorkspace ws;
        Mat gen, prop, tmp;
    };

    GrapeProblem prob_;
    bool open_;
    /// True when the evaluator routes its gemms, expm internals and LU
    /// solves through the `linalg::simd` kernel family.  Set in the ctor
    /// for OPEN systems only (unless `QOC_DENSE_SUPEROP` forces the legacy
    /// path): open-system objective values agree with the legacy arithmetic
    /// to the structured-path 1e-12 budget, while closed-system golden
    /// trajectories keep the historical rounding.
    bool simd_ = false;
    std::size_t n_ctrl_ = 0;
    std::size_t n_ts_ = 0;
    double dt_ = 0.0;
    double norm_dim_ = 1.0;
    Mat overlap_target_;
    std::vector<Mat> exp_dirs_;
    linalg::ExpmMethod method_ = linalg::ExpmMethod::kAuto;

    // Reusable evaluation workspace (mutable: objective() is logically
    // const; these caches never change observable results).
    mutable runtime::WorkspacePool<EvalScratch> scratch_pool_;
    mutable std::vector<Mat> props_;   ///< per-slot propagators
    mutable std::vector<Mat> dprops_;  ///< [slot * n_ctrl + ctrl] Frechet derivatives
    mutable std::vector<Mat> fwd_, bwd_;
    mutable Mat c_adj_;
};

}  // namespace qoc::control
