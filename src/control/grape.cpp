#include "control/grape.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "control/control_problem.hpp"
#include "obs/obs.hpp"

namespace qoc::control {

GrapeResult grape_optimize(const ControlProblem& cp, const optim::LbfgsBOptions& opts_in) {
    const GrapeProblem& problem = cp.problem();

    GrapeResult result;
    result.initial_amps = problem.initial_amps;
    result.initial_fid_err = cp.fid_err(problem.initial_amps);

    optim::Bounds bounds =
        optim::Bounds::uniform(cp.n_params(), problem.amp_lower, problem.amp_upper);
    if (!problem.amp_lower_per_ctrl.empty() || !problem.amp_upper_per_ctrl.empty()) {
        const std::size_t n_ctrl = problem.system.ctrls.size();
        if (problem.amp_lower_per_ctrl.size() != n_ctrl ||
            problem.amp_upper_per_ctrl.size() != n_ctrl) {
            throw std::invalid_argument("GRAPE: per-control bounds size mismatch");
        }
        for (std::size_t k = 0; k < cp.n_ts(); ++k) {
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                bounds.lower[k * n_ctrl + j] = problem.amp_lower_per_ctrl[j];
                bounds.upper[k * n_ctrl + j] = problem.amp_upper_per_ctrl[j];
            }
        }
    }

    optim::Objective obj = [&](const std::vector<double>& x, std::vector<double>& g) {
        // Hardware-range invariant: L-BFGS-B evaluates only in-box iterates
        // (the paper's +-1 PWC amplitude bound, or the user's box).
        if (contracts::enabled()) {
            for (std::size_t i = 0; i < x.size(); ++i) {
                contracts::check_in_range(x[i], bounds.lower[i], bounds.upper[i],
                                          "GRAPE: PWC amplitude iterate", 1e-10);
            }
        }
        return cp.objective(x, g);
    };

    optim::LbfgsBOptions opts = opts_in;
    auto user_iter_cb = opts.iter_callback;
    opts.iter_callback = [&](const optim::IterationRecord& rec) {
        result.fid_err_history.push_back(rec.cost);
        result.iteration_records.push_back(rec);
        if (user_iter_cb) user_iter_cb(rec);
    };

    const optim::OptimResult opt =
        optim::lbfgsb_minimize(obj, cp.flatten(problem.initial_amps), bounds, opts);

    result.final_amps = cp.unflatten(opt.x);
    result.final_evolution = cp.evolution(result.final_amps);
    result.final_fid_err = cp.fid_err_of(result.final_evolution);
    result.iterations = opt.iterations;
    result.evaluations = opt.evaluations;
    result.reason = opt.reason;
    return result;
}

GrapeResult grape_unitary(const GrapeProblem& problem, const optim::LbfgsBOptions& opts) {
    return grape_optimize(ControlProblem(problem, /*open_system=*/false), opts);
}

GrapeResult grape_lindblad(const GrapeProblem& problem, const optim::LbfgsBOptions& opts) {
    return grape_optimize(ControlProblem(problem, /*open_system=*/true), opts);
}

GrapeResult grape_gradient_descent(const ControlProblem& cp, double learning_rate,
                                   int iterations) {
    const GrapeProblem& problem = cp.problem();

    GrapeResult result;
    result.initial_amps = problem.initial_amps;

    std::vector<double> x = cp.flatten(problem.initial_amps);
    std::vector<double> grad;
    double lr = learning_rate;
    double prev_err = 0.0;
    // qoc-lint-allow(determinism-wall-clock): wall-time telemetry only; never feeds the numerics
    const auto t_start = std::chrono::steady_clock::now();
    for (int it = 0; it < iterations; ++it) {
        const double err = cp.objective(x, grad);
        if (it == 0) {
            // The first objective call evaluates the unmodified amplitudes,
            // so its value *is* the initial fidelity error; a separate
            // evolution() pass would redo all n_ts propagators.
            result.initial_fid_err = err;
            prev_err = err;
        }
        result.fid_err_history.push_back(err);
        {
            optim::IterationRecord rec;
            rec.iteration = it;
            rec.cost = err;
            for (double gv : grad) rec.grad_norm = std::max(rec.grad_norm, std::abs(gv));
            rec.step = lr;
            rec.n_fun_evals = it + 1;
            rec.wall_time_s = std::chrono::duration<double>(
                                  // qoc-lint-allow(determinism-wall-clock): wall-time telemetry
                                  std::chrono::steady_clock::now() - t_start)
                                  .count();
            result.iteration_records.push_back(rec);
            obs::emit_optimizer_iteration("grape_gd", rec.iteration, rec.cost, rec.grad_norm,
                                          rec.step, rec.n_fun_evals, rec.wall_time_s);
        }
        // Simple backtracking: a diverging fixed-rate step would overstate
        // how slow first-order GRAPE is; halve the rate when the error rose.
        if (err > prev_err && lr > 1e-6) lr *= 0.5;
        prev_err = err;
        for (std::size_t i = 0; i < x.size(); ++i) {
            x[i] = std::clamp(x[i] - lr * grad[i], problem.amp_lower, problem.amp_upper);
        }
        ++result.evaluations;
    }
    if (iterations <= 0) {
        result.initial_fid_err = cp.fid_err(problem.initial_amps);
    }
    result.iterations = iterations;
    result.final_amps = cp.unflatten(x);
    result.final_evolution = cp.evolution(result.final_amps);
    result.final_fid_err = cp.fid_err_of(result.final_evolution);
    result.reason = optim::StopReason::kMaxIterations;
    return result;
}

GrapeResult grape_gradient_descent(const GrapeProblem& problem, double learning_rate,
                                   int iterations) {
    return grape_gradient_descent(ControlProblem(problem), learning_rate, iterations);
}

RobustGrapeResult grape_robust(const GrapeProblem& problem,
                               const std::vector<Mat>& ensemble_drifts,
                               const std::vector<double>& weights,
                               const optim::LbfgsBOptions& opts_in) {
    if (ensemble_drifts.empty() || ensemble_drifts.size() != weights.size()) {
        throw std::invalid_argument("grape_robust: ensemble/weights mismatch");
    }
    if (problem.fidelity == FidelityType::kTraceDiff) {
        throw std::invalid_argument("grape_robust: closed-system only");
    }
    double wsum = 0.0;
    for (double w : weights) wsum += w;
    if (wsum <= 0.0) throw std::invalid_argument("grape_robust: weights must sum > 0");

    // One evaluator per ensemble member; they share the amplitude table.
    std::vector<std::unique_ptr<ControlProblem>> evals;
    for (std::size_t i = 0; i < ensemble_drifts.size(); ++i) {
        GrapeProblem member = problem;
        member.system.drift = problem.system.drift + ensemble_drifts[i];
        member.energy_penalty = 0.0;  // applied once, below
        evals.push_back(std::make_unique<ControlProblem>(member, false));
    }

    RobustGrapeResult result;
    result.combined.initial_amps = problem.initial_amps;

    optim::Objective obj = [&](const std::vector<double>& x, std::vector<double>& grad) {
        grad.assign(x.size(), 0.0);
        std::vector<double> g(x.size());
        double err = 0.0;
        for (std::size_t i = 0; i < evals.size(); ++i) {
            const double w = weights[i] / wsum;
            err += w * evals[i]->objective(x, g);
            for (std::size_t k = 0; k < x.size(); ++k) grad[k] += w * g[k];
        }
        if (problem.energy_penalty > 0.0) {
            const double pw = problem.energy_penalty / static_cast<double>(x.size());
            for (std::size_t k = 0; k < x.size(); ++k) {
                err += pw * x[k] * x[k];
                grad[k] += 2.0 * pw * x[k];
            }
        }
        return err;
    };

    optim::LbfgsBOptions opts = opts_in;
    opts.iter_callback = [&](const optim::IterationRecord& rec) {
        result.combined.fid_err_history.push_back(rec.cost);
        result.combined.iteration_records.push_back(rec);
    };
    const optim::Bounds bounds = optim::Bounds::uniform(
        evals[0]->n_params(), problem.amp_lower, problem.amp_upper);
    const optim::OptimResult opt =
        optim::lbfgsb_minimize(obj, evals[0]->flatten(problem.initial_amps), bounds, opts);

    result.combined.final_amps = evals[0]->unflatten(opt.x);
    result.combined.iterations = opt.iterations;
    result.combined.evaluations = opt.evaluations;
    result.combined.reason = opt.reason;
    double werr = 0.0, ierr = 0.0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const double e = evals[i]->fid_err(result.combined.final_amps);
        result.member_errors.push_back(e);
        werr += weights[i] / wsum * e;
        ierr += weights[i] / wsum * evals[i]->fid_err(problem.initial_amps);
    }
    result.combined.initial_fid_err = ierr;
    result.combined.final_fid_err = werr;
    result.combined.final_evolution = evals[0]->evolution(result.combined.final_amps);
    return result;
}

double evaluate_fid_err(const GrapeProblem& problem, const ControlAmplitudes& amps) {
    GrapeProblem p = problem;
    p.initial_amps = amps;
    return ControlProblem(p).fid_err(amps);
}

double evaluate_fid_err_and_grad(const GrapeProblem& problem, const ControlAmplitudes& amps,
                                 std::vector<double>& grad) {
    GrapeProblem p = problem;
    p.initial_amps = amps;
    const ControlProblem cp(p);
    return cp.objective(cp.flatten(amps), grad);
}

Mat evaluate_evolution(const GrapeProblem& problem, const ControlAmplitudes& amps) {
    GrapeProblem p = problem;
    p.initial_amps = amps;
    return ControlProblem(p).evolution(amps);
}

}  // namespace qoc::control
