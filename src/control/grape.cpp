#include "control/grape.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "linalg/expm.hpp"
#include "obs/obs.hpp"

#ifdef QOC_HAVE_OPENMP
#include <omp.h>
#endif

namespace qoc::control {

namespace {

using linalg::cplx;
constexpr cplx kI{0.0, 1.0};

inline std::size_t max_threads() {
#ifdef QOC_HAVE_OPENMP
    return static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
#else
    return 1;
#endif
}

inline std::size_t thread_id() {
#ifdef QOC_HAVE_OPENMP
    return static_cast<std::size_t>(omp_get_thread_num());
#else
    return 0;
#endif
}

/// Shared machinery for closed/open GRAPE objective evaluation.
class PwcEvaluator {
public:
    PwcEvaluator(const GrapeProblem& problem, bool open_system)
        : prob_(problem), open_(open_system) {
        n_ctrl_ = prob_.system.ctrls.size();
        n_ts_ = prob_.n_timeslots;
        if (n_ts_ == 0) throw std::invalid_argument("GRAPE: n_timeslots must be positive");
        if (n_ctrl_ == 0) throw std::invalid_argument("GRAPE: need at least one control");
        if (prob_.evo_time <= 0.0) throw std::invalid_argument("GRAPE: evo_time must be positive");
        dt_ = prob_.evo_time / static_cast<double>(n_ts_);
        if (prob_.initial_amps.size() != n_ts_) {
            throw std::invalid_argument("GRAPE: initial_amps slot count mismatch");
        }
        for (const auto& slot : prob_.initial_amps) {
            if (slot.size() != n_ctrl_) {
                throw std::invalid_argument("GRAPE: initial_amps control count mismatch");
            }
        }
        if (open_ && prob_.fidelity != FidelityType::kTraceDiff) {
            throw std::invalid_argument("GRAPE (open): fidelity must be kTraceDiff");
        }
        if (!open_ && prob_.fidelity == FidelityType::kTraceDiff) {
            throw std::invalid_argument("GRAPE (closed): use kPsu or kSu");
        }

        // Comparison matrix for the trace overlap: plain target, the target
        // sandwiched into the big space by the subspace isometry, or the
        // rank-one |psi_t><psi_0| operator for state transfer.
        if (prob_.state_transfer) {
            if (open_) {
                throw std::invalid_argument("GRAPE: state transfer is closed-system only");
            }
            if (prob_.fidelity != FidelityType::kPsu) {
                throw std::invalid_argument("GRAPE: state transfer requires kPsu");
            }
            const Mat& psi0 = prob_.state_transfer->psi_initial;
            const Mat& psit = prob_.state_transfer->psi_target;
            if (psi0.cols() != 1 || psit.cols() != 1 ||
                psi0.rows() != prob_.system.drift.rows() || psit.rows() != psi0.rows()) {
                throw std::invalid_argument("GRAPE: state-transfer ket shape mismatch");
            }
            // |<psi_t|U|psi_0>| = |Tr(M^dag U)| with M = |psi_t><psi_0|.
            overlap_target_ = psit * psi0.adjoint();
            norm_dim_ = 1.0;
        } else if (prob_.subspace_isometry) {
            if (open_) {
                throw std::invalid_argument("GRAPE: subspace fidelity is closed-system only");
            }
            const Mat& p = *prob_.subspace_isometry;
            if (p.rows() != prob_.system.drift.rows() || p.cols() != prob_.target.rows()) {
                throw std::invalid_argument("GRAPE: isometry shape mismatch");
            }
            overlap_target_ = p * prob_.target * p.adjoint();
            norm_dim_ = static_cast<double>(prob_.target.rows());
        } else {
            if (prob_.target.rows() != prob_.system.drift.rows()) {
                throw std::invalid_argument("GRAPE: target dimension mismatch");
            }
            overlap_target_ = prob_.target;
            norm_dim_ = static_cast<double>(prob_.target.rows());
        }

        // Model invariants (checked builds only): Hermitian generators,
        // unitary gate targets / trace-preserving superoperator targets,
        // normalized transfer kets.
        if (contracts::enabled()) {
            if (!open_) {
                contracts::check_hermitian(prob_.system.drift, "GRAPE: drift H_0");
                for (const Mat& c : prob_.system.ctrls) {
                    contracts::check_hermitian(c, "GRAPE: control H_j");
                }
                if (prob_.state_transfer) {
                    contracts::check_normalized_ket(prob_.state_transfer->psi_initial,
                                                    "GRAPE: psi_initial");
                    contracts::check_normalized_ket(prob_.state_transfer->psi_target,
                                                    "GRAPE: psi_target");
                } else {
                    contracts::check_unitary(prob_.target, "GRAPE: target gate");
                }
            } else {
                contracts::check_trace_preserving(prob_.target, "GRAPE: target superop", 1e-6);
            }
        }

        // Pre-scale control generators into exponent directions.
        const cplx scale = open_ ? cplx{dt_, 0.0} : (-kI * dt_);
        for (const Mat& c : prob_.system.ctrls) exp_dirs_.push_back(scale * c);

        // Shared-Pade for both systems.  Closed-system slot exponents are
        // anti-Hermitian and *could* take the Daleckii-Krein spectral path
        // (kAuto), but the optimizer trajectory is chaotic in the last few
        // digits: switching the arithmetic shifts converged design errors at
        // the ~1e-6 level on the CX benchmark.  Pade keeps the roundoff
        // profile of the historical augmented-block gradients (design
        // fidelities reproduce to <= 1e-9) while still getting the
        // shared-intermediate speedup; the spectral path stays available to
        // propagator builders, where no optimizer feeds back on the result.
        method_ = linalg::ExpmMethod::kPade;
    }

    std::size_t n_params() const { return n_ts_ * n_ctrl_; }
    std::size_t n_ctrl() const { return n_ctrl_; }
    std::size_t n_ts() const { return n_ts_; }
    double dt() const { return dt_; }

    ControlAmplitudes unflatten(const std::vector<double>& x) const {
        ControlAmplitudes amps(n_ts_, std::vector<double>(n_ctrl_));
        for (std::size_t k = 0; k < n_ts_; ++k)
            for (std::size_t j = 0; j < n_ctrl_; ++j) amps[k][j] = x[k * n_ctrl_ + j];
        return amps;
    }

    std::vector<double> flatten(const ControlAmplitudes& amps) const {
        std::vector<double> x(n_params());
        for (std::size_t k = 0; k < n_ts_; ++k)
            for (std::size_t j = 0; j < n_ctrl_; ++j) x[k * n_ctrl_ + j] = amps[k][j];
        return x;
    }

    /// Slot exponent `scale * (drift + sum u_j ctrl_j)`, written into `out`
    /// without allocating (on shape reuse).  `amps` points at `n_ctrl_`
    /// contiguous amplitudes.
    void slot_exponent_into(const double* amps, Mat& out) const {
        out = prob_.system.drift;
        for (std::size_t j = 0; j < n_ctrl_; ++j) {
            linalg::add_scaled(out, cplx{amps[j], 0.0}, prob_.system.ctrls[j]);
        }
        out *= open_ ? cplx{dt_, 0.0} : (-kI * dt_);
    }

    /// Slot exponent `scale * (drift + sum u_j ctrl_j)`.
    Mat slot_exponent(const std::vector<double>& amps) const {
        Mat out;
        slot_exponent_into(amps.data(), out);
        return out;
    }

    /// Final evolution operator for an amplitude table.
    Mat evolution(const ControlAmplitudes& amps) const {
        ensure_scratch(1);
        EvalScratch& sc = scratch_[0];
        Mat total = Mat::identity(prob_.system.drift.rows());
        for (std::size_t k = 0; k < n_ts_; ++k) {
            slot_exponent_into(amps[k].data(), sc.gen);
            linalg::expm_into(sc.gen, sc.prop, sc.ws, method_);
            linalg::gemm_into(sc.prop, total, sc.tmp);
            std::swap(total, sc.tmp);
        }
        return total;
    }

    /// Fidelity error of a final evolution operator.
    double fid_err_of(const Mat& evo) const {
        switch (prob_.fidelity) {
            case FidelityType::kPsu: {
                const cplx g = linalg::hs_inner(overlap_target_, evo);
                return 1.0 - std::norm(g) / (norm_dim_ * norm_dim_);
            }
            case FidelityType::kSu: {
                const cplx g = linalg::hs_inner(overlap_target_, evo);
                return 1.0 - g.real() / norm_dim_;
            }
            case FidelityType::kTraceDiff: {
                const Mat diff = prob_.target - evo;
                const double fro = diff.frobenius_norm();
                return 0.5 * fro * fro / static_cast<double>(evo.rows());
            }
        }
        return 1.0;
    }

    /// Full objective: fidelity error and its exact gradient.
    ///
    /// Zero-alloc contract: per-slot propagators, Frechet derivatives,
    /// partial products and all expm intermediates live in evaluator-owned
    /// workspaces (one per OpenMP thread) that are reused across the
    /// thousands of L-BFGS-B evaluations; after the first call at a given
    /// problem shape the hot loop performs no heap allocation.  Results are
    /// bit-identical for any thread count: every slot's computation is
    /// independent and writes to disjoint storage.
    double objective(const std::vector<double>& x, std::vector<double>& grad) const {
        obs::Span span("grape.objective");
        ensure_scratch(max_threads());
        props_.resize(n_ts_);
        dprops_.resize(n_ts_ * n_ctrl_);

        // Per-slot propagators and their control derivatives: e^A and every
        // L(A, E_j) from ONE shared-intermediate call per slot (the old code
        // paid one augmented 2Nx2N expm per control and threw away all but
        // the first propagator).
#ifdef QOC_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
        // Signed induction variable: MSVC's OpenMP rejects unsigned ones.
        for (std::int64_t ki = 0; ki < static_cast<std::int64_t>(n_ts_); ++ki) {
            const std::size_t k = static_cast<std::size_t>(ki);
            EvalScratch& sc = scratch_[thread_id()];
            slot_exponent_into(&x[k * n_ctrl_], sc.gen);
            linalg::expm_frechet_multi(sc.gen, exp_dirs_.data(), n_ctrl_, props_[k],
                                       &dprops_[k * n_ctrl_], sc.ws, method_);
        }

        // Forward partial products fwd[k] = P_k ... P_0 and backward
        // products bwd[k] = P_{N-1} ... P_{k+1}, into reused storage.
        fwd_.resize(n_ts_);
        bwd_.resize(n_ts_);
        fwd_[0] = props_[0];
        for (std::size_t k = 1; k < n_ts_; ++k) linalg::gemm_into(props_[k], fwd_[k - 1], fwd_[k]);
        const std::size_t dim = prob_.system.drift.rows();
        bwd_[n_ts_ - 1].resize(dim, dim);
        for (std::size_t i = 0; i < dim; ++i) bwd_[n_ts_ - 1](i, i) = cplx{1.0, 0.0};
        for (std::size_t k = n_ts_ - 1; k-- > 0;) {
            linalg::gemm_into(bwd_[k + 1], props_[k + 1], bwd_[k]);
        }

        const Mat& evo = fwd_.back();
        const double err = fid_err_of(evo);

        // Cost-side matrix C such that d(val)/du = Tr((fwd_{k-1} C bwd_k) dP).
        cplx g_overlap{0.0, 0.0};
        if (prob_.fidelity == FidelityType::kTraceDiff) {
            c_adj_.resize(dim, dim);
            for (std::size_t i = 0; i < dim; ++i)
                for (std::size_t j = 0; j < dim; ++j)
                    c_adj_(j, i) = std::conj(prob_.target(i, j) - evo(i, j));
        } else {
            g_overlap = linalg::hs_inner(overlap_target_, evo);
            c_adj_.resize(overlap_target_.cols(), overlap_target_.rows());
            for (std::size_t i = 0; i < overlap_target_.rows(); ++i)
                for (std::size_t j = 0; j < overlap_target_.cols(); ++j)
                    c_adj_(j, i) = std::conj(overlap_target_(i, j));
        }

        grad.assign(n_params(), 0.0);
#ifdef QOC_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
        for (std::int64_t ki = 0; ki < static_cast<std::int64_t>(n_ts_); ++ki) {
            const std::size_t k = static_cast<std::size_t>(ki);
            EvalScratch& sc = scratch_[thread_id()];
            // R_k = fwd_{k-1} * C * bwd_k  (so Tr(C bwd dP fwd) = Tr(R dP)).
            linalg::gemm_into(c_adj_, bwd_[k], sc.tmp);
            const Mat* r = &sc.tmp;
            if (k > 0) {
                linalg::gemm_into(fwd_[k - 1], sc.tmp, sc.prop);
                r = &sc.prop;
            }
            for (std::size_t j = 0; j < n_ctrl_; ++j) {
                const cplx dg = linalg::trace_of_product(*r, dprops_[k * n_ctrl_ + j]);
                double derr = 0.0;
                switch (prob_.fidelity) {
                    case FidelityType::kPsu:
                        derr = -2.0 * (std::conj(g_overlap) * dg).real() /
                               (norm_dim_ * norm_dim_);
                        break;
                    case FidelityType::kSu:
                        derr = -dg.real() / norm_dim_;
                        break;
                    case FidelityType::kTraceDiff:
                        derr = -dg.real() / static_cast<double>(dim);
                        break;
                }
                grad[k * n_ctrl_ + j] = derr;
            }
        }
        double total = err;
        if (prob_.energy_penalty > 0.0) {
            const double w = prob_.energy_penalty / static_cast<double>(n_params());
            double penalty = 0.0;
            for (std::size_t i = 0; i < n_params(); ++i) {
                penalty += w * x[i] * x[i];
                grad[i] += 2.0 * w * x[i];
            }
            total = err + penalty;
        }
        contracts::check_finite(total, "GRAPE objective: cost");
        contracts::check_all_finite(grad, "GRAPE objective: gradient");
        return total;
    }

private:
    /// Per-thread scratch: the expm engine workspace plus the slot/gradient
    /// temporaries.  Shapes stabilize after the first objective call, so
    /// reuse is allocation-free.
    struct EvalScratch {
        linalg::ExpmWorkspace ws;
        Mat gen, prop, tmp;
    };

    void ensure_scratch(std::size_t n_threads) const {
        if (scratch_.size() < n_threads) scratch_.resize(n_threads);
    }

    const GrapeProblem& prob_;
    bool open_;
    std::size_t n_ctrl_ = 0;
    std::size_t n_ts_ = 0;
    double dt_ = 0.0;
    double norm_dim_ = 1.0;
    Mat overlap_target_;
    std::vector<Mat> exp_dirs_;
    linalg::ExpmMethod method_ = linalg::ExpmMethod::kAuto;

    // Reusable evaluation workspace (mutable: objective() is logically
    // const; these caches never change observable results).
    mutable std::vector<EvalScratch> scratch_;
    mutable std::vector<Mat> props_;   ///< per-slot propagators
    mutable std::vector<Mat> dprops_;  ///< [slot * n_ctrl + ctrl] Frechet derivatives
    mutable std::vector<Mat> fwd_, bwd_;
    mutable Mat c_adj_;
};

GrapeResult run_lbfgsb(const GrapeProblem& problem, bool open_system,
                       const optim::LbfgsBOptions& opts_in) {
    PwcEvaluator eval(problem, open_system);

    GrapeResult result;
    result.initial_amps = problem.initial_amps;
    result.initial_fid_err = eval.fid_err_of(eval.evolution(problem.initial_amps));

    optim::Bounds bounds =
        optim::Bounds::uniform(eval.n_params(), problem.amp_lower, problem.amp_upper);
    if (!problem.amp_lower_per_ctrl.empty() || !problem.amp_upper_per_ctrl.empty()) {
        const std::size_t n_ctrl = problem.system.ctrls.size();
        if (problem.amp_lower_per_ctrl.size() != n_ctrl ||
            problem.amp_upper_per_ctrl.size() != n_ctrl) {
            throw std::invalid_argument("GRAPE: per-control bounds size mismatch");
        }
        for (std::size_t k = 0; k < eval.n_ts(); ++k) {
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                bounds.lower[k * n_ctrl + j] = problem.amp_lower_per_ctrl[j];
                bounds.upper[k * n_ctrl + j] = problem.amp_upper_per_ctrl[j];
            }
        }
    }

    optim::Objective obj = [&](const std::vector<double>& x, std::vector<double>& g) {
        // Hardware-range invariant: L-BFGS-B evaluates only in-box iterates
        // (the paper's +-1 PWC amplitude bound, or the user's box).
        if (contracts::enabled()) {
            for (std::size_t i = 0; i < x.size(); ++i) {
                contracts::check_in_range(x[i], bounds.lower[i], bounds.upper[i],
                                          "GRAPE: PWC amplitude iterate", 1e-10);
            }
        }
        return eval.objective(x, g);
    };

    optim::LbfgsBOptions opts = opts_in;
    auto user_iter_cb = opts.iter_callback;
#pragma GCC diagnostic push  // fold deprecated `callback` users into iter_callback
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    auto user_cb = opts.callback;
    opts.callback = nullptr;  // legacy shim folded into iter_callback below
#pragma GCC diagnostic pop
    opts.iter_callback = [&](const optim::IterationRecord& rec) {
        result.fid_err_history.push_back(rec.cost);
        result.iteration_records.push_back(rec);
        if (user_iter_cb) user_iter_cb(rec);
        if (user_cb) user_cb(rec.iteration, rec.cost, rec.grad_norm);
    };

    const optim::OptimResult opt =
        optim::lbfgsb_minimize(obj, eval.flatten(problem.initial_amps), bounds, opts);

    result.final_amps = eval.unflatten(opt.x);
    result.final_evolution = eval.evolution(result.final_amps);
    result.final_fid_err = eval.fid_err_of(result.final_evolution);
    result.iterations = opt.iterations;
    result.evaluations = opt.evaluations;
    result.reason = opt.reason;
    return result;
}

}  // namespace

GrapeResult grape_unitary(const GrapeProblem& problem, const optim::LbfgsBOptions& opts) {
    return run_lbfgsb(problem, /*open_system=*/false, opts);
}

GrapeResult grape_lindblad(const GrapeProblem& problem, const optim::LbfgsBOptions& opts) {
    return run_lbfgsb(problem, /*open_system=*/true, opts);
}

GrapeResult grape_gradient_descent(const GrapeProblem& problem, double learning_rate,
                                   int iterations) {
    const bool open_system = problem.fidelity == FidelityType::kTraceDiff;
    PwcEvaluator eval(problem, open_system);

    GrapeResult result;
    result.initial_amps = problem.initial_amps;

    std::vector<double> x = eval.flatten(problem.initial_amps);
    std::vector<double> grad;
    double lr = learning_rate;
    double prev_err = 0.0;
    const auto t_start = std::chrono::steady_clock::now();
    for (int it = 0; it < iterations; ++it) {
        const double err = eval.objective(x, grad);
        if (it == 0) {
            // The first objective call evaluates the unmodified amplitudes,
            // so its value *is* the initial fidelity error; a separate
            // evolution() pass would redo all n_ts propagators.
            result.initial_fid_err = err;
            prev_err = err;
        }
        result.fid_err_history.push_back(err);
        {
            optim::IterationRecord rec;
            rec.iteration = it;
            rec.cost = err;
            for (double gv : grad) rec.grad_norm = std::max(rec.grad_norm, std::abs(gv));
            rec.step = lr;
            rec.n_fun_evals = it + 1;
            rec.wall_time_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t_start)
                                  .count();
            result.iteration_records.push_back(rec);
            obs::emit_optimizer_iteration("grape_gd", rec.iteration, rec.cost, rec.grad_norm,
                                          rec.step, rec.n_fun_evals, rec.wall_time_s);
        }
        // Simple backtracking: a diverging fixed-rate step would overstate
        // how slow first-order GRAPE is; halve the rate when the error rose.
        if (err > prev_err && lr > 1e-6) lr *= 0.5;
        prev_err = err;
        for (std::size_t i = 0; i < x.size(); ++i) {
            x[i] = std::clamp(x[i] - lr * grad[i], problem.amp_lower, problem.amp_upper);
        }
        ++result.evaluations;
    }
    if (iterations <= 0) {
        result.initial_fid_err = eval.fid_err_of(eval.evolution(problem.initial_amps));
    }
    result.iterations = iterations;
    result.final_amps = eval.unflatten(x);
    result.final_evolution = eval.evolution(result.final_amps);
    result.final_fid_err = eval.fid_err_of(result.final_evolution);
    result.reason = optim::StopReason::kMaxIterations;
    return result;
}

RobustGrapeResult grape_robust(const GrapeProblem& problem,
                               const std::vector<Mat>& ensemble_drifts,
                               const std::vector<double>& weights,
                               const optim::LbfgsBOptions& opts_in) {
    if (ensemble_drifts.empty() || ensemble_drifts.size() != weights.size()) {
        throw std::invalid_argument("grape_robust: ensemble/weights mismatch");
    }
    if (problem.fidelity == FidelityType::kTraceDiff) {
        throw std::invalid_argument("grape_robust: closed-system only");
    }
    double wsum = 0.0;
    for (double w : weights) wsum += w;
    if (wsum <= 0.0) throw std::invalid_argument("grape_robust: weights must sum > 0");

    // One problem (and evaluator) per ensemble member; they share the
    // amplitude table.
    std::vector<GrapeProblem> member_problems(ensemble_drifts.size(), problem);
    std::vector<std::unique_ptr<PwcEvaluator>> evals;
    for (std::size_t i = 0; i < ensemble_drifts.size(); ++i) {
        member_problems[i].system.drift = problem.system.drift + ensemble_drifts[i];
        member_problems[i].energy_penalty = 0.0;  // applied once, below
        evals.push_back(std::make_unique<PwcEvaluator>(member_problems[i], false));
    }

    RobustGrapeResult result;
    result.combined.initial_amps = problem.initial_amps;

    optim::Objective obj = [&](const std::vector<double>& x, std::vector<double>& grad) {
        grad.assign(x.size(), 0.0);
        std::vector<double> g(x.size());
        double err = 0.0;
        for (std::size_t i = 0; i < evals.size(); ++i) {
            const double w = weights[i] / wsum;
            err += w * evals[i]->objective(x, g);
            for (std::size_t k = 0; k < x.size(); ++k) grad[k] += w * g[k];
        }
        if (problem.energy_penalty > 0.0) {
            const double pw = problem.energy_penalty / static_cast<double>(x.size());
            for (std::size_t k = 0; k < x.size(); ++k) {
                err += pw * x[k] * x[k];
                grad[k] += 2.0 * pw * x[k];
            }
        }
        return err;
    };

    optim::LbfgsBOptions opts = opts_in;
    opts.iter_callback = [&](const optim::IterationRecord& rec) {
        result.combined.fid_err_history.push_back(rec.cost);
        result.combined.iteration_records.push_back(rec);
    };
    const optim::Bounds bounds = optim::Bounds::uniform(
        evals[0]->n_params(), problem.amp_lower, problem.amp_upper);
    const optim::OptimResult opt =
        optim::lbfgsb_minimize(obj, evals[0]->flatten(problem.initial_amps), bounds, opts);

    result.combined.final_amps = evals[0]->unflatten(opt.x);
    result.combined.iterations = opt.iterations;
    result.combined.evaluations = opt.evaluations;
    result.combined.reason = opt.reason;
    double werr = 0.0, ierr = 0.0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const double e = evals[i]->fid_err_of(evals[i]->evolution(result.combined.final_amps));
        result.member_errors.push_back(e);
        werr += weights[i] / wsum * e;
        ierr += weights[i] / wsum *
                evals[i]->fid_err_of(evals[i]->evolution(problem.initial_amps));
    }
    result.combined.initial_fid_err = ierr;
    result.combined.final_fid_err = werr;
    result.combined.final_evolution = evals[0]->evolution(result.combined.final_amps);
    return result;
}

double evaluate_fid_err(const GrapeProblem& problem, const ControlAmplitudes& amps) {
    const bool open_system = problem.fidelity == FidelityType::kTraceDiff;
    GrapeProblem p = problem;
    p.initial_amps = amps;
    PwcEvaluator eval(p, open_system);
    return eval.fid_err_of(eval.evolution(amps));
}

double evaluate_fid_err_and_grad(const GrapeProblem& problem, const ControlAmplitudes& amps,
                                 std::vector<double>& grad) {
    const bool open_system = problem.fidelity == FidelityType::kTraceDiff;
    GrapeProblem p = problem;
    p.initial_amps = amps;
    PwcEvaluator eval(p, open_system);
    return eval.objective(eval.flatten(amps), grad);
}

Mat evaluate_evolution(const GrapeProblem& problem, const ControlAmplitudes& amps) {
    const bool open_system = problem.fidelity == FidelityType::kTraceDiff;
    GrapeProblem p = problem;
    p.initial_amps = amps;
    PwcEvaluator eval(p, open_system);
    return eval.evolution(amps);
}

}  // namespace qoc::control
