/// \file goat.hpp
/// \brief GOAT-style optimization of analytic (Fourier-parameterized)
///        controls.
///
/// The paper cites GOAT (Machnes et al., PRL 120, 150401) as a modern
/// alternative to piecewise-constant GRAPE: the controls are smooth analytic
/// functions of a few parameters, and the gradient with respect to those
/// parameters is exact.  Here each control is
///
///   u_j(t; theta) = squash( env(t) * sum_n [ a_{jn} sin(w_n t)
///                                          + b_{jn} cos(w_n t) ] )
///
/// with w_n = 2 pi n / T, an optional smooth envelope forcing u(0)=u(T)=0,
/// and a tanh squash keeping |u| < amp_bound smoothly (so the gradient
/// remains exact, unlike hard clipping).  The time grid is discretized
/// finely; gradients chain GRAPE's exact per-slot derivative through
/// d u / d theta.

#pragma once

#include "control/grape.hpp"
#include "optim/lbfgsb.hpp"

namespace qoc::control {

struct GoatOptions {
    std::size_t n_harmonics = 4;    ///< Fourier components per control
    std::size_t n_fine = 128;       ///< fine PWC slots for propagation
    double amp_bound = 0.0;         ///< tanh squash bound; <= 0 disables
    bool use_envelope = true;       ///< multiply by sin(pi t / T) (zero ends)
    double param_bound = 2.0;       ///< box on the Fourier coefficients
    int max_iterations = 300;
    double target_fid_err = 1e-10;
    std::vector<double> initial_params;  ///< optional warm start (size 2*H*n_ctrl)
};

struct GoatResult {
    std::vector<double> params;       ///< optimized Fourier coefficients
    ControlAmplitudes final_amps;     ///< fine-grid samples of the controls
    double initial_fid_err = 1.0;
    double final_fid_err = 1.0;
    int iterations = 0;
    int evaluations = 0;
    optim::StopReason reason = optim::StopReason::kMaxIterations;
};

/// Optimizes the analytic controls for a (closed- or open-system)
/// GrapeProblem; the problem's n_timeslots/initial_amps are ignored in favor
/// of the fine grid and Fourier parameterization.
GoatResult goat_optimize(const GrapeProblem& problem, const GoatOptions& options = {});

/// Samples the parameterized controls on `n_fine` slots (exposed for
/// plotting and testing).
ControlAmplitudes goat_controls(const std::vector<double>& params, std::size_t n_ctrl,
                                double evo_time, const GoatOptions& options);

}  // namespace qoc::control
