/// \file krotov.hpp
/// \brief Krotov's method for closed-system gate synthesis.
///
/// The other foundational quantum-optimal-control algorithm the paper cites
/// (Goerz et al., SciPost Phys. 7, 80).  Unlike GRAPE's concurrent gradient
/// update, Krotov updates the controls *sequentially in time* using
/// backward-propagated co-states, which guarantees monotonic convergence of
/// the objective for any positive step parameter lambda.
///
/// Discretized first-order update for the PSU gate functional
/// F = |Tr(U_t^dag U)|^2 / d^2:
///   chi_k(T)   = (tau / d^2) U_t |e_k>          (co-state boundary)
///   chi_k(t)   : backward-propagated with the OLD controls
///   psi_k(t)   : forward-propagated with the NEW controls (sequential)
///   u_new_j(t) = u_old_j(t) + (1/lambda_j) Im sum_k <chi_k(t)|H_j|psi_k(t)>

#pragma once

#include "control/grape.hpp"

namespace qoc::control {

struct KrotovOptions {
    double lambda = 1.0;        ///< inverse step size (> 0); larger = smaller steps
    int max_iterations = 200;
    double target_fid_err = 1e-10;
    /// Stop when the per-iteration improvement drops below this.
    double delta_tol = 1e-14;
};

/// Runs Krotov's method on a closed-system GrapeProblem (kPsu or kSu;
/// subspace isometry supported; amplitude bounds enforced by clipping each
/// sequential update).  Returns the same result type as GRAPE so the two
/// plug into the same comparisons.
GrapeResult krotov_unitary(const GrapeProblem& problem, const KrotovOptions& options = {});

/// Same, over an already-constructed shared evaluator (closed-system only).
GrapeResult krotov_unitary(const ControlProblem& cp, const KrotovOptions& options = {});

}  // namespace qoc::control
