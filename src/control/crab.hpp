/// \file crab.hpp
/// \brief CRAB (Chopped RAndom Basis) optimization baseline.
///
/// CRAB expands each control in a truncated, randomly-detuned Fourier basis
/// modulating a seed envelope and minimizes the gate infidelity over the
/// (few) basis coefficients with a direct-search method (Nelder-Mead).  The
/// paper cites CRAB's direct search as slow compared to gradient methods;
/// the optimizer-comparison ablation quantifies that claim.

#pragma once

#include <cstdint>

#include "control/grape.hpp"

namespace qoc::control {

struct CrabOptions {
    std::size_t n_basis = 4;       ///< Fourier components per control
    std::uint64_t seed = 12345;    ///< randomizes the basis frequencies
    double freq_jitter = 0.2;      ///< relative detuning of harmonics
    int max_evaluations = 20000;
    int max_iterations = 5000;
    double coeff_bound = 1.0;      ///< box on the basis coefficients
};

struct CrabResult {
    ControlAmplitudes final_amps;
    double initial_fid_err = 1.0;
    double final_fid_err = 1.0;
    int evaluations = 0;
    optim::StopReason reason = optim::StopReason::kMaxIterations;
    std::vector<double> fid_err_history;  ///< best simplex value per iteration
    std::vector<optim::IterationRecord> iteration_records;
};

/// Runs CRAB on the same problem definition GRAPE uses.  The seed envelopes
/// are the problem's `initial_amps`; CRAB multiplies them by
/// `1 + sum_n a_n sin(w_n t) + b_n cos(w_n t)` and clips to the amplitude
/// bounds.
CrabResult crab_optimize(const GrapeProblem& problem, const CrabOptions& options = {});

/// Same, over an already-constructed shared evaluator.
CrabResult crab_optimize(const ControlProblem& cp, const CrabOptions& options = {});

}  // namespace qoc::control
