#include "control/goat.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "control/control_problem.hpp"

namespace qoc::control {

namespace {

/// Raw (pre-squash) control value and its parameter Jacobian row for one
/// control at one time.
struct BasisEval {
    double envelope;
    std::vector<double> basis;  ///< sin/cos values, 2 * n_harmonics
};

BasisEval eval_basis(double t, double evo_time, const GoatOptions& opts) {
    BasisEval out;
    out.envelope =
        opts.use_envelope ? std::sin(std::numbers::pi * t / evo_time) : 1.0;
    out.basis.resize(2 * opts.n_harmonics);
    for (std::size_t n = 0; n < opts.n_harmonics; ++n) {
        const double w = 2.0 * std::numbers::pi * static_cast<double>(n + 1) / evo_time;
        out.basis[2 * n] = std::sin(w * t);
        out.basis[2 * n + 1] = std::cos(w * t);
    }
    return out;
}

}  // namespace

ControlAmplitudes goat_controls(const std::vector<double>& params, std::size_t n_ctrl,
                                double evo_time, const GoatOptions& opts) {
    const std::size_t per_ctrl = 2 * opts.n_harmonics;
    if (params.size() != n_ctrl * per_ctrl) {
        throw std::invalid_argument("goat_controls: parameter count mismatch");
    }
    ControlAmplitudes amps(opts.n_fine, std::vector<double>(n_ctrl, 0.0));
    const double dt = evo_time / static_cast<double>(opts.n_fine);
    for (std::size_t k = 0; k < opts.n_fine; ++k) {
        const double t = (static_cast<double>(k) + 0.5) * dt;
        const BasisEval be = eval_basis(t, evo_time, opts);
        for (std::size_t j = 0; j < n_ctrl; ++j) {
            double raw = 0.0;
            for (std::size_t m = 0; m < per_ctrl; ++m) {
                raw += params[j * per_ctrl + m] * be.basis[m];
            }
            raw *= be.envelope;
            amps[k][j] =
                (opts.amp_bound > 0.0) ? opts.amp_bound * std::tanh(raw / opts.amp_bound) : raw;
        }
    }
    return amps;
}

GoatResult goat_optimize(const GrapeProblem& problem, const GoatOptions& opts) {
    const std::size_t n_ctrl = problem.system.ctrls.size();
    if (n_ctrl == 0) throw std::invalid_argument("goat_optimize: no controls");
    if (opts.n_harmonics == 0 || opts.n_fine == 0) {
        throw std::invalid_argument("goat_optimize: empty parameterization");
    }
    const std::size_t per_ctrl = 2 * opts.n_harmonics;
    const std::size_t n_params = n_ctrl * per_ctrl;
    const double evo_time = problem.evo_time;
    const double dt = evo_time / static_cast<double>(opts.n_fine);

    // Fine-grid problem used for error/gradient evaluation; amplitude
    // bounds on the inner problem must not clip (the squash handles them).
    GrapeProblem fine = problem;
    fine.n_timeslots = opts.n_fine;
    fine.amp_lower = -1e30;
    fine.amp_upper = 1e30;
    fine.energy_penalty = 0.0;
    // The evaluator validates initial_amps against the fine grid; the seed
    // table is never read by objective()/fid_err(), so a zero table of the
    // right shape stands in for the coarse one inherited from `problem`.
    fine.initial_amps.assign(opts.n_fine, std::vector<double>(n_ctrl, 0.0));
    const ControlProblem cp(fine);

    std::vector<double> theta0 = opts.initial_params;
    if (theta0.empty()) {
        theta0.assign(n_params, 0.0);
        // Seed the cos coefficient of the first harmonic: with the
        // sin(pi t/T) envelope the sin harmonic has exactly zero net area
        // (a PSU saddle with vanishing gradient), while cos(w1 t) does not.
        theta0[1] = 0.3;
        for (std::size_t j = 1; j < n_ctrl; ++j) theta0[j * per_ctrl + 1] = 0.05;
    } else if (theta0.size() != n_params) {
        throw std::invalid_argument("goat_optimize: initial_params size mismatch");
    }

    // Precompute basis rows per fine slot.
    std::vector<BasisEval> basis(opts.n_fine);
    for (std::size_t k = 0; k < opts.n_fine; ++k) {
        basis[k] = eval_basis((static_cast<double>(k) + 0.5) * dt, evo_time, opts);
    }

    GoatResult result;
    optim::Objective obj = [&](const std::vector<double>& theta, std::vector<double>& grad) {
        // Sample controls and keep the raw values for the squash Jacobian.
        ControlAmplitudes amps(opts.n_fine, std::vector<double>(n_ctrl, 0.0));
        std::vector<std::vector<double>> raw(opts.n_fine, std::vector<double>(n_ctrl, 0.0));
        for (std::size_t k = 0; k < opts.n_fine; ++k) {
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                double r = 0.0;
                for (std::size_t m = 0; m < per_ctrl; ++m) {
                    r += theta[j * per_ctrl + m] * basis[k].basis[m];
                }
                r *= basis[k].envelope;
                raw[k][j] = r;
                amps[k][j] = (opts.amp_bound > 0.0)
                                 ? opts.amp_bound * std::tanh(r / opts.amp_bound)
                                 : r;
            }
        }

        std::vector<double> amp_grad;
        const double err = cp.objective(cp.flatten(amps), amp_grad);

        // Chain rule: d err / d theta = sum_k d err / d u_k * d u_k / d theta.
        grad.assign(n_params, 0.0);
        for (std::size_t k = 0; k < opts.n_fine; ++k) {
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                double du = amp_grad[k * n_ctrl + j] * basis[k].envelope;
                if (opts.amp_bound > 0.0) {
                    const double c = std::cosh(raw[k][j] / opts.amp_bound);
                    du /= c * c;  // d/dr [B tanh(r/B)] = sech^2(r/B)
                }
                for (std::size_t m = 0; m < per_ctrl; ++m) {
                    grad[j * per_ctrl + m] += du * basis[k].basis[m];
                }
            }
        }
        return err;
    };

    optim::LbfgsBOptions lopts;
    lopts.max_iterations = opts.max_iterations;
    lopts.target_f = opts.target_fid_err;
    const optim::Bounds bounds =
        optim::Bounds::uniform(n_params, -opts.param_bound, opts.param_bound);

    {
        std::vector<double> g;
        result.initial_fid_err = obj(theta0, g);
    }
    const optim::OptimResult opt = optim::lbfgsb_minimize(obj, theta0, bounds, lopts);

    result.params = opt.x;
    result.final_amps = goat_controls(opt.x, n_ctrl, evo_time, opts);
    result.final_fid_err = cp.fid_err(result.final_amps);
    result.iterations = opt.iterations;
    result.evaluations = opt.evaluations;
    result.reason = opt.reason;
    return result;
}

}  // namespace qoc::control
