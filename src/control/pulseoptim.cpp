#include "control/pulseoptim.hpp"

#include <algorithm>
#include <stdexcept>

#include "control/control_problem.hpp"
#include "control/crab.hpp"
#include "control/goat.hpp"
#include "control/krotov.hpp"
#include "control/pulse_shapes.hpp"
#include "quantum/superop.hpp"

namespace qoc::control {

ControlAmplitudes build_initial_amps(const PulseOptimSpec& spec) {
    const std::size_t n_ts = spec.n_timeslots;
    const std::size_t n_ctrl = spec.h_ctrls.size();
    if (n_ctrl == 0) throw std::invalid_argument("pulse_optim: no control Hamiltonians");
    if (n_ts == 0) throw std::invalid_argument("pulse_optim: n_timeslots must be positive");
    if (spec.explicit_initial_amps) {
        ControlAmplitudes amps = *spec.explicit_initial_amps;
        if (amps.size() != n_ts) {
            throw std::invalid_argument("pulse_optim: explicit seed slot count mismatch");
        }
        for (auto& slot : amps) {
            if (slot.size() != n_ctrl) {
                throw std::invalid_argument("pulse_optim: explicit seed control count mismatch");
            }
            for (double& v : slot) v = std::clamp(v, spec.amp_lower, spec.amp_upper);
        }
        return amps;
    }

    std::vector<std::vector<double>> per_ctrl(n_ctrl);
    switch (spec.initial_pulse) {
        case InitialPulseType::kDrag: {
            // Controls pair up as (I, Q): even index -> Gaussian, odd -> the
            // derivative quadrature.  A lone control gets the Gaussian.
            const DragPulse d = drag_pulse(n_ts);
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                per_ctrl[j] = (j % 2 == 0) ? d.in_phase : d.quadrature;
            }
            break;
        }
        case InitialPulseType::kGaussian:
            for (auto& p : per_ctrl) p = gaussian_pulse(n_ts);
            break;
        case InitialPulseType::kGaussianSquare:
            for (auto& p : per_ctrl) p = gaussian_square_pulse(n_ts);
            break;
        case InitialPulseType::kSine:
            for (auto& p : per_ctrl) p = sine_pulse(n_ts);
            break;
        case InitialPulseType::kSquare:
            for (auto& p : per_ctrl) p = square_pulse(n_ts);
            break;
        case InitialPulseType::kRandom:
            for (std::size_t j = 0; j < n_ctrl; ++j) {
                per_ctrl[j] = random_pulse(n_ts, spec.random_seed + j);
            }
            break;
        case InitialPulseType::kZero:
            for (auto& p : per_ctrl) p = zero_pulse(n_ts);
            break;
    }

    ControlAmplitudes amps(n_ts, std::vector<double>(n_ctrl));
    for (std::size_t k = 0; k < n_ts; ++k) {
        for (std::size_t j = 0; j < n_ctrl; ++j) {
            double v = spec.initial_scale * per_ctrl[j][k];
            amps[k][j] = std::clamp(v, spec.amp_lower, spec.amp_upper);
        }
    }
    return amps;
}

PulseOptimResult pulse_optim(const PulseOptimSpec& spec) {
    if (!spec.u_target.is_square()) {
        throw std::invalid_argument("pulse_optim: target must be square");
    }
    if (!spec.u_target.is_unitary(1e-8)) {
        throw std::invalid_argument("pulse_optim: target must be unitary");
    }
    for (const Mat& h : spec.h_ctrls) {
        if (h.rows() != spec.h_drift.rows()) {
            throw std::invalid_argument("pulse_optim: control dimension mismatch");
        }
    }

    const bool open_system = !spec.collapse_ops.empty();

    GrapeProblem prob;
    prob.n_timeslots = spec.n_timeslots;
    prob.evo_time = spec.evo_time;
    prob.amp_lower = spec.amp_lower;
    prob.amp_upper = spec.amp_upper;
    prob.amp_lower_per_ctrl = spec.amp_lower_per_ctrl;
    prob.amp_upper_per_ctrl = spec.amp_upper_per_ctrl;
    prob.energy_penalty = spec.energy_penalty;
    prob.initial_amps = build_initial_amps(spec);

    if (open_system) {
        if (spec.subspace_isometry) {
            throw std::invalid_argument(
                "pulse_optim: subspace fidelity not supported with collapse operators");
        }
        // Lift everything to Liouville space; compare against the ideal
        // (noise-free) unitary superoperator of the target.
        prob.system.drift = quantum::liouvillian(spec.h_drift, spec.collapse_ops);
        for (const Mat& h : spec.h_ctrls) {
            prob.system.ctrls.push_back(quantum::liouvillian_hamiltonian(h));
        }
        prob.target = quantum::unitary_superop(spec.u_target);
        prob.fidelity = FidelityType::kTraceDiff;
    } else {
        prob.system.drift = spec.h_drift;
        prob.system.ctrls = spec.h_ctrls;
        prob.target = spec.u_target;
        prob.fidelity = spec.closed_fidelity;
        prob.subspace_isometry = spec.subspace_isometry;
    }

    PulseOptimResult result;
    result.dt = spec.evo_time / static_cast<double>(spec.n_timeslots);
    result.open_system = open_system;
    result.initial_amps = prob.initial_amps;

    // ONE evaluator; every optimizer front end below dispatches through it.
    const ControlProblem cp(prob, open_system);

    auto adopt = [&](const GrapeResult& g) {
        result.initial_fid_err = g.initial_fid_err;
        result.final_amps = g.final_amps;
        result.final_fid_err = g.final_fid_err;
        result.final_evolution = g.final_evolution;
        result.iterations = g.iterations;
        result.evaluations = g.evaluations;
        result.reason = g.reason;
        result.fid_err_history = g.fid_err_history;
        result.iteration_records = g.iteration_records;
    };

    switch (spec.method) {
        case OptimMethod::kLbfgsB: {
            optim::LbfgsBOptions opts;
            opts.max_iterations = spec.max_iterations;
            opts.max_evaluations = spec.max_evaluations;
            opts.target_f = spec.target_fid_err;
            adopt(grape_optimize(cp, opts));
            break;
        }
        case OptimMethod::kGradientDescent: {
            adopt(grape_gradient_descent(cp, 0.1, spec.max_iterations));
            break;
        }
        case OptimMethod::kCrab: {
            CrabOptions copts;
            copts.max_evaluations = spec.max_evaluations;
            copts.max_iterations = spec.max_iterations;
            copts.seed = spec.random_seed;
            const CrabResult c = crab_optimize(cp, copts);
            result.initial_fid_err = c.initial_fid_err;
            result.final_amps = c.final_amps;
            result.final_fid_err = c.final_fid_err;
            result.final_evolution = cp.evolution(c.final_amps);
            result.evaluations = c.evaluations;
            result.reason = c.reason;
            result.fid_err_history = c.fid_err_history;
            result.iteration_records = c.iteration_records;
            break;
        }
        case OptimMethod::kKrotov: {
            if (open_system) {
                throw std::invalid_argument("pulse_optim: Krotov is closed-system only");
            }
            KrotovOptions kopts;
            kopts.max_iterations = spec.max_iterations;
            kopts.target_fid_err = spec.target_fid_err;
            adopt(krotov_unitary(cp, kopts));
            break;
        }
        case OptimMethod::kGoat: {
            if (open_system) {
                throw std::invalid_argument("pulse_optim: GOAT is closed-system only");
            }
            GoatOptions gopts;
            gopts.n_fine = spec.n_timeslots;  // keep the spec's PWC grid
            gopts.max_iterations = spec.max_iterations;
            gopts.target_fid_err = spec.target_fid_err;
            const GoatResult g = goat_optimize(prob, gopts);
            result.initial_fid_err = g.initial_fid_err;
            result.final_amps = g.final_amps;
            result.final_fid_err = g.final_fid_err;
            result.final_evolution = cp.evolution(g.final_amps);
            result.iterations = g.iterations;
            result.evaluations = g.evaluations;
            result.reason = g.reason;
            break;
        }
    }
    return result;
}

}  // namespace qoc::control
