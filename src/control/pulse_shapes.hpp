/// \file pulse_shapes.hpp
/// \brief Seed / initial pulse envelopes for the optimizers and the default
///        device calibrations (DRAG, Gaussian, Gaussian-square, sine, ...).
///
/// All generators sample the envelope at `n` uniformly spaced points covering
/// the pulse duration and return unit-peak amplitudes (scale afterwards).

#pragma once

#include <cstdint>
#include <vector>

namespace qoc::control {

/// Gaussian envelope exp(-(t - T/2)^2 / (2 sigma^2)), peak 1 at the center.
/// `sigma_fraction` is sigma as a fraction of the total duration.
std::vector<double> gaussian_pulse(std::size_t n, double sigma_fraction = 0.25);

/// Derivative of the Gaussian (the DRAG quadrature component), normalized to
/// unit peak magnitude.
std::vector<double> gaussian_derivative_pulse(std::size_t n, double sigma_fraction = 0.25);

/// DRAG pair: in-phase Gaussian and the scaled derivative quadrature
/// (Derivative Removal by Adiabatic Gate).  `beta` multiplies the
/// derivative component (units of the returned samples; physically
/// -1/anharmonicity).
struct DragPulse {
    std::vector<double> in_phase;    ///< I component (Gaussian)
    std::vector<double> quadrature;  ///< Q component (beta * dGaussian/dt)
};
DragPulse drag_pulse(std::size_t n, double sigma_fraction = 0.25, double beta = 0.2);

/// Flat-top Gaussian-square: unit plateau of `width_fraction` of the
/// duration with Gaussian rise/fall of `sigma_fraction`.
std::vector<double> gaussian_square_pulse(std::size_t n, double width_fraction = 0.6,
                                          double sigma_fraction = 0.1);

/// Half-period sine arch sin(pi t / T) (the paper's "SINE" seed for CX).
std::vector<double> sine_pulse(std::size_t n);

/// Full sine with `cycles` periods.
std::vector<double> sine_pulse_cycles(std::size_t n, double cycles);

/// Constant (square) pulse of unit amplitude.
std::vector<double> square_pulse(std::size_t n);

/// Deterministic pseudo-random pulse in [-1, 1] (QuTiP's RND initial type).
std::vector<double> random_pulse(std::size_t n, std::uint64_t seed);

/// Zero pulse.
std::vector<double> zero_pulse(std::size_t n);

/// Multiplies every sample by `scale`.
std::vector<double> scaled(std::vector<double> pulse, double scale);

/// Total area (sum * dt) of a sampled pulse.
double pulse_area(const std::vector<double>& pulse, double dt);

/// Resamples a PWC pulse defined on `n_src` slots onto `n_dst` samples
/// (nearest-slot / zero-order hold, how optimized slots map to device dt).
std::vector<double> resample_zoh(const std::vector<double>& pulse, std::size_t n_dst);

}  // namespace qoc::control
