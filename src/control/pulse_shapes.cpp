#include "control/pulse_shapes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace qoc::control {

namespace {
void require_n(std::size_t n) {
    if (n == 0) throw std::invalid_argument("pulse shape: need at least one sample");
}
/// Sample time of index k as a fraction of the duration, centered in slots.
double frac(std::size_t k, std::size_t n) {
    return (static_cast<double>(k) + 0.5) / static_cast<double>(n);
}
}  // namespace

std::vector<double> gaussian_pulse(std::size_t n, double sigma_fraction) {
    require_n(n);
    std::vector<double> p(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double x = (frac(k, n) - 0.5) / sigma_fraction;
        p[k] = std::exp(-0.5 * x * x);
    }
    return p;
}

std::vector<double> gaussian_derivative_pulse(std::size_t n, double sigma_fraction) {
    require_n(n);
    std::vector<double> p(n);
    double peak = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        const double u = frac(k, n) - 0.5;
        const double x = u / sigma_fraction;
        p[k] = -u * std::exp(-0.5 * x * x);
        peak = std::max(peak, std::abs(p[k]));
    }
    if (peak > 0.0) {
        for (double& v : p) v /= peak;
    }
    return p;
}

DragPulse drag_pulse(std::size_t n, double sigma_fraction, double beta) {
    DragPulse d;
    d.in_phase = gaussian_pulse(n, sigma_fraction);
    d.quadrature = gaussian_derivative_pulse(n, sigma_fraction);
    for (double& v : d.quadrature) v *= beta;
    return d;
}

std::vector<double> gaussian_square_pulse(std::size_t n, double width_fraction,
                                          double sigma_fraction) {
    require_n(n);
    if (width_fraction < 0.0 || width_fraction > 1.0) {
        throw std::invalid_argument("gaussian_square_pulse: bad width fraction");
    }
    const double lo = 0.5 - 0.5 * width_fraction;
    const double hi = 0.5 + 0.5 * width_fraction;
    std::vector<double> p(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double t = frac(k, n);
        if (t < lo) {
            const double x = (t - lo) / sigma_fraction;
            p[k] = std::exp(-0.5 * x * x);
        } else if (t > hi) {
            const double x = (t - hi) / sigma_fraction;
            p[k] = std::exp(-0.5 * x * x);
        } else {
            p[k] = 1.0;
        }
    }
    return p;
}

std::vector<double> sine_pulse(std::size_t n) {
    require_n(n);
    std::vector<double> p(n);
    for (std::size_t k = 0; k < n; ++k) p[k] = std::sin(std::numbers::pi * frac(k, n));
    return p;
}

std::vector<double> sine_pulse_cycles(std::size_t n, double cycles) {
    require_n(n);
    std::vector<double> p(n);
    for (std::size_t k = 0; k < n; ++k) {
        p[k] = std::sin(2.0 * std::numbers::pi * cycles * frac(k, n));
    }
    return p;
}

std::vector<double> square_pulse(std::size_t n) {
    require_n(n);
    return std::vector<double>(n, 1.0);
}

std::vector<double> random_pulse(std::size_t n, std::uint64_t seed) {
    require_n(n);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<double> p(n);
    for (double& v : p) v = dist(rng);
    return p;
}

std::vector<double> zero_pulse(std::size_t n) {
    require_n(n);
    return std::vector<double>(n, 0.0);
}

std::vector<double> scaled(std::vector<double> pulse, double scale) {
    for (double& v : pulse) v *= scale;
    return pulse;
}

double pulse_area(const std::vector<double>& pulse, double dt) {
    double area = 0.0;
    for (double v : pulse) area += v * dt;
    return area;
}

std::vector<double> resample_zoh(const std::vector<double>& pulse, std::size_t n_dst) {
    require_n(n_dst);
    if (pulse.empty()) throw std::invalid_argument("resample_zoh: empty source");
    std::vector<double> out(n_dst);
    for (std::size_t k = 0; k < n_dst; ++k) {
        const double t = frac(k, n_dst);
        auto src = std::min<std::size_t>(
            static_cast<std::size_t>(t * static_cast<double>(pulse.size())), pulse.size() - 1);
        out[k] = pulse[src];
    }
    return out;
}

}  // namespace qoc::control
