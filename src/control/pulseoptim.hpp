/// \file pulseoptim.hpp
/// \brief High-level `pulse_optim` front end mirroring QuTiP's
///        `qutip.control.pulseoptim.optimize_pulse_unitary`: build the
///        problem from Hamiltonians, collapse operators and a seed-pulse
///        type, pick the optimizer, and return the optimized PWC amplitudes.
///
/// This is the entry point the paper's workflow uses: define the transmon
/// drift + control Hamiltonians, import decoherence rates from the backend,
/// choose a DRAG/sine/Gaussian-square seed, bound amplitudes to +-1, and run
/// L-BFGS-B.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "control/grape.hpp"

namespace qoc::control {

/// Seed pulse families (QuTiP `init_pulse_type` analogues).
enum class InitialPulseType {
    kDrag,           ///< Gaussian I + derivative Q (pairs controls as I/Q)
    kGaussian,       ///< Gaussian on every control
    kGaussianSquare, ///< flat-top Gaussian on every control
    kSine,           ///< half-period sine arch on every control
    kSquare,         ///< constant on every control
    kRandom,         ///< uniform random in the amplitude bounds
    kZero,           ///< all zeros
};

/// Which numerical optimizer drives the pulse search.  All methods
/// dispatch through the same `control::ControlProblem` evaluator.
enum class OptimMethod {
    kLbfgsB,           ///< second-order GRAPE (the paper's choice)
    kGradientDescent,  ///< first-order GRAPE baseline
    kCrab,             ///< CRAB + Nelder-Mead baseline
    kKrotov,           ///< Krotov's sequential monotone update (closed only)
    kGoat,             ///< GOAT analytic Fourier controls (closed only)
};

struct PulseOptimSpec {
    Mat h_drift;                ///< drift Hamiltonian
    std::vector<Mat> h_ctrls;   ///< control Hamiltonians
    Mat u_target;               ///< target unitary (system dim, or subspace dim
                                ///< when `subspace_isometry` is set)
    std::size_t n_timeslots = 32;
    double evo_time = 1.0;      ///< total pulse duration

    /// Collapse operators; when non-empty the optimization runs in Liouville
    /// space with the TRACEDIFF cost (open-system GRAPE), exactly as the
    /// paper does for the X gate (and disables for sqrt(X)).
    std::vector<Mat> collapse_ops;

    std::optional<Mat> subspace_isometry;  ///< optimize on an embedded qubit

    InitialPulseType initial_pulse = InitialPulseType::kDrag;
    double initial_scale = 0.5;   ///< seed peak amplitude
    /// Explicit seed amplitudes [slot][ctrl]; overrides `initial_pulse`
    /// when set (for physically structured seeds).
    std::optional<ControlAmplitudes> explicit_initial_amps;
    std::uint64_t random_seed = 1234;

    double amp_lower = -1.0;
    double amp_upper = 1.0;
    /// Optional per-control bounds (see GrapeProblem); L-BFGS-B method only.
    std::vector<double> amp_lower_per_ctrl;
    std::vector<double> amp_upper_per_ctrl;
    double energy_penalty = 0.0;  ///< see GrapeProblem::energy_penalty

    OptimMethod method = OptimMethod::kLbfgsB;
    FidelityType closed_fidelity = FidelityType::kPsu;

    double target_fid_err = 1e-10;  ///< stop once the error is this small
    int max_iterations = 500;
    int max_evaluations = 10000;
};

struct PulseOptimResult {
    ControlAmplitudes initial_amps;
    ControlAmplitudes final_amps;
    double initial_fid_err = 1.0;
    double final_fid_err = 1.0;
    Mat final_evolution;        ///< achieved unitary (closed) or superop (open)
    int iterations = 0;
    int evaluations = 0;
    optim::StopReason reason = optim::StopReason::kMaxIterations;
    std::vector<double> fid_err_history;
    /// Per-iteration optimizer telemetry (see optim::IterationRecord).
    std::vector<optim::IterationRecord> iteration_records;
    double dt = 0.0;            ///< slot duration = evo_time / n_timeslots
    bool open_system = false;
};

/// Builds the seed amplitude table for a spec (exposed for plotting the
/// "initial pulse" panels of the paper's figures).
ControlAmplitudes build_initial_amps(const PulseOptimSpec& spec);

/// Runs the full pipeline.  Throws `std::invalid_argument` on malformed
/// specs (dimension mismatches, empty controls, non-unitary target).
PulseOptimResult pulse_optim(const PulseOptimSpec& spec);

}  // namespace qoc::control
