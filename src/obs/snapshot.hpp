/// \file snapshot.hpp
/// \brief Periodic telemetry snapshots: a cold-path background thread that
///        appends `{"type":"snapshot",...}` JSONL lines to the metrics
///        stream every N ms, turning the cumulative counters and latency
///        histograms into a time series.
///
/// Each line carries: the snapshot sequence number and timestamp (ns since
/// the trace epoch), counter DELTAS since the previous snapshot (zero deltas
/// are omitted), quantile summaries (count/p50/p90/p99/p999) of every
/// non-empty latency histogram, and the current gauge values.  Gauge
/// sampling is pluggable: registered source callbacks run right before each
/// snapshot and publish instantaneous state (queue depth, in-flight designs,
/// store occupancy) via `obs::set_gauge`, which is how the service turns
/// its internal state into sampled gauges rather than abusing monotone
/// counters.
///
/// Determinism contract: the Snapshotter only READS telemetry state and
/// writes to the JSONL stream; it never feeds anything back into the
/// numerics, so enabling it cannot perturb the bitwise reproducibility of a
/// run.  Everything here is a cold path (mutexes, heap, clock reads are all
/// fine); the hot-path contracts live in obs.hpp.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qoc::obs {

class Snapshotter {
public:
    /// `period_ms` is the background-thread sampling period; `snapshot_now`
    /// can also be driven manually (tests) without ever calling `start`.
    explicit Snapshotter(std::uint64_t period_ms);
    ~Snapshotter();  ///< stops the thread if running

    Snapshotter(const Snapshotter&) = delete;
    Snapshotter& operator=(const Snapshotter&) = delete;

    /// Registers a gauge source, invoked before every snapshot.  Sources
    /// must be registered before `start` (not thread-safe against the
    /// sampling loop) and should only call `obs::set_gauge`.
    void add_source(std::function<void()> source);

    /// Launches the background sampling thread.  No-op when already
    /// running or when the period is zero.
    void start();

    /// Stops and joins the background thread; emits one final snapshot so
    /// short runs always capture their end state.  Idempotent.
    void stop();

    /// Takes one snapshot immediately (runs sources, appends one JSONL
    /// line).  No-op unless telemetry is enabled.
    void snapshot_now();

    /// Number of snapshot lines emitted so far.
    std::uint64_t snapshots_emitted() const noexcept;

private:
    void run();

    std::uint64_t period_ms_;
    std::vector<std::function<void()>> sources_;
    std::vector<std::uint64_t> prev_counters_;  ///< last-snapshot totals
    std::atomic<std::uint64_t> seq_{0};

    std::mutex mu_;  ///< guards stop_ and serializes snapshot_now
    std::condition_variable cv_;
    bool stop_ = false;
    bool running_ = false;
    std::thread thread_;
};

}  // namespace qoc::obs
