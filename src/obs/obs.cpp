#include "obs/obs.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace qoc::obs {

namespace {

constexpr std::size_t kRingCapacity = 16384;
constexpr std::size_t kNumCounters = static_cast<std::size_t>(Cnt::kCount);

/// Per-thread storage: one padded counter row plus one preallocated span
/// ring.  Owned by the registry, written only by the owning thread; counter
/// cells are relaxed atomics so concurrent reads (counter_value, flush) are
/// race-free without ever taking a lock on the write side.
struct alignas(64) ThreadSlot {
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::vector<TraceEvent> ring;
    std::atomic<std::uint64_t> ring_count{0};  ///< total spans ever recorded
    std::uint32_t tid = 0;

    ThreadSlot() { ring.resize(kRingCapacity); }
};

struct Registry {
    std::mutex mu;  ///< guards slot registration and the cold maps below
    std::vector<std::unique_ptr<ThreadSlot>> slots;
    std::map<std::string, double> gauges;
    std::map<std::string, std::map<std::int64_t, std::uint64_t>> hists;
    std::string trace_path;

    std::mutex io_mu;  ///< guards the JSONL stream
    std::FILE* metrics_file = nullptr;

    std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

/// Leaked singleton: outlives atexit flushing and every thread's last span.
Registry& reg() {
    static Registry* r = new Registry;
    return *r;
}

thread_local ThreadSlot* t_slot = nullptr;

/// Process-wide span id allocator (ids are 1-based; 0 means "no span").
std::atomic<std::uint64_t> g_span_ids{0};

ThreadSlot& slot() {
    if (t_slot == nullptr) {
        Registry& r = reg();
        std::lock_guard<std::mutex> lock(r.mu);
        auto s = std::make_unique<ThreadSlot>();
        s->tid = static_cast<std::uint32_t>(r.slots.size());
        t_slot = s.get();
        r.slots.push_back(std::move(s));
    }
    return *t_slot;
}

/// %.17g round-trips every finite double exactly.
void print_double(std::FILE* f, double v) { std::fprintf(f, "%.17g", v); }

constexpr std::array<const char*, kNumCounters> kCounterNames = {
    "linalg.gemm.calls",
    "linalg.gemv.calls",
    "linalg.lu.factorizations",
    "executor.prop_cache.hits",
    "executor.prop_cache.misses",
    "rb.clifford_memo.hits",
    "rb.clifford_memo.misses",
    "quantum.superop.applies",
    "quantum.superop.csr_applies",
    "quantum.superop.kron_applies",
    "quantum.superop.batch_applies",
    "linalg.expm.pade3",
    "linalg.expm.pade5",
    "linalg.expm.pade7",
    "linalg.expm.pade9",
    "linalg.expm.pade13",
    "linalg.expm.spectral",
    "service.cache.hit",
    "service.cache.miss",
    "service.cache.revalidate",
    "service.queue.depth",
    "service.queue.shed",
};

/// Writes the final metrics object (counters + Pade-order histogram +
/// gauges + named histograms) as one JSONL line.  Caller holds io_mu.
void write_metrics_line(std::FILE* f) {
    std::fprintf(f, "{\"type\":\"metrics\",\"counters\":{");
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        std::fprintf(f, "%s\"%s\":%llu", c == 0 ? "" : ",", kCounterNames[c],
                     static_cast<unsigned long long>(counter_value(static_cast<Cnt>(c))));
    }
    std::fprintf(f, "},\"histograms\":{\"linalg.expm.pade_order\":{");
    const std::pair<const char*, Cnt> pade[] = {
        {"3", Cnt::kExpmPade3},   {"5", Cnt::kExpmPade5}, {"7", Cnt::kExpmPade7},
        {"9", Cnt::kExpmPade9},   {"13", Cnt::kExpmPade13}};
    for (std::size_t i = 0; i < 5; ++i) {
        std::fprintf(f, "%s\"%s\":%llu", i == 0 ? "" : ",", pade[i].first,
                     static_cast<unsigned long long>(counter_value(pade[i].second)));
    }
    std::fprintf(f, "}");
    Registry& r = reg();
    {
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& [name, buckets] : r.hists) {
            std::fprintf(f, ",\"%s\":{", name.c_str());
            bool first = true;
            for (const auto& [value, n] : buckets) {
                std::fprintf(f, "%s\"%lld\":%llu", first ? "" : ",",
                             static_cast<long long>(value),
                             static_cast<unsigned long long>(n));
                first = false;
            }
            std::fprintf(f, "}");
        }
        std::fprintf(f, "},\"gauges\":{");
        bool first = true;
        for (const auto& [name, value] : r.gauges) {
            std::fprintf(f, "%s\"%s\":", first ? "" : ",", name.c_str());
            print_double(f, value);
            first = false;
        }
    }
    std::fprintf(f, "},\"dropped_trace_events\":%llu}\n",
                 static_cast<unsigned long long>(dropped_trace_events()));
}

void write_trace_file(const std::string& path) {
    const std::vector<TraceEvent> events = snapshot_trace_events();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\"traceEvents\":[");
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        // chrome://tracing wants microseconds.  id/parent args let tools
        // rebuild the logical span tree across task boundaries.
        std::fprintf(f,
                     "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{\"id\":%llu,\"parent\":%llu},\"pid\":1,\"tid\":%u}",
                     i == 0 ? "" : ",", e.name, static_cast<double>(e.t0_ns) / 1e3,
                     static_cast<double>(e.dur_ns) / 1e3,
                     static_cast<unsigned long long>(e.id),
                     static_cast<unsigned long long>(e.parent), e.tid);
    }
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\"}\n");
    std::fclose(f);
}

/// Startup activation from the environment; flush at exit when either
/// variable is set.  `g_obs_state` is constant-initialized and `reg()` is
/// function-local, so there is no initialization-order hazard here.
struct EnvInit {
    EnvInit() {
        const char* trace = std::getenv("QOC_TRACE");
        const char* metrics = std::getenv("QOC_METRICS");
        if (trace != nullptr && *trace != '\0') enable_tracing(trace);
        if (metrics != nullptr && *metrics != '\0') enable_metrics(metrics);
        if ((trace != nullptr && *trace != '\0') ||
            (metrics != nullptr && *metrics != '\0')) {
            std::atexit([] { flush(); });
        }
    }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {

void count_slow(Cnt c, std::uint64_t n) noexcept {
    std::atomic<std::uint64_t>& cell = slot().counters[static_cast<std::size_t>(c)];
    // Owner-thread-only write: load+store beats an interlocked fetch_add.
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - reg().epoch)
                                          .count());
}

void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::uint64_t id, std::uint64_t parent) noexcept {
    if (!tracing_enabled()) return;  // disabled (or reset) between ctor and dtor
    ThreadSlot& s = slot();
    const std::uint64_t n = s.ring_count.load(std::memory_order_relaxed);
    s.ring[n % kRingCapacity] = TraceEvent{name, t0_ns, t1_ns - t0_ns, s.tid, id, parent};
    s.ring_count.store(n + 1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() noexcept {
    return g_span_ids.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

std::uint64_t counter_value(Cnt c) noexcept {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    std::uint64_t total = 0;
    for (const auto& s : r.slots) {
        total += s->counters[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
    }
    return total;
}

const char* counter_name(Cnt c) noexcept {
    return kCounterNames[static_cast<std::size_t>(c)];
}

void set_gauge(const char* name, double value) {
    if (!metrics_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    r.gauges[name] = value;
}

void hist_observe(const char* name, std::int64_t value) {
    if (!metrics_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    ++r.hists[name][value];
}

void emit_optimizer_iteration(const char* optimizer, int iteration, double cost,
                              double grad_norm, double step, int n_fun_evals,
                              double wall_time_s) {
    if (!telemetry_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.io_mu);
    std::FILE* f = r.metrics_file;
    if (f == nullptr) return;
    std::fprintf(f, "{\"type\":\"optimizer_iteration\",\"optimizer\":\"%s\",\"iteration\":%d,"
                    "\"cost\":",
                 optimizer, iteration);
    print_double(f, cost);
    std::fprintf(f, ",\"grad_norm\":");
    print_double(f, grad_norm);
    std::fprintf(f, ",\"step\":");
    print_double(f, step);
    std::fprintf(f, ",\"n_fun_evals\":%d,\"wall_time_s\":", n_fun_evals);
    print_double(f, wall_time_s);
    std::fprintf(f, "}\n");
}

void emit_rb_seed(const char* experiment, std::size_t length, std::int64_t seed,
                  double survival) {
    if (!telemetry_enabled()) return;
    const std::uint32_t tid = slot().tid;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.io_mu);
    std::FILE* f = r.metrics_file;
    if (f == nullptr) return;
    std::fprintf(f, "{\"type\":\"rb_seed\",\"experiment\":\"%s\",\"length\":%zu,"
                    "\"seed\":%lld,\"survival\":",
                 experiment, length, static_cast<long long>(seed));
    print_double(f, survival);
    std::fprintf(f, ",\"thread\":%u}\n", tid);
}

void enable_tracing(const std::string& path) {
    Registry& r = reg();
    {
        std::lock_guard<std::mutex> lock(r.mu);
        r.trace_path = path;
    }
    g_obs_state.fetch_or(kTraceBit, std::memory_order_relaxed);
}

void enable_metrics(const std::string& path) {
    Registry& r = reg();
    std::uint32_t bits = kMetricsBit;
    {
        std::lock_guard<std::mutex> lock(r.io_mu);
        if (r.metrics_file != nullptr) {
            std::fclose(r.metrics_file);
            r.metrics_file = nullptr;
        }
        if (!path.empty()) {
            r.metrics_file = std::fopen(path.c_str(), "w");
            if (r.metrics_file != nullptr) bits |= kTelemetryBit;
        }
    }
    g_obs_state.fetch_or(bits, std::memory_order_relaxed);
}

void flush() {
    Registry& r = reg();
    std::string trace_path;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        trace_path = r.trace_path;
    }
    if (tracing_enabled() && !trace_path.empty()) write_trace_file(trace_path);
    if (metrics_enabled()) {
        std::lock_guard<std::mutex> lock(r.io_mu);
        if (r.metrics_file != nullptr) {
            write_metrics_line(r.metrics_file);
            std::fflush(r.metrics_file);
        }
    }
}

void reset_for_testing() {
    g_obs_state.store(0, std::memory_order_relaxed);
    Registry& r = reg();
    {
        std::lock_guard<std::mutex> lock(r.io_mu);
        if (r.metrics_file != nullptr) {
            std::fclose(r.metrics_file);
            r.metrics_file = nullptr;
        }
    }
    std::lock_guard<std::mutex> lock(r.mu);
    r.trace_path.clear();
    r.gauges.clear();
    r.hists.clear();
    for (auto& s : r.slots) {
        for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
        s->ring_count.store(0, std::memory_order_relaxed);
    }
    r.epoch = std::chrono::steady_clock::now();
    g_span_ids.store(0, std::memory_order_relaxed);
    detail::t_current_span = 0;  // calling thread only; workers restore via RAII
}

std::vector<TraceEvent> snapshot_trace_events() {
    Registry& r = reg();
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& s : r.slots) {
            const std::uint64_t n = s->ring_count.load(std::memory_order_relaxed);
            const std::uint64_t kept = std::min<std::uint64_t>(n, kRingCapacity);
            for (std::uint64_t k = n - kept; k < n; ++k) {
                out.push_back(s->ring[k % kRingCapacity]);
            }
        }
    }
    std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
        return a.t0_ns != b.t0_ns ? a.t0_ns < b.t0_ns : a.tid < b.tid;
    });
    return out;
}

std::uint64_t dropped_trace_events() noexcept {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    std::uint64_t dropped = 0;
    for (const auto& s : r.slots) {
        const std::uint64_t n = s->ring_count.load(std::memory_order_relaxed);
        if (n > kRingCapacity) dropped += n - kRingCapacity;
    }
    return dropped;
}

}  // namespace qoc::obs
