#include "obs/obs.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace qoc::obs {

namespace {

constexpr std::size_t kRingCapacity = 16384;
constexpr std::size_t kNumCounters = static_cast<std::size_t>(Cnt::kCount);
constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::kCount);

/// Per-thread storage: one padded counter row, the fixed latency-histogram
/// bucket cells, plus one preallocated span ring.  Owned by the registry,
/// written only by the owning thread; counter and bucket cells are relaxed
/// atomics so concurrent reads (counter_value, hist_snapshot, flush) are
/// race-free without ever taking a lock on the write side.
struct alignas(64) ThreadSlot {
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::array<std::array<std::atomic<std::uint64_t>, kHistBuckets>, kNumHists> hist_buckets{};
    std::array<std::atomic<std::uint64_t>, kNumHists> hist_sums{};
    std::vector<TraceEvent> ring;
    std::atomic<std::uint64_t> ring_count{0};  ///< total spans ever recorded
    std::uint32_t tid = 0;

    ThreadSlot() { ring.resize(kRingCapacity); }
};

struct Registry {
    std::mutex mu;  ///< guards slot registration and the cold maps below
    std::vector<std::unique_ptr<ThreadSlot>> slots;
    std::map<std::string, double> gauges;
    std::map<std::string, std::map<std::int64_t, std::uint64_t>> hists;
    std::string trace_path;

    std::mutex io_mu;  ///< guards the JSONL stream
    std::FILE* metrics_file = nullptr;

    // qoc-lint-allow(determinism-wall-clock): trace epoch; spans/latency histograms only
    std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

/// Leaked singleton: outlives atexit flushing and every thread's last span.
Registry& reg() {
    static Registry* r = new Registry;
    return *r;
}

thread_local ThreadSlot* t_slot = nullptr;

/// Process-wide span id allocator (ids are 1-based; 0 means "no span").
std::atomic<std::uint64_t> g_span_ids{0};

ThreadSlot& slot() {
    if (t_slot == nullptr) {
        Registry& r = reg();
        std::lock_guard<std::mutex> lock(r.mu);
        auto s = std::make_unique<ThreadSlot>();
        s->tid = static_cast<std::uint32_t>(r.slots.size());
        t_slot = s.get();
        r.slots.push_back(std::move(s));
    }
    return *t_slot;
}

/// %.17g round-trips every finite double exactly.
void print_double(std::FILE* f, double v) { std::fprintf(f, "%.17g", v); }

constexpr std::array<const char*, kNumCounters> kCounterNames = {
    "linalg.gemm.calls",
    "linalg.gemv.calls",
    "linalg.lu.factorizations",
    "executor.prop_cache.hits",
    "executor.prop_cache.misses",
    "rb.clifford_memo.hits",
    "rb.clifford_memo.misses",
    "quantum.superop.applies",
    "quantum.superop.csr_applies",
    "quantum.superop.kron_applies",
    "quantum.superop.batch_applies",
    "linalg.expm.pade3",
    "linalg.expm.pade5",
    "linalg.expm.pade7",
    "linalg.expm.pade9",
    "linalg.expm.pade13",
    "linalg.expm.spectral",
    "service.cache.hit",
    "service.cache.miss",
    "service.cache.revalidate",
    "service.requests.admitted",
    "service.queue.shed",
};

constexpr std::array<const char*, kNumHists> kHistNames = {
    "service.request.latency.interactive.hit",
    "service.request.latency.batch.hit",
    "service.request.latency.interactive.revalidate",
    "service.request.latency.batch.revalidate",
    "service.request.latency.interactive.design",
    "service.request.latency.batch.design",
    "service.request.latency.interactive.shed",
    "service.request.latency.batch.shed",
    "design.wall",
    "irb.wall",
    "pool.task.queue_wait",
    "lbfgsb.line_search_evals",
};

/// Writes the final metrics object (counters + Pade-order histogram +
/// latency histograms + gauges + named histograms + span-ring accounting)
/// as one JSONL line.  Caller holds io_mu.
void write_metrics_line(std::FILE* f) {
    std::fprintf(f, "{\"type\":\"metrics\",\"counters\":{");
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        std::fprintf(f, "%s\"%s\":%llu", c == 0 ? "" : ",", kCounterNames[c],
                     static_cast<unsigned long long>(counter_value(static_cast<Cnt>(c))));
    }
    std::fprintf(f, "},\"histograms\":{\"linalg.expm.pade_order\":{");
    const std::pair<const char*, Cnt> pade[] = {
        {"3", Cnt::kExpmPade3},   {"5", Cnt::kExpmPade5}, {"7", Cnt::kExpmPade7},
        {"9", Cnt::kExpmPade9},   {"13", Cnt::kExpmPade13}};
    for (std::size_t i = 0; i < 5; ++i) {
        std::fprintf(f, "%s\"%s\":%llu", i == 0 ? "" : ",", pade[i].first,
                     static_cast<unsigned long long>(counter_value(pade[i].second)));
    }
    std::fprintf(f, "}");
    Registry& r = reg();
    {
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& [name, buckets] : r.hists) {
            std::fprintf(f, ",\"%s\":{", name.c_str());
            bool first = true;
            for (const auto& [value, n] : buckets) {
                std::fprintf(f, "%s\"%lld\":%llu", first ? "" : ",",
                             static_cast<long long>(value),
                             static_cast<unsigned long long>(n));
                first = false;
            }
            std::fprintf(f, "}");
        }
    }
    // Non-empty fixed latency histograms: sparse buckets (keyed by the
    // bucket's lower bound) plus merged quantile estimates.
    std::fprintf(f, "},\"latency_histograms\":{");
    bool first_hist = true;
    for (std::size_t h = 0; h < kNumHists; ++h) {
        const HistSnapshot s = hist_snapshot(static_cast<Hist>(h));
        if (s.count == 0) continue;
        std::fprintf(f, "%s\"%s\":{\"count\":%llu,\"sum\":%llu", first_hist ? "" : ",",
                     kHistNames[h], static_cast<unsigned long long>(s.count),
                     static_cast<unsigned long long>(s.sum));
        const std::pair<const char*, double> qs[] = {
            {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p999", 0.999}};
        for (const auto& [qname, q] : qs) {
            std::fprintf(f, ",\"%s\":", qname);
            print_double(f, hist_quantile(s, q));
        }
        std::fprintf(f, ",\"buckets\":{");
        bool first_bucket = true;
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
            if (s.buckets[b] == 0) continue;
            std::fprintf(f, "%s\"%llu\":%llu", first_bucket ? "" : ",",
                         static_cast<unsigned long long>(hist_bucket_lower(b)),
                         static_cast<unsigned long long>(s.buckets[b]));
            first_bucket = false;
        }
        std::fprintf(f, "}}");
        first_hist = false;
    }
    std::fprintf(f, "},\"gauges\":{");
    {
        std::lock_guard<std::mutex> lock(r.mu);
        bool first = true;
        for (const auto& [name, value] : r.gauges) {
            std::fprintf(f, "%s\"%s\":", first ? "" : ",", name.c_str());
            print_double(f, value);
            first = false;
        }
    }
    std::fprintf(f, "},\"dropped_trace_events\":%llu,\"trace_rings\":[",
                 static_cast<unsigned long long>(dropped_trace_events()));
    const std::vector<RingStats> rings = ring_stats();
    for (std::size_t i = 0; i < rings.size(); ++i) {
        std::fprintf(f, "%s{\"tid\":%u,\"recorded\":%llu,\"dropped\":%llu}",
                     i == 0 ? "" : ",", rings[i].tid,
                     static_cast<unsigned long long>(rings[i].recorded),
                     static_cast<unsigned long long>(rings[i].dropped));
    }
    std::fprintf(f, "]}\n");
}

void write_trace_file(const std::string& path) {
    const std::vector<TraceEvent> events = snapshot_trace_events();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\"traceEvents\":[");
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        // chrome://tracing wants microseconds.  id/parent/req args let tools
        // rebuild the logical span tree across task boundaries and join
        // spans with their service_request records.
        std::fprintf(f,
                     "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                     "\"args\":{\"id\":%llu,\"parent\":%llu,\"req\":%llu},"
                     "\"pid\":1,\"tid\":%u}",
                     i == 0 ? "" : ",", e.name, static_cast<double>(e.t0_ns) / 1e3,
                     static_cast<double>(e.dur_ns) / 1e3,
                     static_cast<unsigned long long>(e.id),
                     static_cast<unsigned long long>(e.parent),
                     static_cast<unsigned long long>(e.request), e.tid);
    }
    // Ring-overflow accounting as trace metadata: a truncated trace says so
    // in-band instead of silently looking complete.
    std::fprintf(f, "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{"
                    "\"dropped_trace_events\":%llu,\"trace_rings\":[",
                 static_cast<unsigned long long>(dropped_trace_events()));
    const std::vector<RingStats> rings = ring_stats();
    for (std::size_t i = 0; i < rings.size(); ++i) {
        std::fprintf(f, "%s{\"tid\":%u,\"recorded\":%llu,\"dropped\":%llu}",
                     i == 0 ? "" : ",", rings[i].tid,
                     static_cast<unsigned long long>(rings[i].recorded),
                     static_cast<unsigned long long>(rings[i].dropped));
    }
    std::fprintf(f, "]}}\n");
    std::fclose(f);
}

/// Startup activation from the environment; flush at exit when either
/// variable is set.  `g_obs_state` is constant-initialized and `reg()` is
/// function-local, so there is no initialization-order hazard here.
struct EnvInit {
    EnvInit() {
        const char* trace = std::getenv("QOC_TRACE");
        const char* metrics = std::getenv("QOC_METRICS");
        if (trace != nullptr && *trace != '\0') enable_tracing(trace);
        if (metrics != nullptr && *metrics != '\0') enable_metrics(metrics);
        if ((trace != nullptr && *trace != '\0') ||
            (metrics != nullptr && *metrics != '\0')) {
            std::atexit([] { flush(); });
        }
    }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {

void count_slow(Cnt c, std::uint64_t n) noexcept {
    std::atomic<std::uint64_t>& cell = slot().counters[static_cast<std::size_t>(c)];
    // Owner-thread-only write: load+store beats an interlocked fetch_add.
    cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

void hist_slow(Hist h, std::uint64_t value) noexcept {
    ThreadSlot& s = slot();
    const std::size_t hi = static_cast<std::size_t>(h);
    std::atomic<std::uint64_t>& bucket = s.hist_buckets[hi][hist_bucket_index(value)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    std::atomic<std::uint64_t>& sum = s.hist_sums[hi];
    sum.store(sum.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          // qoc-lint-allow(determinism-wall-clock): telemetry
                                          std::chrono::steady_clock::now() - reg().epoch)
                                          .count());
}

void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::uint64_t id, std::uint64_t parent, std::uint64_t request) noexcept {
    if (!tracing_enabled()) return;  // disabled (or reset) between ctor and dtor
    ThreadSlot& s = slot();
    const std::uint64_t n = s.ring_count.load(std::memory_order_relaxed);
    s.ring[n % kRingCapacity] =
        TraceEvent{name, t0_ns, t1_ns - t0_ns, s.tid, id, parent, request};
    s.ring_count.store(n + 1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() noexcept {
    return g_span_ids.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

std::uint64_t counter_value(Cnt c) noexcept {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    std::uint64_t total = 0;
    for (const auto& s : r.slots) {
        total += s->counters[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
    }
    return total;
}

const char* counter_name(Cnt c) noexcept {
    return kCounterNames[static_cast<std::size_t>(c)];
}

const char* hist_name(Hist h) noexcept { return kHistNames[static_cast<std::size_t>(h)]; }

std::size_t hist_bucket_index(std::uint64_t value) noexcept {
    if (value < 4) return static_cast<std::size_t>(value);
    const int e = 63 - std::countl_zero(value);  // floor(log2), >= 2 here
    const std::uint64_t sub = (value >> (e - 2)) & 3u;
    return static_cast<std::size_t>(4 * (e - 1)) + static_cast<std::size_t>(sub);
}

std::uint64_t hist_bucket_lower(std::size_t bucket) noexcept {
    if (bucket < 4) return bucket;
    const std::size_t e = bucket / 4 + 1;
    const std::uint64_t sub = bucket % 4;
    return (std::uint64_t{1} << e) + (sub << (e - 2));
}

std::uint64_t hist_bucket_upper(std::size_t bucket) noexcept {
    if (bucket + 1 >= kHistBuckets) return UINT64_MAX;
    return hist_bucket_lower(bucket + 1);
}

HistSnapshot hist_snapshot(Hist h) {
    const std::size_t hi = static_cast<std::size_t>(h);
    HistSnapshot out;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& s : r.slots) {
        out.sum += s->hist_sums[hi].load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < kHistBuckets; ++b) {
            const std::uint64_t n = s->hist_buckets[hi][b].load(std::memory_order_relaxed);
            out.buckets[b] += n;
            out.count += n;
        }
    }
    return out;
}

double hist_quantile(const HistSnapshot& s, double q) noexcept {
    if (s.count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank-based estimate: the q-quantile of n samples sits at fractional
    // rank q*(n-1); interpolate linearly inside the bucket holding it.
    const double target = q * static_cast<double>(s.count - 1);
    std::uint64_t below = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
        const std::uint64_t n = s.buckets[b];
        if (n == 0) continue;
        if (static_cast<double>(below + n) > target) {
            const double lo = static_cast<double>(hist_bucket_lower(b));
            const double hi = static_cast<double>(hist_bucket_upper(b));
            const double frac = (target - static_cast<double>(below) + 0.5) /
                                static_cast<double>(n);
            const double est = lo + frac * (hi - lo);
            return est < lo ? lo : (est > hi ? hi : est);
        }
        below += n;
    }
    return static_cast<double>(hist_bucket_lower(kHistBuckets - 1));
}

void set_gauge(const char* name, double value) {
    if (!metrics_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    r.gauges[name] = value;
}

std::vector<std::pair<std::string, double>> gauges_snapshot() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    return {r.gauges.begin(), r.gauges.end()};
}

void hist_observe(const char* name, std::int64_t value) {
    if (!metrics_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    ++r.hists[name][value];
}

void emit_optimizer_iteration(const char* optimizer, int iteration, double cost,
                              double grad_norm, double step, int n_fun_evals,
                              double wall_time_s) {
    if (!telemetry_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.io_mu);
    std::FILE* f = r.metrics_file;
    if (f == nullptr) return;
    std::fprintf(f, "{\"type\":\"optimizer_iteration\",\"optimizer\":\"%s\",\"iteration\":%d,"
                    "\"cost\":",
                 optimizer, iteration);
    print_double(f, cost);
    std::fprintf(f, ",\"grad_norm\":");
    print_double(f, grad_norm);
    std::fprintf(f, ",\"step\":");
    print_double(f, step);
    std::fprintf(f, ",\"n_fun_evals\":%d,\"wall_time_s\":", n_fun_evals);
    print_double(f, wall_time_s);
    std::fprintf(f, "}\n");
}

void emit_rb_seed(const char* experiment, std::size_t length, std::int64_t seed,
                  double survival) {
    if (!telemetry_enabled()) return;
    const std::uint32_t tid = slot().tid;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.io_mu);
    std::FILE* f = r.metrics_file;
    if (f == nullptr) return;
    std::fprintf(f, "{\"type\":\"rb_seed\",\"experiment\":\"%s\",\"length\":%zu,"
                    "\"seed\":%lld,\"survival\":",
                 experiment, length, static_cast<long long>(seed));
    print_double(f, survival);
    std::fprintf(f, ",\"thread\":%u}\n", tid);
}

void emit_service_request(std::uint64_t id, std::uint64_t seq, std::uint64_t key,
                          std::uint64_t device, const char* gate, std::uint64_t qubit,
                          std::uint64_t duration_dt, const char* lane, const char* outcome,
                          bool redesign, std::uint64_t latency_ns) {
    if (!telemetry_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.io_mu);
    std::FILE* f = r.metrics_file;
    if (f == nullptr) return;
    std::fprintf(f,
                 "{\"type\":\"service_request\",\"id\":%llu,\"seq\":%llu,\"key\":%llu,"
                 "\"device\":%llu,\"gate\":\"%s\",\"qubit\":%llu,\"duration_dt\":%llu,"
                 "\"lane\":\"%s\",\"outcome\":\"%s\",\"redesign\":%d,\"latency_ns\":%llu}\n",
                 static_cast<unsigned long long>(id), static_cast<unsigned long long>(seq),
                 static_cast<unsigned long long>(key),
                 static_cast<unsigned long long>(device), gate,
                 static_cast<unsigned long long>(qubit),
                 static_cast<unsigned long long>(duration_dt), lane, outcome,
                 redesign ? 1 : 0, static_cast<unsigned long long>(latency_ns));
}

namespace detail {

void write_jsonl_line(const std::string& line) {
    if (!telemetry_enabled()) return;
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.io_mu);
    std::FILE* f = r.metrics_file;
    if (f == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
}

}  // namespace detail

void enable_tracing(const std::string& path) {
    Registry& r = reg();
    {
        std::lock_guard<std::mutex> lock(r.mu);
        r.trace_path = path;
    }
    g_obs_state.fetch_or(kTraceBit, std::memory_order_relaxed);
}

void enable_metrics(const std::string& path) {
    Registry& r = reg();
    std::uint32_t bits = kMetricsBit;
    {
        std::lock_guard<std::mutex> lock(r.io_mu);
        if (r.metrics_file != nullptr) {
            std::fclose(r.metrics_file);
            r.metrics_file = nullptr;
        }
        if (!path.empty()) {
            r.metrics_file = std::fopen(path.c_str(), "w");
            if (r.metrics_file != nullptr) bits |= kTelemetryBit;
        }
    }
    g_obs_state.fetch_or(bits, std::memory_order_relaxed);
}

void flush() {
    Registry& r = reg();
    std::string trace_path;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        trace_path = r.trace_path;
    }
    if (tracing_enabled() && !trace_path.empty()) write_trace_file(trace_path);
    if (metrics_enabled()) {
        std::lock_guard<std::mutex> lock(r.io_mu);
        if (r.metrics_file != nullptr) {
            write_metrics_line(r.metrics_file);
            std::fflush(r.metrics_file);
        }
    }
    if (tracing_enabled() || metrics_enabled()) {
        const std::uint64_t dropped = dropped_trace_events();
        if (dropped > 0) {
            std::fprintf(stderr,
                         "qoc::obs: warning: %llu trace event(s) dropped by "
                         "per-thread ring overflow; earliest spans are missing "
                         "from the trace output\n",
                         static_cast<unsigned long long>(dropped));
        }
    }
}

void reset_for_testing() {
    g_obs_state.store(0, std::memory_order_relaxed);
    Registry& r = reg();
    {
        std::lock_guard<std::mutex> lock(r.io_mu);
        if (r.metrics_file != nullptr) {
            std::fclose(r.metrics_file);
            r.metrics_file = nullptr;
        }
    }
    std::lock_guard<std::mutex> lock(r.mu);
    r.trace_path.clear();
    r.gauges.clear();
    r.hists.clear();
    for (auto& s : r.slots) {
        for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
        for (auto& row : s->hist_buckets) {
            for (auto& b : row) b.store(0, std::memory_order_relaxed);
        }
        for (auto& sum : s->hist_sums) sum.store(0, std::memory_order_relaxed);
        s->ring_count.store(0, std::memory_order_relaxed);
    }
    // qoc-lint-allow(determinism-wall-clock): trace-epoch reset; telemetry only
    r.epoch = std::chrono::steady_clock::now();
    g_span_ids.store(0, std::memory_order_relaxed);
    detail::t_current_span = 0;  // calling thread only; workers restore via RAII
    detail::t_current_request = 0;
}

std::vector<TraceEvent> snapshot_trace_events() {
    Registry& r = reg();
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& s : r.slots) {
            const std::uint64_t n = s->ring_count.load(std::memory_order_relaxed);
            const std::uint64_t kept = std::min<std::uint64_t>(n, kRingCapacity);
            for (std::uint64_t k = n - kept; k < n; ++k) {
                out.push_back(s->ring[k % kRingCapacity]);
            }
        }
    }
    std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
        return a.t0_ns != b.t0_ns ? a.t0_ns < b.t0_ns : a.tid < b.tid;
    });
    return out;
}

std::uint64_t dropped_trace_events() noexcept {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    std::uint64_t dropped = 0;
    for (const auto& s : r.slots) {
        const std::uint64_t n = s->ring_count.load(std::memory_order_relaxed);
        if (n > kRingCapacity) dropped += n - kRingCapacity;
    }
    return dropped;
}

std::vector<RingStats> ring_stats() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<RingStats> out;
    out.reserve(r.slots.size());
    for (const auto& s : r.slots) {
        const std::uint64_t n = s->ring_count.load(std::memory_order_relaxed);
        RingStats rs;
        rs.tid = s->tid;
        rs.recorded = n;
        rs.dropped = n > kRingCapacity ? n - kRingCapacity : 0;
        out.push_back(rs);
    }
    return out;
}

}  // namespace qoc::obs
