/// \file obs.hpp
/// \brief `qoc::obs` -- zero-overhead tracing, metrics and telemetry.
///
/// Three facilities behind ONE relaxed-atomic state word:
///
///  * RAII **spans** (`Span`) recording chrome://tracing "X" complete events
///    into per-thread preallocated ring buffers -- no locks and no heap
///    allocation on the hot path; buffers are merged and time-sorted at
///    flush and written as a `{"traceEvents": [...]}` JSON file.
///  * A **metrics registry**: fixed-enum counters (`count`) on per-thread
///    padded cells (summed at read), plus named gauges and integer-valued
///    histograms for cold paths (mutex inside).
///  * Structured **telemetry records** streamed as JSONL (one object per
///    line): per-iteration optimizer records and per-seed RB records, with
///    a final `{"type":"metrics", ...}` dump appended at flush.
///
/// Activation: `QOC_TRACE=<file>` / `QOC_METRICS=<file>` environment
/// variables (read once at startup; flush registered via `atexit`), or the
/// programmatic `enable_tracing` / `enable_metrics` calls below.
///
/// Disabled-path contract: every hot-path entry point (`count`, `Span`,
/// `telemetry_enabled`) is a single relaxed atomic load plus one branch.
/// Determinism contract: instrumentation only *reads* values the numerics
/// already computed; it never reorders reductions, never synchronizes
/// compute threads on the hot path, and therefore preserves the bitwise
/// 1-vs-N-thread reproducibility guarantees of the GRAPE and RB engines.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qoc::obs {

// --- enable/disable gate -------------------------------------------------

inline constexpr std::uint32_t kTraceBit = 1u;      ///< spans -> trace file
inline constexpr std::uint32_t kMetricsBit = 2u;    ///< counters/gauges/hists
inline constexpr std::uint32_t kTelemetryBit = 4u;  ///< JSONL record stream

/// The single state word every hot-path check loads (relaxed).  Constant-
/// initialized: safe to query from any static initializer.
inline std::atomic<std::uint32_t> g_obs_state{0};

inline bool tracing_enabled() noexcept {
    return (g_obs_state.load(std::memory_order_relaxed) & kTraceBit) != 0;
}
inline bool metrics_enabled() noexcept {
    return (g_obs_state.load(std::memory_order_relaxed) & kMetricsBit) != 0;
}
inline bool telemetry_enabled() noexcept {
    return (g_obs_state.load(std::memory_order_relaxed) & kTelemetryBit) != 0;
}

// --- counters ------------------------------------------------------------

/// Fixed counter set.  Enum-indexed per-thread cells keep the enabled path
/// lock-free; totals are summed over threads at read time.
enum class Cnt : unsigned {
    kGemmCalls,         ///< dense complex matrix-matrix products
    kGemvCalls,         ///< dense complex matrix-vector products
    kLuFactorizations,  ///< LU factorizations (expm denominators, solves)
    kPropCacheHits,     ///< executor amplitude->propagator cache hits
    kPropCacheMisses,   ///< executor amplitude->propagator cache misses
    kCliffMemoHits,     ///< 2Q Clifford superop memo hits
    kCliffMemoMisses,   ///< 2Q Clifford superop memo misses (compositions)
    kSuperopApplies,    ///< vec(rho) matvec propagation steps (dense kernel)
    kSuperopCsrApplies,  ///< vec(rho) propagation steps through the CSR kernel
    kSuperopKronApplies, ///< factored Kronecker-term applies (never d^2 x d^2)
    kSuperopBatchApplies, ///< batched d^2 x B applies (one per Clifford step)
    kExpmPade3,         ///< expm/Frechet calls at Pade order 3
    kExpmPade5,
    kExpmPade7,
    kExpmPade9,
    kExpmPade13,
    kExpmSpectral,      ///< Daleckii-Krein spectral-path calls
    kSvcCacheHit,       ///< pulse-store lookups served from a fresh entry
    kSvcCacheMiss,      ///< pulse-store misses (fan out to a design task)
    kSvcCacheRevalidate,  ///< suspect entries re-validated by IRB (not redesigned)
    kSvcQueueDepth,     ///< design requests admitted to the service queue
    kSvcQueueShed,      ///< design requests shed by admission control
    kCount
};

namespace detail {
void count_slow(Cnt c, std::uint64_t n) noexcept;
}  // namespace detail

/// Bumps a counter.  Disabled: one relaxed load + branch, nothing else.
inline void count(Cnt c, std::uint64_t n = 1) noexcept {
    if ((g_obs_state.load(std::memory_order_relaxed) & kMetricsBit) == 0) return;
    detail::count_slow(c, n);
}

/// Total over all threads (0 when metrics were never enabled).
std::uint64_t counter_value(Cnt c) noexcept;

/// Dotted metric name of a counter (e.g. "executor.prop_cache.hits").
const char* counter_name(Cnt c) noexcept;

/// Sets a named gauge (cold paths only: takes a mutex).
void set_gauge(const char* name, double value);

/// Adds one observation of an integer-valued named histogram (cold paths
/// only: takes a mutex).  Stored exactly as value -> occurrence count.
void hist_observe(const char* name, std::int64_t value);

// --- spans ---------------------------------------------------------------

/// One completed span, as merged out of the per-thread rings.
struct TraceEvent {
    const char* name;       ///< string literal passed to Span
    std::uint64_t t0_ns;    ///< begin, ns since process trace epoch
    std::uint64_t dur_ns;   ///< duration in ns
    std::uint32_t tid;      ///< obs thread index (registration order)
    std::uint64_t id;       ///< span id (1-based; 0 = none)
    std::uint64_t parent;   ///< enclosing span's id, 0 for roots
};

namespace detail {
std::uint64_t now_ns() noexcept;
void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::uint64_t id, std::uint64_t parent) noexcept;
std::uint64_t next_span_id() noexcept;

/// The innermost live span of this thread (maintained by Span ctor/dtor and
/// overridden across task boundaries by TaskParentScope).
inline thread_local std::uint64_t t_current_span = 0;
}  // namespace detail

/// Id of the innermost live span on this thread (0 = none / tracing off).
/// `qoc::runtime` captures this at task submission so spans opened inside a
/// worker keep their logical parent.
inline std::uint64_t current_span() noexcept { return detail::t_current_span; }

/// Installs a foreign span id as this thread's current span for a scope.
/// Used by the task runtime to carry the SUBMITTER's span across the task
/// boundary: spans opened inside the task parent to the submitting span,
/// not to whatever the worker happened to be running before.
class TaskParentScope {
public:
    explicit TaskParentScope(std::uint64_t parent) noexcept
        : prev_(detail::t_current_span) {
        detail::t_current_span = parent;
    }
    ~TaskParentScope() { detail::t_current_span = prev_; }
    TaskParentScope(const TaskParentScope&) = delete;
    TaskParentScope& operator=(const TaskParentScope&) = delete;

private:
    std::uint64_t prev_;
};

/// RAII span.  `name` must be a string literal (stored by pointer).  When
/// tracing is disabled, construction is one relaxed load + branch and the
/// destructor is a null-pointer test.
class Span {
public:
    explicit Span(const char* name) noexcept {
        if ((g_obs_state.load(std::memory_order_relaxed) & kTraceBit) != 0) {
            name_ = name;
            t0_ = detail::now_ns();
            parent_ = detail::t_current_span;
            id_ = detail::next_span_id();
            detail::t_current_span = id_;
        }
    }
    ~Span() {
        if (name_ != nullptr) {
            detail::t_current_span = parent_;
            detail::record_span(name_, t0_, detail::now_ns(), id_, parent_);
        }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_ = nullptr;
    std::uint64_t t0_ = 0;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
};

// --- telemetry records ---------------------------------------------------

/// Streams one `{"type":"optimizer_iteration",...}` JSONL record.  No-op
/// unless telemetry is enabled (QOC_METRICS set / enable_metrics(path)).
void emit_optimizer_iteration(const char* optimizer, int iteration, double cost,
                              double grad_norm, double step, int n_fun_evals,
                              double wall_time_s);

/// Streams one `{"type":"rb_seed",...}` JSONL record ("thread" is the obs
/// thread index of the caller).  Safe to call from inside OpenMP loops: the
/// file write is serialized by a mutex that the numerics never touch.
void emit_rb_seed(const char* experiment, std::size_t length, std::int64_t seed,
                  double survival);

// --- control / inspection ------------------------------------------------

/// Enables span collection.  `path == ""` keeps events in memory only
/// (tests); otherwise `flush()` writes a chrome://tracing JSON file there.
void enable_tracing(const std::string& path);

/// Enables the metrics registry, and -- when `path` is non-empty -- also the
/// JSONL telemetry stream to that file (truncated on enable).
void enable_metrics(const std::string& path);

/// Writes pending output: the chrome trace file (when a trace path is set)
/// and the final `{"type":"metrics",...}` JSONL line.  Call from one thread,
/// outside parallel regions.  State stays enabled; callable repeatedly.
void flush();

/// Test helper: clears all state bits, zeroes every counter and ring,
/// drops gauges/histograms and closes the telemetry file WITHOUT writing
/// the final metrics line.  Per-thread slots stay registered.
void reset_for_testing();

/// Merged snapshot of all per-thread rings, sorted by (t0_ns, tid).  Call
/// outside parallel regions.
std::vector<TraceEvent> snapshot_trace_events();

/// Spans lost to ring overwrite since enable/reset (summed over threads).
std::uint64_t dropped_trace_events() noexcept;

}  // namespace qoc::obs
