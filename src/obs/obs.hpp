/// \file obs.hpp
/// \brief `qoc::obs` -- zero-overhead tracing, metrics and telemetry.
///
/// Four facilities behind ONE relaxed-atomic state word:
///
///  * RAII **spans** (`Span`) recording chrome://tracing "X" complete events
///    into per-thread preallocated ring buffers -- no locks and no heap
///    allocation on the hot path; buffers are merged and time-sorted at
///    flush and written as a `{"traceEvents": [...]}` JSON file.
///  * A **metrics registry**: fixed-enum counters (`count`) on per-thread
///    padded cells (summed at read), plus named gauges and integer-valued
///    histograms for cold paths (mutex inside).
///  * Fixed-enum **latency histograms** (`hist_record`): lock-free
///    log-bucketed value distributions on the same per-thread cells as the
///    counters, merged at read into p50/p90/p99/p999 quantile estimates --
///    the service request path records into these, never into the
///    mutex-guarded named histograms.
///  * Structured **telemetry records** streamed as JSONL (one object per
///    line): per-iteration optimizer records, per-seed RB records,
///    per-request `service_request` records (joinable to trace spans by
///    request id, see `RequestScope`), periodic `snapshot` lines (see
///    snapshot.hpp), with a final `{"type":"metrics", ...}` dump appended
///    at flush.
///
/// Activation: `QOC_TRACE=<file>` / `QOC_METRICS=<file>` environment
/// variables (read once at startup; flush registered via `atexit`), or the
/// programmatic `enable_tracing` / `enable_metrics` calls below.
///
/// Disabled-path contract: every hot-path entry point (`count`, `Span`,
/// `hist_record`, `telemetry_enabled`) is a single relaxed atomic load plus
/// one branch.
/// Determinism contract: instrumentation only *reads* values the numerics
/// already computed; it never reorders reductions, never synchronizes
/// compute threads on the hot path, and therefore preserves the bitwise
/// 1-vs-N-thread reproducibility guarantees of the GRAPE and RB engines.
/// Request ids are derived from content (cache-key digest + issue sequence
/// number), never from wall clock, so a replayed request log reproduces the
/// same ids and telemetry from different runs can be diffed.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qoc::obs {

// --- enable/disable gate -------------------------------------------------

inline constexpr std::uint32_t kTraceBit = 1u;      ///< spans -> trace file
inline constexpr std::uint32_t kMetricsBit = 2u;    ///< counters/gauges/hists
inline constexpr std::uint32_t kTelemetryBit = 4u;  ///< JSONL record stream

/// The single state word every hot-path check loads (relaxed).  Constant-
/// initialized: safe to query from any static initializer.
inline std::atomic<std::uint32_t> g_obs_state{0};

inline bool tracing_enabled() noexcept {
    return (g_obs_state.load(std::memory_order_relaxed) & kTraceBit) != 0;
}
inline bool metrics_enabled() noexcept {
    return (g_obs_state.load(std::memory_order_relaxed) & kMetricsBit) != 0;
}
inline bool telemetry_enabled() noexcept {
    return (g_obs_state.load(std::memory_order_relaxed) & kTelemetryBit) != 0;
}

// --- counters ------------------------------------------------------------

/// Fixed counter set.  Enum-indexed per-thread cells keep the enabled path
/// lock-free; totals are summed over threads at read time.
enum class Cnt : unsigned {
    kGemmCalls,         ///< dense complex matrix-matrix products
    kGemvCalls,         ///< dense complex matrix-vector products
    kLuFactorizations,  ///< LU factorizations (expm denominators, solves)
    kPropCacheHits,     ///< executor amplitude->propagator cache hits
    kPropCacheMisses,   ///< executor amplitude->propagator cache misses
    kCliffMemoHits,     ///< 2Q Clifford superop memo hits
    kCliffMemoMisses,   ///< 2Q Clifford superop memo misses (compositions)
    kSuperopApplies,    ///< vec(rho) matvec propagation steps (dense kernel)
    kSuperopCsrApplies,  ///< vec(rho) propagation steps through the CSR kernel
    kSuperopKronApplies, ///< factored Kronecker-term applies (never d^2 x d^2)
    kSuperopBatchApplies, ///< batched d^2 x B applies (one per Clifford step)
    kExpmPade3,         ///< expm/Frechet calls at Pade order 3
    kExpmPade5,
    kExpmPade7,
    kExpmPade9,
    kExpmPade13,
    kExpmSpectral,      ///< Daleckii-Krein spectral-path calls
    kSvcCacheHit,       ///< pulse-store lookups served from a fresh entry
    kSvcCacheMiss,      ///< pulse-store misses (fan out to a design task)
    kSvcCacheRevalidate,  ///< suspect entries re-validated by IRB (not redesigned)
    kSvcAdmitted,       ///< design requests admitted to the service queue (monotone)
    kSvcQueueShed,      ///< design requests shed by admission control
    kCount
};

namespace detail {
void count_slow(Cnt c, std::uint64_t n) noexcept;
}  // namespace detail

/// Bumps a counter.  Disabled: one relaxed load + branch, nothing else.
inline void count(Cnt c, std::uint64_t n = 1) noexcept {
    if ((g_obs_state.load(std::memory_order_relaxed) & kMetricsBit) == 0) return;
    detail::count_slow(c, n);
}

/// Total over all threads (0 when metrics were never enabled).
std::uint64_t counter_value(Cnt c) noexcept;

/// Dotted metric name of a counter (e.g. "executor.prop_cache.hits").
const char* counter_name(Cnt c) noexcept;

/// Sets a named gauge (cold paths only: takes a mutex).
void set_gauge(const char* name, double value);

/// Current gauge values, name-sorted (cold; takes the registry mutex).
std::vector<std::pair<std::string, double>> gauges_snapshot();

/// Adds one observation of an integer-valued named histogram (cold paths
/// only: takes a mutex).  Stored exactly as value -> occurrence count.
/// Hot paths use the fixed-enum `hist_record` below instead.
void hist_observe(const char* name, std::int64_t value);

// --- lock-free latency histograms -----------------------------------------
//
// Fixed histogram set recorded on per-thread padded cells, exactly like
// `Cnt`: the enabled path is one owner-thread relaxed load+store into a
// bucket cell -- no mutex, no CAS -- and the disabled path is one relaxed
// load plus a branch.  Values (nanoseconds for the latency/wall histograms)
// are log-bucketed: exact below 4, then four linear sub-buckets per power
// of two, i.e. a geometric resolution of at most 2^(1/4) (~19-25% relative
// bucket width).  Buckets are merged over threads at read time and reduced
// to quantile estimates by `hist_quantile`.

enum class Hist : unsigned {
    kSvcLatHitInteractive,         ///< request latency, interactive lane, hit
    kSvcLatHitBatch,               ///< request latency, batch lane, hit
    kSvcLatRevalidateInteractive,  ///< ... suspect entry revalidated by IRB
    kSvcLatRevalidateBatch,
    kSvcLatDesignInteractive,      ///< ... miss (or IRB failure): designed
    kSvcLatDesignBatch,
    kSvcLatShedInteractive,        ///< ... shed by admission control
    kSvcLatShedBatch,
    kDesignWall,                   ///< one gate-design optimization, wall ns
    kIrbWall,                      ///< one IRB characterization, wall ns
    kPoolQueueWait,                ///< task submit -> execution start, ns
    kLbfgsbLineSearchEvals,        ///< objective evaluations per line search
    kCount
};

/// Bucket count of the log-linear layout: indices 0..3 hold values 0..3
/// exactly; index 4*(e-1)+sub covers [2^e + sub*2^(e-2), 2^e + (sub+1)*2^(e-2))
/// for e in [2, 63], sub in [0, 4).
inline constexpr std::size_t kHistBuckets = 252;

namespace detail {
void hist_slow(Hist h, std::uint64_t value) noexcept;
std::uint64_t now_ns() noexcept;  // declared again in the spans section
}  // namespace detail

/// Monotonic nanoseconds since the process trace epoch -- the clock spans,
/// latency histograms and snapshot lines share.  Telemetry only: never feed
/// this into the numerics (it would break replay determinism).
inline std::uint64_t now_ns() noexcept { return detail::now_ns(); }

/// Records one observation.  Disabled: one relaxed load + branch.  Enabled:
/// per-thread bucket increment, lock-free (owner-thread-only writes).
inline void hist_record(Hist h, std::uint64_t value) noexcept {
    if ((g_obs_state.load(std::memory_order_relaxed) & kMetricsBit) == 0) return;
    detail::hist_slow(h, value);
}

/// Dotted metric name (e.g. "service.request.latency.interactive.hit").
const char* hist_name(Hist h) noexcept;

/// value -> bucket index (pure; exported for the oracle tests and report).
std::size_t hist_bucket_index(std::uint64_t value) noexcept;
/// Inclusive lower / exclusive upper bound of a bucket.  The last bucket's
/// upper bound saturates at UINT64_MAX.
std::uint64_t hist_bucket_lower(std::size_t bucket) noexcept;
std::uint64_t hist_bucket_upper(std::size_t bucket) noexcept;

/// Cross-thread merge of one histogram (cold; takes the registry mutex).
struct HistSnapshot {
    std::uint64_t count = 0;  ///< total observations
    std::uint64_t sum = 0;    ///< sum of observed values (mean = sum/count)
    std::array<std::uint64_t, kHistBuckets> buckets{};
};
HistSnapshot hist_snapshot(Hist h);

/// Quantile estimate (q in [0,1]) by linear interpolation inside the target
/// bucket; exact up to the <=2^(1/4) bucket resolution.  0 when empty.
double hist_quantile(const HistSnapshot& s, double q) noexcept;

/// RAII wall-clock timer into a fixed histogram.  Disabled cost: one
/// relaxed load + branch at construction, one branch at destruction.
class ScopedHistTimer {
public:
    explicit ScopedHistTimer(Hist h) noexcept : h_(h) {
        if ((g_obs_state.load(std::memory_order_relaxed) & kMetricsBit) != 0) {
            t0_ = detail::now_ns();
            armed_ = true;
        }
    }
    ~ScopedHistTimer() {
        if (armed_) hist_record(h_, detail::now_ns() - t0_);
    }
    ScopedHistTimer(const ScopedHistTimer&) = delete;
    ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

private:
    Hist h_;
    std::uint64_t t0_ = 0;
    bool armed_ = false;
};

// --- spans ---------------------------------------------------------------

/// One completed span, as merged out of the per-thread rings.
struct TraceEvent {
    const char* name;       ///< string literal passed to Span
    std::uint64_t t0_ns;    ///< begin, ns since process trace epoch
    std::uint64_t dur_ns;   ///< duration in ns
    std::uint32_t tid;      ///< obs thread index (registration order)
    std::uint64_t id;       ///< span id (1-based; 0 = none)
    std::uint64_t parent;   ///< enclosing span's id, 0 for roots
    std::uint64_t request;  ///< request id the span ran under, 0 for none
};

namespace detail {
std::uint64_t now_ns() noexcept;
void record_span(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::uint64_t id, std::uint64_t parent, std::uint64_t request) noexcept;
std::uint64_t next_span_id() noexcept;

/// The innermost live span of this thread (maintained by Span ctor/dtor and
/// overridden across task boundaries by TaskParentScope).
inline thread_local std::uint64_t t_current_span = 0;
/// The request id this thread currently serves (RequestScope), carried
/// across task boundaries alongside the span parent.
inline thread_local std::uint64_t t_current_request = 0;
}  // namespace detail

/// Id of the innermost live span on this thread (0 = none / tracing off).
/// `qoc::runtime` captures this at task submission so spans opened inside a
/// worker keep their logical parent.
inline std::uint64_t current_span() noexcept { return detail::t_current_span; }

/// Request id active on this thread (0 = none).  Captured at task submit
/// together with the span id, so design/IRB work a request fans out onto
/// the pool stays correlated with the `service_request` record.
inline std::uint64_t current_request() noexcept { return detail::t_current_request; }

/// Marks a scope as serving one request: spans opened inside (on this
/// thread or, via task-submit capture, on workers) carry `id` in their
/// trace events, which is what makes a trace joinable with the
/// `service_request` JSONL records.  Ids must be derived from content
/// (e.g. cache-key digest + sequence number), never from wall clock.
class RequestScope {
public:
    explicit RequestScope(std::uint64_t id) noexcept
        : prev_(detail::t_current_request) {
        detail::t_current_request = id;
    }
    ~RequestScope() { detail::t_current_request = prev_; }
    RequestScope(const RequestScope&) = delete;
    RequestScope& operator=(const RequestScope&) = delete;

private:
    std::uint64_t prev_;
};

/// Installs a foreign span id (and the submitter's request id) as this
/// thread's current span/request for a scope.  Used by the task runtime to
/// carry the SUBMITTER's context across the task boundary: spans opened
/// inside the task parent to the submitting span -- and inherit its request
/// -- not whatever the worker happened to be running before.
class TaskParentScope {
public:
    explicit TaskParentScope(std::uint64_t parent, std::uint64_t request = 0) noexcept
        : prev_span_(detail::t_current_span), prev_request_(detail::t_current_request) {
        detail::t_current_span = parent;
        detail::t_current_request = request;
    }
    ~TaskParentScope() {
        detail::t_current_span = prev_span_;
        detail::t_current_request = prev_request_;
    }
    TaskParentScope(const TaskParentScope&) = delete;
    TaskParentScope& operator=(const TaskParentScope&) = delete;

private:
    std::uint64_t prev_span_;
    std::uint64_t prev_request_;
};

/// RAII span.  `name` must be a string literal (stored by pointer).  When
/// tracing is disabled, construction is one relaxed load + branch and the
/// destructor is a null-pointer test.
class Span {
public:
    explicit Span(const char* name) noexcept {
        if ((g_obs_state.load(std::memory_order_relaxed) & kTraceBit) != 0) {
            name_ = name;
            t0_ = detail::now_ns();
            parent_ = detail::t_current_span;
            request_ = detail::t_current_request;
            id_ = detail::next_span_id();
            detail::t_current_span = id_;
        }
    }
    ~Span() {
        if (name_ != nullptr) {
            detail::t_current_span = parent_;
            detail::record_span(name_, t0_, detail::now_ns(), id_, parent_, request_);
        }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_ = nullptr;
    std::uint64_t t0_ = 0;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint64_t request_ = 0;
};

// --- telemetry records ---------------------------------------------------

/// Streams one `{"type":"optimizer_iteration",...}` JSONL record.  No-op
/// unless telemetry is enabled (QOC_METRICS set / enable_metrics(path)).
void emit_optimizer_iteration(const char* optimizer, int iteration, double cost,
                              double grad_norm, double step, int n_fun_evals,
                              double wall_time_s);

/// Streams one `{"type":"rb_seed",...}` JSONL record ("thread" is the obs
/// thread index of the caller).  Safe to call from inside OpenMP loops: the
/// file write is serialized by a mutex that the numerics never touch.
void emit_rb_seed(const char* experiment, std::size_t length, std::int64_t seed,
                  double survival);

/// Streams one `{"type":"service_request",...}` JSONL record.  `id` is the
/// content-derived request id (also carried by the request's trace spans),
/// `seq` the issue sequence it was derived from, `key` the pulse-store key,
/// `lane` "interactive"/"batch", `outcome` "hit"/"revalidate"/"design"/
/// "shed".  `redesign` marks a design that replaced an IRB-failed entry.
void emit_service_request(std::uint64_t id, std::uint64_t seq, std::uint64_t key,
                          std::uint64_t device, const char* gate, std::uint64_t qubit,
                          std::uint64_t duration_dt, const char* lane, const char* outcome,
                          bool redesign, std::uint64_t latency_ns);

namespace detail {
/// Appends one pre-formatted JSONL line (no trailing newline in `line`) to
/// the telemetry stream under the io mutex.  No-op when telemetry is off.
/// Cold paths only (the Snapshotter's emit seam).
void write_jsonl_line(const std::string& line);
}  // namespace detail

// --- control / inspection ------------------------------------------------

/// Enables span collection.  `path == ""` keeps events in memory only
/// (tests); otherwise `flush()` writes a chrome://tracing JSON file there.
void enable_tracing(const std::string& path);

/// Enables the metrics registry, and -- when `path` is non-empty -- also the
/// JSONL telemetry stream to that file (truncated on enable).
void enable_metrics(const std::string& path);

/// Writes pending output: the chrome trace file (when a trace path is set)
/// and the final `{"type":"metrics",...}` JSONL line.  Call from one thread,
/// outside parallel regions.  State stays enabled; callable repeatedly.
void flush();

/// Test helper: clears all state bits, zeroes every counter and ring,
/// drops gauges/histograms and closes the telemetry file WITHOUT writing
/// the final metrics line.  Per-thread slots stay registered.
void reset_for_testing();

/// Merged snapshot of all per-thread rings, sorted by (t0_ns, tid).  Call
/// outside parallel regions.
std::vector<TraceEvent> snapshot_trace_events();

/// Spans lost to ring overwrite since enable/reset (summed over threads).
std::uint64_t dropped_trace_events() noexcept;

/// Per-thread span-ring accounting: `recorded` is the ring's high-water
/// mark (total spans ever recorded by that thread), `dropped` how many of
/// them were overwritten before flush.  Embedded as metadata in the chrome
/// trace and the final metrics line, so truncated traces are diagnosable.
struct RingStats {
    std::uint32_t tid = 0;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};
std::vector<RingStats> ring_stats();

}  // namespace qoc::obs
