#include "obs/snapshot.hpp"

#include <chrono>
#include <cstdio>
#include <string>

#include "obs/obs.hpp"

namespace qoc::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

void append_double(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

}  // namespace

Snapshotter::Snapshotter(std::uint64_t period_ms) : period_ms_(period_ms) {
    prev_counters_.resize(static_cast<std::size_t>(Cnt::kCount), 0);
}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::add_source(std::function<void()> source) {
    sources_.push_back(std::move(source));
}

void Snapshotter::start() {
    if (running_ || period_ms_ == 0) return;
    stop_ = false;
    running_ = true;
    thread_ = std::thread([this] { run(); });
}

void Snapshotter::stop() {
    if (!running_) return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    running_ = false;
    snapshot_now();  // capture the end state even if the run was short
}

void Snapshotter::run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                     [this] { return stop_; });
        if (stop_) break;
        lock.unlock();
        snapshot_now();
        lock.lock();
    }
}

void Snapshotter::snapshot_now() {
    if (!telemetry_enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);

    for (const auto& source : sources_) source();

    std::string line = "{\"type\":\"snapshot\",\"seq\":";
    append_u64(line, seq_.load(std::memory_order_relaxed));
    line += ",\"t_ns\":";
    append_u64(line, now_ns());

    line += ",\"counters\":{";
    bool first = true;
    for (std::size_t i = 0; i < static_cast<std::size_t>(Cnt::kCount); ++i) {
        const std::uint64_t total = counter_value(static_cast<Cnt>(i));
        const std::uint64_t delta = total - prev_counters_[i];
        prev_counters_[i] = total;
        if (delta == 0) continue;
        if (!first) line += ',';
        first = false;
        line += '"';
        line += counter_name(static_cast<Cnt>(i));
        line += "\":";
        append_u64(line, delta);
    }

    line += "},\"latency\":{";
    first = true;
    for (std::size_t i = 0; i < static_cast<std::size_t>(Hist::kCount); ++i) {
        const HistSnapshot s = hist_snapshot(static_cast<Hist>(i));
        if (s.count == 0) continue;
        if (!first) line += ',';
        first = false;
        line += '"';
        line += hist_name(static_cast<Hist>(i));
        line += "\":{\"count\":";
        append_u64(line, s.count);
        line += ",\"p50\":";
        append_double(line, hist_quantile(s, 0.50));
        line += ",\"p90\":";
        append_double(line, hist_quantile(s, 0.90));
        line += ",\"p99\":";
        append_double(line, hist_quantile(s, 0.99));
        line += ",\"p999\":";
        append_double(line, hist_quantile(s, 0.999));
        line += '}';
    }

    line += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : gauges_snapshot()) {
        if (!first) line += ',';
        first = false;
        line += '"';
        line += name;
        line += "\":";
        append_double(line, value);
    }
    line += "}}";

    detail::write_jsonl_line(line);
    seq_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Snapshotter::snapshots_emitted() const noexcept {
    return seq_.load(std::memory_order_relaxed);
}

}  // namespace qoc::obs
