/// \file calibration_service.hpp
/// \brief Resident calibration service: content-addressed pulse cache with
///        drift-aware invalidation in front of the design pipeline.
///
/// The serving model, end to end:
///
///   request(device, gate, ...) -> key = digest(quantized snapshot, request)
///        |
///        v
///   FRESH entry  ------------------------------> serve (cache.hit)
///   SUSPECT entry -> cheap IRB on the CURRENT --> pass: promote + serve
///        |           drifted device              (cache.revalidate)
///        |              |
///        |              v fail
///   MISS ----------> coalesced design task on TaskPool::global()
///                    (cache.miss; admission control may shed)
///
/// Invalidation state machine: `update_device` (the daily drift
/// notification) compares each served entry's last-validated exact
/// parameters against the new snapshot; entries whose parameters moved past
/// `DriftTolerance` are demoted FRESH -> SUSPECT.  A suspect entry is never
/// thrown away eagerly: the next request runs a cheap interleaved-RB check
/// against the drifted executor and only falls through to a full re-design
/// when the IRB gate error exceeds the bound.  Re-designs deterministically
/// fold the entry's design generation into the optimizer seed, so the
/// replacement pulse differs from the failed one.
///
/// Coalescing semantics: concurrent identical misses (same key) share one
/// in-flight design; the extra callers wait -- HELPING, i.e. running queued
/// pool tasks, so pool size 1 cannot deadlock -- on the leader's result.
/// Because designs always run against the bucket-canonical snapshot
/// (`quantize_design_model`) and the optimizer seed is part of the key, the
/// designed pulse is a pure function of the key: whoever computes it, the
/// bytes are the same, which is what makes replaying a request log bitwise
/// deterministic at any pool width.
///
/// Admission control: design work is bounded by `queue_bound` in-flight
/// designs.  Past the bound, new DESIGN requests are shed (queue.shed);
/// lookups -- hits and revalidations -- are never shed.  Two priority lanes
/// feed the pool: each queued job submits one pool task, and every task pops
/// the highest-priority pending job at execution time, so interactive
/// requests overtake batch backfill whenever a backlog forms.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "device/backend_config.hpp"
#include "experiments/gate_designer.hpp"
#include "rb/rb.hpp"
#include "service/pulse_store.hpp"

namespace qoc::experiments {
class DesignPipeline;
class PipelineContexts;
}  // namespace qoc::experiments

namespace qoc::obs {
class Snapshotter;
}  // namespace qoc::obs

namespace qoc::device {
class PulseExecutor;
}  // namespace qoc::device

namespace qoc::service {

/// Per-parameter drift bounds an entry stays FRESH within.  Compared between
/// the entry's last-validated EXACT snapshot and the newest one; defaults
/// are a few typical daily excursions under `device::DriftOptions`, so most
/// days keep entries fresh and only genuine drift triggers revalidation.
struct DriftTolerance {
    double detuning_abs = 1.5e-3;  ///< rad/ns (~10 sigma of daily kicks)
    double amp_rel = 0.015;        ///< relative drive-amplitude change
    double t1_rel = 0.15;          ///< relative T1 change
    double t2_rel = 0.15;
    double readout_abs = 0.05;     ///< absolute readout-error change
};

/// Cheap RB protocol for service-side characterization (reference curves and
/// suspect-entry revalidation).  Full-fidelity studies should override.
rb::RbOptions default_service_rb();

struct ServiceOptions {
    KeyQuant quant;
    DriftTolerance tolerance;
    /// Max designs queued or running at once; further design requests are
    /// shed.  0 disables designing entirely (lookup-only service).
    std::size_t queue_bound = 64;
    rb::RbOptions rb = default_service_rb();
    /// Design-model fidelity/cost trade-off for pulses the service designs.
    /// The two-level closed model keeps a resident service responsive; the
    /// three-level models are the paper-faithful (and much slower) choice.
    experiments::DesignModel design_model = experiments::DesignModel::kTwoLevelClosed;
    double amp_bound = 0.15;       ///< per-quadrature cap (GateDesignSpec)
    double energy_penalty = 0.02;
    bool use_y_control = true;
    /// IRB gate-error bound a suspect entry must beat to be revalidated
    /// instead of re-designed.  +infinity revalidates unconditionally;
    /// -infinity forces every suspect entry through a re-design.  (Finite
    /// negative values are NOT a reliable "never pass": the IRB error
    /// estimate 1 - alpha_i/alpha_r is unbounded below at small statistics.)
    double revalidate_gate_error_bound = 0.02;
    /// Telemetry snapshot period (ms) for the service-owned Snapshotter,
    /// which samples queue depth, in-flight designs and store occupancy as
    /// gauges.  0 defers to the QOC_SNAPSHOT_MS environment variable
    /// (unset/0 = no snapshot thread).  Snapshots only emit while the
    /// telemetry stream (QOC_METRICS) is enabled.
    std::uint64_t snapshot_ms = 0;
};

/// One pulse request.  Everything here is part of the cache key (together
/// with the quantized device snapshot), so requests that differ in any field
/// address different entries.
struct PulseRequest {
    std::string gate = "x";        ///< "x", "sx", "h" or "cx"
    std::size_t qubit = 0;         ///< ignored for cx (always the {0,1} pair)
    std::size_t duration_dt = 64;
    std::size_t n_timeslots = 8;
    int max_iterations = 12;
    std::uint64_t design_seed = 1;
    unsigned priority = 0;         ///< 0 = interactive lane, else batch lane
};

enum class ResponseStatus : std::uint8_t {
    kHit = 0,          ///< served from a fresh entry
    kRevalidated = 1,  ///< suspect entry passed IRB and was promoted
    kDesigned = 2,     ///< miss (or failed revalidation): designed anew
    kShed = 3,         ///< admission control refused the design; no pulse
};

struct PulseResponse {
    ResponseStatus status = ResponseStatus::kShed;
    std::uint64_t key = 0;
    StoredPulse pulse;  ///< meaningful unless status == kShed
};

/// FNV-1a digest of the response PAYLOAD: key, duration and the bit patterns
/// of the model infidelity and every channel sample.  Deliberately excludes
/// `status` -- whether a given request hit or coalesced into a miss depends
/// on thread interleaving, but the payload is a pure function of the key, so
/// this digest is the replay-determinism observable.
std::uint64_t response_payload_digest(const PulseResponse& response);

/// Cumulative service statistics (independent of whether `qoc::obs` metrics
/// are enabled; the obs counters mirror these).
struct ServiceStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t revalidations = 0;  ///< suspect entries promoted by IRB
    std::uint64_t redesigns = 0;      ///< designs of keys that had an entry
    std::uint64_t shed = 0;
    std::uint64_t demoted = 0;        ///< fresh -> suspect transitions
};

/// See the file comment.  All public methods are thread-safe; `request` is
/// synchronous (it returns the served pulse) but internally fans design work
/// out to `runtime::TaskPool::global()` and helps while waiting.
class CalibrationService {
public:
    explicit CalibrationService(ServiceOptions options = {});
    ~CalibrationService();

    CalibrationService(const CalibrationService&) = delete;
    CalibrationService& operator=(const CalibrationService&) = delete;

    /// Registers (or replaces) a device snapshot: builds its executor,
    /// daily-calibrated default gates and a design pipeline whose
    /// characterization contexts are shared across every request served on
    /// this snapshot (the `PipelineContexts` seam).
    void register_device(std::size_t device_id, const device::BackendConfig& config);

    /// Drift notification: re-registers the device on its new snapshot and
    /// demotes served entries whose validated parameters moved past the
    /// tolerance.  Returns how many entries were demoted to suspect.
    std::size_t update_device(std::size_t device_id, const device::BackendConfig& config);

    /// The cache key `req` addresses on `device_id`'s current snapshot.
    std::uint64_t request_key(std::size_t device_id, const PulseRequest& req) const;

    /// Serves a pulse for `req` (see the file comment for the state
    /// machine).  Throws `std::out_of_range` for an unregistered device and
    /// `std::invalid_argument` for an unsupported gate name.
    ///
    /// `sequence` is the request's issue sequence number: together with the
    /// cache key it derives the telemetry request id (content-derived, never
    /// wall clock), so a replayed request log reproduces identical ids.
    /// Callers replaying a log should pass the log record's index; the
    /// two-argument overload auto-assigns from a service-local counter.
    PulseResponse request(std::size_t device_id, const PulseRequest& req,
                          std::uint64_t sequence);
    PulseResponse request(std::size_t device_id, const PulseRequest& req) {
        return request(device_id, req, seq_.fetch_add(1, std::memory_order_relaxed));
    }

    /// Instantaneous design-queue depth (jobs queued, not yet popped by a
    /// pool task) and in-flight design count (queued or running).  Sampled
    /// by the Snapshotter as gauges -- these are NOT monotone counters; the
    /// admitted-count counter is `obs::Cnt::kSvcAdmitted`.
    std::size_t queue_depth() const;
    std::size_t inflight_designs() const;

    /// The underlying content-addressed store (e.g. for persistence:
    /// `store().save_jsonl(path)` / `store().load_jsonl(path)`).
    PulseStore& store() { return store_; }
    const PulseStore& store() const { return store_; }

    ServiceStats stats() const;
    const ServiceOptions& options() const { return options_; }

private:
    struct DeviceState;
    struct Inflight;
    /// One queued design (complete here so the lane deques can hold it; the
    /// pointees stay opaque).
    struct DesignJob {
        std::shared_ptr<const DeviceState> dev;
        PulseRequest req;
        std::uint64_t key = 0;
        std::uint64_t design_count = 0;
        std::shared_ptr<Inflight> inf;
    };

    std::shared_ptr<const DeviceState> device_state(std::size_t device_id) const;
    std::shared_ptr<const DeviceState> build_device_state(const device::BackendConfig& cfg) const;
    std::uint64_t key_for(const DeviceState& dev, const PulseRequest& req) const;
    StoredPulse design_pulse(const DeviceState& dev, const PulseRequest& req, std::uint64_t key,
                             std::uint64_t design_count) const;
    PulseResponse serve(std::size_t device_id, const PulseRequest& req,
                        const std::shared_ptr<const DeviceState>& dev, std::uint64_t key,
                        bool& redesigned);
    void run_one_job();
    static void wait_inflight(Inflight& inf);

    ServiceOptions options_;
    PulseStore store_;
    std::atomic<std::uint64_t> seq_{0};  ///< auto-assigned issue sequence

    mutable std::mutex dev_mu_;
    std::unordered_map<std::size_t, std::shared_ptr<const DeviceState>> devices_;
    /// Keys ever served per device -- the set `update_device` screens for
    /// drift (content-addressing means two devices may share an entry).
    std::unordered_map<std::size_t, std::unordered_set<std::uint64_t>> served_;

    mutable std::mutex q_mu_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
    std::deque<DesignJob> lanes_[2];  ///< [0] interactive, [1] batch
    std::size_t queued_or_running_ = 0;

    mutable std::mutex stats_mu_;
    ServiceStats stats_;

    /// Declared last: destroyed (and its thread joined) while every member
    /// its gauge sources sample is still alive.
    std::unique_ptr<obs::Snapshotter> snapshotter_;
};

}  // namespace qoc::service
