#include "service/fleet_driver.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "runtime/task_pool.hpp"
#include "util/fnv1a.hpp"

namespace qoc::service {

namespace {

/// splitmix64: the fully specified generator the workload stream uses, so a
/// workload is a pure function of (workload_seed, day, position).
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

PulseRequest request_from_record(const io::RequestLogRecord& r) {
    PulseRequest req;
    req.gate = r.gate;
    req.qubit = r.qubit;
    req.duration_dt = r.duration_dt;
    req.n_timeslots = r.n_timeslots;
    req.max_iterations = static_cast<int>(r.max_iterations);
    req.design_seed = r.design_seed;
    req.priority = static_cast<unsigned>(r.priority);
    return req;
}

FleetResult drive(const FleetOptions& options, std::vector<io::RequestLogRecord> log) {
    if (options.n_devices == 0) throw std::invalid_argument("run_fleet: n_devices == 0");
    CalibrationService svc(options.service);
    std::vector<device::DriftModel> models;
    models.reserve(options.n_devices);
    for (std::size_t d = 0; d < options.n_devices; ++d) {
        models.emplace_back(options.base, options.drift_seed + d, options.drift);
    }

    FleetResult res;
    res.log = std::move(log);
    res.responses.resize(res.log.size());

    int last_day = -1;
    for (const auto& r : res.log) last_day = std::max(last_day, static_cast<int>(r.day));

    std::size_t pos = 0;
    for (int day = 0; day <= last_day; ++day) {
        // Daily drift notification: every device moves to its day-`day`
        // snapshot before any of the day's traffic is served.
        for (std::size_t d = 0; d < options.n_devices; ++d) {
            if (day == 0) {
                svc.register_device(d, models[d].device_on_day(0));
            } else {
                svc.update_device(d, models[d].device_on_day(day));
            }
        }
        const std::size_t begin = pos;
        while (pos < res.log.size() && res.log[pos].day == day) ++pos;
        if (options.concurrent) {
            runtime::TaskGroup group;
            for (std::size_t i = begin; i < pos; ++i) {
                group.run([&svc, &res, i] {
                    // Pass the log index as the issue sequence so telemetry
                    // request ids reproduce bitwise under replay.
                    res.responses[i] = svc.request(res.log[i].device_id,
                                                   request_from_record(res.log[i]),
                                                   res.log[i].index);
                });
            }
            group.wait();
        } else {
            for (std::size_t i = begin; i < pos; ++i) {
                res.responses[i] = svc.request(res.log[i].device_id,
                                               request_from_record(res.log[i]),
                                               res.log[i].index);
            }
        }
    }
    if (pos != res.log.size()) {
        throw std::invalid_argument("run_fleet: request log not sorted by day");
    }

    util::Fnv1a h;
    for (const auto& r : res.responses) h.u64(response_payload_digest(r));
    res.response_digest = h.digest();
    res.stats = svc.stats();
    res.store_size = svc.store().size();

    if (!options.store_path.empty()) svc.store().save_jsonl(options.store_path);
    if (!options.request_log_path.empty()) {
        std::ofstream os(options.request_log_path);
        if (!os) {
            throw std::runtime_error("run_fleet: cannot open " + options.request_log_path);
        }
        io::write_request_log_jsonl(os, res.log);
    }
    return res;
}

}  // namespace

std::vector<io::RequestLogRecord> fleet_workload(const FleetOptions& options) {
    // A deliberately small distinct-request space (gates x qubits x two
    // durations): realistic fleet traffic repeats the same few calibration
    // targets, which is what makes the steady state hit-dominated.
    static const char* const k1qGates[] = {"x", "sx", "h"};
    std::vector<io::RequestLogRecord> log;
    log.reserve(static_cast<std::size_t>(options.n_days) * options.requests_per_day);
    std::uint64_t index = 0;
    for (int day = 0; day < options.n_days; ++day) {
        std::uint64_t stream =
            options.workload_seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(day) + 1;
        for (std::size_t i = 0; i < options.requests_per_day; ++i) {
            const std::uint64_t r = splitmix64(stream);
            io::RequestLogRecord rec;
            rec.index = index++;
            rec.day = day;
            rec.device_id = r % options.n_devices;
            const std::uint64_t gate_pick = (r >> 8) % (options.include_cx ? 4 : 3);
            rec.gate = gate_pick < 3 ? k1qGates[gate_pick] : "cx";
            rec.qubit = rec.gate == "cx" ? 0 : ((r >> 16) % 2);
            rec.duration_dt = rec.gate == "cx" ? 192 : (((r >> 24) % 2) != 0 ? 64 : 48);
            rec.n_timeslots = 8;
            rec.max_iterations = 10;
            rec.design_seed = 1;
            rec.priority = ((r >> 32) % 4) == 0 ? 1 : 0;  // ~25% batch lane
            log.push_back(std::move(rec));
        }
    }
    return log;
}

FleetResult run_fleet(const FleetOptions& options) { return drive(options, fleet_workload(options)); }

FleetResult replay_fleet(const FleetOptions& options,
                         const std::vector<io::RequestLogRecord>& log) {
    return drive(options, log);
}

}  // namespace qoc::service
