/// \file fleet_driver.hpp
/// \brief Fleet workload driver for the calibration service: N simulated
///        devices drifting over D days, a deterministic request stream, and
///        bitwise-reproducible replay.
///
/// `run_fleet` generates the workload from `workload_seed` (a splitmix64
/// stream -- fully specified, no std:: distribution indeterminacy), drives
/// the service day by day (each day starts with a drift notification per
/// device), and digests every response payload in issue order.
/// `replay_fleet` re-drives a saved request log through a FRESH service.
///
/// Determinism contract: with shedding disabled (`queue_bound` at least the
/// day's concurrent demand), every response payload is a pure function of
/// its request key and the day's deterministic device snapshots, so
/// `response_digest` is bitwise identical across pool widths, across
/// concurrent vs sequential issue, and between a run and its replay.
/// Statuses (hit vs coalesced miss) and `ServiceStats` are interleaving-
/// dependent and intentionally excluded from the digest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/backend_config.hpp"
#include "device/drift_model.hpp"
#include "io/io.hpp"
#include "service/calibration_service.hpp"

namespace qoc::service {

struct FleetOptions {
    std::size_t n_devices = 2;
    int n_days = 3;
    std::size_t requests_per_day = 24;  ///< across the whole fleet
    bool include_cx = false;            ///< add cx requests to the gate mix
    bool concurrent = true;             ///< issue each day's requests in parallel
    std::uint64_t drift_seed = 17;      ///< device i drifts with seed drift_seed + i
    std::uint64_t workload_seed = 23;
    device::BackendConfig base = device::ibmq_montreal();
    device::DriftOptions drift;
    ServiceOptions service;
    std::string store_path;        ///< save the pulse store here after the run ("" = skip)
    std::string request_log_path;  ///< save the request log here ("" = skip)
};

struct FleetResult {
    std::vector<io::RequestLogRecord> log;  ///< every request, in issue order
    std::vector<PulseResponse> responses;   ///< log-index aligned
    std::uint64_t response_digest = 0;      ///< FNV-1a over payload digests
    ServiceStats stats;
    std::size_t store_size = 0;
};

/// Generates the deterministic workload for `options` (what `run_fleet`
/// would issue), without running anything.
std::vector<io::RequestLogRecord> fleet_workload(const FleetOptions& options);

/// Runs the fleet scenario end to end.  See the file comment.
FleetResult run_fleet(const FleetOptions& options);

/// Re-drives `log` through a fresh service configured per `options`
/// (workload-generation fields are ignored; drift/device/service fields must
/// match the original run for payload-identical responses).
FleetResult replay_fleet(const FleetOptions& options,
                         const std::vector<io::RequestLogRecord>& log);

}  // namespace qoc::service
