#include "service/calibration_service.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "device/calibration.hpp"
#include "device/executor.hpp"
#include "experiments/design_pipeline.hpp"
#include "experiments/irb_experiment.hpp"
#include "obs/obs.hpp"
#include "obs/snapshot.hpp"
#include "runtime/task_pool.hpp"
#include "util/fnv1a.hpp"

namespace qoc::service {

namespace {

/// `flatten_params` restricted to the qubits a request can depend on.
std::vector<std::uint64_t> snapshot_params(const device::BackendConfig& cfg, std::size_t qubit,
                                           bool two_qubit) {
    device::BackendConfig tmp;
    if (two_qubit) {
        tmp.qubits = {cfg.qubit(0), cfg.qubit(1)};
    } else {
        tmp.qubits = {cfg.qubit(qubit)};
    }
    return flatten_params(tmp);
}

/// Whether any tolerance-screened parameter moved past its bound between the
/// entry's last-validated snapshot and the current one.  A layout mismatch
/// (e.g. an entry loaded from an older store) conservatively counts as
/// drifted.
bool params_drifted(const std::vector<std::uint64_t>& validated,
                    const std::vector<std::uint64_t>& now, const DriftTolerance& tol) {
    if (validated.size() != now.size() || validated.empty() || validated.size() % 10 != 0) {
        return true;
    }
    const auto f = [](std::uint64_t b) { return std::bit_cast<double>(b); };
    for (std::size_t base = 0; base < validated.size(); base += 10) {
        // flatten_params layout: freq, anharm, t1, t2, omega, detuning,
        // amp_scale, drive_amp_noise, readout_p10, readout_p01.
        if (std::abs(f(now[base + 5]) - f(validated[base + 5])) > tol.detuning_abs) return true;
        if (std::abs(f(now[base + 6]) / f(validated[base + 6]) - 1.0) > tol.amp_rel) return true;
        if (std::abs(f(now[base + 2]) / f(validated[base + 2]) - 1.0) > tol.t1_rel) return true;
        if (std::abs(f(now[base + 3]) / f(validated[base + 3]) - 1.0) > tol.t2_rel) return true;
        if (std::abs(f(now[base + 8]) - f(validated[base + 8])) > tol.readout_abs) return true;
        if (std::abs(f(now[base + 9]) - f(validated[base + 9])) > tol.readout_abs) return true;
    }
    return false;
}

bool supported_gate(const std::string& gate) {
    return gate == "x" || gate == "sx" || gate == "h" || gate == "cx";
}

std::uint64_t env_snapshot_ms() {
    const char* v = std::getenv("QOC_SNAPSHOT_MS");
    if (v == nullptr || *v == '\0') return 0;
    const long parsed = std::atol(v);
    return parsed > 0 ? static_cast<std::uint64_t>(parsed) : 0;
}

/// The latency histogram a finished request records into: one per
/// lane x outcome cell.
obs::Hist latency_hist(bool interactive, ResponseStatus status) {
    switch (status) {
        case ResponseStatus::kHit:
            return interactive ? obs::Hist::kSvcLatHitInteractive
                               : obs::Hist::kSvcLatHitBatch;
        case ResponseStatus::kRevalidated:
            return interactive ? obs::Hist::kSvcLatRevalidateInteractive
                               : obs::Hist::kSvcLatRevalidateBatch;
        case ResponseStatus::kDesigned:
            return interactive ? obs::Hist::kSvcLatDesignInteractive
                               : obs::Hist::kSvcLatDesignBatch;
        case ResponseStatus::kShed:
            break;
    }
    return interactive ? obs::Hist::kSvcLatShedInteractive : obs::Hist::kSvcLatShedBatch;
}

const char* outcome_name(ResponseStatus status) {
    switch (status) {
        case ResponseStatus::kHit: return "hit";
        case ResponseStatus::kRevalidated: return "revalidate";
        case ResponseStatus::kDesigned: return "design";
        case ResponseStatus::kShed: break;
    }
    return "shed";
}

}  // namespace

rb::RbOptions default_service_rb() {
    rb::RbOptions rb;
    rb.lengths = {1, 8, 16};
    rb.seeds_per_length = 2;
    rb.shots = 128;
    return rb;
}

std::uint64_t response_payload_digest(const PulseResponse& response) {
    util::Fnv1a h;
    h.u64(response.key);
    const bool has_payload = response.status != ResponseStatus::kShed;
    h.u64(has_payload ? 1 : 0);
    if (!has_payload) return h.digest();
    h.u64(response.pulse.duration_dt);
    h.f64_bits(response.pulse.model_fid_err);
    for (const auto& ch : response.pulse.channels) {
        h.u64(static_cast<std::uint64_t>(ch.channel.type));
        h.u64(ch.channel.index);
        for (const auto& s : ch.samples) {
            h.f64_bits(s.real());
            h.f64_bits(s.imag());
        }
    }
    return h.digest();
}

/// Everything the service keeps per registered device snapshot.  Rebuilt
/// wholesale on `update_device`; requests pin the state they started with
/// via shared_ptr, so a mid-request drift notification never invalidates
/// what a running request reads.
struct CalibrationService::DeviceState {
    device::BackendConfig exact;      ///< the drifted snapshot as registered
    device::BackendConfig canonical;  ///< bucket-canonical design model
    std::vector<std::uint64_t> qubit_digest;  ///< per-qubit snapshot digests
    std::uint64_t pair_digest = 0;            ///< {0,1}-pair digest (cx)
    std::unique_ptr<device::PulseExecutor> exec;
    pulse::InstructionScheduleMap defaults;
    /// Shared characterization contexts: every IRB this snapshot serves
    /// (revalidations and any future pipeline) reuses one gate set +
    /// reference curve per qubit instead of re-measuring them.
    std::shared_ptr<experiments::PipelineContexts> ctxs;
    std::unique_ptr<experiments::DesignPipeline> pipeline;
};

struct CalibrationService::Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    StoredPulse result;
    std::exception_ptr error;
};

CalibrationService::CalibrationService(ServiceOptions options) : options_(std::move(options)) {
    if (options_.snapshot_ms == 0) options_.snapshot_ms = env_snapshot_ms();
    if (options_.snapshot_ms > 0) {
        snapshotter_ = std::make_unique<obs::Snapshotter>(options_.snapshot_ms);
        snapshotter_->add_source([this] {
            obs::set_gauge("service.queue.depth", static_cast<double>(queue_depth()));
            obs::set_gauge("service.inflight_designs",
                           static_cast<double>(inflight_designs()));
            const PulseStore::Occupancy occ = store_.occupancy();
            obs::set_gauge("store.entries", static_cast<double>(occ.total));
            obs::set_gauge("store.fresh", static_cast<double>(occ.fresh));
            obs::set_gauge("store.suspect", static_cast<double>(occ.suspect));
            for (std::size_t i = 0; i < PulseStore::kShards; ++i) {
                char name[40];
                std::snprintf(name, sizeof(name), "store.shard.%02zu", i);
                obs::set_gauge(name, static_cast<double>(occ.shard_sizes[i]));
            }
        });
        snapshotter_->start();
    }
}

CalibrationService::~CalibrationService() {
    // Join the snapshot thread while every member its sources read is alive.
    if (snapshotter_) snapshotter_->stop();
}

std::shared_ptr<const CalibrationService::DeviceState> CalibrationService::build_device_state(
    const device::BackendConfig& cfg) const {
    auto st = std::make_shared<DeviceState>();
    st->exact = cfg;
    st->canonical = quantize_design_model(cfg, options_.quant);
    st->qubit_digest.reserve(cfg.qubits.size());
    for (std::size_t q = 0; q < cfg.qubits.size(); ++q) {
        st->qubit_digest.push_back(device_key_digest(cfg, options_.quant, q, false));
    }
    if (cfg.qubits.size() >= 2) {
        st->pair_digest = device_key_digest(cfg, options_.quant, 0, true);
    }
    st->exec = std::make_unique<device::PulseExecutor>(cfg);
    st->defaults = device::build_default_gates(*st->exec);
    st->ctxs = experiments::DesignPipeline::make_contexts();
    experiments::DesignPipelineOptions popt;
    popt.rb = options_.rb;
    popt.characterize = true;
    st->pipeline = std::make_unique<experiments::DesignPipeline>(*st->exec, st->defaults,
                                                                 st->ctxs, popt);
    return st;
}

void CalibrationService::register_device(std::size_t device_id,
                                         const device::BackendConfig& config) {
    auto st = build_device_state(config);
    std::lock_guard<std::mutex> lk(dev_mu_);
    devices_[device_id] = std::move(st);
}

std::size_t CalibrationService::update_device(std::size_t device_id,
                                              const device::BackendConfig& config) {
    auto st = build_device_state(config);
    std::unordered_set<std::uint64_t> keys;
    {
        std::lock_guard<std::mutex> lk(dev_mu_);
        devices_[device_id] = std::move(st);
        const auto it = served_.find(device_id);
        if (it != served_.end()) keys = it->second;
    }
    if (keys.empty()) return 0;
    const std::size_t demoted = store_.demote_if([&](const StoredPulse& entry) {
        if (keys.find(entry.key) == keys.end()) return false;
        return params_drifted(entry.validated,
                              snapshot_params(config, entry.qubit, entry.gate == "cx"),
                              options_.tolerance);
    });
    if (demoted != 0) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.demoted += demoted;
    }
    return demoted;
}

std::shared_ptr<const CalibrationService::DeviceState> CalibrationService::device_state(
    std::size_t device_id) const {
    std::lock_guard<std::mutex> lk(dev_mu_);
    const auto it = devices_.find(device_id);
    if (it == devices_.end()) {
        throw std::out_of_range("CalibrationService: unregistered device " +
                                std::to_string(device_id));
    }
    return it->second;
}

std::uint64_t CalibrationService::key_for(const DeviceState& dev, const PulseRequest& req) const {
    const bool two_qubit = req.gate == "cx";
    util::Fnv1a h;
    h.u64(two_qubit ? dev.pair_digest : dev.qubit_digest.at(req.qubit));
    h.bytes(req.gate);
    h.byte(0);  // name terminator
    h.u64(two_qubit ? 0 : req.qubit);
    h.u64(req.duration_dt);
    h.u64(req.n_timeslots);
    h.i64(req.max_iterations);
    h.u64(req.design_seed);
    // Service-level optimizer configuration (constant per service, but two
    // services with different design settings must not share entries).
    h.u64(static_cast<std::uint64_t>(options_.design_model));
    h.f64_bits(options_.amp_bound);
    h.f64_bits(options_.energy_penalty);
    h.byte(options_.use_y_control ? 1 : 0);
    return h.digest();
}

std::uint64_t CalibrationService::request_key(std::size_t device_id,
                                              const PulseRequest& req) const {
    return key_for(*device_state(device_id), req);
}

StoredPulse CalibrationService::design_pulse(const DeviceState& dev, const PulseRequest& req,
                                             std::uint64_t key,
                                             std::uint64_t design_count) const {
    const bool two_qubit = req.gate == "cx";
    // Fold the design generation into the optimizer seed so a re-design
    // after an IRB failure explores a different pulse -- deterministically.
    // The structured initial-pulse families ignore random_seed, so redesigns
    // also switch to a seeded random initial pulse: generation 0 stays
    // bitwise what the pipeline would design, later generations genuinely
    // move to a different basin.
    const std::uint64_t seed = req.design_seed + 0x9e3779b97f4a7c15ull * design_count;
    const bool redesign = design_count > 0;
    obs::ScopedHistTimer timer(obs::Hist::kDesignWall);
    StoredPulse p;
    p.key = key;
    p.gate = req.gate;
    p.qubit = two_qubit ? 0 : req.qubit;
    p.duration_dt = req.duration_dt;
    p.design_count = design_count + 1;
    p.state = EntryState::kFresh;
    p.validated = snapshot_params(dev.exact, p.qubit, two_qubit);
    pulse::Schedule sched;
    if (two_qubit) {
        experiments::CxDesignSpec spec;
        spec.duration_dt = req.duration_dt;
        spec.n_timeslots = req.n_timeslots;
        spec.max_iterations = req.max_iterations;
        spec.random_seed = seed;
        if (redesign) spec.seed = control::InitialPulseType::kRandom;
        auto designed = experiments::design_cx_gate(dev.canonical, spec);
        p.model_fid_err = designed.model_fid_err;
        sched = std::move(designed.schedule);
    } else {
        experiments::GateDesignSpec spec;
        spec.target = experiments::ideal_1q_gate(req.gate);
        spec.duration_dt = req.duration_dt;
        spec.n_timeslots = req.n_timeslots;
        spec.use_y_control = options_.use_y_control;
        spec.model = options_.design_model;
        spec.amp_bound = options_.amp_bound;
        spec.energy_penalty = options_.energy_penalty;
        spec.random_seed = seed;
        spec.max_iterations = req.max_iterations;
        if (redesign) spec.seed = control::InitialPulseType::kRandom;
        auto designed = experiments::design_1q_gate(dev.canonical, req.qubit, req.gate, spec);
        p.model_fid_err = designed.model_fid_err;
        sched = std::move(designed.schedule);
    }
    std::vector<pulse::Channel> channels = sched.channels();
    std::sort(channels.begin(), channels.end());  // canonical channel order
    for (const pulse::Channel& ch : channels) {
        const std::size_t n = sched.channel_duration(ch);
        if (n == 0) continue;
        p.channels.push_back({ch, sched.channel_samples(ch, n)});
    }
    return p;
}

void CalibrationService::run_one_job() {
    DesignJob job;
    {
        std::lock_guard<std::mutex> lk(q_mu_);
        if (!lanes_[0].empty()) {
            job = std::move(lanes_[0].front());
            lanes_[0].pop_front();
        } else if (!lanes_[1].empty()) {
            job = std::move(lanes_[1].front());
            lanes_[1].pop_front();
        } else {
            return;  // every queued job has exactly one task; cannot happen
        }
    }
    StoredPulse result;
    std::exception_ptr error;
    try {
        result = design_pulse(*job.dev, job.req, job.key, job.design_count);
        store_.put(result);
    } catch (...) {
        error = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lk(q_mu_);
        inflight_.erase(job.key);
        --queued_or_running_;
    }
    {
        std::lock_guard<std::mutex> lk(job.inf->mu);
        job.inf->result = std::move(result);
        job.inf->error = error;
        job.inf->done = true;
    }
    job.inf->cv.notify_all();
}

void CalibrationService::wait_inflight(Inflight& inf) {
    // Mirror Future<T>::get(): HELP by running queued pool tasks while the
    // leader's design is pending, so a pool of size 1 (no workers at all)
    // still makes progress -- the waiter itself executes the design task.
    runtime::TaskPool& pool = runtime::TaskPool::global();
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(inf.mu);
            if (inf.done) return;
        }
        if (!pool.try_run_one()) {
            std::unique_lock<std::mutex> lk(inf.mu);
            inf.cv.wait(lk, [&] { return inf.done; });
            return;
        }
    }
}

PulseResponse CalibrationService::request(std::size_t device_id, const PulseRequest& req,
                                          std::uint64_t sequence) {
    if (!supported_gate(req.gate)) {
        throw std::invalid_argument("CalibrationService: unsupported gate '" + req.gate + "'");
    }
    const auto dev = device_state(device_id);
    const std::uint64_t key = key_for(*dev, req);

    // Content-derived request id: spans opened below (and design/IRB work
    // fanned out to the pool) carry it, and the service_request record joins
    // the trace on it.  Replaying a request log reproduces identical ids.
    util::Fnv1a idh;
    idh.u64(key);
    idh.u64(sequence);
    const std::uint64_t request_id = idh.digest();
    obs::RequestScope rscope(request_id);
    obs::Span span("service.request");

    const bool timed = obs::metrics_enabled() || obs::telemetry_enabled();
    const std::uint64_t t0 = timed ? obs::now_ns() : 0;
    bool redesigned = false;
    PulseResponse resp = serve(device_id, req, dev, key, redesigned);
    if (timed) {
        const std::uint64_t latency = obs::now_ns() - t0;
        const bool interactive = req.priority == 0;
        obs::hist_record(latency_hist(interactive, resp.status), latency);
        obs::emit_service_request(request_id, sequence, key, device_id, req.gate.c_str(),
                                  req.gate == "cx" ? 0 : req.qubit, req.duration_dt,
                                  interactive ? "interactive" : "batch",
                                  outcome_name(resp.status), redesigned, latency);
    }
    return resp;
}

PulseResponse CalibrationService::serve(std::size_t device_id, const PulseRequest& req,
                                        const std::shared_ptr<const DeviceState>& dev,
                                        std::uint64_t key, bool& redesigned) {
    const bool two_qubit = req.gate == "cx";
    const std::size_t qubit = two_qubit ? 0 : req.qubit;
    {
        std::lock_guard<std::mutex> lk(dev_mu_);
        served_[device_id].insert(key);
    }

    auto entry = store_.lookup(key);
    if (entry && entry->state == EntryState::kFresh) {
        obs::count(obs::Cnt::kSvcCacheHit);
        {
            std::lock_guard<std::mutex> lk(stats_mu_);
            ++stats_.hits;
        }
        return {ResponseStatus::kHit, key, std::move(*entry)};
    }

    std::uint64_t design_count = 0;
    if (entry) {
        design_count = entry->design_count;
        // Suspect entry: cheap IRB against the CURRENT drifted device.  Only
        // an IRB failure pays for a full re-design.
        const pulse::Schedule sched = stored_pulse_schedule(*entry);
        const double gate_error =
            two_qubit ? dev->pipeline->characterize_cx(sched).custom.gate_error
                      : dev->pipeline->irb_custom_1q(req.gate, qubit, sched).gate_error;
        if (gate_error <= options_.revalidate_gate_error_bound) {
            entry->state = EntryState::kFresh;
            entry->validated = snapshot_params(dev->exact, qubit, two_qubit);
            store_.put(*entry);
            obs::count(obs::Cnt::kSvcCacheRevalidate);
            {
                std::lock_guard<std::mutex> lk(stats_mu_);
                ++stats_.revalidations;
            }
            return {ResponseStatus::kRevalidated, key, std::move(*entry)};
        }
    }

    obs::count(obs::Cnt::kSvcCacheMiss);
    {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.misses;
    }

    std::shared_ptr<Inflight> inf;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lk(q_mu_);
        const auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            inf = it->second;  // coalesce: share the in-flight design
        } else if (queued_or_running_ >= options_.queue_bound) {
            obs::count(obs::Cnt::kSvcQueueShed);
            {
                std::lock_guard<std::mutex> slk(stats_mu_);
                ++stats_.shed;
            }
            return {ResponseStatus::kShed, key, {}};
        } else {
            inf = std::make_shared<Inflight>();
            inflight_.emplace(key, inf);
            ++queued_or_running_;
            obs::count(obs::Cnt::kSvcAdmitted);
            lanes_[req.priority == 0 ? 0 : 1].push_back(
                DesignJob{dev, req, key, design_count, inf});
            leader = true;
        }
    }
    if (leader) {
        runtime::TaskPool::global().submit([this] { run_one_job(); });
    }
    wait_inflight(*inf);

    std::lock_guard<std::mutex> lk(inf->mu);
    if (inf->error) std::rethrow_exception(inf->error);
    if (entry) {
        redesigned = true;
        std::lock_guard<std::mutex> slk(stats_mu_);
        ++stats_.redesigns;
    }
    return {ResponseStatus::kDesigned, key, inf->result};
}

ServiceStats CalibrationService::stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
}

std::size_t CalibrationService::queue_depth() const {
    std::lock_guard<std::mutex> lk(q_mu_);
    return lanes_[0].size() + lanes_[1].size();
}

std::size_t CalibrationService::inflight_designs() const {
    std::lock_guard<std::mutex> lk(q_mu_);
    return inflight_.size();
}

}  // namespace qoc::service
