/// \file pulse_store.hpp
/// \brief Content-addressed store of designed pulses.
///
/// The cache key is an FNV-1a digest (`qoc::util::fnv1a`) of everything the
/// design is a deterministic function of:
///
///   * the QUANTIZED design-model snapshot of the device (frequency,
///     anharmonicity, Rabi rate, T1/T2 in log buckets, levels, dt, and the
///     CR parameters for two-qubit keys),
///   * the gate name and qubit(s),
///   * the pulse duration,
///   * the seed policy (the ordered optimizer-seed list), and
///   * the optimizer configuration (timeslots, bounds, penalties, model...).
///
/// Quantization is the load-bearing idea: the buckets are chosen COARSER
/// than typical daily drift, so a drifting device keeps hashing to the same
/// key and repeated traffic stays hit-dominated.  Designs are always run
/// against the BUCKET-CANONICAL snapshot (`quantize_design_model`), never
/// the exact one -- that makes the designed pulse a pure function of the
/// key, which is what lets concurrent identical misses coalesce onto one
/// design future and lets a replayed request log reproduce every response
/// bitwise at any pool width.  Drift WITHIN a bucket is handled by the
/// service's invalidation state machine (fresh -> suspect -> revalidate),
/// not by the key.
///
/// The store itself is a sharded hash map (per-shard mutex; the digest picks
/// the shard) with JSONL persistence through `qoc::io`: doubles are written
/// as IEEE-754 bit patterns, so a warm restart serves bitwise-identical
/// pulses.

#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/backend_config.hpp"
#include "pulse/schedule.hpp"

namespace qoc::service {

/// Bucket widths for the design-relevant snapshot parameters.  Defaults are
/// a few times the typical daily excursion of each parameter under
/// `device::DriftOptions`, so day-to-day drift almost never crosses a
/// bucket edge (cache hit) while genuinely different devices never share
/// one (montreal and toronto land ~300 frequency buckets apart).
struct KeyQuant {
    double freq_ghz_grid = 1e-2;   ///< qubit frequency, GHz
    double anharm_grid = 1e-2;     ///< anharmonicity, rad/ns
    double omega_grid = 1e-2;      ///< Rabi rate at unit amplitude, rad/ns
    double t1_log_grid = 0.5;      ///< ln(T1/ns) buckets (~65% relative)
    double t2_log_grid = 0.5;
    double cr_grid = 5e-3;         ///< CR rates (zx/ix/zz/crosstalk), rad/ns
};

/// The bucket-canonical design model: `nominal_model(device)` with every
/// quantized parameter snapped to its bucket CENTER.  Two devices whose
/// parameters fall in the same buckets map to the identical config -- the
/// determinism anchor described in the file comment.
device::BackendConfig quantize_design_model(const device::BackendConfig& device,
                                            const KeyQuant& quant);

/// Digest of the quantized design model restricted to what a design for
/// `qubit` (or the {0,1} pair when `two_qubit`) can depend on.
std::uint64_t device_key_digest(const device::BackendConfig& device, const KeyQuant& quant,
                                std::size_t qubit, bool two_qubit);

/// Flattens the exact (unquantized) per-qubit parameters of a snapshot into
/// bit patterns -- the entry's `validated` record that drift distances are
/// measured against, and the form `io::PulseStoreRecord` persists.
std::vector<std::uint64_t> flatten_params(const device::BackendConfig& device);

/// Invalidation state of an entry (see CalibrationService for the machine).
enum class EntryState : std::uint8_t {
    kFresh = 0,    ///< serveable as-is
    kSuspect = 1,  ///< drift past tolerance since last validation: IRB first
};

/// One designed pulse, content-addressed by `key`.
struct StoredPulse {
    std::uint64_t key = 0;
    std::string gate;                ///< "x", "y", "sx", "h" or "cx"
    std::size_t qubit = 0;           ///< 0 for cx (the {0,1} pair)
    std::size_t duration_dt = 0;
    double model_fid_err = 1.0;      ///< infidelity on the design model
    EntryState state = EntryState::kFresh;
    std::uint64_t design_count = 0;  ///< times this key was (re)designed
    /// Per-channel waveform samples of the designed schedule.
    struct ChannelSamples {
        pulse::Channel channel;
        std::vector<std::complex<double>> samples;
    };
    std::vector<ChannelSamples> channels;
    /// Exact per-qubit params the entry was last validated against
    /// (`flatten_params` of the snapshot at design/revalidation time).
    std::vector<std::uint64_t> validated;
};

/// Rebuilds the playable schedule (one Play per stored channel).
pulse::Schedule stored_pulse_schedule(const StoredPulse& p);

/// Sharded content-addressed map.  All operations are safe to call
/// concurrently; `lookup` copies the entry out so no reference outlives the
/// shard lock.
class PulseStore {
public:
    static constexpr std::size_t kShards = 16;

    std::optional<StoredPulse> lookup(std::uint64_t key) const;

    /// Inserts or replaces the entry for `p.key`.
    void put(StoredPulse p);

    /// Sets the state of `key` if present; returns whether it was.
    bool set_state(std::uint64_t key, EntryState state);

    /// Demotes every FRESH entry matching `pred` to suspect; returns how
    /// many were demoted.  `pred` runs under the shard lock -- keep it cheap.
    std::size_t demote_if(const std::function<bool(const StoredPulse&)>& pred);

    /// Visits every entry (shard by shard, under each shard's lock).
    void for_each(const std::function<void(const StoredPulse&)>& fn) const;

    std::size_t size() const;
    void clear();

    /// Instantaneous occupancy, sampled shard by shard (each under its own
    /// lock, so the totals are only approximately a point-in-time view).
    /// Telemetry seam: the service's Snapshotter publishes these as gauges.
    struct Occupancy {
        std::array<std::size_t, kShards> shard_sizes{};
        std::size_t total = 0;
        std::size_t fresh = 0;
        std::size_t suspect = 0;
    };
    Occupancy occupancy() const;

    /// JSONL persistence (bitwise round trip; see the file comment).
    /// `save_jsonl` writes entries sorted by key so the file is
    /// content-deterministic; `load_jsonl` merges records into the store
    /// (existing keys are replaced) and returns how many were loaded.
    void save_jsonl(const std::string& path) const;
    std::size_t load_jsonl(const std::string& path);

private:
    struct alignas(64) Shard {
        mutable std::mutex mu;
        std::unordered_map<std::uint64_t, StoredPulse> map;
    };

    Shard& shard_for(std::uint64_t key) { return shards_[key % kShards]; }
    const Shard& shard_for(std::uint64_t key) const { return shards_[key % kShards]; }

    std::array<Shard, kShards> shards_;
};

}  // namespace qoc::service
