#include "service/pulse_store.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "io/io.hpp"
#include "util/fnv1a.hpp"

namespace qoc::service {

namespace {

/// Bucket index of a linear-grid parameter (round-to-nearest; exact ties
/// resolve identically on every platform via llround's round-half-away).
std::int64_t bucket(double v, double grid) { return std::llround(v / grid); }

/// Bucket index on a log grid (relative-width buckets for T1/T2).
std::int64_t log_bucket(double v, double grid) { return std::llround(std::log(v) / grid); }

}  // namespace

device::BackendConfig quantize_design_model(const device::BackendConfig& device,
                                            const KeyQuant& quant) {
    device::BackendConfig canon = device::nominal_model(device);
    for (auto& q : canon.qubits) {
        q.frequency_ghz =
            static_cast<double>(bucket(q.frequency_ghz, quant.freq_ghz_grid)) * quant.freq_ghz_grid;
        q.anharmonicity =
            static_cast<double>(bucket(q.anharmonicity, quant.anharm_grid)) * quant.anharm_grid;
        q.omega_max = static_cast<double>(bucket(q.omega_max, quant.omega_grid)) * quant.omega_grid;
        q.t1 = std::exp(static_cast<double>(log_bucket(q.t1, quant.t1_log_grid)) *
                        quant.t1_log_grid);
        q.t2 = std::exp(static_cast<double>(log_bucket(q.t2, quant.t2_log_grid)) *
                        quant.t2_log_grid);
        // T2 <= 2 T1 must survive independent rounding of the two buckets.
        q.t2 = std::min(q.t2, 2.0 * q.t1);
        // Readout is design-irrelevant (the optimizer never models it) but
        // lives in the canonical config: snap it so the config stays a pure
        // function of the buckets.
        q.readout_p10 = static_cast<double>(bucket(q.readout_p10, 5e-3)) * 5e-3;
        q.readout_p01 = static_cast<double>(bucket(q.readout_p01, 5e-3)) * 5e-3;
    }
    canon.cr.zx_rate = static_cast<double>(bucket(canon.cr.zx_rate, quant.cr_grid)) * quant.cr_grid;
    canon.cr.ix_rate = static_cast<double>(bucket(canon.cr.ix_rate, quant.cr_grid)) * quant.cr_grid;
    canon.cr.zz_static =
        static_cast<double>(bucket(canon.cr.zz_static, quant.cr_grid)) * quant.cr_grid;
    canon.cr.classical_crosstalk =
        static_cast<double>(bucket(canon.cr.classical_crosstalk, quant.cr_grid)) * quant.cr_grid;
    return canon;
}

std::uint64_t device_key_digest(const device::BackendConfig& device, const KeyQuant& quant,
                                std::size_t qubit, bool two_qubit) {
    const device::BackendConfig nominal = device::nominal_model(device);
    util::Fnv1a h;
    h.f64_bits(nominal.dt);
    h.u64(nominal.levels);
    const auto mix_qubit = [&](const device::QubitParams& q) {
        h.i64(bucket(q.frequency_ghz, quant.freq_ghz_grid));
        h.i64(bucket(q.anharmonicity, quant.anharm_grid));
        h.i64(bucket(q.omega_max, quant.omega_grid));
        h.i64(log_bucket(q.t1, quant.t1_log_grid));
        h.i64(log_bucket(q.t2, quant.t2_log_grid));
    };
    if (two_qubit) {
        h.bytes("2q");
        mix_qubit(nominal.qubit(0));
        mix_qubit(nominal.qubit(1));
        h.i64(bucket(nominal.cr.zx_rate, quant.cr_grid));
        h.i64(bucket(nominal.cr.ix_rate, quant.cr_grid));
        h.i64(bucket(nominal.cr.zz_static, quant.cr_grid));
        h.i64(bucket(nominal.cr.classical_crosstalk, quant.cr_grid));
    } else {
        h.bytes("1q");
        h.u64(qubit);
        mix_qubit(nominal.qubit(qubit));
    }
    return h.digest();
}

std::vector<std::uint64_t> flatten_params(const device::BackendConfig& device) {
    std::vector<std::uint64_t> out;
    out.reserve(device.qubits.size() * 10);
    for (const auto& q : device.qubits) {
        for (const double v : {q.frequency_ghz, q.anharmonicity, q.t1, q.t2, q.omega_max,
                               q.detuning, q.amp_scale, q.drive_amp_noise, q.readout_p10,
                               q.readout_p01}) {
            out.push_back(std::bit_cast<std::uint64_t>(v));
        }
    }
    return out;
}

pulse::Schedule stored_pulse_schedule(const StoredPulse& p) {
    pulse::Schedule sched(p.gate + "_cached");
    for (const auto& ch : p.channels) {
        if (ch.samples.empty()) continue;
        sched.insert(0, pulse::Play{pulse::Waveform(ch.samples, p.gate + "_cached"), ch.channel});
    }
    return sched;
}

std::optional<StoredPulse> PulseStore::lookup(std::uint64_t key) const {
    const Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lk(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
}

void PulseStore::put(StoredPulse p) {
    Shard& s = shard_for(p.key);
    std::lock_guard<std::mutex> lk(s.mu);
    s.map.insert_or_assign(p.key, std::move(p));
}

bool PulseStore::set_state(std::uint64_t key, EntryState state) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lk(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    it->second.state = state;
    return true;
}

std::size_t PulseStore::demote_if(const std::function<bool(const StoredPulse&)>& pred) {
    std::size_t demoted = 0;
    for (Shard& s : shards_) {
        std::lock_guard<std::mutex> lk(s.mu);
        for (auto& [key, entry] : s.map) {
            if (entry.state == EntryState::kFresh && pred(entry)) {
                entry.state = EntryState::kSuspect;
                ++demoted;
            }
        }
    }
    return demoted;
}

void PulseStore::for_each(const std::function<void(const StoredPulse&)>& fn) const {
    for (const Shard& s : shards_) {
        std::lock_guard<std::mutex> lk(s.mu);
        for (const auto& [key, entry] : s.map) fn(entry);
    }
}

std::size_t PulseStore::size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
        std::lock_guard<std::mutex> lk(s.mu);
        n += s.map.size();
    }
    return n;
}

void PulseStore::clear() {
    for (Shard& s : shards_) {
        std::lock_guard<std::mutex> lk(s.mu);
        s.map.clear();
    }
}

PulseStore::Occupancy PulseStore::occupancy() const {
    Occupancy occ;
    for (std::size_t i = 0; i < kShards; ++i) {
        const Shard& s = shards_[i];
        std::lock_guard<std::mutex> lk(s.mu);
        occ.shard_sizes[i] = s.map.size();
        occ.total += s.map.size();
        for (const auto& [key, entry] : s.map) {
            if (entry.state == EntryState::kFresh) {
                ++occ.fresh;
            } else {
                ++occ.suspect;
            }
        }
    }
    return occ;
}

namespace {

io::PulseStoreRecord to_record(const StoredPulse& p) {
    io::PulseStoreRecord r;
    r.key = p.key;
    r.gate = p.gate;
    r.qubit = p.qubit;
    r.duration_dt = p.duration_dt;
    r.fid_bits = std::bit_cast<std::uint64_t>(p.model_fid_err);
    r.state = static_cast<std::uint64_t>(p.state);
    r.design_count = p.design_count;
    r.validated_bits = p.validated;
    for (const auto& ch : p.channels) {
        io::PulseStoreRecord::Channel rc;
        rc.type = static_cast<std::uint64_t>(ch.channel.type);
        rc.index = ch.channel.index;
        rc.re_bits.reserve(ch.samples.size());
        rc.im_bits.reserve(ch.samples.size());
        for (const auto& v : ch.samples) {
            rc.re_bits.push_back(std::bit_cast<std::uint64_t>(v.real()));
            rc.im_bits.push_back(std::bit_cast<std::uint64_t>(v.imag()));
        }
        r.channels.push_back(std::move(rc));
    }
    return r;
}

StoredPulse from_record(const io::PulseStoreRecord& r) {
    StoredPulse p;
    p.key = r.key;
    p.gate = r.gate;
    p.qubit = r.qubit;
    p.duration_dt = r.duration_dt;
    p.model_fid_err = std::bit_cast<double>(r.fid_bits);
    p.state = r.state == 0 ? EntryState::kFresh : EntryState::kSuspect;
    p.design_count = r.design_count;
    p.validated = r.validated_bits;
    for (const auto& rc : r.channels) {
        StoredPulse::ChannelSamples ch;
        ch.channel.type = static_cast<pulse::ChannelType>(rc.type);
        ch.channel.index = rc.index;
        ch.samples.reserve(rc.re_bits.size());
        for (std::size_t i = 0; i < rc.re_bits.size(); ++i) {
            ch.samples.emplace_back(std::bit_cast<double>(rc.re_bits[i]),
                                    std::bit_cast<double>(rc.im_bits[i]));
        }
        p.channels.push_back(std::move(ch));
    }
    return p;
}

}  // namespace

void PulseStore::save_jsonl(const std::string& path) const {
    std::vector<io::PulseStoreRecord> records;
    for_each([&](const StoredPulse& p) { records.push_back(to_record(p)); });
    std::sort(records.begin(), records.end(),
              [](const io::PulseStoreRecord& a, const io::PulseStoreRecord& b) {
                  return a.key < b.key;
              });
    std::ofstream os(path);
    if (!os) throw std::runtime_error("PulseStore::save_jsonl: cannot open " + path);
    io::write_pulse_store_jsonl(os, records);
}

std::size_t PulseStore::load_jsonl(const std::string& path) {
    std::ifstream is(path);
    if (!is) return 0;  // warm-start is best-effort: no file means a cold cache
    const auto records = io::read_pulse_store_jsonl(is);
    for (const auto& r : records) put(from_record(r));
    return records.size();
}

}  // namespace qoc::service
