/// \file task_pool.hpp
/// \brief `qoc::runtime` -- the shared task-pool runtime.
///
/// One process-wide work-stealing pool replaces the per-call
/// `#pragma omp parallel for` regions that used to live in GRAPE, the RB
/// engines and the Clifford precompute.  The pieces:
///
///  * `TaskPool`: N-way pool (N includes the submitting thread; N == 1 means
///    no worker threads at all and every primitive degenerates to inline
///    serial execution).  Workers keep per-worker deques and steal from each
///    other; external submitters feed a shared injection queue.
///  * `Future<T>` / `TaskGroup`: blocking waits HELP -- they run queued
///    tasks while waiting, so tasks may submit and wait on subtasks from
///    inside the pool (any pool size) without deadlock.
///  * `parallel_for`: index fan-out with dynamic (chunk-of-1) claiming, the
///    scheduling the migrated OpenMP loops used.  Determinism contract:
///    bodies write only per-index state; reductions happen serially after
///    the loop (see ordered.hpp), so results are bitwise identical for any
///    pool size.
///  * obs integration: the submitting thread's current `qoc::obs` span id is
///    captured at submit time and installed in the executing worker, so
///    trace parent links survive task boundaries.
///
/// Pool size resolution for `TaskPool::global()`: `QOC_THREADS` env var,
/// else OpenMP's `omp_get_max_threads()` (honoring `OMP_NUM_THREADS`, the
/// knob the pre-runtime engines obeyed), else `hardware_concurrency`.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>

namespace qoc::runtime {

class TaskPool;

namespace detail {

/// Move-only type-erased callable, plus the obs context of the submitter:
/// span id and request id (so spans opened inside the task reparent to the
/// submitting span and stay joined to the request that fanned the work out)
/// and -- only while metrics are enabled -- the submit timestamp, recorded
/// as pool.task.queue_wait at execution start.
class Task {
public:
    Task() = default;
    template <class F>
    explicit Task(F&& f)
        : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

    explicit operator bool() const noexcept { return impl_ != nullptr; }
    void operator()() { impl_->call(); }

    std::uint64_t parent_span = 0;
    std::uint64_t parent_request = 0;
    std::uint64_t submit_t_ns = 0;  ///< 0 = metrics were off at submit

private:
    struct Concept {
        virtual ~Concept() = default;
        virtual void call() = 0;
    };
    template <class F>
    struct Model final : Concept {
        explicit Model(F&& f) : fn(std::move(f)) {}
        explicit Model(const F& f) : fn(f) {}
        void call() override { fn(); }
        F fn;
    };
    std::unique_ptr<Concept> impl_;
};

/// Completion cell shared between a submitted task and its Future.
template <class T>
struct SharedState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
    std::optional<T> value;
};

template <>
struct SharedState<void> {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
};

/// Outstanding-task accounting for a TaskGroup.
struct GroupState {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;
    std::exception_ptr error;  ///< first task exception, rethrown by wait()
};

/// Parses a `QOC_THREADS`-style value; 0 = unset/invalid (use fallback).
std::size_t parse_thread_count(const char* text) noexcept;

}  // namespace detail

/// Handle to a submitted task's result.  `get()` HELPS: while the result is
/// pending it runs other queued tasks of the owning pool, so waiting never
/// deadlocks -- not even with pool size 1, where the submitting thread is
/// the only executor there is.
template <class T>
class Future {
public:
    Future() = default;

    bool valid() const noexcept { return st_ != nullptr; }

    /// Blocks (helping) until the task completes; returns its result or
    /// rethrows its exception.  One-shot: the Future is empty afterwards.
    T get();

private:
    friend class TaskPool;
    Future(std::shared_ptr<detail::SharedState<T>> st, TaskPool* pool)
        : st_(std::move(st)), pool_(pool) {}

    std::shared_ptr<detail::SharedState<T>> st_;
    TaskPool* pool_ = nullptr;
};

/// Work-stealing task pool.  See the file comment for the model.
class TaskPool {
public:
    /// `concurrency` counts the submitting thread: `TaskPool(4)` spawns 3
    /// workers, `TaskPool(1)` spawns none (pure inline execution).
    explicit TaskPool(std::size_t concurrency);

    /// Joins the workers.  Tasks still queued are dropped, so quiesce
    /// (wait on every Future/TaskGroup) before destroying a pool.
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    /// Worker count + 1 (the OpenMP `omp_get_max_threads()` analogue).
    std::size_t size() const noexcept { return n_workers_ + 1; }

    /// The process-wide pool (created on first use; see the file comment
    /// for how its size is resolved).
    static TaskPool& global();

    /// Size `global()` would be created with right now.
    static std::size_t default_pool_size();

    /// Replaces the global pool (tests / benchmarks).  The old pool must be
    /// quiescent; references obtained from `global()` before this call
    /// dangle after it.
    static void set_global_pool_size(std::size_t concurrency);

    /// Submits `f` for execution and returns a helping Future.
    template <class F>
    auto submit(F&& f) -> Future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto st = std::make_shared<detail::SharedState<R>>();
        detail::Task task([st, fn = std::forward<F>(f)]() mutable {
            try {
                if constexpr (std::is_void_v<R>) {
                    fn();
                } else {
                    st->value.emplace(fn());
                }
            } catch (...) {
                st->error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lk(st->mu);
                st->done = true;
            }
            st->cv.notify_all();
        });
        submit_raw(std::move(task));
        return Future<R>(std::move(st), this);
    }

    /// Runs `body(i)` for every i in [begin, end).  Indices are claimed
    /// dynamically in chunks of 1 (the `schedule(dynamic)` the migrated
    /// loops used); the calling thread participates.  With pool size 1 or a
    /// single index the loop runs inline -- no task objects, no atomics, no
    /// heap traffic -- preserving the alloc-guard budgets of the serial
    /// engines.  The first body exception is rethrown after all indices ran.
    template <class Body>
    void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
        if (end <= begin) return;
        if (size() == 1 || end - begin == 1) {
            // Same no-cancellation semantics as the parallel path: every
            // index runs; the first exception is rethrown afterwards.
            std::exception_ptr error;
            for (std::size_t i = begin; i < end; ++i) {
                try {
                    body(i);
                } catch (...) {
                    if (!error) error = std::current_exception();
                }
            }
            if (error) std::rethrow_exception(error);
            return;
        }
        using B = std::remove_reference_t<Body>;
        parallel_for_impl(begin, end,
                          [](void* ctx, std::size_t i) { (*static_cast<B*>(ctx))(i); },
                          std::addressof(body));
    }

    /// Runs one queued task of this pool on the calling thread, if any.
    /// Exposed so blocking waits can help; normal code never needs it.
    bool try_run_one();

private:
    template <class T>
    friend class Future;
    friend class TaskGroup;

    struct Impl;

    void submit_raw(detail::Task&& task);
    void parallel_for_impl(std::size_t begin, std::size_t end,
                           void (*fn)(void*, std::size_t), void* ctx);

    std::size_t n_workers_ = 0;
    std::unique_ptr<Impl> impl_;
};

/// Structured fork-join: `run()` submits, `wait()` (and the destructor)
/// blocks -- helping -- until every task of the group finished.  `wait()`
/// rethrows the first task exception.
class TaskGroup {
public:
    explicit TaskGroup(TaskPool& pool = TaskPool::global())
        : pool_(pool), st_(std::make_shared<detail::GroupState>()) {}

    /// Waits for stragglers; exceptions not collected by a prior `wait()`
    /// are swallowed here (destructors must not throw).
    ~TaskGroup() {
        try {
            wait();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
    }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    template <class F>
    void run(F&& f) {
        {
            std::lock_guard<std::mutex> lk(st_->mu);
            ++st_->pending;
        }
        auto st = st_;
        pool_.submit_raw(detail::Task([st, fn = std::forward<F>(f)]() mutable {
            try {
                fn();
            } catch (...) {
                std::lock_guard<std::mutex> lk(st->mu);
                if (!st->error) st->error = std::current_exception();
            }
            bool last = false;
            {
                std::lock_guard<std::mutex> lk(st->mu);
                last = (--st->pending == 0);
            }
            if (last) st->cv.notify_all();
        }));
    }

    void wait();

private:
    TaskPool& pool_;
    std::shared_ptr<detail::GroupState> st_;
};

/// Pins `TaskPool::global()` to `concurrency` for a scope (tests and the
/// 1-vs-N determinism suites), restoring the previous size on exit.
class ScopedPoolSize {
public:
    explicit ScopedPoolSize(std::size_t concurrency)
        : prev_(TaskPool::global().size()) {
        TaskPool::set_global_pool_size(concurrency);
    }
    ~ScopedPoolSize() { TaskPool::set_global_pool_size(prev_); }
    ScopedPoolSize(const ScopedPoolSize&) = delete;
    ScopedPoolSize& operator=(const ScopedPoolSize&) = delete;

private:
    std::size_t prev_;
};

template <class T>
T Future<T>::get() {
    auto st = std::move(st_);
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(st->mu);
            if (st->done) break;
        }
        if (pool_ == nullptr || !pool_->try_run_one()) {
            std::unique_lock<std::mutex> lk(st->mu);
            // Re-check under the lock: the task may have completed between
            // the failed help attempt and this wait.
            st->cv.wait(lk, [&] { return st->done; });
            break;
        }
    }
    if (st->error) std::rethrow_exception(st->error);
    if constexpr (!std::is_void_v<T>) {
        return std::move(*st->value);
    }
}

}  // namespace qoc::runtime
