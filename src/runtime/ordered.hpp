/// \file ordered.hpp
/// \brief Deterministic ordered reductions for task-pool fan-outs.
///
/// The runtime's bitwise 1-vs-N determinism strategy: parallel bodies write
/// only disjoint per-index slots; the reduction then runs serially, in
/// index order, on the calling thread.  Floating-point addition is not
/// associative, so this fixed fold order -- not atomics, not tree reduces
/// -- is what makes results independent of the pool size.

#pragma once

#include <cstddef>
#include <vector>

namespace qoc::runtime {

/// Left fold in index order: slots[0] + slots[1] + ... (value-initialized
/// accumulator).  Bitwise reproducible for any pool size.
template <class T>
T ordered_sum(const std::vector<T>& slots) {
    T acc{};
    for (const T& v : slots) acc += v;
    return acc;
}

/// Ordered-sum mean (0 for empty input).
inline double ordered_mean(const std::vector<double>& slots) {
    if (slots.empty()) return 0.0;
    return ordered_sum(slots) / static_cast<double>(slots.size());
}

}  // namespace qoc::runtime
