/// \file workspace_pool.hpp
/// \brief Shared workspace arena for parallel stages.
///
/// Replaces the three per-module copies of the "vector of per-OpenMP-thread
/// scratch structs indexed by omp_get_thread_num()" pattern (GRAPE, RB,
/// leakage RB).  A task-pool body acquires a RAII lease instead: the pool
/// hands back the most recently released workspace (LIFO, cache-warm) or
/// creates a new one, so at most `concurrent users` workspaces ever exist
/// and the steady state performs ZERO heap allocations -- acquire is a
/// vector pop, release a push within reserved capacity (pinned by the
/// tests/analysis alloc-guard).
///
/// Determinism note: unlike the omp-thread-indexed arrays, which workspace
/// a body gets is scheduling-dependent -- workspaces must therefore hold
/// only shape-reused scratch (matrices sized on first use), never values
/// carried between indices.  That was already the contract of all three
/// migrated pools.

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace qoc::runtime {

template <class T>
class WorkspacePool {
public:
    WorkspacePool() = default;
    WorkspacePool(const WorkspacePool&) = delete;
    WorkspacePool& operator=(const WorkspacePool&) = delete;

    /// Exclusive RAII handle to one workspace; returns it on destruction.
    class Lease {
    public:
        Lease(Lease&& other) noexcept
            : pool_(std::exchange(other.pool_, nullptr)),
              ws_(std::exchange(other.ws_, nullptr)) {}
        Lease& operator=(Lease&& other) noexcept {
            if (this != &other) {
                release();
                pool_ = std::exchange(other.pool_, nullptr);
                ws_ = std::exchange(other.ws_, nullptr);
            }
            return *this;
        }
        ~Lease() { release(); }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;

        T& operator*() const noexcept { return *ws_; }
        T* operator->() const noexcept { return ws_; }

    private:
        friend class WorkspacePool;
        Lease(WorkspacePool* pool, T* ws) noexcept : pool_(pool), ws_(ws) {}
        void release() noexcept {
            if (pool_ != nullptr) pool_->put_back(ws_);
            pool_ = nullptr;
            ws_ = nullptr;
        }
        WorkspacePool* pool_ = nullptr;
        T* ws_ = nullptr;
    };

    /// Most recently released workspace, or a fresh default-constructed one.
    Lease acquire() {
        std::lock_guard<std::mutex> lk(mu_);
        if (!free_.empty()) {
            T* ws = free_.back();
            free_.pop_back();
            return Lease(this, ws);
        }
        all_.push_back(std::make_unique<T>());
        free_.reserve(all_.size());  // keeps every future release push-back alloc-free
        return Lease(this, all_.back().get());
    }

    /// Workspaces created so far == the high-water mark of concurrent users.
    std::size_t created() const {
        std::lock_guard<std::mutex> lk(mu_);
        return all_.size();
    }

private:
    void put_back(T* ws) noexcept {
        std::lock_guard<std::mutex> lk(mu_);
        free_.push_back(ws);
    }

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<T>> all_;
    std::vector<T*> free_;
};

}  // namespace qoc::runtime
