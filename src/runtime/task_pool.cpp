#include "runtime/task_pool.hpp"

#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

#ifdef QOC_HAVE_OPENMP
#include <omp.h>
#endif

namespace qoc::runtime {

namespace detail {

std::size_t parse_thread_count(const char* text) noexcept {
    if (text == nullptr || *text == '\0') return 0;
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1) return 0;
    return static_cast<std::size_t>(v);
}

}  // namespace detail

namespace {

/// Identifies the pool/worker the current thread belongs to, so submits
/// from inside a task land on the worker's own deque and helping waits pop
/// it first (LIFO: keeps nested fan-outs cache-hot and deadlock-free).
struct WorkerTag {
    void* impl = nullptr;  ///< the owning TaskPool::Impl
    std::size_t wid = 0;
};
thread_local WorkerTag t_worker;

}  // namespace

struct TaskPool::Impl {
    struct Queue {
        std::mutex mu;
        std::deque<detail::Task> tasks;
    };

    explicit Impl(std::size_t n_workers) : worker_queues(n_workers) {}

    /// One deque per worker plus an injection queue for external submitters.
    std::vector<Queue> worker_queues;
    Queue external;

    /// Sleep/wake machinery: `wake_epoch` bumps on every enqueue, so a
    /// worker that snapshots the epoch, re-scans the queues and then waits
    /// for a newer epoch can never miss a task (no lost wakeups).
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t wake_epoch = 0;
    bool stop = false;

    std::vector<std::thread> workers;

    void notify_enqueue() {
        {
            std::lock_guard<std::mutex> lk(mu);
            ++wake_epoch;
        }
        cv.notify_all();
    }

    static bool pop_back(Queue& q, detail::Task& out) {
        std::lock_guard<std::mutex> lk(q.mu);
        if (q.tasks.empty()) return false;
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
        return true;
    }

    static bool pop_front(Queue& q, detail::Task& out) {
        std::lock_guard<std::mutex> lk(q.mu);
        if (q.tasks.empty()) return false;
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        return true;
    }

    /// Own deque (LIFO) -> injection queue (FIFO) -> steal (FIFO).
    /// `self` is the calling worker's index, or SIZE_MAX for non-workers.
    bool take(std::size_t self, detail::Task& out) {
        if (self != SIZE_MAX && pop_back(worker_queues[self], out)) return true;
        if (pop_front(external, out)) return true;
        for (std::size_t i = 0; i < worker_queues.size(); ++i) {
            if (i == self) continue;
            if (pop_front(worker_queues[i], out)) return true;
        }
        return false;
    }

    static void run(detail::Task& task) {
        // Reparent obs spans opened inside the task to the submitter's span
        // (and inherit its request id), so traces show the logical task
        // graph, not the worker timeline.
        obs::TaskParentScope parent(task.parent_span, task.parent_request);
        if (task.submit_t_ns != 0) {
            obs::hist_record(obs::Hist::kPoolQueueWait, obs::now_ns() - task.submit_t_ns);
        }
        task();
    }

    void worker_loop(std::size_t wid) {
        t_worker = WorkerTag{this, wid};
        detail::Task task;
        for (;;) {
            if (take(wid, task)) {
                run(task);
                task = detail::Task();
                continue;
            }
            std::unique_lock<std::mutex> lk(mu);
            const std::uint64_t epoch = wake_epoch;
            lk.unlock();
            if (take(wid, task)) {
                run(task);
                task = detail::Task();
                continue;
            }
            lk.lock();
            cv.wait(lk, [&] { return stop || wake_epoch != epoch; });
            if (stop) return;
        }
    }
};

TaskPool::TaskPool(std::size_t concurrency) {
    if (concurrency < 1) concurrency = 1;
    n_workers_ = concurrency - 1;
    impl_ = std::make_unique<Impl>(n_workers_);
    impl_->workers.reserve(n_workers_);
    for (std::size_t w = 0; w < n_workers_; ++w) {
        impl_->workers.emplace_back([impl = impl_.get(), w] { impl->worker_loop(w); });
    }
}

TaskPool::~TaskPool() {
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    for (std::thread& t : impl_->workers) t.join();
}

void TaskPool::submit_raw(detail::Task&& task) {
    task.parent_span = obs::current_span();
    task.parent_request = obs::current_request();
    if (obs::metrics_enabled()) task.submit_t_ns = obs::now_ns();
    Impl::Queue* q = &impl_->external;
    if (t_worker.impl == impl_.get()) q = &impl_->worker_queues[t_worker.wid];
    {
        std::lock_guard<std::mutex> lk(q->mu);
        q->tasks.push_back(std::move(task));
    }
    impl_->notify_enqueue();
}

bool TaskPool::try_run_one() {
    const std::size_t self = (t_worker.impl == impl_.get()) ? t_worker.wid : SIZE_MAX;
    detail::Task task;
    if (!impl_->take(self, task)) return false;
    Impl::run(task);
    return true;
}

namespace {

struct ParForCtl {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t begin = 0;
    std::size_t n = 0;
    void (*fn)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::mutex err_mu;
    std::exception_ptr error;

    /// Claims indices until exhausted.  Every index runs exactly once (no
    /// cancellation: deterministic side effects regardless of failures);
    /// the first exception is kept for the caller to rethrow.
    void run_loop() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
                fn(ctx, begin + i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(err_mu);
                if (!error) error = std::current_exception();
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
                {
                    std::lock_guard<std::mutex> lk(mu);
                }
                cv.notify_all();
            }
        }
    }
};

}  // namespace

void TaskPool::parallel_for_impl(std::size_t begin, std::size_t end,
                                 void (*fn)(void*, std::size_t), void* ctx) {
    const std::size_t n = end - begin;
    auto ctl = std::make_shared<ParForCtl>();
    ctl->begin = begin;
    ctl->n = n;
    ctl->fn = fn;
    ctl->ctx = ctx;

    // Enough helper tasks to occupy every other execution slot; a helper
    // that runs after the loop drained simply claims nothing and returns.
    const std::size_t helpers = std::min(size() - 1, n - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
        submit_raw(detail::Task([ctl] { ctl->run_loop(); }));
    }

    ctl->run_loop();
    {
        std::unique_lock<std::mutex> lk(ctl->mu);
        ctl->cv.wait(lk, [&] { return ctl->done.load(std::memory_order_acquire) == n; });
    }
    if (ctl->error) std::rethrow_exception(ctl->error);
}

void TaskGroup::wait() {
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(st_->mu);
            if (st_->pending == 0) break;
        }
        if (!pool_.try_run_one()) {
            std::unique_lock<std::mutex> lk(st_->mu);
            st_->cv.wait(lk, [&] { return st_->pending == 0; });
            break;
        }
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(st_->mu);
        err = st_->error;
        st_->error = nullptr;
    }
    if (err) std::rethrow_exception(err);
}

namespace {

std::mutex g_global_mu;

std::unique_ptr<TaskPool>& global_slot() {
    static std::unique_ptr<TaskPool> pool;
    return pool;
}

}  // namespace

std::size_t TaskPool::default_pool_size() {
    if (const std::size_t n = detail::parse_thread_count(std::getenv("QOC_THREADS"))) {
        return n;
    }
#ifdef QOC_HAVE_OPENMP
    // The one OpenMP call site left in the tree: the pre-runtime engines
    // sized their workspace pools off omp_get_max_threads(), so honoring it
    // (and thus OMP_NUM_THREADS) keeps existing deployment knobs working.
    return static_cast<std::size_t>(omp_get_max_threads());
#else
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
#endif
}

TaskPool& TaskPool::global() {
    std::lock_guard<std::mutex> lk(g_global_mu);
    auto& slot = global_slot();
    if (!slot) slot = std::make_unique<TaskPool>(default_pool_size());
    return *slot;
}

void TaskPool::set_global_pool_size(std::size_t concurrency) {
    std::lock_guard<std::mutex> lk(g_global_mu);
    auto& slot = global_slot();
    slot.reset();  // join the old workers before the new pool spins up
    slot = std::make_unique<TaskPool>(concurrency);
}

}  // namespace qoc::runtime
