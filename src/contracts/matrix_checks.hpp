/// \file matrix_checks.hpp
/// \brief Matrix-valued contract checks: Hermiticity, unitarity, CPTP
///        structure, density-operator sanity.
///
/// Split from contracts.hpp so the core macro stays dependency-free; this
/// header pulls in `linalg`.  All helpers follow the contracts.hpp gating
/// rules: empty inline functions when `QOC_CONTRACTS_ENABLED` is not
/// defined, one relaxed load + branch when compiled in but disarmed.
///
/// Tolerances are *scaled absolute*: a check with tolerance `tol` accepts
/// residuals up to `tol * max(1, |A|_max)`, so Hamiltonians with entries of
/// order 2*pi*5 GHz and dimensionless gate targets are judged on equal
/// footing.

#pragma once

#include <algorithm>
#include <limits>
#include <string>

#include "contracts/contracts.hpp"
#include "linalg/eig_hermitian.hpp"
#include "linalg/kron.hpp"
#include "linalg/matrix.hpp"

namespace qoc::contracts {

#if defined(QOC_CONTRACTS_ENABLED)

namespace detail {

inline double scaled_tol(const linalg::Mat& m, double tol) {
    return tol * std::max(1.0, m.max_abs());
}

/// Max-abs of `A - A^dagger` without forming the adjoint.
inline double hermiticity_residual(const linalg::Mat& m) {
    double worst = 0.0;
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = i; j < m.cols(); ++j) {
            worst = std::max(worst, std::abs(m(i, j) - std::conj(m(j, i))));
        }
    }
    return worst;
}

/// Max-abs of `A^dagger A - I`.
inline double unitarity_residual(const linalg::Mat& m) {
    double worst = 0.0;
    for (std::size_t i = 0; i < m.cols(); ++i) {
        for (std::size_t j = 0; j < m.cols(); ++j) {
            linalg::cplx acc{0.0, 0.0};
            for (std::size_t k = 0; k < m.rows(); ++k) acc += std::conj(m(k, i)) * m(k, j);
            if (i == j) acc -= 1.0;
            worst = std::max(worst, std::abs(acc));
        }
    }
    return worst;
}

/// Max-abs of `vec(I)^T S - target_row` where `target_row` is `vec(I)^T`
/// (trace preservation, propagators) or `0` (trace annihilation,
/// generators).  `S` must be d^2 x d^2.
inline double trace_row_residual(const linalg::Mat& s, bool preserving) {
    const std::size_t n2 = s.rows();
    std::size_t d = 0;
    while (d * d < n2) ++d;
    if (d * d != n2) return std::numeric_limits<double>::infinity();
    double worst = 0.0;
    // vec(I) under column stacking has ones at indices i + d*i = i*(d+1).
    for (std::size_t col = 0; col < n2; ++col) {
        linalg::cplx acc{0.0, 0.0};
        for (std::size_t i = 0; i < d; ++i) acc += s(i * (d + 1), col);
        if (preserving && col % (d + 1) == 0) acc -= 1.0;
        worst = std::max(worst, std::abs(acc));
    }
    return worst;
}

/// Choi matrix of a superoperator under the column-stacking convention
/// `vec(A X B) = (B^T (x) A) vec(X)`:
/// `C[(i,r),(j,s)] = S[(r,s),(i,j)] = E(|i><j|)_{rs}` (unnormalized).
inline linalg::Mat choi_of_superop(const linalg::Mat& s) {
    const std::size_t n2 = s.rows();
    std::size_t d = 0;
    while (d * d < n2) ++d;
    linalg::Mat choi(n2, n2);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t r = 0; r < d; ++r) {
            for (std::size_t j = 0; j < d; ++j) {
                for (std::size_t sx = 0; sx < d; ++sx) {
                    choi(i * d + r, j * d + sx) = s(r + d * sx, i + d * j);
                }
            }
        }
    }
    return choi;
}

}  // namespace detail

/// `m` must be Hermitian within `tol * max(1, |m|_max)` -- Hamiltonians
/// entering propagators, density operators.
inline void check_hermitian(const linalg::Mat& m, const char* what, double tol = 1e-9) {
    if (!enabled()) return;
    QOC_CONTRACT(m.is_square(), std::string(what) + ": matrix is not square");
    const double resid = detail::hermiticity_residual(m);
    QOC_CONTRACT(resid <= detail::scaled_tol(m, tol),
                 std::string(what) + ": not Hermitian (|A - A^dag|_max = " +
                     std::to_string(resid) + ")");
}

/// `u` must be unitary within `tol` -- gate targets, Clifford elements,
/// closed-system propagators.
inline void check_unitary(const linalg::Mat& u, const char* what, double tol = 1e-9) {
    if (!enabled()) return;
    QOC_CONTRACT(u.is_square(), std::string(what) + ": matrix is not square");
    const double resid = detail::unitarity_residual(u);
    QOC_CONTRACT(resid <= tol, std::string(what) + ": not unitary (|U^dag U - I|_max = " +
                                   std::to_string(resid) + ")");
}

/// `psi` must be a normalized column vector within `tol`.
inline void check_normalized_ket(const linalg::Mat& psi, const char* what, double tol = 1e-9) {
    if (!enabled()) return;
    QOC_CONTRACT(psi.cols() == 1, std::string(what) + ": not a column vector");
    const double norm = psi.frobenius_norm();
    QOC_CONTRACT(std::abs(norm - 1.0) <= tol,
                 std::string(what) + ": ket norm " + std::to_string(norm) + " != 1");
}

/// Superoperator `s` must preserve trace: `vec(I)^T S = vec(I)^T` within
/// `tol * max(1, |S|_max)` -- Lindblad propagators, channel constructions.
inline void check_trace_preserving(const linalg::Mat& s, const char* what, double tol = 1e-9) {
    if (!enabled()) return;
    QOC_CONTRACT(s.is_square(), std::string(what) + ": superoperator is not square");
    const double resid = detail::trace_row_residual(s, /*preserving=*/true);
    QOC_CONTRACT(resid <= detail::scaled_tol(s, tol),
                 std::string(what) + ": not trace preserving (|vec(I)^T S - vec(I)^T|_max = " +
                     std::to_string(resid) + ")");
}

/// Generator `l` must annihilate the trace row: `vec(I)^T L = 0` within
/// `tol * max(1, |L|_max)` -- Liouvillians and dissipators (d/dt Tr rho = 0,
/// the differential form of Eq. 1's trace preservation).
inline void check_trace_annihilating(const linalg::Mat& l, const char* what, double tol = 1e-9) {
    if (!enabled()) return;
    QOC_CONTRACT(l.is_square(), std::string(what) + ": generator is not square");
    const double resid = detail::trace_row_residual(l, /*preserving=*/false);
    QOC_CONTRACT(resid <= detail::scaled_tol(l, tol),
                 std::string(what) + ": trace row not annihilated (|vec(I)^T L|_max = " +
                     std::to_string(resid) + ")");
}

/// Trace checks in ACTION form, for factored superoperators that never
/// materialize the d^2 x d^2 matrix.  For `S rho = sum_t A_t rho B_t` the
/// trace of the output is `tr(S(rho)) = tr(T rho)` with the d x d
/// trace-action matrix `T = sum_t B_t A_t`; the factored path computes T in
/// O(k d^3) and passes it here.  Trace preservation <=> T == I.
inline void check_trace_preserving_action(const linalg::Mat& t, const char* what,
                                          double tol = 1e-9) {
    if (!enabled()) return;
    QOC_CONTRACT(t.is_square(), std::string(what) + ": trace-action matrix is not square");
    double worst = 0.0;
    for (std::size_t i = 0; i < t.rows(); ++i) {
        for (std::size_t j = 0; j < t.cols(); ++j) {
            const linalg::cplx want = (i == j) ? linalg::cplx{1.0, 0.0} : linalg::cplx{0.0, 0.0};
            worst = std::max(worst, std::abs(t(i, j) - want));
        }
    }
    QOC_CONTRACT(worst <= detail::scaled_tol(t, tol),
                 std::string(what) + ": factored map not trace preserving (|T - I|_max = " +
                     std::to_string(worst) + ")");
}

/// Action form of `check_trace_annihilating`: the generator's trace-action
/// matrix `T = sum_t B_t A_t` must vanish (d/dt Tr rho = 0).
inline void check_trace_annihilating_action(const linalg::Mat& t, const char* what,
                                            double tol = 1e-9) {
    if (!enabled()) return;
    QOC_CONTRACT(t.is_square(), std::string(what) + ": trace-action matrix is not square");
    const double worst = t.max_abs();
    QOC_CONTRACT(worst <= tol,
                 std::string(what) + ": factored generator does not annihilate trace " +
                     "(|sum_t B_t A_t|_max = " + std::to_string(worst) + ")");
}

/// Superoperator `s` must be completely positive: its Choi matrix is
/// Hermitian with eigenvalues >= `-tol * max(1, |S|_max)`.  O(d^6): reserve
/// for channel constructors and test assertions, not propagation loops.
inline void check_completely_positive(const linalg::Mat& s, const char* what, double tol = 1e-7) {
    if (!enabled()) return;
    QOC_CONTRACT(s.is_square(), std::string(what) + ": superoperator is not square");
    const linalg::Mat choi = detail::choi_of_superop(s);
    const double herm = detail::hermiticity_residual(choi);
    QOC_CONTRACT(herm <= detail::scaled_tol(s, tol),
                 std::string(what) + ": Choi matrix not Hermitian (residual " +
                     std::to_string(herm) + "); map is not Hermiticity-preserving");
    const linalg::EigH eig = linalg::eig_hermitian(choi, detail::scaled_tol(s, tol));
    const double min_eig = eig.eigenvalues.empty() ? 0.0 : eig.eigenvalues.front();
    QOC_CONTRACT(min_eig >= -detail::scaled_tol(s, tol),
                 std::string(what) + ": Choi matrix has negative eigenvalue " +
                     std::to_string(min_eig) + "; map is not completely positive");
}

/// A vectorized density operator `vec_rho` (d^2 x 1 column) must unvec to a
/// Hermitian matrix of unit trace within `tol` -- the state propagated by
/// `apply_superop_into` chains in the RB engine.
inline void check_density_vec(const linalg::Mat& vec_rho, const char* what, double tol = 1e-6) {
    if (!enabled()) return;
    QOC_CONTRACT(vec_rho.cols() == 1, std::string(what) + ": not a column vector");
    const std::size_t n2 = vec_rho.rows();
    std::size_t d = 0;
    while (d * d < n2) ++d;
    QOC_CONTRACT(d * d == n2, std::string(what) + ": length is not a perfect square");
    // Trace: sum of diagonal entries vec[i*(d+1)].
    linalg::cplx tr{0.0, 0.0};
    for (std::size_t i = 0; i < d; ++i) tr += vec_rho(i * (d + 1), 0);
    QOC_CONTRACT(std::abs(tr - linalg::cplx{1.0, 0.0}) <= tol,
                 std::string(what) + ": trace " + std::to_string(tr.real()) + " + " +
                     std::to_string(tr.imag()) + "i drifted from 1");
    // Hermiticity of the unvec'd matrix: rho(i,j) = vec[i + d*j].
    double worst = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = i; j < d; ++j) {
            worst = std::max(worst,
                             std::abs(vec_rho(i + d * j, 0) - std::conj(vec_rho(j + d * i, 0))));
        }
    }
    QOC_CONTRACT(worst <= tol, std::string(what) + ": unvec'd state not Hermitian (residual " +
                                   std::to_string(worst) + ")");
}

/// Every entry of `m` must be finite -- propagators, gradient matrices.
inline void check_all_finite(const linalg::Mat& m, const char* what) {
    if (!enabled()) return;
    for (std::size_t i = 0; i < m.rows(); ++i) {
        for (std::size_t j = 0; j < m.cols(); ++j) {
            QOC_CONTRACT(std::isfinite(m(i, j).real()) && std::isfinite(m(i, j).imag()),
                         std::string(what) + ": non-finite entry at (" + std::to_string(i) +
                             ", " + std::to_string(j) + ")");
        }
    }
}

#else  // !QOC_CONTRACTS_ENABLED

inline void check_hermitian(const linalg::Mat&, const char*, double = 1e-9) {}
inline void check_unitary(const linalg::Mat&, const char*, double = 1e-9) {}
inline void check_normalized_ket(const linalg::Mat&, const char*, double = 1e-9) {}
inline void check_trace_preserving(const linalg::Mat&, const char*, double = 1e-9) {}
inline void check_trace_annihilating(const linalg::Mat&, const char*, double = 1e-9) {}
inline void check_trace_preserving_action(const linalg::Mat&, const char*, double = 1e-9) {}
inline void check_trace_annihilating_action(const linalg::Mat&, const char*, double = 1e-9) {}
inline void check_completely_positive(const linalg::Mat&, const char*, double = 1e-7) {}
inline void check_density_vec(const linalg::Mat&, const char*, double = 1e-6) {}
inline void check_all_finite(const linalg::Mat&, const char*) {}

#endif  // QOC_CONTRACTS_ENABLED

}  // namespace qoc::contracts
