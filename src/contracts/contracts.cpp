#include "contracts/contracts.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace qoc::contracts {

#if defined(QOC_CONTRACTS_ENABLED)

void set_enabled(bool on) noexcept {
    g_contracts_state.store(on ? 1u : 0u, std::memory_order_relaxed);
}

void fail(const char* file, int line, const char* expr, const std::string& detail) {
    std::ostringstream os;
    os << "QOC contract violation: " << detail << "\n  expression: " << expr << "\n  location:   "
       << file << ":" << line;
    throw ContractViolation(os.str());
}

namespace {

/// Startup override mirroring qoc::obs: contracts compile in armed, and
/// `QOC_CONTRACTS=0` (or `off`/`false`, case-insensitive) disarms them
/// without a rebuild.  Any other value (including unset) leaves them armed.
struct EnvInit {
    EnvInit() {
        const char* v = std::getenv("QOC_CONTRACTS");
        if (v == nullptr) return;
        std::string s(v);
        for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (s == "0" || s == "off" || s == "false") set_enabled(false);
    }
};
const EnvInit g_env_init;

}  // namespace

#endif  // QOC_CONTRACTS_ENABLED

}  // namespace qoc::contracts
