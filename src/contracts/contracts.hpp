/// \file contracts.hpp
/// \brief `qoc::contracts` -- debug-mode physical-invariant checks.
///
/// The numerics assume invariants the paper's results depend on: Hamiltonians
/// entering propagators are Hermitian, gate targets and Clifford elements are
/// unitary, Lindblad propagation (Eq. 1) is trace preserving and completely
/// positive, PWC amplitudes respect the hardware box bounds, and optimizer
/// objectives/gradients stay finite.  This header turns those assumptions
/// into executable checks with two gates:
///
///  * **Compile-time**: the `QOC_CONTRACTS` CMake option defines
///    `QOC_CONTRACTS_ENABLED`.  Without it (the Release default) every
///    `QOC_CONTRACT` expands to `((void)0)` -- the condition is not even
///    evaluated -- and every `check_*` helper is an empty inline function the
///    optimizer deletes.  Contract checks therefore cost literally nothing
///    in benchmark and production builds.
///  * **Run-time**: when compiled in, checks are armed by default and gated
///    behind ONE relaxed-atomic word (mirroring `qoc::obs`): `enabled()` is
///    a single relaxed load plus branch.  `QOC_CONTRACTS=0` (or `off`/
///    `false`) in the environment disarms them at startup;
///    `set_enabled(bool)` toggles programmatically (used by the bitwise
///    on-vs-off determinism tests).
///
/// Determinism contract: checks only *read* values the numerics already
/// computed.  They never modify state, never reorder reductions and never
/// synchronize threads, so contracts-on and contracts-off runs produce
/// bitwise-identical results (enforced by tests/contracts).
///
/// A violated contract throws `ContractViolation` with the failing
/// expression, location and a caller-supplied description.  Violations
/// raised inside OpenMP worker threads terminate the process (the what()
/// text is still printed) -- acceptable for a debug-build tripwire.

#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace qoc::contracts {

/// Thrown (from `fail`) when an armed contract is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg) : std::logic_error(what_arg) {}
};

#if defined(QOC_CONTRACTS_ENABLED)

/// The single state word every check loads (relaxed).  Non-zero = armed.
/// Constant-initialized to armed so contracts cover static initializers;
/// the environment override (`QOC_CONTRACTS=0`) is applied during static
/// init of the contracts TU.
inline std::atomic<std::uint32_t> g_contracts_state{1};

/// One relaxed load + branch: the only cost of a passing disarmed check.
inline bool enabled() noexcept {
    return g_contracts_state.load(std::memory_order_relaxed) != 0;
}

/// Arms/disarms all checks at runtime (process-wide).
void set_enabled(bool on) noexcept;

/// Formats and throws `ContractViolation`.  Out-of-line so check sites stay
/// small; never returns.
[[noreturn]] void fail(const char* file, int line, const char* expr, const std::string& detail);

/// Statement-level invariant: `QOC_CONTRACT(cond, "message")`.  `msg` may be
/// any expression convertible to std::string; it is evaluated only on
/// failure.
#define QOC_CONTRACT(cond, msg)                                              \
    do {                                                                     \
        if (::qoc::contracts::enabled() && !(cond)) {                        \
            ::qoc::contracts::fail(__FILE__, __LINE__, #cond, (msg));        \
        }                                                                    \
    } while (false)

#else  // !QOC_CONTRACTS_ENABLED

inline constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}

/// Compiled to nothing: the condition and message are not evaluated.
#define QOC_CONTRACT(cond, msg) ((void)0)

#endif  // QOC_CONTRACTS_ENABLED

// --- scalar checks -----------------------------------------------------------
//
// Each helper is an armed no-op costing one relaxed load when contracts are
// compiled in, and an empty inline function (removed entirely by the
// optimizer) when they are not.

/// `v` must be finite (no NaN/Inf) -- optimizer costs, fit parameters.
inline void check_finite(double v, const char* what) {
#if defined(QOC_CONTRACTS_ENABLED)
    QOC_CONTRACT(std::isfinite(v),
                 std::string(what) + ": non-finite value " + std::to_string(v));
#else
    (void)v;
    (void)what;
#endif
}

/// Every entry of `v` must be finite -- gradients, amplitude vectors.
inline void check_all_finite(const std::vector<double>& v, const char* what) {
#if defined(QOC_CONTRACTS_ENABLED)
    if (!enabled()) return;
    for (std::size_t i = 0; i < v.size(); ++i) {
        QOC_CONTRACT(std::isfinite(v[i]), std::string(what) + ": non-finite entry at index " +
                                              std::to_string(i) + " = " + std::to_string(v[i]));
    }
#else
    (void)v;
    (void)what;
#endif
}

/// `lo - tol <= v <= hi + tol` -- box-bounded optimizer iterates.
inline void check_in_range(double v, double lo, double hi, const char* what, double tol = 0.0) {
#if defined(QOC_CONTRACTS_ENABLED)
    QOC_CONTRACT(v >= lo - tol && v <= hi + tol,
                 std::string(what) + ": value " + std::to_string(v) + " outside [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
#else
    (void)v;
    (void)lo;
    (void)hi;
    (void)what;
    (void)tol;
#endif
}

/// `p` must be a probability in [0, 1] within `tol` -- survival/readout.
inline void check_probability(double p, const char* what, double tol = 1e-9) {
    check_in_range(p, 0.0, 1.0, what, tol);
}

/// Every PWC amplitude `amps[k][j]` must respect the box `[lo, hi]` within
/// `tol` -- the paper's hardware range (+-1 by default, user-configurable).
inline void check_amplitude_bounds(const std::vector<std::vector<double>>& amps, double lo,
                                   double hi, const char* what, double tol = 1e-10) {
#if defined(QOC_CONTRACTS_ENABLED)
    if (!enabled()) return;
    for (std::size_t k = 0; k < amps.size(); ++k) {
        for (std::size_t j = 0; j < amps[k].size(); ++j) {
            QOC_CONTRACT(amps[k][j] >= lo - tol && amps[k][j] <= hi + tol,
                         std::string(what) + ": amplitude u[" + std::to_string(k) + "][" +
                             std::to_string(j) + "] = " + std::to_string(amps[k][j]) +
                             " outside [" + std::to_string(lo) + ", " + std::to_string(hi) + "]");
        }
    }
#else
    (void)amps;
    (void)lo;
    (void)hi;
    (void)what;
    (void)tol;
#endif
}

}  // namespace qoc::contracts
