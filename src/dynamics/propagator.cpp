#include "dynamics/propagator.hpp"

#include <stdexcept>

#include "contracts/matrix_checks.hpp"
#include "linalg/expm.hpp"

namespace qoc::dynamics {

namespace {
using linalg::cplx;
constexpr cplx kI{0.0, 1.0};

void check_amps(const PwcSystem& sys, const ControlAmplitudes& amps) {
    for (const auto& slot : amps) {
        if (slot.size() != sys.ctrls.size()) {
            throw std::invalid_argument("pwc propagators: amplitude/control count mismatch");
        }
    }
}

/// Shared slot-exponentiation loop: builds `scale * (drift + sum u_j H_j)`
/// into a reused buffer and exponentiates through one workspace, so a
/// waveform of thousands of slots costs no allocation beyond the returned
/// propagators themselves.
std::vector<Mat> pwc_propagators(const PwcSystem& sys, const ControlAmplitudes& amps, cplx scale,
                                 linalg::ExpmMethod method) {
    check_amps(sys, amps);
    linalg::ExpmWorkspace ws;
    Mat gen;
    std::vector<Mat> props(amps.size());
    for (std::size_t k = 0; k < amps.size(); ++k) {
        gen = sys.drift;
        for (std::size_t j = 0; j < sys.ctrls.size(); ++j) {
            linalg::add_scaled(gen, cplx{amps[k][j], 0.0}, sys.ctrls[j]);
        }
        gen *= scale;
        linalg::expm_into(gen, props[k], ws, method);
    }
    return props;
}
}  // namespace

Mat PwcSystem::generator(const std::vector<double>& amps) const {
    if (amps.size() != ctrls.size()) {
        throw std::invalid_argument("PwcSystem::generator: amplitude count mismatch");
    }
    Mat g = drift;
    for (std::size_t j = 0; j < ctrls.size(); ++j) g += amps[j] * ctrls[j];
    return g;
}

std::vector<Mat> pwc_unitary_propagators(const PwcSystem& sys, const ControlAmplitudes& amps,
                                         double dt) {
    // Closed-system slot generators H_0 + sum u_j H_j are Hermitian iff the
    // drift and every control generator are; checking the parts once beats
    // checking each of the (possibly thousands of) slot sums.
    contracts::check_hermitian(sys.drift, "pwc_unitary_propagators: drift H_0");
    for (const Mat& c : sys.ctrls) {
        contracts::check_hermitian(c, "pwc_unitary_propagators: control H_j");
    }
    // kAuto: Hermitian-generator slots take the exact spectral path.
    std::vector<Mat> props = pwc_propagators(sys, amps, -kI * dt, linalg::ExpmMethod::kAuto);
    for (const Mat& p : props) {
        contracts::check_unitary(p, "pwc_unitary_propagators: slot propagator", 1e-9);
    }
    return props;
}

std::vector<Mat> pwc_superop_propagators(const PwcSystem& sys, const ControlAmplitudes& amps,
                                         double dt) {
    // Liouvillians are non-Hermitian: pin Pade rather than paying the
    // anti-Hermitian scan per slot.
    return pwc_propagators(sys, amps, cplx{dt, 0.0}, linalg::ExpmMethod::kPade);
}

Mat chain_product(const std::vector<Mat>& props) {
    if (props.empty()) throw std::invalid_argument("chain_product: empty chain");
    Mat total = props.front();
    for (std::size_t k = 1; k < props.size(); ++k) total = props[k] * total;
    return total;
}

std::vector<Mat> forward_products(const std::vector<Mat>& props) {
    std::vector<Mat> fwd;
    fwd.reserve(props.size());
    for (std::size_t k = 0; k < props.size(); ++k) {
        fwd.push_back(k == 0 ? props[0] : props[k] * fwd[k - 1]);
    }
    return fwd;
}

std::vector<Mat> backward_products(const std::vector<Mat>& props) {
    const std::size_t n = props.size();
    std::vector<Mat> bwd(n);
    bwd[n - 1] = Mat::identity(props[0].rows());
    for (std::size_t k = n - 1; k-- > 0;) {
        bwd[k] = bwd[k + 1] * props[k + 1];
    }
    return bwd;
}

}  // namespace qoc::dynamics
