#include "dynamics/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quantum/superop_kron.hpp"

namespace qoc::dynamics {

namespace {
using linalg::cplx;
constexpr cplx kI{0.0, 1.0};

// Dormand-Prince 5(4) tableau.
constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5, c5 = 8.0 / 9;
constexpr double a21 = 1.0 / 5;
constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15, a43 = 32.0 / 9;
constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187, a53 = 64448.0 / 6561,
                 a54 = -212.0 / 729;
constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33, a63 = 46732.0 / 5247,
                 a64 = 49.0 / 176, a65 = -5103.0 / 18656;
constexpr double b1 = 35.0 / 384, b3 = 500.0 / 1113, b4 = 125.0 / 192, b5 = -2187.0 / 6784,
                 b6 = 11.0 / 84;
// Embedded 4th-order weights.
constexpr double e1 = 5179.0 / 57600, e3 = 7571.0 / 16695, e4 = 393.0 / 640,
                 e5 = -92097.0 / 339200, e6 = 187.0 / 2100, e7 = 1.0 / 40;

}  // namespace

IntegrationResult integrate_rk45(const MatrixRhs& rhs, const Mat& x0, double t0, double t1,
                                 const IntegratorOptions& opts) {
    IntegrationResult res;
    res.state = x0;
    if (t1 == t0) return res;
    const double direction = (t1 > t0) ? 1.0 : -1.0;
    double t = t0;
    double h = direction * std::min(opts.initial_step, std::abs(t1 - t0));

    Mat k1 = rhs(t, res.state);
    while (direction * (t1 - t) > 0.0) {
        if (res.steps_taken + res.steps_rejected > opts.max_steps) {
            throw std::runtime_error("integrate_rk45: step budget exhausted");
        }
        if (direction * (t + h - t1) > 0.0) h = t1 - t;

        const Mat& y = res.state;
        const Mat k2 = rhs(t + c2 * h, y + (h * a21) * k1);
        const Mat k3 = rhs(t + c3 * h, y + (h * a31) * k1 + (h * a32) * k2);
        const Mat k4 = rhs(t + c4 * h, y + (h * a41) * k1 + (h * a42) * k2 + (h * a43) * k3);
        const Mat k5 = rhs(t + c5 * h,
                           y + (h * a51) * k1 + (h * a52) * k2 + (h * a53) * k3 + (h * a54) * k4);
        const Mat k6 = rhs(t + h, y + (h * a61) * k1 + (h * a62) * k2 + (h * a63) * k3 +
                                      (h * a64) * k4 + (h * a65) * k5);
        const Mat y5 = y + (h * b1) * k1 + (h * b3) * k3 + (h * b4) * k4 + (h * b5) * k5 +
                       (h * b6) * k6;
        const Mat k7 = rhs(t + h, y5);
        const Mat y4 = y + (h * e1) * k1 + (h * e3) * k3 + (h * e4) * k4 + (h * e5) * k5 +
                       (h * e6) * k6 + (h * e7) * k7;

        // Error estimate relative to tolerance.
        double err = 0.0;
        for (std::size_t idx = 0; idx < y5.data().size(); ++idx) {
            const double sc = opts.atol + opts.rtol * std::max(std::abs(y.data()[idx]),
                                                               std::abs(y5.data()[idx]));
            err = std::max(err, std::abs(y5.data()[idx] - y4.data()[idx]) / sc);
        }

        if (err <= 1.0) {
            t += h;
            res.state = y5;
            k1 = k7;  // FSAL
            ++res.steps_taken;
        } else {
            ++res.steps_rejected;
        }
        const double factor = std::clamp(0.9 * std::pow(std::max(err, 1e-10), -0.2), 0.2, 5.0);
        h *= factor;
        if (std::abs(h) < opts.min_step) {
            throw std::runtime_error("integrate_rk45: step size underflow");
        }
    }
    return res;
}

Mat evolve_master_equation(const std::function<Mat(double)>& hamiltonian,
                           const std::vector<Mat>& collapse_ops, const Mat& rho0, double t0,
                           double t1, const IntegratorOptions& options) {
    // Only the Hamiltonian varies in time: keep the dissipator as a
    // Kronecker-factored superoperator (one C rho C^dag pair per collapse
    // operator plus the two one-sided anticommutator halves), applied in
    // O(n_c d^3) per stage without forming the d^2 x d^2 matrix.
    quantum::KronSuperOp dissipator;
    if (!collapse_ops.empty()) {
        const std::size_t d = rho0.rows();
        Mat kd(d, d);
        for (const Mat& c : collapse_ops) {
            kd += cplx{-0.5, 0.0} * linalg::adjoint_times(c, c);
        }
        dissipator.add_term(kd, Mat{});
        dissipator.add_term(Mat{}, kd);  // kd = -1/2 sum C^dag C is Hermitian
        for (const Mat& c : collapse_ops) dissipator.add_term(c, c.adjoint());
    }

    MatrixRhs rhs = [&, drho = Mat{}, scratch = Mat{}](double t, const Mat& rho) mutable {
        Mat out = (-kI) * linalg::commutator(hamiltonian(t), rho);
        if (dissipator.term_count() > 0) {
            dissipator.apply_rho_into(rho, drho, scratch);
            out += drho;
        }
        return out;
    };
    return integrate_rk45(rhs, rho0, t0, t1, options).state;
}

}  // namespace qoc::dynamics
