/// \file propagator.hpp
/// \brief Piecewise-constant (PWC) propagators for closed and open systems.
///
/// GRAPE discretizes the controls into timeslots with constant amplitudes;
/// each slot's propagator is a single matrix exponential of the (closed)
/// Hamiltonian or the (open) Liouvillian.  These helpers build the per-slot
/// propagators and their ordered products.

#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::dynamics {

using linalg::Mat;

/// Control amplitudes: `amps[k][j]` is the amplitude of control `j` during
/// timeslot `k`.
using ControlAmplitudes = std::vector<std::vector<double>>;

/// A bilinear control system `H(t) = H_0 + sum_j u_j(t) H_j` (closed) or
/// `L(t) = L_0 + sum_j u_j(t) L_j` (open, generators already in superoperator
/// form).  The same struct serves both; `generator(k)` assembles the slot
/// generator.
struct PwcSystem {
    Mat drift;                ///< H_0 or L_0
    std::vector<Mat> ctrls;   ///< H_j or L_j

    /// Slot generator `drift + sum_j amps[j] * ctrls[j]`.
    Mat generator(const std::vector<double>& amps) const;
};

/// Per-slot unitary propagators `P_k = exp(-i dt (H_0 + sum u_jk H_j))`.
std::vector<Mat> pwc_unitary_propagators(const PwcSystem& sys, const ControlAmplitudes& amps,
                                         double dt);

/// Per-slot open-system propagators `P_k = exp(dt (L_0 + sum u_jk L_j))`.
/// The generators are the (non-Hermitian) Liouvillians themselves.
std::vector<Mat> pwc_superop_propagators(const PwcSystem& sys, const ControlAmplitudes& amps,
                                         double dt);

/// Ordered product `P_N ... P_2 P_1` (time-ordered evolution).
Mat chain_product(const std::vector<Mat>& props);

/// Forward partial products: `fwd[k] = P_k ... P_1` for k = 0..N-1.
std::vector<Mat> forward_products(const std::vector<Mat>& props);

/// Backward partial products: `bwd[k] = P_N ... P_{k+2}` for k = 0..N-1
/// (so that total = bwd[k] * P_{k+1} * fwd[k-1]).  `bwd[N-1]` is identity.
std::vector<Mat> backward_products(const std::vector<Mat>& props);

}  // namespace qoc::dynamics
