/// \file integrator.hpp
/// \brief Adaptive Runge-Kutta (Dormand-Prince 5(4)) integrator for matrix
///        ODEs, used as an independent cross-check of the PWC propagators
///        and for smooth (non-PWC) drive envelopes.

#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace qoc::dynamics {

using linalg::Mat;

/// Right-hand side of dX/dt = f(t, X); X is a ket, density matrix or
/// vectorized state.
using MatrixRhs = std::function<Mat(double t, const Mat& x)>;

struct IntegratorOptions {
    double rtol = 1e-9;
    double atol = 1e-11;
    double initial_step = 1e-3;
    double min_step = 1e-12;
    std::size_t max_steps = 2'000'000;
};

struct IntegrationResult {
    Mat state;
    std::size_t steps_taken = 0;
    std::size_t steps_rejected = 0;
};

/// Integrates dX/dt = rhs(t, X) from (t0, x0) to t1 with adaptive
/// Dormand-Prince 5(4).  Throws `std::runtime_error` when the step size
/// underflows or the step budget is exhausted.
IntegrationResult integrate_rk45(const MatrixRhs& rhs, const Mat& x0, double t0, double t1,
                                 const IntegratorOptions& options = {});

/// Convenience: evolves a density matrix under a time-dependent Hamiltonian
/// and fixed collapse operators (the paper's Eq. 1) using RK45.
Mat evolve_master_equation(const std::function<Mat(double)>& hamiltonian,
                           const std::vector<Mat>& collapse_ops, const Mat& rho0, double t0,
                           double t1, const IntegratorOptions& options = {});

}  // namespace qoc::dynamics
