#include "linalg/kron.hpp"

#include <stdexcept>

namespace qoc::linalg {

Mat kron(const Mat& a, const Mat& b) {
    Mat out(a.rows() * b.rows(), a.cols() * b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            const cplx aij = a(i, j);
            if (aij == cplx{0.0, 0.0}) continue;
            for (std::size_t p = 0; p < b.rows(); ++p)
                for (std::size_t q = 0; q < b.cols(); ++q)
                    out(i * b.rows() + p, j * b.cols() + q) = aij * b(p, q);
        }
    }
    return out;
}

Mat kron_all(const std::vector<Mat>& factors) {
    if (factors.empty()) throw std::invalid_argument("kron_all: no factors");
    Mat out = factors.front();
    for (std::size_t k = 1; k < factors.size(); ++k) out = kron(out, factors[k]);
    return out;
}

Mat vec(const Mat& a) {
    Mat v(a.rows() * a.cols(), 1);
    std::size_t k = 0;
    for (std::size_t j = 0; j < a.cols(); ++j)
        for (std::size_t i = 0; i < a.rows(); ++i) v(k++, 0) = a(i, j);
    return v;
}

Mat unvec(const Mat& v, std::size_t n) {
    if (v.cols() != 1 || v.rows() != n * n) throw std::invalid_argument("unvec: bad shape");
    Mat a(n, n);
    std::size_t k = 0;
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < n; ++i) a(i, j) = v(k++, 0);
    return a;
}

}  // namespace qoc::linalg
