/// \file kron.hpp
/// \brief Kronecker (tensor) products and multi-factor helpers.

#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::linalg {

/// Kronecker product `a (x) b`.
Mat kron(const Mat& a, const Mat& b);

/// Left-to-right Kronecker product of all factors.  Requires at least one.
Mat kron_all(const std::vector<Mat>& factors);

/// Column-major vectorization `vec(A)` stacking columns (the convention under
/// which `vec(A X B) = (B^T (x) A) vec(X)`), as a column vector.
Mat vec(const Mat& a);

/// Inverse of `vec` for a square target of dimension `n`.
Mat unvec(const Mat& v, std::size_t n);

}  // namespace qoc::linalg
