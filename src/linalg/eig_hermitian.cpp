#include "linalg/eig_hermitian.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "contracts/matrix_checks.hpp"

namespace qoc::linalg {

namespace {

/// Sum of squared magnitudes of strictly-off-diagonal entries.
double off_norm2(const Mat& a) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j) s += std::norm(a(i, j));
    return s;
}

/// Cyclic Jacobi sweeps: diagonalizes `w` in place while accumulating the
/// rotations into `v` (which must start as the identity), so on return
/// `a = v diag(w) v^dagger`.  Shared by the sorting and the no-alloc entry
/// points; any change here changes both bitwise.
void jacobi_diagonalize(Mat& w, Mat& v) {
    const std::size_t n = w.rows();
    const double scale = std::max(1.0, w.frobenius_norm());
    const double tol2 = std::pow(1e-14 * scale, 2) * static_cast<double>(n * n);
    const int max_sweeps = 60;

    for (int sweep = 0; sweep < max_sweeps && off_norm2(w) > tol2; ++sweep) {
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const cplx apq = w(p, q);
                const double mag = std::abs(apq);
                if (mag < 1e-300) continue;

                // Complex Jacobi rotation zeroing w(p,q).  Factor the phase
                // out with P = diag(1, e^{-i phi}), phi = arg(apq), reducing
                // the 2x2 block to a real symmetric one, then apply the
                // classic real rotation R; the combined unitary is
                //   G(p,p)=c, G(p,q)=s, G(q,p)=-s e^{-i phi}, G(q,q)=c e^{-i phi}.
                const double app = w(p, p).real();
                const double aqq = w(q, q).real();
                const double tau = (aqq - app) / (2.0 * mag);
                const double t = (tau >= 0.0)
                                     ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                     : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = t * c;
                const cplx eip = apq / mag;  // e^{i phi}

                // Row/column update: w <- G^dagger w G ; v <- v G.
                for (std::size_t k = 0; k < n; ++k) {
                    const cplx wkp = w(k, p);
                    const cplx wkq = w(k, q);
                    w(k, p) = c * wkp - s * std::conj(eip) * wkq;
                    w(k, q) = s * wkp + c * std::conj(eip) * wkq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const cplx wpk = w(p, k);
                    const cplx wqk = w(q, k);
                    w(p, k) = c * wpk - s * eip * wqk;
                    w(q, k) = s * wpk + c * eip * wqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const cplx vkp = v(k, p);
                    const cplx vkq = v(k, q);
                    v(k, p) = c * vkp - s * std::conj(eip) * vkq;
                    v(k, q) = s * vkp + c * std::conj(eip) * vkq;
                }
            }
        }
    }
}

}  // namespace

EigH eig_hermitian(const Mat& a, double herm_tol) {
    if (!a.is_square()) throw std::invalid_argument("eig_hermitian: non-square");
    if (!a.is_hermitian(herm_tol * std::max(1.0, a.max_abs()))) {
        throw std::invalid_argument("eig_hermitian: matrix is not Hermitian");
    }
    const std::size_t n = a.rows();
    Mat w = a;
    Mat v = Mat::identity(n);
    jacobi_diagonalize(w, v);

    // Collect and sort ascending.
    std::vector<double> evals(n);
    for (std::size_t i = 0; i < n; ++i) evals[i] = w(i, i).real();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return evals[x] < evals[y]; });

    EigH out;
    out.eigenvalues.resize(n);
    out.eigenvectors = Mat(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        out.eigenvalues[j] = evals[order[j]];
        for (std::size_t i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, order[j]);
    }
    return out;
}

void eig_hermitian_into(const Mat& a, std::vector<double>& eigenvalues, Mat& eigenvectors,
                        Mat& work) {
    // The release path skips the Hermiticity test by design (hot loop); the
    // contract restores it in checked builds.
    contracts::check_hermitian(a, "eig_hermitian_into: input");
    const std::size_t n = a.rows();
    work = a;
    eigenvectors.resize(n, n);  // zero-fills, then seed the identity
    for (std::size_t i = 0; i < n; ++i) eigenvectors(i, i) = cplx{1.0, 0.0};
    jacobi_diagonalize(work, eigenvectors);
    eigenvalues.resize(n);
    for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = work(i, i).real();
}

Mat hermitian_function(const Mat& a, double (*f)(double)) {
    const EigH e = eig_hermitian(a);
    const std::size_t n = a.rows();
    Mat d(n, n);
    for (std::size_t i = 0; i < n; ++i) d(i, i) = cplx{f(e.eigenvalues[i]), 0.0};
    return e.eigenvectors * d * e.eigenvectors.adjoint();
}

}  // namespace qoc::linalg
