/// \file sparse.hpp
/// \brief Compressed-sparse-row complex matrix with no-alloc SpMV, for
///        superoperators that are sparse but not Kronecker-factorable
///        (memoized Clifford superops: rz-only elements are exactly
///        diagonal, many others carry large blocks of structural zeros).
///
/// Construction scans a dense row-major matrix once and keeps entries with
/// `|v| > threshold`; the default threshold 0.0 drops only exact zeros, so
/// a CSR apply visits precisely the terms the dense SIMD kernel's
/// zero-skip visits -- the two paths round identically (both accumulate in
/// ascending column order through the simd kernel family).

#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::linalg {

class CsrMat {
public:
    /// Empty 0x0 matrix.
    CsrMat() = default;

    /// Compresses `dense`, keeping entries with magnitude > `threshold`.
    static CsrMat from_dense(const Mat& dense, double threshold = 0.0);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    std::size_t nnz() const noexcept { return vals_.size(); }
    bool empty() const noexcept { return rows_ == 0; }

    /// Stored fraction nnz / (rows * cols); 1.0 for the empty matrix.
    double fill_fraction() const noexcept;

    /// Reconstructs the dense form (dropped entries become exact zeros).
    Mat to_dense() const;

    /// `out = (*this) * x` for a column vector `x` (n x 1), allocation-free
    /// on shape reuse.  `out` must not alias `x`.
    void spmv_into(const Mat& x, Mat& out) const;

    /// `out (+)= (*this) * column s of a row-major batch`, strided access.
    void apply_col(const cplx* x, cplx* out, std::size_t stride) const noexcept;

    /// `out = (*this) * b` against a row-major dense batch (d^2 x B), one
    /// broadcast-fma sweep per stored nonzero.  `out` resized in place.
    void apply_batch_into(const Mat& b, Mat& out) const;

    const std::vector<cplx>& values() const noexcept { return vals_; }
    const std::vector<int>& col_indices() const noexcept { return cols_idx_; }
    const std::vector<int>& row_pointers() const noexcept { return rowptr_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<cplx> vals_;
    std::vector<int> cols_idx_;
    std::vector<int> rowptr_;
};

}  // namespace qoc::linalg
