/// \file eig_hermitian.hpp
/// \brief Eigendecomposition of complex Hermitian matrices (cyclic Jacobi).
///
/// Sizes in this library are tiny (<= ~162), so the classic cyclic Jacobi
/// scheme with complex rotations is both simple and accurate: it converges
/// quadratically and produces orthonormal eigenvectors to machine precision.

#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::linalg {

/// Result of a Hermitian eigendecomposition `A = V diag(w) V^dagger`.
struct EigH {
    std::vector<double> eigenvalues;  ///< ascending
    Mat eigenvectors;                 ///< columns are eigenvectors, unitary
};

/// Diagonalizes a Hermitian matrix.  Throws `std::invalid_argument` when the
/// input is not square or not Hermitian within `herm_tol`.
EigH eig_hermitian(const Mat& a, double herm_tol = 1e-9);

/// Allocation-free Jacobi diagonalization for hot loops (the spectral
/// Frechet path runs one per GRAPE time slot).  Writes the eigenvalues in
/// *unsorted* (but deterministic) Jacobi order with matching eigenvector
/// columns, reusing the capacity of `eigenvalues` / `eigenvectors` / `work`;
/// no heap allocation once they have seen size `n`.  Skips the Hermiticity
/// check -- the caller must guarantee `a` is Hermitian and square.
void eig_hermitian_into(const Mat& a, std::vector<double>& eigenvalues,
                        Mat& eigenvectors, Mat& work);

/// Applies an analytic function to a Hermitian matrix through its spectrum:
/// `f(A) = V diag(f(w)) V^dagger`.
Mat hermitian_function(const Mat& a, double (*f)(double));

}  // namespace qoc::linalg
