/// \file expm.hpp
/// \brief Matrix exponential (Higham Pade 13 scaling-and-squaring), the Van
///        Loan augmented-block directional derivative, and the batched
///        multi-direction Frechet engine used by the GRAPE hot loop.

#pragma once

#include <utility>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace qoc::linalg {

/// Matrix exponential `e^A` for a general complex square matrix, via
/// scaling-and-squaring with Pade approximants of order 3/5/7/9/13
/// (Higham 2005).
Mat expm(const Mat& a);

/// Frechet derivative `L(A, E) = d/ds e^{A + sE} |_{s=0}` computed with the
/// Van Loan augmented block
///   expm([[A, E], [0, A]]) = [[e^A, L(A,E)], [0, e^A]].
/// Returns `{e^A, L(A, E)}`.  Valid for any (also non-Hermitian) generator.
/// The augmented block is 2N x 2N, so one call costs ~8x an N x N expm; the
/// multi-direction engine below exists because GRAPE needs L against every
/// control direction of the *same* A.  Kept as the independent reference
/// implementation the engine is tested against.
std::pair<Mat, Mat> expm_frechet(const Mat& a, const Mat& e);

/// Unitary propagator `exp(-i H t)` of a Hermitian `H` via its spectrum.
/// More accurate than generic expm for strongly scaled Hamiltonians and
/// reuses a cached eigendecomposition when stepping many times.
Mat expm_hermitian(const Mat& h, double t);

// --- batched propagator-gradient engine --------------------------------------

/// Algorithm selector for the batched engine.
enum class ExpmMethod {
    kAuto,      ///< kSpectral when A is anti-Hermitian (closed-system GRAPE
                ///  slot exponents `-i dt H`), kPade otherwise.
    kPade,      ///< shared-Pade scaling-and-squaring (any generator)
    kSpectral,  ///< Daleckii-Krein divided differences through eig_hermitian;
                ///  requires an anti-Hermitian `A = -i S`, S Hermitian
};

/// Reusable scratch for `expm_into` / `expm_frechet_multi`.  All buffers are
/// implementation detail: contents are unspecified between calls, and the
/// only guarantee is that repeated calls at the same matrix size perform no
/// heap allocation on either path (the spectral path runs the no-alloc
/// `eig_hermitian_into`).  One workspace must not be shared between
/// threads; the GRAPE evaluator keeps one per OpenMP thread.
class ExpmWorkspace {
public:
    ExpmWorkspace() = default;

    /// Routes the Pade path's gemms and triangular solves through the
    /// `linalg::simd` kernel family (simd_kernels.hpp).  Default OFF: the
    /// fma-contracted kernels round differently from the legacy `gemm_into`
    /// arithmetic that pins every historical golden trajectory, so only the
    /// open-system evaluator (whose structured path carries its own 1e-12
    /// agreement budget) switches this on.  The spectral path ignores it.
    bool use_simd_kernels = false;

    // shared Pade intermediates (one set per A, reused across directions)
    Mat as;                 ///< scaled generator A / 2^s
    std::vector<Mat> pows;  ///< pows[k] = (A/2^s)^{2k}, k >= 1
    Mat usum;               ///< odd-coefficient polynomial (orders 3..9)
    Mat u, v;               ///< Pade numerator/denominator halves
    Mat w1, z1, w;          ///< Higham order-13 factored polynomials
    Mat r;                  ///< Pade approximant, then its repeated squares
    Lu fact;                ///< LU of (V - U), shared across directions
    // per-direction scratch
    Mat es, m2, m4, m6, mcur, mprev, lw1, lw, lusum, lu_m, lv_m, rhs;
    Mat t1, t2;
    // spectral-path scratch
    Mat vt, g, evec, ework;
    std::vector<double> evals;
    std::vector<cplx> phases;
};

/// `out = e^A` through the workspace engine: allocation-free on shape reuse
/// and, with kAuto/kSpectral on anti-Hermitian input, via the exact spectral
/// formula instead of Pade.  Used by the PWC propagator builders and Krotov,
/// which exponentiate thousands of same-size slot generators.
void expm_into(const Mat& a, Mat& out, ExpmWorkspace& ws,
               ExpmMethod method = ExpmMethod::kAuto);

/// Computes `e^A` and the Frechet derivatives `L(A, E_j)` for all `n_dirs`
/// directions at once.
///
/// kPade path: one set of Pade intermediates (A^2, A^4, A^6, the factored
/// polynomials and one LU of V - U) is built for A and reused for every
/// direction, Al-Mohy-Higham style; per direction only the derivative
/// polynomials, one back-substitution and the squaring-phase products
/// remain.  Cost per direction is ~N^3 gemms instead of the (2N)^3 ~ 8x
/// augmented-block expm that `expm_frechet` pays.
///
/// kSpectral path (anti-Hermitian A = -i S): one Jacobi eigendecomposition
/// of S, then per direction the Daleckii-Krein divided-difference formula
///   L(A, E) = V [ (V^dag E V) o Phi ] V^dag,
///   Phi_kl = e^{-i(lam_k+lam_l)/2} * sinc((lam_k-lam_l)/2),
/// i.e. two gemm pairs and a Hadamard product per direction.
///
/// `frechet_out` must point at `n_dirs` writable matrices (resized in
/// place); `exp_out`/`frechet_out` must not alias `a`/`dirs`.  Every
/// direction must have the shape of `a`.  Results are deterministic for a
/// given input regardless of how calls are distributed over threads.
void expm_frechet_multi(const Mat& a, const Mat* dirs, std::size_t n_dirs,
                        Mat& exp_out, Mat* frechet_out, ExpmWorkspace& ws,
                        ExpmMethod method = ExpmMethod::kAuto);

/// Convenience overload with value-semantics results (tests, one-shot use).
std::pair<Mat, std::vector<Mat>> expm_frechet_multi(
    const Mat& a, const std::vector<Mat>& dirs,
    ExpmMethod method = ExpmMethod::kAuto);

}  // namespace qoc::linalg
