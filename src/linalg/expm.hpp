/// \file expm.hpp
/// \brief Matrix exponential (Higham Pade 13 scaling-and-squaring) and the
///        Van Loan augmented-block directional derivative used for exact
///        GRAPE gradients.

#pragma once

#include <utility>

#include "linalg/matrix.hpp"

namespace qoc::linalg {

/// Matrix exponential `e^A` for a general complex square matrix, via
/// scaling-and-squaring with Pade approximants of order 3/5/7/9/13
/// (Higham 2005).
Mat expm(const Mat& a);

/// Frechet derivative `L(A, E) = d/ds e^{A + sE} |_{s=0}` computed with the
/// Van Loan augmented block
///   expm([[A, E], [0, A]]) = [[e^A, L(A,E)], [0, e^A]].
/// Returns `{e^A, L(A, E)}`.  Valid for any (also non-Hermitian) generator,
/// which is what open-system GRAPE needs.
std::pair<Mat, Mat> expm_frechet(const Mat& a, const Mat& e);

/// Unitary propagator `exp(-i H t)` of a Hermitian `H` via its spectrum.
/// More accurate than generic expm for strongly scaled Hamiltonians and
/// reuses a cached eigendecomposition when stepping many times.
Mat expm_hermitian(const Mat& h, double t);

}  // namespace qoc::linalg
