/// \file lu.hpp
/// \brief LU decomposition with partial pivoting for complex dense matrices.

#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace qoc::linalg {

/// LU factorization `P A = L U` of a square complex matrix with partial
/// (row) pivoting.  L has unit diagonal and is stored, together with U, in
/// the packed factor matrix.
class Lu {
public:
    /// Creates an empty factorization; call `factor` before use.
    Lu() = default;

    /// Factorizes `a`.  Throws `std::invalid_argument` for non-square input.
    explicit Lu(const Mat& a);

    /// (Re)factorizes `a`, reusing the internal storage of any previous
    /// factorization of the same size (allocation-free on reuse).  This is
    /// what lets the shared-Pade Frechet engine refactor `V - U` once per
    /// slot without churning the heap.
    void factor(const Mat& a);

    /// True once `factor` (or the factorizing constructor) has run.
    bool factored() const noexcept { return !lu_.empty(); }

    /// True when a pivot underflowed (matrix numerically singular).
    bool singular() const noexcept { return singular_; }

    /// Determinant of the original matrix (0 when singular() is true is not
    /// forced; the product of pivots is returned as computed).
    cplx det() const;

    /// Solves `A x = b` for one or more right-hand sides (columns of b).
    /// Throws `std::runtime_error` when the factorization is singular.
    Mat solve(const Mat& b) const;

    /// Solves `A x = b` into a caller-owned matrix (allocation-free on shape
    /// reuse).  `x` must not alias `b`.
    void solve_into(const Mat& b, Mat& x) const;

    /// Same solve through the `linalg::simd` kernel family: the row updates
    /// of both substitutions vectorize over the right-hand-side columns.
    /// Rounding differs from `solve_into` (fma-contracted products), so this
    /// variant is only engaged behind the structured-kernel dispatch points
    /// (the open-system expm path); the legacy solve stays the bitwise
    /// reference everywhere else.
    void solve_into_simd(const Mat& b, Mat& x) const;

    /// Inverse of the original matrix.
    Mat inverse() const;

private:
    Mat lu_;                       // packed L (unit diag, below) and U (on/above)
    std::vector<std::size_t> piv_; // row permutation
    int pivot_sign_ = 1;
    bool singular_ = false;
};

/// Convenience wrapper: solves `A x = b`.
Mat solve(const Mat& a, const Mat& b);

/// Convenience wrapper: matrix inverse.
Mat inverse(const Mat& a);

/// Convenience wrapper: determinant.
cplx det(const Mat& a);

}  // namespace qoc::linalg
