#include "linalg/simd_kernels.hpp"

#include <cmath>
#include <stdexcept>

#if defined(QOC_SIMD_KERNELS) && defined(__x86_64__) && defined(__GNUC__)
#define QOC_HAVE_AVX2_PATH 1
#include <immintrin.h>
#endif

namespace qoc::linalg::simd {

namespace {

bool g_force_scalar = false;

// --- scalar replay of the AVX2 lane arithmetic ------------------------------
//
// prod = fmaddsub(b, broadcast(a_re), b_swapped * broadcast(a_im)):
//   re: fma(b_re, a_re, -(a_im * b_im))
//   im: fma(b_im, a_re, +(a_im * b_re))
// then acc += prod as a separate IEEE add.  Every scalar helper below
// commits elements through this exact sequence so vector and scalar paths
// round identically.

inline void cfma(cplx& acc, const cplx a, const cplx b) noexcept {
    const double pr = std::fma(b.real(), a.real(), -(a.imag() * b.imag()));
    const double pi = std::fma(b.imag(), a.real(), a.imag() * b.real());
    acc = cplx{acc.real() + pr, acc.imag() + pi};
}

inline void cfms(cplx& acc, const cplx a, const cplx b) noexcept {
    const double pr = std::fma(b.real(), a.real(), -(a.imag() * b.imag()));
    const double pi = std::fma(b.imag(), a.real(), a.imag() * b.real());
    acc = cplx{acc.real() - pr, acc.imag() - pi};
}

void gemm_raw_scalar(const cplx* a, const cplx* b, cplx* c, std::size_t m, std::size_t k,
                     std::size_t n, bool accumulate) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        cplx* crow = c + i * n;
        if (!accumulate) {
            for (std::size_t j = 0; j < n; ++j) crow[j] = cplx{0.0, 0.0};
        }
        const cplx* arow = a + i * k;
        for (std::size_t p = 0; p < k; ++p) {
            const cplx aip = arow[p];
            if (aip == cplx{0.0, 0.0}) continue;
            const cplx* brow = b + p * n;
            for (std::size_t j = 0; j < n; ++j) cfma(crow[j], aip, brow[j]);
        }
    }
}

void gemv_strided_scalar(const cplx* a, std::size_t n, const cplx* x, cplx* out,
                         std::size_t stride, bool accumulate) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        cplx acc = accumulate ? out[i * stride] : cplx{0.0, 0.0};
        const cplx* arow = a + i * n;
        for (std::size_t p = 0; p < n; ++p) {
            const cplx aip = arow[p];
            if (aip == cplx{0.0, 0.0}) continue;
            cfma(acc, aip, x[p * stride]);
        }
        out[i * stride] = acc;
    }
}

void csr_gemv_strided_scalar(const cplx* vals, const int* cols, const int* rowptr,
                             std::size_t n_rows, const cplx* x, cplx* out,
                             std::size_t stride, bool accumulate) noexcept {
    for (std::size_t i = 0; i < n_rows; ++i) {
        cplx acc = accumulate ? out[i * stride] : cplx{0.0, 0.0};
        for (int idx = rowptr[i]; idx < rowptr[i + 1]; ++idx) {
            cfma(acc, vals[idx], x[static_cast<std::size_t>(cols[idx]) * stride]);
        }
        out[i * stride] = acc;
    }
}

void csr_gemm_raw_scalar(const cplx* vals, const int* cols, const int* rowptr,
                         std::size_t m, const cplx* b, cplx* c, std::size_t n,
                         bool accumulate) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        cplx* crow = c + i * n;
        if (!accumulate) {
            for (std::size_t j = 0; j < n; ++j) crow[j] = cplx{0.0, 0.0};
        }
        for (int idx = rowptr[i]; idx < rowptr[i + 1]; ++idx) {
            const cplx v = vals[idx];
            const cplx* brow = b + static_cast<std::size_t>(cols[idx]) * n;
            for (std::size_t j = 0; j < n; ++j) cfma(crow[j], v, brow[j]);
        }
    }
}

void row_sub_scaled_scalar(cplx* xi, const cplx* xk, cplx l, std::size_t n) noexcept {
    for (std::size_t j = 0; j < n; ++j) cfms(xi[j], l, xk[j]);
}

#if defined(QOC_HAVE_AVX2_PATH)

// --- AVX2+FMA variants ------------------------------------------------------
//
// A 256-bit vector holds two interleaved complex doubles [re0 im0 re1 im1].
// The complex broadcast-multiply-accumulate is the classic fmaddsub form;
// odd tails replay the scalar sequence, which rounds identically.

/// acc += a * v for two packed complex in `v`, `a` broadcast as (ar, ai).
__attribute__((target("avx2,fma"))) inline __m256d cfma2(__m256d acc, __m256d ar, __m256d ai,
                                                         __m256d v) noexcept {
    const __m256d swapped = _mm256_permute_pd(v, 0b0101);
    return _mm256_add_pd(acc, _mm256_fmaddsub_pd(v, ar, _mm256_mul_pd(swapped, ai)));
}

// fma-target copies of the scalar replay: the baseline-ISA build lowers
// std::fma to a libm call (x86-64 has no baseline fma instruction), which
// dominates the strided single-column applies.  Compiled for fma these
// collapse to vfmadd -- same correctly-rounded result, so still bitwise
// identical to the portable scalar path.

__attribute__((target("avx2,fma"))) inline void cfma_hw(cplx& acc, const cplx a,
                                                        const cplx b) noexcept {
    const double pr = std::fma(b.real(), a.real(), -(a.imag() * b.imag()));
    const double pi = std::fma(b.imag(), a.real(), a.imag() * b.real());
    acc = cplx{acc.real() + pr, acc.imag() + pi};
}

__attribute__((target("avx2,fma"))) void gemv_strided_hw(const cplx* a, std::size_t n,
                                                         const cplx* x, cplx* out,
                                                         std::size_t stride,
                                                         bool accumulate) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        cplx acc = accumulate ? out[i * stride] : cplx{0.0, 0.0};
        const cplx* arow = a + i * n;
        for (std::size_t p = 0; p < n; ++p) {
            const cplx aip = arow[p];
            if (aip == cplx{0.0, 0.0}) continue;
            cfma_hw(acc, aip, x[p * stride]);
        }
        out[i * stride] = acc;
    }
}

__attribute__((target("avx2,fma"))) void csr_gemv_strided_hw(const cplx* vals, const int* cols,
                                                             const int* rowptr,
                                                             std::size_t n_rows, const cplx* x,
                                                             cplx* out, std::size_t stride,
                                                             bool accumulate) noexcept {
    for (std::size_t i = 0; i < n_rows; ++i) {
        cplx acc = accumulate ? out[i * stride] : cplx{0.0, 0.0};
        for (int idx = rowptr[i]; idx < rowptr[i + 1]; ++idx) {
            cfma_hw(acc, vals[idx], x[static_cast<std::size_t>(cols[idx]) * stride]);
        }
        out[i * stride] = acc;
    }
}

// Register-blocked inner kernel: a chunk of up to JV 256-bit accumulators
// (2 complex columns each, plus an optional odd tail column) lives in
// registers across the whole p loop, so the C row is read and written once
// per chunk instead of once per inner-product term.  Each output element
// still accumulates over ascending p through the cfma2/cfma sequence, so
// results are bitwise identical to the unblocked form.
template <int JV, bool TAIL>
__attribute__((target("avx2,fma"))) void gemm_chunk_avx2(const cplx* a, const cplx* b, cplx* c,
                                                         std::size_t m, std::size_t k,
                                                         std::size_t n, std::size_t j0,
                                                         bool accumulate) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        cplx* crow = c + i * n + j0;
        auto* cd = reinterpret_cast<double*>(crow);
        __m256d acc[JV > 0 ? JV : 1];
        cplx tacc{0.0, 0.0};
        if (accumulate) {
            for (int v = 0; v < JV; ++v) acc[v] = _mm256_loadu_pd(cd + 4 * v);
            if (TAIL) tacc = crow[2 * JV];
        } else {
            for (int v = 0; v < JV; ++v) acc[v] = _mm256_setzero_pd();
        }
        const cplx* arow = a + i * k;
        for (std::size_t p = 0; p < k; ++p) {
            const cplx aip = arow[p];
            if (aip == cplx{0.0, 0.0}) continue;
            const __m256d ar = _mm256_set1_pd(aip.real());
            const __m256d ai = _mm256_set1_pd(aip.imag());
            const auto* bd = reinterpret_cast<const double*>(b + p * n + j0);
            for (int v = 0; v < JV; ++v) {
                acc[v] = cfma2(acc[v], ar, ai, _mm256_loadu_pd(bd + 4 * v));
            }
            if (TAIL) cfma(tacc, aip, *(b + p * n + j0 + 2 * JV));
        }
        for (int v = 0; v < JV; ++v) _mm256_storeu_pd(cd + 4 * v, acc[v]);
        if (TAIL) crow[2 * JV] = tacc;
    }
}

/// Same register blocking over a CSR left operand.
template <int JV, bool TAIL>
__attribute__((target("avx2,fma"))) void csr_gemm_chunk_avx2(const cplx* vals, const int* cols,
                                                             const int* rowptr, std::size_t m,
                                                             const cplx* b, cplx* c,
                                                             std::size_t n, std::size_t j0,
                                                             bool accumulate) noexcept {
    for (std::size_t i = 0; i < m; ++i) {
        cplx* crow = c + i * n + j0;
        auto* cd = reinterpret_cast<double*>(crow);
        __m256d acc[JV > 0 ? JV : 1];
        cplx tacc{0.0, 0.0};
        if (accumulate) {
            for (int v = 0; v < JV; ++v) acc[v] = _mm256_loadu_pd(cd + 4 * v);
            if (TAIL) tacc = crow[2 * JV];
        } else {
            for (int v = 0; v < JV; ++v) acc[v] = _mm256_setzero_pd();
        }
        for (int idx = rowptr[i]; idx < rowptr[i + 1]; ++idx) {
            const cplx aval = vals[idx];
            const __m256d ar = _mm256_set1_pd(aval.real());
            const __m256d ai = _mm256_set1_pd(aval.imag());
            const cplx* brow = b + static_cast<std::size_t>(cols[idx]) * n + j0;
            const auto* bd = reinterpret_cast<const double*>(brow);
            for (int v = 0; v < JV; ++v) {
                acc[v] = cfma2(acc[v], ar, ai, _mm256_loadu_pd(bd + 4 * v));
            }
            if (TAIL) cfma(tacc, aval, brow[2 * JV]);
        }
        for (int v = 0; v < JV; ++v) _mm256_storeu_pd(cd + 4 * v, acc[v]);
        if (TAIL) crow[2 * JV] = tacc;
    }
}

/// Dispatch table over (full vectors in chunk, odd tail column).
template <bool TAIL>
__attribute__((target("avx2,fma"))) void gemm_chunk_dispatch(const cplx* a, const cplx* b,
                                                             cplx* c, std::size_t m,
                                                             std::size_t k, std::size_t n,
                                                             std::size_t j0, std::size_t jv,
                                                             bool accumulate) noexcept {
    switch (jv) {
        case 0: gemm_chunk_avx2<0, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        case 1: gemm_chunk_avx2<1, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        case 2: gemm_chunk_avx2<2, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        case 3: gemm_chunk_avx2<3, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        case 4: gemm_chunk_avx2<4, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        case 5: gemm_chunk_avx2<5, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        case 6: gemm_chunk_avx2<6, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        case 7: gemm_chunk_avx2<7, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
        default: gemm_chunk_avx2<8, TAIL>(a, b, c, m, k, n, j0, accumulate); break;
    }
}

template <bool TAIL>
__attribute__((target("avx2,fma"))) void csr_gemm_chunk_dispatch(
    const cplx* vals, const int* cols, const int* rowptr, std::size_t m, const cplx* b,
    cplx* c, std::size_t n, std::size_t j0, std::size_t jv, bool accumulate) noexcept {
    switch (jv) {
        case 0: csr_gemm_chunk_avx2<0, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        case 1: csr_gemm_chunk_avx2<1, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        case 2: csr_gemm_chunk_avx2<2, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        case 3: csr_gemm_chunk_avx2<3, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        case 4: csr_gemm_chunk_avx2<4, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        case 5: csr_gemm_chunk_avx2<5, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        case 6: csr_gemm_chunk_avx2<6, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        case 7: csr_gemm_chunk_avx2<7, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
        default: csr_gemm_chunk_avx2<8, TAIL>(vals, cols, rowptr, m, b, c, n, j0, accumulate); break;
    }
}

constexpr std::size_t kChunkCols = 16;  // 8 vectors = 16 complex columns

__attribute__((target("avx2,fma"))) void gemm_raw_avx2(const cplx* a, const cplx* b, cplx* c,
                                                       std::size_t m, std::size_t k,
                                                       std::size_t n,
                                                       bool accumulate) noexcept {
    for (std::size_t j0 = 0; j0 < n; j0 += kChunkCols) {
        const std::size_t jn = std::min(kChunkCols, n - j0);
        const std::size_t jv = jn / 2;
        if ((jn & 1) != 0) {
            gemm_chunk_dispatch<true>(a, b, c, m, k, n, j0, jv, accumulate);
        } else {
            gemm_chunk_dispatch<false>(a, b, c, m, k, n, j0, jv, accumulate);
        }
    }
}

__attribute__((target("avx2,fma"))) void csr_gemm_raw_avx2(const cplx* vals, const int* cols,
                                                           const int* rowptr, std::size_t m,
                                                           const cplx* b, cplx* c,
                                                           std::size_t n,
                                                           bool accumulate) noexcept {
    for (std::size_t j0 = 0; j0 < n; j0 += kChunkCols) {
        const std::size_t jn = std::min(kChunkCols, n - j0);
        const std::size_t jv = jn / 2;
        if ((jn & 1) != 0) {
            csr_gemm_chunk_dispatch<true>(vals, cols, rowptr, m, b, c, n, j0, jv, accumulate);
        } else {
            csr_gemm_chunk_dispatch<false>(vals, cols, rowptr, m, b, c, n, j0, jv, accumulate);
        }
    }
}

__attribute__((target("avx2,fma"))) void row_sub_scaled_avx2(cplx* xi, const cplx* xk, cplx l,
                                                             std::size_t n) noexcept {
    const std::size_t n2 = n & ~std::size_t{1};
    const __m256d lr = _mm256_set1_pd(l.real());
    const __m256d li = _mm256_set1_pd(l.imag());
    auto* xd = reinterpret_cast<double*>(xi);
    const auto* kd = reinterpret_cast<const double*>(xk);
    for (std::size_t j = 0; j < n2; j += 2) {
        const __m256d v = _mm256_loadu_pd(kd + 2 * j);
        const __m256d swapped = _mm256_permute_pd(v, 0b0101);
        const __m256d prod = _mm256_fmaddsub_pd(v, lr, _mm256_mul_pd(swapped, li));
        _mm256_storeu_pd(xd + 2 * j, _mm256_sub_pd(_mm256_loadu_pd(xd + 2 * j), prod));
    }
    if (n2 != n) cfms(xi[n2], l, xk[n2]);
}

bool detect_avx2() noexcept {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#else

bool detect_avx2() noexcept { return false; }

#endif  // QOC_HAVE_AVX2_PATH

bool use_avx2() noexcept {
    static const bool available = detect_avx2();
    return available && !g_force_scalar;
}

}  // namespace

bool avx2_available() noexcept {
#if defined(QOC_HAVE_AVX2_PATH)
    static const bool available = detect_avx2();
    return available;
#else
    return false;
#endif
}

const char* kernel_name() noexcept { return use_avx2() ? "avx2-fma" : "scalar"; }

void force_scalar(bool on) noexcept { g_force_scalar = on; }

void gemm_raw(const cplx* a, const cplx* b, cplx* c, std::size_t m, std::size_t k,
              std::size_t n, bool accumulate) noexcept {
#if defined(QOC_HAVE_AVX2_PATH)
    if (use_avx2()) {
        gemm_raw_avx2(a, b, c, m, k, n, accumulate);
        return;
    }
#endif
    gemm_raw_scalar(a, b, c, m, k, n, accumulate);
}

void gemv_strided(const cplx* a, std::size_t n, const cplx* x, cplx* out,
                  std::size_t stride, bool accumulate) noexcept {
    // Strided columns defeat contiguous vector loads; the scalar replay is
    // the canonical arithmetic here, run through hardware fma when present.
#if defined(QOC_HAVE_AVX2_PATH)
    if (use_avx2()) {
        gemv_strided_hw(a, n, x, out, stride, accumulate);
        return;
    }
#endif
    gemv_strided_scalar(a, n, x, out, stride, accumulate);
}

void csr_gemv_strided(const cplx* vals, const int* cols, const int* rowptr,
                      std::size_t n_rows, const cplx* x, cplx* out, std::size_t stride,
                      bool accumulate) noexcept {
#if defined(QOC_HAVE_AVX2_PATH)
    if (use_avx2()) {
        csr_gemv_strided_hw(vals, cols, rowptr, n_rows, x, out, stride, accumulate);
        return;
    }
#endif
    csr_gemv_strided_scalar(vals, cols, rowptr, n_rows, x, out, stride, accumulate);
}

void csr_gemm_raw(const cplx* vals, const int* cols, const int* rowptr, std::size_t m,
                  const cplx* b, cplx* c, std::size_t n, bool accumulate) noexcept {
#if defined(QOC_HAVE_AVX2_PATH)
    if (use_avx2()) {
        csr_gemm_raw_avx2(vals, cols, rowptr, m, b, c, n, accumulate);
        return;
    }
#endif
    csr_gemm_raw_scalar(vals, cols, rowptr, m, b, c, n, accumulate);
}

void row_sub_scaled(cplx* xi, const cplx* xk, cplx l, std::size_t n) noexcept {
#if defined(QOC_HAVE_AVX2_PATH)
    if (use_avx2()) {
        row_sub_scaled_avx2(xi, xk, l, n);
        return;
    }
#endif
    row_sub_scaled_scalar(xi, xk, l, n);
}

void gemm_into(const Mat& a, const Mat& b, Mat& out) {
    if (a.cols() != b.rows()) throw std::invalid_argument("simd::gemm_into: shape mismatch");
    out.resize(a.rows(), b.cols());
    gemm_raw(a.data().data(), b.data().data(), out.data().data(), a.rows(), a.cols(),
             b.cols(), /*accumulate=*/false);
}

void gemm_acc(const Mat& a, const Mat& b, Mat& out) {
    if (a.cols() != b.rows() || out.rows() != a.rows() || out.cols() != b.cols()) {
        throw std::invalid_argument("simd::gemm_acc: shape mismatch");
    }
    gemm_raw(a.data().data(), b.data().data(), out.data().data(), a.rows(), a.cols(),
             b.cols(), /*accumulate=*/true);
}

}  // namespace qoc::linalg::simd
