#include "linalg/sparse.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/simd_kernels.hpp"

namespace qoc::linalg {

CsrMat CsrMat::from_dense(const Mat& dense, double threshold) {
    CsrMat m;
    m.rows_ = dense.rows();
    m.cols_ = dense.cols();
    m.rowptr_.reserve(m.rows_ + 1);
    m.rowptr_.push_back(0);
    for (std::size_t i = 0; i < m.rows_; ++i) {
        for (std::size_t j = 0; j < m.cols_; ++j) {
            const cplx v = dense(i, j);
            if (std::abs(v) > threshold) {
                m.vals_.push_back(v);
                m.cols_idx_.push_back(static_cast<int>(j));
            }
        }
        m.rowptr_.push_back(static_cast<int>(m.vals_.size()));
    }
    return m;
}

double CsrMat::fill_fraction() const noexcept {
    const std::size_t total = rows_ * cols_;
    if (total == 0) return 1.0;
    return static_cast<double>(nnz()) / static_cast<double>(total);
}

Mat CsrMat::to_dense() const {
    Mat dense(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (int idx = rowptr_[i]; idx < rowptr_[i + 1]; ++idx) {
            dense(i, static_cast<std::size_t>(cols_idx_[idx])) = vals_[idx];
        }
    }
    return dense;
}

void CsrMat::spmv_into(const Mat& x, Mat& out) const {
    if (x.cols() != 1 || x.rows() != cols_) {
        throw std::invalid_argument("CsrMat::spmv_into: shape mismatch");
    }
    out.resize(rows_, 1);
    simd::csr_gemv_strided(vals_.data(), cols_idx_.data(), rowptr_.data(), rows_,
                           x.data().data(), out.data().data(), /*stride=*/1,
                           /*accumulate=*/false);
}

void CsrMat::apply_col(const cplx* x, cplx* out, std::size_t stride) const noexcept {
    simd::csr_gemv_strided(vals_.data(), cols_idx_.data(), rowptr_.data(), rows_, x, out,
                           stride, /*accumulate=*/false);
}

void CsrMat::apply_batch_into(const Mat& b, Mat& out) const {
    if (b.rows() != cols_) throw std::invalid_argument("CsrMat::apply_batch_into: shape");
    out.resize(rows_, b.cols());
    simd::csr_gemm_raw(vals_.data(), cols_idx_.data(), rowptr_.data(), rows_,
                       b.data().data(), out.data().data(), b.cols(), /*accumulate=*/false);
}

}  // namespace qoc::linalg
