#include "linalg/expm.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "linalg/eig_hermitian.hpp"
#include "linalg/lu.hpp"

namespace qoc::linalg {

namespace {

/// Evaluates the order-m Pade approximant r_m(A) = q_m(A)^{-1} p_m(A) given
/// the coefficient table; even/odd splitting per Higham.
Mat pade_eval(const Mat& a, const double* b, int m) {
    const std::size_t n = a.rows();
    const Mat ident = Mat::identity(n);
    const Mat a2 = a * a;

    // U = A * (sum over odd coefficients), V = sum over even coefficients.
    Mat u_poly(n, n), v_poly(n, n);
    if (m == 13) {
        const Mat a4 = a2 * a2;
        const Mat a6 = a4 * a2;
        const Mat u_hi = a6 * (b[13] * a6 + b[11] * a4 + b[9] * a2);
        const Mat u_lo = b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * ident;
        u_poly = a * (u_hi + u_lo);
        const Mat v_hi = a6 * (b[12] * a6 + b[10] * a4 + b[8] * a2);
        v_poly = v_hi + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * ident;
    } else {
        // Orders 3, 5, 7, 9: direct Horner over powers of A^2.
        Mat a_pow = ident;
        Mat usum = b[1] * ident;
        Mat vsum = b[0] * ident;
        for (int k = 1; 2 * k <= m; ++k) {
            a_pow = a_pow * a2;
            usum += b[2 * k + 1] * a_pow;
            vsum += b[2 * k] * a_pow;
        }
        u_poly = a * usum;
        v_poly = vsum;
    }
    // r_m(A) = (V - U)^{-1} (V + U)
    return solve(v_poly - u_poly, v_poly + u_poly);
}

constexpr std::array<double, 4> kPade3 = {120.0, 60.0, 12.0, 1.0};
constexpr std::array<double, 6> kPade5 = {30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0};
constexpr std::array<double, 8> kPade7 = {17297280.0, 8648640.0, 1995840.0, 277200.0,
                                          25200.0,    1512.0,    56.0,      1.0};
constexpr std::array<double, 10> kPade9 = {17643225600.0, 8821612800.0, 2075673600.0,
                                           302702400.0,   30270240.0,   2162160.0,
                                           110880.0,      3960.0,       90.0,
                                           1.0};
constexpr std::array<double, 14> kPade13 = {64764752532480000.0,
                                            32382376266240000.0,
                                            7771770303897600.0,
                                            1187353796428800.0,
                                            129060195264000.0,
                                            10559470521600.0,
                                            670442572800.0,
                                            33522128640.0,
                                            1323241920.0,
                                            40840800.0,
                                            960960.0,
                                            16380.0,
                                            182.0,
                                            1.0};

// theta_m thresholds from Higham (2005), Table 2.3.
constexpr double kTheta3 = 1.495585217958292e-2;
constexpr double kTheta5 = 2.539398330063230e-1;
constexpr double kTheta7 = 9.504178996162932e-1;
constexpr double kTheta9 = 2.097847961257068e0;
constexpr double kTheta13 = 5.371920351148152e0;

}  // namespace

Mat expm(const Mat& a) {
    if (!a.is_square()) throw std::invalid_argument("expm: non-square matrix");
    const double nrm = a.norm_1();

    if (nrm <= kTheta3) return pade_eval(a, kPade3.data(), 3);
    if (nrm <= kTheta5) return pade_eval(a, kPade5.data(), 5);
    if (nrm <= kTheta7) return pade_eval(a, kPade7.data(), 7);
    if (nrm <= kTheta9) return pade_eval(a, kPade9.data(), 9);

    // Scaling and squaring with Pade 13.
    int s = 0;
    double scaled = nrm;
    while (scaled > kTheta13) {
        scaled *= 0.5;
        ++s;
    }
    Mat a_scaled = a;
    a_scaled *= std::ldexp(1.0, -s);
    Mat r = pade_eval(a_scaled, kPade13.data(), 13);
    for (int k = 0; k < s; ++k) r = r * r;
    return r;
}

std::pair<Mat, Mat> expm_frechet(const Mat& a, const Mat& e) {
    if (!a.is_square() || a.rows() != e.rows() || a.cols() != e.cols()) {
        throw std::invalid_argument("expm_frechet: shape mismatch");
    }
    const std::size_t n = a.rows();
    Mat aug(2 * n, 2 * n);
    aug.set_block(0, 0, a);
    aug.set_block(0, n, e);
    aug.set_block(n, n, a);
    const Mat big = expm(aug);
    return {big.block(0, 0, n, n), big.block(0, n, n, n)};
}

Mat expm_hermitian(const Mat& h, double t) {
    const EigH e = eig_hermitian(h);
    const std::size_t n = h.rows();
    Mat d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const double phi = -e.eigenvalues[i] * t;
        d(i, i) = cplx{std::cos(phi), std::sin(phi)};
    }
    return e.eigenvectors * d * e.eigenvectors.adjoint();
}

}  // namespace qoc::linalg
