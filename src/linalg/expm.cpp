#include "linalg/expm.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "linalg/eig_hermitian.hpp"
#include "linalg/lu.hpp"
#include "linalg/simd_kernels.hpp"
#include "obs/obs.hpp"

namespace qoc::linalg {

namespace {

constexpr cplx kI{0.0, 1.0};

constexpr std::array<double, 4> kPade3 = {120.0, 60.0, 12.0, 1.0};
constexpr std::array<double, 6> kPade5 = {30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0};
constexpr std::array<double, 8> kPade7 = {17297280.0, 8648640.0, 1995840.0, 277200.0,
                                          25200.0,    1512.0,    56.0,      1.0};
constexpr std::array<double, 10> kPade9 = {17643225600.0, 8821612800.0, 2075673600.0,
                                           302702400.0,   30270240.0,   2162160.0,
                                           110880.0,      3960.0,       90.0,
                                           1.0};
constexpr std::array<double, 14> kPade13 = {64764752532480000.0,
                                            32382376266240000.0,
                                            7771770303897600.0,
                                            1187353796428800.0,
                                            129060195264000.0,
                                            10559470521600.0,
                                            670442572800.0,
                                            33522128640.0,
                                            1323241920.0,
                                            40840800.0,
                                            960960.0,
                                            16380.0,
                                            182.0,
                                            1.0};

// theta_m thresholds from Higham (2005), Table 2.3.
constexpr double kTheta3 = 1.495585217958292e-2;
constexpr double kTheta5 = 2.539398330063230e-1;
constexpr double kTheta7 = 9.504178996162932e-1;
constexpr double kTheta9 = 2.097847961257068e0;
constexpr double kTheta13 = 5.371920351148152e0;

/// Evaluates the order-m Pade approximant r_m(A) = q_m(A)^{-1} p_m(A) given
/// the coefficient table; even/odd splitting per Higham.
Mat pade_eval(const Mat& a, const double* b, int m) {
    const std::size_t n = a.rows();
    const Mat ident = Mat::identity(n);
    const Mat a2 = a * a;

    // U = A * (sum over odd coefficients), V = sum over even coefficients.
    Mat u_poly(n, n), v_poly(n, n);
    if (m == 13) {
        const Mat a4 = a2 * a2;
        const Mat a6 = a4 * a2;
        const Mat u_hi = a6 * (b[13] * a6 + b[11] * a4 + b[9] * a2);
        const Mat u_lo = b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * ident;
        u_poly = a * (u_hi + u_lo);
        const Mat v_hi = a6 * (b[12] * a6 + b[10] * a4 + b[8] * a2);
        v_poly = v_hi + b[6] * a6 + b[4] * a4 + b[2] * a2 + b[0] * ident;
    } else {
        // Orders 3, 5, 7, 9: direct Horner over powers of A^2.
        Mat a_pow = ident;
        Mat usum = b[1] * ident;
        Mat vsum = b[0] * ident;
        for (int k = 1; 2 * k <= m; ++k) {
            a_pow = a_pow * a2;
            usum += b[2 * k + 1] * a_pow;
            vsum += b[2 * k] * a_pow;
        }
        u_poly = a * usum;
        v_poly = vsum;
    }
    // r_m(A) = (V - U)^{-1} (V + U)
    return solve(v_poly - u_poly, v_poly + u_poly);
}

const double* pade_table(int m) {
    switch (m) {
        case 3: return kPade3.data();
        case 5: return kPade5.data();
        case 7: return kPade7.data();
        case 9: return kPade9.data();
        default: return kPade13.data();
    }
}

/// Picks the Pade order for `nrm = ||A||_1` and, for order 13, the number of
/// scaling steps `s` such that ||A / 2^s||_1 <= theta_13.
int choose_pade_order(double nrm, int& s) {
    s = 0;
    if (nrm <= kTheta3) return 3;
    if (nrm <= kTheta5) return 5;
    if (nrm <= kTheta7) return 7;
    if (nrm <= kTheta9) return 9;
    double scaled = nrm;
    while (scaled > kTheta13) {
        scaled *= 0.5;
        ++s;
    }
    return 13;
}

/// True when `A = -iS` for a Hermitian S, i.e. a(j,i) == -conj(a(i,j))
/// within roundoff of the largest entry.  Closed-system GRAPE slot
/// exponents `-i dt H` satisfy this exactly.
bool is_anti_hermitian(const Mat& a, double tol) {
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = i; j < a.cols(); ++j)
            if (std::abs(a(i, j) + std::conj(a(j, i))) > tol) return false;
    return true;
}

/// `m += c * I`.
void add_diag(Mat& m, double c) {
    for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += cplx{c, 0.0};
}

/// `out = c * x`, reusing out's storage.
void set_scaled(Mat& out, const Mat& x, double c) {
    out = x;
    out *= c;
}

/// Shared-Pade multi-direction Frechet core (see expm.hpp).  With
/// `n_dirs == 0` this is a plain workspace expm.
void pade_frechet_multi(const Mat& a, const Mat* dirs, std::size_t n_dirs, Mat& exp_out,
                        Mat* frechet_out, ExpmWorkspace& ws) {
    // Every gemm and triangular solve below goes through one of these three
    // dispatchers; ws.use_simd_kernels swaps the whole Pade path onto the
    // fma-contracted simd kernel family in one place (see expm.hpp).
    const bool use_simd = ws.use_simd_kernels;
    const auto mul_into = [use_simd](const Mat& x, const Mat& y, Mat& o) {
        if (use_simd) {
            simd::gemm_into(x, y, o);
        } else {
            gemm_into(x, y, o);
        }
    };
    const auto mul_acc = [use_simd](const Mat& x, const Mat& y, Mat& o) {
        if (use_simd) {
            simd::gemm_acc(x, y, o);
        } else {
            gemm_acc(x, y, o);
        }
    };
    const auto lu_solve = [use_simd](const Lu& f, const Mat& rhs, Mat& x) {
        if (use_simd) {
            f.solve_into_simd(rhs, x);
        } else {
            f.solve_into(rhs, x);
        }
    };
    const std::size_t n = a.rows();
    int s = 0;
    const int m = choose_pade_order(a.norm_1(), s);
    switch (m) {
        case 3: obs::count(obs::Cnt::kExpmPade3); break;
        case 5: obs::count(obs::Cnt::kExpmPade5); break;
        case 7: obs::count(obs::Cnt::kExpmPade7); break;
        case 9: obs::count(obs::Cnt::kExpmPade9); break;
        default: obs::count(obs::Cnt::kExpmPade13); break;
    }
    const double sf = std::ldexp(1.0, -s);
    const double* b = pade_table(m);

    ws.as = a;
    if (s > 0) ws.as *= sf;
    const Mat& as = ws.as;

    // Shared even powers: pows[k] = As^{2k}.  Order 13 needs A^2/A^4/A^6 for
    // the factored polynomials; orders 3..9 need A^2 .. A^{m-1} directly.
    const std::size_t kmax = (m == 13) ? 3 : static_cast<std::size_t>(m - 1) / 2;
    if (ws.pows.size() < kmax + 1) ws.pows.resize(kmax + 1);
    mul_into(as, as, ws.pows[1]);
    for (std::size_t k = 2; k <= kmax; ++k) mul_into(ws.pows[k - 1], ws.pows[1], ws.pows[k]);

    // Shared U = A * (odd poly), V = even poly.
    if (m == 13) {
        const Mat& a2 = ws.pows[1];
        const Mat& a4 = ws.pows[2];
        const Mat& a6 = ws.pows[3];
        // w1 = b13 A6 + b11 A4 + b9 A2 ; w = A6 w1 + b7 A6 + b5 A4 + b3 A2 + b1 I
        set_scaled(ws.w1, a6, b[13]);
        add_scaled(ws.w1, cplx{b[11]}, a4);
        add_scaled(ws.w1, cplx{b[9]}, a2);
        mul_into(a6, ws.w1, ws.w);
        add_scaled(ws.w, cplx{b[7]}, a6);
        add_scaled(ws.w, cplx{b[5]}, a4);
        add_scaled(ws.w, cplx{b[3]}, a2);
        add_diag(ws.w, b[1]);
        mul_into(as, ws.w, ws.u);
        // z1 = b12 A6 + b10 A4 + b8 A2 ; V = A6 z1 + b6 A6 + b4 A4 + b2 A2 + b0 I
        set_scaled(ws.z1, a6, b[12]);
        add_scaled(ws.z1, cplx{b[10]}, a4);
        add_scaled(ws.z1, cplx{b[8]}, a2);
        mul_into(a6, ws.z1, ws.v);
        add_scaled(ws.v, cplx{b[6]}, a6);
        add_scaled(ws.v, cplx{b[4]}, a4);
        add_scaled(ws.v, cplx{b[2]}, a2);
        add_diag(ws.v, b[0]);
    } else {
        ws.usum.resize(n, n);
        ws.v.resize(n, n);
        add_diag(ws.usum, b[1]);
        add_diag(ws.v, b[0]);
        for (std::size_t k = 1; k <= kmax; ++k) {
            add_scaled(ws.usum, cplx{b[2 * k + 1]}, ws.pows[k]);
            add_scaled(ws.v, cplx{b[2 * k]}, ws.pows[k]);
        }
        mul_into(as, ws.usum, ws.u);
    }

    // r = (V - U)^{-1} (V + U); one LU shared by every direction.
    ws.t1 = ws.v;
    ws.t1 -= ws.u;
    ws.t2 = ws.v;
    ws.t2 += ws.u;
    ws.fact.factor(ws.t1);
    lu_solve(ws.fact, ws.t2, ws.r);

    // Per-direction derivative polynomials against the shared intermediates.
    for (std::size_t d = 0; d < n_dirs; ++d) {
        ws.es = dirs[d];
        if (s > 0) ws.es *= sf;
        const Mat& es = ws.es;
        // M2 = A E + E A (all in the scaled variables).
        mul_into(as, es, ws.m2);
        mul_acc(es, as, ws.m2);
        if (m == 13) {
            const Mat& a2 = ws.pows[1];
            const Mat& a4 = ws.pows[2];
            const Mat& a6 = ws.pows[3];
            // M4 = A2 M2 + M2 A2 ; M6 = M4 A2 + A4 M2.
            mul_into(a2, ws.m2, ws.m4);
            mul_acc(ws.m2, a2, ws.m4);
            mul_into(ws.m4, a2, ws.m6);
            mul_acc(a4, ws.m2, ws.m6);
            // Lu = A*(M6 w1 + A6 (b13 M6 + b11 M4 + b9 M2)
            //         + b7 M6 + b5 M4 + b3 M2) + E*w
            set_scaled(ws.lw1, ws.m6, b[13]);
            add_scaled(ws.lw1, cplx{b[11]}, ws.m4);
            add_scaled(ws.lw1, cplx{b[9]}, ws.m2);
            mul_into(ws.m6, ws.w1, ws.lw);
            mul_acc(a6, ws.lw1, ws.lw);
            add_scaled(ws.lw, cplx{b[7]}, ws.m6);
            add_scaled(ws.lw, cplx{b[5]}, ws.m4);
            add_scaled(ws.lw, cplx{b[3]}, ws.m2);
            mul_into(as, ws.lw, ws.lu_m);
            mul_acc(es, ws.w, ws.lu_m);
            // Lv = M6 z1 + A6 (b12 M6 + b10 M4 + b8 M2) + b6 M6 + b4 M4 + b2 M2
            set_scaled(ws.lw1, ws.m6, b[12]);
            add_scaled(ws.lw1, cplx{b[10]}, ws.m4);
            add_scaled(ws.lw1, cplx{b[8]}, ws.m2);
            mul_into(ws.m6, ws.z1, ws.lv_m);
            mul_acc(a6, ws.lw1, ws.lv_m);
            add_scaled(ws.lv_m, cplx{b[6]}, ws.m6);
            add_scaled(ws.lv_m, cplx{b[4]}, ws.m4);
            add_scaled(ws.lv_m, cplx{b[2]}, ws.m2);
        } else {
            // M_{2k} = M_{2(k-1)} A2 + A^{2(k-1)} M2, accumulated into the
            // odd/even derivative sums.
            ws.lusum.resize(n, n);
            ws.lv_m.resize(n, n);
            for (std::size_t k = 1; k <= kmax; ++k) {
                if (k == 1) {
                    ws.mcur = ws.m2;
                } else {
                    mul_into(ws.mprev, ws.pows[1], ws.mcur);
                    mul_acc(ws.pows[k - 1], ws.m2, ws.mcur);
                }
                add_scaled(ws.lusum, cplx{b[2 * k + 1]}, ws.mcur);
                add_scaled(ws.lv_m, cplx{b[2 * k]}, ws.mcur);
                std::swap(ws.mprev, ws.mcur);
            }
            // Lu = E * usum + A * lusum.
            mul_into(es, ws.usum, ws.lu_m);
            mul_acc(as, ws.lusum, ws.lu_m);
        }
        // (V - U) L = Lu + Lv - (Lv - Lu) r, reusing the shared LU.
        ws.t2 = ws.lv_m;
        ws.t2 -= ws.lu_m;
        ws.rhs = ws.lu_m;
        ws.rhs += ws.lv_m;
        mul_into(ws.t2, ws.r, ws.t1);
        ws.rhs -= ws.t1;
        lu_solve(ws.fact, ws.rhs, frechet_out[d]);
    }

    // Squaring phase: L <- rL + Lr for every direction, then r <- r^2.
    for (int step = 0; step < s; ++step) {
        for (std::size_t d = 0; d < n_dirs; ++d) {
            mul_into(ws.r, frechet_out[d], ws.t1);
            mul_acc(frechet_out[d], ws.r, ws.t1);
            std::swap(frechet_out[d], ws.t1);
        }
        mul_into(ws.r, ws.r, ws.t1);
        std::swap(ws.r, ws.t1);
    }
    exp_out = ws.r;
}

/// Daleckii-Krein spectral path for anti-Hermitian A = -iS (see expm.hpp).
void spectral_frechet_multi(const Mat& a, const Mat* dirs, std::size_t n_dirs, Mat& exp_out,
                            Mat* frechet_out, ExpmWorkspace& ws) {
    obs::count(obs::Cnt::kExpmSpectral);
    const std::size_t n = a.rows();
    ws.t1 = a;
    ws.t1 *= kI;  // S = iA, Hermitian
    eig_hermitian_into(ws.t1, ws.evals, ws.evec, ws.ework);
    const Mat& vec = ws.evec;
    const std::vector<double>& lam = ws.evals;

    ws.vt.resize(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) ws.vt(i, j) = std::conj(vec(j, i));

    // e^A = V diag(e^{-i lam}) V^dag.
    ws.phases.resize(n);
    for (std::size_t i = 0; i < n; ++i) ws.phases[i] = cplx{std::cos(lam[i]), -std::sin(lam[i])};
    ws.t2.resize(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) ws.t2(i, j) = vec(i, j) * ws.phases[j];
    gemm_into(ws.t2, ws.vt, exp_out);

    for (std::size_t d = 0; d < n_dirs; ++d) {
        // G = V^dag E V, then the divided-difference Hadamard product
        // Phi_kl = e^{-i (lam_k + lam_l)/2} sinc((lam_k - lam_l)/2).
        gemm_into(ws.vt, dirs[d], ws.t1);
        gemm_into(ws.t1, vec, ws.g);
        for (std::size_t k = 0; k < n; ++k) {
            for (std::size_t l = 0; l < n; ++l) {
                const double half_diff = 0.5 * (lam[k] - lam[l]);
                const double mid = 0.5 * (lam[k] + lam[l]);
                // sin(x)/x is cancellation-free; the series guard only
                // covers the exact-degeneracy limit.
                const double sinc = (std::abs(half_diff) < 1e-9)
                                        ? 1.0 - half_diff * half_diff / 6.0
                                        : std::sin(half_diff) / half_diff;
                ws.g(k, l) *= cplx{std::cos(mid), -std::sin(mid)} * sinc;
            }
        }
        gemm_into(vec, ws.g, ws.t1);
        gemm_into(ws.t1, ws.vt, frechet_out[d]);
    }
}

}  // namespace

Mat expm(const Mat& a) {
    if (!a.is_square()) throw std::invalid_argument("expm: non-square matrix");
    const double nrm = a.norm_1();

    if (nrm <= kTheta3) return pade_eval(a, kPade3.data(), 3);
    if (nrm <= kTheta5) return pade_eval(a, kPade5.data(), 5);
    if (nrm <= kTheta7) return pade_eval(a, kPade7.data(), 7);
    if (nrm <= kTheta9) return pade_eval(a, kPade9.data(), 9);

    // Scaling and squaring with Pade 13.
    int s = 0;
    double scaled = nrm;
    while (scaled > kTheta13) {
        scaled *= 0.5;
        ++s;
    }
    Mat a_scaled = a;
    a_scaled *= std::ldexp(1.0, -s);
    Mat r = pade_eval(a_scaled, kPade13.data(), 13);
    for (int k = 0; k < s; ++k) r = r * r;
    return r;
}

std::pair<Mat, Mat> expm_frechet(const Mat& a, const Mat& e) {
    if (!a.is_square() || a.rows() != e.rows() || a.cols() != e.cols()) {
        throw std::invalid_argument("expm_frechet: shape mismatch");
    }
    const std::size_t n = a.rows();
    Mat aug(2 * n, 2 * n);
    aug.set_block(0, 0, a);
    aug.set_block(0, n, e);
    aug.set_block(n, n, a);
    const Mat big = expm(aug);
    return {big.block(0, 0, n, n), big.block(0, n, n, n)};
}

Mat expm_hermitian(const Mat& h, double t) {
    const EigH e = eig_hermitian(h);
    const std::size_t n = h.rows();
    Mat d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const double phi = -e.eigenvalues[i] * t;
        d(i, i) = cplx{std::cos(phi), std::sin(phi)};
    }
    return e.eigenvectors * d * e.eigenvectors.adjoint();
}

void expm_frechet_multi(const Mat& a, const Mat* dirs, std::size_t n_dirs, Mat& exp_out,
                        Mat* frechet_out, ExpmWorkspace& ws, ExpmMethod method) {
    if (!a.is_square()) throw std::invalid_argument("expm_frechet_multi: non-square matrix");
    for (std::size_t d = 0; d < n_dirs; ++d) {
        if (dirs[d].rows() != a.rows() || dirs[d].cols() != a.cols()) {
            throw std::invalid_argument("expm_frechet_multi: direction shape mismatch");
        }
    }
    assert(n_dirs == 0 || frechet_out != nullptr);
    if (method == ExpmMethod::kAuto) {
        const double tol = 1e-12 * std::max(1.0, a.max_abs());
        method = is_anti_hermitian(a, tol) ? ExpmMethod::kSpectral : ExpmMethod::kPade;
    }
    if (method == ExpmMethod::kSpectral) {
        spectral_frechet_multi(a, dirs, n_dirs, exp_out, frechet_out, ws);
    } else {
        pade_frechet_multi(a, dirs, n_dirs, exp_out, frechet_out, ws);
    }
}

std::pair<Mat, std::vector<Mat>> expm_frechet_multi(const Mat& a, const std::vector<Mat>& dirs,
                                                    ExpmMethod method) {
    ExpmWorkspace ws;
    std::pair<Mat, std::vector<Mat>> out;
    out.second.resize(dirs.size());
    expm_frechet_multi(a, dirs.data(), dirs.size(), out.first, out.second.data(), ws, method);
    return out;
}

void expm_into(const Mat& a, Mat& out, ExpmWorkspace& ws, ExpmMethod method) {
    expm_frechet_multi(a, nullptr, 0, out, nullptr, ws, method);
}

}  // namespace qoc::linalg
