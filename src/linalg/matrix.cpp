#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/obs.hpp"

namespace qoc::linalg {

Mat::Mat(std::initializer_list<std::initializer_list<cplx>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
        if (row.size() != cols_) {
            throw std::invalid_argument("Mat: ragged initializer rows");
        }
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Mat::Mat(std::size_t rows, std::size_t cols, std::vector<cplx> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
    if (data_.size() != rows_ * cols_) {
        throw std::invalid_argument("Mat: value count does not match shape");
    }
}

Mat Mat::identity(std::size_t n) {
    Mat m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
    return m;
}

Mat Mat::col_vector(std::vector<cplx> entries) {
    const std::size_t n = entries.size();
    return Mat(n, 1, std::move(entries));
}

void Mat::resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, cplx{0.0, 0.0});
}

void Mat::set_zero() {
    std::fill(data_.begin(), data_.end(), cplx{0.0, 0.0});
}

Mat Mat::diag(const std::vector<cplx>& entries) {
    Mat m(entries.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
    return m;
}

cplx& Mat::at(std::size_t i, std::size_t j) {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Mat::at");
    return data_[i * cols_ + j];
}

const cplx& Mat::at(std::size_t i, std::size_t j) const {
    if (i >= rows_ || j >= cols_) throw std::out_of_range("Mat::at");
    return data_[i * cols_ + j];
}

Mat& Mat::operator+=(const Mat& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("Mat::operator+=: shape mismatch");
    }
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
    return *this;
}

Mat& Mat::operator-=(const Mat& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("Mat::operator-=: shape mismatch");
    }
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
    return *this;
}

Mat& Mat::operator*=(cplx scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
}

Mat& Mat::operator*=(double scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
}

Mat Mat::adjoint() const {
    Mat out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

Mat Mat::transpose() const {
    Mat out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
}

Mat Mat::conj() const {
    Mat out = *this;
    for (auto& v : out.data_) v = std::conj(v);
    return out;
}

cplx Mat::trace() const {
    if (!is_square()) throw std::invalid_argument("Mat::trace: non-square");
    cplx t{0.0, 0.0};
    for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
    return t;
}

double Mat::frobenius_norm() const {
    double s = 0.0;
    for (const auto& v : data_) s += std::norm(v);
    return std::sqrt(s);
}

double Mat::max_abs() const {
    double m = 0.0;
    for (const auto& v : data_) m = std::max(m, std::abs(v));
    return m;
}

double Mat::norm_1() const {
    double best = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
        double colsum = 0.0;
        for (std::size_t i = 0; i < rows_; ++i) colsum += std::abs((*this)(i, j));
        best = std::max(best, colsum);
    }
    return best;
}

bool Mat::is_hermitian(double tol) const {
    if (!is_square()) return false;
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = i; j < cols_; ++j)
            if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol) return false;
    return true;
}

bool Mat::is_unitary(double tol) const {
    if (!is_square()) return false;
    const Mat res = adjoint_times(*this, *this) - Mat::identity(rows_);
    return res.max_abs() <= tol;
}

bool Mat::approx_equal(const Mat& rhs, double tol) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
    for (std::size_t k = 0; k < data_.size(); ++k)
        if (std::abs(data_[k] - rhs.data_[k]) > tol) return false;
    return true;
}

Mat Mat::block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
    if (r0 + nr > rows_ || c0 + nc > cols_) throw std::out_of_range("Mat::block");
    Mat out(nr, nc);
    for (std::size_t i = 0; i < nr; ++i)
        for (std::size_t j = 0; j < nc; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
    return out;
}

void Mat::set_block(std::size_t r0, std::size_t c0, const Mat& b) {
    if (r0 + b.rows() > rows_ || c0 + b.cols() > cols_) throw std::out_of_range("Mat::set_block");
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) (*this)(r0 + i, c0 + j) = b(i, j);
}

Mat Mat::col(std::size_t j) const { return block(0, j, rows_, 1); }
Mat Mat::row(std::size_t i) const { return block(i, 0, 1, cols_); }

Mat operator+(Mat lhs, const Mat& rhs) {
    lhs += rhs;
    return lhs;
}

Mat operator-(Mat lhs, const Mat& rhs) {
    lhs -= rhs;
    return lhs;
}

Mat operator-(const Mat& m) {
    Mat out = m;
    for (auto& v : out.data()) v = -v;
    return out;
}

Mat operator*(Mat m, cplx scalar) {
    m *= scalar;
    return m;
}

Mat operator*(cplx scalar, Mat m) {
    m *= scalar;
    return m;
}

Mat operator*(Mat m, double scalar) {
    m *= scalar;
    return m;
}

Mat operator*(double scalar, Mat m) {
    m *= scalar;
    return m;
}

Mat operator*(const Mat& a, const Mat& b) {
    if (a.cols() != b.rows()) throw std::invalid_argument("Mat product: shape mismatch");
    const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
    Mat out(n, m);
    // i-k-j loop order keeps the inner loop contiguous over both b and out.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const cplx aip = a(i, p);
            if (aip == cplx{0.0, 0.0}) continue;
            const cplx* brow = &b.data()[p * m];
            cplx* orow = &out.data()[i * m];
            for (std::size_t j = 0; j < m; ++j) orow[j] += aip * brow[j];
        }
    }
    return out;
}

Mat adjoint_times(const Mat& a, const Mat& b) {
    if (a.rows() != b.rows()) throw std::invalid_argument("adjoint_times: shape mismatch");
    const std::size_t n = a.cols(), k = a.rows(), m = b.cols();
    Mat out(n, m);
    for (std::size_t p = 0; p < k; ++p) {
        const cplx* arow = &a.data()[p * n];
        const cplx* brow = &b.data()[p * m];
        for (std::size_t i = 0; i < n; ++i) {
            const cplx w = std::conj(arow[i]);
            cplx* orow = &out.data()[i * m];
            for (std::size_t j = 0; j < m; ++j) orow[j] += w * brow[j];
        }
    }
    return out;
}

namespace {
/// Panel width of the k-dimension blocking in gemm_into/gemm_acc: 64 rows of
/// b (64 * 162 entries * 16 B ~ 166 KB worst case, ~8 KB at GRAPE sizes)
/// stay cache-resident while every row of `out` accumulates against them.
constexpr std::size_t kGemmBlock = 64;

void gemm_accumulate(const Mat& a, const Mat& b, Mat& out) {
    obs::count(obs::Cnt::kGemmCalls);
    const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
    for (std::size_t pp = 0; pp < k; pp += kGemmBlock) {
        const std::size_t pend = std::min(pp + kGemmBlock, k);
        for (std::size_t i = 0; i < n; ++i) {
            const cplx* arow = &a.data()[i * k];
            cplx* orow = &out.data()[i * m];
            for (std::size_t p = pp; p < pend; ++p) {
                const cplx aip = arow[p];
                if (aip == cplx{0.0, 0.0}) continue;
                const cplx* brow = &b.data()[p * m];
                for (std::size_t j = 0; j < m; ++j) orow[j] += aip * brow[j];
            }
        }
    }
}
}  // namespace

void gemm_into(const Mat& a, const Mat& b, Mat& out) {
    if (a.cols() != b.rows()) throw std::invalid_argument("gemm_into: shape mismatch");
    assert(&out != &a && &out != &b);
    out.resize(a.rows(), b.cols());
    gemm_accumulate(a, b, out);
}

void gemm_acc(const Mat& a, const Mat& b, Mat& out) {
    if (a.cols() != b.rows() || out.rows() != a.rows() || out.cols() != b.cols()) {
        throw std::invalid_argument("gemm_acc: shape mismatch");
    }
    assert(&out != &a && &out != &b);
    gemm_accumulate(a, b, out);
}

void gemv_into(const Mat& a, const Mat& x, Mat& out) {
    if (x.cols() != 1 || a.cols() != x.rows()) {
        throw std::invalid_argument("gemv_into: shape mismatch");
    }
    assert(&out != &a && &out != &x);
    obs::count(obs::Cnt::kGemvCalls);
    const std::size_t n = a.rows(), k = a.cols();
    out.resize(n, 1);
    const cplx* xv = x.data().data();
    for (std::size_t i = 0; i < n; ++i) {
        const cplx* arow = &a.data()[i * k];
        cplx acc{0.0, 0.0};
        for (std::size_t j = 0; j < k; ++j) acc += arow[j] * xv[j];
        out.data()[i] = acc;
    }
}

void adjoint_times_into(const Mat& a, const Mat& b, Mat& out) {
    if (a.rows() != b.rows()) throw std::invalid_argument("adjoint_times_into: shape mismatch");
    assert(&out != &a && &out != &b);
    obs::count(obs::Cnt::kGemmCalls);
    const std::size_t n = a.cols(), k = a.rows(), m = b.cols();
    out.resize(n, m);
    for (std::size_t p = 0; p < k; ++p) {
        const cplx* arow = &a.data()[p * n];
        const cplx* brow = &b.data()[p * m];
        for (std::size_t i = 0; i < n; ++i) {
            const cplx w = std::conj(arow[i]);
            cplx* orow = &out.data()[i * m];
            for (std::size_t j = 0; j < m; ++j) orow[j] += w * brow[j];
        }
    }
}

void add_scaled(Mat& y, cplx alpha, const Mat& x) {
    if (y.rows() != x.rows() || y.cols() != x.cols()) {
        throw std::invalid_argument("add_scaled: shape mismatch");
    }
    for (std::size_t i = 0; i < y.data().size(); ++i) y.data()[i] += alpha * x.data()[i];
}

cplx trace_of_product(const Mat& a, const Mat& b) {
    if (a.cols() != b.rows() || a.rows() != b.cols()) {
        throw std::invalid_argument("trace_of_product: shape mismatch");
    }
    const std::size_t n = a.rows(), k = a.cols();
    cplx t{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
        const cplx* arow = &a.data()[i * k];
        for (std::size_t j = 0; j < k; ++j) t += arow[j] * b(j, i);
    }
    return t;
}

cplx hs_inner(const Mat& a, const Mat& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument("hs_inner: shape mismatch");
    }
    cplx s{0.0, 0.0};
    for (std::size_t k = 0; k < a.data().size(); ++k) s += std::conj(a.data()[k]) * b.data()[k];
    return s;
}

Mat commutator(const Mat& a, const Mat& b) { return a * b - b * a; }
Mat anticommutator(const Mat& a, const Mat& b) { return a * b + b * a; }

std::ostream& operator<<(std::ostream& os, const Mat& m) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
        os << (i == 0 ? "[[" : " [");
        for (std::size_t j = 0; j < m.cols(); ++j) {
            const cplx v = m(i, j);
            os << v.real();
            if (v.imag() >= 0) os << "+";
            os << v.imag() << "j";
            if (j + 1 < m.cols()) os << ", ";
        }
        os << (i + 1 == m.rows() ? "]]" : "]\n");
    }
    return os;
}

bool equal_up_to_phase(const Mat& a, const Mat& b, double tol) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    // Use the largest entry of b as phase reference to avoid dividing by ~0.
    std::size_t kmax = 0;
    double vmax = 0.0;
    for (std::size_t k = 0; k < b.data().size(); ++k) {
        const double v = std::abs(b.data()[k]);
        if (v > vmax) {
            vmax = v;
            kmax = k;
        }
    }
    if (vmax < tol) return a.max_abs() < tol;
    const cplx phase = a.data()[kmax] / b.data()[kmax];
    if (std::abs(std::abs(phase) - 1.0) > tol) return false;
    for (std::size_t k = 0; k < a.data().size(); ++k)
        if (std::abs(a.data()[k] - phase * b.data()[k]) > tol) return false;
    return true;
}

}  // namespace qoc::linalg
