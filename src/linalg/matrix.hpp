/// \file matrix.hpp
/// \brief Dense complex matrix type used throughout qoc.
///
/// Quantum-control workloads in this library manipulate small dense complex
/// matrices (Hamiltonians up to ~9x9, Liouvillian superoperators up to
/// ~81x81, Van Loan augmented blocks up to ~162x162).  A purpose-built dense
/// type with value semantics keeps the numerics transparent and dependency
/// free; throughput-critical parallelism lives at the ensemble level
/// (randomized-benchmarking sequences, parameter sweeps), not inside these
/// kernels.

#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>
#include <vector>

namespace qoc::linalg {

using cplx = std::complex<double>;

/// Dense row-major complex matrix with value semantics.
///
/// Invariants: `data().size() == rows() * cols()`.  A default-constructed
/// matrix is the unique 0x0 empty matrix.
class Mat {
public:
    /// Creates the empty 0x0 matrix.
    Mat() = default;

    /// Creates a `rows` x `cols` matrix of zeros.
    Mat(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

    /// Creates a matrix from a nested brace list, e.g. `Mat{{{1,0},{0,1}}}`.
    /// Throws `std::invalid_argument` on ragged rows.
    Mat(std::initializer_list<std::initializer_list<cplx>> init);

    /// Builds a `rows` x `cols` matrix wrapping `values` (row-major).
    /// Throws `std::invalid_argument` on size mismatch.
    Mat(std::size_t rows, std::size_t cols, std::vector<cplx> values);

    /// The `n` x `n` identity.
    static Mat identity(std::size_t n);

    /// A `rows` x `cols` matrix of zeros (alias of the size constructor,
    /// kept for call-site readability).
    static Mat zeros(std::size_t rows, std::size_t cols) { return Mat(rows, cols); }

    /// Column vector from entries.
    static Mat col_vector(std::vector<cplx> entries);

    /// Reshapes to `rows` x `cols` and zero-fills.  Reuses the existing
    /// allocation whenever the new size fits the current capacity, which is
    /// what makes the `*_into` kernels below allocation-free on reuse.
    void resize(std::size_t rows, std::size_t cols);

    /// Sets every entry to zero without changing the shape.
    void set_zero();

    /// Diagonal matrix from entries.
    static Mat diag(const std::vector<cplx>& entries);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    std::size_t size() const noexcept { return data_.size(); }
    bool empty() const noexcept { return data_.empty(); }
    bool is_square() const noexcept { return rows_ == cols_; }

    cplx& operator()(std::size_t i, std::size_t j) {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }
    const cplx& operator()(std::size_t i, std::size_t j) const {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }

    /// Bounds-checked access; throws `std::out_of_range`.
    cplx& at(std::size_t i, std::size_t j);
    const cplx& at(std::size_t i, std::size_t j) const;

    std::vector<cplx>& data() noexcept { return data_; }
    const std::vector<cplx>& data() const noexcept { return data_; }

    // --- in-place arithmetic -------------------------------------------------
    Mat& operator+=(const Mat& rhs);
    Mat& operator-=(const Mat& rhs);
    Mat& operator*=(cplx scalar);
    Mat& operator*=(double scalar);

    // --- structural transforms ----------------------------------------------
    /// Conjugate transpose (dagger).
    Mat adjoint() const;
    /// Plain transpose.
    Mat transpose() const;
    /// Element-wise complex conjugate.
    Mat conj() const;

    /// Sum of diagonal entries.  Requires a square matrix.
    cplx trace() const;

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    double frobenius_norm() const;

    /// Largest entry magnitude (max norm).
    double max_abs() const;

    /// Induced 1-norm (max absolute column sum); used by expm scaling.
    double norm_1() const;

    /// True when `|a_ij - a_ji^*| <= tol` for all entries.
    bool is_hermitian(double tol = 1e-12) const;

    /// True when `A^dagger A = I` within `tol` (max-abs of the residual).
    bool is_unitary(double tol = 1e-10) const;

    /// True when all entries of `this - rhs` have magnitude <= tol.
    bool approx_equal(const Mat& rhs, double tol = 1e-12) const;

    /// Extracts the contiguous block of shape `nr` x `nc` at `(r0, c0)`.
    Mat block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const;

    /// Writes `b` into this matrix at offset `(r0, c0)`.
    void set_block(std::size_t r0, std::size_t c0, const Mat& b);

    /// Column `j` as a column vector.
    Mat col(std::size_t j) const;
    /// Row `i` as a row vector.
    Mat row(std::size_t i) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<cplx> data_;
};

// --- free arithmetic ---------------------------------------------------------
Mat operator+(Mat lhs, const Mat& rhs);
Mat operator-(Mat lhs, const Mat& rhs);
Mat operator-(const Mat& m);
Mat operator*(Mat m, cplx scalar);
Mat operator*(cplx scalar, Mat m);
Mat operator*(Mat m, double scalar);
Mat operator*(double scalar, Mat m);

/// Matrix product; throws `std::invalid_argument` on shape mismatch.
Mat operator*(const Mat& a, const Mat& b);

/// `a^dagger * b` without forming the adjoint.
Mat adjoint_times(const Mat& a, const Mat& b);

// --- allocation-free kernels -------------------------------------------------
//
// The `*_into` family writes results into caller-owned matrices, resizing
// them in place (no allocation once the destination has seen the shape).
// Destinations must not alias the inputs.  These are the building blocks of
// the GRAPE evaluator workspace and the shared-Pade Frechet engine, where
// the same scratch matrices are recycled across thousands of objective
// evaluations.

/// `out = a * b` with a cache-blocked inner loop.  `out` must not alias
/// `a` or `b`; it is resized (allocation-free on shape reuse).
void gemm_into(const Mat& a, const Mat& b, Mat& out);

/// `out += a * b`.  Shapes must already agree; `out` must not alias inputs.
void gemm_acc(const Mat& a, const Mat& b, Mat& out);

/// `out = a * x` for a column vector `x` (n x 1): the O(n^2) matrix-vector
/// product.  This is the propagation kernel of the RB engine, where applying
/// a superoperator to a vectorized state replaces the O(n^3) superoperator
/// composition.  `out` must not alias `a` or `x`; it is resized
/// (allocation-free on shape reuse).
void gemv_into(const Mat& a, const Mat& x, Mat& out);

/// `out = a^dagger * b` without forming the adjoint.  `out` must not alias
/// `a` or `b`; it is resized (allocation-free on shape reuse).
void adjoint_times_into(const Mat& a, const Mat& b, Mat& out);

/// `y += alpha * x` (complex axpy), allocation free.
void add_scaled(Mat& y, cplx alpha, const Mat& x);

/// `tr(a * b)` in a single pass without forming the product: the O(N^2)
/// contraction sum_ij a(i,j) b(j,i).  Requires a.cols() == b.rows() and
/// a.rows() == b.cols().
cplx trace_of_product(const Mat& a, const Mat& b);

/// `tr(a^dagger * b)` (Hilbert-Schmidt inner product) without forming the product.
cplx hs_inner(const Mat& a, const Mat& b);

/// Commutator `[a, b] = ab - ba`.
Mat commutator(const Mat& a, const Mat& b);

/// Anticommutator `{a, b} = ab + ba`.
Mat anticommutator(const Mat& a, const Mat& b);

/// Human-readable rendering (for diagnostics and examples).
std::ostream& operator<<(std::ostream& os, const Mat& m);

/// True when `a = e^{i phi} b` for some global phase, within `tol`.
bool equal_up_to_phase(const Mat& a, const Mat& b, double tol = 1e-9);

}  // namespace qoc::linalg
