/// \file simd_kernels.hpp
/// \brief Runtime-dispatched SIMD complex kernels for the structured
///        superoperator layer and the open-system GRAPE hot path.
///
/// The legacy kernels in matrix.hpp (`gemm_into`, `gemv_into`, ...) are the
/// bitwise reference arithmetic of every historical result in this repo:
/// design goldens, RB curves and the determinism suites all pin their exact
/// rounding.  They are therefore left untouched.  This header is a SECOND
/// kernel family with its own (also fixed) rounding profile, engaged only
/// behind explicit dispatch points: the structured superoperator applies,
/// the batched RB seed propagation and the open-system expm/Frechet engine.
///
/// Determinism contract of this family: for every output element the
/// accumulation runs over ascending inner index `p`, and each partial
/// product is committed as
///
///     prod_re = fma(b_re, a_re, -(a_im * b_im))
///     prod_im = fma(b_im, a_re, +(a_im * b_re))
///     acc    += prod                      (separate IEEE add)
///
/// -- exactly the lane arithmetic of the AVX2 `fmaddsub` path.  The scalar
/// fallback replays the identical sequence through `std::fma`, so results
/// are bitwise independent of vector width, batch size and CPU: an element
/// computed inside a 256-bit lane, in the unrolled tail, or on a non-AVX2
/// machine rounds identically.  That is what makes batched-vs-scalar RB
/// seed propagation and 1-vs-N-thread runs bit-identical by construction.
///
/// Dispatch: resolved once per process from CPUID (AVX2+FMA), overridable
/// for tests via `force_scalar`.

#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace qoc::linalg::simd {

/// True when the AVX2+FMA code paths are compiled in AND the CPU supports
/// them (always false on non-x86 builds).
bool avx2_available() noexcept;

/// Name of the active kernel variant: "avx2-fma" or "scalar".
const char* kernel_name() noexcept;

/// Test hook: forces the scalar replay path (true) or restores CPU
/// dispatch (false).  Results must be bitwise identical either way; the
/// oracle tests assert exactly that.  Not thread-safe: flip only around
/// single-threaded test regions.
void force_scalar(bool on) noexcept;

// --- raw-pointer kernels (row-major complex, contiguous) --------------------

/// `c = a * b` (accumulate: `c += a * b`) for row-major `m x k` times
/// `k x n`.  `c` must not alias `a` or `b`.
void gemm_raw(const cplx* a, const cplx* b, cplx* c, std::size_t m, std::size_t k,
              std::size_t n, bool accumulate) noexcept;

/// Column-strided matvec: `out[i*stride] (+)= sum_p a(i,p) x[p*stride]` for a
/// row-major `n x n` matrix applied to one column of a row-major batch whose
/// consecutive components are `stride` elements apart.  Used for the
/// mixed-operator RB batch step (each seed applies a different superop).
void gemv_strided(const cplx* a, std::size_t n, const cplx* x, cplx* out,
                  std::size_t stride, bool accumulate) noexcept;

/// CSR matvec on one strided column: `out[i*stride] (+)= sum over row i's
/// nonzeros of val * x[col*stride]`.  Column indices must be ascending
/// within each row (guaranteed by CsrMat construction).
void csr_gemv_strided(const cplx* vals, const int* cols, const int* rowptr,
                      std::size_t n_rows, const cplx* x, cplx* out, std::size_t stride,
                      bool accumulate) noexcept;

/// Batched CSR apply: `c = S * b` for a CSR `m x k` superop against a
/// row-major dense `k x n` batch (one RB seed per column).  Vectorizes over
/// the contiguous batch dimension with one broadcast per stored nonzero.
void csr_gemm_raw(const cplx* vals, const int* cols, const int* rowptr, std::size_t m,
                  const cplx* b, cplx* c, std::size_t n, bool accumulate) noexcept;

/// `xi[j] -= l * xk[j]` over `n` contiguous elements: the row update of the
/// vectorized LU forward/backward substitution.
void row_sub_scaled(cplx* xi, const cplx* xk, cplx l, std::size_t n) noexcept;

// --- Mat wrappers ------------------------------------------------------------

/// `out = a * b`; resizes `out` (allocation-free on shape reuse).
void gemm_into(const Mat& a, const Mat& b, Mat& out);

/// `out += a * b`; shapes must already agree.
void gemm_acc(const Mat& a, const Mat& b, Mat& out);

}  // namespace qoc::linalg::simd
