#include "linalg/lu.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/simd_kernels.hpp"
#include "obs/obs.hpp"

namespace qoc::linalg {

Lu::Lu(const Mat& a) { factor(a); }

void Lu::factor(const Mat& a) {
    if (!a.is_square()) throw std::invalid_argument("Lu: non-square matrix");
    obs::count(obs::Cnt::kLuFactorizations);
    lu_ = a;  // vector copy-assign: reuses capacity on same-size refactor
    singular_ = false;
    pivot_sign_ = 1;
    const std::size_t n = a.rows();
    piv_.resize(n);
    for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at/below the diagonal.
        std::size_t p = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (p != k) {
            for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
            std::swap(piv_[k], piv_[p]);
            pivot_sign_ = -pivot_sign_;
        }
        const cplx pivot = lu_(k, k);
        if (std::abs(pivot) < 1e-300) {
            singular_ = true;
            continue;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            const cplx m = lu_(i, k) / pivot;
            lu_(i, k) = m;
            if (m == cplx{0.0, 0.0}) continue;
            for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
        }
    }
}

cplx Lu::det() const {
    cplx d{static_cast<double>(pivot_sign_), 0.0};
    for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
    return d;
}

Mat Lu::solve(const Mat& b) const {
    Mat x;
    solve_into(b, x);
    return x;
}

void Lu::solve_into(const Mat& b, Mat& x) const {
    if (singular_) throw std::runtime_error("Lu::solve: singular matrix");
    const std::size_t n = lu_.rows();
    if (b.rows() != n) throw std::invalid_argument("Lu::solve: rhs shape mismatch");
    assert(&x != &b);
    const std::size_t m = b.cols();

    // Apply permutation.
    x.resize(n, m);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j) x(i, j) = b(piv_[i], j);

    // Forward substitution (L has unit diagonal).
    for (std::size_t i = 1; i < n; ++i)
        for (std::size_t k = 0; k < i; ++k) {
            const cplx lik = lu_(i, k);
            if (lik == cplx{0.0, 0.0}) continue;
            for (std::size_t j = 0; j < m; ++j) x(i, j) -= lik * x(k, j);
        }

    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t k = ii + 1; k < n; ++k) {
            const cplx uik = lu_(ii, k);
            if (uik == cplx{0.0, 0.0}) continue;
            for (std::size_t j = 0; j < m; ++j) x(ii, j) -= uik * x(k, j);
        }
        const cplx d = lu_(ii, ii);
        for (std::size_t j = 0; j < m; ++j) x(ii, j) /= d;
    }
}

void Lu::solve_into_simd(const Mat& b, Mat& x) const {
    if (singular_) throw std::runtime_error("Lu::solve: singular matrix");
    const std::size_t n = lu_.rows();
    if (b.rows() != n) throw std::invalid_argument("Lu::solve: rhs shape mismatch");
    assert(&x != &b);
    const std::size_t m = b.cols();

    x.resize(n, m);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j) x(i, j) = b(piv_[i], j);

    // Same elimination order and zero-skip as solve_into; only the per-row
    // axpy arithmetic runs through the simd kernel family.
    for (std::size_t i = 1; i < n; ++i)
        for (std::size_t k = 0; k < i; ++k) {
            const cplx lik = lu_(i, k);
            if (lik == cplx{0.0, 0.0}) continue;
            simd::row_sub_scaled(&x(i, 0), &x(k, 0), lik, m);
        }

    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t k = ii + 1; k < n; ++k) {
            const cplx uik = lu_(ii, k);
            if (uik == cplx{0.0, 0.0}) continue;
            simd::row_sub_scaled(&x(ii, 0), &x(k, 0), uik, m);
        }
        const cplx d = lu_(ii, ii);
        for (std::size_t j = 0; j < m; ++j) x(ii, j) /= d;
    }
}

Mat Lu::inverse() const { return solve(Mat::identity(lu_.rows())); }

Mat solve(const Mat& a, const Mat& b) { return Lu(a).solve(b); }
Mat inverse(const Mat& a) { return Lu(a).inverse(); }
cplx det(const Mat& a) { return Lu(a).det(); }

}  // namespace qoc::linalg
