/// Reproduces paper Fig. 2: the optimized X-gate control pulse as played on
/// ibmq_montreal's D0 drive channel (480 dt ~ 105 ns), with the custom gate
/// confirmed to shadow the default in the transpiled circuit.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 2", "optimized X pulse on ibmq_montreal D0 (480 dt, drag seed)");

    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    const DesignedGate designed = design_x_long(device::nominal_model(dev.config()));

    std::printf("model infidelity after optimization: %.3e\n", designed.model_fid_err);
    std::printf("pulse duration: %zu dt = %.1f ns (default X: 160 dt = %.1f ns)\n",
                designed.duration_dt, static_cast<double>(designed.duration_dt) * dev.config().dt,
                160 * dev.config().dt);

    const auto samples = designed.schedule.channel_samples(pulse::drive_channel(0),
                                                           designed.duration_dt);
    print_waveform("D0 drive (waveform 1 = X control = I, waveform 2 = Y control = Q)",
                   samples);

    // "The default X gate is replaced by our optimized X gate, which is
    // confirmed in the transpiling process": an identity-like custom pulse
    // proves the calibration shadows the default, then the real pulse runs.
    pulse::QuantumCircuit qc(1);
    qc.add_calibration("x", {0}, designed.schedule);
    qc.x(0).measure(0);
    const pulse::Schedule sched = pulse::circuit_to_schedule(qc, defaults);
    std::printf("\ntranspiled schedule duration: %zu dt (custom pulse: %zu dt) -> %s\n",
                sched.total_duration(), designed.duration_dt,
                sched.total_duration() == designed.duration_dt
                    ? "custom calibration took effect"
                    : "MISMATCH");
    return 0;
}
