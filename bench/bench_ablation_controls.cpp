/// Ablation A2: one vs two controls for the NOT gate.  The paper: "we found
/// that when implementing NOT gate with a single control the performance is
/// much worse than with two controls. Hence, we keep the two control terms."

#include "bench_common.hpp"

#include "quantum/fidelity.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Ablation A2", "X gate with one control vs two controls");

    const auto nominal = device::nominal_model(device::ibmq_montreal());
    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    rb::Clifford1Q group;
    rb::RbOptions opts = rb_settings_1q();
    opts.seeds_per_length = 8;

    std::vector<std::vector<std::string>> rows;
    for (bool two_controls : {true, false}) {
        GateDesignSpec spec;
        spec.target = g::x();
        spec.duration_dt = 256;
        spec.n_timeslots = 32;
        spec.use_y_control = two_controls;
        spec.model = DesignModel::kThreeLevelClosed;
        const DesignedGate designed = design_1q_gate(nominal, 0, "x", spec);

        const auto sup = dev.schedule_superop_1q(designed.schedule, 0);
        const double direct =
            1.0 - quantum::average_gate_fidelity_subspace(g::x(), sup, dev.config().levels);
        const auto cmp =
            compare_1q_gate(dev, defaults, "x", 0, designed.schedule, group, opts);

        char model_err[32], direct_err[32];
        std::snprintf(model_err, sizeof(model_err), "%.2e", designed.model_fid_err);
        std::snprintf(direct_err, sizeof(direct_err), "%.2e", direct);
        rows.push_back({two_controls ? "X + Y controls" : "X control only", model_err,
                        direct_err,
                        format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err)});
    }
    print_table("single- vs two-control X design (256 dt)",
                {"controls", "model infidelity", "device infidelity", "IRB gate error"},
                rows);
    std::printf("\n[paper: single-control NOT performs much worse -- the Y quadrature is\n"
                " needed for the DRAG-like leakage/phase compensation]\n");
    return 0;
}
