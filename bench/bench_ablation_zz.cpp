/// Ablation A5: effect of the always-on ZZ coupling on the two-qubit gate
/// error floor.  The paper's Discussion calls static ZZ "an ever present
/// source of error"; here we sweep its strength and measure the default CX
/// error and the entangled-state quality.

#include "bench_common.hpp"

#include "quantum/fidelity.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Ablation A5", "static ZZ coupling vs two-qubit gate error");

    std::printf("%-14s %-18s %-14s\n", "zz (rad/ns)", "default CX infid.", "P(11) after x;cx");
    for (double zz : {0.0, 1e-4, 2e-4, 4e-4, 8e-4}) {
        auto cfg = device::ibmq_montreal();
        cfg.cr.zz_static = zz;
        device::PulseExecutor dev(cfg);
        const auto defaults = device::build_default_gates(dev);
        const auto sup = dev.schedule_superop_2q(defaults.get("cx", {0, 1}));
        const double err = 1.0 - quantum::average_gate_fidelity_superop(g::cx(), sup);
        const auto counts = state_histogram_cx(dev, defaults, nullptr, 8192, 42);
        std::printf("%-14.1e %-18.4e %-14.2f%%\n", zz, err,
                    100.0 * counts.probability("11"));
    }
    std::printf("\n[the default CX is calibrated per configuration, yet its error floor\n"
                " rises with ZZ: the coupling acts during the whole pulse and between\n"
                " gates, exactly the paper's 'ever present source of error']\n");
    return 0;
}
