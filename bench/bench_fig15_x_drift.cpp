/// Reproduces paper Fig. 15 (supplementary): the same optimized NOT (X)
/// pulse executed on three different days; the paper saw one day perform
/// clearly best.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 15 (suppl.)", "fixed NOT-gate pulse over three days");

    const device::DriftModel drift(device::ibmq_montreal(), /*seed=*/1508);
    int first_day = 0;
    for (int d = 0; d < 60; ++d) {
        if (drift.is_jump_day(d) || drift.is_jump_day(d + 2)) {
            first_day = d;
            break;
        }
    }
    const DesignedGate fixed = design_x_long(device::nominal_model(drift.nominal()));

    std::printf("window: days %d..%d\n\n", first_day, first_day + 2);
    double best = 0.0;
    int best_day = first_day;
    for (int offset = 0; offset < 3; ++offset) {
        const int day = first_day + offset;
        device::PulseExecutor dev(drift.device_on_day(day));
        const auto defaults = device::build_default_gates(dev);
        const auto counts =
            state_histogram_1q(dev, defaults, "x", 0, &fixed.schedule, 4096, 1500 + day);
        const double p1 = counts.probability("1");
        char label[64];
        std::snprintf(label, sizeof(label), "day %d%s", day,
                      drift.is_jump_day(day) ? " (anomalous calibration)" : "");
        print_histogram(label, counts);
        if (p1 > best) {
            best = p1;
            best_day = day;
        }
    }
    std::printf("\nbest day: %d with P(1) = %.2f%%\n", best_day, 100.0 * best);
    std::printf("[paper: 'the performance of the gate for Dec 8 was the best']\n");
    return 0;
}
