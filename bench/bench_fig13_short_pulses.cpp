/// Reproduces paper Fig. 13: the short-duration optimized pulses --
/// (a-c) X at 256 dt (~56 ns): pulse, histogram (94.2% in |1>), IRB 1.38e-4;
/// (d-f) sqrt(X) at 144 dt (~31.6 ns): pulse, histogram, IRB 4.13e-4;
/// (g-i) H at 128 dt (~28 ns): pulse, histogram, IRB 3.07e-4.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 13", "short-duration pulses: waveform, histogram, IRB");

    rb::Clifford1Q group;

    struct Row {
        const char* label;
        DesignedGate designed;
        device::BackendConfig cfg;
        const char* gate;
        const char* paper_irb;
    };

    const auto montreal = device::ibmq_montreal();
    const auto toronto = device::ibmq_toronto();
    std::vector<Row> rows;
    rows.push_back({"(a-c) X, 256 dt (~56 ns)", design_x_short(device::nominal_model(montreal)),
                    montreal, "x", "1.38(11)e-04"});
    rows.push_back({"(d-f) sqrt(X), 144 dt (~31.6 ns)",
                    design_sx_short(device::nominal_model(montreal)), montreal, "sx",
                    "4.13(20)e-04"});
    rows.push_back({"(g-i) H, 128 dt (~28 ns)", design_h_short(device::nominal_model(toronto)),
                    toronto, "h", "3.07(13)e-04"});

    for (const Row& row : rows) {
        std::printf("\n=== %s ===\n", row.label);
        device::PulseExecutor dev(row.cfg);
        const auto defaults = device::build_default_gates(dev);

        const auto samples = row.designed.schedule.channel_samples(
            pulse::drive_channel(0), row.designed.duration_dt);
        print_waveform("control pulse", samples);

        const auto counts = state_histogram_1q(dev, defaults, row.gate, 0,
                                               &row.designed.schedule, 4096, 1313);
        print_histogram("qubit-state measurement", counts);

        const GateComparison cmp = compare_1q_gate(dev, defaults, row.gate, 0,
                                                   row.designed.schedule, group,
                                                   rb_settings_1q());
        std::printf("   IRB gate error: %s  [paper: %s]\n",
                    format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err).c_str(),
                    row.paper_irb);
        std::printf("   default gate:   %s\n",
                    format_error_rate(cmp.standard.gate_error,
                                      cmp.standard.gate_error_err).c_str());
    }
    return 0;
}
