/// Reproduces paper Fig. 8: CX optimized with the SINE seed executed on the
/// (older) Boeblingen and Rome devices.  IRB did not exist in qiskit yet, so
/// the paper validated with x(0); cx(0,1) histograms:
/// Boeblingen P(|11>) ~ 80%, Rome P(|11>) ~ 87%.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 8", "SINE-seed CX on Boeblingen and Rome: |11> histograms");

    struct Run {
        device::BackendConfig cfg;
        const char* paper;
    };
    const Run runs[] = {{device::ibmq_boeblingen(), "~80%"}, {device::ibmq_rome(), "~87%"}};

    for (const Run& run : runs) {
        device::PulseExecutor dev(run.cfg);
        const auto defaults = device::build_default_gates(dev);
        const DesignedCx designed = design_cx_sine(device::nominal_model(run.cfg));
        std::printf("\n--- %s ---\n", run.cfg.name.c_str());
        std::printf("model infidelity: %.3e\n", designed.model_fid_err);

        const std::size_t n = designed.schedule.total_duration();
        print_waveform("U0 (SINE-seeded CR drive)",
                       designed.schedule.channel_samples(pulse::control_channel(0), n));
        print_waveform("D1 (target drive)",
                       designed.schedule.channel_samples(pulse::drive_channel(1), n));

        const auto custom = state_histogram_cx(dev, defaults, &designed.schedule, 4096, 808);
        print_histogram(std::string("custom CX: x(0); cx(0,1) [paper P(11) ") + run.paper + "]",
                        custom);
        const auto def = state_histogram_cx(dev, defaults, nullptr, 4096, 809);
        print_histogram("default CX for comparison", def);
    }
    return 0;
}
