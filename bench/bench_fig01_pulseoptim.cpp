/// Reproduces paper Fig. 1: the `pulseoptim` input/output pulse pair --
/// initial (seed) amplitudes in the top panel, optimized amplitudes below,
/// plus the optimizer's convergence trace.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 1", "pulseoptim initial vs optimized control amplitudes");

    control::PulseOptimSpec spec;
    spec.h_drift = linalg::Mat(2, 2);
    spec.h_ctrls = {0.5 * quantum::sigma_x(), 0.5 * quantum::sigma_y()};
    spec.u_target = g::x();
    spec.n_timeslots = 64;
    spec.evo_time = 100.0;
    spec.initial_pulse = control::InitialPulseType::kDrag;
    spec.initial_scale = 0.08;

    const auto res = control::pulse_optim(spec);

    auto column = [&](const control::ControlAmplitudes& amps, std::size_t j) {
        std::vector<double> out(amps.size());
        for (std::size_t k = 0; k < amps.size(); ++k) out[k] = amps[k][j];
        return out;
    };
    std::printf("\nInitial pulse (seed: drag):\n");
    print_pulse("u_x (sigma_x control)", column(res.initial_amps, 0));
    print_pulse("u_y (sigma_y control)", column(res.initial_amps, 1));
    std::printf("\nOptimized pulse (L-BFGS-B, %d iterations, %s):\n", res.iterations,
                optim::to_string(res.reason).c_str());
    print_pulse("u_x (sigma_x control)", column(res.final_amps, 0));
    print_pulse("u_y (sigma_y control)", column(res.final_amps, 1));

    std::printf("\nConvergence (fidelity error per iteration):\n");
    for (std::size_t i = 0; i < res.fid_err_history.size();
         i += std::max<std::size_t>(1, res.fid_err_history.size() / 12)) {
        std::printf("   iter %3zu: %.3e\n", i, res.fid_err_history[i]);
    }
    std::printf("\ninitial fidelity error: %.3e\n", res.initial_fid_err);
    std::printf("final fidelity error  : %.3e\n", res.final_fid_err);
    std::printf("[paper: pulseoptim converges to a machine-precision X gate]\n");
    return 0;
}
