/// Ablation A3: open-system vs closed-system design for sqrt(X).  The
/// paper: "for the sqrt(x) operation we were not able to reach a global
/// minimum ... we neglected the decoherence processes during the
/// optimization for computational simplicity."  This bench measures what
/// that choice costs (or saves).

#include "bench_common.hpp"

#include "quantum/fidelity.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Ablation A3", "sqrt(X): closed-system vs open-system (Lindblad) design");

    const auto nominal = device::nominal_model(device::ibmq_montreal());
    device::PulseExecutor dev(device::ibmq_montreal());

    std::vector<std::vector<std::string>> rows;
    for (auto model : {DesignModel::kThreeLevelClosed, DesignModel::kThreeLevelOpen,
                       DesignModel::kTwoLevelClosed}) {
        GateDesignSpec spec;
        spec.target = g::sx();
        spec.duration_dt = 736;
        spec.n_timeslots = 48;
        spec.use_y_control = (model != DesignModel::kTwoLevelClosed) ? false : false;
        spec.model = model;
        const DesignedGate designed = design_1q_gate(nominal, 0, "sx", spec);

        const auto sup = dev.schedule_superop_1q(designed.schedule, 0);
        const double direct =
            1.0 - quantum::average_gate_fidelity_subspace(g::sx(), sup, dev.config().levels);
        const char* name = model == DesignModel::kThreeLevelClosed ? "3-level closed (paper)"
                           : model == DesignModel::kThreeLevelOpen ? "3-level open (Lindblad)"
                                                                   : "2-level closed (ablation)";
        char model_err[32], direct_err[32], iters[32];
        std::snprintf(model_err, sizeof(model_err), "%.2e", designed.model_fid_err);
        std::snprintf(direct_err, sizeof(direct_err), "%.2e", direct);
        std::snprintf(iters, sizeof(iters), "%d", designed.optim.iterations);
        rows.push_back({name, model_err, direct_err, iters});
    }
    print_table("sqrt(X) design-model ablation (736 dt, single X control)",
                {"design model", "model infidelity", "device infidelity", "iterations"},
                rows);
    std::printf("\n[expected: open-system design buys little at these T1/T2 (the paper\n"
                " dropped it for sqrt(X)); the 2-level model misses the AC-Stark phase\n"
                " from the third level and does worse on the device]\n");
    return 0;
}
