/// Reproduces paper Fig. 14 (supplementary): the Hadamard gate over four
/// days -- (a) the same optimized pulse, (b) daily re-optimized pulses.
/// The paper saw the largest fluctuations on two of the days and the best
/// daily-pulse result on the last day.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 14 (suppl.)", "Hadamard over four days: fixed vs daily pulses");

    const device::DriftModel drift(device::ibmq_toronto(), /*seed=*/1214);
    int first_day = 0;
    for (int d = 0; d < 60; ++d) {
        if (drift.is_jump_day(d) || drift.is_jump_day(d + 1)) {
            first_day = d;
            break;
        }
    }
    const DesignedGate fixed = design_h_long(device::nominal_model(drift.nominal()));

    std::printf("window: days %d..%d\n\n", first_day, first_day + 3);
    std::printf("%-5s %-6s %-22s %-22s\n", "day", "jump?", "(a) fixed pulse P(1) [%]",
                "(b) daily pulse P(1) [%]");
    for (int offset = 0; offset < 4; ++offset) {
        const int day = first_day + offset;
        const auto today = drift.device_on_day(day);
        device::PulseExecutor dev(today);
        const auto defaults = device::build_default_gates(dev);

        const auto fixed_counts =
            state_histogram_1q(dev, defaults, "h", 0, &fixed.schedule, 4096, 1400 + day);
        const DesignedGate daily = design_h_long(device::nominal_model(today));
        const auto daily_counts =
            state_histogram_1q(dev, defaults, "h", 0, &daily.schedule, 4096, 1450 + day);

        std::printf("%-5d %-6s %-22.2f %-22.2f\n", day, drift.is_jump_day(day) ? "yes" : "no",
                    100.0 * fixed_counts.probability("1"),
                    100.0 * daily_counts.probability("1"));
    }
    std::printf("\n[paper: most fluctuation on two days; H should give P(1) = 50%%]\n");
    return 0;
}
