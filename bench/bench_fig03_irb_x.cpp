/// Reproduces paper Fig. 3: interleaved randomized benchmarking of the
/// custom X gate (a) vs the default X gate (b) on ibmq_montreal, plus the
/// prepare-and-measure histogram (c).
/// Paper values: custom 1.97e-4 +- 4.94e-5, default 2.77e-4 +- 5.1e-5,
/// P(|1>) = 87.3% (up to measurement errors).

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 3", "IRB of custom vs default X on ibmq_montreal + histogram");

    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    const DesignedGate designed = design_x_long(device::nominal_model(dev.config()));
    rb::Clifford1Q group;

    const GateComparison cmp = compare_1q_gate(dev, defaults, "x", 0, designed.schedule,
                                               group, rb_settings_1q());

    print_rb_curve("(a) custom X: reference RB", cmp.custom.reference);
    print_rb_curve("(a) custom X: interleaved RB", cmp.custom.interleaved);
    print_rb_curve("(b) default X: interleaved RB", cmp.standard.interleaved);

    print_table("Fig. 3 error rates",
                {"gate", "IRB error (measured)", "paper"},
                {{"custom X",
                  format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err),
                  "1.97(49)e-04"},
                 {"default X",
                  format_error_rate(cmp.standard.gate_error, cmp.standard.gate_error_err),
                  "2.77(51)e-04"}});
    std::printf("improvement: %.1f%%  [paper: ~28-29%%]\n", cmp.improvement_percent);

    const auto counts = state_histogram_1q(dev, defaults, "x", 0, &designed.schedule,
                                           4096, 303);
    print_histogram("(c) custom X applied to |0> [paper: P(1) = 87.3%]", counts);
    return 0;
}
