/// Reproduces paper Fig. 10: two-qubit IRB of the custom CX vs the default
/// CX on ibmq_montreal.
/// Paper values: custom 5.64e-3 +- 9.2e-4, default 6.18e-3 +- 1.33e-3 (~8%).

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 10", "two-qubit IRB: custom vs default CX on ibmq_montreal");

    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    const DesignedCx designed = design_cx_gaussian_square(device::nominal_model(dev.config()));

    rb::Clifford1Q c1;
    rb::Clifford2Q c2(c1);
    const GateComparison cmp =
        compare_cx_gate(dev, defaults, designed.schedule, c1, c2, rb_settings_2q());

    print_rb_curve("(a) custom CX: interleaved RB", cmp.custom.interleaved);
    print_rb_curve("(b) default CX: interleaved RB", cmp.standard.interleaved);

    print_table("Fig. 10 error rates",
                {"gate", "IRB error (measured)", "paper"},
                {{"custom CX",
                  format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err),
                  "5.64(92)e-03"},
                 {"default CX",
                  format_error_rate(cmp.standard.gate_error, cmp.standard.gate_error_err),
                  "6.18(133)e-03"}});
    std::printf("improvement: %.1f%%  [paper: ~8%%]\n", cmp.improvement_percent);
    return 0;
}
