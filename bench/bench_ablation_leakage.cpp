/// Ablation A7: leakage randomized benchmarking -- the higher-level effects
/// the paper's Discussion points to ("higher energy levels have an impact
/// on the system-dynamics").  Compares the leakage rate of the default DRAG
/// gate set, a beta=0 (plain Gaussian) set, and a fast (64 dt) set, plus a
/// GOAT-designed smooth analytic pulse.

#include "bench_common.hpp"

#include "control/goat.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/operators.hpp"
#include "rb/leakage_rb.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Ablation A7", "leakage RB: DRAG vs plain vs fast gate sets");

    device::PulseExecutor dev(device::ibmq_montreal());
    rb::Clifford1Q group;
    rb::RbOptions opts;
    opts.lengths = {1, 100, 300, 700, 1200};
    opts.seeds_per_length = 6;

    auto report = [&](const char* label, const pulse::InstructionScheduleMap& gates) {
        const rb::GateSet1Q set(dev, gates, 0, group);
        const auto res = rb::run_leakage_rb_1q(dev, set, opts);
        std::printf("%-28s leakage at m=1200: %.3e   rate/Clifford: %.3e\n", label,
                    res.leakage_population.back(), res.leakage_rate_per_clifford);
    };

    report("default (DRAG, 160 dt)", device::build_default_gates(dev));

    device::DefaultGateOptions plain;
    plain.drag_beta_scale = 0.0;  // no quadrature at all
    report("plain Gaussian (beta = 0)", device::build_default_gates(dev, plain));

    device::DefaultGateOptions fast;
    fast.gate_duration_dt = 64;
    report("fast gates (64 dt ~ 14 ns)", device::build_default_gates(dev, fast));

    // GOAT-designed smooth X on the 3-level model, swapped in for the
    // default x of an otherwise-default gate set.
    {
        const auto nominal = device::nominal_model(dev.config());
        control::GrapeProblem prob;
        prob.system.drift = quantum::duffing_drift(3, 0.0, nominal.qubit(0).anharmonicity);
        prob.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
        prob.target = g::x();
        prob.subspace_isometry = quantum::qubit_isometry(3);
        prob.evo_time = 160.0 * nominal.dt;
        control::GoatOptions gopts;
        gopts.n_harmonics = 3;
        gopts.n_fine = 160;
        gopts.amp_bound = 0.3;
        const auto goat = control::goat_optimize(prob, gopts);
        std::printf("\nGOAT X design (smooth analytic, 160 dt): model err %.2e\n",
                    goat.final_fid_err);

        auto gates = device::build_default_gates(dev);
        const auto sched = amps_to_schedule(goat.final_amps, 0, 1, 160,
                                            pulse::drive_channel(0), "goat_x");
        gates.add("x", {0}, sched);
        report("GOAT-designed X + default sx", gates);
    }

    std::printf("\n[findings: at 160 dt (~35 ns) the Gaussian is already adiabatic, so\n"
                " DRAG's payoff is the AC-Stark phase correction rather than |2>\n"
                " population; pulse DURATION dominates leakage (the 64 dt set leaks ~3x\n"
                " more), and a smooth GOAT pulse without an explicit leakage term leaks\n"
                " like the fast set -- leakage must be modeled, smoothness alone is not\n"
                " enough.  This is the paper's 'higher energy levels have an impact'.]\n");
    return 0;
}
