/// Reproduces paper Fig. 12: the same fixed sqrt(X) pulse re-tested over a
/// calm week (Jan 6-13 2022 in the paper) -- results are consistent, unlike
/// the earlier window, raising the paper's question about qubit stability
/// over time.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 12", "fixed sqrt(X) pulse over a calm 8-day window");

    const device::DriftModel drift(device::ibmq_montreal(), /*seed=*/77);
    // Find a window of 8 consecutive non-jump days.
    int first_day = 0;
    for (int d = 0; d < 200; ++d) {
        bool calm = true;
        for (int k = 0; k < 8; ++k) calm = calm && !drift.is_jump_day(d + k);
        if (calm) {
            first_day = d;
            break;
        }
    }
    std::printf("calm window: days %d..%d (no anomalous calibrations)\n\n", first_day,
                first_day + 7);

    const DesignedGate fixed = design_sx_long(device::nominal_model(drift.nominal()));

    std::printf("%-5s %-14s %-12s\n", "day", "P(1) [%]", "P(0) [%]");
    double lo = 1.0, hi = 0.0;
    for (int offset = 0; offset < 8; ++offset) {
        const int day = first_day + offset;
        device::PulseExecutor dev(drift.device_on_day(day));
        const auto defaults = device::build_default_gates(dev);
        const auto counts =
            state_histogram_1q(dev, defaults, "sx", 0, &fixed.schedule, 4096, 1300 + day);
        const double p1 = counts.probability("1");
        lo = std::min(lo, p1);
        hi = std::max(hi, p1);
        std::printf("%-5d %-14.2f %-12.2f\n", day, 100.0 * p1,
                    100.0 * counts.probability("0"));
    }
    std::printf("\nspread across the window: %.2f%% (max - min)\n", 100.0 * (hi - lo));
    std::printf("[paper: 'very consistent over this time-period compared to our earlier\n"
                " results' -- reproduced when no anomalous calibration day falls inside]\n");
    return 0;
}
