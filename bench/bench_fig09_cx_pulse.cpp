/// Reproduces paper Fig. 9: the Gaussian-square-seeded custom CX pulse on
/// ibmq_montreal -- waveforms on D0, D1 and the control channel U0.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 9", "Gaussian-square CX pulse on ibmq_montreal (D0, D1, U0)");

    device::PulseExecutor dev(device::ibmq_montreal());
    const DesignedCx designed = design_cx_gaussian_square(device::nominal_model(dev.config()));

    std::printf("model infidelity: %.3e\n", designed.model_fid_err);
    std::printf("pulse duration: %zu dt = %.0f ns (default echoed-CR CX: %zu dt)\n",
                designed.duration_dt, static_cast<double>(designed.duration_dt) * dev.config().dt,
                device::build_default_gates(dev).get("cx", {0, 1}).total_duration());

    const std::size_t n = designed.schedule.total_duration();
    print_waveform("D0 (control-qubit drive; locals are virtual -> empty)",
                   designed.schedule.channel_samples(pulse::drive_channel(0), n));
    print_waveform("D1 (target-qubit drive)",
                   designed.schedule.channel_samples(pulse::drive_channel(1), n));
    print_waveform("U0 (cross-resonance drive, Gaussian-square seed)",
                   designed.schedule.channel_samples(pulse::control_channel(0), n));
    return 0;
}
