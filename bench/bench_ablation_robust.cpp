/// Ablation A6: robust (ensemble) GRAPE vs nominal GRAPE under calibration
/// drift -- the "possible future improvements" the paper's Discussion asks
/// for.  One X pulse is optimized on the nominal model, another over a
/// detuning ensemble; both are executed across a week of drifted devices.

#include "bench_common.hpp"

#include "quantum/fidelity.hpp"
#include "quantum/operators.hpp"
#include "control/pulse_shapes.hpp"
#include <numbers>

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Ablation A6", "robust ensemble design vs nominal design under drift");

    const auto nominal_cfg = device::nominal_model(device::ibmq_montreal());
    const auto& q0 = nominal_cfg.qubit(0);

    // Shared problem: X on the 3-level transmon, 480 dt.
    control::GrapeProblem prob;
    prob.system.drift = quantum::duffing_drift(3, 0.0, q0.anharmonicity);
    prob.system.ctrls = {0.5 * q0.omega_max * quantum::drive_x(3),
                         0.5 * q0.omega_max * quantum::drive_y(3)};
    prob.target = g::x();
    prob.subspace_isometry = quantum::qubit_isometry(3);
    prob.n_timeslots = 48;
    prob.evo_time = 480.0 * nominal_cfg.dt;
    prob.amp_lower = -0.15;
    prob.amp_upper = 0.15;
    prob.energy_penalty = 0.02;
    // Area-matched Gaussian seed (a flat seed is a degenerate starting point).
    const auto env = control::gaussian_pulse(48);
    const double area = control::pulse_area(env, prob.evo_time / 48.0) * q0.omega_max;
    prob.initial_amps.assign(48, {0.0, 0.0});
    for (std::size_t k = 0; k < 48; ++k) {
        prob.initial_amps[k][0] = env[k] * std::numbers::pi / area;
    }

    const auto nominal_design = control::grape_unitary(prob, {.max_iterations = 400});

    // Ensemble over a +-240 kHz detuning spread (a bad calibration week).
    const double delta = 1.5e-3;  // rad/ns
    const std::vector<linalg::Mat> ensemble = {(-delta) * quantum::number_op(3),
                                               linalg::Mat(3, 3),
                                               delta * quantum::number_op(3)};
    const auto robust_design =
        control::grape_robust(prob, ensemble, {1.0, 1.0, 1.0}, {.max_iterations = 400});

    std::printf("nominal design: model err %.2e\n", nominal_design.final_fid_err);
    std::printf("robust design : mean model err %.2e (members:",
                robust_design.combined.final_fid_err);
    for (double e : robust_design.member_errors) std::printf(" %.1e", e);
    std::printf(")\n\n");

    const auto to_schedule = [&](const control::GrapeResult& d, const char* name) {
        return amps_to_schedule(d.final_amps, 0, 1, 480, pulse::drive_channel(0), name);
    };
    const auto nom_sched = to_schedule(nominal_design, "x_nominal");
    const auto rob_sched = to_schedule(robust_design.combined, "x_robust");

    // Error vs detuning sweep: the nominal pulse degrades quadratically away
    // from its design point; the ensemble-trained pulse stays flat.
    std::printf("%-16s %-20s %-20s\n", "detuning [kHz]", "nominal-design err",
                "robust-design err");
    double nom_worst = 0.0, rob_worst = 0.0;
    for (double frac : {-1.3, -1.0, -0.5, 0.0, 0.5, 1.0, 1.3}) {
        auto cfg = device::ibmq_montreal();
        cfg.qubits[0].detuning = frac * delta;
        device::PulseExecutor dev(cfg);
        const auto nom_sup = dev.schedule_superop_1q(nom_sched, 0);
        const auto rob_sup = dev.schedule_superop_1q(rob_sched, 0);
        const double nom_err =
            1.0 - quantum::average_gate_fidelity_subspace(g::x(), nom_sup, 3);
        const double rob_err =
            1.0 - quantum::average_gate_fidelity_subspace(g::x(), rob_sup, 3);
        nom_worst = std::max(nom_worst, nom_err);
        rob_worst = std::max(rob_worst, rob_err);
        std::printf("%-16.0f %-20.3e %-20.3e\n", frac * delta / (2.0 * M_PI) * 1e6, nom_err,
                    rob_err);
    }
    std::printf("\nworst-case error over the sweep: nominal %.3e, robust %.3e -> robust %s\n",
                nom_worst, rob_worst, rob_worst < nom_worst ? "wins" : "does not win");
    return 0;
}
