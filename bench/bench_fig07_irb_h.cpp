/// Reproduces paper Fig. 7: IRB of the custom (long, 1216 dt) Hadamard vs
/// the default H (virtual-Z + sx) on ibmq_toronto.  The paper's headline
/// here is a NEGATIVE result: the custom H is WORSE, "attributed to the
/// longer pulse duration".
/// Paper values: custom 2.6e-3 +- 4e-4, default 5.0e-4 +- 8e-5.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 7", "IRB of custom (long) vs default H on ibmq_toronto + histogram");

    // The paper's H runs happened on days when the device had drifted away
    // from the custom pulse's design point; day 2 of the drift trajectory
    // reproduces that situation (defaults recalibrate daily, the custom
    // pulse does not).
    const device::DriftModel drift(device::ibmq_toronto(), /*seed=*/411);
    device::PulseExecutor dev(drift.device_on_day(2));
    const auto defaults = device::build_default_gates(dev);
    const DesignedGate designed = design_h_long(device::nominal_model(drift.nominal()));
    rb::Clifford1Q group;

    const GateComparison cmp = compare_1q_gate(dev, defaults, "h", 0, designed.schedule,
                                               group, rb_settings_1q());

    print_rb_curve("(a) custom H: interleaved RB", cmp.custom.interleaved);
    print_rb_curve("(b) default H: interleaved RB", cmp.standard.interleaved);

    print_table("Fig. 7 error rates",
                {"gate", "IRB error (measured)", "paper"},
                {{"custom H (1216 dt)",
                  format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err),
                  "26(4)e-04"},
                 {"default H (virtual-Z + sx)",
                  format_error_rate(cmp.standard.gate_error, cmp.standard.gate_error_err),
                  "5.0(8)e-04"}});
    std::printf("custom-minus-default: %+.2e  [paper: custom WORSE -- reproduced: %s]\n",
                cmp.custom.gate_error - cmp.standard.gate_error,
                cmp.custom.gate_error > cmp.standard.gate_error ? "yes" : "no");

    const auto counts = state_histogram_1q(dev, defaults, "h", 0, &designed.schedule,
                                           4096, 707);
    print_histogram("(c) custom H on |0> [paper: not exactly balanced]", counts);
    return 0;
}
