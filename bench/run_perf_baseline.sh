#!/usr/bin/env bash
# Runs the kernel microbenchmark suite and records the results as JSON, so a
# perf change can quote before/after numbers from identical invocations:
#
#   bench/run_perf_baseline.sh [build_dir] [output.json] [extra benchmark args]
#
# Defaults: build_dir=build, output=BENCH_kernels.json (repo root).
#
# The build is configured and (re)built here so recorded numbers always come
# from a Release binary of the current tree -- never a stale or Debug one.
# Note: the JSON's "library_build_type" field reports how the *system
# google-benchmark library* was compiled, not this repo; the repo build type
# is pinned below.  The min-time is passed as a plain double -- the pinned
# google-benchmark predates the "0.01s" suffix syntax.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
out="${2:-BENCH_kernels.json}"
shift $(( $# > 2 ? 2 : $# )) || true

# Refuse instrumented build dirs BEFORE the reconfigure below touches them:
# sanitizers and armed contracts change the hot paths, so their numbers must
# never land in a baseline JSON -- and reconfiguring first would both rewrite
# the cache evidence and pollute a sanitizer/contracts dir with Release flags.
if [[ -f "$build_dir/CMakeCache.txt" ]]; then
    for flag in QOC_SANITIZE QOC_SANITIZE_THREAD QOC_SANITIZE_UNDEFINED QOC_CONTRACTS; do
        val="$(sed -n "s/^${flag}:[^=]*=//p" "$build_dir/CMakeCache.txt")"
        if [[ "${val^^}" == "ON" || "${val^^}" == "TRUE" || "$val" == "1" ]]; then
            echo "error: $build_dir was configured with ${flag}=${val}." >&2
            echo "Instrumented builds are not comparable benchmark baselines;" >&2
            echo "use a plain Release dir: bench/run_perf_baseline.sh build-release" >&2
            exit 1
        fi
    done
fi

cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [[ "$build_type" != "Release" ]]; then
    echo "error: $build_dir is configured as '${build_type:-<empty>}', not Release." >&2
    echo "Benchmark numbers from non-Release builds are not comparable;" >&2
    echo "use a dedicated build dir: bench/run_perf_baseline.sh build-release" >&2
    exit 1
fi

cmake --build "$build_dir" -j --target bench_perf_kernels >/dev/null

# Stale-binary guard: a baseline recorded from a binary that predates the
# structured-superoperator kernels (or from a tree configured with the SIMD
# kernels off) would silently compare apples to oranges.  Require both the
# cache entry and the benchmark registration before recording anything.
simd_val="$(sed -n 's/^QOC_SIMD_KERNELS:[^=]*=//p' "$build_dir/CMakeCache.txt")"
if [[ -z "$simd_val" ]]; then
    echo "error: $build_dir/CMakeCache.txt has no QOC_SIMD_KERNELS entry --" >&2
    echo "the build tree predates the structured superop kernels; reconfigure" >&2
    echo "from the current CMakeLists before recording a baseline." >&2
    exit 1
fi
if ! "$build_dir/bench/bench_perf_kernels" --benchmark_list_tests \
        | grep -q '^BM_SuperopApply'; then
    echo "error: bench_perf_kernels does not register BM_SuperopApply --" >&2
    echo "stale benchmark binary; rebuild from the current tree before" >&2
    echo "recording a baseline." >&2
    exit 1
fi
if ! "$build_dir/bench/bench_perf_kernels" --benchmark_list_tests \
        | grep -q '^BM_CalibService'; then
    echo "error: bench_perf_kernels does not register BM_CalibService --" >&2
    echo "the binary predates the calibration-service cache benchmarks;" >&2
    echo "rebuild from the current tree before recording a baseline." >&2
    exit 1
fi

# Pin the qoc::runtime task-pool width so recorded numbers are reproducible
# across machines: default 1 (the serial inline path, bitwise the reference
# configuration); override with QOC_THREADS=N for scaling runs.
export QOC_THREADS="${QOC_THREADS:-1}"
echo "task-pool width: QOC_THREADS=$QOC_THREADS"

# Record the obs metrics registry alongside the timings: the JSONL's final
# {"type":"metrics",...} line snapshots kernel-call and cache-hit counts for
# the exact run the numbers came from.
metrics_out="${out%.json}.metrics.jsonl"
QOC_METRICS="$metrics_out" "$build_dir/bench/bench_perf_kernels" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.05 \
    "$@"

echo "wrote $out (repo build type: $build_type)"
echo "wrote $metrics_out (obs metrics for this run)"
