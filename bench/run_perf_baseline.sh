#!/usr/bin/env bash
# Runs the kernel microbenchmark suite and records the results as JSON, so a
# perf change can quote before/after numbers from identical invocations:
#
#   bench/run_perf_baseline.sh [build_dir] [output.json] [extra benchmark args]
#
# Defaults: build_dir=build, output=BENCH_kernels.json (repo root).  The
# min-time is passed as a plain double -- the pinned google-benchmark
# predates the "0.01s" suffix syntax.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
out="${2:-BENCH_kernels.json}"
shift $(( $# > 2 ? 2 : $# )) || true

bin="$build_dir/bench/bench_perf_kernels"
if [[ ! -x "$bin" ]]; then
    echo "error: $bin not found -- configure and build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j --target bench_perf_kernels" >&2
    exit 1
fi

"$bin" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.05 \
    "$@"

echo "wrote $out"
