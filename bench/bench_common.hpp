/// \file bench_common.hpp
/// \brief Shared setup for the per-figure/table reproduction binaries: the
///        standard gate designs (paper durations), RB settings, and the
///        devices each experiment ran on.

#pragma once

#include <cstdio>

#include "device/calibration.hpp"
#include "device/drift_model.hpp"
#include "experiments/gate_designer.hpp"
#include "experiments/irb_experiment.hpp"
#include "experiments/report.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"

namespace qoc::bench {

using namespace qoc::experiments;
namespace g = qoc::quantum::gates;

/// RB settings used by the reproduction benches.  Lengths reach into the
/// thousands because the 1Q gate errors sit at 1e-4 (see the paper's IRB
/// plots); shots/seeds keep the error bars at the paper's scale.
inline rb::RbOptions rb_settings_1q() {
    rb::RbOptions opts;
    opts.lengths = {1, 200, 500, 1000, 1800, 2800, 4000};
    opts.seeds_per_length = 16;
    opts.shots = 8192;
    return opts;
}

inline rb::RbOptions rb_settings_2q() {
    rb::RbOptions opts;
    opts.lengths = {1, 8, 16, 32, 56, 88, 128};
    opts.seeds_per_length = 12;
    opts.shots = 8192;
    return opts;
}

// --- the paper's standard pulse designs --------------------------------------

/// X gate, long variant: 480 dt (~105 ns), X+Y controls, open-system design
/// (paper Section 3.2 "X gate").
inline DesignedGate design_x_long(const device::BackendConfig& nominal) {
    GateDesignSpec spec;
    spec.target = g::x();
    spec.duration_dt = 480;
    spec.n_timeslots = 48;
    spec.model = DesignModel::kThreeLevelOpen;
    return design_1q_gate(nominal, 0, "x", spec);
}

/// X gate, short variant: 256 dt (~56 ns) per Table 2 / Fig. 13a.
inline DesignedGate design_x_short(const device::BackendConfig& nominal) {
    GateDesignSpec spec;
    spec.target = g::x();
    spec.duration_dt = 256;
    spec.n_timeslots = 32;
    spec.model = DesignModel::kThreeLevelClosed;
    return design_1q_gate(nominal, 0, "x", spec);
}

/// sqrt(X), long variant: 736 dt (~162 ns), single X control, decoherence
/// dropped (paper: "for sqrt(x) we neglected the decoherence processes").
inline DesignedGate design_sx_long(const device::BackendConfig& nominal) {
    GateDesignSpec spec;
    spec.target = g::sx();
    spec.duration_dt = 736;
    spec.n_timeslots = 48;
    spec.use_y_control = false;
    spec.model = DesignModel::kThreeLevelClosed;
    return design_1q_gate(nominal, 0, "sx", spec);
}

/// sqrt(X), short variant: 144 dt (~31.6 ns), Table 2 / Fig. 13d.
inline DesignedGate design_sx_short(const device::BackendConfig& nominal) {
    GateDesignSpec spec;
    spec.target = g::sx();
    spec.duration_dt = 144;
    spec.n_timeslots = 24;
    spec.use_y_control = false;
    spec.model = DesignModel::kThreeLevelClosed;
    return design_1q_gate(nominal, 0, "sx", spec);
}

/// Hadamard, long variant: 1216 dt (~267 ns), X+Y controls (paper Fig. 6).
inline DesignedGate design_h_long(const device::BackendConfig& nominal) {
    GateDesignSpec spec;
    spec.target = g::h();
    spec.duration_dt = 1216;
    spec.n_timeslots = 48;
    spec.model = DesignModel::kThreeLevelOpen;
    return design_1q_gate(nominal, 0, "h", spec);
}

/// Hadamard, short variant: 128 dt (~28 ns), Table 2 / Fig. 13g.
inline DesignedGate design_h_short(const device::BackendConfig& nominal) {
    GateDesignSpec spec;
    spec.target = g::h();
    spec.duration_dt = 128;
    spec.n_timeslots = 24;
    spec.model = DesignModel::kThreeLevelClosed;
    return design_1q_gate(nominal, 0, "h", spec);
}

/// CX with the Gaussian-square seed (paper Fig. 9, ibmq_montreal).
inline DesignedCx design_cx_gaussian_square(const device::BackendConfig& nominal) {
    CxDesignSpec spec;
    spec.seed = control::InitialPulseType::kGaussianSquare;
    return design_cx_gate(nominal, spec);
}

/// CX with the SINE seed (paper Fig. 8, Boeblingen/Rome).
inline DesignedCx design_cx_sine(const device::BackendConfig& nominal) {
    CxDesignSpec spec;
    spec.seed = control::InitialPulseType::kSine;
    return design_cx_gate(nominal, spec);
}

/// Prints the standard header for a reproduction binary.
inline void banner(const char* id, const char* what) {
    std::printf("=============================================================\n");
    std::printf("%s -- %s\n", id, what);
    std::printf("=============================================================\n");
}

}  // namespace qoc::bench
