/// Cross-check for the paper's conclusion that "IRB results do not always
/// present an accurate picture": estimate the same gates' error three ways
/// -- direct (exact channel fidelity), process tomography (SPAM-mitigated)
/// and IRB -- for an incoherently-limited gate and for a deliberately
/// miscalibrated (coherent-error) gate.  IRB tracks the incoherent case well
/// and misreports the coherent one.

#include "bench_common.hpp"

#include "quantum/fidelity.hpp"
#include "rb/tomography.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Cross-check", "direct vs tomography vs IRB error estimates");

    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    rb::Clifford1Q group;
    const std::size_t levels = dev.config().levels;

    auto assess = [&](const char* label, const linalg::Mat& sup) {
        const double direct = 1.0 - quantum::average_gate_fidelity_subspace(g::x(), sup, levels);
        const auto tomo = rb::process_tomography_1q(dev, defaults, sup, g::x(), 0,
                                                    {.shots = 1 << 15});
        rb::RbOptions opts = rb_settings_1q();
        opts.seeds_per_length = 8;
        const auto irb = rb::run_irb_1q(dev, rb::GateSet1Q(dev, defaults, 0, group), 0, sup,
                                        group.find(g::x()), opts);
        std::printf("%-34s direct=%.3e  tomography=%.3e  IRB=%.3e\n", label, direct,
                    1.0 - tomo.avg_gate_fidelity, irb.gate_error);
    };

    // 1. The default X: mostly incoherent error (decoherence + drive noise).
    assess("default X (incoherent-dominated)",
           dev.schedule_superop_1q(defaults.get("x", {0}), 0));

    // 2. A coherently over-rotated X: amplitude 6% high (direct error well
    // above tomography's SPAM floor).
    {
        const auto rabi = device::rabi_calibrate(dev, 0);
        const double beta = device::default_drag_beta(dev.config(), 0, 160);
        const auto wf =
            pulse::drag_waveform(160, {1.06 * rabi.pi_amplitude, 0.0}, beta);
        assess("over-rotated X (+6% amplitude)", dev.waveform_superop_1q(wf.samples(), 0));
    }

    // 3. A detuned X: the qubit drifted 2pi*300 kHz since calibration.
    {
        auto cfg = dev.config();
        cfg.qubits[0].detuning = 2.0 * M_PI * 3.0e-4;
        device::PulseExecutor drifted(cfg);
        const auto sup = drifted.schedule_superop_1q(defaults.get("x", {0}), 0);
        const double direct = 1.0 - quantum::average_gate_fidelity_subspace(g::x(), sup, levels);
        const auto tomo = rb::process_tomography_1q(drifted, defaults, sup, g::x(), 0,
                                                    {.shots = 1 << 15});
        rb::RbOptions opts = rb_settings_1q();
        opts.seeds_per_length = 8;
        const auto irb = rb::run_irb_1q(drifted, rb::GateSet1Q(drifted, defaults, 0, group), 0,
                                        sup, group.find(g::x()), opts);
        std::printf("%-34s direct=%.3e  tomography=%.3e  IRB=%.3e\n",
                    "detuned X (300 kHz drift)", direct, 1.0 - tomo.avg_gate_fidelity,
                    irb.gate_error);
    }

    // 4. Two-qubit cross-check: the default CX, where the paper's IRB error
    // bars were widest.
    {
        const auto sup = dev.schedule_superop_2q(defaults.get("cx", {0, 1}));
        const double direct = 1.0 - quantum::average_gate_fidelity_superop(g::cx(), sup);
        const auto tomo = rb::process_tomography_2q(dev, defaults, sup, g::cx(),
                                                    {.shots = 1 << 14});
        std::printf("%-34s direct=%.3e  tomography=%.3e  (IRB: see Fig. 10 bench)\n",
                    "default CX (two-qubit)", direct, 1.0 - tomo.avg_gate_fidelity);
    }

    std::printf("\n[three lessons, all the paper's own caveats quantified:\n"
                "  * tomography has a SPAM floor near 1e-3: it cannot resolve the default\n"
                "    gate (its estimate can even come out negative) -- the reason RB exists;\n"
                "  * IRB tracks incoherent error well but twirls coherent errors into a\n"
                "    depolarizing rate and can under-report them badly (detuned case);\n"
                "  * no single number tells the whole story -- 'IRB results do not always\n"
                "    present an accurate picture']\n");
    return 0;
}
