/// Reproduces paper Fig. 11: day-to-day behaviour of the sqrt(X) gate.
///  (a) the SAME optimized pulse executed over four consecutive days;
///  (b) a pulse re-optimized daily from the backend's reported calibration;
///  (c) the IRB error next to the histogram -- the paper's punchline: the
///      measured state probability wanders while IRB barely moves.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 11", "sqrt(X) over four days: fixed pulse vs daily re-optimization");

    // A drift window containing an anomalous day, like the paper's Dec run.
    const device::DriftModel drift(device::ibmq_montreal(), /*seed=*/2021);
    int first_day = 0;
    for (int d = 0; d < 40; ++d) {
        if (drift.is_jump_day(d + 1) || drift.is_jump_day(d + 2)) {
            first_day = d;
            break;
        }
    }
    std::printf("drift window: days %d..%d (contains an anomalous calibration day)\n\n",
                first_day, first_day + 3);

    const DesignedGate fixed = design_sx_long(device::nominal_model(drift.nominal()));
    rb::Clifford1Q group;
    rb::RbOptions irb_opts = rb_settings_1q();
    irb_opts.seeds_per_length = 8;  // per-day runs; keep each day quick

    std::printf("%-5s %-6s | %-18s | %-18s | %-16s\n", "day", "jump?", "(a) fixed P(1) [%]",
                "(b) daily P(1) [%]", "(c) fixed IRB err");
    for (int offset = 0; offset < 4; ++offset) {
        const int day = first_day + offset;
        const auto today = drift.device_on_day(day);
        device::PulseExecutor dev(today);
        const auto defaults = device::build_default_gates(dev);

        // (a) the fixed pulse.
        const auto fixed_counts =
            state_histogram_1q(dev, defaults, "sx", 0, &fixed.schedule, 4096, 1100 + day);

        // (b) re-optimized daily against the *reported* calibration (T1/T2
        // and frequency are published; amplitude-scale drift is not).
        const DesignedGate daily = design_sx_long(device::nominal_model(today));
        const auto daily_counts =
            state_histogram_1q(dev, defaults, "sx", 0, &daily.schedule, 4096, 1200 + day);

        // (c) IRB of the fixed pulse.
        const auto sup = dev.schedule_superop_1q(fixed.schedule, 0);
        const auto irb = rb::run_irb_1q(dev, rb::GateSet1Q(dev, defaults, 0, group), 0, sup,
                                        group.find(g::sx()), irb_opts);

        std::printf("%-5d %-6s | %-18.2f | %-18.2f | %-16s\n", day,
                    drift.is_jump_day(day) ? "yes" : "no",
                    100.0 * fixed_counts.probability("1"),
                    100.0 * daily_counts.probability("1"),
                    format_error_rate(irb.gate_error, irb.gate_error_err).c_str());
    }
    std::printf("\n[paper: one day's histogram differs sharply from the others while the\n"
                " IRB gate error stays low and similar across days -- IRB is insensitive\n"
                " to the readout drift that dominates the histograms]\n");
    return 0;
}
