/// Reproduces paper Table 1: IRB error rates of the long-duration custom
/// pulses against the defaults.
///   X       (montreal): 2.0(5)e-4  vs 2.8(5)e-4    -> 29%
///   sqrt(X) (montreal): 2.4(8)e-4  vs 6.5(1.4)e-4  -> 63%
///   H       (toronto) : 26(4)e-4   vs 5.0(8)e-4    -> N/A (custom worse)
///   CX      (montreal): 5.6(9)e-3  vs 6.2(1.3)e-3  -> 10%

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Table 1", "long-duration custom pulses vs defaults (IRB)");

    rb::Clifford1Q c1;
    std::vector<std::vector<std::string>> rows;

    // X and sqrt(X) on ibmq_montreal.
    {
        device::PulseExecutor dev(device::ibmq_montreal());
        const auto defaults = device::build_default_gates(dev);
        const auto nominal = device::nominal_model(dev.config());

        const auto x_cmp = compare_1q_gate(dev, defaults, "x", 0,
                                           design_x_long(nominal).schedule, c1,
                                           rb_settings_1q());
        char impr[32];
        std::snprintf(impr, sizeof(impr), "%.0f%%", x_cmp.improvement_percent);
        rows.push_back({"X (480 dt)",
                        format_error_rate(x_cmp.custom.gate_error, x_cmp.custom.gate_error_err),
                        format_error_rate(x_cmp.standard.gate_error,
                                          x_cmp.standard.gate_error_err),
                        impr, "2.0(5)e-4 vs 2.8(5)e-4, 29%"});

        const auto sx_cmp = compare_1q_gate(dev, defaults, "sx", 0,
                                            design_sx_long(nominal).schedule, c1,
                                            rb_settings_1q());
        std::snprintf(impr, sizeof(impr), "%.0f%%", sx_cmp.improvement_percent);
        rows.push_back({"sqrt(X) (736 dt)",
                        format_error_rate(sx_cmp.custom.gate_error,
                                          sx_cmp.custom.gate_error_err),
                        format_error_rate(sx_cmp.standard.gate_error,
                                          sx_cmp.standard.gate_error_err),
                        impr, "2.4(8)e-4 vs 6.5(1.4)e-4, 63%"});
    }

    // H on ibmq_toronto (drifted day, like the paper's run -- see Fig. 7).
    {
        const device::DriftModel drift(device::ibmq_toronto(), 411);
        device::PulseExecutor dev(drift.device_on_day(2));
        const auto defaults = device::build_default_gates(dev);
        const auto h_cmp = compare_1q_gate(dev, defaults, "h", 0,
                                           design_h_long(device::nominal_model(
                                               drift.nominal())).schedule,
                                           c1, rb_settings_1q());
        rows.push_back({"H (1216 dt)",
                        format_error_rate(h_cmp.custom.gate_error, h_cmp.custom.gate_error_err),
                        format_error_rate(h_cmp.standard.gate_error,
                                          h_cmp.standard.gate_error_err),
                        h_cmp.improvement_percent > 0 ? "(improved)" : "N/A",
                        "26(4)e-4 vs 5.0(8)e-4, N/A"});
    }

    // CX on ibmq_montreal.
    {
        device::PulseExecutor dev(device::ibmq_montreal());
        const auto defaults = device::build_default_gates(dev);
        rb::Clifford2Q c2(c1);
        const auto cx_cmp = compare_cx_gate(
            dev, defaults, design_cx_gaussian_square(device::nominal_model(dev.config())).schedule,
            c1, c2, rb_settings_2q());
        char impr[32];
        std::snprintf(impr, sizeof(impr), "%.0f%%", cx_cmp.improvement_percent);
        rows.push_back({"CX",
                        format_error_rate(cx_cmp.custom.gate_error,
                                          cx_cmp.custom.gate_error_err),
                        format_error_rate(cx_cmp.standard.gate_error,
                                          cx_cmp.standard.gate_error_err),
                        impr, "5.6(9)e-3 vs 6.2(1.3)e-3, 10%"});
    }

    print_table("Table 1: error rate per gate, long-duration custom pulses",
                {"gate", "custom IRB error", "default IRB error", "improvement",
                 "paper (custom vs default)"},
                rows);
    return 0;
}
