/// Reproduces paper Table 2: IRB error rates of the SHORT custom pulses vs
/// the defaults.
///   X (56 ns)        : 1.38(1.1)e-4 vs 2.8(5)e-4   -> 49.8%
///   sqrt(X) (31 ns)  : 4.13(2)e-4   vs 6.5(1.4)e-4 -> 36%
///   H (28 ns)        : 3.07(1.3)e-4 vs 5.0(8)e-4   -> 38.6%
/// The headline: pulses SHORTER than the defaults "help navigate around the
/// decoherence errors".

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Table 2", "short-duration custom pulses vs defaults (IRB)");

    rb::Clifford1Q c1;
    std::vector<std::vector<std::string>> rows;

    auto run = [&](const char* label, const device::BackendConfig& cfg, const char* gate,
                   const DesignedGate& designed, const char* paper) {
        device::PulseExecutor dev(cfg);
        const auto defaults = device::build_default_gates(dev);
        const auto cmp =
            compare_1q_gate(dev, defaults, gate, 0, designed.schedule, c1, rb_settings_1q());
        char impr[32];
        std::snprintf(impr, sizeof(impr), "%.1f%%", cmp.improvement_percent);
        rows.push_back({label,
                        format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err),
                        format_error_rate(cmp.standard.gate_error,
                                          cmp.standard.gate_error_err),
                        impr, paper});
    };

    const auto montreal = device::ibmq_montreal();
    const auto toronto = device::ibmq_toronto();
    run("X (256 dt ~ 56 ns)", montreal, "x", design_x_short(device::nominal_model(montreal)),
        "1.38(1.1)e-4 vs 2.8(5)e-4, 49.8%");
    run("sqrt(X) (144 dt ~ 31 ns)", montreal, "sx",
        design_sx_short(device::nominal_model(montreal)), "4.13(2)e-4 vs 6.5(1.4)e-4, 36%");
    run("H (128 dt ~ 28 ns)", toronto, "h", design_h_short(device::nominal_model(toronto)),
        "3.07(1.3)e-4 vs 5.0(8)e-4, 38.58%");

    print_table("Table 2: error rate per gate, short-duration custom pulses",
                {"gate", "custom IRB error", "default IRB error", "improvement",
                 "paper (custom vs default)"},
                rows);
    return 0;
}
