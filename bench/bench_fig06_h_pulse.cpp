/// Reproduces paper Fig. 6: the optimized Hadamard pulse on ibmq_toronto
/// (1216 dt ~ 267 ns, Pauli X + Y controls, drag seed), including the
/// initial-vs-final control frames.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 6", "optimized Hadamard pulse on ibmq_toronto D0 (1216 dt, X+Y)");

    device::PulseExecutor dev(device::ibmq_toronto());
    const DesignedGate designed = design_h_long(device::nominal_model(dev.config()));

    std::printf("model infidelity: %.3e\n", designed.model_fid_err);
    std::printf("pulse duration: %zu dt = %.1f ns (default H: virtual-Z + one 160 dt sx)\n",
                designed.duration_dt, static_cast<double>(designed.duration_dt) * dev.config().dt);

    auto column = [&](const control::ControlAmplitudes& amps, std::size_t j) {
        std::vector<double> out(amps.size());
        for (std::size_t k = 0; k < amps.size(); ++k) out[k] = amps[k][j];
        return out;
    };
    std::printf("\ninitial controls (frame 1):\n");
    print_pulse("u_x seed", column(designed.optim.initial_amps, 0));
    print_pulse("u_y seed", column(designed.optim.initial_amps, 1));
    std::printf("optimized controls:\n");
    print_pulse("u_x final", column(designed.optim.final_amps, 0));
    print_pulse("u_y final", column(designed.optim.final_amps, 1));

    const auto samples = designed.schedule.channel_samples(pulse::drive_channel(0),
                                                           designed.duration_dt);
    print_waveform("D0 drive waveform (custom H gate)", samples);
    return 0;
}
