/// Google-benchmark microbenchmarks of the numerical kernels underpinning
/// every reproduction: matrix exponentials, GRAPE objective evaluations,
/// RB sequence simulation and Clifford bookkeeping.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "control/grape.hpp"
#include "device/calibration.hpp"
#include "experiments/design_pipeline.hpp"
#include "experiments/gate_designer.hpp"
#include "experiments/irb_experiment.hpp"
#include "linalg/expm.hpp"
#include "obs/obs.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"
#include "rb/rb.hpp"
#include "service/calibration_service.hpp"

namespace {

using namespace qoc;

linalg::Mat random_hermitian(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    linalg::Mat m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = {dist(rng), 0.0};
        for (std::size_t j = i + 1; j < n; ++j) {
            m(i, j) = {dist(rng), dist(rng)};
            m(j, i) = std::conj(m(i, j));
        }
    }
    return m;
}

void BM_ExpmBySize(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Mat h = random_hermitian(n, 7);
    const linalg::cplx scale{0.0, -0.1};
    for (auto _ : state) {
        benchmark::DoNotOptimize(linalg::expm(scale * h));
    }
}
BENCHMARK(BM_ExpmBySize)->Arg(2)->Arg(4)->Arg(9)->Arg(16)->Arg(32);

void BM_ExpmFrechet(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const linalg::Mat a = linalg::cplx{0.0, -0.1} * random_hermitian(n, 7);
    const linalg::Mat e = linalg::cplx{0.0, -0.1} * random_hermitian(n, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(linalg::expm_frechet(a, e));
    }
}
BENCHMARK(BM_ExpmFrechet)->Arg(2)->Arg(4)->Arg(9)->Arg(16);

// --- multi-direction Frechet: augmented reference vs shared engine ----------
//
// Args are (N, m): matrix size and number of directions (= GRAPE controls).
// The sweep covers the paper's single-qubit (N=3 transmon) and pair (N=9)
// sizes with m = 2 and 4 controls.

std::vector<linalg::Mat> frechet_directions(std::size_t n, std::size_t m) {
    std::vector<linalg::Mat> dirs;
    for (std::size_t j = 0; j < m; ++j) {
        dirs.push_back(linalg::cplx{0.0, -0.1} *
                       random_hermitian(n, 100 + static_cast<unsigned>(j)));
    }
    return dirs;
}

/// Old GRAPE cost: one Van Loan 2Nx2N augmented expm per direction.
void BM_ExpmFrechetAugmented(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto m = static_cast<std::size_t>(state.range(1));
    const linalg::Mat a = linalg::cplx{0.0, -0.1} * random_hermitian(n, 7);
    const auto dirs = frechet_directions(n, m);
    for (auto _ : state) {
        for (std::size_t j = 0; j < m; ++j) {
            benchmark::DoNotOptimize(linalg::expm_frechet(a, dirs[j]));
        }
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_ExpmFrechetAugmented)
    ->Args({3, 2})->Args({3, 4})->Args({9, 2})->Args({9, 4});

/// New cost: e^A plus all m derivatives from one shared-intermediate call,
/// with the workspace reused across iterations exactly as the GRAPE hot
/// loop reuses it across slots (no allocation after the first iteration).
void BM_ExpmFrechetMulti(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto m = static_cast<std::size_t>(state.range(1));
    const linalg::Mat a = linalg::cplx{0.0, -0.1} * random_hermitian(n, 7);
    const auto dirs = frechet_directions(n, m);
    linalg::ExpmWorkspace ws;
    linalg::Mat ea;
    std::vector<linalg::Mat> ls(m);
    for (auto _ : state) {
        linalg::expm_frechet_multi(a, dirs.data(), m, ea, ls.data(), ws,
                                   linalg::ExpmMethod::kPade);
        benchmark::DoNotOptimize(ea);
        benchmark::DoNotOptimize(ls);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_ExpmFrechetMulti)
    ->Args({3, 2})->Args({3, 4})->Args({9, 2})->Args({9, 4});

/// Spectral (Daleckii-Krein) path on the same anti-Hermitian inputs.
void BM_ExpmFrechetMultiSpectral(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto m = static_cast<std::size_t>(state.range(1));
    const linalg::Mat a = linalg::cplx{0.0, -0.1} * random_hermitian(n, 7);
    const auto dirs = frechet_directions(n, m);
    linalg::ExpmWorkspace ws;
    linalg::Mat ea;
    std::vector<linalg::Mat> ls(m);
    for (auto _ : state) {
        linalg::expm_frechet_multi(a, dirs.data(), m, ea, ls.data(), ws,
                                   linalg::ExpmMethod::kSpectral);
        benchmark::DoNotOptimize(ea);
        benchmark::DoNotOptimize(ls);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
}
BENCHMARK(BM_ExpmFrechetMultiSpectral)
    ->Args({3, 2})->Args({3, 4})->Args({9, 2})->Args({9, 4});

void BM_GrapeObjectiveClosed(benchmark::State& state) {
    control::GrapeProblem prob;
    prob.system.drift = quantum::duffing_drift(3, 0.0, -2.0);
    prob.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
    prob.target = quantum::gates::x();
    prob.subspace_isometry = quantum::qubit_isometry(3);
    prob.n_timeslots = static_cast<std::size_t>(state.range(0));
    prob.evo_time = 100.0;
    prob.initial_amps.assign(prob.n_timeslots, {0.05, 0.01});
    for (auto _ : state) {
        // One full gradient-descent step = one objective + gradient eval.
        benchmark::DoNotOptimize(control::grape_gradient_descent(prob, 0.0, 1));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GrapeObjectiveClosed)->Arg(16)->Arg(48)->Arg(128);

/// Open-system (Lindblad superoperator) objective + gradient on the paper's
/// 3-level transmon: 9x9 generators, kTraceDiff fidelity.  This is the
/// workload the `linalg::simd` kernel routing targets -- the expm/Frechet
/// gemms and LU solves dominate here.
void BM_GrapeObjectiveOpen(benchmark::State& state) {
    control::GrapeProblem prob;
    const linalg::Mat h0 = quantum::duffing_drift(3, 0.0, -2.0);
    const std::vector<linalg::Mat> c_ops = {0.01 * quantum::annihilation(3),
                                            0.01 * quantum::number_op(3)};
    prob.system.drift = quantum::liouvillian(h0, c_ops);
    prob.system.ctrls = {quantum::liouvillian_hamiltonian(0.5 * quantum::drive_x(3)),
                         quantum::liouvillian_hamiltonian(0.5 * quantum::drive_y(3))};
    linalg::Mat x3(3, 3);  // X on the qubit subspace, identity on leakage
    x3(0, 1) = 1.0;
    x3(1, 0) = 1.0;
    x3(2, 2) = 1.0;
    prob.target = quantum::unitary_superop(x3);
    prob.fidelity = control::FidelityType::kTraceDiff;
    prob.n_timeslots = static_cast<std::size_t>(state.range(0));
    prob.evo_time = 100.0;
    prob.initial_amps.assign(prob.n_timeslots, {0.05, 0.01});
    for (auto _ : state) {
        benchmark::DoNotOptimize(control::grape_gradient_descent(prob, 0.0, 1));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GrapeObjectiveOpen)->Arg(16)->Arg(48)->Arg(128);

// --- structured superoperator apply: dense matvec vs factored/CSR -----------
//
// Args are (d, path): Hilbert dimension and 0 = dense d^2 x d^2 matvec
// (the legacy arithmetic), 1 = Kronecker-factored apply (O((2+n_c) d^3)),
// 2 = StructuredSuperOp dispatch (CSR when sparse enough, SIMD dense gemv
// otherwise).  d = 3 and d = 9 are the paper's transmon and pair sizes.

void BM_SuperopApply(benchmark::State& state) {
    const auto d = static_cast<std::size_t>(state.range(0));
    const linalg::Mat h = random_hermitian(d, 11);
    const std::vector<linalg::Mat> c_ops = {0.1 * quantum::annihilation(d),
                                            0.05 * quantum::number_op(d)};
    const linalg::Mat dense = quantum::liouvillian(h, c_ops);
    const quantum::KronSuperOp kron = quantum::KronSuperOp::liouvillian(h, c_ops);
    const auto structured = quantum::StructuredSuperOp::from_dense(dense);

    linalg::Mat rho(d, d);
    rho(0, 0) = 1.0;
    linalg::Mat v(d * d, 1);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) v(j * d + i, 0) = rho(i, j);
    }
    linalg::Mat out, scratch;
    switch (state.range(1)) {
        case 0:
            for (auto _ : state) {
                quantum::apply_superop_into(dense, v, out);
                benchmark::DoNotOptimize(out);
            }
            break;
        case 1:
            for (auto _ : state) {
                kron.apply_vec_into(v, out, scratch);
                benchmark::DoNotOptimize(out);
            }
            break;
        default:
            for (auto _ : state) {
                structured.apply_into(v, out);
                benchmark::DoNotOptimize(out);
            }
            break;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SuperopApply)
    ->Args({3, 0})->Args({3, 1})->Args({3, 2})
    ->Args({9, 0})->Args({9, 1})->Args({9, 2});

/// Batched SoA apply: one d^2 x B gemm vs B strided single-column applies
/// of the same structured superop -- the RB seed-block engine's two paths.
void BM_SuperopApplyBatched(benchmark::State& state) {
    const auto d = static_cast<std::size_t>(state.range(0));
    const auto batch = static_cast<std::size_t>(state.range(1));
    const linalg::Mat h = random_hermitian(d, 13);
    const auto structured =
        quantum::StructuredSuperOp::from_dense(quantum::liouvillian(h, {}));
    linalg::Mat x(d * d, batch);
    for (std::size_t j = 0; j < batch; ++j) x(0, j) = 1.0;
    linalg::Mat out(d * d, batch);
    for (auto _ : state) {
        structured.apply_batch_into(x, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SuperopApplyBatched)->Args({3, 8})->Args({3, 32})->Args({9, 8});

void BM_LindbladPropagator1q(benchmark::State& state) {
    device::PulseExecutor exec(device::ibmq_montreal());
    const auto wf = pulse::drag_waveform(static_cast<std::size_t>(state.range(0)), {0.1, 0.0},
                                         0.03);
    for (auto _ : state) {
        benchmark::DoNotOptimize(exec.waveform_superop_1q(wf.samples(), 0));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LindbladPropagator1q)->Arg(160)->Arg(480)->Arg(1216);

void BM_RbSequence1q(benchmark::State& state) {
    static device::PulseExecutor exec(device::ibmq_montreal());
    static const auto defaults = device::build_default_gates(exec);
    static const rb::Clifford1Q group;
    static const rb::GateSet1Q gates(exec, defaults, 0, group);
    rb::RbOptions opts;
    opts.lengths = {static_cast<std::size_t>(state.range(0))};
    opts.seeds_per_length = 2;
    opts.shots = 1024;
    for (auto _ : state) {
        // fit needs >= 3 points; time the raw sequence simulation through
        // the public API with a 3-point curve instead.
        rb::RbOptions o = opts;
        o.lengths = {1, static_cast<std::size_t>(state.range(0)) / 2,
                     static_cast<std::size_t>(state.range(0))};
        benchmark::DoNotOptimize(rb::run_rb_1q(exec, gates, 0, o));
    }
}
BENCHMARK(BM_RbSequence1q)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RbSequence2q(benchmark::State& state) {
    static device::PulseExecutor exec(device::ibmq_montreal());
    static const auto defaults = device::build_default_gates(exec);
    static const rb::Clifford1Q c1;
    static const rb::Clifford2Q c2(c1);
    static const rb::GateSet2Q gates(exec, defaults, c2);
    const auto m = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        rb::RbOptions o;
        o.lengths = {1, m / 2, m};
        o.seeds_per_length = 2;
        o.shots = 1024;
        benchmark::DoNotOptimize(rb::run_rb_2q(exec, gates, o));
    }
}
BENCHMARK(BM_RbSequence2q)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_IrbPipeline1q(benchmark::State& state) {
    static device::PulseExecutor exec(device::ibmq_montreal());
    static const auto defaults = device::build_default_gates(exec);
    static const rb::Clifford1Q group;
    static const rb::GateSet1Q gates(exec, defaults, 0, group);
    static const linalg::Mat x_super = exec.schedule_superop_1q(defaults.get("x", {0}), 0);
    static const std::size_t x_index = group.find(quantum::gates::x());
    for (auto _ : state) {
        rb::RbOptions o;
        o.lengths = {1, 64, 128};
        o.seeds_per_length = 2;
        o.shots = 1024;
        benchmark::DoNotOptimize(rb::run_irb_1q(exec, gates, 0, x_super, x_index, o));
    }
}
BENCHMARK(BM_IrbPipeline1q)->Unit(benchmark::kMillisecond);

// --- batched design pipeline vs sequential per-call flow --------------------
//
// Same 4-gate x 4-seed design+IRB workload through both front ends.  The
// batch runs it as one DesignPipeline::run, which shares one GateSet1Q and
// one reference RB curve across every characterization on the qubit (1 gate
// set, 1 reference + 8 interleaved curves).  The sequential baseline is
// the pre-pipeline per-call composition -- design_1q_gate per candidate,
// then a fresh GateSet1Q and two run_irb_1q calls per gate, each of which
// re-measures the reference (4 gate sets, 8 reference + 8 interleaved
// curves).  The design work is identical on both sides, so the ratio
// isolates the shared-work dedup.

struct PipelineBenchGate {
    const char* name;
    std::size_t qubit;
};
constexpr PipelineBenchGate kPipelineGates[] = {
    {"x", 0}, {"y", 0}, {"sx", 0}, {"h", 0}};
constexpr std::uint64_t kPipelineSeeds[] = {1, 2, 3, 4};

experiments::GateDesignSpec pipeline_bench_spec(const std::string& gate) {
    experiments::GateDesignSpec s;
    s.target = experiments::ideal_1q_gate(gate);
    s.duration_dt = 48;
    s.n_timeslots = 6;
    s.model = experiments::DesignModel::kTwoLevelClosed;
    s.max_iterations = 3;
    s.target_fid_err = 1e-8;
    return s;
}

rb::RbOptions pipeline_bench_rb() {
    rb::RbOptions o;
    o.lengths = {1, 150, 400};
    o.seeds_per_length = 3;
    o.shots = 512;
    return o;
}

void BM_DesignPipelineBatch(benchmark::State& state) {
    static device::PulseExecutor exec(device::ibmq_montreal());
    static const auto defaults = device::build_default_gates(exec);
    experiments::DesignPipelineOptions po;
    po.rb = pipeline_bench_rb();
    std::vector<experiments::GateJob1Q> jobs;
    for (const PipelineBenchGate& g : kPipelineGates) {
        experiments::GateJob1Q job;
        job.gate_name = g.name;
        job.qubit = g.qubit;
        job.spec = pipeline_bench_spec(g.name);
        job.seeds.assign(std::begin(kPipelineSeeds), std::end(kPipelineSeeds));
        jobs.push_back(std::move(job));
    }
    for (auto _ : state) {
        // A fresh pipeline per iteration so the shared contexts (gate sets,
        // reference curves) are rebuilt -- amortizing them across iterations
        // would overstate the dedup win.
        const experiments::DesignPipeline pipeline(exec, defaults, po);
        benchmark::DoNotOptimize(pipeline.run(jobs));
    }
}
BENCHMARK(BM_DesignPipelineBatch)->Unit(benchmark::kMillisecond);

void BM_DesignPipelineSequential(benchmark::State& state) {
    static device::PulseExecutor exec(device::ibmq_montreal());
    static const auto defaults = device::build_default_gates(exec);
    static const rb::Clifford1Q group;
    const rb::RbOptions opts = pipeline_bench_rb();
    const auto model = device::nominal_model(exec.config());
    for (auto _ : state) {
        for (const PipelineBenchGate& g : kPipelineGates) {
            experiments::DesignedGate best;
            double best_err = 2.0;
            for (const std::uint64_t seed : kPipelineSeeds) {
                experiments::GateDesignSpec sp = pipeline_bench_spec(g.name);
                sp.random_seed = seed;
                experiments::DesignedGate d =
                    experiments::design_1q_gate(model, g.qubit, g.name, sp);
                if (d.model_fid_err < best_err) {
                    best_err = d.model_fid_err;
                    best = std::move(d);
                }
            }
            const rb::GateSet1Q gates(exec, defaults, g.qubit, group);
            const std::size_t cliff = group.find(experiments::ideal_1q_gate(g.name));
            const auto custom_super = exec.schedule_superop_1q(best.schedule, g.qubit);
            const auto default_super =
                experiments::default_gate_superop_1q(exec, defaults, g.name, g.qubit);
            benchmark::DoNotOptimize(
                rb::run_irb_1q(exec, gates, g.qubit, custom_super, cliff, opts));
            benchmark::DoNotOptimize(
                rb::run_irb_1q(exec, gates, g.qubit, default_super, cliff, opts));
        }
    }
}
BENCHMARK(BM_DesignPipelineSequential)->Unit(benchmark::kMillisecond);

// --- observability gate cost ----------------------------------------------
//
// Arg 0: obs fully disabled (the default production state) -- the per-call
// cost must be one relaxed load + branch.  Arg 1: tracing + metrics enabled
// in memory-only mode, bounding the enabled-path cost of a Span + counter
// pair.  State is reset afterwards so the remaining benchmarks always run
// with obs off.
void BM_ObsOverhead(benchmark::State& state) {
    // When QOC_TRACE/QOC_METRICS already activated obs (run_perf_baseline.sh
    // does), leave that state alone -- resetting would close the live
    // telemetry file.  Both args then measure the externally-enabled path.
    const bool externally_enabled =
        obs::g_obs_state.load(std::memory_order_relaxed) != 0;
    if (!externally_enabled && state.range(0) == 1) {
        obs::enable_tracing("");
        obs::enable_metrics("");
    }
    constexpr int kOpsPerIter = 1000;
    for (auto _ : state) {
        for (int i = 0; i < kOpsPerIter; ++i) {
            obs::Span span("bench.obs_overhead");
            obs::count(obs::Cnt::kGemmCalls);
        }
    }
    state.SetItemsProcessed(state.iterations() * kOpsPerIter);
    if (!externally_enabled) obs::reset_for_testing();
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1);

// Same two-state shape for the lock-free latency histograms: Arg 0 bounds
// the disabled path (one relaxed load + branch, ~1 ns), Arg 1 the enabled
// log-bucketed record (owner-thread relaxed load+store on a bucket cell --
// still mutex-free, unlike the named hist_observe it replaced on hot paths).
// An LCG varies the value so bucket indexing isn't constant-folded.
void BM_HistObserve(benchmark::State& state) {
    const bool externally_enabled =
        obs::g_obs_state.load(std::memory_order_relaxed) != 0;
    if (!externally_enabled && state.range(0) == 1) obs::enable_metrics("");
    constexpr int kOpsPerIter = 1000;
    std::uint64_t value = 0x9e3779b97f4a7c15ull;
    for (auto _ : state) {
        for (int i = 0; i < kOpsPerIter; ++i) {
            value = value * 6364136223846793005ull + 1442695040888963407ull;
            obs::hist_record(obs::Hist::kPoolQueueWait, value >> 40);
        }
    }
    benchmark::DoNotOptimize(value);
    state.SetItemsProcessed(state.iterations() * kOpsPerIter);
    if (!externally_enabled) obs::reset_for_testing();
}
BENCHMARK(BM_HistObserve)->Arg(0)->Arg(1);

// --- calibration service: cached steady state vs per-request design ---------
//
// The fleet scenario the service exists for: after the first day, almost
// every request repeats a (device-bucket, gate, duration, ...) combination
// already designed, so the steady state is hit-dominated.  The cached
// benchmark measures that steady state (every request served from the
// content-addressed store); the uncached baseline pays the full
// design_1q_gate cost per request, which is what the pre-service per-call
// flow did.  Both sides use the same tiny design spec, so the ratio is the
// cache win, not a workload difference.

service::PulseRequest calib_bench_request(std::size_t i) {
    static constexpr const char* kGates[] = {"x", "sx", "h"};
    static constexpr std::size_t kDurations[] = {48, 64};
    service::PulseRequest r;
    r.gate = kGates[i % 3];
    r.duration_dt = kDurations[(i / 3) % 2];
    r.qubit = 0;
    r.n_timeslots = 6;
    r.max_iterations = 3;
    return r;
}

void BM_CalibServiceHitSteadyState(benchmark::State& state) {
    static service::CalibrationService* svc = [] {
        service::ServiceOptions o;
        o.amp_bound = 0.5;
        auto* s = new service::CalibrationService(o);
        s->register_device(0, device::ibmq_montreal());
        for (std::size_t i = 0; i < 6; ++i) (void)s->request(0, calib_bench_request(i));
        return s;
    }();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(svc->request(0, calib_bench_request(i++)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibServiceHitSteadyState);

void BM_CalibServiceUncachedDesign(benchmark::State& state) {
    static device::PulseExecutor exec(device::ibmq_montreal());
    const auto model = device::nominal_model(exec.config());
    std::size_t i = 0;
    for (auto _ : state) {
        const service::PulseRequest r = calib_bench_request(i++);
        experiments::GateDesignSpec sp;
        sp.target = experiments::ideal_1q_gate(r.gate);
        sp.duration_dt = r.duration_dt;
        sp.n_timeslots = r.n_timeslots;
        sp.model = experiments::DesignModel::kTwoLevelClosed;
        sp.max_iterations = r.max_iterations;
        sp.amp_bound = 0.5;
        benchmark::DoNotOptimize(
            experiments::design_1q_gate(model, r.qubit, r.gate, sp));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibServiceUncachedDesign)->Unit(benchmark::kMillisecond);

void BM_Clifford2qSampling(benchmark::State& state) {
    static const rb::Clifford1Q c1;
    static const rb::Clifford2Q c2(c1);
    std::mt19937_64 rng(3);
    for (auto _ : state) {
        const std::size_t i = c2.sample(rng);
        benchmark::DoNotOptimize(c2.unitary(i));
    }
}
BENCHMARK(BM_Clifford2qSampling);

void BM_Clifford2qInverseLookup(benchmark::State& state) {
    static const rb::Clifford1Q c1;
    static const rb::Clifford2Q c2(c1);
    (void)c2.find(quantum::gates::cx());  // warm the lookup table
    std::mt19937_64 rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(c2.inverse(c2.sample(rng)));
    }
}
BENCHMARK(BM_Clifford2qInverseLookup);

}  // namespace

BENCHMARK_MAIN();
