/// Reproduces paper Fig. 5: IRB of custom vs default sqrt(X) on
/// ibmq_montreal plus the equal-superposition histogram.
/// Paper values: custom 2.4e-4 +- 8e-5, default 6.5e-4 +- 1.42e-4.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 5", "IRB of custom vs default sqrt(X) on ibmq_montreal + histogram");

    device::PulseExecutor dev(device::ibmq_montreal());
    const auto defaults = device::build_default_gates(dev);
    const DesignedGate designed = design_sx_long(device::nominal_model(dev.config()));
    rb::Clifford1Q group;

    const GateComparison cmp = compare_1q_gate(dev, defaults, "sx", 0, designed.schedule,
                                               group, rb_settings_1q());

    print_rb_curve("(a) custom sqrt(X): interleaved RB", cmp.custom.interleaved);
    print_rb_curve("(b) default sqrt(X): interleaved RB", cmp.standard.interleaved);

    print_table("Fig. 5 error rates",
                {"gate", "IRB error (measured)", "paper"},
                {{"custom sqrt(X)",
                  format_error_rate(cmp.custom.gate_error, cmp.custom.gate_error_err),
                  "2.40(80)e-04"},
                 {"default sqrt(X)",
                  format_error_rate(cmp.standard.gate_error, cmp.standard.gate_error_err),
                  "6.50(142)e-04"}});
    std::printf("improvement: %.1f%%  [paper: ~63%%]\n", cmp.improvement_percent);

    const auto counts = state_histogram_1q(dev, defaults, "sx", 0, &designed.schedule,
                                           4096, 505);
    print_histogram("(c) custom sqrt(X) on |0> [paper: ~equal superposition]", counts);
    return 0;
}
