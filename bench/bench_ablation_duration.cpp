/// Ablation A4: gate error vs pulse duration.  The mechanism behind the
/// Table-1 vs Table-2 contrast: decoherence exposure grows linearly with
/// duration while the drive-noise (amplitude-squared) contribution shrinks,
/// so there is an optimum; very long pulses (the paper's 1216 dt H) lose.

#include "bench_common.hpp"

#include "quantum/fidelity.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Ablation A4", "custom X-gate error vs pulse duration");

    const auto nominal = device::nominal_model(device::ibmq_montreal());
    device::PulseExecutor dev(device::ibmq_montreal());

    // Default X for reference.
    const auto defaults = device::build_default_gates(dev);
    const auto def_sup = dev.schedule_superop_1q(defaults.get("x", {0}), 0);
    const double def_err =
        1.0 - quantum::average_gate_fidelity_subspace(g::x(), def_sup, dev.config().levels);
    std::printf("default X (160 dt): device infidelity %.3e\n\n", def_err);

    std::printf("%-10s %-10s %-16s %-18s %-10s\n", "dt", "ns", "model infid.",
                "device infid.", "vs default");
    for (std::size_t dur : {96u, 160u, 256u, 480u, 736u, 1216u, 1920u}) {
        GateDesignSpec spec;
        spec.target = g::x();
        spec.duration_dt = dur;
        spec.n_timeslots = std::min<std::size_t>(48, dur / 8);
        spec.model = DesignModel::kThreeLevelClosed;
        const DesignedGate designed = design_1q_gate(nominal, 0, "x", spec);
        const auto sup = dev.schedule_superop_1q(designed.schedule, 0);
        const double err =
            1.0 - quantum::average_gate_fidelity_subspace(g::x(), sup, dev.config().levels);
        std::printf("%-10zu %-10.1f %-16.3e %-18.3e %s\n", dur, static_cast<double>(dur) * dev.config().dt,
                    designed.model_fid_err, err, err < def_err ? "better" : "worse");
    }
    std::printf("\n[shape: short-to-moderate custom pulses beat the default; very long\n"
                " pulses lose to decoherence -- the paper's Table 2 vs Fig. 7 contrast]\n");
    return 0;
}
