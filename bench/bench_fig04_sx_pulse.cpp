/// Reproduces paper Fig. 4: the optimized sqrt(X) pulse (736 dt ~ 162 ns,
/// single Pauli-X control, drag seed) on ibmq_montreal D0.

#include "bench_common.hpp"

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Fig. 4", "optimized sqrt(X) pulse on ibmq_montreal D0 (736 dt, X control)");

    device::PulseExecutor dev(device::ibmq_montreal());
    const DesignedGate designed = design_sx_long(device::nominal_model(dev.config()));

    std::printf("model infidelity: %.3e (decoherence dropped, per the paper)\n",
                designed.model_fid_err);
    std::printf("pulse duration: %zu dt = %.1f ns\n", designed.duration_dt,
                static_cast<double>(designed.duration_dt) * dev.config().dt);

    // Initial vs final control amplitudes (the paper's first frame).
    std::vector<double> seed(designed.optim.initial_amps.size());
    std::vector<double> fin(designed.optim.final_amps.size());
    for (std::size_t k = 0; k < seed.size(); ++k) {
        seed[k] = designed.optim.initial_amps[k][0];
        fin[k] = designed.optim.final_amps[k][0];
    }
    std::printf("\ninitial Pauli-X control (QuTiP frame 1):\n");
    print_pulse("u_x seed", seed);
    std::printf("optimized Pauli-X control:\n");
    print_pulse("u_x final", fin);

    const auto samples = designed.schedule.channel_samples(pulse::drive_channel(0),
                                                           designed.duration_dt);
    print_waveform("D0 drive waveform (cast into the custom sqrt(X) gate)", samples);
    return 0;
}
