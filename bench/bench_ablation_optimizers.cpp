/// Ablation A1: optimizer comparison on the same X-gate problem.  The
/// paper's Section 2.1 claims first-order GRAPE "converges very slowly" and
/// CRAB's "direct search approach makes the convergence very slow"; the
/// second-order GRAPE (L-BFGS-B) is the method of choice.  This bench
/// quantifies all three on identical problems.

#include "bench_common.hpp"

#include "control/krotov.hpp"
#include "quantum/operators.hpp"
#include "control/pulse_shapes.hpp"
#include <numbers>

int main() {
    using namespace qoc;
    using namespace qoc::bench;
    banner("Ablation A1", "L-BFGS-B vs first-order GRAPE vs CRAB (X-gate problem)");

    auto make_spec = [](control::OptimMethod method, int budget) {
        control::PulseOptimSpec spec;
        spec.h_drift = linalg::Mat(2, 2);
        spec.h_ctrls = {0.5 * quantum::sigma_x(), 0.5 * quantum::sigma_y()};
        spec.u_target = g::x();
        spec.n_timeslots = 32;
        spec.evo_time = 60.0;
        spec.initial_pulse = control::InitialPulseType::kDrag;
        spec.initial_scale = 0.08;
        spec.method = method;
        spec.max_iterations = budget;
        spec.max_evaluations = 20000;
        spec.target_fid_err = 1e-10;
        return spec;
    };

    std::vector<std::vector<std::string>> rows;
    auto run = [&](const char* name, control::OptimMethod method, int budget) {
        const auto res = control::pulse_optim(make_spec(method, budget));
        char err[32], iters[32], evals[32];
        std::snprintf(err, sizeof(err), "%.2e", res.final_fid_err);
        std::snprintf(iters, sizeof(iters), "%d", res.iterations);
        std::snprintf(evals, sizeof(evals), "%d", res.evaluations);
        rows.push_back({name, err, iters, evals, optim::to_string(res.reason)});
    };

    // Same evaluation budget (~60) for the gradient methods, then extended
    // budgets: the point is iterations-to-convergence, not reachability.
    run("L-BFGS-B (2nd-order GRAPE)", control::OptimMethod::kLbfgsB, 60);
    run("gradient descent, same budget", control::OptimMethod::kGradientDescent, 60);
    run("gradient descent, 500 iters", control::OptimMethod::kGradientDescent, 500);
    run("CRAB (Fourier basis + Nelder-Mead)", control::OptimMethod::kCrab, 4000);

    // Krotov is not a pulse_optim method (it has its own sequential-update
    // driver); run it on the equivalent GrapeProblem.
    {
        control::GrapeProblem prob;
        prob.system.drift = linalg::Mat(2, 2);
        prob.system.ctrls = {0.5 * quantum::sigma_x(), 0.5 * quantum::sigma_y()};
        prob.target = g::x();
        prob.n_timeslots = 32;
        prob.evo_time = 60.0;
        prob.initial_amps = control::build_initial_amps(make_spec(control::OptimMethod::kLbfgsB, 1));
        const auto kr = control::krotov_unitary(prob, {.lambda = 0.5, .max_iterations = 500,
                                                       .target_fid_err = 1e-10});
        char err[32], iters[32], evals[32];
        std::snprintf(err, sizeof(err), "%.2e", kr.final_fid_err);
        std::snprintf(iters, sizeof(iters), "%d", kr.iterations);
        std::snprintf(evals, sizeof(evals), "%d", kr.evaluations);
        rows.push_back({"Krotov (monotonic, sequential)", err, iters, evals,
                        optim::to_string(kr.reason)});
    }

    print_table("optimizer comparison (easy problem: 2-level X gate)",
                {"method", "final fidelity error", "iterations", "evaluations", "stop"},
                rows);

    // Part 2: a stiff problem -- Hadamard on the 3-level Duffing transmon
    // with subspace fidelity, where curvature information actually matters.
    rows.clear();
    const auto nominal = device::nominal_model(device::ibmq_montreal());
    control::GrapeProblem hard;
    hard.system.drift = quantum::duffing_drift(3, 0.0, nominal.qubit(0).anharmonicity);
    hard.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
    hard.target = g::h();
    hard.subspace_isometry = quantum::qubit_isometry(3);
    hard.n_timeslots = 48;
    hard.evo_time = 1216.0 * nominal.dt;
    hard.amp_lower = -0.15;
    hard.amp_upper = 0.15;
    // Area-matched Gaussian seed (same for every method).
    {
        const auto env = control::gaussian_pulse(48);
        const double area = control::pulse_area(env, hard.evo_time / 48.0);
        hard.initial_amps.assign(48, {0.0, 0.0});
        for (std::size_t k = 0; k < 48; ++k) {
            hard.initial_amps[k][0] = env[k] * std::numbers::pi / area;
        }
    }

    auto add_row = [&](const char* name, const control::GrapeResult& res) {
        char err[32], iters[32], evals[32];
        std::snprintf(err, sizeof(err), "%.2e", res.final_fid_err);
        std::snprintf(iters, sizeof(iters), "%d", res.iterations);
        std::snprintf(evals, sizeof(evals), "%d", res.evaluations);
        rows.push_back({name, err, iters, evals, optim::to_string(res.reason)});
    };
    add_row("L-BFGS-B (2nd-order GRAPE)",
            control::grape_unitary(hard, {.max_iterations = 200, .target_f = 1e-10}));
    add_row("gradient descent, 200 iters", control::grape_gradient_descent(hard, 0.1, 200));
    add_row("gradient descent, 2000 iters", control::grape_gradient_descent(hard, 0.1, 2000));
    add_row("Krotov, 48 slots (too coarse)",
            control::krotov_unitary(hard, {.lambda = 2.0, .max_iterations = 500,
                                           .target_fid_err = 1e-10}));
    // Krotov's sequential update needs dt*||H|| << 1 (the anharmonic phase
    // per 48-slot step is ~12 rad); with per-4dt slots it is monotone and fast.
    {
        control::GrapeProblem fine = hard;
        fine.n_timeslots = 608;
        const auto env = control::gaussian_pulse(608);
        const double area = control::pulse_area(env, fine.evo_time / 608.0);
        fine.initial_amps.assign(608, {0.0, 0.0});
        for (std::size_t k = 0; k < 608; ++k) {
            fine.initial_amps[k][0] = env[k] * std::numbers::pi / area;
        }
        add_row("Krotov, 608 slots",
                control::krotov_unitary(fine, {.lambda = 2.0, .max_iterations = 500,
                                               .target_fid_err = 1e-10}));
    }
    print_table("optimizer comparison (stiff problem: 3-level Duffing Hadamard)",
                {"method", "final fidelity error", "iterations", "evaluations", "stop"},
                rows);

    std::printf("\n[paper: 'GRAPE converges very slowly' (first order), CRAB's 'direct\n"
                " search approach makes the convergence very slow'; the second-order\n"
                " L-BFGS-B is the method of choice.  Bonus finding: Krotov's sequential\n"
                " update also needs a fine time grid (dt*||H|| << 1) where GRAPE's exact\n"
                " per-slot exponentials do not]\n");
    return 0;
}
