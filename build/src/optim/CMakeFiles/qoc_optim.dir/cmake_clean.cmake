file(REMOVE_RECURSE
  "CMakeFiles/qoc_optim.dir/gradient_check.cpp.o"
  "CMakeFiles/qoc_optim.dir/gradient_check.cpp.o.d"
  "CMakeFiles/qoc_optim.dir/lbfgsb.cpp.o"
  "CMakeFiles/qoc_optim.dir/lbfgsb.cpp.o.d"
  "CMakeFiles/qoc_optim.dir/levmar.cpp.o"
  "CMakeFiles/qoc_optim.dir/levmar.cpp.o.d"
  "CMakeFiles/qoc_optim.dir/nelder_mead.cpp.o"
  "CMakeFiles/qoc_optim.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/qoc_optim.dir/problem.cpp.o"
  "CMakeFiles/qoc_optim.dir/problem.cpp.o.d"
  "libqoc_optim.a"
  "libqoc_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
