# Empty compiler generated dependencies file for qoc_optim.
# This may be replaced when dependencies are built.
