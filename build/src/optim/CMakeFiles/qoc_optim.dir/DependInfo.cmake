
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/gradient_check.cpp" "src/optim/CMakeFiles/qoc_optim.dir/gradient_check.cpp.o" "gcc" "src/optim/CMakeFiles/qoc_optim.dir/gradient_check.cpp.o.d"
  "/root/repo/src/optim/lbfgsb.cpp" "src/optim/CMakeFiles/qoc_optim.dir/lbfgsb.cpp.o" "gcc" "src/optim/CMakeFiles/qoc_optim.dir/lbfgsb.cpp.o.d"
  "/root/repo/src/optim/levmar.cpp" "src/optim/CMakeFiles/qoc_optim.dir/levmar.cpp.o" "gcc" "src/optim/CMakeFiles/qoc_optim.dir/levmar.cpp.o.d"
  "/root/repo/src/optim/nelder_mead.cpp" "src/optim/CMakeFiles/qoc_optim.dir/nelder_mead.cpp.o" "gcc" "src/optim/CMakeFiles/qoc_optim.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/optim/problem.cpp" "src/optim/CMakeFiles/qoc_optim.dir/problem.cpp.o" "gcc" "src/optim/CMakeFiles/qoc_optim.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
