file(REMOVE_RECURSE
  "libqoc_optim.a"
)
