file(REMOVE_RECURSE
  "libqoc_io.a"
)
