# Empty compiler generated dependencies file for qoc_io.
# This may be replaced when dependencies are built.
