file(REMOVE_RECURSE
  "CMakeFiles/qoc_io.dir/io.cpp.o"
  "CMakeFiles/qoc_io.dir/io.cpp.o.d"
  "libqoc_io.a"
  "libqoc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
