
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/crab.cpp" "src/control/CMakeFiles/qoc_control.dir/crab.cpp.o" "gcc" "src/control/CMakeFiles/qoc_control.dir/crab.cpp.o.d"
  "/root/repo/src/control/goat.cpp" "src/control/CMakeFiles/qoc_control.dir/goat.cpp.o" "gcc" "src/control/CMakeFiles/qoc_control.dir/goat.cpp.o.d"
  "/root/repo/src/control/grape.cpp" "src/control/CMakeFiles/qoc_control.dir/grape.cpp.o" "gcc" "src/control/CMakeFiles/qoc_control.dir/grape.cpp.o.d"
  "/root/repo/src/control/krotov.cpp" "src/control/CMakeFiles/qoc_control.dir/krotov.cpp.o" "gcc" "src/control/CMakeFiles/qoc_control.dir/krotov.cpp.o.d"
  "/root/repo/src/control/pulse_shapes.cpp" "src/control/CMakeFiles/qoc_control.dir/pulse_shapes.cpp.o" "gcc" "src/control/CMakeFiles/qoc_control.dir/pulse_shapes.cpp.o.d"
  "/root/repo/src/control/pulseoptim.cpp" "src/control/CMakeFiles/qoc_control.dir/pulseoptim.cpp.o" "gcc" "src/control/CMakeFiles/qoc_control.dir/pulseoptim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/quantum/CMakeFiles/qoc_quantum.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/qoc_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/qoc_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
