# Empty compiler generated dependencies file for qoc_control.
# This may be replaced when dependencies are built.
