file(REMOVE_RECURSE
  "CMakeFiles/qoc_control.dir/crab.cpp.o"
  "CMakeFiles/qoc_control.dir/crab.cpp.o.d"
  "CMakeFiles/qoc_control.dir/goat.cpp.o"
  "CMakeFiles/qoc_control.dir/goat.cpp.o.d"
  "CMakeFiles/qoc_control.dir/grape.cpp.o"
  "CMakeFiles/qoc_control.dir/grape.cpp.o.d"
  "CMakeFiles/qoc_control.dir/krotov.cpp.o"
  "CMakeFiles/qoc_control.dir/krotov.cpp.o.d"
  "CMakeFiles/qoc_control.dir/pulse_shapes.cpp.o"
  "CMakeFiles/qoc_control.dir/pulse_shapes.cpp.o.d"
  "CMakeFiles/qoc_control.dir/pulseoptim.cpp.o"
  "CMakeFiles/qoc_control.dir/pulseoptim.cpp.o.d"
  "libqoc_control.a"
  "libqoc_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
