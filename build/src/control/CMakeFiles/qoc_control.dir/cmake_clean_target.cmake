file(REMOVE_RECURSE
  "libqoc_control.a"
)
