file(REMOVE_RECURSE
  "libqoc_device.a"
)
