file(REMOVE_RECURSE
  "CMakeFiles/qoc_device.dir/backend_config.cpp.o"
  "CMakeFiles/qoc_device.dir/backend_config.cpp.o.d"
  "CMakeFiles/qoc_device.dir/calibration.cpp.o"
  "CMakeFiles/qoc_device.dir/calibration.cpp.o.d"
  "CMakeFiles/qoc_device.dir/characterization.cpp.o"
  "CMakeFiles/qoc_device.dir/characterization.cpp.o.d"
  "CMakeFiles/qoc_device.dir/drift_model.cpp.o"
  "CMakeFiles/qoc_device.dir/drift_model.cpp.o.d"
  "CMakeFiles/qoc_device.dir/executor.cpp.o"
  "CMakeFiles/qoc_device.dir/executor.cpp.o.d"
  "libqoc_device.a"
  "libqoc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
