# Empty dependencies file for qoc_device.
# This may be replaced when dependencies are built.
