file(REMOVE_RECURSE
  "libqoc_linalg.a"
)
