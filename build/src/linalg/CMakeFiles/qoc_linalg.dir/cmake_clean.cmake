file(REMOVE_RECURSE
  "CMakeFiles/qoc_linalg.dir/eig_hermitian.cpp.o"
  "CMakeFiles/qoc_linalg.dir/eig_hermitian.cpp.o.d"
  "CMakeFiles/qoc_linalg.dir/expm.cpp.o"
  "CMakeFiles/qoc_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/qoc_linalg.dir/kron.cpp.o"
  "CMakeFiles/qoc_linalg.dir/kron.cpp.o.d"
  "CMakeFiles/qoc_linalg.dir/lu.cpp.o"
  "CMakeFiles/qoc_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/qoc_linalg.dir/matrix.cpp.o"
  "CMakeFiles/qoc_linalg.dir/matrix.cpp.o.d"
  "libqoc_linalg.a"
  "libqoc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
