# Empty compiler generated dependencies file for qoc_linalg.
# This may be replaced when dependencies are built.
