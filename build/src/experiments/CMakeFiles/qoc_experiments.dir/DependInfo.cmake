
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiments/gate_designer.cpp" "src/experiments/CMakeFiles/qoc_experiments.dir/gate_designer.cpp.o" "gcc" "src/experiments/CMakeFiles/qoc_experiments.dir/gate_designer.cpp.o.d"
  "/root/repo/src/experiments/irb_experiment.cpp" "src/experiments/CMakeFiles/qoc_experiments.dir/irb_experiment.cpp.o" "gcc" "src/experiments/CMakeFiles/qoc_experiments.dir/irb_experiment.cpp.o.d"
  "/root/repo/src/experiments/report.cpp" "src/experiments/CMakeFiles/qoc_experiments.dir/report.cpp.o" "gcc" "src/experiments/CMakeFiles/qoc_experiments.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/control/CMakeFiles/qoc_control.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qoc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/rb/CMakeFiles/qoc_rb.dir/DependInfo.cmake"
  "/root/repo/build/src/pulse/CMakeFiles/qoc_pulse.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/qoc_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/quantum/CMakeFiles/qoc_quantum.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/qoc_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
