# Empty dependencies file for qoc_experiments.
# This may be replaced when dependencies are built.
