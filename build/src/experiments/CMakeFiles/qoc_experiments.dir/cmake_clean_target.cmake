file(REMOVE_RECURSE
  "libqoc_experiments.a"
)
