file(REMOVE_RECURSE
  "CMakeFiles/qoc_experiments.dir/gate_designer.cpp.o"
  "CMakeFiles/qoc_experiments.dir/gate_designer.cpp.o.d"
  "CMakeFiles/qoc_experiments.dir/irb_experiment.cpp.o"
  "CMakeFiles/qoc_experiments.dir/irb_experiment.cpp.o.d"
  "CMakeFiles/qoc_experiments.dir/report.cpp.o"
  "CMakeFiles/qoc_experiments.dir/report.cpp.o.d"
  "libqoc_experiments.a"
  "libqoc_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
