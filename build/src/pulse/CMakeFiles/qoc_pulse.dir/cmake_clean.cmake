file(REMOVE_RECURSE
  "CMakeFiles/qoc_pulse.dir/channels.cpp.o"
  "CMakeFiles/qoc_pulse.dir/channels.cpp.o.d"
  "CMakeFiles/qoc_pulse.dir/circuit.cpp.o"
  "CMakeFiles/qoc_pulse.dir/circuit.cpp.o.d"
  "CMakeFiles/qoc_pulse.dir/instruction_map.cpp.o"
  "CMakeFiles/qoc_pulse.dir/instruction_map.cpp.o.d"
  "CMakeFiles/qoc_pulse.dir/schedule.cpp.o"
  "CMakeFiles/qoc_pulse.dir/schedule.cpp.o.d"
  "CMakeFiles/qoc_pulse.dir/waveform.cpp.o"
  "CMakeFiles/qoc_pulse.dir/waveform.cpp.o.d"
  "libqoc_pulse.a"
  "libqoc_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
