# Empty dependencies file for qoc_pulse.
# This may be replaced when dependencies are built.
