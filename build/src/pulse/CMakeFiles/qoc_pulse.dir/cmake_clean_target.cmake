file(REMOVE_RECURSE
  "libqoc_pulse.a"
)
