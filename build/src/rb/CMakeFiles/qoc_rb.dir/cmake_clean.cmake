file(REMOVE_RECURSE
  "CMakeFiles/qoc_rb.dir/clifford1q.cpp.o"
  "CMakeFiles/qoc_rb.dir/clifford1q.cpp.o.d"
  "CMakeFiles/qoc_rb.dir/clifford2q.cpp.o"
  "CMakeFiles/qoc_rb.dir/clifford2q.cpp.o.d"
  "CMakeFiles/qoc_rb.dir/leakage_rb.cpp.o"
  "CMakeFiles/qoc_rb.dir/leakage_rb.cpp.o.d"
  "CMakeFiles/qoc_rb.dir/rb.cpp.o"
  "CMakeFiles/qoc_rb.dir/rb.cpp.o.d"
  "CMakeFiles/qoc_rb.dir/tomography.cpp.o"
  "CMakeFiles/qoc_rb.dir/tomography.cpp.o.d"
  "libqoc_rb.a"
  "libqoc_rb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_rb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
