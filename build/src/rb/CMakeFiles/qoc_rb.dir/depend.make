# Empty dependencies file for qoc_rb.
# This may be replaced when dependencies are built.
