file(REMOVE_RECURSE
  "libqoc_rb.a"
)
