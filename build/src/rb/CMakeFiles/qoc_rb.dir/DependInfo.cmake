
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rb/clifford1q.cpp" "src/rb/CMakeFiles/qoc_rb.dir/clifford1q.cpp.o" "gcc" "src/rb/CMakeFiles/qoc_rb.dir/clifford1q.cpp.o.d"
  "/root/repo/src/rb/clifford2q.cpp" "src/rb/CMakeFiles/qoc_rb.dir/clifford2q.cpp.o" "gcc" "src/rb/CMakeFiles/qoc_rb.dir/clifford2q.cpp.o.d"
  "/root/repo/src/rb/leakage_rb.cpp" "src/rb/CMakeFiles/qoc_rb.dir/leakage_rb.cpp.o" "gcc" "src/rb/CMakeFiles/qoc_rb.dir/leakage_rb.cpp.o.d"
  "/root/repo/src/rb/rb.cpp" "src/rb/CMakeFiles/qoc_rb.dir/rb.cpp.o" "gcc" "src/rb/CMakeFiles/qoc_rb.dir/rb.cpp.o.d"
  "/root/repo/src/rb/tomography.cpp" "src/rb/CMakeFiles/qoc_rb.dir/tomography.cpp.o" "gcc" "src/rb/CMakeFiles/qoc_rb.dir/tomography.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/qoc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/quantum/CMakeFiles/qoc_quantum.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/qoc_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/pulse/CMakeFiles/qoc_pulse.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/qoc_control.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/qoc_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
