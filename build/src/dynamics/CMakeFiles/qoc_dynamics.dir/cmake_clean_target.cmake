file(REMOVE_RECURSE
  "libqoc_dynamics.a"
)
