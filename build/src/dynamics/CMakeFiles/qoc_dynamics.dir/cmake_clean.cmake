file(REMOVE_RECURSE
  "CMakeFiles/qoc_dynamics.dir/integrator.cpp.o"
  "CMakeFiles/qoc_dynamics.dir/integrator.cpp.o.d"
  "CMakeFiles/qoc_dynamics.dir/propagator.cpp.o"
  "CMakeFiles/qoc_dynamics.dir/propagator.cpp.o.d"
  "libqoc_dynamics.a"
  "libqoc_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
