
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamics/integrator.cpp" "src/dynamics/CMakeFiles/qoc_dynamics.dir/integrator.cpp.o" "gcc" "src/dynamics/CMakeFiles/qoc_dynamics.dir/integrator.cpp.o.d"
  "/root/repo/src/dynamics/propagator.cpp" "src/dynamics/CMakeFiles/qoc_dynamics.dir/propagator.cpp.o" "gcc" "src/dynamics/CMakeFiles/qoc_dynamics.dir/propagator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/quantum/CMakeFiles/qoc_quantum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
