# Empty dependencies file for qoc_dynamics.
# This may be replaced when dependencies are built.
