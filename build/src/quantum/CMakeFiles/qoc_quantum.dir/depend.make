# Empty dependencies file for qoc_quantum.
# This may be replaced when dependencies are built.
