
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quantum/fidelity.cpp" "src/quantum/CMakeFiles/qoc_quantum.dir/fidelity.cpp.o" "gcc" "src/quantum/CMakeFiles/qoc_quantum.dir/fidelity.cpp.o.d"
  "/root/repo/src/quantum/gates.cpp" "src/quantum/CMakeFiles/qoc_quantum.dir/gates.cpp.o" "gcc" "src/quantum/CMakeFiles/qoc_quantum.dir/gates.cpp.o.d"
  "/root/repo/src/quantum/operators.cpp" "src/quantum/CMakeFiles/qoc_quantum.dir/operators.cpp.o" "gcc" "src/quantum/CMakeFiles/qoc_quantum.dir/operators.cpp.o.d"
  "/root/repo/src/quantum/states.cpp" "src/quantum/CMakeFiles/qoc_quantum.dir/states.cpp.o" "gcc" "src/quantum/CMakeFiles/qoc_quantum.dir/states.cpp.o.d"
  "/root/repo/src/quantum/superop.cpp" "src/quantum/CMakeFiles/qoc_quantum.dir/superop.cpp.o" "gcc" "src/quantum/CMakeFiles/qoc_quantum.dir/superop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
