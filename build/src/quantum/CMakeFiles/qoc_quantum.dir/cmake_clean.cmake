file(REMOVE_RECURSE
  "CMakeFiles/qoc_quantum.dir/fidelity.cpp.o"
  "CMakeFiles/qoc_quantum.dir/fidelity.cpp.o.d"
  "CMakeFiles/qoc_quantum.dir/gates.cpp.o"
  "CMakeFiles/qoc_quantum.dir/gates.cpp.o.d"
  "CMakeFiles/qoc_quantum.dir/operators.cpp.o"
  "CMakeFiles/qoc_quantum.dir/operators.cpp.o.d"
  "CMakeFiles/qoc_quantum.dir/states.cpp.o"
  "CMakeFiles/qoc_quantum.dir/states.cpp.o.d"
  "CMakeFiles/qoc_quantum.dir/superop.cpp.o"
  "CMakeFiles/qoc_quantum.dir/superop.cpp.o.d"
  "libqoc_quantum.a"
  "libqoc_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
