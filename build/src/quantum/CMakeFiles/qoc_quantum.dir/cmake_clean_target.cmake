file(REMOVE_RECURSE
  "libqoc_quantum.a"
)
