file(REMOVE_RECURSE
  "CMakeFiles/qoc_design.dir/qoc_design.cpp.o"
  "CMakeFiles/qoc_design.dir/qoc_design.cpp.o.d"
  "qoc_design"
  "qoc_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoc_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
