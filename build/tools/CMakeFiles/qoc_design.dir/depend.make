# Empty dependencies file for qoc_design.
# This may be replaced when dependencies are built.
