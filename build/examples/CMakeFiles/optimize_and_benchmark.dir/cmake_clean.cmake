file(REMOVE_RECURSE
  "CMakeFiles/optimize_and_benchmark.dir/optimize_and_benchmark.cpp.o"
  "CMakeFiles/optimize_and_benchmark.dir/optimize_and_benchmark.cpp.o.d"
  "optimize_and_benchmark"
  "optimize_and_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_and_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
