# Empty dependencies file for optimize_and_benchmark.
# This may be replaced when dependencies are built.
