# Empty compiler generated dependencies file for characterize_backend.
# This may be replaced when dependencies are built.
