file(REMOVE_RECURSE
  "CMakeFiles/characterize_backend.dir/characterize_backend.cpp.o"
  "CMakeFiles/characterize_backend.dir/characterize_backend.cpp.o.d"
  "characterize_backend"
  "characterize_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
