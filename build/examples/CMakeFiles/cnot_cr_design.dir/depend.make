# Empty dependencies file for cnot_cr_design.
# This may be replaced when dependencies are built.
