file(REMOVE_RECURSE
  "CMakeFiles/cnot_cr_design.dir/cnot_cr_design.cpp.o"
  "CMakeFiles/cnot_cr_design.dir/cnot_cr_design.cpp.o.d"
  "cnot_cr_design"
  "cnot_cr_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnot_cr_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
