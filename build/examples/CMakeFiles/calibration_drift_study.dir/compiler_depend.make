# Empty compiler generated dependencies file for calibration_drift_study.
# This may be replaced when dependencies are built.
