file(REMOVE_RECURSE
  "CMakeFiles/calibration_drift_study.dir/calibration_drift_study.cpp.o"
  "CMakeFiles/calibration_drift_study.dir/calibration_drift_study.cpp.o.d"
  "calibration_drift_study"
  "calibration_drift_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_drift_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
