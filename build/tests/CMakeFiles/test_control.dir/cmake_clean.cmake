file(REMOVE_RECURSE
  "CMakeFiles/test_control.dir/control/test_goat.cpp.o"
  "CMakeFiles/test_control.dir/control/test_goat.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_gradients.cpp.o"
  "CMakeFiles/test_control.dir/control/test_gradients.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_grape.cpp.o"
  "CMakeFiles/test_control.dir/control/test_grape.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_grape_extensions.cpp.o"
  "CMakeFiles/test_control.dir/control/test_grape_extensions.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_krotov.cpp.o"
  "CMakeFiles/test_control.dir/control/test_krotov.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_pulse_shapes.cpp.o"
  "CMakeFiles/test_control.dir/control/test_pulse_shapes.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_pulseoptim.cpp.o"
  "CMakeFiles/test_control.dir/control/test_pulseoptim.cpp.o.d"
  "CMakeFiles/test_control.dir/control/test_pulseoptim_extensions.cpp.o"
  "CMakeFiles/test_control.dir/control/test_pulseoptim_extensions.cpp.o.d"
  "test_control"
  "test_control.pdb"
  "test_control[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
