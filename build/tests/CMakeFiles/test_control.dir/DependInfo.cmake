
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/control/test_goat.cpp" "tests/CMakeFiles/test_control.dir/control/test_goat.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_goat.cpp.o.d"
  "/root/repo/tests/control/test_gradients.cpp" "tests/CMakeFiles/test_control.dir/control/test_gradients.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_gradients.cpp.o.d"
  "/root/repo/tests/control/test_grape.cpp" "tests/CMakeFiles/test_control.dir/control/test_grape.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_grape.cpp.o.d"
  "/root/repo/tests/control/test_grape_extensions.cpp" "tests/CMakeFiles/test_control.dir/control/test_grape_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_grape_extensions.cpp.o.d"
  "/root/repo/tests/control/test_krotov.cpp" "tests/CMakeFiles/test_control.dir/control/test_krotov.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_krotov.cpp.o.d"
  "/root/repo/tests/control/test_pulse_shapes.cpp" "tests/CMakeFiles/test_control.dir/control/test_pulse_shapes.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_pulse_shapes.cpp.o.d"
  "/root/repo/tests/control/test_pulseoptim.cpp" "tests/CMakeFiles/test_control.dir/control/test_pulseoptim.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_pulseoptim.cpp.o.d"
  "/root/repo/tests/control/test_pulseoptim_extensions.cpp" "tests/CMakeFiles/test_control.dir/control/test_pulseoptim_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_control.dir/control/test_pulseoptim_extensions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/control/CMakeFiles/qoc_control.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/qoc_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/quantum/CMakeFiles/qoc_quantum.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/qoc_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
