
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/quantum/test_channels_property.cpp" "tests/CMakeFiles/test_quantum.dir/quantum/test_channels_property.cpp.o" "gcc" "tests/CMakeFiles/test_quantum.dir/quantum/test_channels_property.cpp.o.d"
  "/root/repo/tests/quantum/test_fidelity.cpp" "tests/CMakeFiles/test_quantum.dir/quantum/test_fidelity.cpp.o" "gcc" "tests/CMakeFiles/test_quantum.dir/quantum/test_fidelity.cpp.o.d"
  "/root/repo/tests/quantum/test_gates.cpp" "tests/CMakeFiles/test_quantum.dir/quantum/test_gates.cpp.o" "gcc" "tests/CMakeFiles/test_quantum.dir/quantum/test_gates.cpp.o.d"
  "/root/repo/tests/quantum/test_operators.cpp" "tests/CMakeFiles/test_quantum.dir/quantum/test_operators.cpp.o" "gcc" "tests/CMakeFiles/test_quantum.dir/quantum/test_operators.cpp.o.d"
  "/root/repo/tests/quantum/test_states.cpp" "tests/CMakeFiles/test_quantum.dir/quantum/test_states.cpp.o" "gcc" "tests/CMakeFiles/test_quantum.dir/quantum/test_states.cpp.o.d"
  "/root/repo/tests/quantum/test_superop.cpp" "tests/CMakeFiles/test_quantum.dir/quantum/test_superop.cpp.o" "gcc" "tests/CMakeFiles/test_quantum.dir/quantum/test_superop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quantum/CMakeFiles/qoc_quantum.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
