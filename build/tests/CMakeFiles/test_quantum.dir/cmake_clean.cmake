file(REMOVE_RECURSE
  "CMakeFiles/test_quantum.dir/quantum/test_channels_property.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_channels_property.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_fidelity.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_fidelity.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_gates.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_gates.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_operators.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_operators.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_states.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_states.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_superop.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_superop.cpp.o.d"
  "test_quantum"
  "test_quantum.pdb"
  "test_quantum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
