file(REMOVE_RECURSE
  "CMakeFiles/test_dynamics.dir/dynamics/test_integrator.cpp.o"
  "CMakeFiles/test_dynamics.dir/dynamics/test_integrator.cpp.o.d"
  "CMakeFiles/test_dynamics.dir/dynamics/test_propagator.cpp.o"
  "CMakeFiles/test_dynamics.dir/dynamics/test_propagator.cpp.o.d"
  "test_dynamics"
  "test_dynamics.pdb"
  "test_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
