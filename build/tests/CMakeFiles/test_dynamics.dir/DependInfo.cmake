
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dynamics/test_integrator.cpp" "tests/CMakeFiles/test_dynamics.dir/dynamics/test_integrator.cpp.o" "gcc" "tests/CMakeFiles/test_dynamics.dir/dynamics/test_integrator.cpp.o.d"
  "/root/repo/tests/dynamics/test_propagator.cpp" "tests/CMakeFiles/test_dynamics.dir/dynamics/test_propagator.cpp.o" "gcc" "tests/CMakeFiles/test_dynamics.dir/dynamics/test_propagator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dynamics/CMakeFiles/qoc_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/quantum/CMakeFiles/qoc_quantum.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
