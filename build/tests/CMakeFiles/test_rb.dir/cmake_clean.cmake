file(REMOVE_RECURSE
  "CMakeFiles/test_rb.dir/rb/test_clifford.cpp.o"
  "CMakeFiles/test_rb.dir/rb/test_clifford.cpp.o.d"
  "CMakeFiles/test_rb.dir/rb/test_clifford_property.cpp.o"
  "CMakeFiles/test_rb.dir/rb/test_clifford_property.cpp.o.d"
  "CMakeFiles/test_rb.dir/rb/test_leakage_rb.cpp.o"
  "CMakeFiles/test_rb.dir/rb/test_leakage_rb.cpp.o.d"
  "CMakeFiles/test_rb.dir/rb/test_rb.cpp.o"
  "CMakeFiles/test_rb.dir/rb/test_rb.cpp.o.d"
  "CMakeFiles/test_rb.dir/rb/test_tomography.cpp.o"
  "CMakeFiles/test_rb.dir/rb/test_tomography.cpp.o.d"
  "CMakeFiles/test_rb.dir/rb/test_tomography_2q.cpp.o"
  "CMakeFiles/test_rb.dir/rb/test_tomography_2q.cpp.o.d"
  "test_rb"
  "test_rb.pdb"
  "test_rb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
