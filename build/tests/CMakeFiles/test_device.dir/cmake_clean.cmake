file(REMOVE_RECURSE
  "CMakeFiles/test_device.dir/device/test_calibration.cpp.o"
  "CMakeFiles/test_device.dir/device/test_calibration.cpp.o.d"
  "CMakeFiles/test_device.dir/device/test_characterization.cpp.o"
  "CMakeFiles/test_device.dir/device/test_characterization.cpp.o.d"
  "CMakeFiles/test_device.dir/device/test_drift.cpp.o"
  "CMakeFiles/test_device.dir/device/test_drift.cpp.o.d"
  "CMakeFiles/test_device.dir/device/test_executor.cpp.o"
  "CMakeFiles/test_device.dir/device/test_executor.cpp.o.d"
  "CMakeFiles/test_device.dir/device/test_executor_property.cpp.o"
  "CMakeFiles/test_device.dir/device/test_executor_property.cpp.o.d"
  "test_device"
  "test_device.pdb"
  "test_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
