file(REMOVE_RECURSE
  "CMakeFiles/test_experiments.dir/experiments/test_gate_designer.cpp.o"
  "CMakeFiles/test_experiments.dir/experiments/test_gate_designer.cpp.o.d"
  "CMakeFiles/test_experiments.dir/experiments/test_irb_experiment.cpp.o"
  "CMakeFiles/test_experiments.dir/experiments/test_irb_experiment.cpp.o.d"
  "CMakeFiles/test_experiments.dir/experiments/test_report.cpp.o"
  "CMakeFiles/test_experiments.dir/experiments/test_report.cpp.o.d"
  "test_experiments"
  "test_experiments.pdb"
  "test_experiments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
