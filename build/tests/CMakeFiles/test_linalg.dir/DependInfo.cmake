
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/test_eig.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_eig.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_eig.cpp.o.d"
  "/root/repo/tests/linalg/test_expm.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_expm.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_expm.cpp.o.d"
  "/root/repo/tests/linalg/test_kron.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_kron.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_kron.cpp.o.d"
  "/root/repo/tests/linalg/test_lu.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_lu.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_lu.cpp.o.d"
  "/root/repo/tests/linalg/test_matrix.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/qoc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
