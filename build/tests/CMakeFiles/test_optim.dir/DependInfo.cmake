
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optim/test_lbfgsb.cpp" "tests/CMakeFiles/test_optim.dir/optim/test_lbfgsb.cpp.o" "gcc" "tests/CMakeFiles/test_optim.dir/optim/test_lbfgsb.cpp.o.d"
  "/root/repo/tests/optim/test_lbfgsb_functions.cpp" "tests/CMakeFiles/test_optim.dir/optim/test_lbfgsb_functions.cpp.o" "gcc" "tests/CMakeFiles/test_optim.dir/optim/test_lbfgsb_functions.cpp.o.d"
  "/root/repo/tests/optim/test_levmar.cpp" "tests/CMakeFiles/test_optim.dir/optim/test_levmar.cpp.o" "gcc" "tests/CMakeFiles/test_optim.dir/optim/test_levmar.cpp.o.d"
  "/root/repo/tests/optim/test_nelder_mead.cpp" "tests/CMakeFiles/test_optim.dir/optim/test_nelder_mead.cpp.o" "gcc" "tests/CMakeFiles/test_optim.dir/optim/test_nelder_mead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optim/CMakeFiles/qoc_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
