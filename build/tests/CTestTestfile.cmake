# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_quantum[1]_include.cmake")
include("/root/repo/build/tests/test_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_control[1]_include.cmake")
include("/root/repo/build/tests/test_pulse[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_rb[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
