# Empty compiler generated dependencies file for bench_fig06_h_pulse.
# This may be replaced when dependencies are built.
