file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_h_pulse.dir/bench_fig06_h_pulse.cpp.o"
  "CMakeFiles/bench_fig06_h_pulse.dir/bench_fig06_h_pulse.cpp.o.d"
  "bench_fig06_h_pulse"
  "bench_fig06_h_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_h_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
