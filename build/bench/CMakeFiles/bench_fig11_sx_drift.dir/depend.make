# Empty dependencies file for bench_fig11_sx_drift.
# This may be replaced when dependencies are built.
