file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_irb_h.dir/bench_fig07_irb_h.cpp.o"
  "CMakeFiles/bench_fig07_irb_h.dir/bench_fig07_irb_h.cpp.o.d"
  "bench_fig07_irb_h"
  "bench_fig07_irb_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_irb_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
