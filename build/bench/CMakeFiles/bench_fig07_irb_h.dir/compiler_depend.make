# Empty compiler generated dependencies file for bench_fig07_irb_h.
# This may be replaced when dependencies are built.
