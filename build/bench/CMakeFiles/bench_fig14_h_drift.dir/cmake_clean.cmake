file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_h_drift.dir/bench_fig14_h_drift.cpp.o"
  "CMakeFiles/bench_fig14_h_drift.dir/bench_fig14_h_drift.cpp.o.d"
  "bench_fig14_h_drift"
  "bench_fig14_h_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_h_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
