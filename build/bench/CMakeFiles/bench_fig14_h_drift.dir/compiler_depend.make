# Empty compiler generated dependencies file for bench_fig14_h_drift.
# This may be replaced when dependencies are built.
