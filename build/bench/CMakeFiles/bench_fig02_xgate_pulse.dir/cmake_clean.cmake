file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_xgate_pulse.dir/bench_fig02_xgate_pulse.cpp.o"
  "CMakeFiles/bench_fig02_xgate_pulse.dir/bench_fig02_xgate_pulse.cpp.o.d"
  "bench_fig02_xgate_pulse"
  "bench_fig02_xgate_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_xgate_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
