# Empty dependencies file for bench_fig02_xgate_pulse.
# This may be replaced when dependencies are built.
