file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_irb_x.dir/bench_fig03_irb_x.cpp.o"
  "CMakeFiles/bench_fig03_irb_x.dir/bench_fig03_irb_x.cpp.o.d"
  "bench_fig03_irb_x"
  "bench_fig03_irb_x.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_irb_x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
