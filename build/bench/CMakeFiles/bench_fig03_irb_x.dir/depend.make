# Empty dependencies file for bench_fig03_irb_x.
# This may be replaced when dependencies are built.
