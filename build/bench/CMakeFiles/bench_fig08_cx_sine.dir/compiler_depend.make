# Empty compiler generated dependencies file for bench_fig08_cx_sine.
# This may be replaced when dependencies are built.
