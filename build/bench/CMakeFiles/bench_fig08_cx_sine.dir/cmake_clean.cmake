file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_cx_sine.dir/bench_fig08_cx_sine.cpp.o"
  "CMakeFiles/bench_fig08_cx_sine.dir/bench_fig08_cx_sine.cpp.o.d"
  "bench_fig08_cx_sine"
  "bench_fig08_cx_sine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_cx_sine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
