file(REMOVE_RECURSE
  "CMakeFiles/bench_tomography_vs_irb.dir/bench_tomography_vs_irb.cpp.o"
  "CMakeFiles/bench_tomography_vs_irb.dir/bench_tomography_vs_irb.cpp.o.d"
  "bench_tomography_vs_irb"
  "bench_tomography_vs_irb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tomography_vs_irb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
