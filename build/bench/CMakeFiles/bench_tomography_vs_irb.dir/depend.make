# Empty dependencies file for bench_tomography_vs_irb.
# This may be replaced when dependencies are built.
