# Empty dependencies file for bench_table1_long_pulses.
# This may be replaced when dependencies are built.
