file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_long_pulses.dir/bench_table1_long_pulses.cpp.o"
  "CMakeFiles/bench_table1_long_pulses.dir/bench_table1_long_pulses.cpp.o.d"
  "bench_table1_long_pulses"
  "bench_table1_long_pulses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_long_pulses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
