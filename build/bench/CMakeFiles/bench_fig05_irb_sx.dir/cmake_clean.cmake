file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_irb_sx.dir/bench_fig05_irb_sx.cpp.o"
  "CMakeFiles/bench_fig05_irb_sx.dir/bench_fig05_irb_sx.cpp.o.d"
  "bench_fig05_irb_sx"
  "bench_fig05_irb_sx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_irb_sx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
