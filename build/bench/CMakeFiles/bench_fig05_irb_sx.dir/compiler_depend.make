# Empty compiler generated dependencies file for bench_fig05_irb_sx.
# This may be replaced when dependencies are built.
