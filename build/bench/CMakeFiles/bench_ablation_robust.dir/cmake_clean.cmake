file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_robust.dir/bench_ablation_robust.cpp.o"
  "CMakeFiles/bench_ablation_robust.dir/bench_ablation_robust.cpp.o.d"
  "bench_ablation_robust"
  "bench_ablation_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
