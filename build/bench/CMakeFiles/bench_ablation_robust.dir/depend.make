# Empty dependencies file for bench_ablation_robust.
# This may be replaced when dependencies are built.
