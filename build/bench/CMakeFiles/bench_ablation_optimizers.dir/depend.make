# Empty dependencies file for bench_ablation_optimizers.
# This may be replaced when dependencies are built.
