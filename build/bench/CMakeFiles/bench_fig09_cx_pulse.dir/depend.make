# Empty dependencies file for bench_fig09_cx_pulse.
# This may be replaced when dependencies are built.
