file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_cx_pulse.dir/bench_fig09_cx_pulse.cpp.o"
  "CMakeFiles/bench_fig09_cx_pulse.dir/bench_fig09_cx_pulse.cpp.o.d"
  "bench_fig09_cx_pulse"
  "bench_fig09_cx_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_cx_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
