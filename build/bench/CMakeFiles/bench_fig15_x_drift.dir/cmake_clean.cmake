file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_x_drift.dir/bench_fig15_x_drift.cpp.o"
  "CMakeFiles/bench_fig15_x_drift.dir/bench_fig15_x_drift.cpp.o.d"
  "bench_fig15_x_drift"
  "bench_fig15_x_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_x_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
