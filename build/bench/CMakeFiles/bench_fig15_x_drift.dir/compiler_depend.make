# Empty compiler generated dependencies file for bench_fig15_x_drift.
# This may be replaced when dependencies are built.
