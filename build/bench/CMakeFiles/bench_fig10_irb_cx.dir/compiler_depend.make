# Empty compiler generated dependencies file for bench_fig10_irb_cx.
# This may be replaced when dependencies are built.
