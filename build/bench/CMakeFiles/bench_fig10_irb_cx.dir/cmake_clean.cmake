file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_irb_cx.dir/bench_fig10_irb_cx.cpp.o"
  "CMakeFiles/bench_fig10_irb_cx.dir/bench_fig10_irb_cx.cpp.o.d"
  "bench_fig10_irb_cx"
  "bench_fig10_irb_cx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_irb_cx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
