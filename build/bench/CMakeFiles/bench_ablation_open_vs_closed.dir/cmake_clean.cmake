file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_open_vs_closed.dir/bench_ablation_open_vs_closed.cpp.o"
  "CMakeFiles/bench_ablation_open_vs_closed.dir/bench_ablation_open_vs_closed.cpp.o.d"
  "bench_ablation_open_vs_closed"
  "bench_ablation_open_vs_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_open_vs_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
