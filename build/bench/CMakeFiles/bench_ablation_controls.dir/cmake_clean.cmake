file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_controls.dir/bench_ablation_controls.cpp.o"
  "CMakeFiles/bench_ablation_controls.dir/bench_ablation_controls.cpp.o.d"
  "bench_ablation_controls"
  "bench_ablation_controls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_controls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
