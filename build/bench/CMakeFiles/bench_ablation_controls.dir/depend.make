# Empty dependencies file for bench_ablation_controls.
# This may be replaced when dependencies are built.
