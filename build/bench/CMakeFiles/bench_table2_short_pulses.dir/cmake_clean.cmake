file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_short_pulses.dir/bench_table2_short_pulses.cpp.o"
  "CMakeFiles/bench_table2_short_pulses.dir/bench_table2_short_pulses.cpp.o.d"
  "bench_table2_short_pulses"
  "bench_table2_short_pulses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_short_pulses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
