# Empty dependencies file for bench_table2_short_pulses.
# This may be replaced when dependencies are built.
