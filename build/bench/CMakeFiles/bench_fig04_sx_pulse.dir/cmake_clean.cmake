file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_sx_pulse.dir/bench_fig04_sx_pulse.cpp.o"
  "CMakeFiles/bench_fig04_sx_pulse.dir/bench_fig04_sx_pulse.cpp.o.d"
  "bench_fig04_sx_pulse"
  "bench_fig04_sx_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_sx_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
