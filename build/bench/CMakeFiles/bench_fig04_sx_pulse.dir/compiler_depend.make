# Empty compiler generated dependencies file for bench_fig04_sx_pulse.
# This may be replaced when dependencies are built.
