# Empty compiler generated dependencies file for bench_fig13_short_pulses.
# This may be replaced when dependencies are built.
