# Empty dependencies file for bench_fig01_pulseoptim.
# This may be replaced when dependencies are built.
