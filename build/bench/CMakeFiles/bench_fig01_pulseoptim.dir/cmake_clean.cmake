file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_pulseoptim.dir/bench_fig01_pulseoptim.cpp.o"
  "CMakeFiles/bench_fig01_pulseoptim.dir/bench_fig01_pulseoptim.cpp.o.d"
  "bench_fig01_pulseoptim"
  "bench_fig01_pulseoptim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_pulseoptim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
