# Empty compiler generated dependencies file for bench_ablation_zz.
# This may be replaced when dependencies are built.
