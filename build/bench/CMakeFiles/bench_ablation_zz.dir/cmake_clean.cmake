file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zz.dir/bench_ablation_zz.cpp.o"
  "CMakeFiles/bench_ablation_zz.dir/bench_ablation_zz.cpp.o.d"
  "bench_ablation_zz"
  "bench_ablation_zz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
