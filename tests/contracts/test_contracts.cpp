/// Three guarantees of the qoc::contracts layer are pinned here:
///
///  1. Every check fires on a crafted violation (and stays quiet on valid
///     input) when contracts are compiled in and armed.
///  2. The runtime gate works: set_enabled(false) silences an otherwise
///     violated contract; re-arming restores it.  In builds without
///     QOC_CONTRACTS_ENABLED the same calls are no-ops.
///  3. Contracts never perturb the numerics: GRAPE and RB runs with
///     contracts armed vs. disarmed are BITWISE identical (checks only read
///     already-computed values).

#include "contracts/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "contracts/matrix_checks.hpp"
#include "control/grape.hpp"
#include "device/calibration.hpp"
#include "dynamics/propagator.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"
#include "rb/rb.hpp"

namespace qoc::contracts {
namespace {

namespace g = quantum::gates;
using linalg::cplx;
using linalg::Mat;

/// RAII guard: forces a contract arming state, restores the previous one.
class ArmGuard {
public:
    explicit ArmGuard(bool armed) : prev_(enabled()) { set_enabled(armed); }
    ~ArmGuard() { set_enabled(prev_); }

private:
    bool prev_;
};

/// vec(X) -> vec(X^T): the transpose map.  Trace preserving but famously
/// not completely positive -- the canonical CP-check fixture.
Mat transpose_superop(std::size_t d) {
    Mat s(d * d, d * d);
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            s(r + d * c, c + d * r) = 1.0;
        }
    }
    return s;
}

/// Small closed-system transmon X-gate GRAPE problem (3-level, 2 controls),
/// the same shape as the determinism suites.
control::GrapeProblem small_grape_problem() {
    control::GrapeProblem p;
    p.system.drift = quantum::duffing_drift(3, 0.0, -2.0);
    p.system.ctrls = {0.5 * quantum::drive_x(3), 0.5 * quantum::drive_y(3)};
    p.target = g::x();
    p.subspace_isometry = quantum::qubit_isometry(3);
    p.n_timeslots = 12;
    p.evo_time = 3.0;
    p.fidelity = control::FidelityType::kPsu;
    p.initial_amps.resize(p.n_timeslots);
    for (std::size_t k = 0; k < p.n_timeslots; ++k) {
        const double t = static_cast<double>(k) / static_cast<double>(p.n_timeslots);
        p.initial_amps[k] = {0.3 * t, 0.2 * (1.0 - t)};
    }
    return p;
}

#if defined(QOC_CONTRACTS_ENABLED)

TEST(Contracts, CompiledInAndArmedByDefault) {
    // The test environment must not disarm them (QOC_CONTRACTS unset).
    EXPECT_TRUE(enabled());
}

TEST(Contracts, ScalarChecksFireOnViolation) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(check_finite(nan, "t"), ContractViolation);
    EXPECT_THROW(check_finite(inf, "t"), ContractViolation);
    EXPECT_NO_THROW(check_finite(1.0, "t"));

    EXPECT_THROW(check_all_finite(std::vector<double>{0.0, nan}, "t"), ContractViolation);
    EXPECT_NO_THROW(check_all_finite(std::vector<double>{0.0, 1.0}, "t"));

    EXPECT_THROW(check_in_range(1.5, -1.0, 1.0, "t"), ContractViolation);
    EXPECT_NO_THROW(check_in_range(1.0, -1.0, 1.0, "t"));
    EXPECT_NO_THROW(check_in_range(1.0 + 1e-12, -1.0, 1.0, "t", 1e-10));

    EXPECT_THROW(check_probability(1.5, "t"), ContractViolation);
    EXPECT_THROW(check_probability(-0.2, "t"), ContractViolation);
    EXPECT_NO_THROW(check_probability(0.5, "t"));

    EXPECT_THROW(check_amplitude_bounds({{0.0, 2.0}}, -1.0, 1.0, "t"), ContractViolation);
    EXPECT_NO_THROW(check_amplitude_bounds({{0.0, 0.9}, {-1.0, 1.0}}, -1.0, 1.0, "t"));
}

TEST(Contracts, MatrixChecksFireOnViolation) {
    Mat nonherm = g::x();
    nonherm(0, 1) += cplx{0.0, 1e-3};
    EXPECT_THROW(check_hermitian(nonherm, "t"), ContractViolation);
    EXPECT_NO_THROW(check_hermitian(g::x(), "t"));

    EXPECT_THROW(check_unitary(2.0 * g::x(), "t"), ContractViolation);
    EXPECT_NO_THROW(check_unitary(g::h(), "t"));

    EXPECT_THROW(check_normalized_ket(2.0 * quantum::basis_ket(2, 0), "t"), ContractViolation);
    EXPECT_NO_THROW(check_normalized_ket(quantum::basis_ket(2, 0), "t"));

    const Mat good = quantum::unitary_superop(g::h());
    EXPECT_THROW(check_trace_preserving(1.1 * good, "t"), ContractViolation);
    EXPECT_NO_THROW(check_trace_preserving(good, "t"));
    EXPECT_NO_THROW(check_trace_preserving(quantum::depolarizing_superop(2, 0.1), "t"));

    // TP but not CP: the transpose map must pass TP and fail CP.
    const Mat transpose = transpose_superop(2);
    EXPECT_NO_THROW(check_trace_preserving(transpose, "t"));
    EXPECT_THROW(check_completely_positive(transpose, "t"), ContractViolation);
    EXPECT_NO_THROW(check_completely_positive(good, "t"));

    // A unitary superop preserves trace, so it cannot annihilate it.
    EXPECT_THROW(check_trace_annihilating(good, "t"), ContractViolation);
    EXPECT_NO_THROW(check_trace_annihilating(
        quantum::liouvillian(Mat(2, 2), {0.1 * quantum::sigma_minus()}), "t"));

    Mat rho0 = quantum::ket_to_dm(quantum::basis_ket(2, 0));
    EXPECT_NO_THROW(check_density_vec(linalg::vec(rho0), "t"));
    EXPECT_THROW(check_density_vec(linalg::vec(2.0 * rho0), "t"), ContractViolation);
}

TEST(Contracts, ViolationMessageNamesSiteAndCheck) {
    try {
        check_unitary(2.0 * g::x(), "MyCheck: scaled X");
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("MyCheck: scaled X"), std::string::npos) << what;
        EXPECT_NE(what.find("contract"), std::string::npos) << what;
    }
}

TEST(Contracts, PropagatorRejectsNonHermitianHamiltonian) {
    Mat bad_drift = quantum::sigma_x();
    bad_drift(1, 0) += cplx{0.0, 1e-3};  // breaks H = H^dag
    dynamics::PwcSystem sys{bad_drift, {0.5 * quantum::sigma_x()}};
    dynamics::ControlAmplitudes amps{{0.1}, {0.2}};
    EXPECT_THROW(dynamics::pwc_unitary_propagators(sys, amps, 0.1), ContractViolation);
}

TEST(Contracts, LiouvillianRejectsNonHermitianHamiltonian) {
    Mat bad = quantum::sigma_x();
    bad(0, 0) = cplx{0.0, 0.5};
    EXPECT_THROW(quantum::liouvillian_hamiltonian(bad), ContractViolation);
}

TEST(Contracts, GrapeRejectsNonUnitaryTarget) {
    control::GrapeProblem p = small_grape_problem();
    p.target = 2.0 * g::x();  // not unitary
    std::vector<double> grad;
    EXPECT_THROW(control::evaluate_fid_err_and_grad(p, p.initial_amps, grad),
                 ContractViolation);
}

TEST(Contracts, RuntimeGateSilencesAndRearms) {
    const Mat bad = 2.0 * g::x();
    {
        ArmGuard off(false);
        EXPECT_FALSE(enabled());
        EXPECT_NO_THROW(check_unitary(bad, "t"));
        EXPECT_NO_THROW(QOC_CONTRACT(false, "never evaluated when disarmed"));
    }
    EXPECT_TRUE(enabled());
    EXPECT_THROW(check_unitary(bad, "t"), ContractViolation);
}

#else  // !QOC_CONTRACTS_ENABLED

TEST(Contracts, CompiledOutEverythingIsANoOp) {
    EXPECT_FALSE(enabled());
    set_enabled(true);  // cannot arm what is not compiled in
    EXPECT_FALSE(enabled());

    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_NO_THROW(check_finite(nan, "t"));
    EXPECT_NO_THROW(check_in_range(5.0, -1.0, 1.0, "t"));
    EXPECT_NO_THROW(check_unitary(2.0 * g::x(), "t"));
    EXPECT_NO_THROW(check_trace_preserving(transpose_superop(2), "t", 0.0));
    // The condition of a compiled-out QOC_CONTRACT is not even evaluated.
    bool evaluated = false;
    QOC_CONTRACT(([&] {
                     evaluated = true;
                     return false;
                 }()),
                 "side effect must not run");
    EXPECT_FALSE(evaluated);
}

TEST(Contracts, CompiledOutPropagatorAcceptsNonHermitianInput) {
    Mat bad_drift = quantum::sigma_x();
    bad_drift(1, 0) += cplx{0.0, 1e-3};
    dynamics::PwcSystem sys{bad_drift, {0.5 * quantum::sigma_x()}};
    dynamics::ControlAmplitudes amps{{0.1}};
    EXPECT_NO_THROW(dynamics::pwc_unitary_propagators(sys, amps, 0.1));
}

#endif  // QOC_CONTRACTS_ENABLED

/// Bitwise on-vs-off: contracts must never change a single ULP of the
/// numerics.  Meaningful when compiled in (toggles the runtime gate); in
/// compiled-out builds it degenerates to running the same code twice and
/// still must agree, so it runs everywhere.
TEST(ContractsDeterminism, GrapeEvaluationBitIdenticalOnVsOff) {
    const control::GrapeProblem p = small_grape_problem();
    std::vector<double> grad_on, grad_off;
    double err_on = 0.0, err_off = 0.0;
    {
        ArmGuard on(true);
        err_on = control::evaluate_fid_err_and_grad(p, p.initial_amps, grad_on);
    }
    {
        ArmGuard off(false);
        err_off = control::evaluate_fid_err_and_grad(p, p.initial_amps, grad_off);
    }
    EXPECT_EQ(std::memcmp(&err_on, &err_off, sizeof(double)), 0);
    ASSERT_EQ(grad_on.size(), grad_off.size());
    ASSERT_FALSE(grad_on.empty());
    EXPECT_EQ(std::memcmp(grad_on.data(), grad_off.data(), grad_on.size() * sizeof(double)), 0);
}

TEST(ContractsDeterminism, RbRunBitIdenticalOnVsOff) {
    const device::PulseExecutor exec{device::ibmq_montreal()};
    const pulse::InstructionScheduleMap defaults = device::build_default_gates(exec);
    const rb::Clifford1Q group;
    const rb::GateSet1Q gates(exec, defaults, 0, group);

    rb::RbOptions opts;
    opts.lengths = {1, 20, 50};
    opts.seeds_per_length = 2;
    opts.shots = 128;

    rb::RbCurve on, off;
    {
        ArmGuard armed(true);
        on = rb::run_rb_1q(exec, gates, 0, opts);
    }
    {
        ArmGuard disarmed(false);
        off = rb::run_rb_1q(exec, gates, 0, opts);
    }
    ASSERT_EQ(on.points.size(), off.points.size());
    for (std::size_t i = 0; i < on.points.size(); ++i) {
        EXPECT_EQ(std::memcmp(&on.points[i].mean_survival, &off.points[i].mean_survival,
                              sizeof(double)),
                  0);
        EXPECT_EQ(std::memcmp(&on.points[i].sem, &off.points[i].sem, sizeof(double)), 0);
    }
    EXPECT_EQ(std::memcmp(&on.epc, &off.epc, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&on.alpha, &off.alpha, sizeof(double)), 0);
}

}  // namespace
}  // namespace qoc::contracts
