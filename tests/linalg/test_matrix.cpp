#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace qoc::linalg {
namespace {

constexpr cplx kI{0.0, 1.0};

TEST(Matrix, DefaultIsEmpty) {
    Mat m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizeConstructorZeroFills) {
    Mat m(3, 2);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(m(i, j), cplx(0.0, 0.0));
}

TEST(Matrix, InitializerList) {
    Mat m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m(0, 1), cplx(2.0, 0.0));
    EXPECT_EQ(m(1, 0), cplx(3.0, 0.0));
}

TEST(Matrix, RaggedInitializerThrows) {
    EXPECT_THROW((Mat{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, VectorConstructorChecksSize) {
    EXPECT_THROW(Mat(2, 2, {cplx{1.0}, cplx{2.0}}), std::invalid_argument);
    Mat m(1, 2, {cplx{1.0}, cplx{2.0}});
    EXPECT_EQ(m(0, 1), cplx(2.0, 0.0));
}

TEST(Matrix, Identity) {
    const Mat ident = Mat::identity(4);
    EXPECT_EQ(ident.trace(), cplx(4.0, 0.0));
    EXPECT_TRUE(ident.is_unitary());
    EXPECT_TRUE(ident.is_hermitian());
}

TEST(Matrix, DiagAndColVector) {
    const Mat d = Mat::diag({cplx{1.0}, cplx{2.0}});
    EXPECT_EQ(d(1, 1), cplx(2.0, 0.0));
    EXPECT_EQ(d(0, 1), cplx(0.0, 0.0));
    const Mat v = Mat::col_vector({cplx{1.0}, kI});
    EXPECT_EQ(v.rows(), 2u);
    EXPECT_EQ(v.cols(), 1u);
    EXPECT_EQ(v(1, 0), kI);
}

TEST(Matrix, AtThrowsOutOfRange) {
    Mat m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::out_of_range);
    EXPECT_THROW(m.at(0, 2), std::out_of_range);
    EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, AddSubtract) {
    Mat a{{1.0, 2.0}, {3.0, 4.0}};
    Mat b{{4.0, 3.0}, {2.0, 1.0}};
    const Mat s = a + b;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(s(i, j), cplx(5.0, 0.0));
    const Mat d = a - a;
    EXPECT_NEAR(d.max_abs(), 0.0, 1e-15);
}

TEST(Matrix, ShapeMismatchThrows) {
    Mat a(2, 2), b(2, 3);
    EXPECT_THROW(a += b, std::invalid_argument);
    EXPECT_THROW(a -= b, std::invalid_argument);
    EXPECT_THROW(b * a, std::invalid_argument);
}

TEST(Matrix, ScalarMultiply) {
    Mat a{{1.0, 0.0}, {0.0, 1.0}};
    const Mat b = a * kI;
    EXPECT_EQ(b(0, 0), kI);
    const Mat c = 2.0 * a;
    EXPECT_EQ(c(1, 1), cplx(2.0, 0.0));
}

TEST(Matrix, ProductAgainstHandComputed) {
    Mat a{{1.0, 2.0}, {3.0, 4.0}};
    Mat b{{5.0, 6.0}, {7.0, 8.0}};
    const Mat c = a * b;
    EXPECT_EQ(c(0, 0), cplx(19.0, 0.0));
    EXPECT_EQ(c(0, 1), cplx(22.0, 0.0));
    EXPECT_EQ(c(1, 0), cplx(43.0, 0.0));
    EXPECT_EQ(c(1, 1), cplx(50.0, 0.0));
}

TEST(Matrix, ProductComplexEntries) {
    Mat a{{kI}};
    Mat b{{kI}};
    EXPECT_EQ((a * b)(0, 0), cplx(-1.0, 0.0));
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
    Mat a{{cplx{1.0, 2.0}, cplx{3.0, 4.0}}, {cplx{5.0, 6.0}, cplx{7.0, 8.0}}};
    const Mat ad = a.adjoint();
    EXPECT_EQ(ad(0, 1), cplx(5.0, -6.0));
    EXPECT_EQ(ad(1, 0), cplx(3.0, -4.0));
    EXPECT_TRUE(a.transpose().conj().approx_equal(ad));
}

TEST(Matrix, AdjointTimesMatchesExplicit) {
    Mat a{{cplx{1.0, 1.0}, 2.0}, {0.0, cplx{0.0, -3.0}}};
    Mat b{{1.0, cplx{0.0, 1.0}}, {2.0, 3.0}};
    EXPECT_TRUE(adjoint_times(a, b).approx_equal(a.adjoint() * b, 1e-14));
}

TEST(Matrix, HsInnerMatchesTraceForm) {
    Mat a{{cplx{1.0, 1.0}, 2.0}, {0.5, cplx{0.0, -3.0}}};
    Mat b{{1.0, cplx{0.0, 1.0}}, {2.0, 3.0}};
    const cplx direct = hs_inner(a, b);
    const cplx via_trace = (a.adjoint() * b).trace();
    EXPECT_NEAR(std::abs(direct - via_trace), 0.0, 1e-13);
}

TEST(Matrix, TraceRequiresSquare) {
    Mat m(2, 3);
    EXPECT_THROW(m.trace(), std::invalid_argument);
}

TEST(Matrix, FrobeniusAndMaxNorms) {
    Mat m{{3.0, 0.0}, {0.0, 4.0}};
    EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
    EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, OneNormIsMaxColumnSum) {
    Mat m{{1.0, -2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m.norm_1(), 6.0);
}

TEST(Matrix, HermitianDetection) {
    Mat h{{2.0, cplx{1.0, 1.0}}, {cplx{1.0, -1.0}, 3.0}};
    EXPECT_TRUE(h.is_hermitian());
    Mat nh{{2.0, cplx{1.0, 1.0}}, {cplx{1.0, 1.0}, 3.0}};
    EXPECT_FALSE(nh.is_hermitian());
}

TEST(Matrix, UnitaryDetection) {
    const double r = 1.0 / std::sqrt(2.0);
    Mat h{{r, r}, {r, -r}};
    EXPECT_TRUE(h.is_unitary());
    Mat not_u{{1.0, 0.0}, {0.0, 2.0}};
    EXPECT_FALSE(not_u.is_unitary());
}

TEST(Matrix, BlockExtractAndSet) {
    Mat m(3, 3);
    Mat b{{1.0, 2.0}, {3.0, 4.0}};
    m.set_block(1, 1, b);
    EXPECT_EQ(m(2, 2), cplx(4.0, 0.0));
    EXPECT_TRUE(m.block(1, 1, 2, 2).approx_equal(b));
    EXPECT_THROW(m.block(2, 2, 2, 2), std::out_of_range);
    EXPECT_THROW(m.set_block(2, 2, b), std::out_of_range);
}

TEST(Matrix, RowAndColViews) {
    Mat m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.col(1)(0, 0), cplx(2.0, 0.0));
    EXPECT_EQ(m.row(1)(0, 1), cplx(4.0, 0.0));
}

TEST(Matrix, CommutatorOfCommutingIsZero) {
    Mat a = Mat::diag({cplx{1.0}, cplx{2.0}});
    Mat b = Mat::diag({cplx{3.0}, cplx{4.0}});
    EXPECT_NEAR(commutator(a, b).max_abs(), 0.0, 1e-15);
}

TEST(Matrix, AnticommutatorPauli) {
    Mat sx{{0.0, 1.0}, {1.0, 0.0}};
    Mat sy{{0.0, -kI}, {kI, 0.0}};
    EXPECT_NEAR(anticommutator(sx, sy).max_abs(), 0.0, 1e-15);
    const Mat sx2 = anticommutator(sx, sx);
    EXPECT_TRUE(sx2.approx_equal(2.0 * Mat::identity(2), 1e-15));
}

TEST(Matrix, EqualUpToPhase) {
    Mat a{{0.0, 1.0}, {1.0, 0.0}};
    const Mat b = a * kI;
    EXPECT_TRUE(equal_up_to_phase(a, b));
    EXPECT_TRUE(equal_up_to_phase(b, a));
    Mat c{{0.0, 1.0}, {-1.0, 0.0}};
    EXPECT_FALSE(equal_up_to_phase(a, c));
}

TEST(Matrix, EqualUpToPhaseRejectsNonUnitPhase) {
    Mat a{{1.0, 0.0}, {0.0, 1.0}};
    const Mat b = 2.0 * a;
    EXPECT_FALSE(equal_up_to_phase(b, a));
}

TEST(Matrix, StreamOutputContainsEntries) {
    Mat m{{1.0, 0.0}, {0.0, 1.0}};
    std::ostringstream os;
    os << m;
    EXPECT_NE(os.str().find("1"), std::string::npos);
}

TEST(Matrix, GemvIntoMatchesOperatorProduct) {
    // Rectangular a (6x4) against a dense column vector; the matvec must be
    // bitwise identical to the gemm path (same per-row accumulation order).
    const std::size_t n = 6, k = 4;
    Mat a(n, k), x(k, 1);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < k; ++j)
            a(i, j) = cplx(std::sin(1.0 + static_cast<double>(i * k + j)),
                           std::cos(2.0 + static_cast<double>(3 * i + j)));
    for (std::size_t j = 0; j < k; ++j)
        x(j, 0) = cplx(0.3 * static_cast<double>(j + 1), -0.7 + static_cast<double>(j));

    const Mat ref = a * x;
    Mat out;
    gemv_into(a, x, out);
    ASSERT_EQ(out.rows(), n);
    ASSERT_EQ(out.cols(), 1u);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out(i, 0), ref(i, 0)) << "i=" << i;

    // Reuse (dirty buffer of the right shape): result must not care.
    gemv_into(a, x, out);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out(i, 0), ref(i, 0)) << "reuse i=" << i;
}

TEST(Matrix, GemvIntoRejectsBadShapes) {
    Mat a(3, 2), x_bad_rows(3, 1), x_not_vector(2, 2), out;
    EXPECT_THROW(gemv_into(a, x_bad_rows, out), std::invalid_argument);
    EXPECT_THROW(gemv_into(a, x_not_vector, out), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::linalg
