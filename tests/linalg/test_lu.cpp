#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qoc::linalg {
namespace {

constexpr cplx kI{0.0, 1.0};

Mat random_matrix(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Mat m(n, n);
    for (auto& v : m.data()) v = cplx{dist(rng), dist(rng)};
    return m;
}

TEST(Lu, SolveHandComputed) {
    Mat a{{2.0, 1.0}, {1.0, 3.0}};
    Mat b = Mat::col_vector({cplx{5.0}, cplx{10.0}});
    const Mat x = solve(a, b);
    EXPECT_NEAR(std::abs(x(0, 0) - cplx{1.0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x(1, 0) - cplx{3.0}), 0.0, 1e-12);
}

TEST(Lu, SolveResidualSmallRandom) {
    for (unsigned seed : {1u, 2u, 3u, 4u}) {
        const Mat a = random_matrix(8, seed);
        const Mat b = random_matrix(8, seed + 100).col(0);
        const Mat x = solve(a, b);
        EXPECT_LT((a * x - b).max_abs(), 1e-10) << "seed " << seed;
    }
}

TEST(Lu, MultipleRightHandSides) {
    const Mat a = random_matrix(6, 7);
    const Mat b = random_matrix(6, 8);
    const Mat x = solve(a, b);
    EXPECT_LT((a * x - b).max_abs(), 1e-10);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
    const Mat a = random_matrix(7, 11);
    const Mat ainv = inverse(a);
    EXPECT_LT((a * ainv - Mat::identity(7)).max_abs(), 1e-10);
    EXPECT_LT((ainv * a - Mat::identity(7)).max_abs(), 1e-10);
}

TEST(Lu, DeterminantDiagonal) {
    const Mat d = Mat::diag({cplx{2.0}, cplx{3.0}, kI});
    EXPECT_NEAR(std::abs(det(d) - cplx{0.0, 6.0}), 0.0, 1e-12);
}

TEST(Lu, DeterminantPermutationSign) {
    Mat p{{0.0, 1.0}, {1.0, 0.0}};  // swap -> det = -1
    EXPECT_NEAR(std::abs(det(p) - cplx{-1.0}), 0.0, 1e-12);
}

TEST(Lu, DeterminantProductRule) {
    const Mat a = random_matrix(5, 21);
    const Mat b = random_matrix(5, 22);
    const cplx dab = det(a * b);
    const cplx dadb = det(a) * det(b);
    EXPECT_NEAR(std::abs(dab - dadb) / std::abs(dadb), 0.0, 1e-9);
}

TEST(Lu, SingularDetected) {
    Mat a{{1.0, 2.0}, {2.0, 4.0}};  // rank 1
    Lu f(a);
    EXPECT_TRUE(f.singular());
    EXPECT_THROW(f.solve(Mat::identity(2)), std::runtime_error);
}

TEST(Lu, NonSquareThrows) { EXPECT_THROW(Lu(Mat(2, 3)), std::invalid_argument); }

TEST(Lu, RhsShapeMismatchThrows) {
    Lu f(Mat::identity(3));
    EXPECT_THROW(f.solve(Mat(2, 1)), std::invalid_argument);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
    Mat a{{0.0, 1.0}, {1.0, 0.0}};
    const Mat x = solve(a, Mat::col_vector({cplx{3.0}, cplx{4.0}}));
    EXPECT_NEAR(std::abs(x(0, 0) - cplx{4.0}), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x(1, 0) - cplx{3.0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace qoc::linalg
