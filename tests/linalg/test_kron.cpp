#include "linalg/kron.hpp"

#include <gtest/gtest.h>

namespace qoc::linalg {
namespace {

constexpr cplx kI{0.0, 1.0};

TEST(Kron, ShapesMultiply) {
    Mat a(2, 3), b(4, 5);
    const Mat k = kron(a, b);
    EXPECT_EQ(k.rows(), 8u);
    EXPECT_EQ(k.cols(), 15u);
}

TEST(Kron, IdentityKronIdentity) {
    EXPECT_TRUE(kron(Mat::identity(2), Mat::identity(3)).approx_equal(Mat::identity(6)));
}

TEST(Kron, HandComputed2x2) {
    Mat a{{1.0, 2.0}, {3.0, 4.0}};
    Mat b{{0.0, 1.0}, {1.0, 0.0}};
    const Mat k = kron(a, b);
    // Top-left 2x2 block is 1*b.
    EXPECT_EQ(k(0, 1), cplx(1.0, 0.0));
    EXPECT_EQ(k(1, 0), cplx(1.0, 0.0));
    // Top-right block is 2*b.
    EXPECT_EQ(k(0, 3), cplx(2.0, 0.0));
    // Bottom-right block is 4*b.
    EXPECT_EQ(k(3, 2), cplx(4.0, 0.0));
}

TEST(Kron, MixedProductProperty) {
    // (A (x) B)(C (x) D) = (AC) (x) (BD)
    Mat a{{1.0, kI}, {0.0, 2.0}};
    Mat b{{2.0, 0.0}, {1.0, 1.0}};
    Mat c{{0.0, 1.0}, {1.0, 0.0}};
    Mat d{{1.0, 1.0}, {0.0, kI}};
    const Mat lhs = kron(a, b) * kron(c, d);
    const Mat rhs = kron(a * c, b * d);
    EXPECT_TRUE(lhs.approx_equal(rhs, 1e-13));
}

TEST(Kron, KronAllAssociativity) {
    Mat a{{1.0, 0.0}, {0.0, -1.0}};
    Mat b{{0.0, 1.0}, {1.0, 0.0}};
    Mat c{{2.0}};
    const Mat left = kron(kron(a, b), c);
    const Mat viaList = kron_all({a, b, c});
    EXPECT_TRUE(left.approx_equal(viaList, 1e-14));
    EXPECT_THROW(kron_all({}), std::invalid_argument);
}

TEST(Vec, RoundTrip) {
    Mat a{{1.0, 2.0}, {cplx{0.0, 3.0}, 4.0}};
    const Mat v = vec(a);
    EXPECT_EQ(v.rows(), 4u);
    EXPECT_EQ(v.cols(), 1u);
    EXPECT_TRUE(unvec(v, 2).approx_equal(a));
}

TEST(Vec, ColumnStackingConvention) {
    Mat a{{1.0, 3.0}, {2.0, 4.0}};
    const Mat v = vec(a);
    EXPECT_EQ(v(0, 0), cplx(1.0, 0.0));
    EXPECT_EQ(v(1, 0), cplx(2.0, 0.0));
    EXPECT_EQ(v(2, 0), cplx(3.0, 0.0));
    EXPECT_EQ(v(3, 0), cplx(4.0, 0.0));
}

TEST(Vec, SuperopIdentityVecAXB) {
    // vec(A X B) = (B^T (x) A) vec(X) -- the identity the Liouvillian
    // construction in qoc::quantum relies on.
    Mat a{{1.0, kI}, {2.0, 0.0}};
    Mat x{{0.5, 1.0}, {cplx{0.0, -1.0}, 2.0}};
    Mat b{{1.0, 1.0}, {0.0, 3.0}};
    const Mat lhs = vec(a * x * b);
    const Mat rhs = kron(b.transpose(), a) * vec(x);
    EXPECT_TRUE(lhs.approx_equal(rhs, 1e-13));
}

TEST(Vec, UnvecChecksShape) {
    EXPECT_THROW(unvec(Mat(3, 1), 2), std::invalid_argument);
    EXPECT_THROW(unvec(Mat(4, 2), 2), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::linalg
