#include "linalg/expm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "linalg/eig_hermitian.hpp"

namespace qoc::linalg {
namespace {

constexpr cplx kI{0.0, 1.0};

Mat random_matrix(std::size_t n, unsigned seed, double scale) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-scale, scale);
    Mat m(n, n);
    for (auto& v : m.data()) v = cplx{dist(rng), dist(rng)};
    return m;
}

TEST(Expm, ZeroMatrixGivesIdentity) {
    EXPECT_TRUE(expm(Mat(3, 3)).approx_equal(Mat::identity(3), 1e-14));
}

TEST(Expm, DiagonalMatrix) {
    const Mat d = Mat::diag({cplx{1.0}, cplx{-2.0}, kI});
    const Mat e = expm(d);
    EXPECT_NEAR(std::abs(e(0, 0) - std::exp(cplx{1.0})), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(e(1, 1) - std::exp(cplx{-2.0})), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(e(2, 2) - std::exp(kI)), 0.0, 1e-12);
}

TEST(Expm, NilpotentExactSeries) {
    // N = [[0,1],[0,0]] => e^N = I + N exactly.
    Mat n{{0.0, 1.0}, {0.0, 0.0}};
    EXPECT_TRUE(expm(n).approx_equal(Mat::identity(2) + n, 1e-14));
}

TEST(Expm, PauliRotationClosedForm) {
    // exp(-i theta/2 sx) = cos(theta/2) I - i sin(theta/2) sx.
    Mat sx{{0.0, 1.0}, {1.0, 0.0}};
    for (double theta : {0.1, 1.0, std::numbers::pi, 5.0}) {
        const Mat a = (-kI * (theta / 2.0)) * sx;
        const Mat e = expm(a);
        Mat expect = std::cos(theta / 2.0) * Mat::identity(2) +
                     cplx{0.0, -std::sin(theta / 2.0)} * sx;
        EXPECT_TRUE(e.approx_equal(expect, 1e-12)) << "theta=" << theta;
    }
}

TEST(Expm, MatchesHermitianEigenPath) {
    for (unsigned seed : {3u, 4u}) {
        Mat h = random_matrix(6, seed, 1.0);
        h = 0.5 * (h + h.adjoint());  // hermitize
        const double t = 2.7;
        const Mat via_pade = expm((-kI * t) * h);
        const Mat via_eig = expm_hermitian(h, t);
        EXPECT_LT((via_pade - via_eig).max_abs(), 1e-10);
    }
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
    Mat sz{{1.0, 0.0}, {0.0, -1.0}};
    const double theta = 200.0;  // well beyond theta_13, forces squaring
    const Mat e = expm((-kI * theta) * sz);
    EXPECT_NEAR(std::abs(e(0, 0) - std::exp(-kI * theta)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(e(1, 1) - std::exp(kI * theta)), 0.0, 1e-9);
}

TEST(Expm, GroupProperty) {
    const Mat a = random_matrix(5, 17, 0.8);
    const Mat whole = expm(a);
    const Mat halves = expm(0.5 * a) * expm(0.5 * a);
    EXPECT_LT((whole - halves).max_abs(), 1e-11);
}

TEST(Expm, InverseIsExpOfNegative) {
    const Mat a = random_matrix(4, 23, 0.5);
    const Mat prod = expm(a) * expm(-a);
    EXPECT_LT((prod - Mat::identity(4)).max_abs(), 1e-11);
}

TEST(Expm, SkewHermitianGivesUnitary) {
    Mat h = random_matrix(5, 31, 1.0);
    h = 0.5 * (h + h.adjoint());
    const Mat u = expm(-kI * h);
    EXPECT_TRUE(u.is_unitary(1e-11));
}

TEST(Expm, NonSquareThrows) { EXPECT_THROW(expm(Mat(2, 3)), std::invalid_argument); }

TEST(ExpmFrechet, MatchesFiniteDifference) {
    for (unsigned seed : {8u, 9u}) {
        const Mat a = random_matrix(4, seed, 0.7);
        const Mat e = random_matrix(4, seed + 50, 0.7);
        const auto [ea, frechet] = expm_frechet(a, e);
        EXPECT_TRUE(ea.approx_equal(expm(a), 1e-11));
        const double h = 1e-6;
        const Mat fd = (1.0 / (2.0 * h)) * (expm(a + h * e) - expm(a - h * e));
        EXPECT_LT((frechet - fd).max_abs(), 1e-7) << "seed=" << seed;
    }
}

TEST(ExpmFrechet, LinearInDirection) {
    const Mat a = random_matrix(3, 77, 0.5);
    const Mat e1 = random_matrix(3, 78, 0.5);
    const Mat e2 = random_matrix(3, 79, 0.5);
    const Mat l1 = expm_frechet(a, e1).second;
    const Mat l2 = expm_frechet(a, e2).second;
    const Mat l12 = expm_frechet(a, e1 + e2).second;
    EXPECT_LT((l12 - (l1 + l2)).max_abs(), 1e-10);
    const Mat l2x = expm_frechet(a, 2.0 * e1).second;
    EXPECT_LT((l2x - 2.0 * l1).max_abs(), 1e-10);
}

TEST(ExpmFrechet, ShapeMismatchThrows) {
    EXPECT_THROW(expm_frechet(Mat(2, 2), Mat(3, 3)), std::invalid_argument);
}

TEST(ExpmHermitian, RotationAngleSweep) {
    // Parameterized-style sweep: exp(-i sz t) diagonal phases.
    Mat sz{{1.0, 0.0}, {0.0, -1.0}};
    for (int k = 0; k <= 12; ++k) {
        const double t = 0.3 * k;
        const Mat u = expm_hermitian(sz, t);
        EXPECT_NEAR(std::abs(u(0, 0) - std::exp(-kI * t)), 0.0, 1e-12) << "t=" << t;
        EXPECT_TRUE(u.is_unitary(1e-12));
    }
}

}  // namespace
}  // namespace qoc::linalg
