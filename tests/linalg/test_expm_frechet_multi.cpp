/// Multi-direction Frechet engine: shared-Pade and spectral paths checked
/// against finite differences and against the independent augmented-block
/// `expm_frechet` across every Pade order (3..13) and the
/// scaling-and-squaring branch.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/expm.hpp"

namespace qoc::linalg {
namespace {

constexpr cplx kI{0.0, 1.0};

Mat random_matrix(std::size_t n, unsigned seed, double scale) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-scale, scale);
    Mat m(n, n);
    for (auto& v : m.data()) v = cplx{dist(rng), dist(rng)};
    return m;
}

Mat random_hermitian(std::size_t n, unsigned seed, double scale) {
    Mat m = random_matrix(n, seed, scale);
    return 0.5 * (m + m.adjoint());
}

/// Rescales `m` so that its 1-norm is exactly `nrm` (to steer the Pade
/// order selection into a chosen theta band).
Mat with_norm(Mat m, double nrm) {
    m *= nrm / m.norm_1();
    return m;
}

/// Max-abs difference relative to the scale of the reference.
double rel_diff(const Mat& got, const Mat& ref) {
    return (got - ref).max_abs() / std::max(1.0, ref.max_abs());
}

TEST(ExpmFrechetMulti, MatchesAugmentedAcrossPadeOrders) {
    // One norm per theta band: orders 3, 5, 7, 9, 13, and 13 with s > 0
    // squarings.  The engine must agree with the Van Loan reference on both
    // the exponential and every direction.
    const double norms[] = {0.01, 0.2, 0.8, 1.8, 4.5, 20.0};
    for (double nrm : norms) {
        const Mat a = with_norm(random_matrix(5, 11, 1.0), nrm);
        const std::vector<Mat> dirs = {random_matrix(5, 21, 0.7), random_matrix(5, 22, 0.7),
                                       random_matrix(5, 23, 0.7)};
        const auto [ea, ls] = expm_frechet_multi(a, dirs, ExpmMethod::kPade);
        EXPECT_LT(rel_diff(ea, expm(a)), 1e-11) << "norm=" << nrm;
        for (std::size_t j = 0; j < dirs.size(); ++j) {
            const auto [ea_ref, l_ref] = expm_frechet(a, dirs[j]);
            EXPECT_LT(rel_diff(ea, ea_ref), 1e-10) << "norm=" << nrm;
            EXPECT_LT(rel_diff(ls[j], l_ref), 1e-9) << "norm=" << nrm << " dir=" << j;
        }
    }
}

TEST(ExpmFrechetMulti, MatchesFiniteDifferenceEveryOrder) {
    const double norms[] = {0.01, 0.2, 0.8, 1.8, 4.5, 12.0};
    for (double nrm : norms) {
        const Mat a = with_norm(random_matrix(4, 31, 1.0), nrm);
        const std::vector<Mat> dirs = {random_matrix(4, 41, 0.5), random_matrix(4, 42, 0.5)};
        const auto [ea, ls] = expm_frechet_multi(a, dirs, ExpmMethod::kPade);
        const double h = 1e-6;
        for (std::size_t j = 0; j < dirs.size(); ++j) {
            const Mat fd = (0.5 / h) * (expm(a + h * dirs[j]) - expm(a - h * dirs[j]));
            EXPECT_LT(rel_diff(ls[j], fd), 1e-6) << "norm=" << nrm << " dir=" << j;
        }
    }
}

TEST(ExpmFrechetMulti, SpectralMatchesPadeOnAntiHermitian) {
    // Closed-system GRAPE shape: A = -i dt H, directions -i dt H_j.
    for (double dt : {0.05, 0.8, 3.0}) {
        const Mat a = (-kI * dt) * random_hermitian(6, 51, 1.0);
        const std::vector<Mat> dirs = {(-kI * dt) * random_hermitian(6, 52, 1.0),
                                       (-kI * dt) * random_hermitian(6, 53, 1.0)};
        const auto [ea_s, ls_s] = expm_frechet_multi(a, dirs, ExpmMethod::kSpectral);
        const auto [ea_p, ls_p] = expm_frechet_multi(a, dirs, ExpmMethod::kPade);
        EXPECT_LT(rel_diff(ea_s, ea_p), 1e-11) << "dt=" << dt;
        EXPECT_TRUE(ea_s.is_unitary(1e-11));
        for (std::size_t j = 0; j < dirs.size(); ++j) {
            EXPECT_LT(rel_diff(ls_s[j], ls_p[j]), 1e-10) << "dt=" << dt << " dir=" << j;
        }
    }
}

TEST(ExpmFrechetMulti, AutoPicksSpectralResultOnAntiHermitian) {
    const Mat a = (-kI * 0.7) * random_hermitian(4, 61, 1.0);
    const std::vector<Mat> dirs = {(-kI * 0.7) * random_hermitian(4, 62, 1.0)};
    const auto [ea_auto, ls_auto] = expm_frechet_multi(a, dirs, ExpmMethod::kAuto);
    const auto [ea_spec, ls_spec] = expm_frechet_multi(a, dirs, ExpmMethod::kSpectral);
    EXPECT_TRUE(ea_auto.approx_equal(ea_spec, 0.0));  // bitwise: same code path
    EXPECT_TRUE(ls_auto[0].approx_equal(ls_spec[0], 0.0));
}

TEST(ExpmFrechetMulti, ManyDirectionsMatchSingleDirectionCalls) {
    const Mat a = random_matrix(4, 71, 0.8);
    std::vector<Mat> dirs;
    for (unsigned j = 0; j < 4; ++j) dirs.push_back(random_matrix(4, 80 + j, 0.6));
    const auto [ea, ls] = expm_frechet_multi(a, dirs, ExpmMethod::kPade);
    for (std::size_t j = 0; j < dirs.size(); ++j) {
        const auto [ea1, l1] = expm_frechet_multi(a, {dirs[j]}, ExpmMethod::kPade);
        EXPECT_TRUE(ea.approx_equal(ea1, 0.0));  // bitwise: shared intermediates
        EXPECT_TRUE(ls[j].approx_equal(l1[0], 0.0));
    }
}

TEST(ExpmFrechetMulti, WorkspaceReuseAcrossSizesAndOrdersIsStateless) {
    // One workspace driven through different sizes and Pade orders must give
    // bitwise the same results as a fresh workspace each call.
    ExpmWorkspace shared;
    const double norms[] = {20.0, 0.01, 1.8, 0.2, 4.5, 0.8};
    std::size_t sizes[] = {5, 2, 7, 3, 4, 6};
    for (int rep = 0; rep < 2; ++rep) {
        for (std::size_t c = 0; c < 6; ++c) {
            const Mat a = with_norm(random_matrix(sizes[c], 90 + static_cast<unsigned>(c), 1.0),
                                    norms[c]);
            const std::vector<Mat> dirs = {
                random_matrix(sizes[c], 100 + static_cast<unsigned>(c), 0.5)};
            Mat ea_shared;
            std::vector<Mat> l_shared(1);
            expm_frechet_multi(a, dirs.data(), 1, ea_shared, l_shared.data(), shared,
                               ExpmMethod::kPade);
            const auto [ea_fresh, l_fresh] = expm_frechet_multi(a, dirs, ExpmMethod::kPade);
            EXPECT_TRUE(ea_shared.approx_equal(ea_fresh, 0.0)) << "case=" << c;
            EXPECT_TRUE(l_shared[0].approx_equal(l_fresh[0], 0.0)) << "case=" << c;
        }
    }
}

TEST(ExpmFrechetMulti, LinearInDirection) {
    const Mat a = random_matrix(3, 111, 0.5);
    const Mat e1 = random_matrix(3, 112, 0.5);
    const Mat e2 = random_matrix(3, 113, 0.5);
    const auto [ea, ls] = expm_frechet_multi(a, {e1, e2, e1 + e2}, ExpmMethod::kPade);
    (void)ea;
    EXPECT_LT((ls[2] - (ls[0] + ls[1])).max_abs(), 1e-10);
}

TEST(ExpmInto, MatchesExpmAndReusesWorkspace) {
    ExpmWorkspace ws;
    Mat out;
    for (double nrm : {0.01, 0.8, 4.5, 20.0}) {
        const Mat a = with_norm(random_matrix(5, 121, 1.0), nrm);
        expm_into(a, out, ws, ExpmMethod::kPade);
        EXPECT_LT(rel_diff(out, expm(a)), 1e-11) << "norm=" << nrm;
    }
    // Spectral branch: unitary result for anti-Hermitian input.
    const Mat a = (-kI * 1.3) * random_hermitian(5, 131, 1.0);
    expm_into(a, out, ws);  // kAuto must detect anti-Hermitian
    EXPECT_TRUE(out.is_unitary(1e-11));
    EXPECT_LT(rel_diff(out, expm(a)), 1e-11);
}

TEST(ExpmFrechetMulti, ShapeMismatchThrows) {
    EXPECT_THROW(expm_frechet_multi(Mat(2, 2), {Mat(3, 3)}), std::invalid_argument);
    EXPECT_THROW(expm_frechet_multi(Mat(2, 3), {}), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::linalg
