#include "linalg/eig_hermitian.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qoc::linalg {
namespace {

constexpr cplx kI{0.0, 1.0};

Mat random_hermitian(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Mat m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = cplx{dist(rng), 0.0};
        for (std::size_t j = i + 1; j < n; ++j) {
            const cplx v{dist(rng), dist(rng)};
            m(i, j) = v;
            m(j, i) = std::conj(v);
        }
    }
    return m;
}

TEST(EigHermitian, DiagonalMatrix) {
    const Mat d = Mat::diag({cplx{3.0}, cplx{1.0}, cplx{2.0}});
    const EigH e = eig_hermitian(d);
    EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
    EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
    EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigHermitian, PauliX) {
    Mat sx{{0.0, 1.0}, {1.0, 0.0}};
    const EigH e = eig_hermitian(sx);
    EXPECT_NEAR(e.eigenvalues[0], -1.0, 1e-12);
    EXPECT_NEAR(e.eigenvalues[1], 1.0, 1e-12);
}

TEST(EigHermitian, PauliY) {
    Mat sy{{0.0, -kI}, {kI, 0.0}};
    const EigH e = eig_hermitian(sy);
    EXPECT_NEAR(e.eigenvalues[0], -1.0, 1e-12);
    EXPECT_NEAR(e.eigenvalues[1], 1.0, 1e-12);
    // Reconstruction check.
    Mat d = Mat::diag({cplx{e.eigenvalues[0]}, cplx{e.eigenvalues[1]}});
    EXPECT_TRUE((e.eigenvectors * d * e.eigenvectors.adjoint()).approx_equal(sy, 1e-10));
}

TEST(EigHermitian, RandomReconstruction) {
    for (unsigned seed : {5u, 6u, 7u}) {
        for (std::size_t n : {3u, 8u, 16u}) {
            const Mat a = random_hermitian(n, seed * 10 + static_cast<unsigned>(n));
            const EigH e = eig_hermitian(a);
            Mat d(n, n);
            for (std::size_t i = 0; i < n; ++i) d(i, i) = cplx{e.eigenvalues[i], 0.0};
            const Mat rec = e.eigenvectors * d * e.eigenvectors.adjoint();
            EXPECT_LT((rec - a).max_abs(), 1e-9) << "n=" << n << " seed=" << seed;
            EXPECT_TRUE(e.eigenvectors.is_unitary(1e-9));
        }
    }
}

TEST(EigHermitian, EigenvaluesSortedAscending) {
    const Mat a = random_hermitian(12, 42);
    const EigH e = eig_hermitian(a);
    for (std::size_t i = 1; i < e.eigenvalues.size(); ++i) {
        EXPECT_LE(e.eigenvalues[i - 1], e.eigenvalues[i]);
    }
}

TEST(EigHermitian, TraceEqualsEigenvalueSum) {
    const Mat a = random_hermitian(9, 13);
    const EigH e = eig_hermitian(a);
    double sum = 0.0;
    for (double v : e.eigenvalues) sum += v;
    EXPECT_NEAR(sum, a.trace().real(), 1e-10);
}

TEST(EigHermitian, RejectsNonHermitian) {
    Mat a{{0.0, 1.0}, {2.0, 0.0}};
    EXPECT_THROW(eig_hermitian(a), std::invalid_argument);
    EXPECT_THROW(eig_hermitian(Mat(2, 3)), std::invalid_argument);
}

TEST(EigHermitian, HermitianFunctionSquareRoot) {
    // f(A) with f = sqrt on a positive matrix: f(A)^2 = A.
    Mat a{{2.0, 1.0}, {1.0, 2.0}};  // eigenvalues 1, 3 (positive)
    const Mat r = hermitian_function(a, [](double x) { return std::sqrt(x); });
    EXPECT_TRUE((r * r).approx_equal(a, 1e-10));
}

TEST(EigHermitian, DegenerateSpectrum) {
    // 2*I has a fully degenerate spectrum; any orthonormal basis works.
    const Mat a = 2.0 * Mat::identity(4);
    const EigH e = eig_hermitian(a);
    for (double v : e.eigenvalues) EXPECT_NEAR(v, 2.0, 1e-12);
    EXPECT_TRUE(e.eigenvectors.is_unitary(1e-10));
}

}  // namespace
}  // namespace qoc::linalg
