#include "quantum/operators.hpp"

#include <gtest/gtest.h>

#include "linalg/kron.hpp"

namespace qoc::quantum {
namespace {

constexpr cplx kI{0.0, 1.0};

TEST(Operators, PauliAlgebra) {
    const Mat sx = sigma_x(), sy = sigma_y(), sz = sigma_z();
    // sx*sy = i*sz and cyclic permutations.
    EXPECT_TRUE((sx * sy).approx_equal(kI * sz, 1e-14));
    EXPECT_TRUE((sy * sz).approx_equal(kI * sx, 1e-14));
    EXPECT_TRUE((sz * sx).approx_equal(kI * sy, 1e-14));
    // Involutions.
    EXPECT_TRUE((sx * sx).approx_equal(Mat::identity(2), 1e-14));
    EXPECT_TRUE((sy * sy).approx_equal(Mat::identity(2), 1e-14));
    EXPECT_TRUE((sz * sz).approx_equal(Mat::identity(2), 1e-14));
}

TEST(Operators, LadderOperators) {
    const Mat sp = sigma_plus(), sm = sigma_minus();
    // sigma_- |1> = |0>:  sm * (0,1)^T = (1,0)^T.
    EXPECT_EQ(sm(0, 1), cplx(1.0, 0.0));
    EXPECT_TRUE((sp + sm).approx_equal(sigma_x(), 1e-14));
    // sigma_z = [sp, sm] is diag(+1 on |1>...) careful with conventions:
    // here |0> is ground, sp=|1><0|, so [sp,sm] = |1><1| - |0><0| = -sz.
    EXPECT_TRUE(linalg::commutator(sp, sm).approx_equal(-1.0 * sigma_z(), 1e-14));
}

TEST(Operators, AnnihilationMatrixElements) {
    const Mat a = annihilation(4);
    EXPECT_NEAR(a(0, 1).real(), 1.0, 1e-15);
    EXPECT_NEAR(a(1, 2).real(), std::sqrt(2.0), 1e-15);
    EXPECT_NEAR(a(2, 3).real(), std::sqrt(3.0), 1e-15);
    EXPECT_THROW(annihilation(1), std::invalid_argument);
}

TEST(Operators, NumberOperatorFromLadder) {
    for (std::size_t d : {2u, 3u, 5u}) {
        const Mat n_direct = number_op(d);
        const Mat n_ladder = creation(d) * annihilation(d);
        EXPECT_TRUE(n_direct.approx_equal(n_ladder, 1e-13)) << "d=" << d;
    }
}

TEST(Operators, CommutatorTruncationArtifact) {
    // In infinite dimension [a, adag] = 1; truncation breaks it only in the
    // top level. Verify the structure.
    const std::size_t d = 4;
    const Mat c = linalg::commutator(annihilation(d), creation(d));
    for (std::size_t k = 0; k + 1 < d; ++k) EXPECT_NEAR(c(k, k).real(), 1.0, 1e-13);
    EXPECT_NEAR(c(d - 1, d - 1).real(), 1.0 - static_cast<double>(d), 1e-12);
}

TEST(Operators, DuffingDriftSpectrum) {
    // delta*n + (alpha/2) n(n-1): levels 0, delta, 2 delta + alpha.
    const double delta = 0.1, alpha = -2.0;
    const Mat h = duffing_drift(3, delta, alpha);
    EXPECT_NEAR(h(0, 0).real(), 0.0, 1e-15);
    EXPECT_NEAR(h(1, 1).real(), delta, 1e-15);
    EXPECT_NEAR(h(2, 2).real(), 2.0 * delta + alpha, 1e-13);
}

TEST(Operators, DuffingTwoLevelReducesToPauli) {
    const Mat h = duffing_drift(2, 0.4, -2.0);
    // Equal to 0.4 * |1><1| = 0.2 (I - sz).
    const Mat expect = 0.2 * (Mat::identity(2) - sigma_z());
    EXPECT_TRUE(h.approx_equal(expect, 1e-14));
}

TEST(Operators, DriveOperatorsHermitian) {
    for (std::size_t d : {2u, 3u, 4u}) {
        EXPECT_TRUE(drive_x(d).is_hermitian(1e-14));
        EXPECT_TRUE(drive_y(d).is_hermitian(1e-14));
    }
}

TEST(Operators, DriveXTwoLevelIsPauliX) {
    EXPECT_TRUE(drive_x(2).approx_equal(sigma_x(), 1e-14));
    EXPECT_TRUE(drive_y(2).approx_equal(sigma_y(), 1e-14));
}

TEST(Operators, DriveCarriesLadderFactors) {
    // The 1<->2 matrix element of a+adag is sqrt(2) -- the leakage channel
    // DRAG pulses suppress.
    const Mat dx = drive_x(3);
    EXPECT_NEAR(dx(1, 2).real(), std::sqrt(2.0), 1e-14);
}

TEST(Operators, OpOnQubitPlacement) {
    const Mat sz = sigma_z();
    const Mat z0 = op_on_qubit(sz, 0, 2);
    const Mat z1 = op_on_qubit(sz, 1, 2);
    EXPECT_TRUE(z0.approx_equal(linalg::kron(sz, Mat::identity(2)), 1e-14));
    EXPECT_TRUE(z1.approx_equal(linalg::kron(Mat::identity(2), sz), 1e-14));
    EXPECT_THROW(op_on_qubit(sz, 2, 2), std::invalid_argument);
}

TEST(Operators, OpOnQubitCommutesForDifferentTargets) {
    const Mat a = op_on_qubit(sigma_x(), 0, 3);
    const Mat b = op_on_qubit(sigma_y(), 2, 3);
    EXPECT_NEAR(linalg::commutator(a, b).max_abs(), 0.0, 1e-14);
}

TEST(Operators, QubitIsometryProjects) {
    const Mat p = qubit_isometry(3);
    EXPECT_TRUE((p.adjoint() * p).approx_equal(Mat::identity(2), 1e-14));
    // P P^dagger is the projector onto span{|0>, |1>}.
    const Mat proj = p * p.adjoint();
    EXPECT_NEAR(proj(2, 2).real(), 0.0, 1e-15);
    EXPECT_NEAR(proj(0, 0).real(), 1.0, 1e-15);
}

TEST(Operators, EmbedQubitOp) {
    const Mat big = embed_qubit_op(sigma_x(), 3);
    EXPECT_EQ(big.rows(), 3u);
    EXPECT_EQ(big(0, 1), cplx(1.0, 0.0));
    EXPECT_EQ(big(2, 2), cplx(0.0, 0.0));
    EXPECT_THROW(embed_qubit_op(Mat::identity(3), 4), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::quantum
