/// Property-based sweeps over quantum channels and superoperators: trace
/// preservation, positivity, composition and fidelity identities across
/// parameter grids.

#include <gtest/gtest.h>

#include <random>

#include "linalg/expm.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::quantum {
namespace {

namespace g = gates;

Mat random_density(std::size_t dim, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Mat a(dim, dim);
    for (auto& v : a.data()) v = cplx{dist(rng), dist(rng)};
    Mat rho = a * a.adjoint();
    rho *= cplx{1.0, 0.0} / rho.trace();
    return rho;
}

class ChannelParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelParamSweep, AmplitudeDampingIsCptpAndMonotone) {
    const double gamma = GetParam();
    const Mat chan = amplitude_damping_superop(gamma);
    EXPECT_TRUE(is_trace_preserving(chan, 1e-12));
    for (unsigned seed : {1u, 2u, 3u}) {
        const Mat rho = random_density(2, seed);
        const Mat out = apply_superop(chan, rho);
        EXPECT_TRUE(is_density_matrix(out, 1e-9)) << "gamma=" << gamma;
        // Excited population never increases under decay.
        EXPECT_LE(out(1, 1).real(), rho(1, 1).real() + 1e-12);
    }
}

TEST_P(ChannelParamSweep, PhaseDampingPreservesPopulations) {
    const double lambda = GetParam();
    const Mat chan = phase_damping_superop(lambda);
    for (unsigned seed : {4u, 5u}) {
        const Mat rho = random_density(2, seed);
        const Mat out = apply_superop(chan, rho);
        EXPECT_NEAR(out(0, 0).real(), rho(0, 0).real(), 1e-12);
        EXPECT_NEAR(out(1, 1).real(), rho(1, 1).real(), 1e-12);
        EXPECT_LE(std::abs(out(0, 1)), std::abs(rho(0, 1)) + 1e-12);
    }
}

TEST_P(ChannelParamSweep, DepolarizingFidelityLinear) {
    const double p = GetParam();
    const Mat chan = depolarizing_superop(2, p);
    EXPECT_NEAR(1.0 - average_gate_fidelity_superop(Mat::identity(2), chan), 0.5 * p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Gamma, ChannelParamSweep,
                         ::testing::Values(0.0, 0.01, 0.1, 0.3, 0.7, 1.0));

TEST(ChannelComposition, TwoAmplitudeDampingsCompose) {
    // gamma_total = 1 - (1-g1)(1-g2) under composition.
    const double g1 = 0.2, g2 = 0.35;
    const Mat composed = amplitude_damping_superop(g2) * amplitude_damping_superop(g1);
    const Mat direct = amplitude_damping_superop(1.0 - (1.0 - g1) * (1.0 - g2));
    EXPECT_TRUE(composed.approx_equal(direct, 1e-12));
}

TEST(ChannelComposition, DepolarizingSemigroup) {
    // (1-p_total) = (1-p1)(1-p2).
    const double p1 = 0.1, p2 = 0.25;
    const Mat composed = depolarizing_superop(2, p2) * depolarizing_superop(2, p1);
    const Mat direct = depolarizing_superop(2, 1.0 - (1.0 - p1) * (1.0 - p2));
    EXPECT_TRUE(composed.approx_equal(direct, 1e-12));
}

TEST(LindbladLimit, ShortTimeAmplitudeDampingMatchesChannel) {
    // exp(t D[sqrt(gamma) sigma-]) ~ amplitude damping with 1 - e^{-gamma t}.
    const double gamma = 0.05, t = 2.0;
    const Mat gen = lindblad_dissipator(std::sqrt(gamma) * sigma_minus());
    const Mat prop = linalg::expm(t * gen);
    const Mat chan = amplitude_damping_superop(1.0 - std::exp(-gamma * t));
    EXPECT_TRUE(prop.approx_equal(chan, 1e-10));
}

class UnitaryFidelitySweep : public ::testing::TestWithParam<double> {};

TEST_P(UnitaryFidelitySweep, RotationAngleFidelityClosedForm) {
    // F_avg(I, RX(theta)) = (4 cos^2(theta/2) + 2) / 6.
    const double theta = GetParam();
    const double f = average_gate_fidelity(Mat::identity(2), g::rx(theta));
    const double expect = (4.0 * std::pow(std::cos(theta / 2.0), 2) + 2.0) / 6.0;
    EXPECT_NEAR(f, expect, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Angles, UnitaryFidelitySweep,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, M_PI / 2, M_PI));

TEST(SuperopAlgebra, LiouvillianLinearity) {
    const Mat h1 = 0.3 * sigma_x(), h2 = 0.5 * sigma_z();
    const Mat lhs = liouvillian_hamiltonian(h1 + h2);
    const Mat rhs = liouvillian_hamiltonian(h1) + liouvillian_hamiltonian(h2);
    EXPECT_TRUE(lhs.approx_equal(rhs, 1e-13));
}

TEST(SuperopAlgebra, UnitaryConjugationPreservesSpectrum) {
    const Mat rho = random_density(2, 11);
    const Mat out = apply_superop(unitary_superop(g::h()), rho);
    EXPECT_NEAR(purity(out), purity(rho), 1e-12);
    EXPECT_NEAR(out.trace().real(), 1.0, 1e-12);
}

TEST(SuperopAlgebra, ThreeLevelLiouvillianTracePreservingSweep) {
    for (double gamma : {1e-5, 1e-4, 1e-3}) {
        for (double t : {1.0, 50.0, 1000.0}) {
            const Mat l = liouvillian(duffing_drift(3, 0.01, -2.0),
                                      {std::sqrt(gamma) * annihilation(3)});
            EXPECT_TRUE(is_trace_preserving(linalg::expm(t * l), 1e-8))
                << "gamma=" << gamma << " t=" << t;
        }
    }
}

}  // namespace
}  // namespace qoc::quantum
