#include "quantum/gates.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "linalg/expm.hpp"
#include "linalg/kron.hpp"
#include "quantum/operators.hpp"

namespace qoc::quantum::gates {
namespace {

using linalg::cplx;
using linalg::equal_up_to_phase;
constexpr cplx kI{0.0, 1.0};

TEST(Gates, AllUnitary) {
    for (const Mat& g : {x(), y(), z(), h(), s(), sdg(), sx(), sxdg(), t(), cx(), cx_10(), cz(),
                         swap(), iswap(), zx90(), rx(0.7), ry(1.3), rz(-2.1),
                         u3(0.3, 1.0, -0.5)}) {
        EXPECT_TRUE(g.is_unitary(1e-12));
    }
}

TEST(Gates, SxSquaredIsX) { EXPECT_TRUE(equal_up_to_phase(sx() * sx(), x(), 1e-12)); }

TEST(Gates, SSquaredIsZ) { EXPECT_TRUE((s() * s()).approx_equal(z(), 1e-14)); }

TEST(Gates, TSquaredIsS) { EXPECT_TRUE((t() * t()).approx_equal(s(), 1e-13)); }

TEST(Gates, HadamardConjugatesXZ) {
    EXPECT_TRUE((h() * x() * h()).approx_equal(z(), 1e-13));
    EXPECT_TRUE((h() * z() * h()).approx_equal(x(), 1e-13));
}

TEST(Gates, HadamardAsEulerZSXZ) {
    // H = RZ(pi/2) SX RZ(pi/2) up to global phase -- how IBM transpiles H
    // (the paper contrasts its direct-H pulse against this decomposition).
    const Mat viaEuler = rz(std::numbers::pi / 2.0) * sx() * rz(std::numbers::pi / 2.0);
    EXPECT_TRUE(equal_up_to_phase(viaEuler, h(), 1e-12));
}

TEST(Gates, RxMatchesExponential) {
    for (double theta : {0.3, 1.0, 2.7}) {
        const Mat expected = linalg::expm((-kI * (theta / 2.0)) * sigma_x());
        EXPECT_TRUE(rx(theta).approx_equal(expected, 1e-12)) << theta;
    }
}

TEST(Gates, RyMatchesExponential) {
    const double theta = 1.1;
    const Mat expected = linalg::expm((-kI * (theta / 2.0)) * sigma_y());
    EXPECT_TRUE(ry(theta).approx_equal(expected, 1e-12));
}

TEST(Gates, RzMatchesExponential) {
    const double theta = -0.8;
    const Mat expected = linalg::expm((-kI * (theta / 2.0)) * sigma_z());
    EXPECT_TRUE(rz(theta).approx_equal(expected, 1e-12));
}

TEST(Gates, U3Identities) {
    EXPECT_TRUE(equal_up_to_phase(u3(std::numbers::pi, 0.0, std::numbers::pi), x(), 1e-12));
    EXPECT_TRUE(equal_up_to_phase(u3(std::numbers::pi / 2.0, 0.0, std::numbers::pi), h(), 1e-12));
}

TEST(Gates, CxActsOnBasis) {
    const Mat g = cx();
    // |10> -> |11>  (qubit 0 = control = most significant)
    Mat ket10(4, 1);
    ket10(2, 0) = 1.0;
    const Mat out = g * ket10;
    EXPECT_NEAR(std::abs(out(3, 0)), 1.0, 1e-14);
    // |01> unchanged.
    Mat ket01(4, 1);
    ket01(1, 0) = 1.0;
    EXPECT_NEAR(std::abs((g * ket01)(1, 0)), 1.0, 1e-14);
}

TEST(Gates, SwapFromThreeCx) {
    const Mat viaCx = cx() * cx_10() * cx();
    EXPECT_TRUE(viaCx.approx_equal(swap(), 1e-13));
}

TEST(Gates, CzFromHadamardConjugation) {
    const Mat hh = op_on_qubit(h(), 1, 2);
    EXPECT_TRUE((hh * cx() * hh).approx_equal(cz(), 1e-13));
}

TEST(Gates, Zx90GeneratesCxWithLocals) {
    // CNOT = e^{i pi/4} (RZ(pi/2) (x) RX(pi/2)) . ZX90^dagger  ... rather than
    // assert one textbook phase convention, verify ZX90 is locally equivalent
    // to CNOT via the standard identity CX = (I (x) H) CZ (I (x) H) and the
    // known relation: ZX90 * (Z^{-1/2} (x) X^{-1/2}) ~ CX.
    const Mat locals = linalg::kron(rz(-std::numbers::pi / 2.0), rx(-std::numbers::pi / 2.0));
    EXPECT_TRUE(equal_up_to_phase(zx90() * locals, cx(), 1e-12));
}

TEST(Gates, IswapUnitaryStructure) {
    const Mat g = iswap();
    EXPECT_EQ(g(1, 2), kI);
    EXPECT_EQ(g(2, 1), kI);
    EXPECT_EQ(g(0, 0), cplx(1.0, 0.0));
}

}  // namespace
}  // namespace qoc::quantum::gates
