/// Oracle tests for the structured superoperator kernels: the
/// Kronecker-factored apply and the CSR SpMV against the dense d^2 x d^2
/// matvec, plus the bitwise contracts the simd kernel family guarantees
/// (scalar-vs-vector, dense-vs-CSR, batched-vs-strided-vs-single).

#include "quantum/superop_kron.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "linalg/expm.hpp"
#include "linalg/kron.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/sparse.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/superop.hpp"
#include "quantum/superop_structured.hpp"

namespace qoc::quantum {
namespace {

using linalg::cplx;
using linalg::Mat;

Mat random_hermitian(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Mat m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = {dist(rng), 0.0};
        for (std::size_t j = i + 1; j < n; ++j) {
            m(i, j) = {dist(rng), dist(rng)};
            m(j, i) = std::conj(m(i, j));
        }
    }
    return m;
}

Mat random_density(std::size_t n, unsigned seed) {
    // A A^dag / tr normalizes to a valid density matrix.
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    Mat a(n, n);
    for (std::size_t i = 0; i < n * n; ++i) a.data()[i] = {dist(rng), dist(rng)};
    Mat rho = a * a.adjoint();
    return (1.0 / rho.trace().real()) * rho;
}

std::vector<Mat> test_collapse_ops(std::size_t d) {
    return {0.3 * annihilation(d), 0.15 * number_op(d)};
}

double max_abs_diff(const Mat& a, const Mat& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
        }
    }
    return worst;
}

// --- KronSuperOp vs the dense oracle ---------------------------------------

TEST(KronSuperOp, LiouvillianVecApplyMatchesDense) {
    for (std::size_t d : {2ul, 3ul, 4ul, 9ul}) {
        const Mat h = random_hermitian(d, 11 + static_cast<unsigned>(d));
        const auto c_ops = test_collapse_ops(d);
        const Mat dense = liouvillian(h, c_ops);
        const KronSuperOp kron = KronSuperOp::liouvillian(h, c_ops);
        ASSERT_EQ(kron.term_count(), 2 + c_ops.size());

        const Mat v = linalg::vec(random_density(d, 21 + static_cast<unsigned>(d)));
        Mat want, got, scratch;
        apply_superop_into(dense, v, want);
        kron.apply_vec_into(v, got, scratch);
        EXPECT_LT(max_abs_diff(want, got), 1e-13) << "d=" << d;
    }
}

TEST(KronSuperOp, LiouvillianRhoApplyMatchesDirectForm) {
    for (std::size_t d : {2ul, 3ul, 4ul, 9ul}) {
        const Mat h = random_hermitian(d, 31 + static_cast<unsigned>(d));
        const auto c_ops = test_collapse_ops(d);
        const KronSuperOp kron = KronSuperOp::liouvillian(h, c_ops);
        const Mat rho = random_density(d, 41 + static_cast<unsigned>(d));

        constexpr cplx kI{0.0, 1.0};
        Mat want = (-kI) * linalg::commutator(h, rho);
        for (const Mat& c : c_ops) {
            const Mat cdc = c.adjoint() * c;
            want += c * rho * c.adjoint() - 0.5 * linalg::anticommutator(cdc, rho);
        }
        Mat got, scratch;
        kron.apply_rho_into(rho, got, scratch);
        EXPECT_LT(max_abs_diff(want, got), 1e-13) << "d=" << d;
    }
}

TEST(KronSuperOp, HamiltonianApplyMatchesDense) {
    for (std::size_t d : {2ul, 3ul, 9ul}) {
        const Mat h = random_hermitian(d, 51 + static_cast<unsigned>(d));
        const Mat dense = liouvillian_hamiltonian(h);
        const KronSuperOp kron = KronSuperOp::hamiltonian(h);
        const Mat v = linalg::vec(random_density(d, 61 + static_cast<unsigned>(d)));
        Mat want, got, scratch;
        apply_superop_into(dense, v, want);
        kron.apply_vec_into(v, got, scratch);
        EXPECT_LT(max_abs_diff(want, got), 1e-13) << "d=" << d;
    }
}

TEST(KronSuperOp, UnitaryApplyMatchesConjugation) {
    const Mat u = gates::h();
    const KronSuperOp kron = KronSuperOp::unitary(u);
    const Mat rho = random_density(2, 5);
    Mat got, scratch;
    kron.apply_rho_into(rho, got, scratch);
    EXPECT_LT(max_abs_diff(u * rho * u.adjoint(), got), 1e-14);
}

TEST(KronSuperOp, ToDenseMatchesDenseConstruction) {
    const std::size_t d = 3;
    const Mat h = random_hermitian(d, 71);
    const auto c_ops = test_collapse_ops(d);
    EXPECT_LT(max_abs_diff(liouvillian(h, c_ops),
                           KronSuperOp::liouvillian(h, c_ops).to_dense()),
              1e-13);
    EXPECT_LT(max_abs_diff(unitary_superop(gates::x()),
                           KronSuperOp::unitary(gates::x()).to_dense()),
              1e-14);
}

TEST(KronSuperOp, TraceActionDistinguishesGeneratorsFromChannels) {
    const Mat h = random_hermitian(3, 81);
    const KronSuperOp gen = KronSuperOp::liouvillian(h, test_collapse_ops(3));
    EXPECT_LT(gen.trace_action().max_abs(), 1e-12);  // tr(L rho) = 0

    const KronSuperOp chan = KronSuperOp::unitary(gates::sx());
    const Mat t = chan.trace_action();  // tr(U rho U^dag) = tr(rho)
    EXPECT_LT(max_abs_diff(t, Mat::identity(2)), 1e-14);
}

TEST(KronSuperOp, ApplyIsAllocationFreeOnShapeReuse) {
    const std::size_t d = 9;
    const KronSuperOp kron =
        KronSuperOp::liouvillian(random_hermitian(d, 91), test_collapse_ops(d));
    const Mat v = linalg::vec(random_density(d, 92));
    Mat out, scratch;
    kron.apply_vec_into(v, out, scratch);  // warm the shapes
    const Mat warm = out;
    kron.apply_vec_into(v, out, scratch);
    EXPECT_EQ(max_abs_diff(warm, out), 0.0);  // deterministic repeat
}

// --- CSR sparse form -------------------------------------------------------

TEST(CsrMat, SpmvMatchesDenseApplyBitwise) {
    // Threshold 0.0 keeps exactly the entries the dense SIMD kernel's
    // zero-skip visits, in the same ascending-column order: bitwise equal.
    for (std::size_t d : {2ul, 3ul, 4ul, 9ul}) {
        const Mat dense = liouvillian(random_hermitian(d, 101 + static_cast<unsigned>(d)),
                                      {0.2 * annihilation(d)});
        const linalg::CsrMat csr = linalg::CsrMat::from_dense(dense);
        EXPECT_EQ(csr.nnz(), [&] {
            std::size_t n = 0;
            for (const cplx& v : dense.data()) n += (v != cplx{0.0, 0.0}) ? 1 : 0;
            return n;
        }());
        EXPECT_EQ(max_abs_diff(dense, csr.to_dense()), 0.0);  // exact round trip

        const Mat x = linalg::vec(random_density(d, 111 + static_cast<unsigned>(d)));
        Mat want, got;
        linalg::simd::gemm_into(dense, x, want);
        csr.spmv_into(x, got);
        for (std::size_t i = 0; i < want.rows(); ++i) {
            EXPECT_EQ(want(i, 0), got(i, 0)) << "d=" << d << " row " << i;
        }
    }
}

TEST(CsrMat, ThresholdDropsSmallEntries) {
    Mat m(2, 2);
    m(0, 0) = 1.0;
    m(0, 1) = cplx{1e-15, 0.0};
    m(1, 1) = cplx{0.0, 0.5};
    const linalg::CsrMat csr = linalg::CsrMat::from_dense(m, 1e-12);
    EXPECT_EQ(csr.nnz(), 2u);
    EXPECT_EQ(csr.to_dense()(0, 1), (cplx{0.0, 0.0}));
}

// --- StructuredSuperOp dispatch + bitwise contracts ------------------------

TEST(StructuredSuperop, DispatchFollowsFillFraction) {
    // rz-only Clifford-style diagonal superop: sparse, must pick CSR.
    Mat diag(9, 9);
    for (std::size_t i = 0; i < 9; ++i) diag(i, i) = cplx{0.5, 0.5};
    EXPECT_EQ(StructuredSuperOp::from_dense(diag).kind(), StructuredSuperOp::Kind::kCsr);

    // Generic Lindblad propagator superop: dense.
    const Mat dense = linalg::expm(liouvillian(random_hermitian(3, 7), test_collapse_ops(3)));
    EXPECT_EQ(StructuredSuperOp::from_dense(dense).kind(), StructuredSuperOp::Kind::kDense);
}

TEST(StructuredSuperop, CsrAndDenseKindsAgreeBitwise) {
    const Mat dense = liouvillian(random_hermitian(4, 7), {0.2 * annihilation(4)});
    const StructuredSuperOp as_dense = StructuredSuperOp::from_dense(dense, /*fill_cutoff=*/0.0);
    const StructuredSuperOp as_csr = StructuredSuperOp::from_dense(dense, /*fill_cutoff=*/1.0);
    ASSERT_EQ(as_dense.kind(), StructuredSuperOp::Kind::kDense);
    ASSERT_EQ(as_csr.kind(), StructuredSuperOp::Kind::kCsr);

    const Mat x = linalg::vec(random_density(4, 8));
    Mat a, b;
    as_dense.apply_into(x, a);
    as_csr.apply_into(x, b);
    for (std::size_t i = 0; i < a.rows(); ++i) EXPECT_EQ(a(i, 0), b(i, 0)) << i;
}

TEST(StructuredSuperop, BatchColumnAndSingleApplyAgreeBitwise) {
    // The partition-invariance contract the RB seed engine relies on: one
    // batched sweep, per-column strided applies, and single-column applies
    // all commit identical bits.
    const Mat dense = liouvillian(random_hermitian(3, 17), test_collapse_ops(3));
    const StructuredSuperOp s = StructuredSuperOp::from_dense(dense);
    const std::size_t d2 = s.dim();
    const std::size_t batch = 5;

    Mat x(d2, batch);
    std::mt19937 rng(23);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t i = 0; i < d2 * batch; ++i) x.data()[i] = {dist(rng), dist(rng)};

    Mat batched;
    s.apply_batch_into(x, batched);

    Mat strided(d2, batch);
    for (std::size_t j = 0; j < batch; ++j) {
        s.apply_col(x.data().data() + j, strided.data().data() + j, batch);
    }

    for (std::size_t j = 0; j < batch; ++j) {
        Mat xj(d2, 1), single;
        for (std::size_t i = 0; i < d2; ++i) xj(i, 0) = x(i, j);
        s.apply_into(xj, single);
        for (std::size_t i = 0; i < d2; ++i) {
            EXPECT_EQ(batched(i, j), strided(i, j)) << "col " << j << " row " << i;
            EXPECT_EQ(batched(i, j), single(i, 0)) << "col " << j << " row " << i;
        }
    }
}

TEST(StructuredSuperop, ScalarAndVectorKernelsAgreeBitwise) {
    if (!linalg::simd::avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
    const Mat dense = liouvillian(random_hermitian(9, 29), test_collapse_ops(9));
    const KronSuperOp kron = KronSuperOp::liouvillian(random_hermitian(9, 29),
                                                      test_collapse_ops(9));
    const StructuredSuperOp s = StructuredSuperOp::from_dense(dense);
    const Mat v = linalg::vec(random_density(9, 30));

    Mat vec_out, vec_kron, scratch;
    s.apply_into(v, vec_out);
    kron.apply_vec_into(v, vec_kron, scratch);

    linalg::simd::force_scalar(true);
    Mat sc_out, sc_kron, sc_scratch;
    s.apply_into(v, sc_out);
    kron.apply_vec_into(v, sc_kron, sc_scratch);
    linalg::simd::force_scalar(false);

    for (std::size_t i = 0; i < vec_out.rows(); ++i) {
        EXPECT_EQ(vec_out(i, 0), sc_out(i, 0)) << "structured row " << i;
        EXPECT_EQ(vec_kron(i, 0), sc_kron(i, 0)) << "kron row " << i;
    }
}

TEST(StructuredSuperop, DenseForcedOverrideControlsDispatchFlag) {
    force_dense_superop(true);
    EXPECT_TRUE(dense_superop_forced());
    force_dense_superop(false);
    EXPECT_FALSE(dense_superop_forced());
    clear_dense_superop_override();
}

}  // namespace
}  // namespace qoc::quantum
