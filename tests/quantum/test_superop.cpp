#include "quantum/superop.hpp"

#include <gtest/gtest.h>

#include "linalg/expm.hpp"
#include "linalg/kron.hpp"
#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"

namespace qoc::quantum {
namespace {

using linalg::cplx;
constexpr cplx kI{0.0, 1.0};

TEST(Superop, HamiltonianPartMatchesCommutator) {
    const Mat h = 0.7 * sigma_x() + 0.2 * sigma_z();
    const Mat l = liouvillian_hamiltonian(h);
    const Mat rho = ket_to_dm(gates::h() * basis_ket(2, 0));
    const Mat lhs = apply_superop(l, rho);
    const Mat rhs = (-kI) * linalg::commutator(h, rho);
    EXPECT_TRUE(lhs.approx_equal(rhs, 1e-12));
}

TEST(Superop, DissipatorMatchesDirectForm) {
    const Mat c = std::sqrt(0.05) * sigma_minus();
    const Mat d = lindblad_dissipator(c);
    const Mat rho = ket_to_dm(basis_ket(2, 1));
    const Mat lhs = apply_superop(d, rho);
    const Mat cdc = c.adjoint() * c;
    const Mat rhs = c * rho * c.adjoint() - 0.5 * linalg::anticommutator(cdc, rho);
    EXPECT_TRUE(lhs.approx_equal(rhs, 1e-13));
}

TEST(Superop, LiouvillianTracePreserving) {
    const Mat h = 0.3 * sigma_x();
    const Mat l = liouvillian(h, {std::sqrt(0.02) * sigma_minus(),
                                  std::sqrt(0.01) * sigma_z()});
    // e^{L t} must be trace preserving for any t.
    const Mat prop = linalg::expm(2.0 * l);
    EXPECT_TRUE(is_trace_preserving(prop, 1e-10));
}

TEST(Superop, AmplitudeDampingDecaysExcitedState) {
    // d rho / dt with L1 = sqrt(gamma) sigma_-: excited population decays at
    // rate gamma, coherence at gamma/2.
    const double gamma = 0.1;
    const Mat l = liouvillian(Mat(2, 2), {std::sqrt(gamma) * sigma_minus()});
    const double t = 3.0;
    const Mat prop = linalg::expm(t * l);
    Mat rho{{0.3, cplx{0.2, 0.1}}, {cplx{0.2, -0.1}, 0.7}};
    const Mat out = apply_superop(prop, rho);
    EXPECT_NEAR(out(1, 1).real(), 0.7 * std::exp(-gamma * t), 1e-10);
    EXPECT_NEAR(std::abs(out(0, 1)), std::abs(rho(0, 1)) * std::exp(-gamma * t / 2.0), 1e-10);
    EXPECT_NEAR(out.trace().real(), 1.0, 1e-12);
}

TEST(Superop, UnitarySuperopMatchesConjugation) {
    const Mat u = gates::h();
    const Mat s = unitary_superop(u);
    const Mat rho = ket_to_dm(basis_ket(2, 1));
    EXPECT_TRUE(apply_superop(s, rho).approx_equal(u * rho * u.adjoint(), 1e-13));
    EXPECT_TRUE(is_trace_preserving(s));
}

TEST(Superop, UnitarySuperopComposition) {
    const Mat s1 = unitary_superop(gates::h());
    const Mat s2 = unitary_superop(gates::s());
    const Mat s21 = unitary_superop(gates::s() * gates::h());
    EXPECT_TRUE((s2 * s1).approx_equal(s21, 1e-12));
}

TEST(Superop, DepolarizingChannelContractsBloch) {
    const double p = 0.2;
    const Mat s = depolarizing_superop(2, p);
    EXPECT_TRUE(is_trace_preserving(s));
    const Mat rho = ket_to_dm(basis_ket(2, 0));
    const Mat out = apply_superop(s, rho);
    const auto b = bloch_vector(out);
    EXPECT_NEAR(b.z, 1.0 - p, 1e-12);
    EXPECT_THROW(depolarizing_superop(2, 1.5), std::invalid_argument);
}

TEST(Superop, DepolarizingIdentityAtZero) {
    EXPECT_TRUE(depolarizing_superop(2, 0.0).approx_equal(Mat::identity(4), 1e-13));
    EXPECT_TRUE(depolarizing_superop(3, 0.0).approx_equal(Mat::identity(9), 1e-13));
}

TEST(Superop, AmplitudeDampingChannelKrausForm) {
    const double gamma = 0.3;
    const Mat s = amplitude_damping_superop(gamma);
    EXPECT_TRUE(is_trace_preserving(s, 1e-12));
    const Mat out = apply_superop(s, ket_to_dm(basis_ket(2, 1)));
    EXPECT_NEAR(out(1, 1).real(), 1.0 - gamma, 1e-12);
    EXPECT_NEAR(out(0, 0).real(), gamma, 1e-12);
}

TEST(Superop, PhaseDampingKillsCoherenceOnly) {
    const double lambda = 0.4;
    const Mat s = phase_damping_superop(lambda);
    Mat rho{{0.5, 0.5}, {0.5, 0.5}};
    const Mat out = apply_superop(s, rho);
    EXPECT_NEAR(out(0, 0).real(), 0.5, 1e-12);
    EXPECT_NEAR(out(0, 1).real(), 0.5 * std::sqrt(1.0 - lambda), 1e-12);
}

TEST(Superop, ApplySuperopIntoMatchesApplySuperop) {
    // The RB engine's matvec step against the vectorize/multiply/unvec
    // oracle: identical values (both reduce to the same row-dot products).
    const std::size_t d = 3;
    const Mat h = duffing_drift(d, 0.1, -2.0) + 0.3 * drive_x(d);
    const Mat l = liouvillian(h, {std::sqrt(0.01) * annihilation(d)});
    const Mat prop = linalg::expm(0.9 * l);
    const Mat rho = ket_to_dm(std::sqrt(0.5) * (basis_ket(d, 0) + basis_ket(d, 1)));

    const Mat ref = apply_superop(prop, rho);
    const Mat v = linalg::vec(rho);
    Mat out;
    apply_superop_into(prop, v, out);
    ASSERT_EQ(out.rows(), d * d);
    ASSERT_EQ(out.cols(), 1u);
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = 0; j < d; ++j)
            EXPECT_EQ(out(j + i * d, 0), ref(j, i)) << "i=" << i << " j=" << j;

    // Chained steps on reused buffers (the engine's ping-pong pattern).
    Mat v2 = v, next;
    for (int step = 0; step < 3; ++step) {
        apply_superop_into(prop, v2, next);
        std::swap(v2, next);
    }
    const Mat ref3 = apply_superop(prop, apply_superop(prop, ref));
    EXPECT_TRUE(linalg::unvec(v2, d).approx_equal(ref3, 1e-12));

    Mat bad(d, 1);
    EXPECT_THROW(apply_superop_into(prop, bad, out), std::invalid_argument);
}

TEST(Superop, MatchesMasterEquationForDuffing) {
    // 3-level system: generator built from the Duffing drift + T1 collapse
    // operator; propagator must preserve trace and positivity of a state.
    const std::size_t d = 3;
    const Mat h = duffing_drift(d, 0.1, -2.0) + 0.3 * drive_x(d);
    const Mat c = std::sqrt(0.01) * annihilation(d);
    const Mat l = liouvillian(h, {c});
    const Mat prop = linalg::expm(1.7 * l);
    EXPECT_TRUE(is_trace_preserving(prop, 1e-9));
    const Mat rho0 = ket_to_dm(basis_ket(d, 1));
    const Mat rho1 = apply_superop(prop, rho0);
    EXPECT_TRUE(is_density_matrix(rho1, 1e-8));
}

}  // namespace
}  // namespace qoc::quantum
