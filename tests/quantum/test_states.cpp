#include "quantum/states.hpp"

#include <gtest/gtest.h>

#include "linalg/kron.hpp"
#include "quantum/gates.hpp"

namespace qoc::quantum {
namespace {

TEST(States, BasisKet) {
    const Mat k = basis_ket(3, 1);
    EXPECT_EQ(k(0, 0), cplx(0.0, 0.0));
    EXPECT_EQ(k(1, 0), cplx(1.0, 0.0));
    EXPECT_THROW(basis_ket(2, 2), std::invalid_argument);
}

TEST(States, BasisKetBits) {
    // |10> = index 2 of 4.
    const Mat k = basis_ket_bits({1, 0});
    EXPECT_EQ(k.rows(), 4u);
    EXPECT_EQ(k(2, 0), cplx(1.0, 0.0));
    EXPECT_THROW(basis_ket_bits({2}), std::invalid_argument);
}

TEST(States, KetToDm) {
    const Mat psi = gates::h() * basis_ket(2, 0);  // |+>
    const Mat rho = ket_to_dm(psi);
    EXPECT_TRUE(is_density_matrix(rho));
    EXPECT_NEAR(purity(rho), 1.0, 1e-12);
    EXPECT_NEAR(rho(0, 1).real(), 0.5, 1e-12);
}

TEST(States, DensityMatrixValidation) {
    EXPECT_TRUE(is_density_matrix(0.5 * Mat::identity(2)));
    // Not unit trace.
    EXPECT_FALSE(is_density_matrix(Mat::identity(2)));
    // Negative eigenvalue.
    Mat neg{{1.5, 0.0}, {0.0, -0.5}};
    EXPECT_FALSE(is_density_matrix(neg));
}

TEST(States, PurityOfMixedState) {
    EXPECT_NEAR(purity(0.5 * Mat::identity(2)), 0.5, 1e-12);
}

TEST(States, Populations) {
    Mat rho{{0.25, 0.1}, {0.1, 0.75}};
    const auto p = populations(rho);
    EXPECT_NEAR(p[0], 0.25, 1e-12);
    EXPECT_NEAR(p[1], 0.75, 1e-12);
}

TEST(States, BlochVectorOfCardinalStates) {
    const auto zplus = bloch_vector(ket_to_dm(basis_ket(2, 0)));
    EXPECT_NEAR(zplus.z, 1.0, 1e-12);
    EXPECT_NEAR(zplus.x, 0.0, 1e-12);
    const auto xplus = bloch_vector(ket_to_dm(gates::h() * basis_ket(2, 0)));
    EXPECT_NEAR(xplus.x, 1.0, 1e-12);
    EXPECT_NEAR(xplus.z, 0.0, 1e-12);
}

TEST(States, PartialTraceProductState) {
    const Mat rho0 = ket_to_dm(basis_ket(2, 0));
    const Mat rho1 = ket_to_dm(gates::h() * basis_ket(2, 0));
    const Mat joint = linalg::kron(rho0, rho1);
    EXPECT_TRUE(partial_trace(joint, 2, 2, 1).approx_equal(rho0, 1e-12));
    EXPECT_TRUE(partial_trace(joint, 2, 2, 0).approx_equal(rho1, 1e-12));
}

TEST(States, PartialTraceBellStateIsMaximallyMixed) {
    // |Phi+> = (|00> + |11>)/sqrt(2)
    Mat bell(4, 1);
    bell(0, 0) = cplx{1.0 / std::sqrt(2.0), 0.0};
    bell(3, 0) = cplx{1.0 / std::sqrt(2.0), 0.0};
    const Mat rho = ket_to_dm(bell);
    const Mat reduced = partial_trace(rho, 2, 2, 0);
    EXPECT_TRUE(reduced.approx_equal(0.5 * Mat::identity(2), 1e-12));
}

TEST(States, PartialTracePreservesTrace) {
    const Mat rho = ket_to_dm(basis_ket(6, 3));
    const Mat red = partial_trace(rho, 2, 3, 1);
    EXPECT_NEAR(red.trace().real(), 1.0, 1e-12);
    EXPECT_THROW(partial_trace(rho, 2, 2, 0), std::invalid_argument);
    EXPECT_THROW(partial_trace(rho, 2, 3, 2), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::quantum
