#include "quantum/fidelity.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "quantum/gates.hpp"
#include "quantum/operators.hpp"
#include "quantum/states.hpp"
#include "quantum/superop.hpp"

namespace qoc::quantum {
namespace {

constexpr cplx kI{0.0, 1.0};

TEST(Fidelity, PsuPerfectMatch) {
    EXPECT_NEAR(fidelity_psu(gates::x(), gates::x()), 1.0, 1e-14);
    EXPECT_NEAR(fidelity_psu(gates::cx(), gates::cx()), 1.0, 1e-14);
}

TEST(Fidelity, PsuPhaseInvariant) {
    const Mat u = std::exp(kI * 0.73) * gates::h();
    EXPECT_NEAR(fidelity_psu(gates::h(), u), 1.0, 1e-13);
    // SU is phase sensitive.
    EXPECT_LT(fidelity_su(gates::h(), u), 1.0 - 1e-3);
}

TEST(Fidelity, PsuOrthogonalGatesZero) {
    EXPECT_NEAR(fidelity_psu(gates::x(), gates::z()), 0.0, 1e-14);
    EXPECT_NEAR(fidelity_psu(gates::x(), Mat::identity(2)), 0.0, 1e-14);
}

TEST(Fidelity, PsuSmallRotationQuadratic) {
    // F(I, RX(eps)) = cos^2(eps/2) ~ 1 - eps^2/4.
    for (double eps : {1e-2, 1e-3}) {
        const double f = fidelity_psu(Mat::identity(2), gates::rx(eps));
        EXPECT_NEAR(1.0 - f, eps * eps / 4.0, eps * eps * eps);
    }
}

TEST(Fidelity, SubspaceFidelityIgnoresThirdLevelPhase) {
    // A 3-level unitary acting as X on the qubit subspace and an arbitrary
    // phase on |2> has unit subspace fidelity.
    Mat u(3, 3);
    u(0, 1) = 1.0;
    u(1, 0) = 1.0;
    u(2, 2) = std::exp(kI * 1.1);
    const Mat p = qubit_isometry(3);
    EXPECT_NEAR(fidelity_psu_subspace(gates::x(), u, p), 1.0, 1e-13);
}

TEST(Fidelity, SubspaceFidelityPenalizesLeakage) {
    // Unitary that moves |1> -> |2| entirely: projected block loses weight.
    Mat u(3, 3);
    u(0, 0) = 1.0;
    u(2, 1) = 1.0;
    u(1, 2) = 1.0;
    const Mat p = qubit_isometry(3);
    EXPECT_LT(fidelity_psu_subspace(Mat::identity(2), u, p), 0.3);
}

TEST(Fidelity, TraceDiffZeroForEqualMaps) {
    const Mat s = unitary_superop(gates::h());
    EXPECT_NEAR(tracediff_error(s, s), 0.0, 1e-14);
}

TEST(Fidelity, TraceDiffPositiveAndSymmetric) {
    const Mat a = unitary_superop(gates::h());
    const Mat b = unitary_superop(gates::x());
    const double ab = tracediff_error(a, b);
    EXPECT_GT(ab, 0.0);
    EXPECT_NEAR(ab, tracediff_error(b, a), 1e-14);
}

TEST(Fidelity, AverageGateFidelityIdentity) {
    EXPECT_NEAR(average_gate_fidelity(gates::h(), gates::h()), 1.0, 1e-13);
    // Orthogonal pair on d=2: F_avg = (0 + 2)/(2*3) = 1/3.
    EXPECT_NEAR(average_gate_fidelity(gates::x(), gates::z()), 1.0 / 3.0, 1e-13);
}

TEST(Fidelity, AverageGateFidelityDepolarizing) {
    // For a depolarizing channel with probability p on d=2:
    // F_avg = 1 - p/2 (since F_avg = (d F_pro + 1)/(d+1), F_pro = 1 - p(1-1/d^2)).
    const double p = 0.1;
    const Mat chan = depolarizing_superop(2, p);
    const double f = average_gate_fidelity_superop(Mat::identity(2), chan);
    EXPECT_NEAR(f, 1.0 - p / 2.0, 1e-12);
}

TEST(Fidelity, AverageGateFidelityMatchesUnitaryFormula) {
    const Mat u = gates::rx(0.3);
    const double via_superop = average_gate_fidelity_superop(Mat::identity(2),
                                                             unitary_superop(u));
    const double via_trace = average_gate_fidelity(Mat::identity(2), u);
    EXPECT_NEAR(via_superop, via_trace, 1e-12);
}

TEST(Fidelity, StateFidelityPureStates) {
    const Mat zero = basis_ket(2, 0);
    const Mat plus = gates::h() * zero;
    EXPECT_NEAR(state_fidelity(ket_to_dm(zero), zero), 1.0, 1e-14);
    EXPECT_NEAR(state_fidelity(ket_to_dm(zero), plus), 0.5, 1e-13);
}

TEST(Fidelity, InputValidation) {
    EXPECT_THROW(fidelity_psu(Mat::identity(2), Mat::identity(3)), std::invalid_argument);
    EXPECT_THROW(tracediff_error(Mat::identity(4), Mat::identity(9)), std::invalid_argument);
    EXPECT_THROW(state_fidelity(Mat::identity(2), Mat::identity(2)), std::invalid_argument);
}

/// The relation EPC uses: for a depolarizing channel, average error rate
/// r = 1 - F_avg = (d-1)/d * p.  Sweep p and verify.
class DepolFidelitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DepolFidelitySweep, ErrorRateLinearInP) {
    const double p = GetParam();
    const Mat chan = depolarizing_superop(2, p);
    const double r = 1.0 - average_gate_fidelity_superop(Mat::identity(2), chan);
    EXPECT_NEAR(r, 0.5 * p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(PSweep, DepolFidelitySweep,
                         ::testing::Values(0.0, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace qoc::quantum
