/// `service::CalibrationService`: cache hit/miss flow, drift-aware
/// demotion + IRB revalidation, admission control and the obs counters.

#include "service/calibration_service.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "obs/obs.hpp"
#include "service/pulse_store.hpp"

namespace qoc::service {
namespace {

/// Cheap-but-real service configuration for unit tests: tiny designs, tiny
/// RB, feasible amplitude bound for the short test pulses.
ServiceOptions tiny_service() {
    ServiceOptions o;
    o.amp_bound = 0.5;
    o.rb.lengths = {1, 8, 16};
    o.rb.seeds_per_length = 2;
    o.rb.shots = 128;
    return o;
}

PulseRequest tiny_request(const std::string& gate = "x", std::size_t qubit = 0) {
    PulseRequest r;
    r.gate = gate;
    r.qubit = qubit;
    r.duration_dt = 64;
    r.n_timeslots = 8;
    r.max_iterations = 8;
    return r;
}

void expect_same_payload(const PulseResponse& a, const PulseResponse& b) {
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(response_payload_digest(a), response_payload_digest(b));
}

TEST(CalibrationService, MissDesignsThenHitsServeTheSameBytes) {
    CalibrationService svc(tiny_service());
    svc.register_device(0, device::ibmq_montreal());

    const PulseResponse first = svc.request(0, tiny_request());
    EXPECT_EQ(first.status, ResponseStatus::kDesigned);
    EXPECT_EQ(first.pulse.design_count, 1u);
    EXPECT_FALSE(first.pulse.channels.empty());

    const PulseResponse second = svc.request(0, tiny_request());
    EXPECT_EQ(second.status, ResponseStatus::kHit);
    expect_same_payload(first, second);

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(svc.store().size(), 1u);

    // Different request parameters address a different entry.
    PulseRequest other = tiny_request();
    other.duration_dt = 48;
    EXPECT_NE(svc.request_key(0, other), svc.request_key(0, tiny_request()));
}

TEST(CalibrationService, SmallDriftKeepsKeyAndEntryFresh) {
    CalibrationService svc(tiny_service());
    auto cfg = device::ibmq_montreal();
    svc.register_device(0, cfg);
    const std::uint64_t key0 = svc.request_key(0, tiny_request());
    (void)svc.request(0, tiny_request());

    // Typical daily drift: within every tolerance, same quantization bucket.
    cfg.qubits[0].detuning = 5e-4;
    cfg.qubits[0].amp_scale = 1.005;
    cfg.qubits[0].t1 *= 1.02;
    EXPECT_EQ(svc.update_device(0, cfg), 0u);  // nothing demoted
    EXPECT_EQ(svc.request_key(0, tiny_request()), key0);
    EXPECT_EQ(svc.request(0, tiny_request()).status, ResponseStatus::kHit);
}

TEST(CalibrationService, DriftPastToleranceRevalidatesWithoutRedesign) {
    ServiceOptions opts = tiny_service();
    opts.revalidate_gate_error_bound =
        std::numeric_limits<double>::infinity();  // IRB always passes
    CalibrationService svc(opts);
    auto cfg = device::ibmq_montreal();
    svc.register_device(0, cfg);

    obs::reset_for_testing();
    obs::enable_metrics("");
    const PulseResponse designed = svc.request(0, tiny_request());
    EXPECT_EQ(designed.status, ResponseStatus::kDesigned);

    // Coherence improves 30%: past tolerance (15%) but inside the 0.5 log
    // key bucket -- the key must survive, the entry must be demoted then
    // revalidated.  (A downward 0.75 move would cross the bucket edge for
    // this backend and read as a key miss instead.)
    cfg.qubits[0].t1 *= 1.3;
    cfg.qubits[0].t2 *= 1.3;
    EXPECT_EQ(svc.update_device(0, cfg), 1u);
    ASSERT_TRUE(svc.store().lookup(designed.key).has_value());
    EXPECT_EQ(svc.store().lookup(designed.key)->state, EntryState::kSuspect);

    const PulseResponse revalidated = svc.request(0, tiny_request());
    EXPECT_EQ(revalidated.status, ResponseStatus::kRevalidated);
    // Same pulse bytes, no re-design: design_count is unchanged.
    expect_same_payload(designed, revalidated);
    EXPECT_EQ(revalidated.pulse.design_count, 1u);
    EXPECT_EQ(svc.store().lookup(designed.key)->state, EntryState::kFresh);

    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.demoted, 1u);
    EXPECT_EQ(stats.revalidations, 1u);
    EXPECT_EQ(stats.redesigns, 0u);

    // The obs mirror counters saw the same story.
    EXPECT_EQ(obs::counter_value(obs::Cnt::kSvcCacheMiss), 1u);
    EXPECT_EQ(obs::counter_value(obs::Cnt::kSvcCacheRevalidate), 1u);
    EXPECT_EQ(obs::counter_value(obs::Cnt::kSvcAdmitted), 1u);
    EXPECT_EQ(obs::counter_value(obs::Cnt::kSvcQueueShed), 0u);
    obs::reset_for_testing();

    // A further request is a plain hit again.
    EXPECT_EQ(svc.request(0, tiny_request()).status, ResponseStatus::kHit);
}

TEST(CalibrationService, FailedRevalidationRedesignsDeterministically) {
    ServiceOptions opts = tiny_service();
    opts.revalidate_gate_error_bound =
        -std::numeric_limits<double>::infinity();  // IRB can never pass
    CalibrationService svc(opts);
    auto cfg = device::ibmq_montreal();
    svc.register_device(0, cfg);

    const PulseResponse first = svc.request(0, tiny_request());
    ASSERT_EQ(first.status, ResponseStatus::kDesigned);

    cfg.qubits[0].t1 *= 1.3;  // past tolerance, within the log key bucket
    cfg.qubits[0].t2 *= 1.3;
    EXPECT_EQ(svc.update_device(0, cfg), 1u);

    const PulseResponse redesigned = svc.request(0, tiny_request());
    EXPECT_EQ(redesigned.status, ResponseStatus::kDesigned);
    EXPECT_EQ(redesigned.key, first.key);
    EXPECT_EQ(redesigned.pulse.design_count, 2u);
    // The design generation is folded into the optimizer seed: the
    // replacement pulse must differ from the one IRB rejected.
    EXPECT_NE(response_payload_digest(redesigned), response_payload_digest(first));
    EXPECT_EQ(svc.stats().redesigns, 1u);
    EXPECT_EQ(svc.store().lookup(first.key)->state, EntryState::kFresh);
}

TEST(CalibrationService, AdmissionControlShedsDesignsButNeverLookups) {
    // A populated store handed to a lookup-only service (queue_bound = 0):
    // hits are served, anything needing a design is shed.
    const std::string path = testing::TempDir() + "qoc_svc_shed_store.jsonl";
    {
        CalibrationService warm(tiny_service());
        warm.register_device(0, device::ibmq_montreal());
        (void)warm.request(0, tiny_request());
        warm.store().save_jsonl(path);
    }

    ServiceOptions opts = tiny_service();
    opts.queue_bound = 0;
    CalibrationService svc(opts);
    svc.register_device(0, device::ibmq_montreal());
    EXPECT_EQ(svc.store().load_jsonl(path), 1u);

    // Warm-restart lookup: served even though designing is impossible.
    EXPECT_EQ(svc.request(0, tiny_request()).status, ResponseStatus::kHit);

    // A novel request needs a design and is shed, with an empty payload.
    PulseRequest novel = tiny_request("sx");
    const PulseResponse shed = svc.request(0, novel);
    EXPECT_EQ(shed.status, ResponseStatus::kShed);
    EXPECT_TRUE(shed.pulse.channels.empty());
    const ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(svc.store().size(), 1u);
}

TEST(CalibrationService, UnknownDeviceAndGateAreRejected) {
    CalibrationService svc(tiny_service());
    EXPECT_THROW((void)svc.request(5, tiny_request()), std::out_of_range);
    svc.register_device(0, device::ibmq_montreal());
    PulseRequest bad = tiny_request();
    bad.gate = "swap";
    EXPECT_THROW((void)svc.request(0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace qoc::service
