/// ServiceDeterminism.* -- the calibration service's replay contract, run as
/// the `service_determinism_smoke` ctest alias in the Release and TSan CI
/// legs: a replayed request log produces bitwise-identical response payloads
/// at pool size 1 and pool size N, telemetry on vs. off never perturbs the
/// numerics, and the persisted store round-trips byte-for-byte across a warm
/// restart.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/obs.hpp"
#include "runtime/task_pool.hpp"
#include "service/fleet_driver.hpp"

namespace qoc::service {
namespace {

/// Small-but-real fleet: 1 device, 2 days (one drift notification), a
/// workload with repeats (hits + coalesced misses) and enough headroom in
/// queue_bound that admission control never sheds -- the precondition of the
/// payload-determinism contract.
FleetOptions smoke_fleet() {
    FleetOptions o;
    o.n_devices = 1;
    o.n_days = 2;
    o.requests_per_day = 10;
    o.include_cx = false;
    o.concurrent = true;
    o.service.amp_bound = 0.5;
    o.service.queue_bound = 256;
    o.service.rb.lengths = {1, 8, 16};
    o.service.rb.seeds_per_length = 2;
    o.service.rb.shots = 128;
    return o;
}

TEST(ServiceDeterminism, FleetReplayBitwiseOneVsNThreads) {
    const FleetOptions opts = smoke_fleet();

    FleetResult sequential;
    {
        runtime::ScopedPoolSize one(1);
        sequential = run_fleet(opts);
    }
    ASSERT_EQ(sequential.responses.size(),
              opts.requests_per_day * static_cast<std::size_t>(opts.n_days));
    EXPECT_EQ(sequential.stats.shed, 0u);
    EXPECT_GT(sequential.stats.hits + sequential.stats.misses, 0u);
    EXPECT_GT(sequential.store_size, 0u);

    // Replay the captured log through a FRESH service on a wide pool: every
    // payload byte must match the single-threaded run.
    FleetResult wide;
    {
        runtime::ScopedPoolSize four(4);
        wide = replay_fleet(opts, sequential.log);
    }
    EXPECT_EQ(wide.response_digest, sequential.response_digest);
    ASSERT_EQ(wide.responses.size(), sequential.responses.size());
    for (std::size_t i = 0; i < wide.responses.size(); ++i) {
        EXPECT_EQ(response_payload_digest(wide.responses[i]),
                  response_payload_digest(sequential.responses[i]))
            << "response " << i;
    }
    EXPECT_EQ(wide.store_size, sequential.store_size);

    // A second wide run (not a replay -- fresh workload generation from the
    // same seeds) agrees too: generation itself is deterministic.
    FleetResult wide2;
    {
        runtime::ScopedPoolSize four(4);
        wide2 = run_fleet(opts);
    }
    EXPECT_EQ(wide2.response_digest, sequential.response_digest);
}

TEST(ServiceDeterminism, ObsOnVsOffIsBitwiseIdentical) {
    // Full telemetry (tracing + metrics + JSONL stream + latency histograms
    // + request ids) must never perturb a fleet run: instrumentation only
    // READS what the numerics computed.
    const FleetOptions opts = smoke_fleet();

    obs::reset_for_testing();
    FleetResult plain;
    {
        runtime::ScopedPoolSize four(4);
        plain = run_fleet(opts);
    }

    const std::string metrics_path = testing::TempDir() + "qoc_obs_onoff_metrics.jsonl";
    obs::enable_tracing("");  // in-memory span collection
    obs::enable_metrics(metrics_path);
    ASSERT_TRUE(obs::telemetry_enabled());
    FleetResult traced;
    {
        runtime::ScopedPoolSize four(4);
        traced = run_fleet(opts);
    }

    EXPECT_EQ(traced.response_digest, plain.response_digest);
    ASSERT_EQ(traced.responses.size(), plain.responses.size());
    for (std::size_t i = 0; i < plain.responses.size(); ++i) {
        EXPECT_EQ(response_payload_digest(traced.responses[i]),
                  response_payload_digest(plain.responses[i]))
            << "response " << i;
    }

    // Request-id joinability: every service_request record's id appears on
    // at least one trace span (the service.request span itself at minimum).
    std::set<std::uint64_t> span_requests;
    for (const auto& e : obs::snapshot_trace_events()) {
        if (e.request != 0) span_requests.insert(e.request);
    }
    obs::flush();
    obs::reset_for_testing();

    std::ifstream in(metrics_path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t request_records = 0;
    while (std::getline(in, line)) {
        const std::string pat = "\"type\":\"service_request\"";
        if (line.find(pat) == std::string::npos) continue;
        ++request_records;
        const std::string idpat = "\"id\":";
        const std::size_t at = line.find(idpat);
        ASSERT_NE(at, std::string::npos) << line;
        const std::uint64_t id = std::strtoull(line.c_str() + at + idpat.size(), nullptr, 10);
        EXPECT_EQ(span_requests.count(id), 1u) << "unjoinable request id " << id;
    }
    EXPECT_EQ(request_records, plain.responses.size());
    std::remove(metrics_path.c_str());
}

TEST(ServiceDeterminism, ReplayReproducesRequestIds) {
    // Request ids derive from (key, log index), never wall clock: replaying
    // the same log must produce the identical id set.
    const FleetOptions opts = smoke_fleet();
    const auto ids_of = [&](const std::vector<io::RequestLogRecord>& log) {
        const std::string path = testing::TempDir() + "qoc_obs_replay_ids.jsonl";
        obs::reset_for_testing();
        obs::enable_metrics(path);
        replay_fleet(opts, log);
        obs::flush();
        obs::reset_for_testing();
        std::multiset<std::uint64_t> ids;
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("\"type\":\"service_request\"") == std::string::npos) continue;
            const std::size_t at = line.find("\"id\":");
            ids.insert(std::strtoull(line.c_str() + at + 5, nullptr, 10));
        }
        std::remove(path.c_str());
        return ids;
    };

    obs::reset_for_testing();
    FleetResult base;
    {
        runtime::ScopedPoolSize one(1);
        base = run_fleet(opts);
    }
    const auto first = ids_of(base.log);
    ASSERT_EQ(first.size(), base.responses.size());
    runtime::ScopedPoolSize four(4);  // replay at a different pool width
    EXPECT_EQ(ids_of(base.log), first);
}

TEST(ServiceDeterminism, WarmRestartStoreIsByteStable) {
    FleetOptions opts = smoke_fleet();
    opts.n_days = 1;
    opts.requests_per_day = 6;
    opts.store_path = testing::TempDir() + "qoc_fleet_store_a.jsonl";

    FleetResult run;
    {
        runtime::ScopedPoolSize one(1);
        run = run_fleet(opts);
    }
    ASSERT_GT(run.store_size, 0u);

    // Load the persisted store and save it again: byte-identical files.
    PulseStore restored;
    ASSERT_EQ(restored.load_jsonl(opts.store_path), run.store_size);
    const std::string path_b = testing::TempDir() + "qoc_fleet_store_b.jsonl";
    restored.save_jsonl(path_b);
    std::ifstream fa(opts.store_path), fb(path_b);
    std::stringstream sa, sb;
    sa << fa.rdbuf();
    sb << fb.rdbuf();
    EXPECT_FALSE(sa.str().empty());
    EXPECT_EQ(sa.str(), sb.str());
    std::remove(opts.store_path.c_str());
    std::remove(path_b.c_str());
}

TEST(ServiceDeterminism, RequestLogRoundTripsThroughJsonl) {
    FleetOptions opts = smoke_fleet();
    opts.n_days = 1;
    const auto log = fleet_workload(opts);
    ASSERT_EQ(log.size(), opts.requests_per_day);

    std::stringstream buf;
    io::write_request_log_jsonl(buf, log);
    const auto loaded = io::read_request_log_jsonl(buf);
    ASSERT_EQ(loaded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(loaded[i], log[i]) << "record " << i;
    }
}

}  // namespace
}  // namespace qoc::service
