/// ServiceDeterminism.* -- the calibration service's replay contract, run as
/// the `service_determinism_smoke` ctest alias in the Release and TSan CI
/// legs: a replayed request log produces bitwise-identical response payloads
/// at pool size 1 and pool size N, and the persisted store round-trips
/// byte-for-byte across a warm restart.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "runtime/task_pool.hpp"
#include "service/fleet_driver.hpp"

namespace qoc::service {
namespace {

/// Small-but-real fleet: 1 device, 2 days (one drift notification), a
/// workload with repeats (hits + coalesced misses) and enough headroom in
/// queue_bound that admission control never sheds -- the precondition of the
/// payload-determinism contract.
FleetOptions smoke_fleet() {
    FleetOptions o;
    o.n_devices = 1;
    o.n_days = 2;
    o.requests_per_day = 10;
    o.include_cx = false;
    o.concurrent = true;
    o.service.amp_bound = 0.5;
    o.service.queue_bound = 256;
    o.service.rb.lengths = {1, 8, 16};
    o.service.rb.seeds_per_length = 2;
    o.service.rb.shots = 128;
    return o;
}

TEST(ServiceDeterminism, FleetReplayBitwiseOneVsNThreads) {
    const FleetOptions opts = smoke_fleet();

    FleetResult sequential;
    {
        runtime::ScopedPoolSize one(1);
        sequential = run_fleet(opts);
    }
    ASSERT_EQ(sequential.responses.size(),
              opts.requests_per_day * static_cast<std::size_t>(opts.n_days));
    EXPECT_EQ(sequential.stats.shed, 0u);
    EXPECT_GT(sequential.stats.hits + sequential.stats.misses, 0u);
    EXPECT_GT(sequential.store_size, 0u);

    // Replay the captured log through a FRESH service on a wide pool: every
    // payload byte must match the single-threaded run.
    FleetResult wide;
    {
        runtime::ScopedPoolSize four(4);
        wide = replay_fleet(opts, sequential.log);
    }
    EXPECT_EQ(wide.response_digest, sequential.response_digest);
    ASSERT_EQ(wide.responses.size(), sequential.responses.size());
    for (std::size_t i = 0; i < wide.responses.size(); ++i) {
        EXPECT_EQ(response_payload_digest(wide.responses[i]),
                  response_payload_digest(sequential.responses[i]))
            << "response " << i;
    }
    EXPECT_EQ(wide.store_size, sequential.store_size);

    // A second wide run (not a replay -- fresh workload generation from the
    // same seeds) agrees too: generation itself is deterministic.
    FleetResult wide2;
    {
        runtime::ScopedPoolSize four(4);
        wide2 = run_fleet(opts);
    }
    EXPECT_EQ(wide2.response_digest, sequential.response_digest);
}

TEST(ServiceDeterminism, WarmRestartStoreIsByteStable) {
    FleetOptions opts = smoke_fleet();
    opts.n_days = 1;
    opts.requests_per_day = 6;
    opts.store_path = testing::TempDir() + "qoc_fleet_store_a.jsonl";

    FleetResult run;
    {
        runtime::ScopedPoolSize one(1);
        run = run_fleet(opts);
    }
    ASSERT_GT(run.store_size, 0u);

    // Load the persisted store and save it again: byte-identical files.
    PulseStore restored;
    ASSERT_EQ(restored.load_jsonl(opts.store_path), run.store_size);
    const std::string path_b = testing::TempDir() + "qoc_fleet_store_b.jsonl";
    restored.save_jsonl(path_b);
    std::ifstream fa(opts.store_path), fb(path_b);
    std::stringstream sa, sb;
    sa << fa.rdbuf();
    sb << fb.rdbuf();
    EXPECT_FALSE(sa.str().empty());
    EXPECT_EQ(sa.str(), sb.str());
    std::remove(opts.store_path.c_str());
    std::remove(path_b.c_str());
}

TEST(ServiceDeterminism, RequestLogRoundTripsThroughJsonl) {
    FleetOptions opts = smoke_fleet();
    opts.n_days = 1;
    const auto log = fleet_workload(opts);
    ASSERT_EQ(log.size(), opts.requests_per_day);

    std::stringstream buf;
    io::write_request_log_jsonl(buf, log);
    const auto loaded = io::read_request_log_jsonl(buf);
    ASSERT_EQ(loaded.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(loaded[i], log[i]) << "record " << i;
    }
}

}  // namespace
}  // namespace qoc::service
